// The full proactive-fault-management story on the simulated Service
// Control Point: train UBF (symptoms) and HSMM (error events) offline,
// then run the Monitor-Evaluate-Act loop online with the Fig. 7
// countermeasures and compare against the unmanaged system.
//
//   $ ./examples/scp_closed_loop

#include <cstdio>
#include <memory>

#include "core/mea.hpp"
#include "prediction/calibration.hpp"
#include "prediction/evaluate.hpp"
#include "prediction/hsmm.hpp"
#include "prediction/ubf.hpp"
#include "runtime/scp_system.hpp"

int main() {
  using namespace pfm;
  const pred::WindowGeometry windows{600.0, 300.0, 300.0};

  // ---- offline: learn the failure patterns of the platform ---------------
  std::printf("training predictors on a 14-day trace...\n");
  telecom::SimConfig train_cfg;
  train_cfg.seed = 5;
  telecom::ScpSimulator trainer(train_cfg);
  trainer.run();
  auto trace = trainer.take_trace();
  const auto [train, validation] = trace.split_at(0.7 * train_cfg.duration);

  pred::UbfConfig ubf_cfg;
  ubf_cfg.windows = windows;
  auto ubf = std::make_shared<pred::UbfPredictor>(ubf_cfg);
  ubf->train(train);

  pred::HsmmPredictorConfig hsmm_cfg;
  hsmm_cfg.windows = windows;
  auto hsmm = std::make_shared<pred::HsmmPredictor>(hsmm_cfg);
  hsmm->train(train.failure_sequences(windows.data_window, windows.lead_time),
              train.nonfailure_sequences(windows.data_window,
                                         windows.lead_time,
                                         windows.prediction_window, 300.0));

  // Calibrate each predictor to its max-F threshold on validation data so
  // both share the controller's 0.5 warning threshold.
  pred::EvalOptions eo;
  eo.windows = windows;
  const auto ubf_report =
      pred::make_report("UBF", pred::score_on_grid(*ubf, validation, eo));
  const auto hsmm_report =
      pred::make_report("HSMM", pred::score_on_grid(*hsmm, validation, eo));
  std::printf("  %s\n  %s\n", pred::to_string(ubf_report).c_str(),
              pred::to_string(hsmm_report).c_str());

  // ---- online: the MEA loop against a fresh 14 days of operation ----------
  telecom::SimConfig run_cfg;
  run_cfg.seed = 1234;  // unseen future

  telecom::ScpSimulator unmanaged(run_cfg);
  unmanaged.run();

  telecom::ScpSimulator managed(run_cfg);
  runtime::ScpManagedSystem managed_system(managed);
  core::MeaConfig mea_cfg;
  mea_cfg.windows = windows;
  mea_cfg.warning_threshold = 0.5;
  core::MeaController mea(managed_system, mea_cfg);
  mea.add_symptom_predictor(
      std::make_shared<pred::CalibratedSymptomPredictor>(
          ubf, ubf_report.threshold));
  mea.add_event_predictor(std::make_shared<pred::CalibratedEventPredictor>(
      hsmm, hsmm_report.threshold));
  mea.add_action(std::make_unique<act::StateCleanupAction>());
  mea.add_action(std::make_unique<act::PreventiveFailoverAction>());
  mea.add_action(std::make_unique<act::LoadLoweringAction>());
  mea.add_action(std::make_unique<act::PreparedRepairAction>(900.0));
  std::printf("\nrunning the managed system (MEA loop, evaluation every "
              "%.0f s)...\n",
              mea_cfg.evaluation_interval);
  mea.run();

  // ---- compare -------------------------------------------------------------
  auto print_stats = [](const char* name, const telecom::SimStats& s) {
    std::printf("  %-10s availability %.6f  failures %3lld  downtime %6.0f s"
                "  shed %lld\n",
                name, s.availability(), static_cast<long long>(s.failures),
                s.downtime, static_cast<long long>(s.shed_requests));
  };
  std::printf("\nresults over %.0f days:\n", run_cfg.duration / 86400.0);
  print_stats("unmanaged", unmanaged.stats());
  print_stats("managed", managed.stats());
  std::printf("\nMEA activity: %zu evaluations, %zu warnings; actions:\n",
              mea.stats().evaluations, mea.stats().warnings);
  for (std::size_t k = 0; k < act::kNumActionKinds; ++k) {
    if (mea.stats().actions_by_kind[k] == 0) continue;
    std::printf("  %-20s %zu\n",
                act::to_string(static_cast<act::ActionKind>(k)).c_str(),
                mea.stats().actions_by_kind[k]);
  }
  const double u_managed = 1.0 - managed.stats().availability();
  const double u_plain = 1.0 - unmanaged.stats().availability();
  if (u_plain > 0.0) {
    std::printf("\nunavailability ratio (managed/unmanaged) = %.3f "
                "(the paper's CTMC model predicts ~0.49 for its Table 2 "
                "operating point)\n",
                u_managed / u_plain);
  }
  return 0;
}
