// Offline trace analysis workflow: persist a monitoring trace to the CSV
// trace format, reload it (as an operator would with real field data),
// summarize it, and ask the diagnosis component who is to blame while a
// fault is still only a precursor.
//
//   $ ./examples/trace_analysis [output.csv]

#include <cstdio>
#include <map>

#include "core/diagnosis.hpp"
#include "monitoring/io.hpp"
#include "numerics/stats.hpp"
#include "runtime/scp_system.hpp"
#include "telecom/simulator.hpp"

int main(int argc, char** argv) {
  using namespace pfm;
  const std::string path = argc > 1 ? argv[1] : "/tmp/pfm_trace.csv";

  // Record two days of operation and persist the trace.
  telecom::SimConfig cfg;
  cfg.seed = 404;
  cfg.duration = 2.0 * 86400.0;
  cfg.leak_mtbf = 43200.0;  // a leak is likely within the window
  telecom::ScpSimulator sim(cfg);
  sim.run();
  mon::save_csv(sim.trace(), path);
  std::printf("wrote %s\n", path.c_str());

  // Reload and summarize — from here on, only the file's contents matter.
  const auto trace = mon::load_csv(path);
  std::printf("\ntrace summary:\n");
  std::printf("  span: %.1f h, %zu samples, %zu error events, %zu failures\n",
              (trace.end_time() - trace.start_time()) / 3600.0,
              trace.samples().size(), trace.events().size(),
              trace.failures().size());

  // Error-log profile: events per id, most frequent first.
  std::map<std::int32_t, int> by_id;
  for (const auto& e : trace.events()) ++by_id[e.event_id];
  std::printf("  busiest error ids:");
  for (int rank = 0; rank < 4; ++rank) {
    int best_count = 0;
    std::int32_t best_id = -1;
    for (const auto& [id, count] : by_id) {
      if (count > best_count) {
        best_count = count;
        best_id = id;
      }
    }
    if (best_id < 0) break;
    std::printf(" %d(%dx)", best_id, best_count);
    by_id.erase(best_id);
  }
  std::printf("\n");

  // Per-variable statistics of the symptom channels.
  std::printf("\n  %-18s %10s %10s %10s\n", "variable", "mean", "min", "max");
  for (std::size_t j = 0; j < trace.schema().size(); ++j) {
    num::RunningStats rs;
    for (const auto& s : trace.samples()) rs.add(s.values[j]);
    std::printf("  %-18s %10.2f %10.2f %10.2f\n",
                trace.schema().name(j).c_str(), rs.mean(), rs.min(),
                rs.max());
  }

  // Diagnosis at a failure-prone moment: re-run the platform to just
  // before its first failure and ask who looks suspicious.
  if (!trace.failures().empty()) {
    const double first_failure = trace.failures().front();
    telecom::ScpSimulator replay(cfg);
    replay.step_to(first_failure - 300.0);  // lead time before the failure
    runtime::ScpManagedSystem replay_system(replay);
    core::Diagnoser diagnoser;
    const auto suspects = diagnoser.diagnose(replay_system);
    std::printf("\ndiagnosis %.0f s before the first failure (t=%.0f):\n",
                300.0, first_failure);
    if (suspects.empty()) {
      std::printf("  no component stands out\n");
    }
    for (const auto& s : suspects) {
      if (s.component >= 0) {
        std::printf("  node %d  score %.2f  (%s)\n", s.component, s.score,
                    s.evidence.c_str());
      } else {
        std::printf("  system-wide  score %.2f  (%s)\n", s.score,
                    s.evidence.c_str());
      }
    }
  }
  return 0;
}
