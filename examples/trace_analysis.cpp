// Offline trace analysis workflow: persist a monitoring trace to the CSV
// trace format, reload it (as an operator would with real field data),
// summarize it, ask the diagnosis component who is to blame while a
// fault is still only a precursor — then run a closed MEA loop with the
// observability hub, the online quality scoreboard and the flight
// recorder attached, export its stage spans as a Chrome trace-event
// file (loadable at ui.perfetto.dev), and print the live Eq. 8
// self-assessment plus the post-mortem the crashed node left behind.
//
//   $ ./examples/trace_analysis [output.csv] [mea_trace.json]

#include <cstdio>
#include <map>
#include <memory>

#include "core/diagnosis.hpp"
#include "injection/injector.hpp"
#include "monitoring/io.hpp"
#include "numerics/stats.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"
#include "telecom/simulator.hpp"

namespace {

/// Oracle predictor for the demo loop: newest worst-node memory pressure
/// (no training needed, so the example stays self-contained).
class PressurePredictor final : public pfm::pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t index) : index_(index) {}
  std::string name() const override { return "pressure"; }
  void train(const pfm::mon::MonitoringDataset&) override {}
  double score(const pfm::pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pfm;
  const std::string path = argc > 1 ? argv[1] : "/tmp/pfm_trace.csv";

  // Record two days of operation and persist the trace.
  telecom::SimConfig cfg;
  cfg.seed = 404;
  cfg.duration = 2.0 * 86400.0;
  cfg.leak_mtbf = 43200.0;  // a leak is likely within the window
  telecom::ScpSimulator sim(cfg);
  sim.run();
  mon::save_csv(sim.trace(), path);
  std::printf("wrote %s\n", path.c_str());

  // Reload and summarize — from here on, only the file's contents matter.
  const auto trace = mon::load_csv(path);
  std::printf("\ntrace summary:\n");
  std::printf("  span: %.1f h, %zu samples, %zu error events, %zu failures\n",
              (trace.end_time() - trace.start_time()) / 3600.0,
              trace.samples().size(), trace.events().size(),
              trace.failures().size());

  // Error-log profile: events per id, most frequent first.
  std::map<std::int32_t, int> by_id;
  for (const auto& e : trace.events()) ++by_id[e.event_id];
  std::printf("  busiest error ids:");
  for (int rank = 0; rank < 4; ++rank) {
    int best_count = 0;
    std::int32_t best_id = -1;
    for (const auto& [id, count] : by_id) {
      if (count > best_count) {
        best_count = count;
        best_id = id;
      }
    }
    if (best_id < 0) break;
    std::printf(" %d(%dx)", best_id, best_count);
    by_id.erase(best_id);
  }
  std::printf("\n");

  // Per-variable statistics of the symptom channels.
  std::printf("\n  %-18s %10s %10s %10s\n", "variable", "mean", "min", "max");
  for (std::size_t j = 0; j < trace.schema().size(); ++j) {
    num::RunningStats rs;
    for (const auto& s : trace.samples()) rs.add(s.values[j]);
    std::printf("  %-18s %10.2f %10.2f %10.2f\n",
                trace.schema().name(j).c_str(), rs.mean(), rs.min(),
                rs.max());
  }

  // Diagnosis at a failure-prone moment: re-run the platform to just
  // before its first failure and ask who looks suspicious.
  if (!trace.failures().empty()) {
    const double first_failure = trace.failures().front();
    telecom::ScpSimulator replay(cfg);
    replay.step_to(first_failure - 300.0);  // lead time before the failure
    runtime::ScpManagedSystem replay_system(replay);
    core::Diagnoser diagnoser;
    const auto suspects = diagnoser.diagnose(replay_system);
    std::printf("\ndiagnosis %.0f s before the first failure (t=%.0f):\n",
                300.0, first_failure);
    if (suspects.empty()) {
      std::printf("  no component stands out\n");
    }
    for (const auto& s : suspects) {
      if (s.component >= 0) {
        std::printf("  node %d  score %.2f  (%s)\n", s.component, s.score,
                    s.evidence.c_str());
      } else {
        std::printf("  system-wide  score %.2f  (%s)\n", s.score,
                    s.evidence.c_str());
      }
    }
  }

  // Closed-loop observability: run a small MEA fleet over the same
  // scenario with the obs hub attached, then export every recorded stage
  // span (Monitor/Evaluate/Act, per-node steps, per-predictor scoring,
  // warnings, actions) as a Chrome trace-event file. Open it in Perfetto:
  // go to https://ui.perfetto.dev and use "Open trace file" — one lane
  // per node and predictor, timestamps in simulated seconds.
  const std::string mea_trace_path =
      argc > 2 ? argv[2] : "/tmp/pfm_mea_trace.json";
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 2;                // controller + 1 pool worker
  ocfg.trace_capacity = 1 << 16;  // ample for half a day of rounds
  ocfg.flight_capacity = 32;      // per-node flight recorder ring
  obs::Observability hub(ocfg);

  // One scripted crash so the flight recorder has a story to tell: the
  // quarantine of node 1 dumps its last 32 events as a post-mortem.
  inj::FaultPlan plan;
  plan.seed = 1234;
  plan.nodes[1].crash_at = 10800.0;
  inj::FaultInjector injector(plan);
  injector.set_observability(&hub);

  telecom::SimConfig loop_cfg = cfg;
  loop_cfg.duration = 0.5 * 86400.0;
  runtime::FleetConfig fleet_cfg;
  fleet_cfg.mea.warning_threshold = 0.72;
  fleet_cfg.mea.action_cooldown = 600.0;
  fleet_cfg.num_threads = 2;
  fleet_cfg.quality.enabled = true;  // the live Sect. 3.3 scoreboard
  fleet_cfg.obs = &hub;
  auto nodes = runtime::make_scp_fleet(loop_cfg, 4);
  const auto pressure_idx =
      *nodes.front()->trace().schema().index("mem_pressure_max");
  runtime::FleetController fleet(injector.wrap_fleet(std::move(nodes)),
                                 fleet_cfg);
  fleet.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_idx));
  fleet.add_action(
      [] { return std::make_unique<act::StateCleanupAction>(0.70); });
  fleet.add_action(
      [] { return std::make_unique<act::PreparedRepairAction>(1800.0); });
  fleet.run();

  const std::string chrome = obs::chrome_trace_json(hub.trace());
  if (std::FILE* f = std::fopen(mea_trace_path.c_str(), "w")) {
    std::fwrite(chrome.data(), 1, chrome.size(), f);
    std::fclose(f);
  }
  const auto t = fleet.telemetry();
  std::printf("\nclosed-loop run: %zu rounds, %zu warnings, %llu spans "
              "(%llu dropped)\n",
              t.rounds, t.warnings_raised,
              static_cast<unsigned long long>(hub.trace().recorded()),
              static_cast<unsigned long long>(hub.trace().dropped()));
  std::printf("wrote %s — open it at https://ui.perfetto.dev "
              "(\"Open trace file\")\n", mea_trace_path.c_str());

  // The same hub doubles as the scrape surface; here is the exposition a
  // Prometheus agent would pull.
  std::printf("\nscrape sample (first lines):\n");
  const std::string scrape = obs::prometheus_text(hub.metrics());
  std::size_t printed = 0, pos = 0;
  while (printed < 8 && pos < scrape.size()) {
    const std::size_t eol = scrape.find('\n', pos);
    std::printf("  %s\n", scrape.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++printed;
  }
  std::printf("  ...\n");

  // The online quality scoreboard (DESIGN.md §12): the combined lane's
  // live Sect. 3.3 quality and the Eq. 8 self-assessment — what the
  // Fig. 9 model predicts availability should be given the quality the
  // predictor is demonstrating, next to what the fleet measured.
  std::printf("\nquality scoreboard (combined lane + Eq. 8 gauges):\n");
  pos = 0;
  while (pos < scrape.size()) {
    const std::size_t eol = scrape.find('\n', pos);
    const std::string line = scrape.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.compare(0, 12, "pfm_quality_") != 0) continue;
    if (line.find("availability") == std::string::npos &&
        line.find("{predictor=\"combined\"}") == std::string::npos) {
      continue;
    }
    std::printf("  %s\n", line.c_str());
  }

  // The crashed node's post-mortem: the flight recorder dumped its last
  // events (scores, warnings, actions, the injected fault) when the
  // fleet quarantined it.
  std::printf("\nflight-recorder post-mortem (first dump):\n");
  const std::string dumps = hub.flight()->post_mortems_text();
  printed = 0;
  pos = 0;
  while (printed < 10 && pos < dumps.size()) {
    const std::size_t eol = dumps.find('\n', pos);
    const std::string line = dumps.substr(pos, eol - pos);
    if (printed > 0 && line.compare(0, 14, "{\"postmortem\":") == 0) break;
    std::printf("  %s\n", line.c_str());
    pos = eol + 1;
    ++printed;
  }
  if (pos < dumps.size()) std::printf("  ...\n");
  return 0;
}
