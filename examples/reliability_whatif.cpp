// Architect's what-if analysis with the Sect. 5 CTMC model: given a
// candidate failure predictor's accuracy and the properties of the
// planned countermeasures, what do availability, reliability and hazard
// rate look like — and is the predictor good enough to help at all?
//
//   $ ./examples/reliability_whatif

#include <cstdio>

#include "ctmc/pfm_model.hpp"

int main() {
  using namespace pfm::ctmc;

  std::printf("What-if: proactive fault management on a system with\n"
              "MTTF 12500 s and MTTR 600 s, as a function of predictor "
              "quality.\n\n");

  // A family of predictors from poor to excellent. fpr scales along.
  struct Candidate {
    const char* name;
    PredictionQuality quality;
  };
  const Candidate candidates[] = {
      {"coin-flip", {0.05, 0.5, 0.5}},
      {"weak", {0.4, 0.4, 0.05}},
      {"case-study HSMM", {0.70, 0.62, 0.016}},
      {"excellent", {0.9, 0.9, 0.005}},
      {"near-perfect", {0.99, 0.99, 0.001}},
  };

  std::printf("%-18s %-12s %-12s %-10s %-12s\n", "predictor", "A_PFM",
              "unavail.", "ratio", "MTTF w/ PFM");
  for (const auto& c : candidates) {
    PfmModelParams p = PfmModelParams::table2_example();
    p.quality = c.quality;
    const PfmAvailabilityModel model(p);
    const auto ph = model.reliability_model();
    std::printf("%-18s %-12.6f %-12.3e %-10.3f %-12.0f\n", c.name,
                model.availability_closed_form(),
                1.0 - model.availability_closed_form(),
                model.unavailability_ratio(), ph.mean());
  }

  std::printf("\nA ratio above 1.0 means PFM *hurts*: with a coin-flip\n"
              "predictor the induced failures (P_FP, P_TN) and unnecessary\n"
              "actions outweigh the benefit — the quantitative version of\n"
              "the paper's warning that action selection must weigh\n"
              "confidence against cost.\n\n");

  // Break-even curve: minimum precision needed before the false-positive
  // side effects (induced failures, wasted actions) stop outweighing the
  // benefit. In the Sect. 5 rate derivation both the benefit and the
  // false-alarm damage scale with recall, so the break-even precision
  // depends on how risky an unnecessary action is (P_FP), not on recall.
  std::printf("Break-even precision (ratio = 1) by P_FP, recall 0.62:\n");
  for (double p_fp : {0.05, 0.1, 0.3, 0.6, 1.0}) {
    double lo = 0.01, hi = 1.0;
    for (int i = 0; i < 40; ++i) {
      const double mid = 0.5 * (lo + hi);
      PfmModelParams p = PfmModelParams::table2_example();
      p.quality = {mid, 0.62, 0.016};
      p.p_fp = p_fp;
      (PfmAvailabilityModel(p).unavailability_ratio() > 1.0 ? lo : hi) = mid;
    }
    std::printf("  P_FP %.2f -> precision >= %.3f\n", p_fp, 0.5 * (lo + hi));
  }

  std::printf("\nHazard-rate profile for the case-study predictor:\n");
  PfmModelParams p = PfmModelParams::table2_example();
  const PfmAvailabilityModel model(p);
  const auto ph = model.reliability_model();
  std::printf("  %-8s %-12s %-12s\n", "t [s]", "h_pfm", "h_noPFM");
  for (double t : {0.0, 100.0, 250.0, 500.0, 1000.0}) {
    std::printf("  %-8.0f %-12.3e %-12.3e\n", t, ph.hazard(t),
                model.baseline_hazard());
  }
  return 0;
}
