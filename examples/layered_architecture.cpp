// The Fig. 11 architectural blueprint in action: one failure predictor per
// system layer, fused by stacked generalization, with translucency
// reporting and change-point-triggered retraining requests.
//
//   $ ./examples/layered_architecture

#include <cstdio>
#include <memory>

#include "core/architecture.hpp"
#include "numerics/rng.hpp"
#include "prediction/calibration.hpp"
#include "prediction/evaluate.hpp"
#include "prediction/hsmm.hpp"
#include "prediction/baselines.hpp"
#include "prediction/ubf.hpp"
#include "telecom/simulator.hpp"

int main() {
  using namespace pfm;
  const pred::WindowGeometry windows{600.0, 300.0, 300.0};

  std::printf("building per-layer predictors from a 14-day trace...\n");
  telecom::SimConfig cfg;
  cfg.seed = 5;
  telecom::ScpSimulator sim(cfg);
  sim.run();
  auto trace = sim.take_trace();
  const auto [train, test] = trace.split_at(0.7 * cfg.duration);

  // Hardware layer: simple thresholding on raw resource variables (the
  // blueprint: "a predictor on hardware level has to process a large
  // amount of data but failure patterns are not extremely complex").
  auto hw = std::make_shared<pred::ThresholdPredictor>(windows);
  hw->train(train);

  // OS layer: trend analysis on resource exhaustion.
  auto os = std::make_shared<pred::TrendPredictor>(windows);
  os->train(train);

  // Middleware layer: event-log pattern recognition with the HSMM.
  pred::HsmmPredictorConfig hsmm_cfg;
  hsmm_cfg.windows = windows;
  auto mw = std::make_shared<pred::HsmmPredictor>(hsmm_cfg);
  mw->train(train.failure_sequences(windows.data_window, windows.lead_time),
            train.nonfailure_sequences(windows.data_window, windows.lead_time,
                                       windows.prediction_window, 300.0));

  // Application layer: UBF over the full symptom vector.
  pred::UbfConfig ubf_cfg;
  ubf_cfg.windows = windows;
  auto app = std::make_shared<pred::UbfPredictor>(ubf_cfg);
  app->train(train);

  core::LayeredArchitecture arch;
  arch.set_layer(core::Layer::kHardware, {hw, nullptr});
  arch.set_layer(core::Layer::kOperatingSystem, {os, nullptr});
  arch.set_layer(core::Layer::kMiddleware, {nullptr, mw});
  arch.set_layer(core::Layer::kApplication, {app, nullptr});
  std::printf("active layers: %zu\n\n", arch.num_active_layers());

  // Fit the cross-layer fusion on out-of-sample scores from the first half
  // of the test period; evaluate on the second half.
  const double fit_end = 0.7 * cfg.duration + 0.15 * cfg.duration;
  const auto samples = test.samples();
  std::vector<double> level0;
  std::vector<int> labels;
  std::vector<std::vector<double>> eval_scores;
  std::vector<int> eval_labels;
  for (std::size_t i = 20; i < samples.size(); ++i) {
    const double t = samples[i].time;
    if (t + windows.lead_time + windows.prediction_window > test.end_time()) {
      break;
    }
    pred::SymptomContext ctx;
    ctx.history = samples.subspan(i - 19, 20);
    mon::ErrorSequence seq;
    seq.events = test.events_in(t - windows.data_window, t);
    seq.end_time = t;
    const auto scores = arch.all_scores(ctx, seq);
    const int label = test.failure_within(
                          t, t + windows.lead_time + windows.prediction_window)
                          ? 1
                          : 0;
    if (t < fit_end) {
      level0.insert(level0.end(), scores.begin(), scores.end());
      labels.push_back(label);
    } else {
      eval_scores.push_back(scores);
      eval_labels.push_back(label);
    }
  }
  arch.fit_fusion(level0, labels);

  std::printf("translucency report (stacking weight = how much the fused\n"
              "decision trusts each layer):\n");
  for (const auto& c : arch.contributions()) {
    std::printf("  %-24s weight %+.3f\n", core::to_string(c.layer).c_str(),
                c.stacking_weight);
  }

  // Fused accuracy vs the best single layer, on the held-out evaluation
  // scores (the combiner is the same one the architecture fitted).
  pred::StackedGeneralization stack;
  stack.fit(level0, arch.num_active_layers(), labels);
  double best_single = 0.0;
  for (std::size_t layer = 0; layer < 4; ++layer) {
    std::vector<pred::ScoredInstant> pts;
    for (std::size_t i = 0; i < eval_scores.size(); ++i) {
      pts.push_back({0.0, eval_scores[i][layer], eval_labels[i]});
    }
    const double auc = pred::make_report("layer", pts).auc;
    best_single = std::max(best_single, auc);
  }
  std::vector<pred::ScoredInstant> stacked_pts;
  for (std::size_t i = 0; i < eval_scores.size(); ++i) {
    stacked_pts.push_back({0.0, stack.combine(eval_scores[i]), eval_labels[i]});
  }
  std::printf("\nAUC best single layer: %.3f\n", best_single);
  std::printf("AUC stacked fusion:    %.3f\n\n",
              pred::make_report("stacked", stacked_pts).auc);

  // Dynamicity: an upgrade changes a layer's behavior; the change-point
  // detector flags it for retraining (Sect. 6).
  std::printf("simulating an OS upgrade that shifts the layer's prediction "
              "error...\n");
  num::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    arch.observe_layer_behavior(core::Layer::kOperatingSystem,
                                rng.normal(0.1, 0.03));
  }
  int steps = 0;
  while (!arch.observe_layer_behavior(core::Layer::kOperatingSystem,
                                      rng.normal(0.55, 0.03))) {
    ++steps;
  }
  std::printf("drift detected after %d post-upgrade observations\n", steps);
  for (const auto layer : arch.take_retraining_requests()) {
    std::printf("retraining request: %s layer\n",
                core::to_string(layer).c_str());
  }
  return 0;
}
