// Quickstart: generate a short monitoring trace with the simulated SCP,
// train an online failure predictor, and evaluate it — the minimal
// end-to-end tour of the library's public API.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "prediction/evaluate.hpp"
#include "prediction/ubf.hpp"
#include "telecom/simulator.hpp"

int main() {
  using namespace pfm;

  // 1. Monitor: run the simulated telecom platform for a week and collect
  //    its monitoring trace (symptom samples + error log + failure log).
  telecom::SimConfig sim_config;
  sim_config.seed = 42;
  sim_config.duration = 7.0 * 86400.0;
  telecom::ScpSimulator simulator(sim_config);
  simulator.run();
  std::printf("simulated %.0f days: %lld requests, %lld failures, "
              "availability %.4f\n",
              sim_config.duration / 86400.0,
              static_cast<long long>(simulator.stats().total_requests),
              static_cast<long long>(simulator.stats().failures),
              simulator.stats().availability());

  auto trace = simulator.take_trace();
  const auto [train, test] = trace.split_at(0.7 * sim_config.duration);

  // 2. Evaluate: train a UBF failure predictor (variable selection +
  //    mixture-kernel function approximation, Sect. 3.2 of the paper).
  pred::UbfConfig ubf_config;
  ubf_config.windows = {600.0, 300.0, 300.0};  // data/lead/prediction window
  pred::UbfPredictor predictor(ubf_config);
  predictor.train(train);

  std::printf("\nUBF selected variables:");
  for (const auto& name : predictor.selected_feature_names(train.schema())) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // 3. Judge prediction quality the way the paper does: precision, recall,
  //    false positive rate and AUC on unseen data.
  pred::EvalOptions eval_options;
  eval_options.windows = ubf_config.windows;
  const auto report = pred::make_report(
      "UBF", pred::score_on_grid(predictor, test, eval_options));
  std::printf("\n%s\n", pred::to_string(report).c_str());
  std::printf("\nwith threshold %.3f the predictor would have warned about "
              "%.0f%% of failures %.0f+ seconds in advance.\n",
              report.threshold, 100.0 * report.recall(),
              ubf_config.windows.lead_time);
  return 0;
}
