// E8 — Fig. 8: time-to-repair decomposition. (a) classical recovery:
// cold reconfiguration + recomputation since the last periodic
// checkpoint; (b) prediction-prepared recovery: warm spare + fresh
// checkpoint. Printed analytically (TtrModel) and measured end-to-end in
// the simulator.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "actions/ttr.hpp"
#include "telecom/simulator.hpp"

namespace {

using namespace pfm;

void print_analytic() {
  std::printf("== E8: Fig. 8 TTR decomposition (analytic) ==\n");
  act::TtrModel m;
  m.validate();
  std::printf("reconfig: cold %.0f s, warm %.0f s; recompute %.3f s/s "
              "capped at %.0f s\n\n",
              m.reconfig_cold, m.reconfig_warm, m.recompute_factor,
              m.recompute_max);
  std::printf("  %-18s %-12s %-12s %-8s\n", "checkpoint age [s]",
              "classical", "prepared*", "k (Eq.6)");
  for (double age : {60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0}) {
    // Prepared repair checkpoints at warning time, lead time before the
    // failure: the prepared checkpoint age is the 300 s lead time.
    const double prepared_age = 300.0;
    std::printf("  %-18.0f %-12.1f %-12.1f %-8.2f\n", age, m.classical(age),
                m.prepared(prepared_age),
                m.improvement_factor(age, prepared_age));
  }
  std::printf("  (*prepared: checkpoint taken on the failure warning, "
              "300 s before the failure)\n\n");
}

void print_measured() {
  std::printf("== E8 (measured): repair times in the simulator ==\n");
  telecom::SimConfig cfg;
  cfg.seed = 5;
  cfg.duration = 7.0 * 86400.0;

  telecom::ScpSimulator plain(cfg);
  plain.run();

  telecom::ScpSimulator prepared(cfg);
  while (!prepared.finished()) {
    prepared.prepare_for_failure(4000.0);
    prepared.step_to(prepared.now() + 3600.0);
  }

  auto mean_ttr = [](const telecom::ScpSimulator& sim) {
    double s = 0.0;
    for (const auto& f : sim.failure_infos()) s += f.repair_time;
    return sim.failure_infos().empty()
               ? 0.0
               : s / static_cast<double>(sim.failure_infos().size());
  };
  const double ttr_plain = mean_ttr(plain);
  const double ttr_prep = mean_ttr(prepared);
  std::printf("  classical (periodic checkpoints):  MTTR %.1f s over %lld "
              "failures\n",
              ttr_plain, static_cast<long long>(plain.stats().failures));
  std::printf("  prediction-prepared:               MTTR %.1f s over %lld "
              "failures (%lld prepared)\n",
              ttr_prep, static_cast<long long>(prepared.stats().failures),
              static_cast<long long>(prepared.stats().prepared_repairs));
  std::printf("  measured improvement factor k = %.2f\n\n",
              ttr_plain / ttr_prep);
}

void BM_TtrModelEval(benchmark::State& state) {
  act::TtrModel m;
  double age = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.classical(age));
    benchmark::DoNotOptimize(m.prepared(age));
    age = age < 7200.0 ? age + 60.0 : 0.0;
  }
}
BENCHMARK(BM_TtrModelEval);

}  // namespace

int main(int argc, char** argv) {
  print_analytic();
  print_measured();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
