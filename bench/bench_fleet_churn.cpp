// E16 (extension) — elastic membership under churn. Two arms:
//
//  1. Churn sweep: the same leak-heavy SCP fleet run under deterministic
//     MembershipPlans of increasing churn rate (staggered rolling
//     restarts), static (plan-only) vs elastic (plan + the
//     prediction-driven ElasticityPolicy adding capacity when the
//     fleet's failure-probability mass rises). Reports availability and
//     wall time per (churn rate, mode) as {"bench":"fleet_churn",...}
//     JSON rows.
//
//  2. Overhead arm: an ACTIVE membership config whose policy never
//     fires vs the inactive default, on a churn-free run. The barrier
//     bookkeeping is the entire cost of elasticity when nothing churns;
//     the acceptance budget (gated in tools/bench_to_json.py) is < 5%,
//     emitted as the {"bench":"fleet_churn_overhead",...} row.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "membership/membership_plan.hpp"
#include "prediction/baselines.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace {

using namespace pfm;

constexpr std::size_t kFleetNodes = 16;

bool g_quick = false;

double fleet_days() { return g_quick ? 0.125 : 0.5; }

telecom::SimConfig fleet_base_config() {
  telecom::SimConfig cfg;
  cfg.seed = 91;
  cfg.duration = fleet_days() * 86400.0;
  cfg.leak_mtbf = 43200.0;  // leak-heavy: scores rise before failures
  return cfg;
}

struct TrainedBaselines {
  std::shared_ptr<const pred::SymptomPredictor> threshold;
  std::shared_ptr<const pred::SymptomPredictor> trend;
  std::shared_ptr<const pred::EventPredictor> dft;
};

TrainedBaselines train_baselines() {
  const auto g = bench::case_study_windows();
  const auto [train, test] = bench::make_case_study(5, /*days=*/4.0);
  (void)test;

  auto threshold = std::make_shared<pred::ThresholdPredictor>(g);
  threshold->train(train);
  auto trend = std::make_shared<pred::TrendPredictor>(g);
  trend->train(train);
  auto dft = std::make_shared<pred::DftPredictor>();
  dft->train(train.failure_sequences(g.data_window, g.lead_time),
             train.nonfailure_sequences(g.data_window, g.lead_time,
                                        g.prediction_window, 300.0));
  TrainedBaselines out;
  out.threshold = threshold;
  out.trend = trend;
  out.dft = dft;
  return out;
}

/// Staggered rolling restarts over the horizon: `events_per_day` churn
/// events, evenly spaced, walking the initial slots round-robin. A pure
/// function of its arguments, so every mode at a given rate replays the
/// identical churn.
membership::MembershipPlan churn_plan(double events_per_day) {
  membership::MembershipPlan plan;
  plan.seed = 4242;
  const std::size_t count =
      static_cast<std::size_t>(events_per_day * fleet_days() + 0.5);
  if (count == 0) return plan;
  const double spacing = fleet_base_config().duration /
                         static_cast<double>(count + 1);
  for (std::size_t i = 0; i < count; ++i) {
    plan.restart_node(spacing * static_cast<double>(i + 1), i % kFleetNodes);
  }
  return plan;
}

membership::NodeFactory scp_factory() {
  return [](const membership::JoinContext& ctx) {
    telecom::SimConfig cfg = fleet_base_config();
    cfg.seed = ctx.seed;
    return std::make_unique<runtime::ScpManagedSystem>(cfg);
  };
}

struct ChurnRun {
  double wall = 0.0;
  runtime::FleetTelemetry t;
};

ChurnRun run_churn_fleet(const TrainedBaselines& preds,
                         const membership::MembershipConfig& membership) {
  runtime::FleetConfig cfg;
  cfg.mea.windows = bench::case_study_windows();
  cfg.mea.evaluation_interval = 60.0;
  cfg.mea.warning_threshold = 0.6;
  cfg.num_threads = 4;
  cfg.scheduler = runtime::FleetScheduler::kEventDriven;
  cfg.num_shards = 4;
  cfg.epoch_ticks = 4;
  cfg.membership = membership;

  runtime::FleetController fleet(
      runtime::make_scp_fleet(fleet_base_config(), kFleetNodes), cfg);
  fleet.add_symptom_predictor(preds.threshold);
  fleet.add_symptom_predictor(preds.trend);
  fleet.add_event_predictor(preds.dft);
  fleet.add_action([] { return std::make_unique<act::StateCleanupAction>(); });
  fleet.add_action(
      [] { return std::make_unique<act::PreparedRepairAction>(900.0); });

  ChurnRun out;
  const auto t0 = std::chrono::steady_clock::now();
  fleet.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall = std::chrono::duration<double>(t1 - t0).count();
  out.t = fleet.telemetry();
  return out;
}

void emit_churn_row(const char* mode, double events_per_day,
                    const ChurnRun& r) {
  std::printf("  %-8s %-10.0f %-9.2f %-13.6f %-8llu %-8llu %-10llu %-10llu\n",
              mode, events_per_day, r.wall, r.t.system.availability(),
              static_cast<unsigned long long>(r.t.membership.nodes_joined),
              static_cast<unsigned long long>(r.t.membership.nodes_left),
              static_cast<unsigned long long>(r.t.membership.handoffs),
              static_cast<unsigned long long>(r.t.membership.scale_ups));
  bench::JsonLine()
      .field("bench", "fleet_churn")
      .field("mode", mode)
      .field("churn_events_per_day", events_per_day)
      .field("nodes", kFleetNodes)
      .field("live_nodes", r.t.nodes)
      .field("wall_seconds", r.wall)
      .field("availability", r.t.system.availability())
      .field("downtime", r.t.system.downtime)
      .field("nodes_joined", r.t.membership.nodes_joined)
      .field("nodes_left", r.t.membership.nodes_left)
      .field("handoffs", r.t.membership.handoffs)
      .field("scale_ups", r.t.membership.scale_ups)
      .field("drains", r.t.membership.drains)
      .field("warnings", r.t.warnings_raised)
      .field("actions", r.t.mea.total_actions())
      .field("node_steps", r.t.node_steps)
      .emit();
}

void print_churn_sweep(const TrainedBaselines& preds) {
  std::printf("== E16 (extension): availability and wall time vs churn "
              "rate, static vs elastic ==\n");
  std::printf("(%zu nodes x %.3f day(s); staggered rolling restarts; "
              "elastic adds prediction-driven scale-up)\n\n",
              kFleetNodes, fleet_days());
  std::printf("  %-8s %-10s %-9s %-13s %-8s %-8s %-10s %-10s\n", "mode",
              "churn/day", "wall [s]", "availability", "joined", "left",
              "handoffs", "scale_ups");

  const std::vector<double> rates = g_quick
                                        ? std::vector<double>{0.0, 8.0}
                                        : std::vector<double>{0.0, 4.0, 16.0};
  for (double rate : rates) {
    membership::MembershipConfig static_cfg;
    static_cfg.plan = churn_plan(rate);
    static_cfg.factory = scp_factory();
    emit_churn_row("static", rate, run_churn_fleet(preds, static_cfg));

    membership::MembershipConfig elastic_cfg = static_cfg;
    elastic_cfg.policy.enabled = true;
    // Preventive scale-up when the fleet's summed combined score says
    // ~45% of the fleet is trending toward failure.
    elastic_cfg.policy.scale_up_mass = 0.45 * kFleetNodes;
    elastic_cfg.policy.scale_up_nodes = 2;
    elastic_cfg.policy.cooldown_epochs = 32;
    elastic_cfg.policy.max_policy_joins = 8;
    emit_churn_row("elastic", rate, run_churn_fleet(preds, elastic_cfg));
  }
  std::printf("\n(restarts double as rejuvenation: a restarted slot "
              "returns leak-free, so moderate churn can raise "
              "availability on this workload)\n\n");
}

/// Overhead arm: the membership barrier on every epoch, with a policy
/// armed but never firing and zero planned churn, vs the inactive
/// default. Best-of-N wall times keep scheduler noise out of the gated
/// ratio (< 5%).
void print_churn_overhead(const TrainedBaselines& preds) {
  std::printf("== elastic overhead: armed-but-idle membership vs off ==\n");
  const int kReps = g_quick ? 2 : 3;

  double baseline = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto r = run_churn_fleet(preds, membership::MembershipConfig{});
    baseline = rep == 0 ? r.wall : std::min(baseline, r.wall);
  }

  membership::MembershipConfig armed;
  armed.policy.enabled = true;
  armed.policy.scale_up_mass = 1e18;  // never crossed
  armed.policy.drain_score = 2.0;     // scores are probabilities <= 1
  armed.policy.failover_replace = false;
  armed.factory = scp_factory();
  double observed = 0.0;
  std::uint64_t joined = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto r = run_churn_fleet(preds, armed);
    observed = rep == 0 ? r.wall : std::min(observed, r.wall);
    joined = r.t.membership.nodes_joined;
  }

  const double overhead_pct =
      baseline > 0.0 ? (observed / baseline - 1.0) * 100.0 : 0.0;
  std::printf("  baseline %.3f s, armed %.3f s -> overhead %+.2f%% "
              "(%llu policy joins — must be 0)\n\n",
              baseline, observed, overhead_pct,
              static_cast<unsigned long long>(joined));
  bench::JsonLine()
      .field("bench", "fleet_churn_overhead")
      .field("nodes", kFleetNodes)
      .field("baseline_seconds", baseline)
      .field("observed_seconds", observed)
      .field("overhead_pct", overhead_pct)
      .field("policy_joins", joined)
      .emit();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --quick before google-benchmark sees the argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      g_quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  // No microbenchmarks here — both arms are whole-run experiments — so
  // google-benchmark is initialized only to honour its standard flags.
  benchmark::Initialize(&argc, argv);

  const auto preds = train_baselines();
  print_churn_sweep(preds);
  print_churn_overhead(preds);
  return 0;
}
