// E10a — variable-selection ablation for UBF: the paper reports the
// Probabilistic Wrapper Approach "outperforming by far" forward selection,
// backward elimination and human expert choice ([35], Sect. 3.2/7).
// Expected shape: PWA at or near the top; "all variables" and naive expert
// picks below.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "prediction/ubf.hpp"

namespace {

using namespace pfm;

struct Row {
  const char* name;
  pred::VariableSelection mode;
};

void print_experiment() {
  std::printf("== E10a: UBF variable-selection ablation ==\n");
  std::printf("(paper: PWA outperforms forward/backward selection and "
              "expert choice)\n\n");
  const auto g = bench::case_study_windows();
  pred::EvalOptions eo;
  eo.windows = g;

  const Row rows[] = {
      {"PWA", pred::VariableSelection::kPwa},
      {"forward", pred::VariableSelection::kForward},
      {"backward", pred::VariableSelection::kBackward},
      {"all-vars", pred::VariableSelection::kAll},
      {"expert", pred::VariableSelection::kExpert},
  };
  const std::uint64_t seeds[] = {5, 11, 23};

  std::printf("  %-10s", "selection");
  for (auto s : seeds) {
    std::printf("  AUC@%-4llu", static_cast<unsigned long long>(s));
  }
  std::printf("  %-9s %-6s\n", "mean AUC", "mean F");
  for (const auto& row : rows) {
    double auc_sum = 0.0, f_sum = 0.0;
    std::printf("  %-10s", row.name);
    for (auto seed : seeds) {
      const auto [train, test] = bench::make_case_study(seed);
      pred::UbfConfig cfg;
      cfg.windows = g;
      cfg.selection = row.mode;
      if (row.mode == pred::VariableSelection::kExpert) {
        // A plausible human pick: utilization, free memory, response time
        // (levels only; the expert does not think of slopes).
        cfg.expert_variables = {
            *train.schema().index("util_max"),
            *train.schema().index("free_mem_min_mb"),
            *train.schema().index("resp_p95_ms"),
        };
      }
      pred::UbfPredictor ubf(cfg);
      ubf.train(train);
      const auto report =
          pred::make_report(row.name, pred::score_on_grid(ubf, test, eo));
      std::printf("  %-8.3f", report.auc);
      auc_sum += report.auc;
      f_sum += report.f_measure();
    }
    std::printf("  %-9.3f %-6.3f\n", auc_sum / 3.0, f_sum / 3.0);
  }
  std::printf("\n");
}

void BM_PwaSelectionSearch(benchmark::State& state) {
  const auto [train, test] = bench::make_case_study(9, 4.0);
  for (auto _ : state) {
    pred::UbfConfig cfg;
    cfg.windows = bench::case_study_windows();
    cfg.pwa_iterations = 20;
    cfg.shape_evaluations = 50;
    pred::UbfPredictor ubf(cfg);
    ubf.train(train);
    benchmark::DoNotOptimize(ubf.selected_variables());
  }
}
BENCHMARK(BM_PwaSelectionSearch)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
