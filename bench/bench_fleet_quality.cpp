// DESIGN.md §12 — the online prediction-quality scoreboard. Two arms:
//
//  1. Scoreboard arm: the leak-heavy SCP fleet with the quality tracker
//     and the flight recorder armed. Reports the combined lane's live
//     windowed confusion tallies, precision/recall/F/fpr, the streaming
//     AUC, and the Eq. 8 self-assessed availability next to the measured
//     one, as the {"bench":"fleet_quality",...} JSON row.
//
//  2. Overhead arm: the same fleet with the scoreboard + flight recorder
//     on vs fully off. Per-instant pending-ring bookkeeping, sharded
//     outcome counters and the per-refresh Eq. 8 solve are the entire
//     cost; the acceptance budget (gated in tools/bench_to_json.py) is
//     < 5%, emitted as the {"bench":"fleet_quality_overhead",...} row.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string_view>

#include "bench_common.hpp"
#include "ctmc/pfm_model.hpp"
#include "obs/observability.hpp"
#include "obs/quality.hpp"
#include "prediction/baselines.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace {

using namespace pfm;

constexpr std::size_t kFleetNodes = 16;

bool g_quick = false;

double fleet_days() { return g_quick ? 0.125 : 0.5; }

telecom::SimConfig fleet_base_config() {
  telecom::SimConfig cfg;
  cfg.seed = 91;
  cfg.duration = fleet_days() * 86400.0;
  cfg.leak_mtbf = 43200.0;  // leak-heavy: scores rise before failures
  return cfg;
}

struct TrainedBaselines {
  std::shared_ptr<const pred::SymptomPredictor> threshold;
  std::shared_ptr<const pred::SymptomPredictor> trend;
  std::shared_ptr<const pred::EventPredictor> dft;
};

TrainedBaselines train_baselines() {
  const auto g = bench::case_study_windows();
  const auto [train, test] = bench::make_case_study(5, /*days=*/4.0);
  (void)test;

  auto threshold = std::make_shared<pred::ThresholdPredictor>(g);
  threshold->train(train);
  auto trend = std::make_shared<pred::TrendPredictor>(g);
  trend->train(train);
  auto dft = std::make_shared<pred::DftPredictor>();
  dft->train(train.failure_sequences(g.data_window, g.lead_time),
             train.nonfailure_sequences(g.data_window, g.lead_time,
                                        g.prediction_window, 300.0));
  TrainedBaselines out;
  out.threshold = threshold;
  out.trend = trend;
  out.dft = dft;
  return out;
}

struct QualityRun {
  double wall = 0.0;
  runtime::FleetTelemetry t;
  // Combined-lane tallies (only meaningful when the scoreboard ran).
  obs::ConfusionCounts window;
  obs::ConfusionCounts lifetime;
  double auc = 0.5;
  double model_availability = 0.0;
  std::uint64_t post_mortems = 0;
};

QualityRun run_quality_fleet(const TrainedBaselines& preds, bool quality_on) {
  // Both arms share one external hub shape so the toggle isolates the
  // scoreboard + flight recorder, not hub-vs-private bookkeeping.
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 4;
  ocfg.flight_capacity = quality_on ? 32 : 0;
  obs::Observability hub(ocfg);

  runtime::FleetConfig cfg;
  cfg.mea.windows = bench::case_study_windows();
  cfg.mea.evaluation_interval = 60.0;
  cfg.mea.warning_threshold = 0.6;
  cfg.num_threads = 4;
  cfg.scheduler = runtime::FleetScheduler::kEventDriven;
  cfg.num_shards = 4;
  cfg.epoch_ticks = 4;
  cfg.quality.enabled = quality_on;
  cfg.obs = &hub;

  runtime::FleetController fleet(
      runtime::make_scp_fleet(fleet_base_config(), kFleetNodes), cfg);
  fleet.add_symptom_predictor(preds.threshold);
  fleet.add_symptom_predictor(preds.trend);
  fleet.add_event_predictor(preds.dft);
  fleet.add_action([] { return std::make_unique<act::StateCleanupAction>(); });
  fleet.add_action(
      [] { return std::make_unique<act::PreparedRepairAction>(900.0); });

  QualityRun out;
  const auto t0 = std::chrono::steady_clock::now();
  fleet.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall = std::chrono::duration<double>(t1 - t0).count();
  out.t = fleet.telemetry();
  if (const auto* q = fleet.quality_tracker()) {
    const std::size_t lane = q->combined_lane();
    out.window = q->windowed(lane);
    out.lifetime = q->cumulative(lane);
    out.auc = q->auc_estimate(lane);
    ctmc::PfmModelParams params = cfg.quality.model;
    params.quality = ctmc::clamped_quality(out.window.precision(),
                                           out.window.recall(),
                                           out.window.false_positive_rate());
    out.model_availability =
        ctmc::PfmAvailabilityModel(params).availability_closed_form();
  }
  if (hub.flight() != nullptr) out.post_mortems = hub.flight()->dump_count();
  return out;
}

void print_quality_scoreboard(const TrainedBaselines& preds) {
  std::printf("== DESIGN.md §12: online quality scoreboard and Eq. 8 "
              "self-assessment ==\n");
  std::printf("(%zu nodes x %.3f day(s); combined lane, windowed tallies; "
              "model availability from the live clamped quality)\n\n",
              kFleetNodes, fleet_days());

  const QualityRun r = run_quality_fleet(preds, /*quality_on=*/true);
  const double measured = r.t.system.availability();
  const double drift = r.model_availability - measured;
  std::printf("  window   tp %llu fp %llu tn %llu fn %llu\n",
              static_cast<unsigned long long>(r.window.true_positives),
              static_cast<unsigned long long>(r.window.false_positives),
              static_cast<unsigned long long>(r.window.true_negatives),
              static_cast<unsigned long long>(r.window.false_negatives));
  std::printf("  quality  precision %.4f recall %.4f F %.4f fpr %.4f "
              "auc %.4f\n",
              r.window.precision(), r.window.recall(), r.window.f_measure(),
              r.window.false_positive_rate(), r.auc);
  std::printf("  Eq. 8    model %.6f measured %.6f drift %+.6f\n",
              r.model_availability, measured, drift);
  std::printf("  lifetime %llu instants resolved, %llu post-mortem(s)\n\n",
              static_cast<unsigned long long>(r.lifetime.total()),
              static_cast<unsigned long long>(r.post_mortems));
  bench::JsonLine()
      .field("bench", "fleet_quality")
      .field("nodes", kFleetNodes)
      .field("wall_seconds", r.wall)
      .field("tp", r.window.true_positives)
      .field("fp", r.window.false_positives)
      .field("tn", r.window.true_negatives)
      .field("fn", r.window.false_negatives)
      .field("precision", r.window.precision())
      .field("recall", r.window.recall())
      .field("f_measure", r.window.f_measure())
      .field("fpr", r.window.false_positive_rate())
      .field("auc", r.auc)
      .field("model_availability", r.model_availability)
      .field("measured_availability", measured)
      .field("availability_drift", drift)
      .field("instants_resolved", r.lifetime.total())
      .field("post_mortems", r.post_mortems)
      .field("warnings", r.t.warnings_raised)
      .field("actions", r.t.mea.total_actions())
      .emit();
}

/// Overhead arm: scoreboard + flight recorder on vs off on an otherwise
/// identical fleet. Best-of-N wall times keep scheduler noise out of the
/// gated ratio (< 5%).
void print_quality_overhead(const TrainedBaselines& preds) {
  std::printf("== quality overhead: scoreboard + flight recorder vs off ==\n");
  const int kReps = g_quick ? 2 : 3;

  double baseline = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto r = run_quality_fleet(preds, /*quality_on=*/false);
    baseline = rep == 0 ? r.wall : std::min(baseline, r.wall);
  }

  double observed = 0.0;
  std::uint64_t resolved = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto r = run_quality_fleet(preds, /*quality_on=*/true);
    observed = rep == 0 ? r.wall : std::min(observed, r.wall);
    resolved = r.lifetime.total();
  }

  const double overhead_pct =
      baseline > 0.0 ? (observed / baseline - 1.0) * 100.0 : 0.0;
  std::printf("  baseline %.3f s, scoreboard %.3f s -> overhead %+.2f%% "
              "(%llu instants resolved — must be > 0)\n\n",
              baseline, observed, overhead_pct,
              static_cast<unsigned long long>(resolved));
  bench::JsonLine()
      .field("bench", "fleet_quality_overhead")
      .field("nodes", kFleetNodes)
      .field("baseline_seconds", baseline)
      .field("observed_seconds", observed)
      .field("overhead_pct", overhead_pct)
      .field("instants_resolved", resolved)
      .emit();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --quick before google-benchmark sees the argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      g_quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  // No microbenchmarks here — both arms are whole-run experiments — so
  // google-benchmark is initialized only to honour its standard flags.
  benchmark::Initialize(&argc, argv);

  const auto preds = train_baselines();
  print_quality_scoreboard(preds);
  print_quality_overhead(preds);
  return 0;
}
