#pragma once

// Shared plumbing of the experiment benches. Every bench binary prints the
// rows/series of its paper artifact first (the reproduction output), then
// runs google-benchmark timing loops for the underlying computation.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>

#include "monitoring/dataset.hpp"
#include "prediction/evaluate.hpp"
#include "telecom/simulator.hpp"

namespace pfm::bench {

/// Default window geometry used across the case-study experiments
/// (Fig. 6: data window 600 s, lead time 300 s, prediction period 300 s).
inline pred::WindowGeometry case_study_windows() {
  return {600.0, 300.0, 300.0};
}

/// Generates the simulated SCP trace for one seed and splits it 70/30 into
/// training and test periods.
inline std::pair<mon::MonitoringDataset, mon::MonitoringDataset>
make_case_study(std::uint64_t seed, double days = 14.0) {
  telecom::SimConfig cfg;
  cfg.seed = seed;
  cfg.duration = days * 86400.0;
  telecom::ScpSimulator sim(cfg);
  sim.run();
  auto trace = sim.take_trace();
  return trace.split_at(0.7 * cfg.duration);
}

/// Prints one report row in a fixed-width table format.
inline void print_report_row(const pred::PredictorReport& r) {
  std::printf("  %-12s %6.3f %9.3f %7.3f %7.4f %7.3f\n", r.name.c_str(),
              r.auc, r.precision(), r.recall(), r.false_positive_rate(),
              r.f_measure());
}

inline void print_report_header() {
  std::printf("  %-12s %6s %9s %7s %7s %7s\n", "predictor", "AUC",
              "precision", "recall", "fpr", "F");
}

/// Builds one flat JSON object and prints it as a single line, so bench
/// output can be scraped by scripts alongside the human-readable tables.
class JsonLine {
 public:
  JsonLine& field(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return raw(key, buf);
  }
  JsonLine& field(const char* key, long long value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& field(const char* key, std::size_t value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& field(const char* key, const char* value) {
    return raw(key, "\"" + std::string(value) + "\"");
  }

  /// Prints `{"k1":v1,...}` followed by a newline.
  void emit() const { std::printf("{%s}\n", body_.c_str()); }

 private:
  JsonLine& raw(const char* key, const std::string& value) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }

  std::string body_;
};

}  // namespace pfm::bench
