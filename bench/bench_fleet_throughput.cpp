// E14 (extension) — fleet-scale MEA throughput. The FleetController runs
// the Monitor-Evaluate-Act loop over N managed systems on a fixed thread
// pool; results are bit-identical for any thread count, so the only
// question is wall time. This bench sweeps the pool size at a fixed fleet
// and prints one human-readable row plus one JSON line per configuration
// (scrapeable via the {"bench":"fleet_throughput",...} prefix).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "obs/observability.hpp"
#include "prediction/baselines.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace {

using namespace pfm;

constexpr std::size_t kFleetNodes = 8;

// --quick trims the sweep for CI: shorter horizon, fewer repetitions,
// 1/8-thread endpoints only, microbenchmarks skipped. The JSON rows the
// regression gate consumes are emitted either way.
bool g_quick = false;

double fleet_days() { return g_quick ? 0.25 : 1.0; }

telecom::SimConfig fleet_base_config() {
  telecom::SimConfig cfg;
  cfg.seed = 91;
  cfg.duration = fleet_days() * 86400.0;
  cfg.leak_mtbf = 43200.0;  // leak-heavy: plenty of warnings to act on
  return cfg;
}

struct TrainedBaselines {
  std::shared_ptr<const pred::SymptomPredictor> threshold;
  std::shared_ptr<const pred::SymptomPredictor> trend;
  std::shared_ptr<const pred::EventPredictor> dft;
};

/// Trains the cheap baselines once; they are shared read-only by every
/// fleet run in the sweep.
TrainedBaselines train_baselines() {
  const auto g = bench::case_study_windows();
  const auto [train, test] = bench::make_case_study(5, /*days=*/4.0);
  (void)test;

  auto threshold = std::make_shared<pred::ThresholdPredictor>(g);
  threshold->train(train);
  auto trend = std::make_shared<pred::TrendPredictor>(g);
  trend->train(train);
  auto dft = std::make_shared<pred::DftPredictor>();
  dft->train(train.failure_sequences(g.data_window, g.lead_time),
             train.nonfailure_sequences(g.data_window, g.lead_time,
                                        g.prediction_window, 300.0));
  TrainedBaselines out;
  out.threshold = threshold;
  out.trend = trend;
  out.dft = dft;
  return out;
}

runtime::FleetTelemetry run_fleet(
    const TrainedBaselines& preds, std::size_t num_threads,
    double* wall_seconds, obs::Observability* hub = nullptr,
    runtime::FleetPath path = runtime::FleetPath::kOptimized) {
  runtime::FleetConfig cfg;
  cfg.mea.windows = bench::case_study_windows();
  cfg.mea.evaluation_interval = 60.0;
  cfg.mea.warning_threshold = 0.6;
  cfg.num_threads = num_threads;
  cfg.path = path;
  cfg.obs = hub;

  runtime::FleetController fleet(
      runtime::make_scp_fleet(fleet_base_config(), kFleetNodes), cfg);
  fleet.add_symptom_predictor(preds.threshold);
  fleet.add_symptom_predictor(preds.trend);
  fleet.add_event_predictor(preds.dft);
  fleet.add_action([] { return std::make_unique<act::StateCleanupAction>(); });
  fleet.add_action(
      [] { return std::make_unique<act::PreparedRepairAction>(900.0); });

  const auto t0 = std::chrono::steady_clock::now();
  fleet.run();
  const auto t1 = std::chrono::steady_clock::now();
  *wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return fleet.telemetry();
}

void print_experiment(const TrainedBaselines& preds) {
  std::printf("== E14 (extension): fleet MEA throughput vs pool size ==\n");
  std::printf("(%zu nodes x %.2f day(s); per-node results are identical "
              "across thread counts)\n\n",
              kFleetNodes, fleet_days());

  std::printf("  %-8s %-9s %-9s %-10s %-12s %-10s %-10s\n", "threads",
              "wall [s]", "speedup", "scores/s", "sim-s/s", "warnings",
              "actions");
  double wall_1 = 0.0;
  const std::vector<std::size_t> sweep =
      g_quick ? std::vector<std::size_t>{1u, 8u}
              : std::vector<std::size_t>{1u, 2u, 4u, 8u};
  for (std::size_t threads : sweep) {
    double wall = 0.0;
    const auto t = run_fleet(preds, threads, &wall);
    if (threads == 1) wall_1 = wall;
    const double scores_per_sec =
        wall > 0.0 ? static_cast<double>(t.scores_computed) / wall : 0.0;
    const double sim_sec_per_sec =
        wall > 0.0 ? t.system.simulated / wall : 0.0;
    std::printf("  %-8zu %-9.2f %-9.2f %-10.0f %-12.0f %-10zu %-10zu\n",
                threads, wall, wall > 0.0 ? wall_1 / wall : 0.0,
                scores_per_sec, sim_sec_per_sec, t.warnings_raised,
                t.mea.total_actions());
    bench::JsonLine()
        .field("bench", "fleet_throughput")
        .field("nodes", t.nodes)
        .field("threads", threads)
        .field("wall_seconds", wall)
        .field("speedup", wall > 0.0 ? wall_1 / wall : 0.0)
        .field("rounds", t.rounds)
        .field("scores_computed", t.scores_computed)
        .field("scores_per_second", scores_per_sec)
        .field("warnings", t.warnings_raised)
        .field("actions", t.mea.total_actions())
        .field("monitor_seconds", t.latency.monitor_seconds)
        .field("evaluate_seconds", t.latency.evaluate_seconds)
        .field("act_seconds", t.latency.act_seconds)
        .field("availability", t.system.availability())
        .emit();
  }
  std::printf("\n(the Monitor stage dominates: node simulation is the bulk "
              "of each round, and it parallelizes across nodes)\n\n");
}

/// Observability overhead arm: the same fleet run with the default
/// private metrics-only hub (the deployed baseline) vs an external hub
/// with tracing live. Best-of-N wall times keep scheduler noise out of
/// the ratio; the acceptance budget is < 5% overhead.
void print_obs_overhead(const TrainedBaselines& preds) {
  std::printf("== obs overhead: full hub (metrics + tracing) vs default ==\n");
  constexpr std::size_t kThreads = 4;
  const int kReps = g_quick ? 1 : 3;

  double baseline = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    double wall = 0.0;
    run_fleet(preds, kThreads, &wall);
    baseline = rep == 0 ? wall : std::min(baseline, wall);
  }

  double observed = 0.0;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::ObservabilityConfig ocfg;
    ocfg.shards = kThreads;
    ocfg.trace_capacity = 1 << 16;
    obs::Observability hub(ocfg);
    double wall = 0.0;
    run_fleet(preds, kThreads, &wall, &hub);
    observed = rep == 0 ? wall : std::min(observed, wall);
    spans_recorded = hub.trace().recorded();
    spans_dropped = hub.trace().dropped();
  }

  const double overhead_pct =
      baseline > 0.0 ? (observed / baseline - 1.0) * 100.0 : 0.0;
  std::printf("  baseline %.3f s, observed %.3f s -> overhead %+.2f%% "
              "(%llu spans, %llu dropped)\n\n",
              baseline, observed, overhead_pct,
              static_cast<unsigned long long>(spans_recorded),
              static_cast<unsigned long long>(spans_dropped));
  bench::JsonLine()
      .field("bench", "fleet_obs_overhead")
      .field("nodes", kFleetNodes)
      .field("threads", kThreads)
      .field("baseline_seconds", baseline)
      .field("observed_seconds", observed)
      .field("overhead_pct", overhead_pct)
      .field("spans_recorded", spans_recorded)
      .field("spans_dropped", spans_dropped)
      .emit();
}

/// Optimized-vs-reference arm: the same seeded fleet through both
/// FleetPath settings at the widest pool. Emits one JSON row per path
/// carrying the run fingerprint (rounds/warnings/actions/availability) —
/// the regression gate in tools/bench_to_json.py checks the wall-time
/// ratio, and this function itself aborts if the fingerprints diverge
/// (paths must differ in wall time only).
void print_path_comparison(const TrainedBaselines& preds) {
  std::printf("== hot path: optimized vs reference (8 threads) ==\n");
  constexpr std::size_t kThreads = 8;
  // Best-of-N keeps scheduler noise out of the gated ratio; two reps
  // even in quick mode — this arm feeds a CI regression gate.
  const int reps = g_quick ? 2 : 3;

  struct Arm {
    runtime::FleetPath path;
    const char* name;
    double wall = 0.0;
    runtime::FleetTelemetry telemetry;
  };
  Arm arms[] = {{runtime::FleetPath::kReference, "reference", 0.0, {}},
                {runtime::FleetPath::kOptimized, "optimized", 0.0, {}}};
  for (auto& arm : arms) {
    for (int rep = 0; rep < reps; ++rep) {
      double wall = 0.0;
      arm.telemetry = run_fleet(preds, kThreads, &wall, nullptr, arm.path);
      arm.wall = rep == 0 ? wall : std::min(arm.wall, wall);
    }
    const double steps_per_sec =
        arm.wall > 0.0
            ? static_cast<double>(arm.telemetry.rounds) / arm.wall
            : 0.0;
    std::printf("  %-10s wall %.3f s, %.0f steps/s, %zu warnings, "
                "%zu actions, availability %.6f\n",
                arm.name, arm.wall, steps_per_sec,
                arm.telemetry.warnings_raised,
                arm.telemetry.mea.total_actions(),
                arm.telemetry.system.availability());
    bench::JsonLine()
        .field("bench", "fleet_path")
        .field("path", arm.name)
        .field("nodes", kFleetNodes)
        .field("threads", kThreads)
        .field("wall_seconds", arm.wall)
        .field("steps_per_second", steps_per_sec)
        .field("rounds", arm.telemetry.rounds)
        .field("warnings", arm.telemetry.warnings_raised)
        .field("actions", arm.telemetry.mea.total_actions())
        .field("availability", arm.telemetry.system.availability())
        .emit();
  }
  const Arm& ref = arms[0];
  const Arm& opt = arms[1];
  if (ref.telemetry.rounds != opt.telemetry.rounds ||
      ref.telemetry.warnings_raised != opt.telemetry.warnings_raised ||
      ref.telemetry.mea.total_actions() != opt.telemetry.mea.total_actions() ||
      ref.telemetry.system.availability() !=
          opt.telemetry.system.availability()) {
    std::fprintf(stderr,
                 "FATAL: optimized and reference paths diverged — the paths "
                 "must differ in wall time only\n");
    std::exit(1);
  }
  std::printf("  speedup (reference/optimized): %.2fx\n\n",
              opt.wall > 0.0 ? ref.wall / opt.wall : 0.0);
}

void BM_FleetRoundSingleThread(benchmark::State& state) {
  // Cost of one lockstep MEA round (Monitor+Evaluate+Act) at 1 thread.
  const auto preds = train_baselines();
  runtime::FleetConfig cfg;
  cfg.mea.windows = bench::case_study_windows();
  cfg.mea.evaluation_interval = 60.0;
  cfg.mea.warning_threshold = 0.6;
  cfg.num_threads = 1;
  runtime::FleetController fleet(
      runtime::make_scp_fleet(fleet_base_config(), kFleetNodes), cfg);
  fleet.add_symptom_predictor(preds.threshold);
  fleet.add_symptom_predictor(preds.trend);
  fleet.add_event_predictor(preds.dft);
  double t = 0.0;
  for (auto _ : state) {
    t += cfg.mea.evaluation_interval;
    fleet.run_until(t);
    benchmark::DoNotOptimize(fleet.telemetry().rounds);
  }
}
BENCHMARK(BM_FleetRoundSingleThread)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --quick before google-benchmark sees the argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      g_quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  const auto preds = train_baselines();
  print_experiment(preds);
  print_obs_overhead(preds);
  print_path_comparison(preds);
  if (!g_quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
