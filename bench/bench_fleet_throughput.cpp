// E14 (extension) — fleet-scale MEA throughput. The FleetController runs
// the Monitor-Evaluate-Act loop over N managed systems on a fixed thread
// pool; results are bit-identical for any thread count, so the only
// question is wall time. This bench sweeps the pool size at a fixed fleet
// and prints one human-readable row plus one JSON line per configuration
// (scrapeable via the {"bench":"fleet_throughput",...} prefix).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "monitoring/types.hpp"
#include "numerics/rng.hpp"
#include "numerics/simd.hpp"
#include "obs/observability.hpp"
#include "prediction/baselines.hpp"
#include "prediction/frozen.hpp"
#include "prediction/kernels.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace {

using namespace pfm;

constexpr std::size_t kFleetNodes = 8;

// --quick trims the sweep for CI: shorter horizon, fewer repetitions,
// 1/8-thread endpoints only, microbenchmarks skipped. The JSON rows the
// regression gate consumes are emitted either way.
bool g_quick = false;

double fleet_days() { return g_quick ? 0.25 : 1.0; }

telecom::SimConfig fleet_base_config() {
  telecom::SimConfig cfg;
  cfg.seed = 91;
  cfg.duration = fleet_days() * 86400.0;
  cfg.leak_mtbf = 43200.0;  // leak-heavy: plenty of warnings to act on
  return cfg;
}

struct TrainedBaselines {
  std::shared_ptr<const pred::SymptomPredictor> threshold;
  std::shared_ptr<const pred::SymptomPredictor> trend;
  std::shared_ptr<const pred::EventPredictor> dft;
};

/// Trains the cheap baselines once; they are shared read-only by every
/// fleet run in the sweep.
TrainedBaselines train_baselines() {
  const auto g = bench::case_study_windows();
  const auto [train, test] = bench::make_case_study(5, /*days=*/4.0);
  (void)test;

  auto threshold = std::make_shared<pred::ThresholdPredictor>(g);
  threshold->train(train);
  auto trend = std::make_shared<pred::TrendPredictor>(g);
  trend->train(train);
  auto dft = std::make_shared<pred::DftPredictor>();
  dft->train(train.failure_sequences(g.data_window, g.lead_time),
             train.nonfailure_sequences(g.data_window, g.lead_time,
                                        g.prediction_window, 300.0));
  TrainedBaselines out;
  out.threshold = threshold;
  out.trend = trend;
  out.dft = dft;
  return out;
}

runtime::FleetTelemetry run_fleet(
    const TrainedBaselines& preds, std::size_t num_threads,
    double* wall_seconds, obs::Observability* hub = nullptr,
    runtime::FleetPath path = runtime::FleetPath::kOptimized) {
  runtime::FleetConfig cfg;
  cfg.mea.windows = bench::case_study_windows();
  cfg.mea.evaluation_interval = 60.0;
  cfg.mea.warning_threshold = 0.6;
  cfg.num_threads = num_threads;
  cfg.path = path;
  cfg.obs = hub;

  runtime::FleetController fleet(
      runtime::make_scp_fleet(fleet_base_config(), kFleetNodes), cfg);
  fleet.add_symptom_predictor(preds.threshold);
  fleet.add_symptom_predictor(preds.trend);
  fleet.add_event_predictor(preds.dft);
  fleet.add_action([] { return std::make_unique<act::StateCleanupAction>(); });
  fleet.add_action(
      [] { return std::make_unique<act::PreparedRepairAction>(900.0); });

  const auto t0 = std::chrono::steady_clock::now();
  fleet.run();
  const auto t1 = std::chrono::steady_clock::now();
  *wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return fleet.telemetry();
}

void print_experiment(const TrainedBaselines& preds) {
  std::printf("== E14 (extension): fleet MEA throughput vs pool size ==\n");
  std::printf("(%zu nodes x %.2f day(s); per-node results are identical "
              "across thread counts)\n\n",
              kFleetNodes, fleet_days());

  std::printf("  %-8s %-9s %-9s %-10s %-12s %-10s %-10s\n", "threads",
              "wall [s]", "speedup", "scores/s", "sim-s/s", "warnings",
              "actions");
  double wall_1 = 0.0;
  const std::vector<std::size_t> sweep =
      g_quick ? std::vector<std::size_t>{1u, 8u}
              : std::vector<std::size_t>{1u, 2u, 4u, 8u};
  for (std::size_t threads : sweep) {
    double wall = 0.0;
    const auto t = run_fleet(preds, threads, &wall);
    if (threads == 1) wall_1 = wall;
    const double scores_per_sec =
        wall > 0.0 ? static_cast<double>(t.scores_computed) / wall : 0.0;
    const double sim_sec_per_sec =
        wall > 0.0 ? t.system.simulated / wall : 0.0;
    std::printf("  %-8zu %-9.2f %-9.2f %-10.0f %-12.0f %-10zu %-10zu\n",
                threads, wall, wall > 0.0 ? wall_1 / wall : 0.0,
                scores_per_sec, sim_sec_per_sec, t.warnings_raised,
                t.mea.total_actions());
    bench::JsonLine()
        .field("bench", "fleet_throughput")
        .field("nodes", t.nodes)
        .field("threads", threads)
        .field("wall_seconds", wall)
        .field("speedup", wall > 0.0 ? wall_1 / wall : 0.0)
        .field("rounds", t.rounds)
        .field("scores_computed", t.scores_computed)
        .field("scores_per_second", scores_per_sec)
        .field("warnings", t.warnings_raised)
        .field("actions", t.mea.total_actions())
        .field("monitor_seconds", t.latency.monitor_seconds)
        .field("evaluate_seconds", t.latency.evaluate_seconds)
        .field("act_seconds", t.latency.act_seconds)
        .field("availability", t.system.availability())
        .emit();
  }
  std::printf("\n(the Monitor stage dominates: node simulation is the bulk "
              "of each round, and it parallelizes across nodes)\n\n");
}

// --- shard-scaling arm (E15) ----------------------------------------------
//
// The event-driven sharded scheduler's claim is structural: adaptive
// sampling visits quiet nodes exponentially less often, so fleet
// throughput (simulated node-seconds per wall second) scales with the
// fleet, not with the dense visit count. The workload here is tuned to
// the regime that scheduler targets — many cheap single-unit nodes whose
// per-visit Evaluate cost (symptom windowing + ensemble scoring)
// dominates the coarse simulator tick, and a fleet that is quiet most of
// the time with occasional leak/cascade episodes pinning nodes dense.

/// One cheap single-unit SCP node for the scaling grid: coarse tick, low
/// load, sparse benign noise (noise would otherwise re-densify quiet
/// nodes through the new-events hot trigger and mask the scheduling
/// effect being measured).
telecom::SimConfig shard_node_config(double duration_seconds) {
  telecom::SimConfig cfg;
  cfg.seed = 17;
  cfg.duration = duration_seconds;
  cfg.tick = 30.0;
  cfg.num_nodes = 1;
  cfg.arrival_rate = 6.0;
  cfg.node_capacity = 30.0;
  cfg.noise_event_rate = 1.0 / 7200.0;
  cfg.lookalike_event_rate = 1.0 / 14400.0;
  return cfg;
}

struct ShardRun {
  double wall = 0.0;
  runtime::FleetTelemetry t;
};

ShardRun run_shard_fleet(const TrainedBaselines& preds, std::size_t nodes,
                         std::size_t threads, std::size_t shards,
                         bool event_driven, double duration_seconds) {
  runtime::FleetConfig cfg;
  cfg.mea.windows = bench::case_study_windows();
  cfg.mea.evaluation_interval = 30.0;
  cfg.mea.warning_threshold = 0.6;
  // A two-hour symptom context per score: trend fitting over 240 samples
  // is the realistic Evaluate weight adaptive sampling amortizes.
  cfg.mea.context_samples = 240;
  cfg.num_threads = threads;
  if (event_driven) {
    cfg.scheduler = runtime::FleetScheduler::kEventDriven;
    cfg.num_shards = shards;
    cfg.epoch_ticks = 8;
    cfg.schedule.adaptive = true;
    cfg.schedule.max_gap = 16;
    // Sigmoid-shaped baseline scores idle around 0.3-0.5, so the default
    // near-threshold fraction would pin every quiet node dense. Back off
    // unless a node actually crosses the warning threshold — urgency and
    // symptom-delta triggers still snap faulty nodes back to dense.
    cfg.schedule.hot_score_fraction = 1.0;
  }

  runtime::FleetController fleet(
      runtime::make_scp_fleet(shard_node_config(duration_seconds), nodes),
      cfg);
  fleet.add_symptom_predictor(preds.threshold);
  fleet.add_symptom_predictor(preds.trend);
  fleet.add_event_predictor(preds.dft);
  fleet.add_action([] { return std::make_unique<act::StateCleanupAction>(); });
  fleet.add_action(
      [] { return std::make_unique<act::PreparedRepairAction>(900.0); });

  ShardRun out;
  const auto t0 = std::chrono::steady_clock::now();
  fleet.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall = std::chrono::duration<double>(t1 - t0).count();
  out.t = fleet.telemetry();
  return out;
}

void emit_shard_row(const char* mode, std::size_t shards,
                    std::size_t threads, const ShardRun& r,
                    double speedup_vs_lockstep) {
  const double scores_per_sec =
      r.wall > 0.0 ? static_cast<double>(r.t.scores_computed) / r.wall : 0.0;
  const double sim_sec_per_sec =
      r.wall > 0.0 ? r.t.system.simulated / r.wall : 0.0;
  std::printf("  %-9s %-8zu %-8zu %-9.2f %-9.2f %-12.0f %-10.0f %-11zu\n",
              mode, shards, threads, r.wall, speedup_vs_lockstep,
              sim_sec_per_sec, scores_per_sec, r.t.node_steps);
  bench::JsonLine()
      .field("bench", "fleet_shard_scaling")
      .field("mode", mode)
      .field("nodes", r.t.nodes)
      .field("shards", shards)
      .field("threads", threads)
      .field("wall_seconds", r.wall)
      .field("speedup_vs_lockstep", speedup_vs_lockstep)
      .field("sim_seconds_per_second", sim_sec_per_sec)
      .field("scores_per_second", scores_per_sec)
      .field("rounds", r.t.rounds)
      .field("epochs", r.t.epochs)
      .field("node_steps", r.t.node_steps)
      .field("scores_computed", r.t.scores_computed)
      .field("warnings", r.t.warnings_raised)
      .field("actions", r.t.mea.total_actions())
      .field("availability", r.t.system.availability())
      .emit();
}

void print_shard_scaling(const TrainedBaselines& preds) {
  const std::size_t grid_nodes = g_quick ? 256 : 512;
  const double grid_duration = g_quick ? 3600.0 : 7200.0;

  std::printf("== E15 (extension): sharded event-driven scheduling vs "
              "lockstep ==\n");
  std::printf("(%zu single-unit nodes x %.0f sim-s; adaptive sampling, "
              "max_gap 16, epoch_ticks 8)\n\n",
              grid_nodes, grid_duration);
  std::printf("  %-9s %-8s %-8s %-9s %-9s %-12s %-10s %-11s\n", "mode",
              "shards", "threads", "wall [s]", "speedup", "sim-s/s",
              "scores/s", "node_steps");

  // The 8-thread lockstep baseline the ≥1.5x gate measures against.
  const auto lockstep =
      run_shard_fleet(preds, grid_nodes, 8, 1, false, grid_duration);
  emit_shard_row("lockstep", 1, 8, lockstep, 1.0);

  // Shard sweep at the gate thread count.
  const std::vector<std::size_t> shard_sweep =
      g_quick ? std::vector<std::size_t>{1u, 8u}
              : std::vector<std::size_t>{1u, 2u, 4u, 8u};
  for (std::size_t shards : shard_sweep) {
    const auto r =
        run_shard_fleet(preds, grid_nodes, 8, shards, true, grid_duration);
    emit_shard_row("event", shards, 8, r,
                   r.wall > 0.0 ? lockstep.wall / r.wall : 0.0);
  }

  // Thread sweep at 8 shards: how the event-driven path scales with the
  // pool (each shard is sequential, shards spread across threads).
  const std::vector<std::size_t> thread_sweep =
      g_quick ? std::vector<std::size_t>{1u}
              : std::vector<std::size_t>{1u, 2u, 4u};
  for (std::size_t threads : thread_sweep) {
    const auto r =
        run_shard_fleet(preds, grid_nodes, threads, 8, true, grid_duration);
    emit_shard_row("event", 8, threads, r,
                   r.wall > 0.0 ? lockstep.wall / r.wall : 0.0);
  }

  // Fleet-scale row: 10^5 adaptive nodes over a short horizon. Skipped
  // in --quick (CI) runs; the committed BENCH_fleet.json carries it.
  if (!g_quick) {
    const std::size_t scale_nodes = 100000;
    const auto r = run_shard_fleet(preds, scale_nodes, 8, 64, true, 900.0);
    std::printf("\n  fleet-scale: %zu nodes, 64 shards, 8 threads: "
                "%.2f s wall, %.0f sim-s/s, %zu node_steps\n",
                scale_nodes, r.wall,
                r.wall > 0.0 ? r.t.system.simulated / r.wall : 0.0,
                r.t.node_steps);
    emit_shard_row("event", 64, 8, r, 0.0);
  }
  std::printf("\n(adaptive sampling visits quiet nodes ~max_gap times "
              "less often; simulator stepping still covers the full "
              "horizon, so the win is bounded by the Evaluate share)\n\n");
}

/// Observability overhead arm: the same fleet run with the default
/// private metrics-only hub (the deployed baseline) vs an external hub
/// with tracing live. Best-of-N wall times keep scheduler noise out of
/// the ratio; the acceptance budget is < 5% overhead.
void print_obs_overhead(const TrainedBaselines& preds) {
  std::printf("== obs overhead: full hub (metrics + tracing) vs default ==\n");
  constexpr std::size_t kThreads = 4;
  const int kReps = g_quick ? 1 : 3;

  double baseline = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    double wall = 0.0;
    run_fleet(preds, kThreads, &wall);
    baseline = rep == 0 ? wall : std::min(baseline, wall);
  }

  double observed = 0.0;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::ObservabilityConfig ocfg;
    ocfg.shards = kThreads;
    ocfg.trace_capacity = 1 << 16;
    obs::Observability hub(ocfg);
    double wall = 0.0;
    run_fleet(preds, kThreads, &wall, &hub);
    observed = rep == 0 ? wall : std::min(observed, wall);
    spans_recorded = hub.trace().recorded();
    spans_dropped = hub.trace().dropped();
  }

  const double overhead_pct =
      baseline > 0.0 ? (observed / baseline - 1.0) * 100.0 : 0.0;
  std::printf("  baseline %.3f s, observed %.3f s -> overhead %+.2f%% "
              "(%llu spans, %llu dropped)\n\n",
              baseline, observed, overhead_pct,
              static_cast<unsigned long long>(spans_recorded),
              static_cast<unsigned long long>(spans_dropped));
  bench::JsonLine()
      .field("bench", "fleet_obs_overhead")
      .field("nodes", kFleetNodes)
      .field("threads", kThreads)
      .field("baseline_seconds", baseline)
      .field("observed_seconds", observed)
      .field("overhead_pct", overhead_pct)
      .field("spans_recorded", spans_recorded)
      .field("spans_dropped", spans_dropped)
      .emit();
}

/// Optimized-vs-reference arm: the same seeded fleet through both
/// FleetPath settings at the widest pool. Emits one JSON row per path
/// carrying the run fingerprint (rounds/warnings/actions/availability) —
/// the regression gate in tools/bench_to_json.py checks the wall-time
/// ratio, and this function itself aborts if the fingerprints diverge
/// (paths must differ in wall time only).
void print_path_comparison(const TrainedBaselines& preds) {
  std::printf("== hot path: optimized vs reference (8 threads) ==\n");
  constexpr std::size_t kThreads = 8;
  // Best-of-N keeps scheduler noise out of the gated ratio; two reps
  // even in quick mode — this arm feeds a CI regression gate.
  const int reps = g_quick ? 2 : 3;

  struct Arm {
    runtime::FleetPath path;
    const char* name;
    double wall = 0.0;
    runtime::FleetTelemetry telemetry;
  };
  Arm arms[] = {{runtime::FleetPath::kReference, "reference", 0.0, {}},
                {runtime::FleetPath::kOptimized, "optimized", 0.0, {}},
                {runtime::FleetPath::kSimd, "simd", 0.0, {}}};
  for (auto& arm : arms) {
    for (int rep = 0; rep < reps; ++rep) {
      double wall = 0.0;
      arm.telemetry = run_fleet(preds, kThreads, &wall, nullptr, arm.path);
      arm.wall = rep == 0 ? wall : std::min(arm.wall, wall);
    }
    const double steps_per_sec =
        arm.wall > 0.0
            ? static_cast<double>(arm.telemetry.rounds) / arm.wall
            : 0.0;
    std::printf("  %-10s wall %.3f s, %.0f steps/s, %zu warnings, "
                "%zu actions, availability %.6f\n",
                arm.name, arm.wall, steps_per_sec,
                arm.telemetry.warnings_raised,
                arm.telemetry.mea.total_actions(),
                arm.telemetry.system.availability());
    bench::JsonLine()
        .field("bench", "fleet_path")
        .field("path", arm.name)
        .field("nodes", kFleetNodes)
        .field("threads", kThreads)
        .field("wall_seconds", arm.wall)
        .field("steps_per_second", steps_per_sec)
        .field("rounds", arm.telemetry.rounds)
        .field("warnings", arm.telemetry.warnings_raised)
        .field("actions", arm.telemetry.mea.total_actions())
        .field("availability", arm.telemetry.system.availability())
        .emit();
  }
  const Arm& ref = arms[0];
  for (const Arm& arm : arms) {
    if (ref.telemetry.rounds != arm.telemetry.rounds ||
        ref.telemetry.warnings_raised != arm.telemetry.warnings_raised ||
        ref.telemetry.mea.total_actions() !=
            arm.telemetry.mea.total_actions() ||
        ref.telemetry.system.availability() !=
            arm.telemetry.system.availability()) {
      std::fprintf(stderr,
                   "FATAL: the %s path diverged from the reference path — "
                   "the paths must differ in wall time only\n",
                   arm.name);
      std::exit(1);
    }
  }
  const Arm& opt = arms[1];
  std::printf("  speedup (reference/optimized): %.2fx\n\n",
              opt.wall > 0.0 ? ref.wall / opt.wall : 0.0);
}

// --- SIMD kernel-sweep + frozen-serving arms ------------------------------
//
// The vectorized Eq. 1 mixture-kernel sweep against the scalar reference
// over identical pre-gathered SoA columns, and the frozen-artifact
// serving path against the live engine over the same model. The SIMD row
// feeds the >=2x gate in tools/bench_to_json.py (skipped when only the
// scalar backend is compiled in); the frozen row is a mmap-serving
// sanity ratio, not a speedup claim — both predictors wrap the same
// gather + sweep functions.

/// Synthetic but well-formed mixture model (the same shape the SIMD
/// conformance suite uses): width-derived constants built with the exact
/// reference expressions, all-level features so one-sample contexts
/// suffice for the serving arm.
pred::MixtureModel make_sweep_model(num::Rng& rng, std::size_t num_kernels,
                                    std::size_t dim) {
  pred::MixtureModel m;
  m.name = "UBF";
  m.mixture_kernels = true;
  m.num_raw_vars = dim;
  for (std::size_t i = 0; i < dim; ++i) {
    m.selected.push_back(i);
    m.lo.push_back(rng.uniform(-1.0, 0.0));
    m.range.push_back(rng.uniform(0.5, 2.0));
  }
  for (std::size_t i = 0; i < num_kernels; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      m.centers.push_back(rng.uniform(-0.2, 1.2));
    }
    const double w = std::max(rng.uniform(0.05, 1.5), 1e-6);
    m.w.push_back(w);
    m.two_w_sq.push_back(2.0 * w * w);
    m.step_scale.push_back(0.3 * w);
    m.mixture.push_back(rng.uniform(0.0, 1.0));
    m.weights.push_back(rng.uniform(-1.5, 1.5));
  }
  m.weights.push_back(rng.uniform(-0.5, 0.5));
  return m;
}

/// Best-of-3 seconds per call of `fn` over `iters`-call timed blocks.
template <typename Fn>
double best_seconds_per_call(int iters, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double per_call =
        std::chrono::duration<double>(t1 - t0).count() / iters;
    best = rep == 0 ? per_call : std::min(best, per_call);
  }
  return best;
}

void print_simd_sweep() {
  constexpr std::size_t kKernels = 64;
  constexpr std::size_t kDim = 8;
  const std::size_t batch = g_quick ? 1024 : 4096;
  const int iters = g_quick ? 20 : 50;

  std::printf("== SIMD kernel sweep: '%s' backend vs scalar reference ==\n",
              num::simd::backend_name());
  num::Rng rng(2024);
  const auto model = make_sweep_model(rng, kKernels, kDim);
  const auto view = model.view();

  pred::BatchScratch scratch;
  pred::BatchScratch::resize(scratch.features, kDim * batch);
  for (auto& f : scratch.features) f = rng.uniform(-0.5, 1.5);
  std::vector<double> out(batch, 0.0);

  const double scalar_seconds = best_seconds_per_call(iters, [&] {
    pred::sweep_scalar(view, batch, scratch, out);
    benchmark::DoNotOptimize(out.data());
  });
  const double simd_seconds = best_seconds_per_call(iters, [&] {
    pred::sweep_simd(view, batch, scratch, out);
    benchmark::DoNotOptimize(out.data());
  });
  const double speedup =
      simd_seconds > 0.0 ? scalar_seconds / simd_seconds : 0.0;
  const double scores_per_sec =
      simd_seconds > 0.0 ? static_cast<double>(batch) / simd_seconds : 0.0;
  std::printf("  %zu kernels x %zu features x %zu contexts: scalar %.3f ms, "
              "simd %.3f ms -> %.2fx (%s)\n\n",
              kKernels, kDim, batch, scalar_seconds * 1e3, simd_seconds * 1e3,
              speedup, num::simd::backend_name());
  bench::JsonLine()
      .field("bench", "simd_kernel_sweep")
      .field("backend", num::simd::backend_name())
      .field("kernels", kKernels)
      .field("dim", kDim)
      .field("batch", batch)
      .field("scalar_seconds", scalar_seconds)
      .field("simd_seconds", simd_seconds)
      .field("speedup", speedup)
      .field("scores_per_second", scores_per_sec)
      .emit();
}

void print_frozen_serving() {
  constexpr std::size_t kKernels = 64;
  constexpr std::size_t kDim = 8;
  const std::size_t batch = g_quick ? 512 : 2048;
  const int iters = g_quick ? 20 : 50;

  std::printf("== frozen-artifact serving vs the live engine ==\n");
  num::Rng rng(2025);
  const auto model = make_sweep_model(rng, kKernels, kDim);

  const std::string path = "bench_frozen_model.pfmfrozen";
  if (pred::freeze(model, path) != pred::FrozenError::kOk) {
    std::fprintf(stderr, "FATAL: freezing the bench model failed\n");
    std::exit(1);
  }
  auto loaded = pred::FrozenPredictor::load(path);
  std::remove(path.c_str());
  if (loaded.error != pred::FrozenError::kOk) {
    std::fprintf(stderr, "FATAL: loading the bench artifact failed: %s\n",
                 pred::to_string(loaded.error));
    std::exit(1);
  }

  // One-sample contexts (all-level features), scored through the same
  // vector-capable arena path on both sides.
  std::vector<mon::SymptomSample> samples(batch);
  std::vector<pred::SymptomContext> contexts(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    samples[i].time = 600.0 + static_cast<double>(i);
    for (std::size_t j = 0; j < kDim; ++j) {
      samples[i].values.push_back(rng.uniform(-1.5, 2.5));
    }
    contexts[i].history = {&samples[i], 1};
  }
  std::vector<double> out(batch, 0.0);
  pred::BatchScratch scratch;
  scratch.kernel = num::simd::vectorized() ? pred::BatchKernel::kSimd
                                           : pred::BatchKernel::kScalar;

  const auto view = model.view();
  const double live_seconds = best_seconds_per_call(iters, [&] {
    pred::score_batch_soa(view, contexts, out, scratch);
    benchmark::DoNotOptimize(out.data());
  });
  const double frozen_seconds = best_seconds_per_call(iters, [&] {
    loaded.predictor->score_batch(contexts, out, scratch);
    benchmark::DoNotOptimize(out.data());
  });
  const double live_rate =
      live_seconds > 0.0 ? static_cast<double>(batch) / live_seconds : 0.0;
  const double frozen_rate =
      frozen_seconds > 0.0 ? static_cast<double>(batch) / frozen_seconds : 0.0;
  const double ratio = live_rate > 0.0 ? frozen_rate / live_rate : 0.0;
  std::printf("  live %.0f scores/s, frozen %.0f scores/s -> ratio %.3f "
              "(both wrap the same sweep; ~1.0 expected)\n\n",
              live_rate, frozen_rate, ratio);
  bench::JsonLine()
      .field("bench", "frozen_serving")
      .field("backend", num::simd::backend_name())
      .field("kernels", kKernels)
      .field("dim", kDim)
      .field("batch", batch)
      .field("live_scores_per_second", live_rate)
      .field("frozen_scores_per_second", frozen_rate)
      .field("ratio", ratio)
      .emit();
}

void BM_FleetRoundSingleThread(benchmark::State& state) {
  // Cost of one lockstep MEA round (Monitor+Evaluate+Act) at 1 thread.
  const auto preds = train_baselines();
  runtime::FleetConfig cfg;
  cfg.mea.windows = bench::case_study_windows();
  cfg.mea.evaluation_interval = 60.0;
  cfg.mea.warning_threshold = 0.6;
  cfg.num_threads = 1;
  runtime::FleetController fleet(
      runtime::make_scp_fleet(fleet_base_config(), kFleetNodes), cfg);
  fleet.add_symptom_predictor(preds.threshold);
  fleet.add_symptom_predictor(preds.trend);
  fleet.add_event_predictor(preds.dft);
  double t = 0.0;
  for (auto _ : state) {
    t += cfg.mea.evaluation_interval;
    fleet.run_until(t);
    benchmark::DoNotOptimize(fleet.telemetry().rounds);
  }
}
BENCHMARK(BM_FleetRoundSingleThread)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --quick before google-benchmark sees the argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      g_quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  const auto preds = train_baselines();
  print_experiment(preds);
  print_shard_scaling(preds);
  print_obs_overhead(preds);
  print_path_comparison(preds);
  print_simd_sweep();
  print_frozen_serving();
  if (!g_quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
