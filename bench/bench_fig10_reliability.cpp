// E3/E4 — Fig. 10: reliability R(t) over [0, 50000] s and hazard rate h(t)
// over [0, 1000] s, with PFM (phase-type first passage of the Fig. 9
// model) vs. without PFM (exponential with the same MTTF).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ctmc/pfm_model.hpp"

namespace {

using pfm::ctmc::PfmAvailabilityModel;
using pfm::ctmc::PfmModelParams;

void print_experiment() {
  const PfmAvailabilityModel model(PfmModelParams::table2_example());
  const auto ph = model.reliability_model();

  std::printf("== E3: Fig. 10(a) reliability R(t), with vs. without PFM ==\n");
  std::printf("  %-10s %-14s %-14s\n", "t [s]", "R_pfm(t)", "R_noPFM(t)");
  for (double t = 0.0; t <= 50000.0; t += 2500.0) {
    std::printf("  %-10.0f %-14.6f %-14.6f\n", t, ph.reliability(t),
                model.baseline_reliability(t));
  }
  std::printf("  MTTF with PFM  = %.0f s (no-PFM MTTF %.0f s)\n\n", ph.mean(),
              model.params().mttf);

  std::printf("== E4: Fig. 10(b) hazard rate h(t) ==\n");
  std::printf("  %-10s %-14s %-14s\n", "t [s]", "h_pfm(t)",
              "h_noPFM (const)");
  for (double t = 0.0; t <= 1000.0; t += 100.0) {
    std::printf("  %-10.0f %-14.6e %-14.6e\n", t, ph.hazard(t),
                model.baseline_hazard());
  }
  std::printf("  shape check: h_pfm(0)=0, rising toward an asymptote below "
              "the constant no-PFM hazard (paper Fig. 10(b)).\n\n");
}

void BM_PhaseTypeReliabilityEval(benchmark::State& state) {
  const PfmAvailabilityModel model(PfmModelParams::table2_example());
  const auto ph = model.reliability_model();
  double t = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph.reliability(t));
    t = t < 50000.0 ? t + 100.0 : 100.0;
  }
}
BENCHMARK(BM_PhaseTypeReliabilityEval);

void BM_PhaseTypeHazardCurve(benchmark::State& state) {
  const PfmAvailabilityModel model(PfmModelParams::table2_example());
  const auto ph = model.reliability_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph.hazard_curve(50.0, 21));
  }
}
BENCHMARK(BM_PhaseTypeHazardCurve);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
