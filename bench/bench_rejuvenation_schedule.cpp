// E12 (extension) — optimal rejuvenation schedules, the Sect. 4.3 /
// Sect. 5.2 related-work thread (Huang et al. [39], Dohi et al. [22,23],
// Andrzejak/Silva [2]): for an aging system, compute the downtime-optimal
// preventive-restart interval analytically, and contrast the classic
// results (finite optimum iff hazard increases) with prediction-driven
// restarts, which need no schedule at all.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "actions/rejuvenation.hpp"

namespace {

using pfm::act::RejuvenationModel;
using pfm::num::Weibull;

void print_experiment() {
  std::printf("== E12 (extension): time-based rejuvenation schedules ==\n");
  std::printf("restart downtime 60 s, failure downtime 600 s\n\n");
  std::printf("  %-10s %-10s %-14s %-14s %-12s\n", "shape", "MTTF [h]",
              "optimal T", "downtime frac", "vs never");
  for (double shape : {0.7, 1.0, 1.5, 2.0, 3.0, 5.0}) {
    RejuvenationModel m;
    m.lifetime = Weibull{shape, 50000.0};
    m.restart_downtime = 60.0;
    m.failure_downtime = 600.0;
    const double t = m.optimal_interval();
    if (std::isinf(t)) {
      std::printf("  %-10.1f %-10.1f %-14s %-14.6f %-12s\n", shape,
                  m.lifetime.mean() / 3600.0, "never",
                  m.downtime_fraction_never(), "1.000");
    } else {
      std::printf("  %-10.1f %-10.1f %-14.0f %-14.6f %-12.3f\n", shape,
                  m.lifetime.mean() / 3600.0, t, m.downtime_fraction(t),
                  m.optimal_improvement());
    }
  }
  std::printf("\n(classic result, reproduced: a finite optimal schedule "
              "exists exactly when the hazard rate increases (shape > 1); "
              "without aging, periodic restarts only add downtime. "
              "Prediction-driven restarts — the paper's proposal — sidestep "
              "the schedule entirely by restarting on evidence.)\n\n");

  // Cost sensitivity at shape 2 (the software-aging regime).
  std::printf("Sensitivity: restart/failure downtime ratio (shape 2):\n");
  std::printf("  %-12s %-14s %-12s\n", "cost ratio", "optimal T",
              "vs never");
  for (double ratio : {0.02, 0.05, 0.1, 0.25, 0.5}) {
    RejuvenationModel m;
    m.lifetime = Weibull{2.0, 50000.0};
    m.failure_downtime = 600.0;
    m.restart_downtime = 600.0 * ratio;
    const double t = m.optimal_interval();
    if (std::isinf(t)) {
      std::printf("  %-12.2f %-14s %-12s\n", ratio, "never", "1.000");
    } else {
      std::printf("  %-12.2f %-14.0f %-12.3f\n", ratio, t,
                  m.optimal_improvement());
    }
  }
  std::printf("\n");
}

void BM_OptimalIntervalSearch(benchmark::State& state) {
  RejuvenationModel m;
  m.lifetime = Weibull{2.5, 50000.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.optimal_interval());
  }
}
BENCHMARK(BM_OptimalIntervalSearch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
