// E1/E2 — Sect. 5.3, Eq. 8 and Eq. 14: steady-state availability of the
// Fig. 9 CTMC, closed form vs. numeric, and the paper's headline ratio
// (1 - A_PFM)/(1 - A) ~ 0.488 for the Table 2 parameters.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ctmc/pfm_model.hpp"

namespace {

using pfm::ctmc::PfmAvailabilityModel;
using pfm::ctmc::PfmModelParams;

void print_experiment() {
  std::printf("== E1/E2: Eq. 8 availability and Eq. 14 ratio ==\n");
  const PfmAvailabilityModel table2(PfmModelParams::table2_example());
  std::printf("Table 2 parameters (precision .70, recall .62, fpr .016, "
              "P_TP .25, P_FP .1, P_TN .001, k 2):\n");
  std::printf("  A (closed form, Eq. 8)   = %.8f\n",
              table2.availability_closed_form());
  std::printf("  A (numeric steady state) = %.8f\n",
              table2.availability_numeric());
  std::printf("  A without PFM            = %.8f\n",
              table2.availability_without_pfm());
  std::printf("  unavailability ratio     = %.3f   (paper Eq. 14: 0.488)\n\n",
              table2.unavailability_ratio());

  std::printf("Sweep: recall vs availability (others per Table 2)\n");
  std::printf("  %-8s %-12s %-12s %-8s\n", "recall", "A_PFM", "1-A_PFM",
              "ratio");
  for (double recall : {0.0, 0.2, 0.4, 0.62, 0.8, 0.95}) {
    PfmModelParams p = PfmModelParams::table2_example();
    p.quality.recall = recall;
    const PfmAvailabilityModel m(p);
    std::printf("  %-8.2f %-12.6f %-12.3e %-8.3f\n", recall,
                m.availability_closed_form(),
                1.0 - m.availability_closed_form(), m.unavailability_ratio());
  }

  std::printf("\nSweep: repair improvement factor k (Eq. 6)\n");
  std::printf("  %-8s %-12s %-8s\n", "k", "A_PFM", "ratio");
  for (double k : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    PfmModelParams p = PfmModelParams::table2_example();
    p.repair_improvement = k;
    const PfmAvailabilityModel m(p);
    std::printf("  %-8.1f %-12.6f %-8.3f\n", k,
                m.availability_closed_form(), m.unavailability_ratio());
  }
  std::printf("\n");
}

void BM_ClosedFormAvailability(benchmark::State& state) {
  const PfmAvailabilityModel m(PfmModelParams::table2_example());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.availability_closed_form());
  }
}
BENCHMARK(BM_ClosedFormAvailability);

void BM_NumericSteadyState(benchmark::State& state) {
  const PfmAvailabilityModel m(PfmModelParams::table2_example());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.availability_numeric());
  }
}
BENCHMARK(BM_NumericSteadyState);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
