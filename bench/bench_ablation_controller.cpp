// E13 (extension) — control-loop stability of the MEA cycle. Sect. 2:
// "both loops in fact are control loops ... aspects such as stability and
// the occurrence of oscillations should be checked". We sweep the
// controller's action-cooldown (damping) on a leak-heavy platform with an
// aggressive warning threshold: no damping lets the loop thrash the
// replicas with preventive restarts, too much damping reacts too slowly —
// availability peaks at moderate damping.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/mea.hpp"
#include "runtime/scp_system.hpp"

namespace {

using namespace pfm;

/// Warns on the worst node's memory pressure (oracle-style, to isolate
/// controller dynamics from predictor quality).
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t index) : index_(index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

telecom::SimConfig leaky_config() {
  telecom::SimConfig cfg;
  cfg.seed = 77;
  cfg.duration = 7.0 * 86400.0;
  cfg.leak_mtbf = 43200.0;  // frequent leaks on all nodes
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  return cfg;
}

void run_with_cooldown(double cooldown) {
  telecom::ScpSimulator sim(leaky_config());
  const auto idx = *sim.trace().schema().index("mem_pressure_max");

  core::MeaConfig mc;
  mc.evaluation_interval = 60.0;
  mc.warning_threshold = 0.70;
  mc.action_cooldown = cooldown;
  mc.enable_minimization = false;  // isolate the avoidance loop
  runtime::ScpManagedSystem system(sim);
  core::MeaController mea(system, mc);
  mea.add_symptom_predictor(std::make_shared<PressurePredictor>(idx));
  mea.add_action(std::make_unique<act::StateCleanupAction>(0.68));
  mea.run();

  std::printf("  %-12.0f %-10.6f %-9lld %-10lld %-9zu\n", cooldown,
              sim.stats().availability(),
              static_cast<long long>(sim.stats().failures),
              static_cast<long long>(sim.stats().preventive_restarts),
              mea.stats().warnings);
}

void print_experiment() {
  std::printf("== E13 (extension): MEA control-loop damping sweep ==\n");
  std::printf("(Sect. 2: stability/oscillation must be checked; the\n"
              "action cooldown is the loop's damping term)\n\n");
  std::printf("  %-12s %-10s %-9s %-10s %-9s\n", "cooldown [s]", "avail",
              "failures", "restarts", "warnings");
  for (double cooldown : {0.0, 60.0, 600.0, 3600.0, 21600.0, 86400.0}) {
    run_with_cooldown(cooldown);
  }
  // Reference: no PFM at all.
  telecom::ScpSimulator plain(leaky_config());
  plain.run();
  std::printf("  %-12s %-10.6f %-9lld %-10s %-9s\n", "(no PFM)",
              plain.stats().availability(),
              static_cast<long long>(plain.stats().failures), "-", "-");
  std::printf("\n");
}

void BM_ControllerDay(benchmark::State& state) {
  for (auto _ : state) {
    telecom::SimConfig cfg = leaky_config();
    cfg.duration = 86400.0;
    telecom::ScpSimulator sim(cfg);
    const auto idx = *sim.trace().schema().index("mem_pressure_max");
    runtime::ScpManagedSystem system(sim);
    core::MeaConfig mc;
    core::MeaController mea(system, mc);
    mea.add_symptom_predictor(std::make_shared<PressurePredictor>(idx));
    mea.add_action(std::make_unique<act::StateCleanupAction>());
    mea.run();
    benchmark::DoNotOptimize(mea.stats().evaluations);
  }
}
BENCHMARK(BM_ControllerDay)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
