// E5 — sensitivity of the Sect. 5 model around the Table 2 operating
// point: how steady-state availability and the unavailability ratio react
// to each parameter (prediction quality, conditional failure
// probabilities, repair improvement).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>

#include "ctmc/pfm_model.hpp"

namespace {

using pfm::ctmc::PfmAvailabilityModel;
using pfm::ctmc::PfmModelParams;

void sweep(const char* name, std::initializer_list<double> values,
           const std::function<void(PfmModelParams&, double)>& apply) {
  std::printf("%s:\n  %-8s %-12s %-10s %-8s\n", name, "value", "A_PFM",
              "1-A_PFM", "ratio");
  for (double v : values) {
    PfmModelParams p = PfmModelParams::table2_example();
    apply(p, v);
    const PfmAvailabilityModel m(p);
    std::printf("  %-8.3f %-12.6f %-10.3e %-8.3f\n", v,
                m.availability_closed_form(),
                1.0 - m.availability_closed_form(), m.unavailability_ratio());
  }
  std::printf("\n");
}

void print_experiment() {
  std::printf("== E5: Table 2 sensitivity analysis ==\n");
  std::printf("(baseline ratio 0.488 at the Table 2 operating point)\n\n");
  sweep("precision", {0.3, 0.5, 0.7, 0.9, 0.99},
        [](PfmModelParams& p, double v) { p.quality.precision = v; });
  sweep("recall", {0.2, 0.4, 0.62, 0.8, 0.95},
        [](PfmModelParams& p, double v) { p.quality.recall = v; });
  sweep("false positive rate", {0.002, 0.008, 0.016, 0.05, 0.2},
        [](PfmModelParams& p, double v) {
          p.quality.false_positive_rate = v;
        });
  sweep("P_TP (failure despite avoidance)", {0.05, 0.25, 0.5, 0.75, 1.0},
        [](PfmModelParams& p, double v) { p.p_tp = v; });
  sweep("P_FP (failure induced by unnecessary action)",
        {0.0, 0.1, 0.3, 0.6, 1.0},
        [](PfmModelParams& p, double v) { p.p_fp = v; });
  sweep("P_TN (failure induced by prediction alone)",
        {0.0, 0.001, 0.01, 0.05, 0.1},
        [](PfmModelParams& p, double v) { p.p_tn = v; });
  sweep("k (repair improvement, Eq. 6)", {0.5, 1.0, 2.0, 4.0, 8.0},
        [](PfmModelParams& p, double v) { p.repair_improvement = v; });
}

void BM_FullSensitivitySweep(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (double r = 0.05; r < 1.0; r += 0.05) {
      PfmModelParams p = PfmModelParams::table2_example();
      p.quality.recall = r;
      acc += PfmAvailabilityModel(p).availability_closed_form();
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FullSensitivitySweep);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
