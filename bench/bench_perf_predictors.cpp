// E11 — computational overhead of online prediction ([64] reports
// measurements of the HSMM's runtime overhead; Sect. 7 lists "prediction
// processing time" among the trade-offs). Micro-latency of one online
// scoring step per method, plus the analytic-model primitives.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hpp"
#include "ctmc/pfm_model.hpp"
#include "numerics/matexp.hpp"
#include "prediction/baselines.hpp"
#include "prediction/hsmm.hpp"
#include "prediction/ubf.hpp"

namespace {

using namespace pfm;

struct Fixture {
  mon::MonitoringDataset train;
  mon::MonitoringDataset test;
  std::unique_ptr<pred::UbfPredictor> ubf;
  std::unique_ptr<pred::HsmmPredictor> hsmm;
  std::unique_ptr<pred::DftPredictor> dft;
  std::unique_ptr<pred::EventsetPredictor> eventset;
  std::vector<mon::SymptomSample> context_samples;
  mon::ErrorSequence probe_seq;

  Fixture() {
    auto [tr, te] = bench::make_case_study(5, 7.0);
    train = std::move(tr);
    test = std::move(te);
    const auto g = bench::case_study_windows();

    pred::UbfConfig ucfg;
    ucfg.windows = g;
    ucfg.pwa_iterations = 25;
    ucfg.shape_evaluations = 120;
    ubf = std::make_unique<pred::UbfPredictor>(ucfg);
    ubf->train(train);

    const auto fail_seqs = train.failure_sequences(g.data_window, g.lead_time);
    const auto ok_seqs = train.nonfailure_sequences(
        g.data_window, g.lead_time, g.prediction_window, 300.0);
    pred::HsmmPredictorConfig hcfg;
    hcfg.windows = g;
    hsmm = std::make_unique<pred::HsmmPredictor>(hcfg);
    hsmm->train(fail_seqs, ok_seqs);
    dft = std::make_unique<pred::DftPredictor>();
    dft->train(fail_seqs, ok_seqs);
    eventset = std::make_unique<pred::EventsetPredictor>();
    eventset->train(fail_seqs, ok_seqs);

    const auto samples = test.samples();
    context_samples.assign(samples.begin(),
                           samples.begin() + std::min<std::size_t>(
                                                 20, samples.size()));
    // Pick a probe window that actually contains error events (the test
    // trace's time axis starts at the split point, not at zero).
    double t0 = test.start_time();
    for (; t0 < test.end_time(); t0 += 600.0) {
      probe_seq.events = test.events_in(t0, t0 + 600.0);
      if (probe_seq.events.size() >= 3) break;
    }
    probe_seq.end_time = t0 + 600.0;
  }

  pred::SymptomContext context() const {
    pred::SymptomContext ctx;
    ctx.history = context_samples;
    return ctx;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_UbfScore(benchmark::State& state) {
  auto& f = fixture();
  const auto ctx = f.context();
  for (auto _ : state) benchmark::DoNotOptimize(f.ubf->score(ctx));
}
BENCHMARK(BM_UbfScore);

void BM_HsmmScore(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(f.hsmm->score(f.probe_seq));
}
BENCHMARK(BM_HsmmScore);

void BM_DftScore(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(f.dft->score(f.probe_seq));
}
BENCHMARK(BM_DftScore);

void BM_EventsetScore(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.eventset->score(f.probe_seq));
  }
}
BENCHMARK(BM_EventsetScore);

void BM_SimulatorDay(benchmark::State& state) {
  for (auto _ : state) {
    telecom::SimConfig cfg;
    cfg.seed = 99;
    cfg.duration = 86400.0;
    telecom::ScpSimulator sim(cfg);
    sim.run();
    benchmark::DoNotOptimize(sim.stats().total_requests);
  }
}
BENCHMARK(BM_SimulatorDay)->Unit(benchmark::kMillisecond);

void BM_Expm7x7(benchmark::State& state) {
  const auto q = ctmc::PfmAvailabilityModel(
                     ctmc::PfmModelParams::table2_example())
                     .chain()
                     .generator();
  for (auto _ : state) benchmark::DoNotOptimize(num::expm(q * 100.0));
}
BENCHMARK(BM_Expm7x7);

void BM_SteadyState7(benchmark::State& state) {
  const auto chain =
      ctmc::PfmAvailabilityModel(ctmc::PfmModelParams::table2_example())
          .chain();
  for (auto _ : state) benchmark::DoNotOptimize(chain.steady_state());
}
BENCHMARK(BM_SteadyState7);

}  // namespace

BENCHMARK_MAIN();
