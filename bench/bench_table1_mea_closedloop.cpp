// E9 — Table 1 end-to-end: the MEA loop on the simulated SCP under the
// four countermeasure strategies (nothing / downtime minimization only /
// downtime avoidance only / both), with UBF + HSMM predictors trained on a
// separate trace. The measured availability ordering realizes the paper's
// Table 1 behavior matrix.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/mea.hpp"
#include "prediction/calibration.hpp"
#include "prediction/hsmm.hpp"
#include "prediction/ubf.hpp"
#include "runtime/scp_system.hpp"

namespace {

using namespace pfm;

struct TrainedPredictors {
  std::shared_ptr<pred::SymptomPredictor> symptom;
  std::shared_ptr<pred::EventPredictor> event;
};

/// Trains UBF and HSMM on one trace and calibrates each to its max-F
/// threshold measured on the tail of that trace.
TrainedPredictors train_predictors(std::uint64_t seed) {
  const auto [train, validation] = bench::make_case_study(seed);
  const auto g = bench::case_study_windows();
  pred::EvalOptions eo;
  eo.windows = g;

  auto ubf = std::make_shared<pred::UbfPredictor>([&] {
    pred::UbfConfig cfg;
    cfg.windows = g;
    return cfg;
  }());
  ubf->train(train);
  const auto ubf_report =
      pred::make_report("UBF", pred::score_on_grid(*ubf, validation, eo));

  auto hsmm = std::make_shared<pred::HsmmPredictor>([&] {
    pred::HsmmPredictorConfig cfg;
    cfg.windows = g;
    return cfg;
  }());
  hsmm->train(train.failure_sequences(g.data_window, g.lead_time),
              train.nonfailure_sequences(g.data_window, g.lead_time,
                                         g.prediction_window, 300.0));
  const auto hsmm_report =
      pred::make_report("HSMM", pred::score_on_grid(*hsmm, validation, eo));

  std::printf("trained predictors (validation): UBF AUC %.3f thr %.3f, "
              "HSMM AUC %.3f thr %.3f\n",
              ubf_report.auc, ubf_report.threshold, hsmm_report.auc,
              hsmm_report.threshold);

  TrainedPredictors out;
  out.symptom = std::make_shared<pred::CalibratedSymptomPredictor>(
      ubf, ubf_report.threshold);
  out.event = std::make_shared<pred::CalibratedEventPredictor>(
      hsmm, hsmm_report.threshold);
  return out;
}

struct StrategyResult {
  const char* name;
  telecom::SimStats stats;
  core::MeaStats mea;
};

StrategyResult run_strategy(const char* name, const TrainedPredictors& preds,
                            bool avoidance, bool minimization,
                            std::uint64_t seed) {
  telecom::SimConfig cfg;
  cfg.seed = seed;
  cfg.duration = 14.0 * 86400.0;
  telecom::ScpSimulator sim(cfg);
  runtime::ScpManagedSystem system(sim);

  core::MeaConfig mc;
  mc.windows = bench::case_study_windows();
  mc.evaluation_interval = 60.0;
  mc.warning_threshold = 0.5;  // calibrated predictors: 0.5 = their max-F
  mc.enable_avoidance = avoidance;
  mc.enable_minimization = minimization;

  core::MeaController mea(system, mc);
  if (avoidance || minimization) {
    mea.add_symptom_predictor(preds.symptom);
    mea.add_event_predictor(preds.event);
    mea.add_action(std::make_unique<act::StateCleanupAction>());
    mea.add_action(std::make_unique<act::PreventiveFailoverAction>());
    mea.add_action(std::make_unique<act::LoadLoweringAction>());
    mea.add_action(std::make_unique<act::PreparedRepairAction>(900.0));
  }
  mea.run();
  return {name, sim.stats(), mea.stats()};
}

void print_experiment() {
  std::printf("== E9: Table 1 closed-loop MEA strategies ==\n");
  const auto preds = train_predictors(5);
  std::printf("\n  %-22s %-10s %-9s %-9s %-9s %-9s %-9s\n", "strategy",
              "avail", "failures", "downtime", "warnings", "actions",
              "prepared");
  // The managed system runs with a different seed than training.
  const std::uint64_t run_seed = 31;
  for (const auto& r :
       {run_strategy("none (reactive only)", preds, false, false, run_seed),
        run_strategy("minimization only", preds, false, true, run_seed),
        run_strategy("avoidance only", preds, true, false, run_seed),
        run_strategy("avoidance+minimization", preds, true, true, run_seed)}) {
    std::printf("  %-22s %-10.6f %-9lld %-9.0f %-9zu %-9zu %-9lld\n", r.name,
                r.stats.availability(),
                static_cast<long long>(r.stats.failures), r.stats.downtime,
                r.mea.warnings, r.mea.total_actions(),
                static_cast<long long>(r.stats.prepared_repairs));
  }
  std::printf("\n(Table 1: positive predictions trigger avoidance and/or "
              "preparation; expected availability ordering: both >= single "
              "strategy >= none.)\n\n");
}

void BM_MeaEvaluationStep(benchmark::State& state) {
  telecom::SimConfig cfg;
  cfg.seed = 3;
  cfg.duration = 3600.0;
  telecom::ScpSimulator sim(cfg);
  sim.step_to(1800.0);
  runtime::ScpManagedSystem system(sim);
  core::MeaConfig mc;
  core::MeaController mea(system, mc);
  // A cheap stand-in predictor isolates controller overhead.
  class Flat final : public pred::SymptomPredictor {
   public:
    std::string name() const override { return "flat"; }
    void train(const mon::MonitoringDataset&) override {}
    double score(const pred::SymptomContext&) const override { return 0.1; }
  };
  mea.add_symptom_predictor(std::make_shared<Flat>());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mea.evaluate_now());
  }
}
BENCHMARK(BM_MeaEvaluationStep);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
