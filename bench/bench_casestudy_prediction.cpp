// E6 — the Sect. 3.3 case study: UBF and HSMM (plus all baselines) trained
// and evaluated on the simulated SCP platform. Paper reference values:
// HSMM precision 0.70, recall 0.62, fpr 0.016, AUC 0.873; UBF AUC 0.846.
// Absolute numbers differ (our substrate is a simulator); the shape to
// check is the ordering: HSMM and UBF on top, pattern-blind baselines
// clearly below.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "prediction/baselines.hpp"
#include "prediction/hsmm.hpp"
#include "prediction/mset.hpp"
#include "prediction/ubf.hpp"

namespace {

using namespace pfm;

struct SeedResult {
  std::map<std::string, pred::PredictorReport> reports;
};

SeedResult run_seed(std::uint64_t seed) {
  const auto [train, test] = bench::make_case_study(seed);
  const auto g = bench::case_study_windows();
  pred::EvalOptions eo;
  eo.windows = g;

  SeedResult out;
  auto add = [&](const pred::PredictorReport& r) { out.reports[r.name] = r; };

  {
    pred::UbfConfig cfg;
    cfg.windows = g;
    pred::UbfPredictor ubf(cfg);
    ubf.train(train);
    add(pred::make_report("UBF", pred::score_on_grid(ubf, test, eo)));
  }
  const auto fail_seqs = train.failure_sequences(g.data_window, g.lead_time);
  const auto ok_seqs = train.nonfailure_sequences(
      g.data_window, g.lead_time, g.prediction_window, 300.0);
  {
    pred::HsmmPredictorConfig cfg;
    cfg.windows = g;
    pred::HsmmPredictor hsmm(cfg);
    hsmm.train(fail_seqs, ok_seqs);
    add(pred::make_report("HSMM", pred::score_on_grid(hsmm, test, eo)));
  }
  {
    pred::MsetConfig cfg;
    cfg.windows = g;
    pred::MsetPredictor p(cfg);
    p.train(train);
    add(pred::make_report("MSET", pred::score_on_grid(p, test, eo)));
  }
  {
    pred::ThresholdPredictor p(g);
    p.train(train);
    add(pred::make_report("Threshold", pred::score_on_grid(p, test, eo)));
  }
  {
    pred::TrendPredictor p(g);
    p.train(train);
    add(pred::make_report("Trend", pred::score_on_grid(p, test, eo)));
  }
  {
    pred::FailureTrackingPredictor p(g);
    p.train(train);
    add(pred::make_report("FailTrack", pred::score_on_grid(p, test, eo)));
  }
  {
    pred::DftPredictor p;
    p.train(fail_seqs, ok_seqs);
    add(pred::make_report("DFT", pred::score_on_grid(p, test, eo)));
  }
  {
    pred::EventsetPredictor p;
    p.train(fail_seqs, ok_seqs);
    add(pred::make_report("Eventset", pred::score_on_grid(p, test, eo)));
  }
  return out;
}

void print_experiment() {
  std::printf("== E6: case-study prediction accuracy (Sect. 3.3) ==\n");
  std::printf("paper: HSMM precision=0.70 recall=0.62 fpr=0.016 AUC=0.873; "
              "UBF AUC=0.846\n\n");

  const std::vector<std::uint64_t> seeds{5, 11, 23};
  std::map<std::string, std::vector<pred::PredictorReport>> all;
  for (auto seed : seeds) {
    std::printf("-- seed %llu --\n", static_cast<unsigned long long>(seed));
    bench::print_report_header();
    auto res = run_seed(seed);
    for (const auto& [name, report] : res.reports) {
      bench::print_report_row(report);
      all[name].push_back(report);
    }
    std::printf("\n");
  }

  std::printf("-- mean over %zu seeds --\n", seeds.size());
  std::printf("  %-12s %6s %9s %7s %7s %7s\n", "predictor", "AUC",
              "precision", "recall", "fpr", "F");
  for (const auto& [name, reports] : all) {
    double auc = 0, p = 0, r = 0, fpr = 0, f = 0;
    for (const auto& rep : reports) {
      auc += rep.auc;
      p += rep.precision();
      r += rep.recall();
      fpr += rep.false_positive_rate();
      f += rep.f_measure();
    }
    const double n = static_cast<double>(reports.size());
    std::printf("  %-12s %6.3f %9.3f %7.3f %7.4f %7.3f\n", name.c_str(),
                auc / n, p / n, r / n, fpr / n, f / n);
  }
  std::printf("\n");
}

void BM_CaseStudyEndToEnd(benchmark::State& state) {
  // One full train+evaluate cycle for the two headline predictors on a
  // shorter trace (training cost is the interesting number).
  for (auto _ : state) {
    const auto [train, test] = bench::make_case_study(77, 4.0);
    const auto g = bench::case_study_windows();
    pred::UbfConfig cfg;
    cfg.windows = g;
    cfg.pwa_iterations = 20;
    cfg.shape_evaluations = 100;
    pred::UbfPredictor ubf(cfg);
    ubf.train(train);
    benchmark::DoNotOptimize(ubf.training_validation_auc());
  }
}
BENCHMARK(BM_CaseStudyEndToEnd)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
