// E15 (extension) — fleet availability under injected component faults,
// with and without the runtime hardening. Sweeps a fault-rate knob that
// scales a deterministic FaultPlan (dropped samples, NaN/throwing
// predictors, flaky actions, plus a scripted crash and hang at the higher
// rates) over an 8-node fleet. The hardened arm quarantines/retries/trips
// its way to the horizon; the unhardened arm (resilience off, retry set to
// rethrow) aborts on the first fault — the availability gap between the
// two arms is the value of the dependability layer. One JSON line per
// configuration (scrapeable via the {"bench":"fault_injection",...}
// prefix).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "injection/injector.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace {

using namespace pfm;

constexpr std::size_t kFleetNodes = 8;
constexpr double kDuration = 0.5 * 86400.0;

telecom::SimConfig fleet_base_config() {
  telecom::SimConfig cfg;
  cfg.seed = 77;
  cfg.duration = kDuration;
  cfg.leak_mtbf = 21600.0;  // leak-heavy: plenty of warnings to act on
  return cfg;
}

/// Memory-pressure oracle: the bench measures runtime dependability, not
/// prediction quality, so the predictor is a trivially cheap direct read.
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t pressure_index)
      : index_(pressure_index) {}
  std::string name() const override { return "pressure-oracle"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

std::size_t pressure_index() {
  telecom::ScpSimulator sim(fleet_base_config());
  return *sim.trace().schema().index("mem_pressure_max");
}

/// Scales one deterministic fault scenario by `rate` in [0,1]. rate=0 is
/// the empty plan; higher rates add probabilistic faults on every
/// component plus a scripted crash (rate >= 0.05) and hang (rate >= 0.1).
inj::FaultPlan make_plan(double rate) {
  inj::FaultPlan plan;
  plan.seed = 424242;
  plan.default_node.drop_sample_p = 0.5 * rate;
  plan.default_predictor.throw_p = 0.25 * rate;
  plan.default_predictor.nan_p = 0.25 * rate;
  plan.default_action.fail_p = std::min(0.8, 4.0 * rate);
  plan.default_action.partial_p = rate;
  // Explicit node entries replace the default spec, so re-apply it.
  if (rate >= 0.05) {
    plan.nodes[1] = plan.default_node;
    plan.nodes[1].crash_at = 0.25 * kDuration;
  }
  if (rate >= 0.10) {
    plan.nodes[2] = plan.default_node;
    plan.nodes[2].hang_at = 0.5 * kDuration;
    plan.nodes[2].hang_steps = 10;
  }
  return plan;
}

struct ArmResult {
  bool completed = false;
  std::string abort_reason;
  runtime::FleetTelemetry telemetry;
  inj::InjectionStats injected;
};

ArmResult run_arm(double rate, bool hardened) {
  inj::FaultInjector injector(make_plan(rate));

  runtime::FleetConfig cfg;
  cfg.mea.evaluation_interval = 60.0;
  cfg.mea.warning_threshold = 0.72;
  cfg.num_threads = 4;
  cfg.resilience.enabled = hardened;
  cfg.mea.retry.rethrow = !hardened;  // pre-hardening fail-fast behavior

  runtime::FleetController fleet(
      injector.wrap_fleet(runtime::make_scp_fleet(fleet_base_config(),
                                                  kFleetNodes)),
      cfg);
  fleet.add_symptom_predictor(injector.wrap_symptom_predictor(
      0, std::make_shared<PressurePredictor>(pressure_index())));
  fleet.add_action(injector.wrap_action_factory(0, [] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  }));
  fleet.add_action(injector.wrap_action_factory(1, [] {
    return std::make_unique<act::PreparedRepairAction>(900.0);
  }));

  ArmResult out;
  try {
    fleet.run();
    out.completed = true;
  } catch (const std::exception& e) {
    out.abort_reason = e.what();
  }
  out.telemetry = fleet.telemetry();
  out.injected = injector.stats();
  return out;
}

void print_experiment() {
  std::printf("== E15 (extension): fleet availability vs injected fault "
              "rate ==\n");
  std::printf("(%zu nodes x %.1f day(s); hardened = quarantine + retry + "
              "circuit breakers, unhardened = fail-fast)\n\n",
              kFleetNodes, kDuration / 86400.0);
  std::printf("  %-6s %-10s %-10s %-13s %-10s %-12s %-10s %s\n", "rate",
              "arm", "completed", "availability", "coverage", "quarantined",
              "injected", "outcome");

  for (double rate : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    for (bool hardened : {true, false}) {
      const auto r = run_arm(rate, hardened);
      const auto& t = r.telemetry;
      const double coverage =
          t.system.simulated / (static_cast<double>(kFleetNodes) * kDuration);
      std::printf("  %-6.2f %-10s %-10s %-13.6f %-10.4f %-12zu %-10zu %s\n",
                  rate, hardened ? "hardened" : "fail-fast",
                  r.completed ? "yes" : "no", t.system.availability(),
                  coverage, t.resilience.nodes_quarantined,
                  r.injected.total(),
                  r.completed ? "ran to horizon"
                              : ("aborted: " + r.abort_reason).c_str());
      bench::JsonLine()
          .field("bench", "fault_injection")
          .field("fault_rate", rate)
          .field("hardened", static_cast<std::size_t>(hardened ? 1 : 0))
          .field("completed", static_cast<std::size_t>(r.completed ? 1 : 0))
          .field("availability", t.system.availability())
          .field("coverage", coverage)
          .field("rounds", t.rounds)
          .field("warnings", t.warnings_raised)
          .field("actions", t.mea.total_actions())
          .field("nodes_quarantined", t.resilience.nodes_quarantined)
          .field("breaker_trips", t.resilience.breaker_trips)
          .field("scores_sanitized", t.resilience.scores_sanitized)
          .field("action_faults", t.mea.action_faults)
          .field("action_retries", t.mea.action_retries)
          .field("actions_abandoned", t.mea.actions_abandoned)
          .field("injected_total", r.injected.total())
          .field("injected_crashes", r.injected.node_crashes)
          .field("injected_hangs", r.injected.node_hangs)
          .field("injected_samples_dropped", r.injected.samples_dropped)
          .field("injected_predictor_faults",
                 r.injected.predictor_throws + r.injected.predictor_nans)
          .field("injected_action_failures", r.injected.action_failures)
          .emit();
    }
  }
  std::printf("\n(hardened coverage degrades gracefully with the rate — "
              "only quarantined nodes stop accumulating simulated time; "
              "fail-fast loses the whole remaining fleet on the first "
              "fault)\n\n");
}

/// Overhead of the hardening on a fault-free fleet: the per-round cost of
/// the captured parallel-for, breaker bookkeeping and finite checks when
/// none of them ever engage.
void BM_FleetRound(benchmark::State& state) {
  const bool hardened = state.range(0) != 0;
  auto cfg_base = fleet_base_config();
  cfg_base.duration = 14.0 * 86400.0;  // never exhausted by the timing loop
  runtime::FleetConfig cfg;
  cfg.mea.evaluation_interval = 60.0;
  cfg.mea.warning_threshold = 0.72;
  cfg.num_threads = 1;
  cfg.resilience.enabled = hardened;
  runtime::FleetController fleet(runtime::make_scp_fleet(cfg_base, kFleetNodes),
                                 cfg);
  fleet.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index()));
  double t = 0.0;
  for (auto _ : state) {
    t += cfg.mea.evaluation_interval;
    fleet.run_until(t);
    benchmark::DoNotOptimize(fleet.telemetry().rounds);
  }
}
BENCHMARK(BM_FleetRound)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
