// E7 — ROC analysis (Sect. 3.3 / [26]): ROC curves for the two headline
// predictors and the event baselines, printed as (fpr, tpr) series plus
// the AUC summary the paper reports.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "prediction/baselines.hpp"
#include "prediction/hsmm.hpp"
#include "prediction/ubf.hpp"

namespace {

using namespace pfm;

void print_roc(const char* name, const std::vector<pred::ScoredInstant>& pts) {
  std::vector<double> scores;
  std::vector<int> labels;
  for (const auto& p : pts) {
    scores.push_back(p.score);
    labels.push_back(p.label);
  }
  const auto roc = eval::roc_curve(scores, labels);
  std::printf("%s (AUC %.3f): fpr,tpr series\n", name,
              eval::auc(roc));
  // Downsample to ~12 points for readable output.
  const std::size_t step = std::max<std::size_t>(roc.size() / 12, 1);
  for (std::size_t i = 0; i < roc.size(); i += step) {
    std::printf("  %.4f %.4f\n", roc[i].false_positive_rate,
                roc[i].true_positive_rate);
  }
  std::printf("  %.4f %.4f\n", roc.back().false_positive_rate,
              roc.back().true_positive_rate);
}

std::vector<pred::ScoredInstant> g_scored;  // reused by the timing loop

void print_experiment() {
  std::printf("== E7: ROC curves (Sect. 3.3) ==\n\n");
  const auto [train, test] = bench::make_case_study(5);
  const auto g = bench::case_study_windows();
  pred::EvalOptions eo;
  eo.windows = g;

  {
    pred::UbfConfig cfg;
    cfg.windows = g;
    pred::UbfPredictor ubf(cfg);
    ubf.train(train);
    print_roc("UBF", pred::score_on_grid(ubf, test, eo));
  }
  const auto fail_seqs = train.failure_sequences(g.data_window, g.lead_time);
  const auto ok_seqs = train.nonfailure_sequences(
      g.data_window, g.lead_time, g.prediction_window, 300.0);
  {
    pred::HsmmPredictorConfig cfg;
    cfg.windows = g;
    pred::HsmmPredictor hsmm(cfg);
    hsmm.train(fail_seqs, ok_seqs);
    g_scored = pred::score_on_grid(hsmm, test, eo);
    print_roc("HSMM", g_scored);
  }
  {
    pred::DftPredictor p;
    p.train(fail_seqs, ok_seqs);
    print_roc("DFT", pred::score_on_grid(p, test, eo));
  }
  {
    pred::EventsetPredictor p;
    p.train(fail_seqs, ok_seqs);
    print_roc("Eventset", pred::score_on_grid(p, test, eo));
  }
  std::printf("\n");
}

void BM_RocCurveConstruction(benchmark::State& state) {
  std::vector<double> scores;
  std::vector<int> labels;
  for (const auto& p : g_scored) {
    scores.push_back(p.score);
    labels.push_back(p.label);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::roc_curve(scores, labels));
  }
}
BENCHMARK(BM_RocCurveConstruction)->Unit(benchmark::kMicrosecond);

void BM_AucFromScores(benchmark::State& state) {
  std::vector<double> scores;
  std::vector<int> labels;
  for (const auto& p : g_scored) {
    scores.push_back(p.score);
    labels.push_back(p.label);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::auc(scores, labels));
  }
}
BENCHMARK(BM_AucFromScores)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
