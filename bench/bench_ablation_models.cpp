// E10b — model ablations called out in DESIGN.md:
//  * UBF mixture kernels (Eq. 1) vs. plain RBF;
//  * HSMM vs. duration-blind HMM (does the semi-Markov timing matter?);
//  * HSMM likelihood-ratio normalization variants;
//  * stacked generalization (Sect. 6 meta-learning) vs. the best single
//    predictor.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "prediction/hsmm.hpp"
#include "prediction/meta.hpp"
#include "prediction/ubf.hpp"

namespace {

using namespace pfm;

void print_experiment() {
  std::printf("== E10b: model ablations ==\n\n");
  const auto [train, test] = bench::make_case_study(5);
  const auto g = bench::case_study_windows();
  pred::EvalOptions eo;
  eo.windows = g;
  const auto fail_seqs = train.failure_sequences(g.data_window, g.lead_time);
  const auto ok_seqs = train.nonfailure_sequences(
      g.data_window, g.lead_time, g.prediction_window, 300.0);

  std::printf("-- UBF mixture kernels vs plain RBF (mean AUC, 3 seeds) --\n");
  std::vector<pred::ScoredInstant> ubf_pts;
  for (bool mixture : {true, false}) {
    double auc_sum = 0.0, f_sum = 0.0;
    const char* name = mixture ? "UBF" : "RBF";
    for (std::uint64_t seed : {5u, 11u, 23u}) {
      const auto [tr, te] = bench::make_case_study(seed);
      pred::UbfConfig cfg;
      cfg.windows = g;
      cfg.mixture_kernels = mixture;
      pred::UbfPredictor p(cfg);
      p.train(tr);
      auto pts = pred::score_on_grid(p, te, eo);
      const auto r = pred::make_report(name, pts);
      auc_sum += r.auc;
      f_sum += r.f_measure();
      if (mixture && seed == 5u) ubf_pts = std::move(pts);
    }
    std::printf("  %-6s mean AUC %.3f  mean F %.3f\n", name, auc_sum / 3.0,
                f_sum / 3.0);
  }

  std::printf("\n-- HSMM vs duration-blind HMM (mean AUC, 3 seeds) --\n");
  std::vector<pred::ScoredInstant> hsmm_pts;
  for (bool durations : {true, false}) {
    double auc_sum = 0.0, f_sum = 0.0;
    const char* name = durations ? "HSMM" : "HMM";
    for (std::uint64_t seed : {5u, 11u, 23u}) {
      const auto [tr, te] = bench::make_case_study(seed);
      pred::HsmmPredictorConfig cfg;
      cfg.windows = g;
      cfg.model_durations = durations;
      pred::HsmmPredictor p(cfg);
      p.train(tr.failure_sequences(g.data_window, g.lead_time),
              tr.nonfailure_sequences(g.data_window, g.lead_time,
                                      g.prediction_window, 300.0));
      auto pts = pred::score_on_grid(p, te, eo);
      const auto r = pred::make_report(name, pts);
      auc_sum += r.auc;
      f_sum += r.f_measure();
      if (durations && seed == 5u) hsmm_pts = std::move(pts);
    }
    std::printf("  %-6s mean AUC %.3f  mean F %.3f\n", name, auc_sum / 3.0,
                f_sum / 3.0);
  }

  std::printf("\n-- HSMM likelihood normalization --\n");
  bench::print_report_header();
  for (auto [norm, name] :
       {std::pair{pred::LikelihoodNormalization::kPerEvent, "per-event"},
        std::pair{pred::LikelihoodNormalization::kSqrt, "sqrt"},
        std::pair{pred::LikelihoodNormalization::kNone, "raw"}}) {
    pred::HsmmPredictorConfig cfg;
    cfg.windows = g;
    cfg.normalization = norm;
    pred::HsmmPredictor p(cfg);
    p.train(fail_seqs, ok_seqs);
    bench::print_report_row(
        pred::make_report(name, pred::score_on_grid(p, test, eo)));
  }

  std::printf("\n-- stacked generalization over {UBF, HSMM} --\n");
  // Align by time: UBF scores on the sample grid, HSMM on the event grid;
  // stack on the coarser (event) grid using the nearest UBF instant.
  const auto [stack_fit, stack_eval] =
      test.split_at(0.7 * 14.0 * 86400.0 + 0.5 * 0.3 * 14.0 * 86400.0);
  (void)stack_fit;
  (void)stack_eval;
  // Build aligned level-0 score matrix on hsmm_pts' instants.
  std::vector<double> level0;
  std::vector<int> labels;
  std::vector<double> ubf_only, hsmm_only;
  std::size_t ui = 0;
  for (const auto& hp : hsmm_pts) {
    while (ui + 1 < ubf_pts.size() && ubf_pts[ui + 1].time <= hp.time) ++ui;
    if (ubf_pts.empty()) break;
    level0.push_back(ubf_pts[ui].score);
    level0.push_back(hp.score);
    ubf_only.push_back(ubf_pts[ui].score);
    hsmm_only.push_back(hp.score);
    labels.push_back(hp.label);
  }
  // First half fits the combiner (out-of-sample for the level-0 models,
  // which trained on the training trace); second half evaluates.
  const std::size_t n = labels.size();
  const std::size_t cut = n / 2;
  pred::StackedGeneralization stack;
  stack.fit(std::span<const double>(level0.data(), cut * 2), 2,
            std::span<const int>(labels.data(), cut));
  auto auc_of = [&](auto score_fn) {
    std::vector<pred::ScoredInstant> pts;
    for (std::size_t i = cut; i < n; ++i) {
      pts.push_back({0.0, score_fn(i), labels[i]});
    }
    return pred::make_report("x", pts).auc;
  };
  const double auc_stack = auc_of([&](std::size_t i) {
    return stack.combine(
        std::span<const double>(level0.data() + 2 * i, 2));
  });
  const double auc_ubf = auc_of([&](std::size_t i) { return ubf_only[i]; });
  const double auc_hsmm = auc_of([&](std::size_t i) { return hsmm_only[i]; });
  std::printf("  UBF alone   AUC %.3f\n", auc_ubf);
  std::printf("  HSMM alone  AUC %.3f\n", auc_hsmm);
  std::printf("  stacked     AUC %.3f  (weights: UBF %.2f, HSMM %.2f)\n\n",
              auc_stack, stack.weights()[0], stack.weights()[1]);
}

void BM_StackedCombine(benchmark::State& state) {
  pred::StackedGeneralization stack;
  std::vector<double> scores{0.2, 0.9, 0.7, 0.1};
  std::vector<int> labels{1, 0};
  stack.fit(scores, 2, labels);
  const std::vector<double> x{0.4, 0.6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.combine(x));
  }
}
BENCHMARK(BM_StackedCombine);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
