
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_architecture.cpp" "tests/CMakeFiles/test_architecture.dir/test_architecture.cpp.o" "gcc" "tests/CMakeFiles/test_architecture.dir/test_architecture.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pfm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prediction/CMakeFiles/pfm_prediction.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pfm_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/actions/CMakeFiles/pfm_actions.dir/DependInfo.cmake"
  "/root/repo/build/src/telecom/CMakeFiles/pfm_telecom.dir/DependInfo.cmake"
  "/root/repo/build/src/monitoring/CMakeFiles/pfm_monitoring.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/pfm_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
