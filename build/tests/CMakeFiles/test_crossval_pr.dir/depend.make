# Empty dependencies file for test_crossval_pr.
# This may be replaced when dependencies are built.
