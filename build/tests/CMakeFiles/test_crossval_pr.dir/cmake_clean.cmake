file(REMOVE_RECURSE
  "CMakeFiles/test_crossval_pr.dir/test_crossval_pr.cpp.o"
  "CMakeFiles/test_crossval_pr.dir/test_crossval_pr.cpp.o.d"
  "test_crossval_pr"
  "test_crossval_pr.pdb"
  "test_crossval_pr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossval_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
