file(REMOVE_RECURSE
  "CMakeFiles/test_evaluate.dir/test_evaluate.cpp.o"
  "CMakeFiles/test_evaluate.dir/test_evaluate.cpp.o.d"
  "test_evaluate"
  "test_evaluate.pdb"
  "test_evaluate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evaluate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
