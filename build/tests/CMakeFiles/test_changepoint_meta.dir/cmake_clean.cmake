file(REMOVE_RECURSE
  "CMakeFiles/test_changepoint_meta.dir/test_changepoint_meta.cpp.o"
  "CMakeFiles/test_changepoint_meta.dir/test_changepoint_meta.cpp.o.d"
  "test_changepoint_meta"
  "test_changepoint_meta.pdb"
  "test_changepoint_meta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_changepoint_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
