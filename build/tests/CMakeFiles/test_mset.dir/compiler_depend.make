# Empty compiler generated dependencies file for test_mset.
# This may be replaced when dependencies are built.
