file(REMOVE_RECURSE
  "CMakeFiles/test_mset.dir/test_mset.cpp.o"
  "CMakeFiles/test_mset.dir/test_mset.cpp.o.d"
  "test_mset"
  "test_mset.pdb"
  "test_mset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
