# Empty compiler generated dependencies file for test_actions.
# This may be replaced when dependencies are built.
