# Empty dependencies file for test_ubf.
# This may be replaced when dependencies are built.
