file(REMOVE_RECURSE
  "CMakeFiles/test_ubf.dir/test_ubf.cpp.o"
  "CMakeFiles/test_ubf.dir/test_ubf.cpp.o.d"
  "test_ubf"
  "test_ubf.pdb"
  "test_ubf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ubf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
