# Empty dependencies file for test_phase_type.
# This may be replaced when dependencies are built.
