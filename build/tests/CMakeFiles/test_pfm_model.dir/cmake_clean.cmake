file(REMOVE_RECURSE
  "CMakeFiles/test_pfm_model.dir/test_pfm_model.cpp.o"
  "CMakeFiles/test_pfm_model.dir/test_pfm_model.cpp.o.d"
  "test_pfm_model"
  "test_pfm_model.pdb"
  "test_pfm_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
