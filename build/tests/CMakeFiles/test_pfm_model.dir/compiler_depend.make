# Empty compiler generated dependencies file for test_pfm_model.
# This may be replaced when dependencies are built.
