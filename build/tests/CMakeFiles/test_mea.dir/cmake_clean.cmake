file(REMOVE_RECURSE
  "CMakeFiles/test_mea.dir/test_mea.cpp.o"
  "CMakeFiles/test_mea.dir/test_mea.cpp.o.d"
  "test_mea"
  "test_mea.pdb"
  "test_mea[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
