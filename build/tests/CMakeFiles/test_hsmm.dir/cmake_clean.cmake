file(REMOVE_RECURSE
  "CMakeFiles/test_hsmm.dir/test_hsmm.cpp.o"
  "CMakeFiles/test_hsmm.dir/test_hsmm.cpp.o.d"
  "test_hsmm"
  "test_hsmm.pdb"
  "test_hsmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hsmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
