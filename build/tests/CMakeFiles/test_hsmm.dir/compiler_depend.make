# Empty compiler generated dependencies file for test_hsmm.
# This may be replaced when dependencies are built.
