file(REMOVE_RECURSE
  "CMakeFiles/test_rejuvenation.dir/test_rejuvenation.cpp.o"
  "CMakeFiles/test_rejuvenation.dir/test_rejuvenation.cpp.o.d"
  "test_rejuvenation"
  "test_rejuvenation.pdb"
  "test_rejuvenation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
