# Empty compiler generated dependencies file for test_rejuvenation.
# This may be replaced when dependencies are built.
