file(REMOVE_RECURSE
  "CMakeFiles/test_matexp.dir/test_matexp.cpp.o"
  "CMakeFiles/test_matexp.dir/test_matexp.cpp.o.d"
  "test_matexp"
  "test_matexp.pdb"
  "test_matexp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
