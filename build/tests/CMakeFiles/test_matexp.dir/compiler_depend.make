# Empty compiler generated dependencies file for test_matexp.
# This may be replaced when dependencies are built.
