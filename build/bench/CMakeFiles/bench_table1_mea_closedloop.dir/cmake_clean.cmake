file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mea_closedloop.dir/bench_table1_mea_closedloop.cpp.o"
  "CMakeFiles/bench_table1_mea_closedloop.dir/bench_table1_mea_closedloop.cpp.o.d"
  "bench_table1_mea_closedloop"
  "bench_table1_mea_closedloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mea_closedloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
