# Empty dependencies file for bench_table1_mea_closedloop.
# This may be replaced when dependencies are built.
