# Empty compiler generated dependencies file for bench_casestudy_prediction.
# This may be replaced when dependencies are built.
