file(REMOVE_RECURSE
  "CMakeFiles/bench_casestudy_prediction.dir/bench_casestudy_prediction.cpp.o"
  "CMakeFiles/bench_casestudy_prediction.dir/bench_casestudy_prediction.cpp.o.d"
  "bench_casestudy_prediction"
  "bench_casestudy_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_casestudy_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
