file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sensitivity.dir/bench_table2_sensitivity.cpp.o"
  "CMakeFiles/bench_table2_sensitivity.dir/bench_table2_sensitivity.cpp.o.d"
  "bench_table2_sensitivity"
  "bench_table2_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
