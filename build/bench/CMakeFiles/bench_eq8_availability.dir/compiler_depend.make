# Empty compiler generated dependencies file for bench_eq8_availability.
# This may be replaced when dependencies are built.
