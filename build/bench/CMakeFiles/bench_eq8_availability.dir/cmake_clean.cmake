file(REMOVE_RECURSE
  "CMakeFiles/bench_eq8_availability.dir/bench_eq8_availability.cpp.o"
  "CMakeFiles/bench_eq8_availability.dir/bench_eq8_availability.cpp.o.d"
  "bench_eq8_availability"
  "bench_eq8_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq8_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
