# Empty dependencies file for bench_fig10_reliability.
# This may be replaced when dependencies are built.
