# Empty dependencies file for bench_perf_predictors.
# This may be replaced when dependencies are built.
