file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_predictors.dir/bench_perf_predictors.cpp.o"
  "CMakeFiles/bench_perf_predictors.dir/bench_perf_predictors.cpp.o.d"
  "bench_perf_predictors"
  "bench_perf_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
