# Empty compiler generated dependencies file for bench_rejuvenation_schedule.
# This may be replaced when dependencies are built.
