file(REMOVE_RECURSE
  "CMakeFiles/bench_rejuvenation_schedule.dir/bench_rejuvenation_schedule.cpp.o"
  "CMakeFiles/bench_rejuvenation_schedule.dir/bench_rejuvenation_schedule.cpp.o.d"
  "bench_rejuvenation_schedule"
  "bench_rejuvenation_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rejuvenation_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
