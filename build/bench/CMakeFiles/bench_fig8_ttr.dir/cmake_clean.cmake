file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ttr.dir/bench_fig8_ttr.cpp.o"
  "CMakeFiles/bench_fig8_ttr.dir/bench_fig8_ttr.cpp.o.d"
  "bench_fig8_ttr"
  "bench_fig8_ttr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ttr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
