file(REMOVE_RECURSE
  "CMakeFiles/reliability_whatif.dir/reliability_whatif.cpp.o"
  "CMakeFiles/reliability_whatif.dir/reliability_whatif.cpp.o.d"
  "reliability_whatif"
  "reliability_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
