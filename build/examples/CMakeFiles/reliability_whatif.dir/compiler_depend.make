# Empty compiler generated dependencies file for reliability_whatif.
# This may be replaced when dependencies are built.
