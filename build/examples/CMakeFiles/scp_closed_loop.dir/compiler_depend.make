# Empty compiler generated dependencies file for scp_closed_loop.
# This may be replaced when dependencies are built.
