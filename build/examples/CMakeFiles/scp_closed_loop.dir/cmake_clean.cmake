file(REMOVE_RECURSE
  "CMakeFiles/scp_closed_loop.dir/scp_closed_loop.cpp.o"
  "CMakeFiles/scp_closed_loop.dir/scp_closed_loop.cpp.o.d"
  "scp_closed_loop"
  "scp_closed_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scp_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
