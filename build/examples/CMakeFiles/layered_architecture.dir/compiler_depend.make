# Empty compiler generated dependencies file for layered_architecture.
# This may be replaced when dependencies are built.
