file(REMOVE_RECURSE
  "CMakeFiles/layered_architecture.dir/layered_architecture.cpp.o"
  "CMakeFiles/layered_architecture.dir/layered_architecture.cpp.o.d"
  "layered_architecture"
  "layered_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layered_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
