
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prediction/baselines.cpp" "src/prediction/CMakeFiles/pfm_prediction.dir/baselines.cpp.o" "gcc" "src/prediction/CMakeFiles/pfm_prediction.dir/baselines.cpp.o.d"
  "/root/repo/src/prediction/changepoint.cpp" "src/prediction/CMakeFiles/pfm_prediction.dir/changepoint.cpp.o" "gcc" "src/prediction/CMakeFiles/pfm_prediction.dir/changepoint.cpp.o.d"
  "/root/repo/src/prediction/evaluate.cpp" "src/prediction/CMakeFiles/pfm_prediction.dir/evaluate.cpp.o" "gcc" "src/prediction/CMakeFiles/pfm_prediction.dir/evaluate.cpp.o.d"
  "/root/repo/src/prediction/hsmm.cpp" "src/prediction/CMakeFiles/pfm_prediction.dir/hsmm.cpp.o" "gcc" "src/prediction/CMakeFiles/pfm_prediction.dir/hsmm.cpp.o.d"
  "/root/repo/src/prediction/meta.cpp" "src/prediction/CMakeFiles/pfm_prediction.dir/meta.cpp.o" "gcc" "src/prediction/CMakeFiles/pfm_prediction.dir/meta.cpp.o.d"
  "/root/repo/src/prediction/mset.cpp" "src/prediction/CMakeFiles/pfm_prediction.dir/mset.cpp.o" "gcc" "src/prediction/CMakeFiles/pfm_prediction.dir/mset.cpp.o.d"
  "/root/repo/src/prediction/predictor.cpp" "src/prediction/CMakeFiles/pfm_prediction.dir/predictor.cpp.o" "gcc" "src/prediction/CMakeFiles/pfm_prediction.dir/predictor.cpp.o.d"
  "/root/repo/src/prediction/ubf.cpp" "src/prediction/CMakeFiles/pfm_prediction.dir/ubf.cpp.o" "gcc" "src/prediction/CMakeFiles/pfm_prediction.dir/ubf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/pfm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/monitoring/CMakeFiles/pfm_monitoring.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pfm_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
