file(REMOVE_RECURSE
  "CMakeFiles/pfm_prediction.dir/baselines.cpp.o"
  "CMakeFiles/pfm_prediction.dir/baselines.cpp.o.d"
  "CMakeFiles/pfm_prediction.dir/changepoint.cpp.o"
  "CMakeFiles/pfm_prediction.dir/changepoint.cpp.o.d"
  "CMakeFiles/pfm_prediction.dir/evaluate.cpp.o"
  "CMakeFiles/pfm_prediction.dir/evaluate.cpp.o.d"
  "CMakeFiles/pfm_prediction.dir/hsmm.cpp.o"
  "CMakeFiles/pfm_prediction.dir/hsmm.cpp.o.d"
  "CMakeFiles/pfm_prediction.dir/meta.cpp.o"
  "CMakeFiles/pfm_prediction.dir/meta.cpp.o.d"
  "CMakeFiles/pfm_prediction.dir/mset.cpp.o"
  "CMakeFiles/pfm_prediction.dir/mset.cpp.o.d"
  "CMakeFiles/pfm_prediction.dir/predictor.cpp.o"
  "CMakeFiles/pfm_prediction.dir/predictor.cpp.o.d"
  "CMakeFiles/pfm_prediction.dir/ubf.cpp.o"
  "CMakeFiles/pfm_prediction.dir/ubf.cpp.o.d"
  "libpfm_prediction.a"
  "libpfm_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfm_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
