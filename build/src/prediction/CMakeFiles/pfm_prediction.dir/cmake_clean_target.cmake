file(REMOVE_RECURSE
  "libpfm_prediction.a"
)
