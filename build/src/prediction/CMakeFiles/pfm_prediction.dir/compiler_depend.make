# Empty compiler generated dependencies file for pfm_prediction.
# This may be replaced when dependencies are built.
