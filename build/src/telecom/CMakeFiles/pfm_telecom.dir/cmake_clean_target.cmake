file(REMOVE_RECURSE
  "libpfm_telecom.a"
)
