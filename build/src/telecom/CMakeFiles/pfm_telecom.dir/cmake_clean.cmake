file(REMOVE_RECURSE
  "CMakeFiles/pfm_telecom.dir/node.cpp.o"
  "CMakeFiles/pfm_telecom.dir/node.cpp.o.d"
  "CMakeFiles/pfm_telecom.dir/simulator.cpp.o"
  "CMakeFiles/pfm_telecom.dir/simulator.cpp.o.d"
  "CMakeFiles/pfm_telecom.dir/workload.cpp.o"
  "CMakeFiles/pfm_telecom.dir/workload.cpp.o.d"
  "libpfm_telecom.a"
  "libpfm_telecom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfm_telecom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
