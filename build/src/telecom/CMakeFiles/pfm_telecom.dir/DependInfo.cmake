
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telecom/node.cpp" "src/telecom/CMakeFiles/pfm_telecom.dir/node.cpp.o" "gcc" "src/telecom/CMakeFiles/pfm_telecom.dir/node.cpp.o.d"
  "/root/repo/src/telecom/simulator.cpp" "src/telecom/CMakeFiles/pfm_telecom.dir/simulator.cpp.o" "gcc" "src/telecom/CMakeFiles/pfm_telecom.dir/simulator.cpp.o.d"
  "/root/repo/src/telecom/workload.cpp" "src/telecom/CMakeFiles/pfm_telecom.dir/workload.cpp.o" "gcc" "src/telecom/CMakeFiles/pfm_telecom.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/pfm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/monitoring/CMakeFiles/pfm_monitoring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
