# Empty dependencies file for pfm_telecom.
# This may be replaced when dependencies are built.
