file(REMOVE_RECURSE
  "CMakeFiles/pfm_monitoring.dir/dataset.cpp.o"
  "CMakeFiles/pfm_monitoring.dir/dataset.cpp.o.d"
  "CMakeFiles/pfm_monitoring.dir/io.cpp.o"
  "CMakeFiles/pfm_monitoring.dir/io.cpp.o.d"
  "CMakeFiles/pfm_monitoring.dir/monitor.cpp.o"
  "CMakeFiles/pfm_monitoring.dir/monitor.cpp.o.d"
  "CMakeFiles/pfm_monitoring.dir/timeseries.cpp.o"
  "CMakeFiles/pfm_monitoring.dir/timeseries.cpp.o.d"
  "libpfm_monitoring.a"
  "libpfm_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfm_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
