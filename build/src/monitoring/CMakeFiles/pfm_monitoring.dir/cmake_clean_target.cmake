file(REMOVE_RECURSE
  "libpfm_monitoring.a"
)
