# Empty compiler generated dependencies file for pfm_monitoring.
# This may be replaced when dependencies are built.
