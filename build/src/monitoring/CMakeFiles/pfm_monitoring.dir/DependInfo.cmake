
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitoring/dataset.cpp" "src/monitoring/CMakeFiles/pfm_monitoring.dir/dataset.cpp.o" "gcc" "src/monitoring/CMakeFiles/pfm_monitoring.dir/dataset.cpp.o.d"
  "/root/repo/src/monitoring/io.cpp" "src/monitoring/CMakeFiles/pfm_monitoring.dir/io.cpp.o" "gcc" "src/monitoring/CMakeFiles/pfm_monitoring.dir/io.cpp.o.d"
  "/root/repo/src/monitoring/monitor.cpp" "src/monitoring/CMakeFiles/pfm_monitoring.dir/monitor.cpp.o" "gcc" "src/monitoring/CMakeFiles/pfm_monitoring.dir/monitor.cpp.o.d"
  "/root/repo/src/monitoring/timeseries.cpp" "src/monitoring/CMakeFiles/pfm_monitoring.dir/timeseries.cpp.o" "gcc" "src/monitoring/CMakeFiles/pfm_monitoring.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/pfm_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
