file(REMOVE_RECURSE
  "libpfm_actions.a"
)
