file(REMOVE_RECURSE
  "CMakeFiles/pfm_actions.dir/action.cpp.o"
  "CMakeFiles/pfm_actions.dir/action.cpp.o.d"
  "CMakeFiles/pfm_actions.dir/rejuvenation.cpp.o"
  "CMakeFiles/pfm_actions.dir/rejuvenation.cpp.o.d"
  "CMakeFiles/pfm_actions.dir/selection.cpp.o"
  "CMakeFiles/pfm_actions.dir/selection.cpp.o.d"
  "CMakeFiles/pfm_actions.dir/ttr.cpp.o"
  "CMakeFiles/pfm_actions.dir/ttr.cpp.o.d"
  "libpfm_actions.a"
  "libpfm_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfm_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
