# Empty compiler generated dependencies file for pfm_actions.
# This may be replaced when dependencies are built.
