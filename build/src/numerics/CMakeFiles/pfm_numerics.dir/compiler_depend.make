# Empty compiler generated dependencies file for pfm_numerics.
# This may be replaced when dependencies are built.
