file(REMOVE_RECURSE
  "libpfm_numerics.a"
)
