
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/distributions.cpp" "src/numerics/CMakeFiles/pfm_numerics.dir/distributions.cpp.o" "gcc" "src/numerics/CMakeFiles/pfm_numerics.dir/distributions.cpp.o.d"
  "/root/repo/src/numerics/kmeans.cpp" "src/numerics/CMakeFiles/pfm_numerics.dir/kmeans.cpp.o" "gcc" "src/numerics/CMakeFiles/pfm_numerics.dir/kmeans.cpp.o.d"
  "/root/repo/src/numerics/linalg.cpp" "src/numerics/CMakeFiles/pfm_numerics.dir/linalg.cpp.o" "gcc" "src/numerics/CMakeFiles/pfm_numerics.dir/linalg.cpp.o.d"
  "/root/repo/src/numerics/logistic.cpp" "src/numerics/CMakeFiles/pfm_numerics.dir/logistic.cpp.o" "gcc" "src/numerics/CMakeFiles/pfm_numerics.dir/logistic.cpp.o.d"
  "/root/repo/src/numerics/matexp.cpp" "src/numerics/CMakeFiles/pfm_numerics.dir/matexp.cpp.o" "gcc" "src/numerics/CMakeFiles/pfm_numerics.dir/matexp.cpp.o.d"
  "/root/repo/src/numerics/matrix.cpp" "src/numerics/CMakeFiles/pfm_numerics.dir/matrix.cpp.o" "gcc" "src/numerics/CMakeFiles/pfm_numerics.dir/matrix.cpp.o.d"
  "/root/repo/src/numerics/optimize.cpp" "src/numerics/CMakeFiles/pfm_numerics.dir/optimize.cpp.o" "gcc" "src/numerics/CMakeFiles/pfm_numerics.dir/optimize.cpp.o.d"
  "/root/repo/src/numerics/rng.cpp" "src/numerics/CMakeFiles/pfm_numerics.dir/rng.cpp.o" "gcc" "src/numerics/CMakeFiles/pfm_numerics.dir/rng.cpp.o.d"
  "/root/repo/src/numerics/stats.cpp" "src/numerics/CMakeFiles/pfm_numerics.dir/stats.cpp.o" "gcc" "src/numerics/CMakeFiles/pfm_numerics.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
