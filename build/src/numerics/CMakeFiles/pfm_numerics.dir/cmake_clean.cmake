file(REMOVE_RECURSE
  "CMakeFiles/pfm_numerics.dir/distributions.cpp.o"
  "CMakeFiles/pfm_numerics.dir/distributions.cpp.o.d"
  "CMakeFiles/pfm_numerics.dir/kmeans.cpp.o"
  "CMakeFiles/pfm_numerics.dir/kmeans.cpp.o.d"
  "CMakeFiles/pfm_numerics.dir/linalg.cpp.o"
  "CMakeFiles/pfm_numerics.dir/linalg.cpp.o.d"
  "CMakeFiles/pfm_numerics.dir/logistic.cpp.o"
  "CMakeFiles/pfm_numerics.dir/logistic.cpp.o.d"
  "CMakeFiles/pfm_numerics.dir/matexp.cpp.o"
  "CMakeFiles/pfm_numerics.dir/matexp.cpp.o.d"
  "CMakeFiles/pfm_numerics.dir/matrix.cpp.o"
  "CMakeFiles/pfm_numerics.dir/matrix.cpp.o.d"
  "CMakeFiles/pfm_numerics.dir/optimize.cpp.o"
  "CMakeFiles/pfm_numerics.dir/optimize.cpp.o.d"
  "CMakeFiles/pfm_numerics.dir/rng.cpp.o"
  "CMakeFiles/pfm_numerics.dir/rng.cpp.o.d"
  "CMakeFiles/pfm_numerics.dir/stats.cpp.o"
  "CMakeFiles/pfm_numerics.dir/stats.cpp.o.d"
  "libpfm_numerics.a"
  "libpfm_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfm_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
