file(REMOVE_RECURSE
  "CMakeFiles/pfm_eval.dir/metrics.cpp.o"
  "CMakeFiles/pfm_eval.dir/metrics.cpp.o.d"
  "libpfm_eval.a"
  "libpfm_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfm_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
