file(REMOVE_RECURSE
  "libpfm_eval.a"
)
