# Empty compiler generated dependencies file for pfm_eval.
# This may be replaced when dependencies are built.
