file(REMOVE_RECURSE
  "CMakeFiles/pfm_core.dir/architecture.cpp.o"
  "CMakeFiles/pfm_core.dir/architecture.cpp.o.d"
  "CMakeFiles/pfm_core.dir/diagnosis.cpp.o"
  "CMakeFiles/pfm_core.dir/diagnosis.cpp.o.d"
  "CMakeFiles/pfm_core.dir/mea.cpp.o"
  "CMakeFiles/pfm_core.dir/mea.cpp.o.d"
  "libpfm_core.a"
  "libpfm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
