file(REMOVE_RECURSE
  "libpfm_ctmc.a"
)
