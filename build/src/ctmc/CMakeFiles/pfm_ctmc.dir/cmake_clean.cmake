file(REMOVE_RECURSE
  "CMakeFiles/pfm_ctmc.dir/ctmc.cpp.o"
  "CMakeFiles/pfm_ctmc.dir/ctmc.cpp.o.d"
  "CMakeFiles/pfm_ctmc.dir/pfm_model.cpp.o"
  "CMakeFiles/pfm_ctmc.dir/pfm_model.cpp.o.d"
  "CMakeFiles/pfm_ctmc.dir/phase_type.cpp.o"
  "CMakeFiles/pfm_ctmc.dir/phase_type.cpp.o.d"
  "libpfm_ctmc.a"
  "libpfm_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfm_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
