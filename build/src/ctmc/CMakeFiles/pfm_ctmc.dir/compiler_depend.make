# Empty compiler generated dependencies file for pfm_ctmc.
# This may be replaced when dependencies are built.
