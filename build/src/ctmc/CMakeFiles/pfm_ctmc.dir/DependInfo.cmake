
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctmc/ctmc.cpp" "src/ctmc/CMakeFiles/pfm_ctmc.dir/ctmc.cpp.o" "gcc" "src/ctmc/CMakeFiles/pfm_ctmc.dir/ctmc.cpp.o.d"
  "/root/repo/src/ctmc/pfm_model.cpp" "src/ctmc/CMakeFiles/pfm_ctmc.dir/pfm_model.cpp.o" "gcc" "src/ctmc/CMakeFiles/pfm_ctmc.dir/pfm_model.cpp.o.d"
  "/root/repo/src/ctmc/phase_type.cpp" "src/ctmc/CMakeFiles/pfm_ctmc.dir/phase_type.cpp.o" "gcc" "src/ctmc/CMakeFiles/pfm_ctmc.dir/phase_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/pfm_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
