// Integration tests: the whole pipeline wired together — simulator trace,
// trained predictors, evaluation harness and the closed MEA loop — on a
// shortened configuration so the suite stays fast.

#include <gtest/gtest.h>

#include <memory>

#include "core/mea.hpp"
#include "prediction/baselines.hpp"
#include "prediction/calibration.hpp"
#include "prediction/evaluate.hpp"
#include "prediction/hsmm.hpp"
#include "prediction/ubf.hpp"
#include "runtime/scp_system.hpp"

namespace pfm {
namespace {

/// Shared 7-day trace so the expensive simulation runs once.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    telecom::SimConfig cfg;
    cfg.seed = 101;
    cfg.duration = 7.0 * 86400.0;
    telecom::ScpSimulator sim(cfg);
    sim.run();
    auto trace = sim.take_trace();
    auto [train, test] = trace.split_at(0.7 * cfg.duration);
    train_ = new mon::MonitoringDataset(std::move(train));
    test_ = new mon::MonitoringDataset(std::move(test));
  }
  static void TearDownTestSuite() {
    delete train_;
    delete test_;
    train_ = nullptr;
    test_ = nullptr;
  }

  static pred::WindowGeometry windows() { return {600.0, 300.0, 300.0}; }

  static mon::MonitoringDataset* train_;
  static mon::MonitoringDataset* test_;
};

mon::MonitoringDataset* PipelineTest::train_ = nullptr;
mon::MonitoringDataset* PipelineTest::test_ = nullptr;

TEST_F(PipelineTest, TraceIsWellFormed) {
  ASSERT_GT(train_->failures().size(), 3u);
  ASSERT_GT(test_->failures().size(), 0u);
  ASSERT_GT(train_->events().size(), 100u);
  ASSERT_GT(train_->samples().size(), 1000u);
  // Split preserves ordering and boundaries.
  EXPECT_LT(train_->end_time(), test_->start_time() + 1e-6);
}

TEST_F(PipelineTest, UbfEndToEndBeatsChance) {
  pred::UbfConfig cfg;
  cfg.windows = windows();
  cfg.pwa_iterations = 30;       // reduced budget keeps the test quick
  cfg.shape_evaluations = 150;
  pred::UbfPredictor ubf(cfg);
  ubf.train(*train_);
  pred::EvalOptions eo;
  eo.windows = windows();
  const auto report =
      pred::make_report("UBF", pred::score_on_grid(ubf, *test_, eo));
  EXPECT_GT(report.auc, 0.6);
  EXPECT_GT(report.f_measure(), 0.1);
  EXPECT_FALSE(ubf.selected_variables().empty());
}

TEST_F(PipelineTest, HsmmEndToEndBeatsChance) {
  const auto g = windows();
  pred::HsmmPredictorConfig cfg;
  cfg.windows = g;
  pred::HsmmPredictor hsmm(cfg);
  hsmm.train(train_->failure_sequences(g.data_window, g.lead_time),
             train_->nonfailure_sequences(g.data_window, g.lead_time,
                                          g.prediction_window, 300.0));
  pred::EvalOptions eo;
  eo.windows = g;
  const auto report =
      pred::make_report("HSMM", pred::score_on_grid(hsmm, *test_, eo));
  EXPECT_GT(report.auc, 0.6);
}

TEST_F(PipelineTest, LearnedPredictorsBeatFailureTracking) {
  // The paper's core argument for runtime monitoring: models that see the
  // system's current state beat models that only know the failure history.
  const auto g = windows();
  pred::EvalOptions eo;
  eo.windows = g;

  pred::HsmmPredictorConfig hcfg;
  hcfg.windows = g;
  pred::HsmmPredictor hsmm(hcfg);
  hsmm.train(train_->failure_sequences(g.data_window, g.lead_time),
             train_->nonfailure_sequences(g.data_window, g.lead_time,
                                          g.prediction_window, 300.0));
  const auto hsmm_auc =
      pred::make_report("h", pred::score_on_grid(hsmm, *test_, eo)).auc;

  pred::FailureTrackingPredictor ft(g);
  ft.train(*train_);
  const auto ft_auc =
      pred::make_report("ft", pred::score_on_grid(ft, *test_, eo)).auc;
  EXPECT_GT(hsmm_auc, ft_auc);
}

TEST_F(PipelineTest, ClosedLoopWithTrainedPredictorImprovesAvailability) {
  // Train a cheap symptom predictor, then drive a fresh simulator run of
  // the same platform (different seed) through the MEA loop.
  const auto g = windows();
  auto trend = std::make_shared<pred::TrendPredictor>(g);
  trend->train(*train_);
  pred::EvalOptions eo;
  eo.windows = g;
  const auto report =
      pred::make_report("t", pred::score_on_grid(*trend, *test_, eo));

  telecom::SimConfig cfg;
  cfg.seed = 555;
  cfg.duration = 5.0 * 86400.0;
  cfg.leak_mtbf = 86400.0 * 0.75;  // leak-heavy: trend's home turf
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;

  telecom::ScpSimulator plain(cfg);
  plain.run();

  telecom::ScpSimulator managed(cfg);
  runtime::ScpManagedSystem managed_system(managed);
  core::MeaConfig mc;
  mc.windows = g;
  mc.warning_threshold = 0.5;
  core::MeaController mea(managed_system, mc);
  mea.add_symptom_predictor(
      std::make_shared<pred::CalibratedSymptomPredictor>(trend,
                                                         report.threshold));
  mea.add_action(std::make_unique<act::StateCleanupAction>());
  mea.add_action(std::make_unique<act::PreparedRepairAction>(900.0));
  mea.run();

  EXPECT_GT(mea.stats().warnings, 0u);
  EXPECT_GE(managed.stats().availability(), plain.stats().availability());
}

TEST_F(PipelineTest, WindowExtractionConsistency) {
  // Every failure sequence's window must precede its failure by the lead
  // time, and non-failure sequences must be disjoint from those windows.
  const auto g = windows();
  const auto fail_seqs =
      train_->failure_sequences(g.data_window, g.lead_time);
  ASSERT_FALSE(fail_seqs.empty());
  for (const auto& seq : fail_seqs) {
    EXPECT_TRUE(train_->failure_within(seq.end_time + g.lead_time - 1e-6,
                                       seq.end_time + g.lead_time + 1e-6));
    for (const auto& e : seq.events) {
      EXPECT_GT(e.time, seq.end_time - g.data_window - 1e-9);
      EXPECT_LE(e.time, seq.end_time + 1e-9);
    }
  }
  const auto ok_seqs = train_->nonfailure_sequences(
      g.data_window, g.lead_time, g.prediction_window, 300.0);
  for (const auto& seq : ok_seqs) {
    EXPECT_FALSE(train_->failure_within(
        seq.end_time - g.data_window,
        seq.end_time + g.lead_time + g.prediction_window));
  }
}

}  // namespace
}  // namespace pfm
