// Parameterized invariants of the SCP simulator across seeds: accounting
// identities and causal-structure properties that must hold for any run.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "telecom/simulator.hpp"

namespace pfm::telecom {
namespace {

class SimulatorProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static SimConfig config(std::uint64_t seed) {
    SimConfig cfg;
    cfg.seed = seed;
    cfg.duration = 3.0 * 86400.0;
    return cfg;
  }
};

TEST_P(SimulatorProperty, AccountingIdentities) {
  ScpSimulator sim(config(GetParam()));
  sim.run();
  const auto& st = sim.stats();
  EXPECT_GE(st.availability(), 0.0);
  EXPECT_LE(st.availability(), 1.0);
  EXPECT_LE(st.violations, st.total_requests);
  EXPECT_EQ(static_cast<std::size_t>(st.failures),
            sim.failure_infos().size());
  EXPECT_EQ(static_cast<std::size_t>(st.failures),
            sim.trace().failures().size());
  // Downtime equals the sum of repair times (no overlapping repairs),
  // modulo tick quantization (downtime accrues in whole ticks, up to one
  // tick extra per failure) and the final repair possibly extending past
  // the horizon.
  double ttr_sum = 0.0;
  for (const auto& f : sim.failure_infos()) ttr_sum += f.repair_time;
  EXPECT_LE(st.downtime,
            ttr_sum + sim.config().tick * static_cast<double>(st.failures) +
                1.0);
  EXPECT_GE(st.downtime, ttr_sum - 1100.0);  // one truncated repair at most
}

TEST_P(SimulatorProperty, StreamsAreTimeOrderedAndBounded) {
  ScpSimulator sim(config(GetParam()));
  sim.run();
  const auto& trace = sim.trace();
  double prev = -1.0;
  for (const auto& s : trace.samples()) {
    EXPECT_GE(s.time, prev);
    EXPECT_LE(s.time, sim.config().duration + 1.0);
    ASSERT_EQ(s.values.size(), trace.schema().size());
    prev = s.time;
  }
  prev = -1.0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    EXPECT_GE(e.severity, 1);
    EXPECT_LE(e.severity, 5);
    EXPECT_GE(e.component, 0);
    EXPECT_LT(static_cast<std::size_t>(e.component), sim.num_nodes());
  }
}

TEST_P(SimulatorProperty, SymptomValuesArePhysical) {
  ScpSimulator sim(config(GetParam()));
  sim.run();
  const auto& trace = sim.trace();
  const auto mem_idx = *trace.schema().index("free_mem_min_mb");
  const auto press_idx = *trace.schema().index("mem_pressure_max");
  const auto cpu_idx = *trace.schema().index("cpu_user");
  for (const auto& s : trace.samples()) {
    EXPECT_GE(s.values[mem_idx], 0.0);
    EXPECT_LE(s.values[mem_idx], sim.config().node_memory_mb);
    EXPECT_GE(s.values[press_idx], 0.0);
    EXPECT_LE(s.values[press_idx], 1.0);
    EXPECT_GE(s.values[cpu_idx], 0.0);
    EXPECT_LE(s.values[cpu_idx], 1.0);
  }
}

TEST_P(SimulatorProperty, FailuresHaveCausalPrecursors) {
  // Every leak-caused failure must be preceded by elevated memory
  // pressure, every cascade failure by cascade-signature events — the
  // Fig. 2 fault -> error/symptom -> failure chain.
  ScpSimulator sim(config(GetParam()));
  sim.run();
  const auto& trace = sim.trace();
  const auto press_idx = *trace.schema().index("mem_pressure_max");
  for (const auto& f : sim.failure_infos()) {
    if (f.cause == FailureCause::kMemoryLeak) {
      double peak = 0.0;
      for (const auto& s : trace.samples()) {
        if (s.time >= f.time - 900.0 && s.time <= f.time) {
          peak = std::max(peak, s.values[press_idx]);
        }
      }
      EXPECT_GT(peak, 0.75) << "leak failure at " << f.time
                            << " without memory-pressure symptom";
    } else if (f.cause == FailureCause::kCascade) {
      const auto events = trace.events_in(f.time - 3600.0, f.time);
      const bool has_signature = std::any_of(
          events.begin(), events.end(), [](const mon::ErrorEvent& e) {
            return e.event_id >= event_id::kCascadeStage1 &&
                   e.event_id <= event_id::kCascadeStage3;
          });
      EXPECT_TRUE(has_signature)
          << "cascade failure at " << f.time << " without cascade events";
    }
  }
}

TEST_P(SimulatorProperty, PreparedRunsNeverRepairSlower) {
  const auto cfg = config(GetParam());
  ScpSimulator plain(cfg);
  plain.run();
  ScpSimulator prepared(cfg);
  while (!prepared.finished()) {
    prepared.prepare_for_failure(4000.0);
    prepared.step_to(prepared.now() + 3600.0);
  }
  for (const auto& f : prepared.failure_infos()) {
    EXPECT_TRUE(f.prepared);
    // Warm reconfiguration plus bounded recomputation of a fresh
    // checkpoint: strictly below the cold floor.
    EXPECT_LT(f.repair_time, cfg.reconfig_cold);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperty,
                         ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace pfm::telecom
