#include "monitoring/monitor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

namespace pfm::mon {
namespace {

TEST(Monitor, CollectsFromSourcesInOrder) {
  Monitor m;
  m.add_source(std::make_shared<CallbackSource>(
      "constant", [](double) { return 7.0; }));
  m.add_source(std::make_shared<CallbackSource>(
      "time", [](double now) { return now * 2.0; }));
  const auto schema = m.schema();
  ASSERT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.name(0), "constant");
  EXPECT_EQ(schema.name(1), "time");

  const auto s = m.collect(5.0);
  EXPECT_DOUBLE_EQ(s.time, 5.0);
  ASSERT_EQ(s.values.size(), 2u);
  EXPECT_DOUBLE_EQ(s.values[0], 7.0);
  EXPECT_DOUBLE_EQ(s.values[1], 10.0);
}

TEST(Monitor, RejectsNullAndDuplicateSources) {
  Monitor m;
  EXPECT_THROW(m.add_source(nullptr), std::invalid_argument);
  m.add_source(std::make_shared<CallbackSource>("x", [](double) { return 0.0; }));
  EXPECT_THROW(
      m.add_source(std::make_shared<CallbackSource>("x", [](double) { return 1.0; })),
      std::invalid_argument);
}

TEST(Monitor, AdaptiveInterval) {
  Monitor m;
  EXPECT_DOUBLE_EQ(m.interval(), 60.0);
  EXPECT_DOUBLE_EQ(m.next_due(100.0), 160.0);
  m.set_interval(5.0);
  EXPECT_DOUBLE_EQ(m.next_due(100.0), 105.0);
  EXPECT_THROW(m.set_interval(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace pfm::mon
