#include "ctmc/ctmc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pfm::ctmc {
namespace {

num::Matrix two_state(double fail, double repair) {
  return num::Matrix{{-fail, fail}, {repair, -repair}};
}

TEST(Ctmc, ValidatesGenerator) {
  EXPECT_THROW(Ctmc(num::Matrix(2, 3)), std::invalid_argument);
  // Negative off-diagonal.
  EXPECT_THROW(Ctmc(num::Matrix{{-1.0, -1.0}, {1.0, -1.0}}),
               std::invalid_argument);
  // Rows not summing to zero.
  EXPECT_THROW(Ctmc(num::Matrix{{-1.0, 2.0}, {1.0, -1.0}}),
               std::invalid_argument);
  EXPECT_NO_THROW(Ctmc(two_state(0.1, 0.9)));
}

TEST(Ctmc, StateNames) {
  Ctmc c(two_state(1.0, 1.0), {"up", "down"});
  EXPECT_EQ(c.state_name(0), "up");
  EXPECT_EQ(c.state_name(1), "down");
  Ctmc d(two_state(1.0, 1.0));
  EXPECT_EQ(d.state_name(1), "S1");
  EXPECT_THROW(Ctmc(two_state(1.0, 1.0), {"only-one"}), std::invalid_argument);
}

TEST(Ctmc, SteadyStateTwoState) {
  Ctmc c(two_state(0.2, 0.8));
  const auto pi = c.steady_state();
  EXPECT_NEAR(pi[0], 0.8, 1e-12);
  EXPECT_NEAR(pi[1], 0.2, 1e-12);
}

TEST(Ctmc, TransientConvergesToSteadyState) {
  Ctmc c(two_state(0.3, 0.7));
  const std::vector<double> p0{1.0, 0.0};
  const auto pt = c.transient(p0, 1000.0);
  const auto pi = c.steady_state();
  EXPECT_NEAR(pt[0], pi[0], 1e-9);
  EXPECT_NEAR(pt[1], pi[1], 1e-9);
}

TEST(Ctmc, TransientAtZeroIsInitial) {
  Ctmc c(two_state(0.3, 0.7));
  const std::vector<double> p0{0.4, 0.6};
  const auto pt = c.transient(p0, 0.0);
  EXPECT_DOUBLE_EQ(pt[0], 0.4);
  EXPECT_DOUBLE_EQ(pt[1], 0.6);
}

TEST(Ctmc, TransientMatchesClosedFormTwoState) {
  // p_00(t) = mu/(l+mu) + l/(l+mu) e^{-(l+mu)t}
  const double l = 0.4, mu = 1.1;
  Ctmc c(two_state(l, mu));
  const std::vector<double> p0{1.0, 0.0};
  for (double t : {0.1, 0.7, 2.0, 5.0}) {
    const auto pt = c.transient(p0, t);
    const double expected =
        mu / (l + mu) + l / (l + mu) * std::exp(-(l + mu) * t);
    EXPECT_NEAR(pt[0], expected, 1e-10);
  }
}

TEST(Ctmc, TimeAverageApproachesSteadyState) {
  Ctmc c(two_state(0.5, 1.5));
  const std::vector<double> p0{1.0, 0.0};
  const auto avg = c.time_average(p0, 2000.0, 400);
  const auto pi = c.steady_state();
  EXPECT_NEAR(avg[0], pi[0], 5e-3);
}

TEST(Ctmc, SimulationOccupancyMatchesSteadyState) {
  Ctmc c(two_state(0.2, 1.8));
  num::Rng rng(99);
  const auto occ = c.simulate_occupancy(0, 200000.0, rng);
  EXPECT_NEAR(occ[0], 0.9, 0.01);
  EXPECT_NEAR(occ[1], 0.1, 0.01);
}

TEST(Ctmc, SimulationStopsInAbsorbingState) {
  // State 1 absorbing.
  num::Matrix q{{-1.0, 1.0}, {0.0, 0.0}};
  Ctmc c(q);
  num::Rng rng(1);
  const auto path = c.simulate(0, 1e6, rng);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.back().state, 1u);
}

TEST(Ctmc, SimulateRejectsBadStart) {
  Ctmc c(two_state(1.0, 1.0));
  num::Rng rng(1);
  EXPECT_THROW(c.simulate(5, 1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace pfm::ctmc
