#include "core/mea.hpp"

#include <gtest/gtest.h>

#include "runtime/scp_system.hpp"

#include <memory>
#include <stdexcept>

namespace pfm::core {
namespace {

/// Warns whenever the worst node memory pressure in the newest sample is
/// above a fixed level (an "oracle-ish" predictor keeping the MEA tests
/// independent of learned-model quality).
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t pressure_index)
      : index_(pressure_index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

/// Never warns.
class SilentPredictor final : public pred::SymptomPredictor {
 public:
  std::string name() const override { return "silent"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext&) const override { return 0.0; }
};

telecom::SimConfig leaky_config(double days = 3.0) {
  telecom::SimConfig cfg;
  cfg.duration = days * 86400.0;
  cfg.seed = 21;
  cfg.leak_mtbf = 43200.0;  // frequent leaks
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  return cfg;
}

std::size_t pressure_index(const telecom::ScpSimulator& sim) {
  return *sim.trace().schema().index("mem_pressure_max");
}

TEST(Mea, ConfigValidation) {
  telecom::ScpSimulator sim(leaky_config(0.01));
  runtime::ScpManagedSystem system(sim);
  MeaConfig cfg;
  cfg.evaluation_interval = 0.0;
  EXPECT_THROW(MeaController(system, cfg), std::invalid_argument);
  cfg = MeaConfig{};
  cfg.warning_threshold = 1.5;
  EXPECT_THROW(MeaController(system, cfg), std::invalid_argument);
  cfg = MeaConfig{};
  MeaController mea(system, cfg);
  EXPECT_THROW(mea.add_symptom_predictor(nullptr), std::invalid_argument);
  EXPECT_THROW(mea.add_event_predictor(nullptr), std::invalid_argument);
  EXPECT_THROW(mea.add_action(nullptr), std::invalid_argument);
}

TEST(Mea, NoWarningsWithSilentPredictor) {
  telecom::ScpSimulator sim(leaky_config(0.5));
  runtime::ScpManagedSystem system(sim);
  MeaConfig cfg;
  MeaController mea(system, cfg);
  mea.add_symptom_predictor(std::make_shared<SilentPredictor>());
  mea.run();
  EXPECT_GT(mea.stats().evaluations, 0u);
  EXPECT_EQ(mea.stats().warnings, 0u);
  EXPECT_EQ(mea.stats().total_actions(), 0u);
}

TEST(Mea, AvoidanceCutsFailuresOnLeakWorkload) {
  // Baseline: no PFM.
  telecom::ScpSimulator plain(leaky_config());
  plain.run();
  ASSERT_GT(plain.stats().failures, 2);

  // PFM with a pressure-triggered state clean-up.
  telecom::ScpSimulator managed(leaky_config());
  runtime::ScpManagedSystem system(managed);
  MeaConfig cfg;
  cfg.warning_threshold = 0.72;
  cfg.action_cooldown = 600.0;
  MeaController mea(system, cfg);
  mea.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index(managed)));
  mea.add_action(std::make_unique<act::StateCleanupAction>(0.70));
  mea.add_action(std::make_unique<act::PreparedRepairAction>(1800.0));
  mea.run();

  EXPECT_GT(mea.stats().warnings, 0u);
  EXPECT_GT(mea.stats().total_actions(), 0u);
  EXPECT_LT(managed.stats().failures, plain.stats().failures);
  EXPECT_GT(managed.stats().availability(), plain.stats().availability());
}

TEST(Mea, MinimizationAlonePreparesRepairs) {
  telecom::ScpSimulator managed(leaky_config());
  runtime::ScpManagedSystem system(managed);
  MeaConfig cfg;
  cfg.warning_threshold = 0.72;
  cfg.enable_avoidance = false;  // only prepare, never avoid
  MeaController mea(system, cfg);
  mea.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index(managed)));
  mea.add_action(std::make_unique<act::StateCleanupAction>(0.70));
  mea.add_action(std::make_unique<act::PreparedRepairAction>(3600.0));
  mea.run();

  // Avoidance disabled: failures still happen, but some repairs are
  // prepared (Table 1's "prepared repair" column).
  EXPECT_GT(managed.stats().failures, 0);
  EXPECT_EQ(managed.stats().preventive_restarts, 0);
  EXPECT_GT(managed.stats().prepared_repairs, 0);
}

TEST(Mea, CooldownLimitsActionRate) {
  telecom::ScpSimulator managed(leaky_config(1.0));
  runtime::ScpManagedSystem system(managed);
  MeaConfig cfg;
  cfg.warning_threshold = 0.0;  // warn every evaluation
  cfg.evaluation_interval = 60.0;
  cfg.action_cooldown = 7200.0;
  cfg.enable_minimization = false;
  MeaController mea(system, cfg);
  mea.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index(managed)));
  mea.add_action(std::make_unique<act::StateCleanupAction>(0.44));
  mea.run();
  // 1 day / 2 h cooldown: at most ~12 restarts + slack.
  EXPECT_LE(managed.stats().preventive_restarts, 14);
  EXPECT_GT(mea.stats().warnings, 100u);
}

TEST(Mea, EvaluateNowReflectsPredictors) {
  telecom::ScpSimulator sim(leaky_config(0.2));
  runtime::ScpManagedSystem system(sim);
  MeaConfig cfg;
  MeaController mea(system, cfg);
  mea.add_symptom_predictor(std::make_shared<SilentPredictor>());
  mea.run_until(3600.0);
  EXPECT_DOUBLE_EQ(mea.evaluate_now(), 0.0);
}

TEST(Mea, RunUntilStopsAtRequestedTime) {
  telecom::ScpSimulator sim(leaky_config(1.0));
  runtime::ScpManagedSystem system(sim);
  MeaConfig cfg;
  MeaController mea(system, cfg);
  mea.add_symptom_predictor(std::make_shared<SilentPredictor>());
  mea.run_until(3600.0);
  EXPECT_GE(sim.now(), 3600.0);
  EXPECT_LT(sim.now(), 7200.0);
}

}  // namespace
}  // namespace pfm::core
