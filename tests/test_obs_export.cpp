// Exporters: the Prometheus exposition, Chrome trace JSON and JSON-line
// dumps are golden-tested byte for byte — they are scrape surfaces, so
// their exact shape is the contract. include_wall = false must strip
// every wall-clock quantity and leave a pure function of (seed, plan).

#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace pfm {
namespace {

/// A small registry exercising every exporter feature: plain and labeled
/// counters, a wall-clock counter, gauges, and sim- and wall-clock
/// histograms.
class ObsExportTest : public ::testing::Test {
 protected:
  ObsExportTest() : registry_(1) {
    registry_.counter("pfm_kind_total{kind=\"a\"}").inc(1);
    registry_.counter("pfm_kind_total{kind=\"b\"}").inc(2);
    registry_.counter("pfm_test_total").inc(3);
    registry_.counter("pfm_wall_total", obs::Clock::kWall).inc(5);
    registry_.gauge("pfm_nodes").set(8.0);

    obs::HistogramSpec spec;
    spec.first_bound = 1.0;
    spec.factor = 2.0;
    spec.num_buckets = 2;
    spec.resolution = 0.5;
    auto& sim_hist =
        registry_.histogram("pfm_dur_seconds", spec, obs::Clock::kSim);
    sim_hist.observe(0.5);
    sim_hist.observe(1.5);
    sim_hist.observe(3.0);
    auto& wall_hist =
        registry_.histogram("pfm_lat_seconds", spec, obs::Clock::kWall);
    wall_hist.observe(0.25);
  }

  obs::MetricsRegistry registry_;
};

TEST_F(ObsExportTest, PrometheusTextGolden) {
  const char* expected =
      "# TYPE pfm_kind_total counter\n"
      "pfm_kind_total{kind=\"a\"} 1\n"
      "pfm_kind_total{kind=\"b\"} 2\n"
      "# TYPE pfm_test_total counter\n"
      "pfm_test_total 3\n"
      "# TYPE pfm_wall_total counter\n"
      "pfm_wall_total 5\n"
      "# TYPE pfm_nodes gauge\n"
      "pfm_nodes 8\n"
      "# TYPE pfm_dur_seconds histogram\n"
      "pfm_dur_seconds_bucket{le=\"1\"} 1\n"
      "pfm_dur_seconds_bucket{le=\"2\"} 2\n"
      "pfm_dur_seconds_bucket{le=\"+Inf\"} 3\n"
      "pfm_dur_seconds_sum 5\n"
      "pfm_dur_seconds_count 3\n"
      "# TYPE pfm_lat_seconds histogram\n"
      "pfm_lat_seconds_bucket{le=\"1\"} 1\n"
      "pfm_lat_seconds_bucket{le=\"2\"} 1\n"
      "pfm_lat_seconds_bucket{le=\"+Inf\"} 1\n"
      // The exact integer sum quantizes 0.25 to one 0.5-resolution tick.
      "pfm_lat_seconds_sum 0.5\n"
      "pfm_lat_seconds_count 1\n";
  EXPECT_EQ(obs::prometheus_text(registry_, /*include_wall=*/true), expected);
}

TEST_F(ObsExportTest, PrometheusTextWithoutWallDropsWallInstruments) {
  const std::string text =
      obs::prometheus_text(registry_, /*include_wall=*/false);
  EXPECT_EQ(text.find("pfm_wall_total"), std::string::npos);
  EXPECT_EQ(text.find("pfm_lat_seconds"), std::string::npos);
  EXPECT_NE(text.find("pfm_test_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("pfm_dur_seconds_count 3\n"), std::string::npos);
}

TEST_F(ObsExportTest, MetricsJsonLineGolden) {
  const char* expected =
      "{\"pfm_kind_total{kind=\\\"a\\\"}\":1,"
      "\"pfm_kind_total{kind=\\\"b\\\"}\":2,"
      "\"pfm_test_total\":3,"
      "\"pfm_nodes\":8,"
      "\"pfm_dur_seconds_count\":3,"
      "\"pfm_dur_seconds_sum\":5}";
  EXPECT_EQ(obs::metrics_json_line(registry_, /*include_wall=*/false),
            expected);

  const std::string with_wall =
      obs::metrics_json_line(registry_, /*include_wall=*/true);
  EXPECT_NE(with_wall.find("\"pfm_wall_total\":5"), std::string::npos);
  EXPECT_NE(with_wall.find("\"pfm_lat_seconds_sum\":0.5"),
            std::string::npos);
}

std::vector<obs::Span> sample_spans() {
  std::vector<obs::Span> spans;
  obs::Span monitor;
  monitor.sim_begin = 0.0;
  monitor.sim_end = 1.5;
  monitor.track = obs::kFleetTrack;
  monitor.kind = obs::SpanKind::kMonitorStage;
  monitor.sub = 1;
  monitor.arg = 8;
  monitor.wall_seconds = 0.25;
  spans.push_back(monitor);

  obs::Span quarantine;
  quarantine.sim_begin = 2.0;
  quarantine.sim_end = 2.0;
  quarantine.track = obs::node_track(3);
  quarantine.kind = obs::SpanKind::kQuarantine;
  spans.push_back(quarantine);

  obs::Span score;
  score.sim_begin = 1.0;
  score.sim_end = 1.25;
  score.track = obs::predictor_track(0);
  score.kind = obs::SpanKind::kScoreBatch;
  score.arg = 8;
  spans.push_back(score);
  return spans;
}

TEST(ObsExportTrace, ChromeTraceJsonGolden) {
  const char* expected =
      "{\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"fleet\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":4,"
      "\"args\":{\"name\":\"node 3\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1000000,"
      "\"args\":{\"name\":\"predictor 0\"}},"
      "{\"name\":\"monitor_stage\",\"ph\":\"X\",\"ts\":0,\"dur\":1500000,"
      "\"pid\":1,\"tid\":0,\"args\":{\"sub\":1,\"arg\":8,"
      "\"wall_us\":250000}},"
      "{\"name\":\"quarantine\",\"ph\":\"X\",\"ts\":2000000,\"dur\":0,"
      "\"pid\":1,\"tid\":4,\"args\":{\"sub\":0,\"arg\":0}},"
      "{\"name\":\"score_batch\",\"ph\":\"X\",\"ts\":1000000,"
      "\"dur\":250000,\"pid\":1,\"tid\":1000000,"
      "\"args\":{\"sub\":0,\"arg\":8}}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(obs::chrome_trace_json(sample_spans(), /*include_wall=*/true),
            expected);
}

TEST(ObsExportTrace, ChromeTraceJsonWithoutWallIsDeterministicForm) {
  const std::string text =
      obs::chrome_trace_json(sample_spans(), /*include_wall=*/false);
  EXPECT_EQ(text.find("wall_us"), std::string::npos);
  // Everything else survives.
  EXPECT_NE(text.find("\"name\":\"monitor_stage\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\":1000000"), std::string::npos);
}

TEST(ObsExportTrace, RecorderOverloadExportsSortedSpans) {
  obs::TraceRecorder rec(1, 8);
  for (const auto& span : sample_spans()) rec.record(span);
  const std::string text =
      obs::chrome_trace_json(rec, /*include_wall=*/false);
  // sorted_spans orders by sim_begin: monitor (0.0) before score (1.0)
  // before quarantine (2.0).
  const auto monitor = text.find("monitor_stage");
  const auto score = text.find("score_batch");
  const auto quarantine = text.find("\"name\":\"quarantine\"");
  ASSERT_NE(monitor, std::string::npos);
  ASSERT_NE(score, std::string::npos);
  ASSERT_NE(quarantine, std::string::npos);
  EXPECT_LT(monitor, score);
  EXPECT_LT(score, quarantine);
}

TEST(ObsExportFormat, FormatDoubleRoundTrips) {
  EXPECT_EQ(obs::format_double(0.0), "0");
  EXPECT_EQ(obs::format_double(42.0), "42");
  EXPECT_EQ(obs::format_double(-7.0), "-7");
  EXPECT_EQ(obs::format_double(0.5), "0.5");
  EXPECT_EQ(obs::format_double(0.25), "0.25");
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::quiet_NaN()),
            "NaN");
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(obs::format_double(-std::numeric_limits<double>::infinity()),
            "-Inf");

  // Shortest-representation outputs must parse back to the same bits.
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1.6e-35}) {
    const std::string s = obs::format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

}  // namespace
}  // namespace pfm
