// Seeded randomized stress: ~50 (FleetConfig, FaultPlan) pairs drawn from
// one fixed meta-seed stream, each run through a short hostile SCP fleet.
// Every run must uphold the runtime's invariants — the loop survives and
// completes, crashed nodes end up quarantined, cause-side injection stats
// and effect-side telemetry stay consistent, non-finite scores never
// escape sanitization, and the optimized path's scratch arena stops
// growing after warm-up. Failures print the iteration and derived seeds,
// so any counterexample replays deterministically.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "injection/injector.hpp"
#include "numerics/rng.hpp"
#include "prediction/baselines.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"
#include "telecom/simulator.hpp"

namespace pfm {
namespace {

constexpr std::size_t kIterations = 50;
constexpr std::size_t kNodes = 3;
constexpr double kDuration = 0.1 * 86400.0;

/// Oracle predictor over the newest pressure sample (see test_fleet).
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t index) : index_(index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

/// A trend baseline trained once per process — exercises the arena-backed
/// regression scratch on every optimized-path iteration.
std::shared_ptr<const pred::SymptomPredictor> shared_trend() {
  static const std::shared_ptr<const pred::SymptomPredictor> trend = [] {
    telecom::SimConfig cfg;
    cfg.seed = 5;
    cfg.duration = 4.0 * 86400.0;
    telecom::ScpSimulator sim(cfg);
    sim.run();
    auto p = std::make_shared<pred::TrendPredictor>(
        pred::WindowGeometry{600.0, 300.0, 300.0});
    p->train(sim.take_trace());
    return p;
  }();
  return trend;
}

struct Scenario {
  runtime::FleetConfig cfg;
  inj::FaultPlan plan;
  std::uint64_t sim_seed = 0;
  std::vector<std::size_t> crashed_nodes;  // crash_at < horizon
};

Scenario draw_scenario(num::Rng& meta) {
  Scenario s;
  s.sim_seed = static_cast<std::uint64_t>(meta.uniform_int(1, 1 << 20));

  const std::size_t thread_choices[] = {1, 2, 4, 8};
  s.cfg.num_threads =
      thread_choices[static_cast<std::size_t>(meta.uniform_int(0, 3))];
  s.cfg.path = meta.bernoulli(0.75) ? runtime::FleetPath::kOptimized
                                    : runtime::FleetPath::kReference;
  s.cfg.mea.warning_threshold = meta.uniform(0.55, 0.80);
  s.cfg.mea.action_cooldown = 300.0 * meta.uniform_int(0, 2);
  s.cfg.mea.retry.max_attempts =
      static_cast<std::size_t>(meta.uniform_int(1, 3));
  s.cfg.mea.retry.backoff_initial = 120.0;

  s.plan.seed = static_cast<std::uint64_t>(meta.uniform_int(1, 1 << 20));
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (meta.bernoulli(0.3)) {
      s.plan.nodes[i].crash_at = meta.uniform(0.1, 0.8) * kDuration;
      s.crashed_nodes.push_back(i);
    } else if (meta.bernoulli(0.3)) {
      s.plan.nodes[i].hang_at = meta.uniform(0.1, 0.8) * kDuration;
      s.plan.nodes[i].hang_steps =
          static_cast<std::size_t>(meta.uniform_int(1, 6));
    }
  }
  s.plan.default_node.drop_sample_p = meta.uniform(0.0, 0.10);
  s.plan.default_node.corrupt_sample_p = meta.uniform(0.0, 0.05);
  s.plan.predictors[0].throw_p = meta.uniform(0.0, 0.05);
  s.plan.predictors[0].nan_p = meta.uniform(0.0, 0.10);
  s.plan.predictors[0].inf_p = meta.uniform(0.0, 0.02);
  s.plan.actions[0].fail_p = meta.uniform(0.0, 0.5);
  s.plan.actions[1].partial_p = meta.uniform(0.0, 0.2);
  return s;
}

struct Outcome {
  runtime::FleetTelemetry telemetry;
  inj::InjectionStats injected;
  std::vector<bool> quarantined;
  std::size_t grow_events_at_half = 0;
  std::size_t grow_events_at_end = 0;
  std::size_t scratch_bytes = 0;
};

Outcome run_scenario(const Scenario& s) {
  telecom::SimConfig sim;
  sim.seed = s.sim_seed;
  sim.duration = kDuration;
  sim.leak_mtbf = 21600.0;

  inj::FaultInjector injector(s.plan);
  auto nodes = runtime::make_scp_fleet(sim, kNodes);
  const auto idx = *nodes.front()->trace().schema().index("mem_pressure_max");

  runtime::FleetController fleet(injector.wrap_fleet(std::move(nodes)),
                                 s.cfg);
  fleet.add_symptom_predictor(injector.wrap_symptom_predictor(
      0, std::make_shared<PressurePredictor>(idx)));
  // Deliberately unwrapped: a faulty-predictor decorator scores through
  // the reference overload, so the bare trend baseline is what drives
  // the optimized path's scratch arena in every iteration.
  fleet.add_symptom_predictor(shared_trend());
  fleet.add_action(injector.wrap_action_factory(0, [] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  }));
  fleet.add_action(injector.wrap_action_factory(1, [] {
    return std::make_unique<act::PreparedRepairAction>(1800.0);
  }));

  Outcome out;
  // Warm-up covers the context window fill (20 rounds at 60 s), after
  // which the arena footprint must be stationary: batches only shrink
  // (quarantine, completion) and history depth is capped.
  fleet.run_until(kDuration / 2.0);
  out.grow_events_at_half = fleet.scratch_grow_events();
  fleet.run();
  out.grow_events_at_end = fleet.scratch_grow_events();
  out.scratch_bytes = fleet.scratch_capacity_bytes();
  out.telemetry = fleet.telemetry();
  out.injected = injector.stats();
  for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
    out.quarantined.push_back(fleet.node_quarantined(i));
  }
  return out;
}

void check_invariants(const Scenario& s, const Outcome& o) {
  const auto& t = o.telemetry;

  // The loop survived: rounds ran, accounting is coherent.
  EXPECT_GT(t.rounds, 0u);
  EXPECT_GE(t.system.simulated, 0.0);
  EXPECT_GE(t.system.downtime, 0.0);
  EXPECT_TRUE(std::isfinite(t.system.downtime));
  const double availability = t.system.availability();
  EXPECT_GE(availability, 0.0);
  EXPECT_LE(availability, 1.0);

  // Effect side vs cause side. A crashed node throws from every method,
  // so each scripted crash that fired must have ended in quarantine.
  std::size_t quarantined_count = 0;
  for (bool q : o.quarantined) quarantined_count += q ? 1u : 0u;
  EXPECT_EQ(quarantined_count, t.resilience.nodes_quarantined);
  for (std::size_t i : s.crashed_nodes) {
    EXPECT_TRUE(o.quarantined[i]) << "crashed node " << i
                                  << " not quarantined";
  }
  EXPECT_GE(t.resilience.nodes_quarantined, s.crashed_nodes.size());
  if (!s.crashed_nodes.empty()) {
    EXPECT_GE(o.injected.node_crashes, s.crashed_nodes.size());
    EXPECT_GE(t.resilience.node_faults, s.crashed_nodes.size());
  }

  // Sanitization: non-finite scores only ever come from injection (NaN /
  // inf scores, corrupted samples); a fault-free ensemble sanitizes
  // nothing.
  if (o.injected.predictor_nans == 0 && o.injected.samples_corrupted == 0) {
    EXPECT_EQ(t.resilience.scores_sanitized, 0u);
  }
  if (t.resilience.breaker_trips > 0) {
    EXPECT_GT(o.injected.predictor_throws + o.injected.predictor_nans +
                  o.injected.samples_corrupted,
              0u);
  }

  // Scratch arena: reference path never allocates one; the optimized
  // path's footprint is stationary after warm-up.
  if (s.cfg.path == runtime::FleetPath::kReference) {
    EXPECT_EQ(o.scratch_bytes, 0u);
    EXPECT_EQ(o.grow_events_at_end, 0u);
  } else {
    EXPECT_GT(o.scratch_bytes, 0u) << "arena path never engaged";
    EXPECT_GE(o.grow_events_at_half, 1u);
    EXPECT_EQ(o.grow_events_at_end, o.grow_events_at_half)
        << "scratch arena reallocated after warm-up";
  }
}

TEST(FleetStress, SeededScenarioSweepUpholdsRuntimeInvariants) {
  num::Rng meta(20260805u);
  for (std::size_t iter = 0; iter < kIterations; ++iter) {
    const Scenario s = draw_scenario(meta);
    SCOPED_TRACE("iteration " + std::to_string(iter) + " sim_seed=" +
                 std::to_string(s.sim_seed) + " plan_seed=" +
                 std::to_string(s.plan.seed) + " threads=" +
                 std::to_string(s.cfg.num_threads) + " path=" +
                 (s.cfg.path == runtime::FleetPath::kOptimized
                      ? "optimized"
                      : "reference"));
    const Outcome o = run_scenario(s);
    check_invariants(s, o);

    // Every eighth scenario replays end to end: a fixed (config, plan)
    // pair must reproduce its telemetry exactly, whatever the draw.
    if (iter % 8 == 0) {
      const Outcome replay = run_scenario(s);
      EXPECT_EQ(o.telemetry.rounds, replay.telemetry.rounds);
      EXPECT_EQ(o.telemetry.scores_computed, replay.telemetry.scores_computed);
      EXPECT_EQ(o.telemetry.warnings_raised, replay.telemetry.warnings_raised);
      EXPECT_EQ(o.telemetry.resilience.scores_sanitized,
                replay.telemetry.resilience.scores_sanitized);
      EXPECT_EQ(o.telemetry.mea.total_actions(),
                replay.telemetry.mea.total_actions());
      EXPECT_EQ(o.telemetry.system.downtime, replay.telemetry.system.downtime);
      EXPECT_EQ(o.quarantined, replay.quarantined);
      EXPECT_EQ(o.injected.total(), replay.injected.total());
    }
  }
}

}  // namespace
}  // namespace pfm
