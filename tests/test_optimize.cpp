#include "numerics/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace pfm::num {
namespace {

TEST(NelderMead, MinimizesQuadraticBowl) {
  auto f = [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  const std::vector<double> x0{0.0, 0.0};
  const auto res = nelder_mead(f, x0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 3.0, 1e-3);
  EXPECT_NEAR(res.x[1], -1.0, 1e-3);
  EXPECT_NEAR(res.value, 0.0, 1e-6);
}

TEST(NelderMead, MinimizesRosenbrock) {
  auto f = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  const std::vector<double> x0{-1.2, 1.0};
  NelderMeadOptions opts;
  opts.max_evaluations = 20000;
  opts.f_tolerance = 1e-14;
  const auto res = nelder_mead(f, x0, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-2);
  EXPECT_NEAR(res.x[1], 1.0, 1e-2);
}

TEST(NelderMead, OneDimensional) {
  auto f = [](std::span<const double> x) { return std::cos(x[0]); };
  const std::vector<double> x0{3.0};  // near pi
  const auto res = nelder_mead(f, x0);
  EXPECT_NEAR(res.x[0], M_PI, 1e-3);
  EXPECT_NEAR(res.value, -1.0, 1e-6);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  auto f = [](std::span<const double> x) { return x[0] * x[0]; };
  const std::vector<double> x0{100.0};
  NelderMeadOptions opts;
  opts.max_evaluations = 10;
  const auto res = nelder_mead(f, x0, opts);
  EXPECT_LE(res.evaluations, 12u);  // budget + final shrink slack
}

TEST(NelderMead, EmptyStartThrows) {
  auto f = [](std::span<const double>) { return 0.0; };
  EXPECT_THROW(nelder_mead(f, std::vector<double>{}), std::invalid_argument);
}

TEST(NelderMead, NeverReturnsWorseThanStart) {
  auto f = [](std::span<const double> x) {
    return std::abs(x[0]) + std::abs(x[1]) + std::abs(x[2]);
  };
  const std::vector<double> x0{5.0, -3.0, 2.0};
  const auto res = nelder_mead(f, x0);
  EXPECT_LE(res.value, f(x0));
}

}  // namespace
}  // namespace pfm::num
