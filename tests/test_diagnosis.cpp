#include "core/diagnosis.hpp"

#include <gtest/gtest.h>

#include "runtime/scp_system.hpp"

#include <stdexcept>

namespace pfm::core {
namespace {

telecom::SimConfig quiet_config() {
  telecom::SimConfig cfg;
  cfg.duration = 6.0 * 3600.0;
  cfg.leak_mtbf = 1e12;
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  cfg.noise_event_rate = 1e-12;
  cfg.lookalike_event_rate = 1e-12;
  return cfg;
}

TEST(Diagnoser, ConfigValidation) {
  Diagnoser::Config cfg;
  cfg.evidence_window = 0.0;
  EXPECT_THROW(Diagnoser{cfg}, std::invalid_argument);
}

TEST(Diagnoser, HealthySystemHasNoSuspects) {
  telecom::ScpSimulator sim(quiet_config());
  runtime::ScpManagedSystem system(sim);
  sim.step_to(3600.0);
  Diagnoser d;
  EXPECT_TRUE(d.diagnose(system).empty());
  EXPECT_EQ(d.prime_suspect(system), -1);
}

TEST(Diagnoser, LeakingNodeBecomesPrimeSuspect) {
  telecom::SimConfig cfg = quiet_config();
  cfg.leak_mtbf = 1.0;  // every node leaks, but at different rates
  cfg.leak_min_rate = 0.05;
  cfg.leak_max_rate = 0.4;
  telecom::ScpSimulator sim(cfg);
  sim.step_to(4.0 * 3600.0);
  // Find the node with the worst pressure.
  std::size_t worst = 0;
  double worst_pressure = 0.0;
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    if (sim.node(i).memory_pressure() > worst_pressure) {
      worst_pressure = sim.node(i).memory_pressure();
      worst = i;
    }
  }
  ASSERT_GT(worst_pressure, 0.70) << "test premise: some node under pressure";
  runtime::ScpManagedSystem system(sim);
  Diagnoser d;
  const auto suspects = d.diagnose(system);
  ASSERT_FALSE(suspects.empty());
  EXPECT_EQ(suspects.front().component, static_cast<std::int32_t>(worst));
  EXPECT_NE(suspects.front().evidence.find("memory pressure"),
            std::string::npos);
}

TEST(Diagnoser, CascadingNodeIsFlaggedWithEvidence) {
  telecom::SimConfig cfg = quiet_config();
  cfg.cascade_mtbf = 400.0;  // one node will start cascading soon
  telecom::ScpSimulator sim(cfg);
  // Step until some node is in a cascade.
  while (!sim.finished()) {
    sim.step_to(sim.now() + 60.0);
    bool any = false;
    for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
      any |= sim.node(i).cascade_stage() >= 1;
    }
    if (any) break;
  }
  runtime::ScpManagedSystem system(sim);
  Diagnoser d;
  const auto suspects = d.diagnose(system);
  ASSERT_FALSE(suspects.empty());
  bool cascade_flagged = false;
  for (const auto& s : suspects) {
    if (s.evidence.find("cascade") != std::string::npos) {
      cascade_flagged = true;
      EXPECT_GE(s.component, 0);
    }
  }
  EXPECT_TRUE(cascade_flagged);
}

TEST(Diagnoser, OverloadIsSystemWideNotComponent) {
  telecom::SimConfig cfg = quiet_config();
  cfg.arrival_rate = 150.0;  // well beyond 4 x 30 capacity at peak
  telecom::ScpSimulator sim(cfg);
  sim.step_to(12.0 * 3600.0);  // midday peak
  runtime::ScpManagedSystem system(sim);
  Diagnoser d;
  const auto suspects = d.diagnose(system);
  bool system_wide = false;
  for (const auto& s : suspects) {
    if (s.component == -1) {
      system_wide = true;
      EXPECT_NE(s.evidence.find("offered load"), std::string::npos);
    }
  }
  EXPECT_TRUE(system_wide);
}

TEST(Diagnoser, SuspicionsSortedAndBounded) {
  telecom::SimConfig cfg = quiet_config();
  cfg.leak_mtbf = 1.0;
  cfg.cascade_mtbf = 600.0;
  cfg.noise_event_rate = 1.0 / 300.0;
  telecom::ScpSimulator sim(cfg);
  sim.step_to(3.0 * 3600.0);
  runtime::ScpManagedSystem system(sim);
  Diagnoser d;
  const auto suspects = d.diagnose(system);
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    EXPECT_GE(suspects[i].score, 0.0);
    EXPECT_LE(suspects[i].score, 1.0);
    if (i > 0) {
      EXPECT_LE(suspects[i].score, suspects[i - 1].score);
    }
  }
}

}  // namespace
}  // namespace pfm::core
