#include <gtest/gtest.h>

#include <stdexcept>

#include "actions/action.hpp"
#include "actions/selection.hpp"
#include "actions/ttr.hpp"
#include "runtime/scp_system.hpp"

namespace pfm::act {
namespace {

telecom::SimConfig leaky_config() {
  telecom::SimConfig cfg;
  cfg.duration = 4.0 * 3600.0;
  cfg.leak_mtbf = 1.0;  // leak starts immediately on every node
  cfg.leak_min_rate = cfg.leak_max_rate = 0.35;
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  return cfg;
}

TEST(Taxonomy, Fig7GoalMapping) {
  EXPECT_EQ(goal_of(ActionKind::kStateCleanup),
            ActionGoal::kDowntimeAvoidance);
  EXPECT_EQ(goal_of(ActionKind::kPreventiveFailover),
            ActionGoal::kDowntimeAvoidance);
  EXPECT_EQ(goal_of(ActionKind::kLoadLowering),
            ActionGoal::kDowntimeAvoidance);
  EXPECT_EQ(goal_of(ActionKind::kPreparedRepair),
            ActionGoal::kDowntimeMinimization);
  EXPECT_EQ(goal_of(ActionKind::kPreventiveRestart),
            ActionGoal::kDowntimeMinimization);
}

TEST(Taxonomy, Names) {
  EXPECT_EQ(to_string(ActionKind::kLoadLowering), "load-lowering");
  EXPECT_EQ(to_string(ActionGoal::kDowntimeAvoidance), "downtime-avoidance");
  EXPECT_EQ(to_string(ActionGoal::kDowntimeMinimization),
            "downtime-minimization");
}

TEST(Properties, Validation) {
  ActionProperties p;
  EXPECT_NO_THROW(p.validate());
  p.cost = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ActionProperties{};
  p.success_probability = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ActionProperties{};
  p.complexity = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(StateCleanup, TriggersOnPressureAndRestartsWorstNode) {
  telecom::ScpSimulator sim(leaky_config());
  runtime::ScpManagedSystem system(sim);
  StateCleanupAction cleanup(0.70);
  EXPECT_FALSE(cleanup.applicable(system));  // fresh system
  sim.step_to(3.0 * 3600.0);  // leak grows past the trigger
  ASSERT_TRUE(cleanup.applicable(system));
  cleanup.execute(system, 0.9);
  EXPECT_EQ(sim.stats().preventive_restarts, 1);
}

TEST(StateCleanup, TriggerValidation) {
  EXPECT_THROW(StateCleanupAction(0.0), std::invalid_argument);
  EXPECT_THROW(StateCleanupAction(1.0), std::invalid_argument);
}

TEST(Failover, TriggersOnCascade) {
  telecom::SimConfig cfg;
  cfg.duration = 4.0 * 3600.0;
  cfg.cascade_mtbf = 1.0;
  cfg.leak_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  telecom::ScpSimulator sim(cfg);
  runtime::ScpManagedSystem system(sim);
  PreventiveFailoverAction failover;
  sim.step_to(60.0);
  ASSERT_TRUE(failover.applicable(system));  // cascade onset happened
  // With cascade_mtbf=1 every node cascades; each execution clears one.
  auto cascading = [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
      n += sim.node(i).cascade_stage() >= 1 ? 1 : 0;
    }
    return n;
  };
  const auto before = cascading();
  ASSERT_GT(before, 0u);
  failover.execute(system, 0.8);
  EXPECT_EQ(sim.stats().preventive_restarts, 1);
  EXPECT_EQ(cascading(), before - 1);
}

TEST(LoadLowering, AppliesConfidenceScaledShedding) {
  telecom::SimConfig cfg;
  cfg.duration = 2.0 * 3600.0;
  cfg.arrival_rate = 200.0;  // overloaded from the start
  cfg.leak_mtbf = 1e12;
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  telecom::ScpSimulator sim(cfg);
  runtime::ScpManagedSystem system(sim);
  sim.step_to(60.0);
  LoadLoweringAction shed(0.75, 600.0);
  ASSERT_TRUE(shed.applicable(system));
  shed.execute(system, 1.0);
  sim.step_to(600.0);
  EXPECT_GT(sim.stats().shed_requests, 0);
}

TEST(LoadLowering, NotApplicableAtNominalLoad) {
  telecom::SimConfig cfg;
  cfg.duration = 3600.0;
  cfg.leak_mtbf = 1e12;
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  telecom::ScpSimulator sim(cfg);
  runtime::ScpManagedSystem system(sim);
  sim.step_to(60.0);
  LoadLoweringAction shed;
  EXPECT_FALSE(shed.applicable(system));
}

TEST(PreparedRepair, AlwaysApplicableAndPreparesSystem) {
  telecom::ScpSimulator sim(leaky_config());
  runtime::ScpManagedSystem system(sim);
  PreparedRepairAction prepare(900.0);
  EXPECT_TRUE(prepare.applicable(system));
  sim.step_to(60.0);
  prepare.execute(system, 0.7);
  // Preparation is visible through a shortened repair of the next failure
  // (verified end-to-end in the simulator tests); here we check the
  // objective properties are sane.
  EXPECT_NO_THROW(prepare.properties().validate());
  EXPECT_THROW(PreparedRepairAction(0.0), std::invalid_argument);
}

TEST(PreventiveRestart, TargetsSuspiciousNode) {
  telecom::ScpSimulator sim(leaky_config());
  runtime::ScpManagedSystem system(sim);
  PreventiveRestartAction restart;
  sim.step_to(3.0 * 3600.0);
  ASSERT_TRUE(restart.applicable(system));
  restart.execute(system, 0.9);
  EXPECT_EQ(sim.stats().preventive_restarts, 1);
}

TEST(Objective, ScoresFollowSect2Formula) {
  StateCleanupAction a;
  ObjectiveWeights w;
  w.failure_cost = 10.0;
  const auto& p = a.properties();
  const double expected =
      (0.8 * p.success_probability * 10.0 - p.cost) / p.complexity;
  EXPECT_NEAR(objective_score(a, 0.8, w), expected, 1e-12);
}

TEST(Selector, PicksBestApplicableAction) {
  telecom::ScpSimulator sim(leaky_config());
  runtime::ScpManagedSystem system(sim);
  sim.step_to(3.0 * 3600.0);  // pressure high: cleanup applicable

  std::vector<std::unique_ptr<Action>> actions;
  actions.push_back(std::make_unique<StateCleanupAction>());
  actions.push_back(std::make_unique<LoadLoweringAction>());  // inapplicable
  actions.push_back(nullptr);  // tolerated

  ActionSelector selector;
  Action* chosen = selector.select(actions, system, 0.9);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->kind(), ActionKind::kStateCleanup);
}

TEST(Selector, ReturnsNullWhenNothingWorthwhile) {
  telecom::ScpSimulator sim(leaky_config());
  runtime::ScpManagedSystem system(sim);
  sim.step_to(3.0 * 3600.0);
  std::vector<std::unique_ptr<Action>> actions;
  actions.push_back(std::make_unique<StateCleanupAction>());
  // Confidence so low that the benefit never covers the cost.
  ObjectiveWeights w;
  w.failure_cost = 0.1;
  ActionSelector selector(w);
  EXPECT_EQ(selector.select(actions, system, 0.05), nullptr);
}

TEST(Selector, RespectsBudgetConstraint) {
  telecom::ScpSimulator sim(leaky_config());
  runtime::ScpManagedSystem system(sim);
  sim.step_to(3.0 * 3600.0);
  std::vector<std::unique_ptr<Action>> actions;
  actions.push_back(std::make_unique<StateCleanupAction>());
  ObjectiveWeights w;
  w.max_action_cost = 0.1;  // everything is too expensive
  ActionSelector selector(w);
  EXPECT_EQ(selector.select(actions, system, 0.99), nullptr);
}

TEST(Ttr, Fig8Decomposition) {
  TtrModel m;
  EXPECT_NO_THROW(m.validate());
  // Classical: cold reconfiguration + recomputation since the periodic
  // checkpoint. Prepared: warm spare + tiny recomputation.
  EXPECT_GT(m.classical(1800.0), m.prepared(60.0));
  EXPECT_NEAR(m.classical(0.0), m.reconfig_cold, 1e-12);
  EXPECT_NEAR(m.prepared(0.0), m.reconfig_warm, 1e-12);
  // Recomputation saturates.
  EXPECT_NEAR(m.recompute_time(1e12), m.recompute_max, 1e-12);
  // Eq. 6 improvement factor.
  EXPECT_NEAR(m.improvement_factor(1800.0, 60.0),
              m.classical(1800.0) / m.prepared(60.0), 1e-12);
  EXPECT_GT(m.improvement_factor(1800.0, 60.0), 1.0);
}

TEST(Ttr, Validation) {
  TtrModel m;
  m.reconfig_warm = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = TtrModel{};
  m.reconfig_warm = m.reconfig_cold + 1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = TtrModel{};
  m.recompute_factor = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace pfm::act
