#include <gtest/gtest.h>

#include <stdexcept>

#include "eval/crossval.hpp"
#include "eval/metrics.hpp"
#include "numerics/rng.hpp"

namespace pfm::eval {
namespace {

TEST(PrCurve, PerfectClassifier) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels{1, 1, 0, 0};
  const auto curve = pr_curve(scores, labels);
  // Every point up to full recall has precision 1.
  for (const auto& p : curve) {
    if (p.recall <= 1.0 && p.threshold >= 0.8) {
      EXPECT_DOUBLE_EQ(p.precision, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(average_precision(scores, labels), 1.0);
}

TEST(PrCurve, RecallIsMonotone) {
  num::Rng rng(4);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int y = rng.bernoulli(0.3) ? 1 : 0;
    scores.push_back(rng.normal(y * 1.0, 1.0));
    labels.push_back(y);
  }
  labels[0] = 1;
  labels[1] = 0;
  const auto curve = pr_curve(scores, labels);
  double prev = 0.0;
  for (const auto& p : curve) {
    EXPECT_GE(p.recall, prev);
    EXPECT_GE(p.precision, 0.0);
    EXPECT_LE(p.precision, 1.0);
    prev = p.recall;
  }
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  // At full recall, precision equals the base rate.
  double base = 0.0;
  for (int y : labels) base += y;
  base /= static_cast<double>(labels.size());
  EXPECT_NEAR(curve.back().precision, base, 1e-12);
}

TEST(PrCurve, AveragePrecisionBeatsBaseRateForInformativeScores) {
  num::Rng rng(6);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 2000; ++i) {
    const int y = rng.bernoulli(0.2) ? 1 : 0;
    scores.push_back(rng.normal(y * 1.5, 1.0));
    labels.push_back(y);
  }
  EXPECT_GT(average_precision(scores, labels), 0.35);  // base rate 0.2
}

TEST(PrCurve, Validation) {
  EXPECT_THROW(pr_curve(std::vector<double>{}, std::vector<int>{}),
               std::invalid_argument);
  EXPECT_THROW(pr_curve(std::vector<double>{0.1}, std::vector<int>{1, 0}),
               std::invalid_argument);
  EXPECT_THROW(
      pr_curve(std::vector<double>{0.1, 0.2}, std::vector<int>{1, 1}),
      std::invalid_argument);
}

mon::MonitoringDataset uniform_trace(double duration) {
  mon::MonitoringDataset ds(mon::SymptomSchema({"x"}));
  for (double t = 0.0; t <= duration; t += 60.0) {
    ds.add_sample({t, {t}});
  }
  return ds;
}

TEST(ForwardChaining, FoldsCoverTraceWithoutLeakage) {
  const auto ds = uniform_trace(6000.0);
  const auto folds = forward_chaining_folds(ds, 3);
  ASSERT_EQ(folds.size(), 3u);
  for (std::size_t i = 0; i < folds.size(); ++i) {
    // Test always follows training (no future leakage).
    EXPECT_LT(folds[i].train_end, folds[i].test_end);
    EXPECT_DOUBLE_EQ(folds[i].train_begin, ds.start_time());
    if (i > 0) {
      // Training window grows monotonically.
      EXPECT_GT(folds[i].train_end, folds[i - 1].train_end);
    }
  }
  EXPECT_DOUBLE_EQ(folds.back().test_end, ds.end_time());
}

TEST(ForwardChaining, MaterializedFoldsPartitionSamples) {
  const auto ds = uniform_trace(6000.0);
  const auto folds = forward_chaining_folds(ds, 4);
  for (const auto& f : folds) {
    const auto [train, test] = materialize_fold(ds, f);
    ASSERT_FALSE(train.samples().empty());
    ASSERT_FALSE(test.samples().empty());
    EXPECT_LT(train.samples().back().time, test.samples().front().time);
    for (const auto& s : test.samples()) {
      EXPECT_GE(s.time, f.train_end);
      EXPECT_LT(s.time, f.test_end + 1e-9);
    }
  }
}

TEST(ForwardChaining, Validation) {
  const auto ds = uniform_trace(6000.0);
  EXPECT_THROW(forward_chaining_folds(ds, 0), std::invalid_argument);
  mon::MonitoringDataset empty{mon::SymptomSchema{}};
  EXPECT_THROW(forward_chaining_folds(empty, 3), std::invalid_argument);
}

}  // namespace
}  // namespace pfm::eval
