#include "monitoring/timeseries.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pfm::mon {
namespace {

TEST(RingBuffer, DropsOldestWhenFull) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 3);
  EXPECT_EQ(rb.back(), 5);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[2], 5);
}

TEST(RingBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, IterationAndClear) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  int sum = 0;
  for (int v : rb) sum += v;
  EXPECT_EQ(sum, 3);
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

TEST(TimeSeries, PushAndAccess) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_THROW(ts.last_time(), std::out_of_range);
  ts.push(1.0, 10.0);
  ts.push(2.0, 20.0);
  ts.push(2.0, 21.0);  // equal timestamps allowed
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.last_time(), 2.0);
  EXPECT_DOUBLE_EQ(ts.last_value(), 21.0);
  EXPECT_THROW(ts.push(1.5, 0.0), std::invalid_argument);
}

TEST(TimeSeries, WindowQueriesAreHalfOpen) {
  TimeSeries ts;
  for (int i = 0; i <= 10; ++i) ts.push(i, i * 1.0);
  // (2, 5] -> values at t=3,4,5.
  const auto w = ts.window_values(2.0, 5.0);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[2], 5.0);
  EXPECT_DOUBLE_EQ(ts.window_mean(2.0, 5.0), 4.0);
  EXPECT_TRUE(ts.window_values(20.0, 30.0).empty());
  EXPECT_DOUBLE_EQ(ts.window_mean(20.0, 30.0), 0.0);
}

TEST(TimeSeries, WindowSlopeDetectsTrend) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.push(i, 5.0 - 0.25 * i);
  EXPECT_NEAR(ts.window_slope(0.0, 99.0), -0.25, 1e-12);
  // Single point -> zero slope.
  TimeSeries one;
  one.push(0.0, 1.0);
  EXPECT_DOUBLE_EQ(one.window_slope(-1.0, 1.0), 0.0);
}

}  // namespace
}  // namespace pfm::mon
