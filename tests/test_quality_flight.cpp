// Flight recorder (DESIGN.md §12): the per-scope ring must keep exactly
// the newest `capacity` events and count the rest as dropped, dumps must
// render a hand-checkable golden JSON-line post-mortem, a hostile fault
// plan must leave a quarantine post-mortem on the crashed node, and the
// full post-mortem text must be byte-identical across thread counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "injection/injector.hpp"
#include "obs/flight.hpp"
#include "obs/observability.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace pfm {
namespace {

// --- unit semantics of the ring and the dump format --------------------------

TEST(QualityFlightRecorder, GoldenPostMortemIsByteExact) {
  obs::FlightRecorder rec(3);
  ASSERT_TRUE(rec.enabled());
  rec.ensure_nodes(1);
  rec.record_node(0, {100.0, obs::FlightEventKind::kScore, 0, 0, 0.25});
  rec.record_node(0, {160.0, obs::FlightEventKind::kScore, 0, 0, 0.5});
  rec.record_node(0, {220.0, obs::FlightEventKind::kWarning, 0, 810000, 0.81});
  rec.record_node(0, {220.0, obs::FlightEventKind::kAction, 1, 2, 0.81});
  rec.dump_node(0, "quarantine", 250.0);

  // Four events through a three-slot ring: the t=100 score fell off.
  const std::string expected =
      "{\"postmortem\":\"node\",\"id\":0,\"reason\":\"quarantine\","
      "\"time\":250,\"events\":3,\"dropped\":1}\n"
      "{\"t\":160,\"kind\":\"score\",\"sub\":0,\"arg\":0,\"value\":0.5}\n"
      "{\"t\":220,\"kind\":\"warning\",\"sub\":0,\"arg\":810000,"
      "\"value\":0.81}\n"
      "{\"t\":220,\"kind\":\"action\",\"sub\":1,\"arg\":2,\"value\":0.81}\n";
  EXPECT_EQ(rec.post_mortems_text(), expected);
  EXPECT_EQ(rec.dump_count(), 1u);
  rec.clear_dumps();
  EXPECT_EQ(rec.dump_count(), 0u);
  EXPECT_EQ(rec.post_mortems_text(), "");
}

TEST(QualityFlightRecorder, LaneDumpCarriesShardAndPredictor) {
  obs::FlightRecorder rec(4);
  rec.ensure_lanes(6, /*stride=*/2);  // three shards, two predictors
  rec.record_lane(5, {300.0, obs::FlightEventKind::kBreakerTrip, 7, 3, 0.0});
  rec.dump_lane(5, "breaker", 300.0);
  const std::string expected =
      "{\"postmortem\":\"predictor\",\"id\":5,\"shard\":2,\"predictor\":1,"
      "\"reason\":\"breaker\",\"time\":300,\"events\":1,\"dropped\":0}\n"
      "{\"t\":300,\"kind\":\"breaker_trip\",\"sub\":7,\"arg\":3,"
      "\"value\":0}\n";
  EXPECT_EQ(rec.post_mortems_text(), expected);
}

TEST(QualityFlightRecorder, RingKeepsNewestEventsOnly) {
  obs::FlightRecorder rec(2);
  rec.ensure_nodes(2);
  for (int i = 0; i < 5; ++i) {
    rec.record_node(
        0, {static_cast<double>(i), obs::FlightEventKind::kScore, 0, i, 0.0});
  }
  rec.dump_node(0, "drain", 10.0);
  const std::string text = rec.post_mortems_text();
  EXPECT_NE(text.find("\"events\":2,\"dropped\":3"), std::string::npos);
  EXPECT_EQ(text.find("\"arg\":2,"), std::string::npos) << "evicted event";
  EXPECT_NE(text.find("\"arg\":3,"), std::string::npos);
  EXPECT_NE(text.find("\"arg\":4,"), std::string::npos);
  // Scopes are independent: node 1 recorded nothing.
  rec.dump_node(1, "drain", 11.0);
  EXPECT_NE(rec.post_mortems_text().find("\"events\":0,\"dropped\":0"),
            std::string::npos);
}

TEST(QualityFlightRecorder, DumpsAreOrderedByTimeFamilyIdSequence) {
  obs::FlightRecorder rec(2);
  rec.ensure_nodes(2);
  rec.ensure_lanes(1, 1);
  rec.dump_lane(0, "breaker", 50.0);   // predictor family sorts after node
  rec.dump_node(1, "quarantine", 50.0);
  rec.dump_node(0, "drain", 20.0);
  const std::string text = rec.post_mortems_text();
  const auto drain = text.find("\"reason\":\"drain\"");
  const auto quarantine = text.find("\"reason\":\"quarantine\"");
  const auto breaker = text.find("\"reason\":\"breaker\"");
  ASSERT_NE(drain, std::string::npos);
  ASSERT_NE(quarantine, std::string::npos);
  ASSERT_NE(breaker, std::string::npos);
  EXPECT_LT(drain, quarantine);
  EXPECT_LT(quarantine, breaker);
}

TEST(QualityFlightRecorder, ZeroCapacityDisablesEverything) {
  obs::FlightRecorder rec(0);
  EXPECT_FALSE(rec.enabled());
  rec.ensure_nodes(4);
  rec.ensure_lanes(4, 2);
  EXPECT_EQ(rec.node_scopes(), 0u);
  EXPECT_EQ(rec.lane_scopes(), 0u);
  rec.record_node(0, {1.0, obs::FlightEventKind::kScore, 0, 0, 0.0});
  rec.dump_node(0, "quarantine", 1.0);
  EXPECT_EQ(rec.dump_count(), 0u);

  // The hub only hands out a recorder when one was configured.
  obs::ObservabilityConfig off;
  obs::Observability hub_off(off);
  EXPECT_EQ(hub_off.flight(), nullptr);
  obs::ObservabilityConfig on;
  on.flight_capacity = 8;
  obs::Observability hub_on(on);
  ASSERT_NE(hub_on.flight(), nullptr);
  EXPECT_EQ(hub_on.flight()->capacity(), 8u);
}

// --- fleet integration: a hostile plan leaves a post-mortem -------------------

/// Oracle predictor: newest value of symptom 0 (see test_fleet).
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t pressure_index)
      : index_(pressure_index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

telecom::SimConfig scp_config() {
  telecom::SimConfig cfg;
  cfg.seed = 21;
  cfg.duration = 0.5 * 86400.0;
  cfg.leak_mtbf = 21600.0;
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  return cfg;
}

/// The hostile scenario of the injected-fault counter test, with the
/// flight recorder armed: node 1 crashes at 10800 s and must leave a
/// quarantine post-mortem whose tail records the injected fault.
std::string run_hostile_fleet(std::size_t num_threads) {
  const std::size_t kNodes = 4;
  obs::ObservabilityConfig ocfg;
  ocfg.shards = num_threads;
  ocfg.flight_capacity = 32;
  obs::Observability hub(ocfg);

  inj::FaultPlan plan;
  plan.seed = 1234;
  plan.nodes[1].crash_at = 10800.0;
  plan.default_node.drop_sample_p = 0.05;
  plan.predictors[0].nan_p = 0.05;
  plan.actions[0].fail_p = 0.5;
  inj::FaultInjector injector(plan);
  injector.set_observability(&hub);

  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.mea.action_cooldown = 600.0;
  cfg.mea.retry.max_attempts = 3;
  cfg.mea.retry.backoff_initial = 120.0;
  cfg.num_threads = num_threads;
  cfg.quality.enabled = true;  // the scoreboard rides along
  cfg.obs = &hub;

  auto nodes = runtime::make_scp_fleet(scp_config(), kNodes);
  const auto idx = *nodes.front()->trace().schema().index("mem_pressure_max");
  runtime::FleetController fleet(injector.wrap_fleet(std::move(nodes)), cfg);
  fleet.add_symptom_predictor(injector.wrap_symptom_predictor(
      0, std::make_shared<PressurePredictor>(idx)));
  fleet.add_action(injector.wrap_action_factory(0, [] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  }));
  fleet.add_action(injector.wrap_action_factory(1, [] {
    return std::make_unique<act::PreparedRepairAction>(1800.0);
  }));
  fleet.run();

  EXPECT_TRUE(fleet.node_quarantined(1));
  EXPECT_GE(hub.flight()->dump_count(), 1u);
  return hub.flight()->post_mortems_text();
}

TEST(QualityFlightFleet, CrashLeavesAQuarantinePostMortem) {
  const std::string text = run_hostile_fleet(2);
  EXPECT_NE(text.find("{\"postmortem\":\"node\",\"id\":1,"), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"quarantine\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"injected_fault\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"score\""), std::string::npos);
}

TEST(QualityFlightFleet, PostMortemsAreBitIdenticalAcrossThreadCounts) {
  const std::string t1 = run_hostile_fleet(1);
  const std::string t2 = run_hostile_fleet(2);
  const std::string t8 = run_hostile_fleet(8);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

}  // namespace
}  // namespace pfm
