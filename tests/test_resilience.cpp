// Hardened runtime semantics: quarantine keeps the fleet running, the
// per-predictor circuit breaker trips and half-opens, failed actions
// follow the bounded-retry/exponential-backoff schedule, and non-finite
// scores never reach the warning decision.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/mea.hpp"
#include "injection/injector.hpp"
#include "membership/membership_plan.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace pfm {
namespace {

class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t pressure_index)
      : index_(pressure_index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

/// Returns a fixed (possibly non-finite) value and counts scored calls —
/// the probe-visibility hook for the breaker tests.
class ScriptedPredictor final : public pred::SymptomPredictor {
 public:
  /// Emits `bad` for the first `faulty_calls` score_batch calls, then
  /// `good` forever.
  ScriptedPredictor(double bad, double good, std::size_t faulty_calls)
      : bad_(bad), good_(good), faulty_calls_(faulty_calls) {}
  std::string name() const override { return "scripted"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext&) const override {
    return calls_ <= faulty_calls_ ? bad_ : good_;
  }
  void score_batch(std::span<const pred::SymptomContext> contexts,
                   std::span<double> out) const override {
    ++calls_;
    const double v = calls_ <= faulty_calls_ ? bad_ : good_;
    for (std::size_t i = 0; i < contexts.size(); ++i) out[i] = v;
  }
  std::size_t calls() const noexcept { return calls_; }

 private:
  double bad_;
  double good_;
  std::size_t faulty_calls_;
  mutable std::size_t calls_ = 0;
};

/// Fails the first `failures` execute attempts, then succeeds.
class FlakyAction final : public act::Action {
 public:
  explicit FlakyAction(std::size_t failures) : failures_left_(failures) {}
  std::string name() const override { return "flaky"; }
  act::ActionKind kind() const override {
    return act::ActionKind::kPreparedRepair;
  }
  const act::ActionProperties& properties() const override { return props_; }
  bool applicable(const core::ManagedSystem&) const override { return true; }
  void execute(core::ManagedSystem& system, double) override {
    ++attempts_;
    if (failures_left_ > 0) {
      --failures_left_;
      throw std::runtime_error("flaky actuator");
    }
    system.checkpoint();
    ++successes_;
  }
  std::size_t attempts() const noexcept { return attempts_; }
  std::size_t successes() const noexcept { return successes_; }

 private:
  std::size_t failures_left_;
  std::size_t attempts_ = 0;
  std::size_t successes_ = 0;
  act::ActionProperties props_{0.5, 0.95, 1.0};
};

telecom::SimConfig sim_config() {
  telecom::SimConfig cfg;
  cfg.seed = 21;
  cfg.duration = 0.5 * 86400.0;
  cfg.leak_mtbf = 21600.0;
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  return cfg;
}

std::size_t pressure_index() {
  telecom::ScpSimulator sim(sim_config());
  return *sim.trace().schema().index("mem_pressure_max");
}

// --- quarantine -------------------------------------------------------------

TEST(Resilience, QuarantineKeepsTheFleetRunning) {
  const std::size_t kNodes = 4;
  inj::FaultPlan plan;
  plan.nodes[1].crash_at = 3600.0;
  inj::FaultInjector injector(plan);

  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.num_threads = 2;
  runtime::FleetController fleet(
      injector.wrap_fleet(runtime::make_scp_fleet(sim_config(), kNodes)), cfg);
  fleet.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index()));
  fleet.add_action([] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  });

  EXPECT_NO_THROW(fleet.run());

  EXPECT_TRUE(fleet.node_quarantined(1));
  EXPECT_NE(fleet.node_quarantine_reason(1).find("crashed"),
            std::string::npos);
  for (std::size_t i : {0u, 2u, 3u}) {
    EXPECT_FALSE(fleet.node_quarantined(i)) << "node " << i;
    EXPECT_DOUBLE_EQ(fleet.node(i).system_stats().simulated,
                     sim_config().duration)
        << "healthy node " << i << " must run to its horizon";
  }
  const auto t = fleet.telemetry();
  EXPECT_EQ(t.resilience.nodes_quarantined, 1u);
  EXPECT_GE(t.resilience.node_faults, 1u);
  // The dead node stops accumulating coverage at its crash instant.
  EXPECT_LT(fleet.node(1).system_stats().simulated, sim_config().duration);
}

/// Churn-vs-fault composition: a node the FaultPlan crashes (and the
/// runtime quarantines) is later restarted by the MembershipPlan. The
/// fresh incarnation must NOT resurrect the dead incarnation's state —
/// no stale quarantine record, a clean reason, and real forward
/// progress — while the fleet's cumulative accounting keeps the old
/// incarnation's history.
TEST(Resilience, MembershipRestartClearsQuarantineInsteadOfResurrectingIt) {
  const std::size_t kNodes = 4;
  inj::FaultPlan plan;
  plan.nodes[1].crash_at = 3600.0;
  inj::FaultInjector injector(plan);

  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.membership.plan.restart_node(7200.0, 1);
  // The replacement incarnation is NOT fault-wrapped: having crashed
  // once is a property of the dead incarnation, not of the slot.
  cfg.membership.factory = [](const membership::JoinContext& ctx) {
    telecom::SimConfig joiner = sim_config();
    joiner.seed = ctx.seed;
    return std::make_unique<runtime::ScpManagedSystem>(joiner);
  };
  runtime::FleetController fleet(
      injector.wrap_fleet(runtime::make_scp_fleet(sim_config(), kNodes)), cfg);
  fleet.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index()));
  fleet.add_action([] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  });

  EXPECT_NO_THROW(fleet.run());

  // The crash really happened before the restart...
  const auto t = fleet.telemetry();
  EXPECT_GE(t.resilience.node_faults, 1u);
  EXPECT_EQ(t.membership.nodes_left, 1u);
  EXPECT_EQ(t.membership.nodes_joined, 1u);
  // ...yet no stale quarantine survives the restart.
  EXPECT_FALSE(fleet.node_quarantined(1));
  EXPECT_TRUE(fleet.node_quarantine_reason(1).empty());
  EXPECT_EQ(t.resilience.nodes_quarantined, 0u);
  EXPECT_EQ(fleet.node_incarnation(1), 1u);
  EXPECT_FALSE(fleet.node_departed(1));
  // The fresh incarnation starts over on its own clock and — unlike its
  // crashed predecessor — runs all the way to its horizon.
  EXPECT_DOUBLE_EQ(fleet.node(1).system_stats().simulated,
                   sim_config().duration);
  // Fleet totals stay cumulative across incarnations: four nodes at
  // full coverage PLUS the crashed incarnation's partial history.
  EXPECT_GT(t.system.simulated, 4.0 * sim_config().duration);
}

/// The flip side: a restarted slot is re-armed, not immunized. If the
/// replacement is fault-wrapped under the same crash spec, the fresh
/// incarnation crashes on its own clock and is quarantined again — with
/// its own fresh decision stream, not a replay of the first crash.
TEST(Resilience, RestartedNodeCanBeQuarantinedAgainByItsOwnFaults) {
  inj::FaultPlan plan;
  plan.nodes[1].crash_at = 3600.0;
  inj::FaultInjector injector(plan);

  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.membership.plan.restart_node(7200.0, 1);
  cfg.membership.factory = [&injector](const membership::JoinContext& ctx) {
    telecom::SimConfig joiner = sim_config();
    joiner.seed = ctx.seed;
    return injector.wrap_node(
        ctx.node, std::make_unique<runtime::ScpManagedSystem>(joiner));
  };
  runtime::FleetController fleet(
      injector.wrap_fleet(runtime::make_scp_fleet(sim_config(), 4)), cfg);
  fleet.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index()));

  EXPECT_NO_THROW(fleet.run());

  EXPECT_TRUE(fleet.node_quarantined(1));
  EXPECT_NE(fleet.node_quarantine_reason(1).find("crashed"),
            std::string::npos);
  EXPECT_EQ(fleet.node_incarnation(1), 1u);
  const auto t = fleet.telemetry();
  EXPECT_EQ(t.resilience.nodes_quarantined, 1u);
  EXPECT_GE(t.resilience.node_faults, 2u) << "both incarnations crashed";
}

TEST(Resilience, DisabledResilienceFailsFast) {
  inj::FaultPlan plan;
  plan.nodes[0].crash_at = 3600.0;
  inj::FaultInjector injector(plan);

  runtime::FleetConfig cfg;
  cfg.resilience.enabled = false;
  runtime::FleetController fleet(
      injector.wrap_fleet(runtime::make_scp_fleet(sim_config(), 2)), cfg);
  fleet.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index()));
  EXPECT_THROW(fleet.run(), inj::NodeCrashError);
}

TEST(Resilience, FaultFreeRunIsIdenticalWithAndWithoutHardening) {
  auto run_one = [&](bool hardened) {
    runtime::FleetConfig cfg;
    cfg.mea.warning_threshold = 0.72;
    cfg.mea.action_cooldown = 600.0;
    cfg.num_threads = 2;
    cfg.resilience.enabled = hardened;
    runtime::FleetController fleet(runtime::make_scp_fleet(sim_config(), 4),
                                   cfg);
    fleet.add_symptom_predictor(
        std::make_shared<PressurePredictor>(pressure_index()));
    fleet.add_action([] {
      return std::make_unique<act::StateCleanupAction>(0.70);
    });
    fleet.run();
    return fleet.telemetry();
  };

  const auto on = run_one(true);
  const auto off = run_one(false);
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.scores_computed, off.scores_computed);
  EXPECT_EQ(on.warnings_raised, off.warnings_raised);
  EXPECT_EQ(on.mea.total_actions(), off.mea.total_actions());
  EXPECT_DOUBLE_EQ(on.system.downtime, off.system.downtime);
  EXPECT_EQ(on.system.total_requests, off.system.total_requests);
  // Hardening engaged nothing.
  EXPECT_EQ(on.resilience.node_faults, 0u);
  EXPECT_EQ(on.resilience.predictor_faults, 0u);
  EXPECT_EQ(on.resilience.scores_sanitized, 0u);
  EXPECT_EQ(on.resilience.breaker_trips, 0u);
  EXPECT_EQ(on.mea.action_faults, 0u);
}

// --- circuit breaker --------------------------------------------------------

TEST(Resilience, BreakerTripsSitsOutAndHalfOpensBackToHealthy) {
  // Scripted: the flaky predictor emits NaN for its first 2 scored calls,
  // then behaves. trip_failures=2, open_rounds=3:
  //   rounds 1-2  faulty -> breaker opens (trip #1)
  //   rounds 3-5  sits out (no scored calls)
  //   round  6    half-open probe -> healthy -> breaker closes
  //   round  7+   scored normally
  const double interval = 60.0;
  runtime::FleetConfig cfg;
  cfg.mea.evaluation_interval = interval;
  cfg.mea.warning_threshold = 0.72;
  cfg.resilience.breaker_trip_failures = 2;
  cfg.resilience.breaker_open_rounds = 3;

  auto scripted = std::make_shared<ScriptedPredictor>(
      std::numeric_limits<double>::quiet_NaN(), 0.0, 2);
  runtime::FleetController fleet(runtime::make_scp_fleet(sim_config(), 2),
                                 cfg);
  fleet.add_symptom_predictor(scripted);
  fleet.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index()));

  auto run_rounds = [&](std::size_t rounds) {
    fleet.run_until(fleet.telemetry().rounds * interval + rounds * interval);
  };

  run_rounds(2);
  EXPECT_EQ(scripted->calls(), 2u);
  EXPECT_TRUE(fleet.predictor_tripped(0));
  EXPECT_FALSE(fleet.predictor_tripped(1)) << "healthy predictor unaffected";
  EXPECT_EQ(fleet.telemetry().resilience.breaker_trips, 1u);

  run_rounds(3);  // cooldown: the tripped predictor is not scored at all
  EXPECT_EQ(scripted->calls(), 2u);
  EXPECT_TRUE(fleet.predictor_tripped(0));
  EXPECT_EQ(fleet.telemetry().resilience.breakers_open, 1u);

  run_rounds(1);  // half-open probe; the predictor is healthy again
  EXPECT_EQ(scripted->calls(), 3u);
  EXPECT_FALSE(fleet.predictor_tripped(0));

  run_rounds(2);  // closed: scored every round again
  EXPECT_EQ(scripted->calls(), 5u);
  EXPECT_EQ(fleet.telemetry().resilience.breaker_trips, 1u);
  EXPECT_EQ(fleet.telemetry().resilience.breakers_open, 0u);
}

TEST(Resilience, FailedProbeReopensTheBreaker) {
  const double interval = 60.0;
  runtime::FleetConfig cfg;
  cfg.mea.evaluation_interval = interval;
  cfg.resilience.breaker_trip_failures = 1;
  cfg.resilience.breaker_open_rounds = 2;

  // Faulty for its first 2 scored calls: call 1 trips it, the probe
  // (call 2) fails and re-opens it, the next probe (call 3) heals it.
  auto scripted = std::make_shared<ScriptedPredictor>(
      std::numeric_limits<double>::quiet_NaN(), 0.0, 2);
  runtime::FleetController fleet(runtime::make_scp_fleet(sim_config(), 1),
                                 cfg);
  fleet.add_symptom_predictor(scripted);

  auto run_rounds = [&](std::size_t rounds) {
    fleet.run_until(fleet.telemetry().rounds * interval + rounds * interval);
  };

  run_rounds(1);  // trip #1
  EXPECT_TRUE(fleet.predictor_tripped(0));
  run_rounds(2);  // sit out
  EXPECT_EQ(scripted->calls(), 1u);
  run_rounds(1);  // probe fails -> re-open (trip #2)
  EXPECT_EQ(scripted->calls(), 2u);
  EXPECT_TRUE(fleet.predictor_tripped(0));
  EXPECT_EQ(fleet.telemetry().resilience.breaker_trips, 2u);
  run_rounds(2);  // sit out again
  EXPECT_EQ(scripted->calls(), 2u);
  run_rounds(1);  // probe succeeds -> closed
  EXPECT_EQ(scripted->calls(), 3u);
  EXPECT_FALSE(fleet.predictor_tripped(0));
}

// --- action retry / backoff -------------------------------------------------

TEST(Resilience, ActionRetriesFollowTheBoundedSchedule) {
  runtime::ScpManagedSystem system{sim_config()};
  system.step_to(600.0);

  core::MeaConfig cfg;
  cfg.action_cooldown = 0.0;
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_initial = 100.0;
  cfg.retry.backoff_max = 400.0;

  // Fails twice, then succeeds: one execution, two retries, no abandon.
  auto flaky = std::make_unique<FlakyAction>(2);
  auto* flaky_ptr = flaky.get();
  core::ActEngine engine;
  engine.add_action(std::move(flaky));
  core::MeaStats stats;
  engine.act(system, 0.9, cfg, stats);
  EXPECT_EQ(flaky_ptr->attempts(), 3u);
  EXPECT_EQ(flaky_ptr->successes(), 1u);
  EXPECT_EQ(stats.action_faults, 2u);
  EXPECT_EQ(stats.action_retries, 2u);
  EXPECT_EQ(stats.actions_abandoned, 0u);
  EXPECT_EQ(stats.actions_by_kind[static_cast<std::size_t>(
                act::ActionKind::kPreparedRepair)],
            1u);
  // Success leaves no backoff behind.
  EXPECT_LT(engine.backoff_until(act::ActionKind::kPreparedRepair), 0.0);
}

TEST(Resilience, AbandonedActionsBackOffExponentially) {
  runtime::ScpManagedSystem system{sim_config()};
  system.step_to(600.0);

  core::MeaConfig cfg;
  cfg.action_cooldown = 0.0;
  cfg.retry.max_attempts = 2;
  cfg.retry.backoff_initial = 100.0;
  cfg.retry.backoff_max = 400.0;

  auto always_failing = std::make_unique<FlakyAction>(1000000);
  auto* action = always_failing.get();
  core::ActEngine engine;
  engine.add_action(std::move(always_failing));
  core::MeaStats stats;

  // Abandon #1 at t=600: schedule 100 * 2^0.
  engine.act(system, 0.9, cfg, stats);
  EXPECT_EQ(action->attempts(), 2u);
  EXPECT_EQ(stats.actions_abandoned, 1u);
  EXPECT_DOUBLE_EQ(engine.backoff_until(act::ActionKind::kPreparedRepair),
                   700.0);

  // Still backed off: no further attempts.
  engine.act(system, 0.9, cfg, stats);
  EXPECT_EQ(action->attempts(), 2u);

  // Abandon #2 at t=800: schedule doubles to 200.
  system.step_to(800.0);
  engine.act(system, 0.9, cfg, stats);
  EXPECT_EQ(action->attempts(), 4u);
  EXPECT_DOUBLE_EQ(engine.backoff_until(act::ActionKind::kPreparedRepair),
                   1000.0);

  // Abandon #3 at t=1000: 400. Abandon #4 at t=1500: capped at 400.
  system.step_to(1000.0);
  engine.act(system, 0.9, cfg, stats);
  EXPECT_DOUBLE_EQ(engine.backoff_until(act::ActionKind::kPreparedRepair),
                   1400.0);
  system.step_to(1500.0);
  engine.act(system, 0.9, cfg, stats);
  EXPECT_DOUBLE_EQ(engine.backoff_until(act::ActionKind::kPreparedRepair),
                   1900.0);
  EXPECT_EQ(stats.actions_abandoned, 4u);
  EXPECT_EQ(stats.action_retries, 4u);
  EXPECT_EQ(stats.action_faults, 8u);
}

TEST(Resilience, RetryPolicyCanRethrow) {
  runtime::ScpManagedSystem system{sim_config()};
  system.step_to(600.0);
  core::MeaConfig cfg;
  cfg.retry.rethrow = true;
  core::ActEngine engine;
  engine.add_action(std::make_unique<FlakyAction>(10));
  core::MeaStats stats;
  EXPECT_THROW(engine.act(system, 0.9, cfg, stats), std::runtime_error);
}

// --- NaN / inf sanitization -------------------------------------------------

TEST(Resilience, EvaluateNowExcludesNonFiniteScores) {
  runtime::ScpManagedSystem system{sim_config()};
  core::MeaConfig cfg;
  cfg.warning_threshold = 0.72;
  core::MeaController mea(system, cfg);
  mea.add_symptom_predictor(std::make_shared<ScriptedPredictor>(
      std::numeric_limits<double>::quiet_NaN(), 0.0, 1000000));
  mea.add_symptom_predictor(std::make_shared<ScriptedPredictor>(
      std::numeric_limits<double>::infinity(), 0.0, 1000000));
  mea.add_symptom_predictor(
      std::make_shared<PressurePredictor>(pressure_index()));

  system.step_to(1800.0);
  std::size_t sanitized = 0;
  const double combined = mea.evaluate_now(&sanitized);
  EXPECT_TRUE(std::isfinite(combined));
  EXPECT_EQ(sanitized, 2u) << "one NaN + one inf excluded";
  EXPECT_LT(combined, 1.01) << "+inf must not leak into the reduce";
}

TEST(Resilience, InfScoresDoNotForceFleetWarnings) {
  // An always-inf predictor would warn on every round if +inf survived
  // the reduce; sanitized, it contributes nothing (and eventually trips).
  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  runtime::FleetController fleet(runtime::make_scp_fleet(sim_config(), 2),
                                 cfg);
  fleet.add_symptom_predictor(std::make_shared<ScriptedPredictor>(
      std::numeric_limits<double>::infinity(), 0.0, 1000000));
  fleet.run_until(3600.0);

  const auto t = fleet.telemetry();
  EXPECT_EQ(t.warnings_raised, 0u);
  EXPECT_GT(t.resilience.scores_sanitized, 0u);
  EXPECT_GE(t.resilience.breaker_trips, 1u)
      << "a predictor that is always non-finite must trip its breaker";
}

}  // namespace
}  // namespace pfm
