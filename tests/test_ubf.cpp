#include "prediction/ubf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/rng.hpp"
#include "prediction/evaluate.hpp"

namespace pfm::pred {
namespace {

/// Builds a synthetic monitoring trace where variable 0 ramps up before
/// every failure, variable 1 is pure noise, and variable 2 is a constant.
mon::MonitoringDataset synthetic_trace(std::uint64_t seed, double duration,
                                       double failure_period) {
  num::Rng rng(seed);
  mon::MonitoringDataset ds(mon::SymptomSchema({"signal", "noise", "flat"}));
  const double dt = 30.0;
  double next_failure = failure_period;
  for (double t = 0.0; t < duration; t += dt) {
    // Signal rises linearly during the 900 s before each failure.
    const double to_failure = next_failure - t;
    double signal = rng.normal(1.0, 0.15);
    if (to_failure < 900.0 && to_failure > 0.0) {
      signal += 2.5 * (1.0 - to_failure / 900.0);
    }
    ds.add_sample({t, {signal, rng.normal(0.0, 1.0), 5.0}});
    if (t >= next_failure) {
      ds.add_failure(t);
      next_failure += failure_period;
    }
  }
  return ds;
}

UbfConfig fast_config() {
  UbfConfig cfg;
  cfg.windows = {600.0, 300.0, 300.0};
  cfg.num_kernels = 4;
  cfg.pwa_iterations = 25;
  cfg.shape_evaluations = 120;
  cfg.max_train_windows = 1200;
  return cfg;
}

TEST(Ubf, ConfigValidation) {
  UbfConfig cfg = fast_config();
  cfg.num_kernels = 0;
  EXPECT_THROW(UbfPredictor{cfg}, std::invalid_argument);
  cfg = fast_config();
  cfg.selection = VariableSelection::kExpert;  // without expert_variables
  EXPECT_THROW(UbfPredictor{cfg}, std::invalid_argument);
  cfg.expert_variables = {0};
  EXPECT_NO_THROW(UbfPredictor{cfg});
}

TEST(Ubf, ScoreBeforeTrainThrows) {
  UbfPredictor ubf(fast_config());
  SymptomContext ctx;
  EXPECT_THROW(ubf.score(ctx), std::logic_error);
}

TEST(Ubf, TrainRequiresBothClasses) {
  UbfPredictor ubf(fast_config());
  mon::MonitoringDataset empty{mon::SymptomSchema({"a"})};
  for (int i = 0; i < 100; ++i) {
    empty.add_sample({i * 30.0, {1.0}});
  }
  EXPECT_THROW(ubf.train(empty), std::invalid_argument);  // no failures
}

TEST(Ubf, LearnsSyntheticPrecursor) {
  const auto trace = synthetic_trace(1, 6.0 * 86400.0, 5000.0);
  const auto [train, test] = trace.split_at(4.0 * 86400.0);
  UbfPredictor ubf(fast_config());
  ubf.train(train);
  EXPECT_GT(ubf.training_validation_auc(), 0.8);

  EvalOptions eo;
  eo.windows = fast_config().windows;
  const auto report = make_report("ubf", score_on_grid(ubf, test, eo));
  EXPECT_GT(report.auc, 0.8);
}

TEST(Ubf, SelectsTheInformativeVariable) {
  const auto trace = synthetic_trace(2, 6.0 * 86400.0, 5000.0);
  UbfConfig cfg = fast_config();
  cfg.include_trend_features = false;
  UbfPredictor ubf(cfg);
  ubf.train(trace);
  const auto& sel = ubf.selected_variables();
  // Variable 0 (the precursor) must be kept.
  EXPECT_NE(std::find(sel.begin(), sel.end(), 0u), sel.end());
}

TEST(Ubf, ExpertSelectionUsesGivenVariables) {
  const auto trace = synthetic_trace(3, 4.0 * 86400.0, 5000.0);
  UbfConfig cfg = fast_config();
  cfg.selection = VariableSelection::kExpert;
  cfg.expert_variables = {0};
  cfg.include_trend_features = false;
  UbfPredictor ubf(cfg);
  ubf.train(trace);
  ASSERT_EQ(ubf.selected_variables().size(), 1u);
  EXPECT_EQ(ubf.selected_variables()[0], 0u);
}

TEST(Ubf, ExpertSelectionRejectsBadIndex) {
  const auto trace = synthetic_trace(3, 2.0 * 86400.0, 5000.0);
  UbfConfig cfg = fast_config();
  cfg.selection = VariableSelection::kExpert;
  cfg.expert_variables = {99};
  UbfPredictor ubf(cfg);
  EXPECT_THROW(ubf.train(trace), std::invalid_argument);
}

TEST(Ubf, FeatureNamesCoverLevelsAndSlopes) {
  const auto trace = synthetic_trace(4, 4.0 * 86400.0, 5000.0);
  UbfConfig cfg = fast_config();
  cfg.selection = VariableSelection::kAll;
  UbfPredictor ubf(cfg);
  ubf.train(trace);
  const auto names = ubf.selected_feature_names(trace.schema());
  ASSERT_EQ(names.size(), 6u);  // 3 levels + 3 slopes
  EXPECT_EQ(names[0], "signal");
  EXPECT_EQ(names[3], "signal.slope");
}

TEST(Ubf, ScoreIsBoundedAndMonotoneWithSignal) {
  const auto trace = synthetic_trace(5, 6.0 * 86400.0, 5000.0);
  UbfConfig cfg = fast_config();
  cfg.include_trend_features = false;
  UbfPredictor ubf(cfg);
  ubf.train(trace);

  auto ctx_with_signal = [&](double signal) {
    static std::vector<mon::SymptomSample> samples;
    samples = {{1000.0, {signal, 0.0, 5.0}}};
    SymptomContext ctx;
    ctx.history = samples;
    return ctx;
  };
  const double low = ubf.score(ctx_with_signal(1.0));
  const double high = ubf.score(ctx_with_signal(3.4));
  EXPECT_GE(low, 0.0);
  EXPECT_LE(high, 1.0);
  EXPECT_GT(high, low);
}

TEST(Ubf, ForwardAndBackwardSelectionProduceWorkingModels) {
  const auto trace = synthetic_trace(6, 5.0 * 86400.0, 5000.0);
  const auto [train, test] = trace.split_at(3.5 * 86400.0);
  for (auto sel : {VariableSelection::kForward, VariableSelection::kBackward}) {
    UbfConfig cfg = fast_config();
    cfg.selection = sel;
    cfg.include_trend_features = false;
    UbfPredictor ubf(cfg);
    ubf.train(train);
    EvalOptions eo;
    eo.windows = cfg.windows;
    const auto report = make_report("x", score_on_grid(ubf, test, eo));
    EXPECT_GT(report.auc, 0.7) << "selection mode "
                               << static_cast<int>(sel);
  }
}

TEST(Ubf, PlainRbfAblationStillLearns) {
  const auto trace = synthetic_trace(7, 5.0 * 86400.0, 5000.0);
  const auto [train, test] = trace.split_at(3.5 * 86400.0);
  UbfConfig cfg = fast_config();
  cfg.mixture_kernels = false;
  UbfPredictor rbf(cfg);
  EXPECT_EQ(rbf.name(), "RBF");
  rbf.train(train);
  EvalOptions eo;
  eo.windows = cfg.windows;
  const auto report = make_report("rbf", score_on_grid(rbf, test, eo));
  EXPECT_GT(report.auc, 0.7);
}

}  // namespace
}  // namespace pfm::pred
