#include "prediction/evaluate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pfm::pred {
namespace {

/// Scores 1.0 whenever the newest sample's variable 0 exceeds 0.5.
class StubSymptom final : public SymptomPredictor {
 public:
  std::string name() const override { return "stub"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const SymptomContext& ctx) const override {
    return ctx.history.back().values[0] > 0.5 ? 1.0 : 0.0;
  }
};

/// Scores by the number of events in the window.
class StubEvent final : public EventPredictor {
 public:
  std::string name() const override { return "stub-event"; }
  void train(std::span<const mon::ErrorSequence>,
             std::span<const mon::ErrorSequence>) override {}
  double score(const mon::ErrorSequence& seq) const override {
    return static_cast<double>(seq.events.size());
  }
};

mon::MonitoringDataset trace_with_failure_at(double failure_time) {
  mon::MonitoringDataset ds(mon::SymptomSchema({"v"}));
  for (double t = 0.0; t <= 4000.0; t += 50.0) {
    // Variable goes high 600 s before the failure.
    const double v =
        (t > failure_time - 600.0 && t < failure_time) ? 1.0 : 0.0;
    ds.add_sample({t, {v}});
  }
  ds.add_failure(failure_time);
  ds.add_event({failure_time - 500.0, 201, 0, 2});
  ds.add_event({failure_time - 400.0, 202, 0, 2});
  return ds;
}

TEST(Evaluate, SymptomGridLabelsAndScores) {
  const auto ds = trace_with_failure_at(2000.0);
  StubSymptom p;
  EvalOptions eo;
  eo.windows = {600.0, 300.0, 300.0};
  const auto pts = score_on_grid(p, ds, eo);
  ASSERT_FALSE(pts.empty());
  // Instants too close to the trace end are not labelable.
  for (const auto& si : pts) EXPECT_LE(si.time + 600.0, 4000.0);
  // With count_early_failures, the failure at 2000 is inside [t, t+600)
  // exactly for instants t in (1400, 2000].
  for (const auto& si : pts) {
    const bool expect_pos = si.time > 1400.0 && si.time <= 2000.0;
    EXPECT_EQ(si.label == 1, expect_pos) << "t=" << si.time;
  }
  const auto report = make_report("stub", pts);
  EXPECT_GT(report.auc, 0.95);  // precursor variable is a near-oracle here
}

TEST(Evaluate, StrictLabelingExcludesLateWarnings) {
  const auto ds = trace_with_failure_at(2000.0);
  StubSymptom p;
  EvalOptions eo;
  eo.windows = {600.0, 300.0, 300.0};
  eo.count_early_failures = false;
  const auto pts = score_on_grid(p, ds, eo);
  for (const auto& si : pts) {
    // Failure at 2000 within [t+300, t+600) <=> t in (1400, 1700].
    const bool expect_pos = si.time > 1400.0 && si.time <= 1700.0;
    EXPECT_EQ(si.label == 1, expect_pos) << "t=" << si.time;
  }
}

TEST(Evaluate, EventGridUsesDataWindow) {
  const auto ds = trace_with_failure_at(2000.0);
  StubEvent p;
  EvalOptions eo;
  eo.windows = {600.0, 300.0, 300.0};
  eo.stride = 100.0;
  const auto pts = score_on_grid(p, ds, eo);
  ASSERT_FALSE(pts.empty());
  // At t = 1600, both events (1500, 1600) are inside (1000, 1600].
  bool found = false;
  for (const auto& si : pts) {
    if (si.time == 1600.0) {
      EXPECT_DOUBLE_EQ(si.score, 2.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(
      [&] {
        EvalOptions bad = eo;
        bad.stride = 0.0;
        return score_on_grid(p, ds, bad);
      }(),
      std::invalid_argument);
}

TEST(Evaluate, ReportFormatsAndValidates) {
  std::vector<ScoredInstant> pts{{0.0, 0.9, 1}, {1.0, 0.1, 0}};
  const auto r = make_report("demo", pts);
  EXPECT_EQ(r.name, "demo");
  EXPECT_DOUBLE_EQ(r.auc, 1.0);
  EXPECT_EQ(r.num_instants, 2u);
  EXPECT_EQ(r.num_positive, 1u);
  const auto s = to_string(r);
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("AUC="), std::string::npos);

  EXPECT_THROW(make_report("empty", {}), std::invalid_argument);
  std::vector<ScoredInstant> single_class{{0.0, 0.9, 1}};
  EXPECT_THROW(make_report("one", single_class), std::invalid_argument);
}

TEST(Evaluate, WindowGeometryValidation) {
  WindowGeometry g{0.0, 300.0, 300.0};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {600.0, -1.0, 300.0};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {600.0, 300.0, 0.0};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {600.0, 300.0, 300.0};
  EXPECT_NO_THROW(g.validate());
  // Boundary: zero lead time is legal (warn at the failure instant),
  // zero-width data or prediction windows are not.
  g = {600.0, 0.0, 300.0};
  EXPECT_NO_THROW(g.validate());
}

}  // namespace
}  // namespace pfm::pred
