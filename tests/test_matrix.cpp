#include "numerics/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pfm::num {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstruction) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 1.5);
  }
}

TEST(Matrix, InitializerListConstruction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);

  const double d[] = {2.0, 5.0};
  const Matrix diag = Matrix::diagonal(d);
  EXPECT_DOUBLE_EQ(diag(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(diag(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, AdditionSubtractionScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  const Matrix d = a - b;
  EXPECT_DOUBLE_EQ(d(0, 0), -3.0);
  const Matrix t = a * 2.0;
  EXPECT_DOUBLE_EQ(t(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(3, 2);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a * b, std::invalid_argument);  // 2x2 * 3x2
}

TEST(Matrix, Product) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ApplyRightAndLeft) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x{1.0, 1.0};
  const auto y = a.apply(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const auto z = a.apply_left(x);
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 6.0);
}

TEST(Matrix, Transposed) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Norms) {
  Matrix a{{1.0, -2.0}, {-3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm_inf(), 7.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(Matrix, ApproxEqual) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0 + 1e-13, 2.0}};
  EXPECT_TRUE(a.approx_equal(b, 1e-12));
  EXPECT_FALSE(a.approx_equal(b, 1e-14));
  Matrix c(2, 1);
  EXPECT_FALSE(a.approx_equal(c));
}

TEST(VectorOps, DotAndNorms) {
  const std::vector<double> a{3.0, 4.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(sum(a), 7.0);
  const std::vector<double> c{1.0};
  EXPECT_THROW(dot(a, c), std::invalid_argument);
}

}  // namespace
}  // namespace pfm::num
