// Unit tests of the event-driven scheduler core (runtime/schedule.hpp):
// the calendar queue's window/ordering/idle contracts and the adaptive
// sampling policy's gap function. Everything here is single-threaded by
// design — determinism of the sharded runtime rests on these being pure
// sequential data structures.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "runtime/schedule.hpp"

namespace pfm::runtime {
namespace {

TEST(SchedulePolicy, DenseModeAlwaysReturnsGapOne) {
  SchedulePolicy policy;  // adaptive = false
  policy.validate();
  for (std::size_t prev : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    EXPECT_EQ(policy.next_gap(prev, false), 1u);
    EXPECT_EQ(policy.next_gap(prev, true), 1u);
  }
}

TEST(SchedulePolicy, AdaptiveBackoffDoublesUpToMaxGapAndSnapsBackWhenHot) {
  SchedulePolicy policy;
  policy.adaptive = true;
  policy.max_gap = 8;
  policy.validate();

  // Quiet node: 1 -> 2 -> 4 -> 8 -> 8 -> ...
  std::size_t gap = 1;
  std::vector<std::size_t> seen;
  for (int i = 0; i < 5; ++i) {
    gap = policy.next_gap(gap, false);
    seen.push_back(gap);
  }
  EXPECT_EQ(seen, (std::vector<std::size_t>{2, 4, 8, 8, 8}));

  // One hot visit snaps straight back to dense, whatever the backoff was.
  EXPECT_EQ(policy.next_gap(8, true), 1u);
  EXPECT_EQ(policy.next_gap(2, true), 1u);
}

TEST(SchedulePolicy, ValidateRejectsBadKnobs) {
  SchedulePolicy policy;
  policy.max_gap = 0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.max_gap = 4;
  policy.hot_score_fraction = -0.1;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.hot_score_fraction = 0.5;
  policy.hot_urgency = -1.0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
}

TEST(CalendarQueue, PopsTicksInOrderWithSortedDueSets) {
  CalendarQueue q(8);
  // Insert out of node order at mixed ticks.
  q.schedule(2, 7);
  q.schedule(0, 3);
  q.schedule(2, 1);
  q.schedule(0, 9);
  q.schedule(0, 0);
  EXPECT_EQ(q.scheduled(), 5u);

  std::uint64_t tick = 99;
  std::vector<std::uint32_t> due;
  ASSERT_TRUE(q.pop_due(8, tick, due));
  EXPECT_EQ(tick, 0u);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{0, 3, 9}));
  ASSERT_TRUE(q.pop_due(8, tick, due));
  EXPECT_EQ(tick, 2u);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{1, 7}));
  EXPECT_FALSE(q.pop_due(8, tick, due));
  EXPECT_TRUE(due.empty());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.cursor(), 8u);
}

TEST(CalendarQueue, PopStopsAtTheEpochBoundary) {
  CalendarQueue q(8);
  q.schedule(5, 1);
  std::uint64_t tick = 0;
  std::vector<std::uint32_t> due;
  // The item at tick 5 is outside the epoch [0, 4).
  EXPECT_FALSE(q.pop_due(4, tick, due));
  EXPECT_EQ(q.cursor(), 4u);
  EXPECT_FALSE(q.empty());
  // The next epoch reaches it.
  ASSERT_TRUE(q.pop_due(8, tick, due));
  EXPECT_EQ(tick, 5u);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{1}));
}

TEST(CalendarQueue, IdleCalendarJumpsTheCursorToTheEpochBoundary) {
  CalendarQueue q(4);
  std::uint64_t tick = 0;
  std::vector<std::uint32_t> due;
  EXPECT_FALSE(q.pop_due(100, tick, due));
  // An idle shard stays on the shared epoch grid: a later activation
  // lands at the same tick every other shard uses.
  EXPECT_EQ(q.cursor(), 100u);
  q.schedule(100, 5);
  ASSERT_TRUE(q.pop_due(104, tick, due));
  EXPECT_EQ(tick, 100u);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{5}));
}

TEST(CalendarQueue, RingReusesSlotsAcrossManyEpochs) {
  CalendarQueue q(4);
  std::uint64_t tick = 0;
  std::vector<std::uint32_t> due;
  // A single node hopping forward by 3 ticks for many laps of the ring.
  std::uint64_t at = 0;
  q.schedule(at, 0);
  for (int lap = 0; lap < 100; ++lap) {
    ASSERT_TRUE(q.pop_due(at + 1, tick, due));
    EXPECT_EQ(tick, at);
    EXPECT_EQ(due.size(), 1u);
    at += 3;
    q.schedule(at, 0);
  }
  EXPECT_EQ(q.scheduled(), 1u);
}

TEST(CalendarQueue, RejectsTicksOutsideTheWindow) {
  CalendarQueue q(4);
  std::uint64_t tick = 0;
  std::vector<std::uint32_t> due;
  EXPECT_FALSE(q.pop_due(2, tick, due));  // cursor -> 2
  EXPECT_THROW(q.schedule(1, 0), std::logic_error);   // behind the cursor
  EXPECT_THROW(q.schedule(6, 0), std::logic_error);   // beyond the ring
  q.schedule(2, 0);                                   // cursor itself: fine
  q.schedule(5, 1);                                   // last in-window slot
  EXPECT_EQ(q.scheduled(), 2u);
}

TEST(CalendarQueue, ClearEmptiesEveryBucket) {
  CalendarQueue q(4);
  q.schedule(0, 1);
  q.schedule(2, 2);
  q.clear();
  EXPECT_TRUE(q.empty());
  std::uint64_t tick = 0;
  std::vector<std::uint32_t> due;
  EXPECT_FALSE(q.pop_due(4, tick, due));
}

}  // namespace
}  // namespace pfm::runtime
