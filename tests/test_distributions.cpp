#include "numerics/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "numerics/rng.hpp"

namespace pfm::num {
namespace {

TEST(Exponential, BasicProperties) {
  const Exponential e{0.5};
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
  EXPECT_NEAR(e.cdf(e.mean()), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(e.pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.hazard(123.0), 0.5);
}

TEST(Exponential, MleRecoversRate) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.exponential(0.25));
  const auto fit = Exponential::mle(samples);
  EXPECT_NEAR(fit.rate, 0.25, 0.01);
}

TEST(Exponential, MleErrors) {
  EXPECT_THROW(Exponential::mle(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Exponential::mle(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w{1.0, 4.0};
  const Exponential e{0.25};
  for (double t : {0.1, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(w.pdf(t), e.pdf(t), 1e-12);
    EXPECT_NEAR(w.cdf(t), e.cdf(t), 1e-12);
    EXPECT_NEAR(w.hazard(t), 0.25, 1e-12);
  }
  EXPECT_NEAR(w.mean(), 4.0, 1e-12);
}

TEST(Weibull, IncreasingHazardForAgingShape) {
  const Weibull w{2.5, 10.0};
  double prev = w.hazard(0.5);
  for (double t : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    const double h = w.hazard(t);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(Weibull, CdfSurvivalComplement) {
  const Weibull w{1.7, 3.0};
  for (double t : {0.0, 0.3, 2.0, 9.0}) {
    EXPECT_NEAR(w.cdf(t) + w.survival(t), 1.0, 1e-12);
  }
}

TEST(Weibull, MleRecoversParameters) {
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.weibull(2.0, 5.0));
  const auto fit = Weibull::mle(samples);
  EXPECT_NEAR(fit.shape, 2.0, 0.05);
  EXPECT_NEAR(fit.scale, 5.0, 0.1);
}

TEST(Weibull, MleBeatsWrongShapeInLikelihood) {
  Rng rng(23);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.weibull(3.0, 2.0));
  const auto fit = Weibull::mle(samples);
  const Weibull wrong{1.0, 2.0};
  EXPECT_GT(fit.log_likelihood(samples), wrong.log_likelihood(samples));
}

TEST(Weibull, MleErrors) {
  EXPECT_THROW(Weibull::mle(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(Weibull::mle(std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pfm::num
