// Differential conformance suite of the SIMD scoring layer (DESIGN.md
// §13). Three rings, progressively wider:
//
//  1. num::simd primitives: the dispatched backend must be bit-identical
//     to the portable reference lanes on every input (including the
//     padded-remainder tails), and vexp must stay within 1 ULP of libm
//     across the full double range — overflow, underflow, denormals, NaN.
//  2. The Eq. 1 kernel sweep: sweep_simd vs sweep_scalar within the
//     documented ULP envelope, batch-composition invariant, and
//     threshold-decision identical on the conformance corpus.
//  3. Full-fleet replays: FleetPath::kSimd exports byte-identical to
//     kOptimized across threads {1,2,8} and shards {1,4,16}, clean and
//     under a hostile fault plan — the same artifact set the PR-5
//     conformance reference pins.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "injection/injector.hpp"
#include "numerics/simd.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "prediction/baselines.hpp"
#include "prediction/kernels.hpp"
#include "prediction/ubf.hpp"
#include "property.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"
#include "telecom/simulator.hpp"

namespace pfm {
namespace {

namespace simd = num::simd;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// ULP distance via the ordered integer mapping (handles the sign
/// boundary; infinite for mixed NaN/non-NaN pairs).
std::uint64_t ulp_diff(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::isnan(a) == std::isnan(b)
               ? 0
               : std::numeric_limits<std::uint64_t>::max();
  }
  auto ordered = [](double x) {
    const auto u = std::bit_cast<std::int64_t>(x);
    return u >= 0 ? u : std::numeric_limits<std::int64_t>::min() - u;
  };
  const std::int64_t ia = ordered(a);
  const std::int64_t ib = ordered(b);
  return ia >= ib ? static_cast<std::uint64_t>(ia - ib)
                  : static_cast<std::uint64_t>(ib - ia);
}

/// The final-score agreement policy (DESIGN.md §13): tight in ULP for
/// well-conditioned scores, with an absolute escape hatch where kernel
/// cancellation makes relative error meaningless.
void expect_score_close(double simd_score, double scalar_score,
                        const char* what) {
  const bool ok = ulp_diff(simd_score, scalar_score) <= 256 ||
                  std::abs(simd_score - scalar_score) <= 1e-12;
  EXPECT_TRUE(ok) << what << ": simd=" << simd_score
                  << " scalar=" << scalar_score
                  << " ulp=" << ulp_diff(simd_score, scalar_score);
}

// === ring 1: primitives ======================================================

TEST(SimdExp, BackendReportsConsistently) {
  const std::string name = simd::backend_name();
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar") << name;
  EXPECT_EQ(simd::vectorized(), name != "scalar");
}

TEST(SimdExp, Within2UlpOfLibmAcrossTheNormalRange) {
  // Dense deterministic grid over the whole finite exp domain. The hard
  // conformance contract is backend bit-identity (below); this test is
  // the accuracy floor, and 2 ULP is the documented bound for the
  // Cephes-style rational polynomial (glibc itself is faithfully rounded
  // but not correctly rounded, so the measured gap combines both).
  constexpr int kSteps = 200000;
  const double lo = simd::detail::kExpUnderflow - 2.0;
  const double hi = simd::detail::kExpOverflow + 2.0;
  std::vector<double> x(kSteps), y(kSteps);
  for (int i = 0; i < kSteps; ++i) {
    x[i] = lo + (hi - lo) * static_cast<double>(i) /
                    static_cast<double>(kSteps - 1);
  }
  simd::vexp(x.data(), y.data(), x.size());
  std::uint64_t worst = 0;
  for (int i = 0; i < kSteps; ++i) {
    worst = std::max(worst, ulp_diff(y[i], std::exp(x[i])));
  }
  EXPECT_LE(worst, 2u) << "vexp drifted from libm";
}

TEST(SimdExp, EdgeCasesMatchLibmSemantics) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> x = {
      0.0, -0.0, 1.0, -1.0, inf, -inf, nan,
      simd::detail::kExpOverflow, simd::detail::kExpOverflow + 1e-9,
      simd::detail::kExpUnderflow, simd::detail::kExpUnderflow - 1e-9,
      709.0, -745.0, -708.0, 708.0};
  std::vector<double> y(x.size());
  simd::vexp(x.data(), y.data(), x.size());
  EXPECT_EQ(bits(y[0]), bits(1.0));
  EXPECT_EQ(bits(y[1]), bits(1.0));
  EXPECT_EQ(y[4], inf);
  EXPECT_EQ(bits(y[5]), bits(0.0));
  EXPECT_TRUE(std::isnan(y[6])) << "NaN must pass through";
  EXPECT_EQ(y[8], inf) << "above the overflow threshold";
  EXPECT_EQ(bits(y[10]), bits(0.0)) << "below the underflow threshold";
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(ulp_diff(y[i], std::exp(x[i])), 1u) << "x=" << x[i];
  }
}

TEST(SimdExp, GradualUnderflowMatchesLibmThroughDenormals) {
  // The denormal band: results here are representable only with gradual
  // underflow; a flush-to-zero implementation fails loudly.
  std::vector<double> x, y;
  for (double v = -709.0; v > simd::detail::kExpUnderflow; v -= 0.37) {
    x.push_back(v);
  }
  y.resize(x.size());
  simd::vexp(x.data(), y.data(), x.size());
  bool saw_denormal = false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ref = std::exp(x[i]);
    if (ref > 0.0 && ref < std::numeric_limits<double>::min()) {
      saw_denormal = true;
    }
    EXPECT_LE(ulp_diff(y[i], ref), 1u) << "x=" << x[i];
  }
  EXPECT_TRUE(saw_denormal) << "band did not reach denormal outputs";
}

TEST(SimdExp, DispatchedBackendIsBitIdenticalToPortableLanes) {
  proptest::run_cases(
      "vexp-backend-vs-portable", /*suite_seed=*/101, /*num_cases=*/40,
      [](num::Rng& rng, std::size_t) {
        const auto gen = proptest::sized_vector_of(
            1, 67, proptest::rough_double(700.0));
        const auto x = gen(rng);
        std::vector<double> a(x.size()), b(x.size());
        simd::vexp(x.data(), a.data(), x.size());
        simd::detail::vexp_portable(x.data(), b.data(), x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
          ASSERT_EQ(bits(a[i]), bits(b[i]))
              << "x=" << x[i] << " backend=" << simd::backend_name();
        }
      });
}

TEST(SimdOps, AxpyIsBitIdenticalToTheScalarStatement) {
  proptest::run_cases(
      "axpy", 102, 30, [](num::Rng& rng, std::size_t) {
        const auto gen =
            proptest::sized_vector_of(1, 41, proptest::rough_double(10.0));
        const auto x = gen(rng);
        auto y = proptest::vector_of(x.size(), proptest::rough_double(10.0))(rng);
        const double a = rng.uniform(-3.0, 3.0);
        auto y_ref = y;
        for (std::size_t i = 0; i < x.size(); ++i) y_ref[i] += a * x[i];
        simd::axpy(a, x.data(), y.data(), x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
          ASSERT_EQ(bits(y[i]), bits(y_ref[i])) << "i=" << i;
        }
      });
}

TEST(SimdOps, DotIsDeterministicAndBackendInvariant) {
  proptest::run_cases(
      "dot", 103, 30, [](num::Rng& rng, std::size_t) {
        const auto gen =
            proptest::sized_vector_of(1, 53, proptest::rough_double(4.0));
        const auto a = gen(rng);
        const auto b =
            proptest::vector_of(a.size(), proptest::rough_double(4.0))(rng);
        const double d1 = simd::dot(a.data(), b.data(), a.size());
        const double d2 = simd::dot(a.data(), b.data(), a.size());
        const double dp = simd::detail::dot_portable(a.data(), b.data(),
                                                     a.size());
        ASSERT_EQ(bits(d1), bits(d2)) << "dot must be deterministic";
        ASSERT_EQ(bits(d1), bits(dp)) << "dot must be backend-invariant";
      });
}

TEST(SimdOps, SquaredDistanceMatchesTheScalarSweepBitForBit) {
  proptest::run_cases(
      "sqdist", 104, 30, [](num::Rng& rng, std::size_t) {
        const auto batch = static_cast<std::size_t>(rng.uniform_int(1, 23));
        const auto dim = static_cast<std::size_t>(rng.uniform_int(1, 9));
        const auto features = proptest::vector_of(
            batch * dim, proptest::uniform(-0.5, 1.5))(rng);
        const auto center =
            proptest::vector_of(dim, proptest::uniform(-0.5, 1.5))(rng);
        std::vector<double> d2(batch), ref(batch);
        simd::squared_distance_soa(features.data(), batch, dim, center.data(),
                                   d2.data());
        for (std::size_t c = 0; c < batch; ++c) {
          double s = 0.0;
          for (std::size_t j = 0; j < dim; ++j) {
            const double d = features[j * batch + c] - center[j];
            s += d * d;
          }
          ref[c] = s;
        }
        for (std::size_t c = 0; c < batch; ++c) {
          ASSERT_EQ(bits(d2[c]), bits(ref[c])) << "c=" << c;
        }
      });
}

TEST(SimdOps, ActivationAndSigmoidsMatchPortableLanesOnEveryBatchSize) {
  // Remainder handling: every batch size from 1 through 3 lane blocks,
  // dispatched backend vs the portable lanes, in-place and out-of-place.
  for (std::size_t n = 1; n <= 3 * simd::kLanes + 1; ++n) {
    num::Rng rng(500 + n);
    std::vector<double> d2(n), act_a(n), act_b(n);
    for (auto& v : d2) v = rng.uniform(0.0, 9.0);
    const double w = 0.4, two_w_sq = 2.0 * w * w, step_scale = 0.3 * w;
    simd::mixture_activation(d2.data(), n, w, two_w_sq, step_scale, 0.7,
                             true, act_a.data());
    simd::detail::mixture_activation_portable(d2.data(), n, w, two_w_sq,
                                              step_scale, 0.7, true,
                                              act_b.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(act_a[i]), bits(act_b[i])) << "n=" << n << " i=" << i;
    }
    // In-place: act aliases d2 (the kernels.cpp call shape).
    auto alias = d2;
    simd::mixture_activation(alias.data(), n, w, two_w_sq, step_scale, 0.7,
                             true, alias.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(alias[i]), bits(act_a[i])) << "aliased n=" << n;
    }

    std::vector<double> s_a(n), s_b(n);
    for (std::size_t i = 0; i < n; ++i) s_a[i] = s_b[i] = rng.uniform(-4.0, 4.0);
    simd::score_sigmoid(s_a.data(), n);
    simd::detail::score_sigmoid_portable(s_b.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(s_a[i]), bits(s_b[i])) << "score n=" << n;
    }

    std::vector<double> zl(n), zs(n), t_a(n), t_b(n);
    for (std::size_t i = 0; i < n; ++i) {
      zl[i] = rng.uniform(-5.0, 5.0);
      zs[i] = rng.uniform(-5.0, 5.0);
    }
    simd::trend_sigmoid(zl.data(), zs.data(), t_a.data(), n);
    simd::detail::trend_sigmoid_portable(zl.data(), zs.data(), t_b.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(t_a[i]), bits(t_b[i])) << "trend n=" << n;
    }
  }
}

TEST(SimdOps, PaddedRemainderLanesNeverLeakIntoValidOutputs) {
  // Composition invariance: processing [0, n) in one call must equal
  // processing any prefix/suffix split — lanes are independent and the
  // tail padding never contributes to a valid slot.
  proptest::run_cases(
      "remainder-composition", 105, 25, [](num::Rng& rng, std::size_t) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(2, 37));
        const auto cut = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(n) - 1));
        const auto x = proptest::vector_of(
            n, proptest::rough_double(700.0))(rng);
        std::vector<double> whole(n), split(n);
        simd::vexp(x.data(), whole.data(), n);
        simd::vexp(x.data(), split.data(), cut);
        simd::vexp(x.data() + cut, split.data() + cut, n - cut);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(bits(whole[i]), bits(split[i]))
              << "n=" << n << " cut=" << cut << " i=" << i;
        }
      });
}

TEST(SimdOps, SigmoidLaneMatchesNumSigmoidWithin1Ulp) {
  proptest::run_cases(
      "sigmoid-ulp", 106, 20, [](num::Rng& rng, std::size_t) {
        const auto z = proptest::rough_double(50.0)(rng);
        const double lane = simd::detail::sigmoid_lane(z);
        const double e = std::exp(z >= 0.0 ? -z : z);
        const double ref = z >= 0.0 ? 1.0 / (1.0 + e) : e / (1.0 + e);
        ASSERT_LE(ulp_diff(lane, ref), 2u) << "z=" << z;
      });
}

// === ring 2: the Eq. 1 kernel sweep =========================================

/// Synthetic but well-formed mixture model: everything the sweeps consume,
/// without paying for training. Width-derived constants are built with
/// the exact reference expressions, like rebuild_score_cache().
pred::MixtureModel synthetic_model(num::Rng& rng, std::size_t num_kernels,
                                   std::size_t dim) {
  pred::MixtureModel m;
  m.name = "UBF";
  m.mixture_kernels = true;
  m.num_raw_vars = dim;  // all level features: contexts need 1 sample only
  for (std::size_t i = 0; i < dim; ++i) {
    m.selected.push_back(i);
    const double lo = rng.uniform(-1.0, 0.0);
    m.lo.push_back(lo);
    m.range.push_back(rng.uniform(0.5, 2.0));
  }
  for (std::size_t i = 0; i < num_kernels; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      m.centers.push_back(rng.uniform(-0.2, 1.2));
    }
    const double w = std::max(rng.uniform(0.05, 1.5), 1e-6);
    m.w.push_back(w);
    m.two_w_sq.push_back(2.0 * w * w);
    m.step_scale.push_back(0.3 * w);
    m.mixture.push_back(rng.uniform(0.0, 1.0));
    m.weights.push_back(rng.uniform(-1.5, 1.5));
  }
  m.weights.push_back(rng.uniform(-0.5, 0.5));  // bias
  return m;
}

/// One-sample contexts over `model.dim()` raw variables.
struct Corpus {
  std::vector<mon::SymptomSample> samples;
  std::vector<pred::SymptomContext> contexts;
};

Corpus synthetic_corpus(num::Rng& rng, std::size_t batch, std::size_t dim) {
  Corpus c;
  c.samples.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    mon::SymptomSample s;
    s.time = 600.0 + static_cast<double>(i);
    for (std::size_t j = 0; j < dim; ++j) {
      s.values.push_back(rng.uniform(-1.5, 2.5));
    }
    c.samples.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < batch; ++i) {
    pred::SymptomContext ctx;
    ctx.history = {&c.samples[i], 1};
    c.contexts.push_back(ctx);
  }
  return c;
}

TEST(SimdSweep, MatchesScalarSweepWithinTheUlpEnvelope) {
  proptest::run_cases(
      "sweep-ulp", 201, 25, [](num::Rng& rng, std::size_t) {
        const auto k = static_cast<std::size_t>(rng.uniform_int(1, 8));
        const auto dim = static_cast<std::size_t>(rng.uniform_int(1, 6));
        const auto batch = static_cast<std::size_t>(rng.uniform_int(1, 33));
        const auto model = synthetic_model(rng, k, dim);
        const auto corpus = synthetic_corpus(rng, batch, dim);
        const auto view = model.view();

        pred::BatchScratch scalar_scratch, simd_scratch;
        simd_scratch.kernel = pred::BatchKernel::kSimd;
        std::vector<double> scalar_out(batch), simd_out(batch);
        pred::score_batch_soa(view, corpus.contexts, scalar_out,
                              scalar_scratch);
        pred::score_batch_soa(view, corpus.contexts, simd_out, simd_scratch);
        for (std::size_t i = 0; i < batch; ++i) {
          expect_score_close(simd_out[i], scalar_out[i], "sweep");
          // Threshold decisions must agree at the operating points the
          // fleet uses — this is what keeps kSimd exports byte-identical.
          for (double thr : {0.3, 0.5, 0.6, 0.7}) {
            ASSERT_EQ(simd_out[i] >= thr, scalar_out[i] >= thr)
                << "threshold flip at " << thr << ": simd=" << simd_out[i]
                << " scalar=" << scalar_out[i];
          }
        }
      });
}

TEST(SimdSweep, BatchCompositionNeverChangesTheBits) {
  // Scoring a corpus whole vs in two sub-batches must agree bit for bit —
  // the SoA gather re-packs columns per batch, and the sweep's lanes are
  // independent, so batch geometry is unobservable.
  proptest::run_cases(
      "sweep-composition", 202, 20, [](num::Rng& rng, std::size_t) {
        const auto k = static_cast<std::size_t>(rng.uniform_int(1, 6));
        const auto dim = static_cast<std::size_t>(rng.uniform_int(1, 5));
        const auto batch = static_cast<std::size_t>(rng.uniform_int(2, 21));
        const auto cut = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(batch) - 1));
        const auto model = synthetic_model(rng, k, dim);
        const auto corpus = synthetic_corpus(rng, batch, dim);
        const auto view = model.view();
        std::span<const pred::SymptomContext> all = corpus.contexts;

        pred::BatchScratch scratch;
        scratch.kernel = pred::BatchKernel::kSimd;
        std::vector<double> whole(batch), split(batch);
        pred::score_batch_soa(view, all, whole, scratch);
        pred::score_batch_soa(view, all.subspan(0, cut),
                              std::span<double>(split).subspan(0, cut),
                              scratch);
        pred::score_batch_soa(view, all.subspan(cut),
                              std::span<double>(split).subspan(cut), scratch);
        for (std::size_t i = 0; i < batch; ++i) {
          ASSERT_EQ(bits(whole[i]), bits(split[i]))
              << "batch=" << batch << " cut=" << cut << " i=" << i;
        }
      });
}

TEST(SimdSweep, ScalarSweepIsBitIdenticalToScoreOne) {
  proptest::run_cases(
      "scalar-vs-score-one", 203, 15, [](num::Rng& rng, std::size_t) {
        const auto model = synthetic_model(rng, 5, 4);
        const auto corpus = synthetic_corpus(rng, 9, 4);
        const auto view = model.view();
        pred::BatchScratch scratch;
        std::vector<double> out(corpus.contexts.size());
        pred::score_batch_soa(view, corpus.contexts, out, scratch);
        for (std::size_t i = 0; i < corpus.contexts.size(); ++i) {
          ASSERT_EQ(bits(out[i]),
                    bits(pred::score_one(view, corpus.contexts[i])))
              << "i=" << i;
        }
      });
}

// === ring 3: full-fleet replays =============================================

constexpr double kDuration = 0.3 * 86400.0;

pred::WindowGeometry geometry() { return {600.0, 300.0, 300.0}; }

/// Ensemble trained once per process — UBF with greedy-forward selection
/// kept cheap (this suite's focus is the serving path, not the wrapper
/// search), plus the trend + eventset arena exercisers.
struct Ensemble {
  std::shared_ptr<const pred::SymptomPredictor> ubf;
  std::shared_ptr<const pred::SymptomPredictor> trend;
  std::shared_ptr<const pred::EventPredictor> eventset;
};

const Ensemble& ensemble() {
  static const Ensemble shared = [] {
    telecom::SimConfig cfg;
    cfg.seed = 5;
    cfg.duration = 4.0 * 86400.0;
    telecom::ScpSimulator sim(cfg);
    sim.run();
    const auto trace = sim.take_trace();
    const auto g = geometry();

    pred::UbfConfig ubf_cfg;
    ubf_cfg.windows = g;
    ubf_cfg.num_kernels = 4;
    ubf_cfg.selection = pred::VariableSelection::kForward;
    ubf_cfg.shape_evaluations = 80;
    ubf_cfg.max_train_windows = 900;
    auto ubf = std::make_shared<pred::UbfPredictor>(ubf_cfg);
    ubf->train(trace);

    auto trend = std::make_shared<pred::TrendPredictor>(g);
    trend->train(trace);

    auto eventset = std::make_shared<pred::EventsetPredictor>();
    eventset->train(trace.failure_sequences(g.data_window, g.lead_time),
                    trace.nonfailure_sequences(g.data_window, g.lead_time,
                                               g.prediction_window, 300.0));

    Ensemble out;
    out.ubf = std::move(ubf);
    out.trend = std::move(trend);
    out.eventset = std::move(eventset);
    return out;
  }();
  return shared;
}

struct Artifacts {
  std::string prometheus;
  std::string trace_json;
  std::string json_line;
  std::uint64_t dropped = 0;
  std::size_t warnings = 0;
};

struct RunSpec {
  std::size_t nodes = 6;
  std::size_t threads = 1;
  runtime::FleetPath path = runtime::FleetPath::kOptimized;
  runtime::FleetScheduler scheduler = runtime::FleetScheduler::kLockstep;
  std::size_t num_shards = 1;
  std::size_t epoch_ticks = 1;
  bool hostile = false;
};

inj::FaultPlan hostile_plan() {
  inj::FaultPlan plan;
  plan.seed = 77;
  plan.nodes[1].crash_at = 10000.0;
  plan.default_node.drop_sample_p = 0.03;
  plan.default_node.corrupt_sample_p = 0.02;
  plan.predictors[0].nan_p = 0.05;
  plan.predictors[0].throw_p = 0.02;
  plan.actions[0].fail_p = 0.3;
  return plan;
}

Artifacts run_fleet(const RunSpec& spec) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = spec.threads;
  ocfg.trace_capacity = 1 << 16;
  obs::Observability hub(ocfg);

  telecom::SimConfig sim;
  sim.seed = 21;
  sim.duration = kDuration;
  sim.leak_mtbf = 21600.0;

  runtime::FleetConfig cfg;
  cfg.mea.windows = geometry();
  cfg.mea.warning_threshold = 0.6;
  cfg.mea.action_cooldown = 600.0;
  cfg.num_threads = spec.threads;
  cfg.path = spec.path;
  cfg.scheduler = spec.scheduler;
  cfg.num_shards = spec.num_shards;
  cfg.epoch_ticks = spec.epoch_ticks;
  cfg.obs = &hub;

  const auto& e = ensemble();
  auto nodes = runtime::make_scp_fleet(sim, spec.nodes);
  inj::FaultInjector injector(hostile_plan());
  injector.set_observability(&hub);

  auto make_cleanup = [] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  };

  runtime::FleetController fleet(
      spec.hostile ? injector.wrap_fleet(std::move(nodes)) : std::move(nodes),
      cfg);
  if (spec.hostile) {
    fleet.add_symptom_predictor(injector.wrap_symptom_predictor(0, e.ubf));
    fleet.add_symptom_predictor(injector.wrap_symptom_predictor(1, e.trend));
    fleet.add_event_predictor(injector.wrap_event_predictor(0, e.eventset));
    fleet.add_action(injector.wrap_action_factory(0, make_cleanup));
  } else {
    fleet.add_symptom_predictor(e.ubf);
    fleet.add_symptom_predictor(e.trend);
    fleet.add_event_predictor(e.eventset);
    fleet.add_action(make_cleanup);
  }
  fleet.run();

  Artifacts out;
  out.prometheus = obs::prometheus_text(hub.metrics(), /*include_wall=*/false);
  out.trace_json = obs::chrome_trace_json(hub.trace(), /*include_wall=*/false);
  out.json_line = obs::metrics_json_line(hub.metrics(), /*include_wall=*/false);
  out.dropped = hub.trace().dropped();
  out.warnings = fleet.telemetry().warnings_raised;
  return out;
}

void expect_identical(const Artifacts& a, const Artifacts& b) {
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.json_line, b.json_line);
}

/// kSimd vs kOptimized across thread counts: every sim-time export byte
/// for byte. ULP-level score differences are allowed by the policy but
/// must never surface in a threshold decision on this corpus.
void run_thread_matrix(bool hostile) {
  RunSpec base;
  base.hostile = hostile;
  const auto canonical = run_fleet(base);
  ASSERT_EQ(canonical.dropped, 0u);
  EXPECT_GT(canonical.warnings, 0u) << "scenario too tame to pin decisions";

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    SCOPED_TRACE(std::string(hostile ? "hostile" : "clean") +
                 " simd threads=" + std::to_string(threads));
    RunSpec spec = base;
    spec.threads = threads;
    spec.path = runtime::FleetPath::kSimd;
    const auto run = run_fleet(spec);
    ASSERT_EQ(run.dropped, 0u);
    expect_identical(canonical, run);
  }
}

TEST(SimdFleet, CleanExportsByteIdenticalAcrossThreadCounts) {
  run_thread_matrix(/*hostile=*/false);
}

TEST(SimdFleet, HostileExportsByteIdenticalAcrossThreadCounts) {
  run_thread_matrix(/*hostile=*/true);
}

/// The sharded event-driven replays: per shard count, kSimd must match
/// kOptimized exactly (results legitimately depend on the shard count —
/// shards batch and breaker-bank independently — so each count is its
/// own reference).
TEST(SimdFleet, ShardedExportsByteIdenticalPerShardCount) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{4},
                             std::size_t{16}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RunSpec reference;
    reference.nodes = 16;
    reference.scheduler = runtime::FleetScheduler::kEventDriven;
    reference.num_shards = shards;
    reference.epoch_ticks = 4;
    const auto canonical = run_fleet(reference);
    ASSERT_EQ(canonical.dropped, 0u);

    RunSpec spec = reference;
    spec.path = runtime::FleetPath::kSimd;
    spec.threads = 2;
    const auto run = run_fleet(spec);
    ASSERT_EQ(run.dropped, 0u);
    expect_identical(canonical, run);
  }
}

}  // namespace
}  // namespace pfm
