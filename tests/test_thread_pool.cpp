// The fleet runtime's fixed pool: every index runs exactly once, errors
// surface at the call site, and a 1-thread pool degenerates to an inline
// loop.

#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace pfm::runtime {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const std::size_t n = 257;  // not a multiple of any pool size
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, CallerThreadParticipates) {
  // A pool of 1 spawns no workers at all: the closure runs on this thread.
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  pool.parallel_for(seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i % 7 == 3) {
                                     throw std::runtime_error("task failed");
                                   }
                                 }),
               std::runtime_error);

  // The pool stays usable after a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(32, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, CapturesEveryFailurePerTask) {
  // The captured variant maps each exception back to the index that threw
  // it, and the remaining indices all still run — the property the fleet
  // loop needs to quarantine exactly the failing nodes.
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const std::size_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    std::vector<std::exception_ptr> errors;
    pool.parallel_for_captured(
        n,
        [&](std::size_t i) {
          ++hits[i];
          if (i % 7 == 3) {
            throw std::runtime_error("task " + std::to_string(i));
          }
        },
        errors);
    ASSERT_EQ(errors.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
      if (i % 7 == 3) {
        ASSERT_TRUE(errors[i]) << "index " << i;
        try {
          std::rethrow_exception(errors[i]);
        } catch (const std::runtime_error& e) {
          EXPECT_EQ(std::string(e.what()), "task " + std::to_string(i));
        }
      } else {
        EXPECT_FALSE(errors[i]) << "index " << i;
      }
    }
  }
}

TEST(ThreadPool, CapturedBufferResetsBetweenBatches) {
  ThreadPool pool(2);
  std::vector<std::exception_ptr> errors;
  pool.parallel_for_captured(
      4, [](std::size_t) { throw std::runtime_error("boom"); }, errors);
  for (const auto& e : errors) EXPECT_TRUE(e);
  pool.parallel_for_captured(4, [](std::size_t) {}, errors);
  for (const auto& e : errors) EXPECT_FALSE(e);
  pool.parallel_for_captured(0, [](std::size_t) {}, errors);
  EXPECT_TRUE(errors.empty());
}

TEST(ThreadPool, HandlesEmptyAndSingleBatches) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](std::size_t i) {
      sum += static_cast<long>(i);
    });
  }
  EXPECT_EQ(sum.load(), 50L * 45L);
}

TEST(ThreadPool, ZeroThreadsIsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.parallel_for(5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 5);
}

}  // namespace
}  // namespace pfm::runtime
