#include "monitoring/dataset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pfm::mon {
namespace {

MonitoringDataset small_dataset() {
  MonitoringDataset ds(SymptomSchema({"a", "b"}));
  for (int i = 0; i <= 100; ++i) {
    ds.add_sample({i * 10.0, {static_cast<double>(i), 1.0}});
  }
  ds.add_event({50.0, 201, 0, 2});
  ds.add_event({250.0, 202, 0, 3});
  ds.add_event({420.0, 204, 1, 4});
  ds.add_failure(500.0);
  ds.add_failure(900.0);
  return ds;
}

TEST(Dataset, SchemaMismatchRejected) {
  MonitoringDataset ds(SymptomSchema({"a", "b"}));
  EXPECT_THROW(ds.add_sample({0.0, {1.0}}), std::invalid_argument);
  EXPECT_NO_THROW(ds.add_sample({0.0, {1.0, 2.0}}));
}

TEST(Dataset, MonotonicTimestampsEnforcedPerStream) {
  MonitoringDataset ds(SymptomSchema({"a"}));
  ds.add_sample({10.0, {1.0}});
  EXPECT_THROW(ds.add_sample({5.0, {1.0}}), std::invalid_argument);
  ds.add_event({10.0, 1, 0, 1});
  EXPECT_THROW(ds.add_event({5.0, 1, 0, 1}), std::invalid_argument);
  ds.add_failure(10.0);
  EXPECT_THROW(ds.add_failure(5.0), std::invalid_argument);
  // Streams are independent: an earlier event after a later sample is fine.
  EXPECT_NO_THROW(ds.add_event({12.0, 2, 0, 1}));
}

TEST(Dataset, EndTimeSpansAllStreams) {
  const auto ds = small_dataset();
  EXPECT_DOUBLE_EQ(ds.end_time(), 1000.0);  // last sample at t=1000
}

TEST(Dataset, FailureWithinUsesHalfOpenInterval) {
  const auto ds = small_dataset();
  EXPECT_TRUE(ds.failure_within(400.0, 600.0));
  EXPECT_TRUE(ds.failure_within(500.0, 501.0));
  EXPECT_FALSE(ds.failure_within(400.0, 500.0));  // [400, 500) excludes 500
  EXPECT_FALSE(ds.failure_within(501.0, 899.0));
}

TEST(Dataset, SplitPartitionsEverything) {
  const auto ds = small_dataset();
  const auto [before, after] = ds.split_at(500.0);
  EXPECT_EQ(before.samples().size() + after.samples().size(),
            ds.samples().size());
  EXPECT_EQ(before.events().size(), 3u);  // events at 50, 250, 420
  EXPECT_EQ(after.events().size(), 0u);
  EXPECT_EQ(before.failures().size(), 0u);  // failure at exactly 500 -> after
  EXPECT_EQ(after.failures().size(), 2u);
  for (const auto& s : before.samples()) EXPECT_LT(s.time, 500.0);
  for (const auto& s : after.samples()) EXPECT_GE(s.time, 500.0);
}

TEST(Dataset, LabeledWindowsMarkPreFailureSamples) {
  const auto ds = small_dataset();
  // Lead 100 s, prediction window 100 s: a sample at t is positive when a
  // failure falls into [t+100, t+200).
  const auto windows = ds.labeled_windows(100.0, 100.0);
  ASSERT_FALSE(windows.empty());
  for (const auto& w : windows) {
    // Failure at 500 is inside [t+100, t+200) exactly when t in (300, 400].
    const bool expect_positive =
        (w.time > 300.0 && w.time <= 400.0) ||
        (w.time > 700.0 && w.time <= 800.0);
    EXPECT_EQ(w.failure_follows, expect_positive) << "at t=" << w.time;
    EXPECT_EQ(w.features.size(), 2u);
  }
  // Samples whose prediction window exceeds the trace end are dropped.
  for (const auto& w : windows) EXPECT_LE(w.time + 200.0, ds.end_time());
}

TEST(Dataset, LabeledWindowsValidatesParameters) {
  const auto ds = small_dataset();
  EXPECT_THROW(ds.labeled_windows(-1.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ds.labeled_windows(0.0, 0.0), std::invalid_argument);
}

TEST(Dataset, FailureSequencesUseDataWindowAndLeadTime) {
  const auto ds = small_dataset();
  // Failure at 500: window [500-60-240, 500-60) = [200, 440).
  const auto seqs = ds.failure_sequences(240.0, 60.0);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_TRUE(seqs[0].preceded_failure);
  EXPECT_DOUBLE_EQ(seqs[0].end_time, 440.0);
  ASSERT_EQ(seqs[0].events.size(), 2u);  // events at 250 and 420
  EXPECT_EQ(seqs[0].events[0].event_id, 202);
  EXPECT_EQ(seqs[0].events[1].event_id, 204);
  // Second failure window [600, 840): no events.
  EXPECT_TRUE(seqs[1].events.empty());
}

TEST(Dataset, FailureSequencesSkipTruncatedWindows) {
  MonitoringDataset ds{SymptomSchema{}};
  ds.add_failure(100.0);  // window would start before t=0
  const auto seqs = ds.failure_sequences(240.0, 60.0);
  EXPECT_TRUE(seqs.empty());
}

TEST(Dataset, NonFailureSequencesAvoidFailureNeighborhoods) {
  const auto ds = small_dataset();
  const auto seqs = ds.nonfailure_sequences(240.0, 60.0, 100.0, 50.0);
  ASSERT_FALSE(seqs.empty());
  for (const auto& seq : seqs) {
    EXPECT_FALSE(seq.preceded_failure);
    // No failure may fall between window start and the end of the
    // prediction period.
    EXPECT_FALSE(
        ds.failure_within(seq.end_time - 240.0, seq.end_time + 60.0 + 100.0))
        << "sequence ending at " << seq.end_time;
  }
}

TEST(Dataset, EventsInIsHalfOpen) {
  const auto ds = small_dataset();
  const auto in = ds.events_in(50.0, 250.0);  // (50, 250]
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].event_id, 202);
}

}  // namespace
}  // namespace pfm::mon
