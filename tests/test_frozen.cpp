// Frozen compiled-predictor artifact suite (DESIGN.md §13): the
// train -> freeze -> serve round trip must be bit-identical on the score
// grid, corrupt artifacts must fail with typed errors (never UB — this
// suite is in the sanitizer label set), and a frozen fleet must export
// byte-identically to the live fleet it was frozen from.

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "numerics/rng.hpp"
#include "numerics/simd.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "prediction/frozen.hpp"
#include "prediction/kernels.hpp"
#include "prediction/ubf.hpp"
#include "property.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"
#include "telecom/simulator.hpp"

namespace pfm {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// Process-unique artifact paths: ctest runs every gtest case as its own
// process, possibly in parallel, and they all share TempDir() — a bare
// fixed filename would let two corruption cases race on the same bytes.
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/pfm" + std::to_string(::getpid()) + "_" +
         name;
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A small synthetic model (no training cost) for artifact-level tests.
pred::MixtureModel synthetic_model(std::uint64_t seed = 11,
                                   std::size_t num_kernels = 5,
                                   std::size_t dim = 3) {
  num::Rng rng(seed);
  pred::MixtureModel m;
  m.name = "UBF";
  m.mixture_kernels = true;
  m.num_raw_vars = dim;
  for (std::size_t i = 0; i < dim; ++i) {
    m.selected.push_back(i);
    m.lo.push_back(rng.uniform(-1.0, 0.0));
    m.range.push_back(rng.uniform(0.5, 2.0));
  }
  for (std::size_t i = 0; i < num_kernels; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      m.centers.push_back(rng.uniform(-0.2, 1.2));
    }
    const double w = rng.uniform(0.05, 1.5);
    m.w.push_back(w);
    m.two_w_sq.push_back(2.0 * w * w);
    m.step_scale.push_back(0.3 * w);
    m.mixture.push_back(rng.uniform(0.0, 1.0));
    m.weights.push_back(rng.uniform(-1.5, 1.5));
  }
  m.weights.push_back(0.25);
  return m;
}

struct Corpus {
  std::vector<mon::SymptomSample> samples;
  std::vector<pred::SymptomContext> contexts;
};

Corpus score_grid(std::uint64_t seed, std::size_t batch, std::size_t dim) {
  num::Rng rng(seed);
  Corpus c;
  c.samples.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    mon::SymptomSample s;
    s.time = 600.0 + static_cast<double>(i);
    for (std::size_t j = 0; j < dim; ++j) {
      s.values.push_back(rng.uniform(-1.5, 2.5));
    }
    c.samples.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < batch; ++i) {
    pred::SymptomContext ctx;
    ctx.history = {&c.samples[i], 1};
    c.contexts.push_back(ctx);
  }
  return c;
}

// --- round trip --------------------------------------------------------------

TEST(Frozen, RoundTripPreservesEveryModelBit) {
  const auto model = synthetic_model();
  const auto path = temp_path("roundtrip.pfmfrozen");
  ASSERT_EQ(pred::freeze(model, path), pred::FrozenError::kOk);

  auto loaded = pred::FrozenPredictor::load(path);
  ASSERT_EQ(loaded.error, pred::FrozenError::kOk)
      << pred::to_string(loaded.error);
  ASSERT_NE(loaded.predictor, nullptr);
  const auto& p = *loaded.predictor;

  EXPECT_EQ(p.name(), "UBF");
  EXPECT_EQ(p.header().num_kernels, model.num_kernels());
  EXPECT_EQ(p.header().dim, model.dim());
  EXPECT_EQ(p.header().lane_width, num::simd::kLanes);
  EXPECT_EQ(bits(p.windows().data_window), bits(model.windows.data_window));
  EXPECT_EQ(bits(p.windows().lead_time), bits(model.windows.lead_time));
  EXPECT_EQ(bits(p.windows().prediction_window),
            bits(model.windows.prediction_window));
}

TEST(Frozen, FrozenScoresAreBitIdenticalToTheLiveEngineOnAGrid) {
  const auto model = synthetic_model();
  const auto path = temp_path("grid.pfmfrozen");
  ASSERT_EQ(pred::freeze(model, path), pred::FrozenError::kOk);
  auto loaded = pred::FrozenPredictor::load(path);
  ASSERT_EQ(loaded.error, pred::FrozenError::kOk);

  proptest::run_cases(
      "frozen-vs-live", 301, 20, [&](num::Rng& rng, std::size_t i) {
        const auto batch = static_cast<std::size_t>(rng.uniform_int(1, 33));
        const auto corpus =
            score_grid(proptest::case_seed(900, i), batch, model.dim());
        const auto view = model.view();

        std::vector<double> live(batch), frozen(batch);
        pred::BatchScratch live_scratch, frozen_scratch;
        pred::score_batch_soa(view, corpus.contexts, live, live_scratch);
        loaded.predictor->score_batch(corpus.contexts, frozen,
                                      frozen_scratch);
        for (std::size_t c = 0; c < batch; ++c) {
          ASSERT_EQ(bits(live[c]), bits(frozen[c])) << "context " << c;
          ASSERT_EQ(bits(frozen[c]),
                    bits(loaded.predictor->score(corpus.contexts[c])))
              << "score() vs batch, context " << c;
        }
        // The kSimd sweep serves from the same mapped arrays: agreement
        // with the live kSimd sweep is bit-exact too.
        pred::BatchScratch simd_live, simd_frozen;
        simd_live.kernel = pred::BatchKernel::kSimd;
        simd_frozen.kernel = pred::BatchKernel::kSimd;
        std::vector<double> a(batch), b(batch);
        pred::score_batch_soa(view, corpus.contexts, a, simd_live);
        loaded.predictor->score_batch(corpus.contexts, b, simd_frozen);
        for (std::size_t c = 0; c < batch; ++c) {
          ASSERT_EQ(bits(a[c]), bits(b[c])) << "simd context " << c;
        }
      });
}

TEST(Frozen, ServeOnlyContractAndErrorPaths) {
  const auto model = synthetic_model();
  const auto path = temp_path("serveonly.pfmfrozen");
  ASSERT_EQ(pred::freeze(model, path), pred::FrozenError::kOk);
  auto loaded = pred::FrozenPredictor::load(path);
  ASSERT_EQ(loaded.error, pred::FrozenError::kOk);

  mon::MonitoringDataset empty(mon::SymptomSchema({"x"}));
  EXPECT_THROW(loaded.predictor->train(empty), std::logic_error);

  const auto corpus = score_grid(7, 4, model.dim());
  std::vector<double> out(3);  // wrong size
  EXPECT_THROW(loaded.predictor->score_batch(corpus.contexts, out),
               std::invalid_argument);
  pred::BatchScratch scratch;
  EXPECT_THROW(loaded.predictor->score_batch(corpus.contexts, out, scratch),
               std::invalid_argument);

  pred::SymptomContext empty_ctx;
  EXPECT_THROW(loaded.predictor->score(empty_ctx), std::invalid_argument);
}

// --- corrupt artifacts -------------------------------------------------------

class FrozenCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = synthetic_model();
    path_ = temp_path("corrupt.pfmfrozen");
    ASSERT_EQ(pred::freeze(model_, path_), pred::FrozenError::kOk);
    artifact_ = read_file(path_);
    ASSERT_GE(artifact_.size(), sizeof(pred::FrozenHeader));
  }

  /// Writes a mutated copy and returns the typed load error.
  pred::FrozenError load_mutated(const std::vector<unsigned char>& data) {
    const auto p = temp_path("mutated.pfmfrozen");
    write_file(p, data);
    return pred::FrozenPredictor::load(p).error;
  }

  pred::MixtureModel model_;
  std::string path_;
  std::vector<unsigned char> artifact_;
};

TEST_F(FrozenCorruption, MissingFileIsAnIoError) {
  EXPECT_EQ(pred::FrozenPredictor::load(temp_path("does-not-exist")).error,
            pred::FrozenError::kIo);
}

TEST_F(FrozenCorruption, TruncationAtEveryBoundaryIsTyped) {
  // Sweep truncation points: inside the header, at the header boundary,
  // inside the payload, one byte short of complete. All typed, none UB.
  const std::vector<std::size_t> cuts = {
      0, 1, 7, sizeof(pred::FrozenHeader) - 1, sizeof(pred::FrozenHeader),
      sizeof(pred::FrozenHeader) + 1, artifact_.size() / 2,
      artifact_.size() - 1};
  for (std::size_t cut : cuts) {
    auto data = artifact_;
    data.resize(cut);
    EXPECT_EQ(load_mutated(data), pred::FrozenError::kTruncated)
        << "cut=" << cut;
  }
}

TEST_F(FrozenCorruption, BadMagicIsTyped) {
  auto data = artifact_;
  data[0] ^= 0xff;
  EXPECT_EQ(load_mutated(data), pred::FrozenError::kBadMagic);
}

TEST_F(FrozenCorruption, UnsupportedVersionIsTyped) {
  auto data = artifact_;
  const std::uint32_t version = 2;
  std::memcpy(data.data() + 8, &version, sizeof(version));
  EXPECT_EQ(load_mutated(data), pred::FrozenError::kBadVersion);
}

TEST_F(FrozenCorruption, WrongLaneWidthIsTyped) {
  // lane_width sits after magic (8) + version (4) + flags (4).
  auto data = artifact_;
  const std::uint32_t lanes = num::simd::kLanes * 2;
  std::memcpy(data.data() + 16, &lanes, sizeof(lanes));
  EXPECT_EQ(load_mutated(data), pred::FrozenError::kLaneMismatch);
}

TEST_F(FrozenCorruption, PayloadBitFlipFailsTheChecksum) {
  for (std::size_t offset :
       {sizeof(pred::FrozenHeader), sizeof(pred::FrozenHeader) + 17,
        artifact_.size() - 2}) {
    auto data = artifact_;
    data[offset] ^= 0x01;
    EXPECT_EQ(load_mutated(data), pred::FrozenError::kChecksumMismatch)
        << "offset=" << offset;
  }
}

TEST_F(FrozenCorruption, InconsistentCountsAreMalformed) {
  // num_kernels sits after magic(8)+u32x4(16)+name(16) = offset 40.
  auto data = artifact_;
  const std::uint64_t zero = 0;
  std::memcpy(data.data() + 40, &zero, sizeof(zero));
  EXPECT_EQ(load_mutated(data), pred::FrozenError::kMalformed);

  data = artifact_;
  const std::uint64_t huge = 1ull << 32;
  std::memcpy(data.data() + 40, &huge, sizeof(huge));
  EXPECT_EQ(load_mutated(data), pred::FrozenError::kMalformed);
}

TEST_F(FrozenCorruption, GarbageBytesNeverCrash) {
  // Pure fuzz ring: random mutations of a valid artifact must always
  // produce a typed error or a clean load — never UB (ASan/UBSan run
  // this test via the sanitize workflow's Frozen filter).
  proptest::run_cases(
      "frozen-fuzz", 302, 60, [&](num::Rng& rng, std::size_t) {
        auto data = artifact_;
        const auto mutations =
            static_cast<std::size_t>(rng.uniform_int(1, 16));
        for (std::size_t m = 0; m < mutations; ++m) {
          const auto pos = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(data.size()) - 1));
          data[pos] = static_cast<unsigned char>(rng.uniform_int(0, 255));
        }
        if (rng.bernoulli(0.3)) {
          data.resize(static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(data.size()))));
        }
        const auto result = pred::FrozenPredictor::load(
            [&] {
              const auto p = temp_path("fuzz.pfmfrozen");
              write_file(p, data);
              return p;
            }());
        if (result.error == pred::FrozenError::kOk) {
          ASSERT_NE(result.predictor, nullptr);
        } else {
          ASSERT_EQ(result.predictor, nullptr);
          EXPECT_NE(std::string(pred::to_string(result.error)), "unknown error");
        }
      });
}

TEST(Frozen, FreezeRejectsMalformedModels) {
  auto model = synthetic_model();
  model.weights.pop_back();  // missing bias
  EXPECT_EQ(pred::freeze(model, temp_path("bad.pfmfrozen")),
            pred::FrozenError::kMalformed);
  auto empty = pred::MixtureModel{};
  EXPECT_EQ(pred::freeze(empty, temp_path("bad2.pfmfrozen")),
            pred::FrozenError::kMalformed);
  EXPECT_EQ(pred::freeze(synthetic_model(), "/nonexistent-dir/x.pfmfrozen"),
            pred::FrozenError::kIo);
}

// --- train -> freeze -> serve through the fleet ------------------------------

constexpr double kDuration = 0.25 * 86400.0;

pred::WindowGeometry geometry() { return {600.0, 300.0, 300.0}; }

std::shared_ptr<const pred::UbfPredictor> trained_ubf() {
  static const std::shared_ptr<const pred::UbfPredictor> shared = [] {
    telecom::SimConfig cfg;
    cfg.seed = 5;
    cfg.duration = 3.0 * 86400.0;
    telecom::ScpSimulator sim(cfg);
    sim.run();
    pred::UbfConfig ubf_cfg;
    ubf_cfg.windows = geometry();
    ubf_cfg.num_kernels = 4;
    ubf_cfg.selection = pred::VariableSelection::kForward;
    ubf_cfg.shape_evaluations = 80;
    ubf_cfg.max_train_windows = 900;
    auto ubf = std::make_shared<pred::UbfPredictor>(ubf_cfg);
    ubf->train(sim.take_trace());
    return ubf;
  }();
  return shared;
}

struct Artifacts {
  std::string prometheus;
  std::string json_line;
};

Artifacts run_fleet(std::shared_ptr<const pred::SymptomPredictor> predictor,
                    runtime::FleetPath path) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 2;
  obs::Observability hub(ocfg);

  telecom::SimConfig sim;
  sim.seed = 21;
  sim.duration = kDuration;
  sim.leak_mtbf = 21600.0;

  runtime::FleetConfig cfg;
  cfg.mea.windows = geometry();
  cfg.mea.warning_threshold = 0.6;
  cfg.mea.action_cooldown = 600.0;
  cfg.num_threads = 2;
  cfg.path = path;
  cfg.obs = &hub;

  runtime::FleetController fleet(runtime::make_scp_fleet(sim, 4), cfg);
  fleet.add_symptom_predictor(std::move(predictor));
  fleet.add_action(
      [] { return std::make_unique<act::StateCleanupAction>(0.70); });
  fleet.run();

  Artifacts out;
  out.prometheus = obs::prometheus_text(hub.metrics(), /*include_wall=*/false);
  out.json_line = obs::metrics_json_line(hub.metrics(), /*include_wall=*/false);
  return out;
}

TEST(Frozen, TrainFreezeServeFleetExportsAreByteIdentical) {
  const auto ubf = trained_ubf();

  // export_model() must reproduce the live score cache verbatim.
  const auto model = ubf->export_model();
  EXPECT_EQ(model.name, ubf->name());
  EXPECT_EQ(model.selected, ubf->selected_variables());

  // Freeze through the controller helper, then serve from the artifact.
  const auto dir = ::testing::TempDir();
  telecom::SimConfig sim;
  sim.seed = 21;
  sim.duration = kDuration;
  runtime::FleetConfig cfg;
  cfg.mea.windows = geometry();
  runtime::FleetController trainer(runtime::make_scp_fleet(sim, 2), cfg);
  trainer.add_symptom_predictor(ubf);
  const auto paths = trainer.freeze_symptom_predictors(dir);
  ASSERT_EQ(paths.size(), 1u);

  auto loaded = pred::FrozenPredictor::load(paths[0]);
  ASSERT_EQ(loaded.error, pred::FrozenError::kOk)
      << pred::to_string(loaded.error);
  std::shared_ptr<const pred::SymptomPredictor> frozen =
      std::move(loaded.predictor);

  for (auto path : {runtime::FleetPath::kOptimized,
                    runtime::FleetPath::kSimd}) {
    SCOPED_TRACE(path == runtime::FleetPath::kSimd ? "simd" : "optimized");
    const auto live = run_fleet(ubf, path);
    const auto served = run_fleet(frozen, path);
    EXPECT_EQ(live.prometheus, served.prometheus);
    EXPECT_EQ(live.json_line, served.json_line);
  }
}

}  // namespace
}  // namespace pfm
