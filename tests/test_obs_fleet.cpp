// Observability of the fleet runtime: a seeded run must produce a golden
// Prometheus exposition, sim-time exports must be bit-identical across
// thread counts, stage spans must nest node steps, telemetry() must be a
// view over the registry, and injected-fault counters must match the
// injector's own cause-side stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "injection/injector.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace pfm {
namespace {

// --- a hand-computable fleet for the golden scrape --------------------------

/// Trivial deterministic ManagedSystem: steps in lockstep, records one
/// constant-pressure sample per step, never fails and never needs an
/// action — so every counter of a run is computable by hand and the
/// Prometheus exposition can be golden-tested byte for byte.
class StubSystem final : public core::ManagedSystem {
 public:
  StubSystem(std::string name, double horizon)
      : name_(std::move(name)),
        horizon_(horizon),
        trace_(mon::SymptomSchema({"pressure"})) {}

  std::string name() const override { return name_; }
  double now() const override { return now_; }
  double horizon() const override { return horizon_; }
  bool finished() const override { return now_ >= horizon_; }
  void step_to(double t) override {
    t = std::min(t, horizon_);
    if (t <= now_) return;
    now_ = t;
    trace_.add_sample({now_, {0.5}});
  }

  const mon::MonitoringDataset& trace() const override { return trace_; }

  std::size_t num_units() const override { return 1; }
  core::UnitHealth unit_health(std::size_t unit) const override {
    if (unit >= 1) throw std::out_of_range("StubSystem: unit");
    return {};
  }
  double offered_load() const override { return 100.0; }
  double unit_capacity() const override { return 200.0; }
  bool service_down() const override { return false; }

  void restart_unit(std::size_t) override {}
  void shed_load(double, double) override {}
  void checkpoint() override {}
  void prepare_for_failure(double) override {}

  core::SystemStats system_stats() const override {
    core::SystemStats stats;
    stats.simulated = now_;
    return stats;
  }

 private:
  std::string name_;
  double now_ = 0.0;
  double horizon_;
  mon::MonitoringDataset trace_;
};

/// Oracle predictor: newest value of symptom 0 (see test_fleet).
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t pressure_index)
      : index_(pressure_index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

/// Two stub nodes, one oracle predictor, ten 60 s rounds to a 600 s
/// horizon — pressure 0.5 never crosses the 0.72 threshold, so the run
/// is pure Monitor/Evaluate bookkeeping.
void run_stub_fleet(obs::Observability& hub, std::size_t num_threads) {
  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.num_threads = num_threads;
  cfg.obs = &hub;
  std::vector<std::unique_ptr<core::ManagedSystem>> nodes;
  nodes.push_back(std::make_unique<StubSystem>("stub-0", 600.0));
  nodes.push_back(std::make_unique<StubSystem>("stub-1", 600.0));
  runtime::FleetController fleet(std::move(nodes), cfg);
  fleet.add_symptom_predictor(std::make_shared<PressurePredictor>(0));
  fleet.run();
}

TEST(ObsFleet, GoldenPrometheusExpositionOfASeededRun) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 1;
  ocfg.trace_capacity = 1024;
  obs::Observability hub(ocfg);
  run_stub_fleet(hub, 1);

  // 10 rounds of 2 nodes: 20 node-evaluations scored by one predictor,
  // no warnings, no faults, no actions. Wall-clock latency histograms
  // are excluded — the remainder is a pure function of the scenario.
  const char* expected =
      "# TYPE pfm_action_faults_total counter\n"
      "pfm_action_faults_total 0\n"
      "# TYPE pfm_action_retries_total counter\n"
      "pfm_action_retries_total 0\n"
      "# TYPE pfm_actions_abandoned_total counter\n"
      "pfm_actions_abandoned_total 0\n"
      "# TYPE pfm_actions_executed_total counter\n"
      "pfm_actions_executed_total 0\n"
      "# TYPE pfm_fleet_breaker_trips_total counter\n"
      "pfm_fleet_breaker_trips_total 0\n"
      "# TYPE pfm_fleet_epochs_total counter\n"
      "pfm_fleet_epochs_total 10\n"
      "# TYPE pfm_fleet_node_faults_total counter\n"
      "pfm_fleet_node_faults_total 0\n"
      "# TYPE pfm_fleet_node_steps_total counter\n"
      "pfm_fleet_node_steps_total 20\n"
      "# TYPE pfm_fleet_predictor_faults_total counter\n"
      "pfm_fleet_predictor_faults_total 0\n"
      "# TYPE pfm_fleet_quarantines_total counter\n"
      "pfm_fleet_quarantines_total 0\n"
      "# TYPE pfm_fleet_rounds_total counter\n"
      "pfm_fleet_rounds_total 10\n"
      "# TYPE pfm_fleet_scores_sanitized_total counter\n"
      "pfm_fleet_scores_sanitized_total 0\n"
      "# TYPE pfm_fleet_scores_total counter\n"
      "pfm_fleet_scores_total 20\n"
      "# TYPE pfm_fleet_stall_detections_total counter\n"
      "pfm_fleet_stall_detections_total 0\n"
      "# TYPE pfm_fleet_warnings_total counter\n"
      "pfm_fleet_warnings_total 0\n"
      "# TYPE pfm_fleet_nodes gauge\n"
      "pfm_fleet_nodes 2\n"
      "# TYPE pfm_fleet_open_breakers gauge\n"
      "pfm_fleet_open_breakers 0\n"
      "# TYPE pfm_fleet_quarantined_nodes gauge\n"
      "pfm_fleet_quarantined_nodes 0\n"
      "# TYPE pfm_fleet_batch_size histogram\n"
      "pfm_fleet_batch_size_bucket{le=\"1\"} 0\n"
      "pfm_fleet_batch_size_bucket{le=\"2\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"4\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"8\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"16\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"32\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"64\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"128\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"256\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"512\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"1024\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"2048\"} 10\n"
      "pfm_fleet_batch_size_bucket{le=\"+Inf\"} 10\n"
      "pfm_fleet_batch_size_sum 20\n"
      "pfm_fleet_batch_size_count 10\n";
  EXPECT_EQ(obs::prometheus_text(hub.metrics(), /*include_wall=*/false),
            expected);

  // With wall instruments included, the latency histograms appear too.
  const std::string full = obs::prometheus_text(hub.metrics(), true);
  EXPECT_NE(full.find("pfm_stage_latency_seconds_count{stage=\"monitor\"}"),
            std::string::npos);
}

TEST(ObsFleet, StubRunRecordsTheExpectedSpanStructure) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 1;
  ocfg.trace_capacity = 1024;
  obs::Observability hub(ocfg);
  run_stub_fleet(hub, 1);

  ASSERT_EQ(hub.trace().dropped(), 0u);
  const auto spans = hub.trace().sorted_spans();

  std::size_t monitor = 0, evaluate = 0, act = 0, steps = 0, scores = 0;
  for (const auto& s : spans) {
    switch (s.kind) {
      case obs::SpanKind::kMonitorStage: ++monitor; break;
      case obs::SpanKind::kEvaluateStage: ++evaluate; break;
      case obs::SpanKind::kActStage: ++act; break;
      case obs::SpanKind::kNodeStep: ++steps; break;
      case obs::SpanKind::kScoreBatch:
        ++scores;
        EXPECT_EQ(s.arg, 2) << "one score per stub node";
        break;
      default:
        ADD_FAILURE() << "unexpected span kind "
                      << obs::to_string(s.kind);
    }
  }
  EXPECT_EQ(monitor, 10u);
  EXPECT_EQ(evaluate, 10u);
  EXPECT_EQ(act, 10u);
  EXPECT_EQ(steps, 20u);
  EXPECT_EQ(scores, 10u);
  EXPECT_EQ(spans.size(), 60u);

  // Every node step nests inside some Monitor-stage span, and each
  // round's Evaluate stage begins no earlier than its Monitor stage ends.
  for (const auto& s : spans) {
    if (s.kind == obs::SpanKind::kNodeStep) {
      bool nested = false;
      for (const auto& m : spans) {
        if (m.kind == obs::SpanKind::kMonitorStage &&
            m.sim_begin <= s.sim_begin && s.sim_end <= m.sim_end) {
          nested = true;
          break;
        }
      }
      EXPECT_TRUE(nested) << "node step at " << s.sim_begin;
    }
    if (s.kind == obs::SpanKind::kMonitorStage) {
      for (const auto& e : spans) {
        if (e.kind == obs::SpanKind::kEvaluateStage && e.sub == s.sub) {
          EXPECT_GE(e.sim_begin, s.sim_end) << "round " << s.sub;
        }
      }
    }
  }
}

TEST(ObsFleet, RejectsAHubWithTooFewShards) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 1;  // controller only — cannot cover 4 loop threads
  obs::Observability hub(ocfg);
  runtime::FleetConfig cfg;
  cfg.num_threads = 4;
  cfg.obs = &hub;
  std::vector<std::unique_ptr<core::ManagedSystem>> nodes;
  nodes.push_back(std::make_unique<StubSystem>("stub-0", 600.0));
  EXPECT_THROW(runtime::FleetController(std::move(nodes), cfg),
               std::invalid_argument);
}

// --- bit-identity over the real simulator fleet ------------------------------

telecom::SimConfig scp_config() {
  telecom::SimConfig cfg;
  cfg.seed = 21;
  cfg.duration = 0.5 * 86400.0;
  cfg.leak_mtbf = 21600.0;  // enough pressure to trigger warnings
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  return cfg;
}

struct ObservedRun {
  std::string prometheus;
  std::string trace_json;
  std::string json_line;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::size_t warnings = 0;
};

ObservedRun run_observed_scp_fleet(std::size_t num_threads) {
  const std::size_t kNodes = 8;
  obs::ObservabilityConfig ocfg;
  ocfg.shards = num_threads;
  ocfg.trace_capacity = 1 << 15;
  obs::Observability hub(ocfg);

  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.mea.action_cooldown = 600.0;
  cfg.num_threads = num_threads;
  cfg.obs = &hub;
  auto nodes = runtime::make_scp_fleet(scp_config(), kNodes);
  const auto idx = *nodes.front()->trace().schema().index("mem_pressure_max");
  runtime::FleetController fleet(std::move(nodes), cfg);
  fleet.add_symptom_predictor(std::make_shared<PressurePredictor>(idx));
  fleet.add_action(
      [] { return std::make_unique<act::StateCleanupAction>(0.70); });
  fleet.add_action(
      [] { return std::make_unique<act::PreparedRepairAction>(1800.0); });
  fleet.run();

  ObservedRun out;
  out.prometheus = obs::prometheus_text(hub.metrics(), false);
  out.trace_json = obs::chrome_trace_json(hub.trace(), false);
  out.json_line = obs::metrics_json_line(hub.metrics(), false);
  out.recorded = hub.trace().recorded();
  out.dropped = hub.trace().dropped();
  out.warnings = fleet.telemetry().warnings_raised;
  return out;
}

// The observability counterpart of the fleet's headline guarantee: with
// wall-clock fields excluded, scrape and trace are pure functions of
// (seed, plan) — byte-identical at any thread count.
TEST(ObsFleet, SimTimeExportsAreBitIdenticalAcrossThreadCounts) {
  const auto t1 = run_observed_scp_fleet(1);
  const auto t2 = run_observed_scp_fleet(2);
  const auto t8 = run_observed_scp_fleet(8);

  // The comparison is only meaningful while nothing was dropped and the
  // scenario actually exercised warnings and actions.
  ASSERT_EQ(t1.dropped, 0u);
  ASSERT_EQ(t2.dropped, 0u);
  ASSERT_EQ(t8.dropped, 0u);
  EXPECT_GT(t1.recorded, 0u);
  EXPECT_GT(t1.warnings, 0u) << "scenario too tame to exercise Act";

  EXPECT_EQ(t1.prometheus, t2.prometheus);
  EXPECT_EQ(t1.prometheus, t8.prometheus);
  EXPECT_EQ(t1.json_line, t2.json_line);
  EXPECT_EQ(t1.json_line, t8.json_line);
  EXPECT_EQ(t1.trace_json, t2.trace_json);
  EXPECT_EQ(t1.trace_json, t8.trace_json);
  EXPECT_EQ(t1.recorded, t2.recorded);
  EXPECT_EQ(t1.recorded, t8.recorded);
}

TEST(ObsFleet, TelemetryIsAViewOverTheRegistry) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 2;
  obs::Observability hub(ocfg);  // metrics only: tracing off

  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.mea.action_cooldown = 600.0;
  cfg.num_threads = 2;
  cfg.obs = &hub;
  auto nodes = runtime::make_scp_fleet(scp_config(), 3);
  const auto idx = *nodes.front()->trace().schema().index("mem_pressure_max");
  runtime::FleetController fleet(std::move(nodes), cfg);
  fleet.add_symptom_predictor(std::make_shared<PressurePredictor>(idx));
  fleet.add_action(
      [] { return std::make_unique<act::StateCleanupAction>(0.70); });
  fleet.run_until(7200.0);

  const auto t = fleet.telemetry();
  auto& metrics = hub.metrics();
  EXPECT_EQ(t.rounds, metrics.counter("pfm_fleet_rounds_total").value());
  EXPECT_EQ(t.epochs, metrics.counter("pfm_fleet_epochs_total").value());
  EXPECT_EQ(t.node_steps,
            metrics.counter("pfm_fleet_node_steps_total").value());
  EXPECT_EQ(t.scores_computed,
            metrics.counter("pfm_fleet_scores_total").value());
  EXPECT_EQ(t.warnings_raised,
            metrics.counter("pfm_fleet_warnings_total").value());
  EXPECT_EQ(t.resilience.node_faults,
            metrics.counter("pfm_fleet_node_faults_total").value());
  EXPECT_EQ(t.resilience.breaker_trips,
            metrics.counter("pfm_fleet_breaker_trips_total").value());
  EXPECT_DOUBLE_EQ(static_cast<double>(t.nodes),
                   metrics.gauge("pfm_fleet_nodes").value());
  EXPECT_GT(t.rounds, 0u);

  // The controller's own accessor hands back the same hub.
  EXPECT_EQ(&fleet.observability(), &hub);
}

TEST(ObsFleet, PrivateFallbackHubStillFeedsTelemetry) {
  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.num_threads = 2;  // no cfg.obs: controller owns a metrics-only hub
  auto nodes = runtime::make_scp_fleet(scp_config(), 2);
  const auto idx = *nodes.front()->trace().schema().index("mem_pressure_max");
  runtime::FleetController fleet(std::move(nodes), cfg);
  fleet.add_symptom_predictor(std::make_shared<PressurePredictor>(idx));
  fleet.run_until(3600.0);

  const auto t = fleet.telemetry();
  EXPECT_GT(t.rounds, 0u);
  auto& hub = fleet.observability();
  EXPECT_EQ(hub.trace().capacity_per_shard(), 0u) << "tracing must be off";
  EXPECT_EQ(t.rounds,
            hub.metrics().counter("pfm_fleet_rounds_total").value());
}

// --- cause side: injected faults land in the same registry ------------------

TEST(ObsFleet, InjectedFaultCountersMatchInjectorStats) {
  const std::size_t kNodes = 4;
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 2;
  ocfg.trace_capacity = 1 << 15;
  obs::Observability hub(ocfg);

  inj::FaultPlan plan;
  plan.seed = 1234;
  plan.nodes[1].crash_at = 10800.0;
  plan.default_node.drop_sample_p = 0.05;
  plan.predictors[0].nan_p = 0.05;
  plan.actions[0].fail_p = 0.5;
  inj::FaultInjector injector(plan);
  injector.set_observability(&hub);  // before wrapping anything

  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.mea.action_cooldown = 600.0;
  cfg.mea.retry.max_attempts = 3;
  cfg.mea.retry.backoff_initial = 120.0;
  cfg.num_threads = 2;
  cfg.obs = &hub;

  auto nodes = runtime::make_scp_fleet(scp_config(), kNodes);
  const auto idx = *nodes.front()->trace().schema().index("mem_pressure_max");
  runtime::FleetController fleet(injector.wrap_fleet(std::move(nodes)), cfg);
  fleet.add_symptom_predictor(injector.wrap_symptom_predictor(
      0, std::make_shared<PressurePredictor>(idx)));
  fleet.add_action(injector.wrap_action_factory(0, [] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  }));
  fleet.add_action(injector.wrap_action_factory(1, [] {
    return std::make_unique<act::PreparedRepairAction>(1800.0);
  }));
  fleet.run();

  const auto injected = injector.stats();
  EXPECT_GT(injected.total(), 0u);
  EXPECT_EQ(injected.node_crashes, 1u);

  auto& metrics = hub.metrics();
  const auto kind_counter = [&](const char* kind) {
    return metrics
        .counter(std::string("pfm_injected_faults_total{kind=\"") + kind +
                 "\"}")
        .value();
  };
  EXPECT_EQ(kind_counter("node_crash"), injected.node_crashes);
  EXPECT_EQ(kind_counter("node_hang"), injected.node_hangs);
  EXPECT_EQ(kind_counter("sample_drop"), injected.samples_dropped);
  EXPECT_EQ(kind_counter("sample_corrupt"), injected.samples_corrupted);
  EXPECT_EQ(kind_counter("predictor_throw"), injected.predictor_throws);
  EXPECT_EQ(kind_counter("predictor_nan"), injected.predictor_nans);
  EXPECT_EQ(kind_counter("action_failure"), injected.action_failures);

  // The sim-timed fault families also leave spans: the node crash at
  // 10800 s must appear as a kInjectedFault instant on node 1's track.
  bool crash_span = false;
  for (const auto& s : hub.trace().sorted_spans()) {
    if (s.kind == obs::SpanKind::kInjectedFault &&
        s.track == obs::node_track(1) &&
        s.arg == static_cast<std::int64_t>(inj::FaultCode::kNodeCrash)) {
      crash_span = true;
      break;
    }
  }
  EXPECT_TRUE(crash_span);

  // Effect side lives in the same scrape: the crash was quarantined.
  EXPECT_GE(metrics.counter("pfm_fleet_quarantines_total").value(), 1u);
}

}  // namespace
}  // namespace pfm
