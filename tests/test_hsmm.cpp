#include "prediction/hsmm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/rng.hpp"

namespace pfm::pred {
namespace {

// --- Hsmm core ---------------------------------------------------------------

HsmmSequence make_seq(std::initializer_list<std::pair<std::size_t, double>> obs) {
  HsmmSequence s;
  for (const auto& [sym, gap] : obs) s.push_back({sym, gap});
  return s;
}

TEST(HsmmCore, ConfigValidation) {
  Hsmm::Config c;
  c.num_states = 0;
  EXPECT_THROW(Hsmm{c}, std::invalid_argument);
  c = Hsmm::Config{};
  c.num_symbols = 0;
  EXPECT_THROW(Hsmm{c}, std::invalid_argument);
}

TEST(HsmmCore, TrainRejectsBadInput) {
  Hsmm::Config c;
  c.num_symbols = 3;
  Hsmm m(c);
  EXPECT_THROW(m.train({}), std::invalid_argument);
  EXPECT_THROW(m.train({HsmmSequence{}}), std::invalid_argument);
  // Symbol out of range.
  EXPECT_THROW(m.train({make_seq({{7, 0.0}})}), std::invalid_argument);
  // Negative gap.
  EXPECT_THROW(m.train({make_seq({{0, 0.0}, {1, -2.0}})}),
               std::invalid_argument);
}

TEST(HsmmCore, LikelihoodBeforeTrainThrows) {
  Hsmm::Config c;
  c.num_symbols = 2;
  Hsmm m(c);
  EXPECT_THROW(m.log_likelihood(make_seq({{0, 0.0}})), std::logic_error);
}

TEST(HsmmCore, EmptySequenceHasZeroLogLikelihood) {
  Hsmm::Config c;
  c.num_symbols = 2;
  c.num_states = 2;
  Hsmm m(c);
  m.train({make_seq({{0, 0.0}, {1, 10.0}})});
  EXPECT_DOUBLE_EQ(m.log_likelihood({}), 0.0);
}

TEST(HsmmCore, LearnsSymbolDistribution) {
  // Sequences over symbol 0 only vs a model asked about symbol 1.
  Hsmm::Config c;
  c.num_symbols = 2;
  c.num_states = 2;
  Hsmm m(c);
  std::vector<HsmmSequence> train;
  for (int i = 0; i < 20; ++i) {
    train.push_back(make_seq({{0, 0.0}, {0, 5.0}, {0, 5.0}}));
  }
  m.train(train);
  const double ll_seen = m.log_likelihood(make_seq({{0, 0.0}, {0, 5.0}}));
  const double ll_unseen = m.log_likelihood(make_seq({{1, 0.0}, {1, 5.0}}));
  EXPECT_GT(ll_seen, ll_unseen);
}

TEST(HsmmCore, LearnsGapTiming) {
  // Same symbols, different characteristic gaps.
  Hsmm::Config c;
  c.num_symbols = 1;
  c.num_states = 2;
  Hsmm fast_model(c), slow_model(c);
  std::vector<HsmmSequence> fast_seqs, slow_seqs;
  num::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    HsmmSequence f{{0, 0.0}}, s{{0, 0.0}};
    for (int j = 0; j < 5; ++j) {
      f.push_back({0, rng.exponential(1.0 / 5.0)});    // ~5 s gaps
      s.push_back({0, rng.exponential(1.0 / 500.0)});  // ~500 s gaps
    }
    fast_seqs.push_back(std::move(f));
    slow_seqs.push_back(std::move(s));
  }
  fast_model.train(fast_seqs);
  slow_model.train(slow_seqs);
  const auto probe_fast = make_seq({{0, 0.0}, {0, 4.0}, {0, 6.0}});
  const auto probe_slow = make_seq({{0, 0.0}, {0, 450.0}, {0, 520.0}});
  // The semi-Markov part: timing alone separates the models.
  EXPECT_GT(fast_model.log_likelihood(probe_fast),
            slow_model.log_likelihood(probe_fast));
  EXPECT_GT(slow_model.log_likelihood(probe_slow),
            fast_model.log_likelihood(probe_slow));
}

TEST(HsmmCore, MeanGapIsPositive) {
  Hsmm::Config c;
  c.num_symbols = 1;
  c.num_states = 3;
  Hsmm m(c);
  m.train({make_seq({{0, 0.0}, {0, 10.0}, {0, 12.0}})});
  for (std::size_t s = 0; s < 3; ++s) EXPECT_GT(m.mean_gap(s), 0.0);
}

// --- HsmmPredictor --------------------------------------------------------------

mon::ErrorSequence error_seq(std::initializer_list<std::pair<double, int>> ev,
                             double end_time) {
  mon::ErrorSequence s;
  for (const auto& [t, id] : ev) s.events.push_back({t, id, 0, 2});
  s.end_time = end_time;
  return s;
}

/// Failure pattern: 201 then 202 about 100 s apart. Non-failure: random
/// noise ids with short gaps, plus occasional isolated 201.
struct SequenceFactory {
  num::Rng rng{17};

  mon::ErrorSequence failure(double at) {
    const double t1 = at + rng.uniform(0.0, 50.0);
    const double t2 = t1 + 80.0 + rng.uniform(0.0, 40.0);
    return error_seq({{t1, 201}, {t2, 202}}, at + 600.0);
  }
  mon::ErrorSequence benign(double at) {
    mon::ErrorSequence s;
    const auto n = rng.uniform_int(0, 3);
    double t = at;
    for (int i = 0; i < n; ++i) {
      t += rng.exponential(1.0 / 30.0);
      const int id = rng.bernoulli(0.15) ? 201 : 400 + static_cast<int>(rng.uniform_int(0, 5));
      s.events.push_back({t, id, 0, 1});
    }
    s.end_time = at + 600.0;
    return s;
  }
};

TEST(HsmmPredictor, TrainValidation) {
  HsmmPredictorConfig cfg;
  HsmmPredictor h(cfg);
  SequenceFactory f;
  std::vector<mon::ErrorSequence> fail{f.failure(0.0)};
  EXPECT_THROW(h.train(fail, {}), std::invalid_argument);
  EXPECT_THROW(h.train({}, fail), std::invalid_argument);
  EXPECT_THROW(h.score(fail[0]), std::logic_error);  // not trained
}

TEST(HsmmPredictor, SeparatesPatternFromNoise) {
  HsmmPredictorConfig cfg;
  cfg.num_states = 4;
  cfg.em_iterations = 15;
  HsmmPredictor h(cfg);
  SequenceFactory f;
  std::vector<mon::ErrorSequence> fail, ok;
  for (int i = 0; i < 40; ++i) {
    fail.push_back(f.failure(i * 1000.0));
    ok.push_back(f.benign(i * 1000.0));
  }
  h.train(fail, ok);
  EXPECT_GT(h.vocabulary_size(), 2u);

  // Score fresh sequences of each kind.
  double fail_score = 0.0, ok_score = 0.0;
  const int probes = 20;
  for (int i = 0; i < probes; ++i) {
    fail_score += h.score(f.failure(1e6 + i * 1000.0));
    ok_score += h.score(f.benign(1e6 + i * 1000.0));
  }
  EXPECT_GT(fail_score / probes, ok_score / probes + 0.1);
}

TEST(HsmmPredictor, TimingMattersWhenDurationsModeled) {
  // The failure signature is 201->202 ~100 s apart; a benign lookalike has
  // the same ids back-to-back. Only the duration-aware model separates.
  HsmmPredictorConfig cfg;
  cfg.num_states = 4;
  cfg.em_iterations = 20;
  HsmmPredictor hsmm(cfg);
  SequenceFactory f;
  std::vector<mon::ErrorSequence> fail, ok;
  num::Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    fail.push_back(f.failure(i * 1000.0));
    // Benign windows contain the same id pair, tightly spaced.
    const double t1 = i * 1000.0 + rng.uniform(0.0, 50.0);
    ok.push_back(error_seq({{t1, 201}, {t1 + 4.0, 202}}, i * 1000.0 + 600.0));
  }
  hsmm.train(fail, ok);
  const auto true_pattern = f.failure(1e7);
  const double t1 = 1e7 + 10.0;
  const auto lookalike = error_seq({{t1, 201}, {t1 + 4.0, 202}}, 1e7 + 600.0);
  EXPECT_GT(hsmm.score(true_pattern), hsmm.score(lookalike));
}

TEST(HsmmPredictor, EmptyWindowScoresLowWhenFailuresHaveEvents) {
  HsmmPredictorConfig cfg;
  cfg.num_states = 3;
  cfg.em_iterations = 10;
  HsmmPredictor h(cfg);
  SequenceFactory f;
  std::vector<mon::ErrorSequence> fail, ok;
  for (int i = 0; i < 30; ++i) {
    fail.push_back(f.failure(i * 1000.0));
    mon::ErrorSequence empty;
    empty.end_time = i * 1000.0 + 600.0;
    ok.push_back(empty);
  }
  h.train(fail, ok);
  mon::ErrorSequence probe_empty;
  probe_empty.end_time = 1e6;
  EXPECT_LT(h.score(probe_empty), h.score(f.failure(1e6)));
}

TEST(HsmmPredictor, HmmAblationNameAndOperation) {
  HsmmPredictorConfig cfg;
  cfg.model_durations = false;
  HsmmPredictor hmm(cfg);
  EXPECT_EQ(hmm.name(), "HMM");
  HsmmPredictorConfig cfg2;
  HsmmPredictor hsmm(cfg2);
  EXPECT_EQ(hsmm.name(), "HSMM");
}

TEST(HsmmPredictor, UnknownEventIdsHandledAtScoreTime) {
  HsmmPredictorConfig cfg;
  cfg.num_states = 3;
  cfg.em_iterations = 10;
  HsmmPredictor h(cfg);
  SequenceFactory f;
  std::vector<mon::ErrorSequence> fail, ok;
  for (int i = 0; i < 20; ++i) {
    fail.push_back(f.failure(i * 1000.0));
    ok.push_back(f.benign(i * 1000.0));
  }
  h.train(fail, ok);
  // Ids never seen during training must not crash scoring.
  const auto unseen = error_seq({{10.0, 9999}, {20.0, 8888}}, 600.0);
  const double s = h.score(unseen);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

}  // namespace
}  // namespace pfm::pred
