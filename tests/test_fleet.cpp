// FleetController: the parallel MEA loop must be bit-deterministic in the
// thread count, degenerate to the single-system controller for a 1-node
// fleet, and aggregate honest telemetry.

#include "runtime/fleet.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "core/mea.hpp"
#include "runtime/scp_system.hpp"

namespace pfm {
namespace {

/// Oracle-style predictor (see test_managed_system): keeps the loop's
/// trajectory independent of any trained model.
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t pressure_index)
      : index_(pressure_index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

telecom::SimConfig fleet_config() {
  telecom::SimConfig cfg;
  cfg.seed = 21;
  cfg.duration = 0.5 * 86400.0;
  cfg.leak_mtbf = 21600.0;  // enough pressure to trigger warnings
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  return cfg;
}

std::unique_ptr<runtime::FleetController> make_fleet(
    std::size_t nodes, std::size_t num_threads) {
  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.mea.action_cooldown = 600.0;
  cfg.num_threads = num_threads;
  auto fleet_nodes = runtime::make_scp_fleet(fleet_config(), nodes);
  const auto idx =
      *fleet_nodes.front()->trace().schema().index("mem_pressure_max");
  auto fleet = std::make_unique<runtime::FleetController>(
      std::move(fleet_nodes), cfg);
  fleet->add_symptom_predictor(std::make_shared<PressurePredictor>(idx));
  fleet->add_action([] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  });
  fleet->add_action([] {
    return std::make_unique<act::PreparedRepairAction>(1800.0);
  });
  return fleet;
}

void expect_same_stats(const core::SystemStats& a, const core::SystemStats& b,
                       std::size_t node) {
  EXPECT_EQ(a.total_requests, b.total_requests) << "node " << node;
  EXPECT_EQ(a.violations, b.violations) << "node " << node;
  EXPECT_EQ(a.failures, b.failures) << "node " << node;
  EXPECT_DOUBLE_EQ(a.downtime, b.downtime) << "node " << node;
  EXPECT_EQ(a.shed_requests, b.shed_requests) << "node " << node;
  EXPECT_EQ(a.preventive_restarts, b.preventive_restarts) << "node " << node;
  EXPECT_EQ(a.prepared_repairs, b.prepared_repairs) << "node " << node;
  EXPECT_EQ(a.unprepared_repairs, b.unprepared_repairs) << "node " << node;
  EXPECT_DOUBLE_EQ(a.simulated, b.simulated) << "node " << node;
}

// The headline guarantee: per-node results are a pure function of the
// seeds — the thread count only changes wall time.
TEST(Fleet, EightNodesAreBitIdenticalAcrossThreadCounts) {
  const std::size_t kNodes = 8;
  auto serial = make_fleet(kNodes, 1);
  serial->run();
  auto parallel = make_fleet(kNodes, 4);
  parallel->run();

  std::size_t total_warnings = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    expect_same_stats(serial->node(i).system_stats(),
                      parallel->node(i).system_stats(), i);
    EXPECT_EQ(serial->node_mea_stats(i).warnings,
              parallel->node_mea_stats(i).warnings)
        << "node " << i;
    EXPECT_EQ(serial->node_mea_stats(i).actions_by_kind,
              parallel->node_mea_stats(i).actions_by_kind)
        << "node " << i;
    total_warnings += serial->node_mea_stats(i).warnings;
  }
  EXPECT_GT(total_warnings, 0u) << "scenario too tame to exercise Act";

  const auto ts = serial->telemetry();
  const auto tp = parallel->telemetry();
  EXPECT_EQ(ts.rounds, tp.rounds);
  EXPECT_EQ(ts.scores_computed, tp.scores_computed);
  EXPECT_EQ(ts.warnings_raised, tp.warnings_raised);
  EXPECT_DOUBLE_EQ(ts.system.availability(), tp.system.availability());
}

// A 1-node fleet is the standalone MEA controller: node 0 keeps the base
// seed, and the lockstep round structure reduces to the single loop.
TEST(Fleet, SingleNodeFleetMatchesStandaloneController) {
  auto fleet = make_fleet(1, 2);
  fleet->run();

  const auto cfg = fleet_config();
  telecom::ScpSimulator sim(cfg);
  runtime::ScpManagedSystem system(sim);
  core::MeaConfig mc;
  mc.warning_threshold = 0.72;
  mc.action_cooldown = 600.0;
  core::MeaController mea(system, mc);
  const auto idx = *sim.trace().schema().index("mem_pressure_max");
  mea.add_symptom_predictor(std::make_shared<PressurePredictor>(idx));
  mea.add_action(std::make_unique<act::StateCleanupAction>(0.70));
  mea.add_action(std::make_unique<act::PreparedRepairAction>(1800.0));
  mea.run();

  expect_same_stats(fleet->node(0).system_stats(), system.system_stats(), 0);
  EXPECT_EQ(fleet->node_mea_stats(0).evaluations, mea.stats().evaluations);
  EXPECT_EQ(fleet->node_mea_stats(0).warnings, mea.stats().warnings);
  EXPECT_EQ(fleet->node_mea_stats(0).actions_by_kind,
            mea.stats().actions_by_kind);
}

TEST(Fleet, TelemetryAggregatesTheFleet) {
  const std::size_t kNodes = 3;
  auto fleet = make_fleet(kNodes, 2);
  fleet->run_until(3600.0);
  const auto t = fleet->telemetry();

  EXPECT_EQ(t.nodes, kNodes);
  EXPECT_GT(t.rounds, 0u);
  EXPECT_GT(t.scores_computed, 0u);
  // One evaluation per node per round, one predictor for the whole fleet.
  EXPECT_EQ(t.mea.evaluations, t.rounds * kNodes);
  EXPECT_LE(t.scores_computed, t.rounds * kNodes);
  EXPECT_DOUBLE_EQ(t.system.simulated, 3600.0 * kNodes);
  EXPECT_GE(t.latency.monitor_seconds, 0.0);
  EXPECT_GE(t.latency.evaluate_seconds, 0.0);
  EXPECT_GE(t.latency.act_seconds, 0.0);

  std::size_t warnings = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    warnings += fleet->node_mea_stats(i).warnings;
  }
  EXPECT_EQ(t.warnings_raised, warnings);
  EXPECT_EQ(t.mea.warnings, warnings);
}

TEST(Fleet, DerivedSeedsAreStableAndDistinct) {
  // Node 0 keeps the base seed — the bridge to the standalone simulator.
  EXPECT_EQ(runtime::derive_node_seed(21, 0), 21u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 64; ++i) {
    seeds.insert(runtime::derive_node_seed(21, i));
  }
  EXPECT_EQ(seeds.size(), 64u);

  const auto nodes = runtime::make_scp_fleet(fleet_config(), 3);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0]->name(), "scp-21");
  EXPECT_NE(nodes[1]->name(), nodes[0]->name());
  EXPECT_NE(nodes[2]->name(), nodes[1]->name());
}

TEST(Fleet, RejectsInvalidConfigurations) {
  runtime::FleetConfig cfg;
  EXPECT_THROW(
      runtime::FleetController(
          std::vector<std::unique_ptr<core::ManagedSystem>>{}, cfg),
      std::invalid_argument);

  std::vector<std::unique_ptr<core::ManagedSystem>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(runtime::FleetController(std::move(with_null), cfg),
               std::invalid_argument);

  runtime::FleetConfig bad_threshold;
  bad_threshold.mea.warning_threshold = 1.5;
  EXPECT_THROW(runtime::FleetController(
                   runtime::make_scp_fleet(fleet_config(), 1), bad_threshold),
               std::invalid_argument);

  auto fleet = make_fleet(1, 1);
  EXPECT_THROW(fleet->add_symptom_predictor(nullptr), std::invalid_argument);
  EXPECT_THROW(fleet->add_event_predictor(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace pfm
