// pfm-lint's own contract: a clean tree passes, each rule catches its
// seeded fixture violation at the exact file:line, suppression comments
// are honored, and — the actual gate — the repository's real src/ and
// tests/ trees are finding-free. The CLI's exit-code protocol (0 clean,
// 1 findings, 2 usage error) is pinned through the installed binary.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using pfm::lint::Finding;
using pfm::lint::Options;

std::filesystem::path repo_root() {
  return std::filesystem::path(PFM_SOURCE_DIR);
}

std::filesystem::path fixture(const std::string& name) {
  return repo_root() / "tests" / "lint_fixtures" / name;
}

std::vector<Finding> run_on(const std::filesystem::path& root,
                            std::vector<std::string> rules = {}) {
  Options options;
  options.root = root;
  options.rules = std::move(rules);
  return pfm::lint::run(options);
}

// "file:line check" triples, compact to assert against.
std::vector<std::string> keys(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const auto& f : findings) {
    out.push_back(f.file + ":" + std::to_string(f.line) + " " + f.check);
  }
  return out;
}

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(PFM_LINT_BINARY) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(PfmLint, KnownRulesAreTheThreeInvariantFamilies) {
  const auto& rules = pfm::lint::known_rules();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0], "layering");
  EXPECT_EQ(rules[1], "determinism");
  EXPECT_EQ(rules[2], "concurrency");
}

TEST(PfmLint, CleanFixtureTreeHasNoFindings) {
  EXPECT_TRUE(run_on(fixture("clean")).empty());
}

TEST(PfmLint, LayeringRuleFlagsForbiddenIncludesWithFileAndLine) {
  const auto findings = run_on(fixture("layering"), {"layering"});
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{
                "src/core/bad_include.cpp:1 forbidden-include",
                "src/core/bad_include.cpp:2 forbidden-include",
                "src/membership/bad_dep.hpp:2 forbidden-include",
                "src/numerics/bad_leaf.hpp:3 forbidden-include",
                "src/obs/bad_telecom.hpp:2 forbidden-include",
                "src/runtime/schedule.cpp:1 forbidden-include",
                "src/runtime/shard.cpp:1 forbidden-include",
                "src/widgets/unregistered.hpp:1 unknown-module",
            }));
  for (const auto& f : findings) EXPECT_EQ(f.rule, "layering");
}

TEST(PfmLint, DeterminismRuleFlagsEntropyAddressKeysAndUnorderedIteration) {
  const auto findings = run_on(fixture("determinism"), {"determinism"});
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{
                "src/prediction/bad_rng.cpp:11 banned-token",
                "src/prediction/bad_rng.cpp:12 banned-token",
                "src/prediction/bad_rng.cpp:13 banned-token",
                "src/prediction/bad_rng.cpp:14 banned-token",
                "src/prediction/bad_rng.cpp:22 address-keyed",
                "src/prediction/bad_rng.cpp:25 unordered-iteration",
            }));
  for (const auto& f : findings) EXPECT_EQ(f.rule, "determinism");
}

TEST(PfmLint, ConcurrencyRuleFlagsMutableStaticCatchAllVolatileRawThread) {
  const auto findings = run_on(fixture("concurrency"), {"concurrency"});
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{
                "src/runtime/bad_shared.cpp:7 mutable-static",
                "src/runtime/bad_shared.cpp:14 catch-all",
                "src/runtime/bad_shared.cpp:19 volatile",
                "src/runtime/bad_shared.cpp:23 raw-thread",
                "src/runtime/bad_shared.cpp:24 raw-thread",
                "src/runtime/bad_shared.cpp:25 raw-thread",
            }));
  for (const auto& f : findings) EXPECT_EQ(f.rule, "concurrency");
}

TEST(PfmLint, SuppressionCommentsAreHonored) {
  // Same violation shapes as the bad fixtures — inline allow, allow on
  // the preceding line, and allow-file — all silenced.
  EXPECT_TRUE(run_on(fixture("suppressed")).empty());
}

TEST(PfmLint, RulesCanBeRunSelectively) {
  // The determinism fixture is clean under the other two rules.
  EXPECT_TRUE(run_on(fixture("determinism"), {"layering"}).empty());
  EXPECT_TRUE(run_on(fixture("determinism"), {"concurrency"}).empty());
}

TEST(PfmLint, UnknownRuleAndBadRootThrow) {
  EXPECT_THROW(run_on(repo_root(), {"nonsense"}), std::runtime_error);
  EXPECT_THROW(run_on(repo_root() / "does-not-exist"), std::runtime_error);
}

TEST(PfmLint, FormatIsFileLineRuleCheckMessage) {
  const Finding f{"determinism", "banned-token", "src/a/b.cpp", 7, "no"};
  EXPECT_EQ(pfm::lint::format(f),
            "src/a/b.cpp:7: [determinism/banned-token] no");
}

// The gate itself: the real tree must be finding-free under every rule.
// (The fixtures above are excluded by Options::exclude_dirs.)
TEST(PfmLint, RepositoryTreeIsCleanUnderAllRules) {
  const auto findings = run_on(repo_root());
  for (const auto& f : findings) ADD_FAILURE() << pfm::lint::format(f);
  EXPECT_TRUE(findings.empty());
}

TEST(PfmLint, CliExitCodesDistinguishCleanFindingsAndUsage) {
  EXPECT_EQ(run_cli("--root " + repo_root().string()), 0);
  EXPECT_EQ(run_cli("--root " + fixture("layering").string()), 1);
  EXPECT_EQ(run_cli("--root " + fixture("layering").string() +
                    " --rule concurrency"),
            0);
  EXPECT_EQ(run_cli("--list-rules"), 0);
  EXPECT_EQ(run_cli("--rule nonsense --root " + repo_root().string()), 2);
  EXPECT_EQ(run_cli("--bogus-flag"), 2);
}

}  // namespace
