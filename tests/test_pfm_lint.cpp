// pfm-analyze's own contract: a clean tree passes, each rule family —
// lexical and graph-aware — catches its seeded fixture violation at the
// exact file:line, suppression comments are honored, and — the actual
// gate — the repository's real src/ and tests/ trees are finding-free.
// The CLI's exit-code protocol (0 clean, 1 findings, 2 usage error or
// busted runtime budget) is pinned through the installed binary.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "sarif.hpp"

namespace {

using pfm::lint::Finding;
using pfm::lint::Options;

std::filesystem::path repo_root() {
  return std::filesystem::path(PFM_SOURCE_DIR);
}

std::filesystem::path fixture(const std::string& name) {
  return repo_root() / "tests" / "lint_fixtures" / name;
}

std::vector<Finding> run_on(const std::filesystem::path& root,
                            std::vector<std::string> rules = {}) {
  Options options;
  options.root = root;
  options.rules = std::move(rules);
  return pfm::lint::run(options);
}

// "file:line check" triples, compact to assert against.
std::vector<std::string> keys(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const auto& f : findings) {
    out.push_back(f.file + ":" + std::to_string(f.line) + " " + f.check);
  }
  return out;
}

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(PFM_LINT_BINARY) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(PfmLint, KnownRulesAreTheSixFamilies) {
  const auto& rules = pfm::lint::known_rules();
  ASSERT_EQ(rules.size(), 6u);
  EXPECT_EQ(rules[0], "layering");
  EXPECT_EQ(rules[1], "determinism");
  EXPECT_EQ(rules[2], "concurrency");
  EXPECT_EQ(rules[3], "hotpath");
  EXPECT_EQ(rules[4], "walltaint");
  EXPECT_EQ(rules[5], "lockdiscipline");
}

TEST(PfmLint, CleanFixtureTreeHasNoFindings) {
  EXPECT_TRUE(run_on(fixture("clean")).empty());
}

TEST(PfmLint, LayeringRuleFlagsForbiddenIncludesWithFileAndLine) {
  const auto findings = run_on(fixture("layering"), {"layering"});
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{
                "src/core/bad_include.cpp:1 forbidden-include",
                "src/core/bad_include.cpp:2 forbidden-include",
                "src/membership/bad_dep.hpp:2 forbidden-include",
                "src/numerics/bad_leaf.hpp:3 forbidden-include",
                "src/obs/bad_telecom.hpp:2 forbidden-include",
                "src/runtime/schedule.cpp:1 forbidden-include",
                "src/runtime/shard.cpp:1 forbidden-include",
                "src/widgets/unregistered.hpp:1 unknown-module",
            }));
  for (const auto& f : findings) EXPECT_EQ(f.rule, "layering");
}

TEST(PfmLint, DeterminismRuleFlagsEntropyAddressKeysAndUnorderedIteration) {
  const auto findings = run_on(fixture("determinism"), {"determinism"});
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{
                "src/prediction/bad_rng.cpp:11 banned-token",
                "src/prediction/bad_rng.cpp:12 banned-token",
                "src/prediction/bad_rng.cpp:13 banned-token",
                "src/prediction/bad_rng.cpp:14 banned-token",
                "src/prediction/bad_rng.cpp:22 address-keyed",
                "src/prediction/bad_rng.cpp:25 unordered-iteration",
            }));
  for (const auto& f : findings) EXPECT_EQ(f.rule, "determinism");
}

TEST(PfmLint, ConcurrencyRuleFlagsMutableStaticCatchAllVolatileRawThread) {
  const auto findings = run_on(fixture("concurrency"), {"concurrency"});
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{
                "src/runtime/bad_shared.cpp:7 mutable-static",
                "src/runtime/bad_shared.cpp:14 catch-all",
                "src/runtime/bad_shared.cpp:19 volatile",
                "src/runtime/bad_shared.cpp:23 raw-thread",
                "src/runtime/bad_shared.cpp:24 raw-thread",
                "src/runtime/bad_shared.cpp:25 raw-thread",
            }));
  for (const auto& f : findings) EXPECT_EQ(f.rule, "concurrency");
}

TEST(PfmLint, HotpathRuleFlagsClosureViolationsAtExactLines) {
  const auto findings = run_on(fixture("hotpath"), {"hotpath"});
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{
                "src/prediction/frozen_serve.cpp:17 allocation",
                "src/prediction/frozen_serve.cpp:25 allocation",
                "src/runtime/hot_paths.cpp:11 allocation",
                "src/runtime/hot_paths.cpp:16 stream-io",
                "src/runtime/hot_paths.cpp:28 allocation",
                "src/runtime/hot_paths.cpp:29 mutex",
                "src/runtime/hot_paths.cpp:31 throw",
            }));
  for (const auto& f : findings) EXPECT_EQ(f.rule, "hotpath");
  ASSERT_EQ(findings.size(), 7u);
  // The one-hop SIMD-sweep finding names the hot batch seed; the hoisted
  // pfm-cold [[noreturn]] throw helper it calls is rightly absent.
  EXPECT_NE(findings[0].message.find(
                "in 'mixture_sweep', reached from pfm-hot "
                "'frozen_score_batch'"),
            std::string::npos)
      << findings[0].message;
  // The two-hop transitive finding names the seed and the path into it;
  // the pfm-cold slow path (and everything it calls) is rightly absent.
  EXPECT_NE(findings[2].message.find(
                "reached from pfm-hot 'tick' via 'helper_a' (2 calls deep)"),
            std::string::npos)
      << findings[2].message;
}

TEST(PfmLint, WalltaintRuleTracksWallValuesIntoSimExports) {
  const auto findings = run_on(fixture("walltaint"), {"walltaint"});
  // quality_taint: line 25 (the kWall gauge) is rightly absent, line 28
  // is tainted only through the `drift = cost` assignment chain.
  // wall_taint: line 24 (the kWall histogram) is rightly absent, line 29
  // only through the `boundary = elapsed` chain.
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{
                "src/obs/quality_taint.cpp:24 wall-into-sim-metric",
                "src/obs/quality_taint.cpp:28 wall-into-sim-metric",
                "src/obs/quality_taint.cpp:29 wall-into-sim-trace",
                "src/obs/wall_taint.cpp:23 wall-into-sim-metric",
                "src/obs/wall_taint.cpp:25 wall-into-sim-metric",
                "src/obs/wall_taint.cpp:26 wall-into-sim-trace",
                "src/obs/wall_taint.cpp:29 wall-into-sim-trace",
            }));
  for (const auto& f : findings) EXPECT_EQ(f.rule, "walltaint");
}

TEST(PfmLint, LockDisciplineChecksGuardedFieldsAndReacquisition) {
  const auto findings = run_on(fixture("lockdiscipline"), {"lockdiscipline"});
  // The locked reader, the PFM_REQUIRES caller, and the exempt reader
  // are all clean; only the bare read and the re-acquisition remain.
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{
                "src/runtime/guarded.cpp:13 guarded-access",
                "src/runtime/guarded.cpp:27 double-acquire",
            }));
  for (const auto& f : findings) EXPECT_EQ(f.rule, "lockdiscipline");
}

TEST(PfmLint, LexerHandlesSplicedCommentsAndPrefixedRawStrings) {
  // The spliced `//` comment swallows a `volatile`, and the u8R/LR raw
  // strings hide a zoo of banned tokens; only the real one survives.
  const auto findings = run_on(fixture("lexer"));
  EXPECT_EQ(keys(findings),
            (std::vector<std::string>{"src/core/spliced.cpp:13 volatile"}));
}

TEST(PfmLint, SuppressionCommentsAreHonored) {
  // Same violation shapes as the bad fixtures — inline allow, allow on
  // the preceding line, and allow-file — all silenced.
  EXPECT_TRUE(run_on(fixture("suppressed")).empty());
}

TEST(PfmLint, RulesCanBeRunSelectively) {
  // The determinism fixture is clean under the other two rules.
  EXPECT_TRUE(run_on(fixture("determinism"), {"layering"}).empty());
  EXPECT_TRUE(run_on(fixture("determinism"), {"concurrency"}).empty());
}

TEST(PfmLint, UnknownRuleAndBadRootThrow) {
  EXPECT_THROW(run_on(repo_root(), {"nonsense"}), std::runtime_error);
  EXPECT_THROW(run_on(repo_root() / "does-not-exist"), std::runtime_error);
}

TEST(PfmLint, FormatIsFileLineRuleCheckMessage) {
  const Finding f{"determinism", "banned-token", "src/a/b.cpp", 7, "no"};
  EXPECT_EQ(pfm::lint::format(f),
            "src/a/b.cpp:7: [determinism/banned-token] no");
}

// The gate itself: the real tree must be finding-free under every rule.
// (The fixtures above are excluded by Options::exclude_dirs.)
TEST(PfmLint, RepositoryTreeIsCleanUnderAllRules) {
  const auto findings = run_on(repo_root());
  for (const auto& f : findings) ADD_FAILURE() << pfm::lint::format(f);
  EXPECT_TRUE(findings.empty());
}

TEST(PfmLint, CliExitCodesDistinguishCleanFindingsAndUsage) {
  EXPECT_EQ(run_cli("--root " + repo_root().string()), 0);
  EXPECT_EQ(run_cli("--root " + fixture("layering").string()), 1);
  EXPECT_EQ(run_cli("--root " + fixture("layering").string() +
                    " --rule concurrency"),
            0);
  EXPECT_EQ(run_cli("--list-rules"), 0);
  EXPECT_EQ(run_cli("--rule nonsense --root " + repo_root().string()), 2);
  EXPECT_EQ(run_cli("--bogus-flag"), 2);
}

TEST(PfmLint, SarifOutputCarriesRulesResultsAndLocations) {
  const auto findings = run_on(fixture("lockdiscipline"), {"lockdiscipline"});
  const std::string sarif = pfm::lint::to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"pfm-analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lockdiscipline/guarded-access\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/runtime/guarded.cpp\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 13"), std::string::npos);
  // No findings still yields a valid document.
  EXPECT_NE(pfm::lint::to_sarif({}).find("\"results\": []"),
            std::string::npos);
}

TEST(PfmLint, CliSarifFormatAndRuntimeBudget) {
  // SARIF goes to stdout; findings still drive the exit code.
  EXPECT_EQ(run_cli("--format=sarif --root " + fixture("hotpath").string()),
            1);
  EXPECT_EQ(run_cli("--format sarif --root " + fixture("clean").string()), 0);
  EXPECT_EQ(run_cli("--format riff --root " + fixture("clean").string()), 2);
  // A generous budget changes nothing; a zero budget always trips (the
  // test hook for the CI runtime-budget gate).
  EXPECT_EQ(run_cli("--verbose --jobs 2 --budget-ms 600000 --root " +
                    fixture("clean").string()),
            0);
  EXPECT_EQ(run_cli("--budget-ms 0 --root " + fixture("clean").string()), 2);
}

}  // namespace
