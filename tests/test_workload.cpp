#include "telecom/workload.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pfm::telecom {
namespace {

SimConfig quiet_config() {
  SimConfig cfg;
  cfg.spike_mtbf = 1e12;  // effectively no spikes
  return cfg;
}

TEST(Workload, DiurnalTroughAtFourAm) {
  const SimConfig cfg = quiet_config();
  num::Rng rng(1);
  WorkloadGenerator wl(cfg, rng);
  const double at_4am = wl.mean_rate(4.0 * 3600.0);
  const double at_4pm = wl.mean_rate(16.0 * 3600.0);
  EXPECT_LT(at_4am, at_4pm);
  EXPECT_NEAR(at_4am, cfg.arrival_rate * (1.0 - cfg.diurnal_amplitude), 1e-6);
  EXPECT_NEAR(at_4pm, cfg.arrival_rate * (1.0 + cfg.diurnal_amplitude), 1e-6);
}

TEST(Workload, MeanRateIsPeriodic) {
  const SimConfig cfg = quiet_config();
  num::Rng rng(1);
  WorkloadGenerator wl(cfg, rng);
  EXPECT_NEAR(wl.mean_rate(7.0 * 3600.0), wl.mean_rate(7.0 * 3600.0 + 86400.0),
              1e-9);
}

TEST(Workload, ArrivalsMatchRateOnAverage) {
  const SimConfig cfg = quiet_config();
  num::Rng rng(3);
  WorkloadGenerator wl(cfg, rng);
  const double t0 = 12.0 * 3600.0;
  double total = 0.0;
  const int ticks = 2000;
  for (int i = 0; i < ticks; ++i) {
    const auto a = wl.arrivals(t0 + i, 1.0);
    total += static_cast<double>(a[0] + a[1] + a[2]);
  }
  const double expected = wl.mean_rate(t0) * ticks;
  EXPECT_NEAR(total / expected, 1.0, 0.05);
}

TEST(Workload, SpikeRaisesRate) {
  SimConfig cfg;
  cfg.spike_mtbf = 1.0;  // a spike almost immediately
  cfg.spike_min_factor = 3.0;
  cfg.spike_max_factor = 3.0;
  cfg.spike_min_duration = 1000.0;
  cfg.spike_max_duration = 1000.0;
  num::Rng rng(7);
  WorkloadGenerator wl(cfg, rng);
  // Trigger spike scheduling by asking for arrivals far into the future.
  (void)wl.arrivals(50.0, 1.0);
  // Find a time inside the spike, past the ramp.
  double t_spiked = -1.0;
  for (double t = 0.0; t < 5000.0; t += 10.0) {
    (void)wl.arrivals(t, 1.0);
    if (wl.spike_active(t)) t_spiked = t;
  }
  ASSERT_GT(t_spiked, 0.0) << "no spike observed";
}

TEST(Workload, ShedReducesRateAndCountsRejects) {
  const SimConfig cfg = quiet_config();
  num::Rng rng(5);
  WorkloadGenerator wl(cfg, rng);
  const double t = 12.0 * 3600.0;
  const double before = wl.mean_rate(t);
  wl.shed(0.5, t + 100.0);
  EXPECT_NEAR(wl.mean_rate(t), 0.5 * before, 1e-9);
  // After the shed window the rate recovers.
  EXPECT_NEAR(wl.mean_rate(t + 200.0), wl.mean_rate(t + 200.0), 1e-12);
  for (int i = 0; i < 100; ++i) (void)wl.arrivals(t + i, 1.0);
  EXPECT_GT(wl.shed_count(), 0);
}

TEST(Workload, ShedValidatesFraction) {
  const SimConfig cfg = quiet_config();
  num::Rng rng(5);
  WorkloadGenerator wl(cfg, rng);
  EXPECT_THROW(wl.shed(-0.1, 10.0), std::invalid_argument);
  EXPECT_THROW(wl.shed(1.1, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace pfm::telecom
