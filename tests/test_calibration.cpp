#include "prediction/calibration.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace pfm::pred {
namespace {

TEST(CalibrateScore, ThresholdMapsToHalf) {
  for (double thr : {0.1, 0.35, 0.5, 0.8, 0.95}) {
    EXPECT_NEAR(calibrate_score(thr, thr), 0.5, 1e-12) << "thr=" << thr;
  }
}

TEST(CalibrateScore, EndpointsPreserved) {
  EXPECT_DOUBLE_EQ(calibrate_score(0.0, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(calibrate_score(1.0, 0.3), 1.0);
}

TEST(CalibrateScore, MonotoneInScore) {
  const double thr = 0.42;
  double prev = -1.0;
  for (double s = 0.0; s <= 1.0; s += 0.01) {
    const double c = calibrate_score(s, thr);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(CalibrateScore, DegenerateThresholdsClamped) {
  // Thresholds at the extremes must not divide by zero.
  EXPECT_GE(calibrate_score(0.5, 0.0), 0.0);
  EXPECT_LE(calibrate_score(0.5, 1.0), 1.0);
  EXPECT_GE(calibrate_score(2.0, 0.5), 0.0);   // out-of-range score clamped
  EXPECT_LE(calibrate_score(-1.0, 0.5), 1.0);
}

class FixedSymptom final : public SymptomPredictor {
 public:
  explicit FixedSymptom(double v) : v_(v) {}
  std::string name() const override { return "fixed"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const SymptomContext&) const override { return v_; }

 private:
  double v_;
};

class FixedEvent final : public EventPredictor {
 public:
  explicit FixedEvent(double v) : v_(v) {}
  std::string name() const override { return "fixed-event"; }
  void train(std::span<const mon::ErrorSequence>,
             std::span<const mon::ErrorSequence>) override {}
  double score(const mon::ErrorSequence&) const override { return v_; }

 private:
  double v_;
};

TEST(CalibratedSymptomPredictor, WrapsAndRenames) {
  auto inner = std::make_shared<FixedSymptom>(0.7);
  CalibratedSymptomPredictor cal(inner, 0.7);
  EXPECT_EQ(cal.name(), "fixed+cal");
  std::vector<mon::SymptomSample> h{{0.0, {}}};
  SymptomContext ctx;
  ctx.history = h;
  EXPECT_NEAR(cal.score(ctx), 0.5, 1e-12);

  // Below/above its threshold lands on the right side of 0.5.
  CalibratedSymptomPredictor strict(std::make_shared<FixedSymptom>(0.6), 0.8);
  EXPECT_LT(strict.score(ctx), 0.5);
  CalibratedSymptomPredictor loose(std::make_shared<FixedSymptom>(0.6), 0.4);
  EXPECT_GT(loose.score(ctx), 0.5);
}

TEST(CalibratedEventPredictor, WrapsScore) {
  CalibratedEventPredictor cal(std::make_shared<FixedEvent>(0.9), 0.6);
  mon::ErrorSequence seq;
  EXPECT_GT(cal.score(seq), 0.5);
  EXPECT_LE(cal.score(seq), 1.0);
  EXPECT_EQ(cal.name(), "fixed-event+cal");
}

}  // namespace
}  // namespace pfm::pred
