// Conformance suite of the fleet hot path: FleetPath::kOptimized
// (persistent pool workers + arena-backed SoA scoring + cached kernel
// constants) must be *bit-identical* to FleetPath::kReference in every
// observable — predictor scores, telemetry, per-node MEA statistics and
// every sim-time export — at 1, 2 and 8 threads, on a healthy fleet and
// under a hostile fault plan. The optimized path is allowed to differ in
// wall time only.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "injection/injector.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "prediction/baselines.hpp"
#include "prediction/ubf.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"
#include "telecom/simulator.hpp"

namespace pfm {
namespace {

constexpr std::size_t kNodes = 6;
constexpr double kDuration = 0.3 * 86400.0;

pred::WindowGeometry geometry() { return {600.0, 300.0, 300.0}; }

/// The predictor ensemble, trained once per process on a simulated SCP
/// trace and shared read-only by every run of the suite: a UBF (the SoA
/// kernel sweep), a trend baseline (the regression scratch) and an
/// eventset miner (the sorted-id membership scratch) — one exerciser per
/// arena-backed code path.
struct Ensemble {
  std::shared_ptr<const pred::SymptomPredictor> ubf;
  std::shared_ptr<const pred::SymptomPredictor> trend;
  std::shared_ptr<const pred::EventPredictor> eventset;
  mon::MonitoringDataset train_trace{mon::SymptomSchema({"unused"})};
};

const Ensemble& ensemble() {
  static const Ensemble shared = [] {
    telecom::SimConfig cfg;
    cfg.seed = 5;
    cfg.duration = 4.0 * 86400.0;
    telecom::ScpSimulator sim(cfg);
    sim.run();
    const auto trace = sim.take_trace();
    const auto g = geometry();

    pred::UbfConfig ubf_cfg;
    ubf_cfg.windows = g;
    ubf_cfg.num_kernels = 4;
    ubf_cfg.pwa_iterations = 25;
    ubf_cfg.shape_evaluations = 120;
    ubf_cfg.max_train_windows = 1200;
    auto ubf = std::make_shared<pred::UbfPredictor>(ubf_cfg);
    ubf->train(trace);

    auto trend = std::make_shared<pred::TrendPredictor>(g);
    trend->train(trace);

    auto eventset = std::make_shared<pred::EventsetPredictor>();
    eventset->train(trace.failure_sequences(g.data_window, g.lead_time),
                    trace.nonfailure_sequences(g.data_window, g.lead_time,
                                               g.prediction_window, 300.0));

    Ensemble out;
    out.ubf = std::move(ubf);
    out.trend = std::move(trend);
    out.eventset = std::move(eventset);
    out.train_trace = trace;
    return out;
  }();
  return shared;
}

// --- predictor-level bit-identity -------------------------------------------

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// The 3-arg arena overloads (SoA UBF sweep, scratch-backed regression,
/// sorted-id membership) must reproduce the 2-arg reference overloads bit
/// for bit — same rounding, same FP contraction, same accumulation order.
TEST(FleetConformance, ArenaScoreBatchesAreBitIdenticalToReference) {
  const auto& e = ensemble();
  const auto samples = e.train_trace.samples();
  const auto g = geometry();
  ASSERT_GE(samples.size(), 400u);

  std::vector<pred::SymptomContext> contexts;
  for (std::size_t start = 0; start + 20 <= samples.size() &&
                              contexts.size() < 64;
       start += samples.size() / 64) {
    pred::SymptomContext ctx;
    ctx.history = samples.subspan(start, 20);
    ctx.past_failures = e.train_trace.failures();
    contexts.push_back(ctx);
  }
  ASSERT_GE(contexts.size(), 32u);

  pred::BatchScratch scratch;
  std::vector<double> reference(contexts.size());
  std::vector<double> optimized(contexts.size());
  for (const auto* p : {e.ubf.get(), e.trend.get()}) {
    p->score_batch(contexts, reference);
    p->score_batch(contexts, optimized, scratch);
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      EXPECT_EQ(bits(reference[i]), bits(optimized[i]))
          << p->name() << " context " << i;
    }
    // Second pass through the warm (possibly oversized) arena: reuse
    // must not change results either.
    p->score_batch(contexts, optimized, scratch);
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      EXPECT_EQ(bits(reference[i]), bits(optimized[i]))
          << p->name() << " warm-arena context " << i;
    }
  }

  const auto sequences =
      e.train_trace.failure_sequences(g.data_window, g.lead_time);
  ASSERT_FALSE(sequences.empty());
  std::vector<double> seq_ref(sequences.size());
  std::vector<double> seq_opt(sequences.size());
  e.eventset->score_batch(sequences, seq_ref);
  e.eventset->score_batch(sequences, seq_opt, scratch);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_EQ(bits(seq_ref[i]), bits(seq_opt[i])) << "sequence " << i;
  }
}

// --- fleet-level conformance -------------------------------------------------

/// Everything observable about one fleet run except wall time.
struct Artifacts {
  std::string prometheus;
  std::string trace_json;
  std::string json_line;
  std::uint64_t dropped = 0;
  std::size_t rounds = 0;
  std::size_t scores = 0;
  std::size_t warnings = 0;
  std::size_t sanitized = 0;
  std::size_t node_faults = 0;
  std::size_t quarantined = 0;
  std::size_t breaker_trips = 0;
  std::size_t total_actions = 0;
  double downtime = 0.0;
  double simulated = 0.0;
  std::int64_t failures = 0;
  std::vector<std::size_t> node_warnings;
  std::vector<bool> node_quarantined;
  std::vector<std::string> node_reason;
};

inj::FaultPlan hostile_plan() {
  inj::FaultPlan plan;
  plan.seed = 77;
  plan.nodes[1].crash_at = 10000.0;
  plan.nodes[2].hang_at = 6000.0;
  plan.nodes[2].hang_steps = 5;
  plan.default_node.drop_sample_p = 0.03;
  plan.default_node.corrupt_sample_p = 0.02;
  plan.predictors[0].nan_p = 0.05;
  plan.predictors[0].throw_p = 0.02;
  plan.actions[0].fail_p = 0.3;
  return plan;
}

Artifacts run_fleet(std::size_t threads, runtime::FleetPath path,
                    bool hostile) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = threads;
  ocfg.trace_capacity = 1 << 15;
  obs::Observability hub(ocfg);

  telecom::SimConfig sim;
  sim.seed = 21;
  sim.duration = kDuration;
  sim.leak_mtbf = 21600.0;  // enough pressure to raise warnings

  runtime::FleetConfig cfg;
  cfg.mea.windows = geometry();
  cfg.mea.warning_threshold = 0.6;
  cfg.mea.action_cooldown = 600.0;
  cfg.mea.retry.max_attempts = 3;
  cfg.mea.retry.backoff_initial = 120.0;
  cfg.num_threads = threads;
  cfg.path = path;
  cfg.obs = &hub;

  const auto& e = ensemble();
  auto nodes = runtime::make_scp_fleet(sim, kNodes);

  inj::FaultInjector injector(hostile_plan());
  injector.set_observability(&hub);

  auto make_cleanup = [] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  };
  auto make_repair = [] {
    return std::make_unique<act::PreparedRepairAction>(1800.0);
  };

  runtime::FleetController fleet(
      hostile ? injector.wrap_fleet(std::move(nodes)) : std::move(nodes),
      cfg);
  if (hostile) {
    fleet.add_symptom_predictor(injector.wrap_symptom_predictor(0, e.ubf));
    fleet.add_symptom_predictor(injector.wrap_symptom_predictor(1, e.trend));
    fleet.add_event_predictor(injector.wrap_event_predictor(0, e.eventset));
    fleet.add_action(injector.wrap_action_factory(0, make_cleanup));
    fleet.add_action(injector.wrap_action_factory(1, make_repair));
  } else {
    fleet.add_symptom_predictor(e.ubf);
    fleet.add_symptom_predictor(e.trend);
    fleet.add_event_predictor(e.eventset);
    fleet.add_action(make_cleanup);
    fleet.add_action(make_repair);
  }
  fleet.run();

  Artifacts out;
  out.prometheus = obs::prometheus_text(hub.metrics(), /*include_wall=*/false);
  out.trace_json = obs::chrome_trace_json(hub.trace(), /*include_wall=*/false);
  out.json_line = obs::metrics_json_line(hub.metrics(), /*include_wall=*/false);
  out.dropped = hub.trace().dropped();
  const auto t = fleet.telemetry();
  out.rounds = t.rounds;
  out.scores = t.scores_computed;
  out.warnings = t.warnings_raised;
  out.sanitized = t.resilience.scores_sanitized;
  out.node_faults = t.resilience.node_faults;
  out.quarantined = t.resilience.nodes_quarantined;
  out.breaker_trips = t.resilience.breaker_trips;
  out.total_actions = t.mea.total_actions();
  out.downtime = t.system.downtime;
  out.simulated = t.system.simulated;
  out.failures = t.system.failures;
  for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
    out.node_warnings.push_back(fleet.node_mea_stats(i).warnings);
    out.node_quarantined.push_back(fleet.node_quarantined(i));
    out.node_reason.push_back(fleet.node_quarantine_reason(i));
  }
  return out;
}

void expect_identical(const Artifacts& a, const Artifacts& b) {
  // Bit-identity: doubles compared exactly, exports byte for byte.
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.json_line, b.json_line);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.sanitized, b.sanitized);
  EXPECT_EQ(a.node_faults, b.node_faults);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.total_actions, b.total_actions);
  EXPECT_EQ(bits(a.downtime), bits(b.downtime));
  EXPECT_EQ(bits(a.simulated), bits(b.simulated));
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.node_warnings, b.node_warnings);
  EXPECT_EQ(a.node_quarantined, b.node_quarantined);
  EXPECT_EQ(a.node_reason, b.node_reason);
}

void run_matrix(bool hostile) {
  const auto canonical =
      run_fleet(1, runtime::FleetPath::kReference, hostile);
  ASSERT_EQ(canonical.dropped, 0u);
  EXPECT_GT(canonical.rounds, 0u);
  EXPECT_GT(canonical.warnings, 0u) << "scenario too tame to exercise Act";
  if (hostile) {
    EXPECT_GT(canonical.quarantined, 0u) << "plan injected no node faults";
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    for (auto path : {runtime::FleetPath::kReference,
                      runtime::FleetPath::kOptimized}) {
      if (threads == 1 && path == runtime::FleetPath::kReference) continue;
      SCOPED_TRACE(std::string(hostile ? "hostile" : "clean") + " threads=" +
                   std::to_string(threads) + " path=" +
                   (path == runtime::FleetPath::kOptimized ? "optimized"
                                                           : "reference"));
      const auto run = run_fleet(threads, path, hostile);
      ASSERT_EQ(run.dropped, 0u);
      expect_identical(canonical, run);
    }
  }
}

TEST(FleetConformance, CleanFleetIsBitIdenticalAcrossPathsAndThreadCounts) {
  run_matrix(/*hostile=*/false);
}

TEST(FleetConformance, HostileFleetIsBitIdenticalAcrossPathsAndThreadCounts) {
  run_matrix(/*hostile=*/true);
}

}  // namespace
}  // namespace pfm
