#include "numerics/linalg.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "numerics/rng.hpp"

namespace pfm::num {
namespace {

TEST(Lu, SolvesSmallSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> b{3.0, 5.0};
  const auto x = solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, RequiresSquare) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition{a}, std::runtime_error);
}

TEST(Lu, SizeMismatchThrows) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  LuDecomposition lu(a);
  const std::vector<double> b{1.0};
  EXPECT_THROW(lu.solve(b), std::invalid_argument);
}

TEST(Lu, Determinant) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), -2.0, 1e-12);
}

TEST(Lu, DeterminantWithPivoting) {
  // Leading zero forces a row swap; determinant sign must account for it.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseRoundTrip) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = inverse(a);
  EXPECT_TRUE((a * inv).approx_equal(Matrix::identity(2), 1e-12));
}

TEST(Lu, RandomSystemsRoundTrip) {
  Rng rng(42);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
      a(i, i) += static_cast<double>(n);  // diagonally dominant => regular
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.normal();
    const auto b = a.apply(x_true);
    const auto x = solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(LeastSquares, RecoversExactSolution) {
  // Overdetermined but consistent: y = 2x + 1.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 1.0;
    b[i] = 2.0 * i + 1.0;
  }
  const auto x = least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(LeastSquares, RidgeHandlesCollinearColumns) {
  // Identical columns are rank-deficient; damping keeps the solve alive.
  Matrix a(3, 2);
  std::vector<double> b{1.0, 2.0, 3.0};
  for (int i = 0; i < 3; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);
  }
  const auto x = least_squares(a, b, 1e-8);
  // Symmetric problem: both weights equal, summing to ~the OLS coefficient.
  EXPECT_NEAR(x[0], x[1], 1e-6);
}

TEST(LeastSquares, SizeMismatchThrows) {
  Matrix a(3, 2);
  std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(least_squares(a, b), std::invalid_argument);
}

TEST(Stationary, TwoStateChain) {
  // Up/down chain: lambda = 0.1 (fail), mu = 0.9 (repair).
  const Matrix q{{-0.1, 0.1}, {0.9, -0.9}};
  const auto pi = stationary_distribution(q);
  EXPECT_NEAR(pi[0], 0.9, 1e-12);
  EXPECT_NEAR(pi[1], 0.1, 1e-12);
}

TEST(Stationary, SumsToOneOnRandomGenerators) {
  Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    Matrix q(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        q(i, j) = rng.uniform(0.01, 2.0);
        row += q(i, j);
      }
      q(i, i) = -row;
    }
    const auto pi = stationary_distribution(q);
    double total = 0.0;
    for (double p : pi) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // pi Q must vanish.
    const auto residual = q.apply_left(pi);
    for (double r : residual) EXPECT_NEAR(r, 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace pfm::num
