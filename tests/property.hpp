// Seeded property-test harness for the gtest suites: generator
// combinators over num::Rng plus a case runner whose failures are exactly
// replayable. Every case derives its own seed deterministically from
// (suite seed, case index); when a case fails, the runner prints the
// one-liner that re-runs just that case:
//
//     PFM_PROPERTY_SEED=<case_seed> ctest -R <test> ...
//
// and setting PFM_PROPERTY_SEED makes every pfm_property loop run exactly
// one case with exactly that seed — the failing draw sequence, bit for
// bit, regardless of how many cases the original sweep ran.

#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "numerics/rng.hpp"

namespace pfm::proptest {

/// Deterministic per-case seed: splitmix64 over (suite_seed, index) —
/// consecutive cases get decorrelated streams, and a case's seed never
/// depends on how many cases run before it.
inline std::uint64_t case_seed(std::uint64_t suite_seed, std::uint64_t index) {
  std::uint64_t z = suite_seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// The seed override, if PFM_PROPERTY_SEED is set (decimal u64).
inline bool replay_seed(std::uint64_t& out) {
  const char* env = std::getenv("PFM_PROPERTY_SEED");
  if (env == nullptr || *env == '\0') return false;
  out = std::strtoull(env, nullptr, 10);
  return true;
}

// --- generator combinators ---------------------------------------------------
// A generator is any callable num::Rng& -> T. These cover the common
// shapes; one-off generators are just lambdas.

/// Uniform double in [lo, hi).
inline auto uniform(double lo, double hi) {
  return [lo, hi](num::Rng& rng) { return rng.uniform(lo, hi); };
}

/// Uniform integer in [lo, hi] (inclusive).
inline auto uniform_int(std::int64_t lo, std::int64_t hi) {
  return [lo, hi](num::Rng& rng) { return rng.uniform_int(lo, hi); };
}

/// Mostly-tame doubles with a deliberate tail: ~80% uniform in
/// [-scale, scale], plus tiny values, huge values, exact zeros and exact
/// boundary hits — the inputs kernel/exp code tends to get wrong.
inline auto rough_double(double scale = 1.0) {
  return [scale](num::Rng& rng) -> double {
    const double roll = rng.uniform();
    if (roll < 0.80) return rng.uniform(-scale, scale);
    if (roll < 0.88) return rng.uniform(-1e-12, 1e-12);
    if (roll < 0.94) return rng.uniform(-1e6, 1e6) * scale;
    if (roll < 0.97) return 0.0;
    return rng.bernoulli(0.5) ? scale : -scale;
  };
}

/// Vector of `n` draws from `gen`.
template <typename Gen>
auto vector_of(std::size_t n, Gen gen) {
  return [n, gen](num::Rng& rng) {
    using T = decltype(gen(rng));
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(gen(rng));
    return out;
  };
}

/// Vector whose length is itself drawn from [min_n, max_n].
template <typename Gen>
auto sized_vector_of(std::size_t min_n, std::size_t max_n, Gen gen) {
  return [min_n, max_n, gen](num::Rng& rng) {
    const auto n = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(min_n),
                        static_cast<std::int64_t>(max_n)));
    using T = decltype(gen(rng));
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(gen(rng));
    return out;
  };
}

/// One draw from a fixed list of interesting values, `weight` of the
/// time; otherwise falls through to `gen`. Keeps edge cases in every
/// sweep without a separate hand-rolled loop.
template <typename T, typename Gen>
auto one_of_or(std::vector<T> specials, double weight, Gen gen) {
  return [specials = std::move(specials), weight, gen](num::Rng& rng) -> T {
    if (!specials.empty() && rng.uniform() < weight) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(specials.size()) - 1));
      return specials[i];
    }
    return gen(rng);
  };
}

// --- case runner -------------------------------------------------------------

/// Runs `property(rng, case_index)` for `num_cases` deterministic cases.
/// Each case gets a fresh num::Rng seeded from case_seed(suite_seed, i).
/// On the first case that produces a gtest failure, prints the exact
/// replay seed and stops (later cases would only bury the report). With
/// PFM_PROPERTY_SEED set, runs that single seed instead.
template <typename Property>
void run_cases(const char* name, std::uint64_t suite_seed,
               std::size_t num_cases, Property property) {
  std::uint64_t forced = 0;
  if (replay_seed(forced)) {
    SCOPED_TRACE(std::string(name) + " replay PFM_PROPERTY_SEED=" +
                 std::to_string(forced));
    num::Rng rng(forced);
    property(rng, std::size_t{0});
    return;
  }
  for (std::size_t i = 0; i < num_cases; ++i) {
    const std::uint64_t seed = case_seed(suite_seed, i);
    SCOPED_TRACE(std::string(name) + " case " + std::to_string(i) +
                 " (replay with PFM_PROPERTY_SEED=" + std::to_string(seed) +
                 ")");
    num::Rng rng(seed);
    property(rng, i);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << name << ": case " << i
                    << " failed; replay exactly with PFM_PROPERTY_SEED="
                    << seed;
      return;
    }
  }
}

}  // namespace pfm::proptest
