#include <gtest/gtest.h>

#include <stdexcept>

#include "numerics/rng.hpp"
#include "prediction/changepoint.hpp"
#include "prediction/meta.hpp"

namespace pfm::pred {
namespace {

TEST(Cusum, DetectsMeanShift) {
  Cusum c(/*reference=*/0.0, /*drift=*/0.5, /*threshold=*/8.0);
  num::Rng rng(1);
  // In-control stream: no alarm expected.
  bool alarm = false;
  for (int i = 0; i < 500; ++i) alarm |= c.add(rng.normal(0.0, 0.5));
  EXPECT_FALSE(alarm);
  // Mean shifts to +1.5: alarm within a couple dozen observations.
  const auto before = c.alarms();
  int steps = 0;
  while (!c.add(rng.normal(1.5, 0.5))) {
    ASSERT_LT(++steps, 100);
  }
  EXPECT_EQ(c.alarms(), before + 1);
}

TEST(Cusum, DetectsDownwardShiftToo) {
  Cusum c(5.0, 0.25, 4.0);
  num::Rng rng(2);
  int steps = 0;
  while (!c.add(rng.normal(3.0, 0.5))) ASSERT_LT(++steps, 100);
  EXPECT_GT(c.negative_sum() + c.positive_sum(), -1.0);  // reset happened
}

TEST(Cusum, RebaseSuppressesAlarms) {
  Cusum c(0.0, 0.25, 4.0);
  num::Rng rng(3);
  for (int i = 0; i < 30; ++i) c.add(rng.normal(2.0, 0.3));
  c.rebase(2.0);
  bool alarm = false;
  for (int i = 0; i < 300; ++i) alarm |= c.add(rng.normal(2.0, 0.3));
  EXPECT_FALSE(alarm);
}

TEST(Cusum, ParameterValidation) {
  EXPECT_THROW(Cusum(0.0, -0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Cusum(0.0, 0.1, 0.0), std::invalid_argument);
}

TEST(PageHinkley, DetectsIncreaseWithoutKnownBaseline) {
  PageHinkley ph(0.05, 3.0);
  num::Rng rng(4);
  bool alarm = false;
  for (int i = 0; i < 500; ++i) alarm |= ph.add(rng.normal(1.0, 0.2));
  EXPECT_FALSE(alarm);
  int steps = 0;
  while (!ph.add(rng.normal(2.0, 0.2))) ASSERT_LT(++steps, 200);
  EXPECT_EQ(ph.alarms(), 1u);
}

TEST(PageHinkley, ParameterValidation) {
  EXPECT_THROW(PageHinkley(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(PageHinkley(0.1, 0.0), std::invalid_argument);
}

TEST(Stacking, CombinesComplementaryPredictors) {
  // Predictor A is right on the first half of the feature space, B on the
  // second; the stack should beat both alone.
  num::Rng rng(5);
  std::vector<double> scores;
  std::vector<int> labels;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const bool regime = rng.bernoulli(0.5);
    const int y = rng.bernoulli(0.4) ? 1 : 0;
    const double a = regime ? (y ? 0.8 : 0.2) + rng.normal(0.0, 0.1)
                            : rng.uniform();
    const double b = !regime ? (y ? 0.8 : 0.2) + rng.normal(0.0, 0.1)
                             : rng.uniform();
    scores.push_back(a);
    scores.push_back(b);
    labels.push_back(y);
  }
  StackedGeneralization stack;
  EXPECT_FALSE(stack.fitted());
  stack.fit(scores, 2, labels);
  ASSERT_TRUE(stack.fitted());
  // Both inputs carry signal: positive weights.
  EXPECT_GT(stack.weights()[0], 0.0);
  EXPECT_GT(stack.weights()[1], 0.0);

  // Combined accuracy beats single-predictor accuracy.
  int correct_stack = 0, correct_a = 0;
  for (int i = 0; i < n; ++i) {
    const double a = scores[2 * i];
    const double combined =
        stack.combine(std::vector<double>{a, scores[2 * i + 1]});
    correct_stack += (combined >= 0.5) == (labels[i] == 1) ? 1 : 0;
    correct_a += (a >= 0.5) == (labels[i] == 1) ? 1 : 0;
  }
  EXPECT_GT(correct_stack, correct_a);
}

TEST(Stacking, Validation) {
  StackedGeneralization s;
  EXPECT_THROW(s.combine(std::vector<double>{0.5}), std::logic_error);
  const std::vector<double> scores{0.1, 0.9};
  EXPECT_THROW(s.fit(scores, 0, std::vector<int>{1, 0}),
               std::invalid_argument);
  EXPECT_THROW(s.fit(scores, 2, std::vector<int>{1, 0}),
               std::invalid_argument);  // shape: 1 row x 2 cols vs 2 labels
  EXPECT_THROW(s.fit(scores, 1, std::vector<int>{1, 1}),
               std::invalid_argument);  // single class
}

}  // namespace
}  // namespace pfm::pred
