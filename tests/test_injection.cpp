// Fault-injection subsystem: decorators must forward bit-identically
// under an empty plan, inject exactly the scripted faults under a nonzero
// plan, and keep injected fleet runs bit-identical for a fixed
// (seed, plan) at any thread count.

#include "injection/injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace pfm {
namespace {

/// Oracle-style predictor (see test_fleet): newest worst-node memory
/// pressure, keeping trajectories independent of trained models.
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t pressure_index)
      : index_(pressure_index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

/// Counts executions; optionally fails the first `fail_first` attempts.
class CountingAction final : public act::Action {
 public:
  explicit CountingAction(std::size_t* executions)
      : executions_(executions) {}
  std::string name() const override { return "counting"; }
  act::ActionKind kind() const override {
    return act::ActionKind::kPreparedRepair;
  }
  const act::ActionProperties& properties() const override { return props_; }
  bool applicable(const core::ManagedSystem&) const override { return true; }
  void execute(core::ManagedSystem& system, double) override {
    ++*executions_;
    system.checkpoint();
  }

 private:
  std::size_t* executions_;
  act::ActionProperties props_{0.5, 0.95, 1.0};
};

telecom::SimConfig sim_config() {
  telecom::SimConfig cfg;
  cfg.seed = 21;
  cfg.duration = 0.5 * 86400.0;
  cfg.leak_mtbf = 21600.0;
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  return cfg;
}

std::size_t pressure_index() {
  telecom::ScpSimulator sim(sim_config());
  return *sim.trace().schema().index("mem_pressure_max");
}

// --- decorator unit behavior ------------------------------------------------

TEST(Injection, EmptyPlanIsBitIdenticalToBareComponents) {
  auto bare = std::make_unique<runtime::ScpManagedSystem>(sim_config());
  inj::FaultInjector injector{inj::FaultPlan{}};
  auto wrapped = injector.wrap_node(
      0, std::make_unique<runtime::ScpManagedSystem>(sim_config()));

  for (double t = 600.0; t <= 43200.0; t += 600.0) {
    bare->step_to(t);
    wrapped->step_to(t);
  }
  EXPECT_EQ(bare->trace().samples().size(), wrapped->trace().samples().size());
  EXPECT_EQ(bare->trace().events().size(), wrapped->trace().events().size());
  const auto a = bare->system_stats();
  const auto b = wrapped->system_stats();
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_DOUBLE_EQ(a.downtime, b.downtime);
  EXPECT_EQ(injector.stats().total(), 0u);
}

TEST(Injection, NodeCrashesAtScriptedTimeAndStaysDead) {
  inj::FaultPlan plan;
  plan.nodes[0].crash_at = 3600.0;
  inj::FaultInjector injector(plan);
  auto node = injector.wrap_node(
      0, std::make_unique<runtime::ScpManagedSystem>(sim_config()));

  node->step_to(1800.0);  // before the crash: fine
  EXPECT_DOUBLE_EQ(node->now(), 1800.0);
  node->step_to(3600.0);  // reaches the crash instant
  EXPECT_THROW(node->step_to(4200.0), inj::NodeCrashError);
  EXPECT_THROW(node->step_to(4800.0), inj::NodeCrashError);  // stays dead
  EXPECT_THROW(node->checkpoint(), inj::NodeCrashError);
  EXPECT_THROW(node->restart_unit(0), inj::NodeCrashError);
  // Reads survive: the last known state stays observable.
  EXPECT_DOUBLE_EQ(node->now(), 3600.0);
  EXPECT_GT(node->system_stats().simulated, 0.0);
  EXPECT_EQ(injector.stats().node_crashes, 1u);
}

TEST(Injection, NodeHangsForScriptedStepsThenResumes) {
  inj::FaultPlan plan;
  plan.nodes[0].hang_at = 1200.0;
  plan.nodes[0].hang_steps = 2;
  inj::FaultInjector injector(plan);
  auto node = injector.wrap_node(
      0, std::make_unique<runtime::ScpManagedSystem>(sim_config()));

  node->step_to(600.0);
  EXPECT_DOUBLE_EQ(node->now(), 600.0);
  node->step_to(1200.0);
  node->step_to(1800.0);  // hung call 1
  EXPECT_DOUBLE_EQ(node->now(), 1200.0);
  node->step_to(1800.0);  // hung call 2
  EXPECT_DOUBLE_EQ(node->now(), 1200.0);
  node->step_to(1800.0);  // hang exhausted: progress resumes
  EXPECT_DOUBLE_EQ(node->now(), 1800.0);
  EXPECT_EQ(injector.stats().node_hangs, 2u);
}

TEST(Injection, DropsAndCorruptsMonitoredSamplesDeterministically) {
  inj::FaultPlan plan;
  plan.seed = 7;
  plan.nodes[0].drop_sample_p = 0.3;
  plan.nodes[0].corrupt_sample_p = 0.3;

  auto run_once = [&] {
    inj::FaultInjector injector(plan);
    auto node = injector.wrap_node(
        0, std::make_unique<runtime::ScpManagedSystem>(sim_config()));
    node->step_to(43200.0);
    return std::make_tuple(node->trace().samples().size(),
                           injector.stats().samples_dropped,
                           injector.stats().samples_corrupted);
  };

  const auto [kept, dropped, corrupted] = run_once();
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(corrupted, 0u);

  auto bare = std::make_unique<runtime::ScpManagedSystem>(sim_config());
  bare->step_to(43200.0);
  EXPECT_EQ(kept + dropped, bare->trace().samples().size());
  // Events and failures pass through unfiltered.
  // Same (seed, plan) => same faults, draw for draw.
  const auto [kept2, dropped2, corrupted2] = run_once();
  EXPECT_EQ(kept, kept2);
  EXPECT_EQ(dropped, dropped2);
  EXPECT_EQ(corrupted, corrupted2);
}

TEST(Injection, CorruptedSamplesBecomeNaN) {
  inj::FaultPlan plan;
  plan.nodes[0].corrupt_sample_p = 1.0;
  inj::FaultInjector injector(plan);
  auto node = injector.wrap_node(
      0, std::make_unique<runtime::ScpManagedSystem>(sim_config()));
  node->step_to(1800.0);
  const auto samples = node->trace().samples();
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    for (double v : s.values) EXPECT_TRUE(std::isnan(v));
  }
}

TEST(Injection, PredictorFaultsThrowOrDenormalizeScores) {
  const auto idx = pressure_index();
  auto inner = std::make_shared<PressurePredictor>(idx);

  inj::FaultPlan nan_plan;
  nan_plan.predictors[0].nan_p = 1.0;
  inj::FaultInjector nan_injector(nan_plan);
  auto nan_pred = nan_injector.wrap_symptom_predictor(0, inner);

  auto system = std::make_unique<runtime::ScpManagedSystem>(sim_config());
  system->step_to(1800.0);
  const auto ctx = system->symptom_context(20);
  EXPECT_TRUE(std::isnan(nan_pred->score(ctx)));
  EXPECT_EQ(nan_injector.stats().predictor_nans, 1u);

  inj::FaultPlan throw_plan;
  throw_plan.predictors[0].throw_p = 1.0;
  inj::FaultInjector throw_injector(throw_plan);
  auto throw_pred = throw_injector.wrap_symptom_predictor(0, inner);
  EXPECT_THROW(throw_pred->score(ctx), inj::PredictorFaultError);
  EXPECT_EQ(throw_injector.stats().predictor_throws, 1u);

  // Training through a wrapper is a wiring mistake.
  mon::MonitoringDataset empty;
  auto mutable_pred = std::make_shared<inj::FaultySymptomPredictor>(
      inner, 0, inj::FaultPlan{});
  EXPECT_THROW(mutable_pred->train(empty), std::logic_error);
}

TEST(Injection, ActionFailsOutrightOrAfterPartialCompletion) {
  auto system = std::make_unique<runtime::ScpManagedSystem>(sim_config());
  system->step_to(600.0);
  std::size_t executions = 0;

  inj::FaultPlan outright;
  outright.actions[0].fail_p = 1.0;
  inj::FaultInjector outright_injector(outright);
  auto factory = outright_injector.wrap_action_factory(
      0, [&] { return std::make_unique<CountingAction>(&executions); });
  auto action = factory();
  EXPECT_THROW(action->execute(*system, 0.9), inj::ActionFaultError);
  EXPECT_EQ(executions, 0u) << "outright failure must not touch the system";

  inj::FaultPlan partial;
  partial.actions[0].partial_p = 1.0;
  inj::FaultInjector partial_injector(partial);
  auto partial_factory = partial_injector.wrap_action_factory(
      0, [&] { return std::make_unique<CountingAction>(&executions); });
  auto partial_action = partial_factory();
  EXPECT_THROW(partial_action->execute(*system, 0.9), inj::ActionFaultError);
  EXPECT_EQ(executions, 1u) << "partial completion does the work, loses the ack";
  EXPECT_EQ(partial_injector.stats().action_failures, 1u);
}

// --- fleet-level determinism ------------------------------------------------

struct InjectedRun {
  runtime::FleetTelemetry telemetry;
  inj::InjectionStats injected;
  std::vector<core::SystemStats> per_node;
  std::vector<bool> quarantined;
};

/// A deliberately hostile scenario: one crash, one hang, NaN-prone and
/// throwing predictors, flaky actions, dropped samples everywhere.
inj::FaultPlan hostile_plan() {
  inj::FaultPlan plan;
  plan.seed = 1234;
  plan.nodes[1].crash_at = 10800.0;
  plan.nodes[2].hang_at = 7200.0;
  plan.nodes[2].hang_steps = 8;  // long enough to trip the stall detector
  plan.default_node.drop_sample_p = 0.05;
  plan.predictors[0].nan_p = 0.02;
  plan.predictors[1].throw_p = 0.01;
  plan.actions[0].fail_p = 0.3;
  plan.actions[0].partial_p = 0.2;
  return plan;
}

InjectedRun run_injected_fleet(std::size_t num_threads) {
  const std::size_t kNodes = 8;
  const auto idx = pressure_index();

  inj::FaultInjector injector(hostile_plan());
  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.mea.action_cooldown = 600.0;
  cfg.mea.retry.max_attempts = 3;
  cfg.mea.retry.backoff_initial = 120.0;
  cfg.num_threads = num_threads;

  runtime::FleetController fleet(
      injector.wrap_fleet(runtime::make_scp_fleet(sim_config(), kNodes)), cfg);
  fleet.add_symptom_predictor(injector.wrap_symptom_predictor(
      0, std::make_shared<PressurePredictor>(idx)));
  fleet.add_symptom_predictor(injector.wrap_symptom_predictor(
      1, std::make_shared<PressurePredictor>(idx)));
  fleet.add_action(injector.wrap_action_factory(0, [] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  }));
  fleet.add_action(injector.wrap_action_factory(1, [] {
    return std::make_unique<act::PreparedRepairAction>(1800.0);
  }));

  fleet.run();  // must not throw, whatever the plan does

  InjectedRun out;
  out.telemetry = fleet.telemetry();
  out.injected = injector.stats();
  for (std::size_t i = 0; i < kNodes; ++i) {
    out.per_node.push_back(fleet.node(i).system_stats());
    out.quarantined.push_back(fleet.node_quarantined(i));
  }
  return out;
}

TEST(Injection, HostilePlanCompletesAndIsBitIdenticalAcrossThreadCounts) {
  const auto t1 = run_injected_fleet(1);
  const auto t2 = run_injected_fleet(2);
  const auto t8 = run_injected_fleet(8);

  // The run actually exercised the fault paths.
  EXPECT_GT(t1.injected.total(), 0u);
  EXPECT_EQ(t1.injected.node_crashes, 1u);
  EXPECT_GT(t1.injected.node_hangs, 0u);
  EXPECT_GT(t1.injected.samples_dropped, 0u);
  EXPECT_GE(t1.telemetry.resilience.nodes_quarantined, 2u)
      << "crashed + stalled nodes must both be quarantined";
  EXPECT_LT(t1.telemetry.resilience.nodes_quarantined, 8u)
      << "the rest of the fleet must keep running";

  for (const auto* other : {&t2, &t8}) {
    EXPECT_EQ(t1.telemetry.rounds, other->telemetry.rounds);
    EXPECT_EQ(t1.telemetry.scores_computed, other->telemetry.scores_computed);
    EXPECT_EQ(t1.telemetry.warnings_raised, other->telemetry.warnings_raised);
    EXPECT_EQ(t1.telemetry.resilience.node_faults,
              other->telemetry.resilience.node_faults);
    EXPECT_EQ(t1.telemetry.resilience.nodes_quarantined,
              other->telemetry.resilience.nodes_quarantined);
    EXPECT_EQ(t1.telemetry.resilience.stall_detections,
              other->telemetry.resilience.stall_detections);
    EXPECT_EQ(t1.telemetry.resilience.predictor_faults,
              other->telemetry.resilience.predictor_faults);
    EXPECT_EQ(t1.telemetry.resilience.breaker_trips,
              other->telemetry.resilience.breaker_trips);
    EXPECT_EQ(t1.telemetry.resilience.scores_sanitized,
              other->telemetry.resilience.scores_sanitized);
    EXPECT_EQ(t1.telemetry.mea.action_retries,
              other->telemetry.mea.action_retries);
    EXPECT_EQ(t1.telemetry.mea.action_faults,
              other->telemetry.mea.action_faults);
    EXPECT_EQ(t1.telemetry.mea.actions_abandoned,
              other->telemetry.mea.actions_abandoned);
    EXPECT_EQ(t1.injected.total(), other->injected.total());
    EXPECT_EQ(t1.injected.samples_dropped, other->injected.samples_dropped);
    EXPECT_EQ(t1.injected.predictor_nans, other->injected.predictor_nans);
    EXPECT_EQ(t1.injected.action_failures, other->injected.action_failures);
    for (std::size_t i = 0; i < t1.per_node.size(); ++i) {
      EXPECT_EQ(t1.quarantined[i], other->quarantined[i]) << "node " << i;
      EXPECT_EQ(t1.per_node[i].total_requests,
                other->per_node[i].total_requests)
          << "node " << i;
      EXPECT_DOUBLE_EQ(t1.per_node[i].downtime, other->per_node[i].downtime)
          << "node " << i;
      EXPECT_DOUBLE_EQ(t1.per_node[i].simulated, other->per_node[i].simulated)
          << "node " << i;
    }
  }
}

}  // namespace
}  // namespace pfm
