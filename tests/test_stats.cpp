#include "numerics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace pfm::num {
namespace {

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 10.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), mean(v));
  EXPECT_NEAR(rs.variance(), variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 10.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  const std::vector<double> a{1.0, 5.0, 2.0};
  const std::vector<double> b{7.0, -3.0, 4.0, 9.0};
  RunningStats ra, rb, rall;
  for (double x : a) {
    ra.add(x);
    rall.add(x);
  }
  for (double x : b) {
    rb.add(x);
    rall.add(x);
  }
  ra.merge(rb);
  EXPECT_EQ(ra.count(), rall.count());
  EXPECT_NEAR(ra.mean(), rall.mean(), 1e-12);
  EXPECT_NEAR(ra.variance(), rall.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(ra.min(), rall.min());
  EXPECT_DOUBLE_EQ(ra.max(), rall.max());
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Stats, MeanVarianceOfKnownData) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Quantile, InterpolatesCorrectly) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // sorted: 1,2,3,4
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.5), std::invalid_argument);
}

TEST(Pearson, PerfectAndAnti) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
  const std::vector<double> c{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(FitLine, RecoversLinearRelation) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * xi - 1.0);
  const auto f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, -1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitLine, ConstantXGivesZeroSlope) {
  const std::vector<double> x{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  const auto f = fit_line(x, y);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(FitLine, ErrorsOnBadInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(fit_line(one, one), std::invalid_argument);
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW(fit_line(x, one), std::invalid_argument);
}

TEST(FeatureScaler, ScalesToUnitRangeAndHandlesConstants) {
  // Two columns: [0..10] and constant 7.
  std::vector<double> data;
  for (int i = 0; i <= 10; ++i) {
    data.push_back(static_cast<double>(i));
    data.push_back(7.0);
  }
  FeatureScaler sc;
  sc.fit(data, 2);
  std::vector<double> row{5.0, 7.0};
  sc.transform(row);
  EXPECT_NEAR(row[0], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(row[1], 0.5);  // constant column maps to midpoint

  std::vector<double> bad{1.0};
  EXPECT_THROW(sc.transform(bad), std::invalid_argument);
}

TEST(FeatureScaler, UnfittedThrows) {
  FeatureScaler sc;
  std::vector<double> row{1.0};
  EXPECT_THROW(sc.transform(row), std::invalid_argument);
  EXPECT_THROW(sc.fit(std::vector<double>{1.0, 2.0, 3.0}, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace pfm::num
