// lockdiscipline fixture: guarded accesses with and without the lock,
// a double acquisition, and an analysis-exempt reader.
#include "runtime/guarded.hpp"

namespace pfm::runtime {

void GuardedCounter::bump() {
  MutexLock lock(mu_);
  ++count_;
}

std::size_t GuardedCounter::read_unlocked() const {
  return count_;
}

std::size_t GuardedCounter::read_locked() const {
  MutexLock lock(mu_);
  return count_;
}

void GuardedCounter::bump_locked_caller() {
  ++count_;
}

void GuardedCounter::double_lock() {
  MutexLock outer(mu_);
  MutexLock inner(mu_);
  ++count_;
}

std::size_t GuardedCounter::read_exempt() const PFM_NO_THREAD_SAFETY_ANALYSIS {
  return count_;
}

}  // namespace pfm::runtime
