// lockdiscipline fixture: a PFM_GUARDED_BY field, its capability, and
// annotated accessors (the prototypes carry attributes for the
// out-of-line definitions).
#pragma once

#include <cstddef>

namespace pfm::runtime {

class GuardedCounter {
 public:
  void bump();
  std::size_t read_unlocked() const;
  std::size_t read_locked() const;
  void bump_locked_caller() PFM_REQUIRES(mu_);
  void double_lock();
  std::size_t read_exempt() const PFM_NO_THREAD_SAFETY_ANALYSIS;

 private:
  mutable Mutex mu_;
  std::size_t count_ PFM_GUARDED_BY(mu_) = 0;
};

}  // namespace pfm::runtime
