#include "telecom/simulator.hpp"
#include "prediction/predictor.hpp"

// Fixture: the shard controller's file-prefix contract — shards must
// stay simulator-agnostic, so the telecom include on line 1 is
// forbidden for src/runtime/shard.* (while plain runtime files may
// include telecom); prediction (line 2) stays allowed.
int runtime_shard_fixture() { return 0; }
