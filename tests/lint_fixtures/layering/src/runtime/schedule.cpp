#include "prediction/predictor.hpp"

// Fixture: the scheduler core under its stricter file-prefix contract —
// src/runtime/schedule.* may include nothing outside runtime/, so the
// prediction include on line 1 is forbidden here even though the
// runtime module at large is allowed to depend on prediction.
int runtime_schedule_fixture() { return 0; }
