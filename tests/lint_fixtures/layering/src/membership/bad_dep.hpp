#pragma once
#include "telecom/node.hpp"
#include "core/mea.hpp"

// Fixture: membership is a plan vocabulary over the ManagedSystem
// contract — the membership -> telecom include on line 2 is forbidden
// (churn plans must stay simulator-agnostic); core (line 3) is allowed.
