#pragma once
#include "telecom/node.hpp"
#include "numerics/stats.hpp"

// Fixture: the observer reaching back into an observed layer — the
// obs -> telecom include on line 2 is forbidden; numerics (line 3) is
// the one dependency obs is allowed.
