#pragma once

#include "monitoring/types.hpp"

// Fixture: numerics must be a leaf — the include on line 3 is forbidden.
inline int numerics_bad_leaf() { return 1; }
