#include "telecom/node.hpp"
#include "runtime/fleet.hpp"
#include "monitoring/types.hpp"

// Fixture: core reaching into telecom/ (line 1) and runtime/ (line 2) —
// both forbidden; monitoring (line 3) is allowed.
int core_bad_include() { return 0; }
