#pragma once

// Fixture: a module that is not in the dependency policy — flagged at
// line 1 until allowed_deps() is extended deliberately.
inline int widgets_unregistered() { return 2; }
