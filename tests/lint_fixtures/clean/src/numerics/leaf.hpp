#pragma once

// Fixture: a numerics leaf with no project includes — passes every rule.
namespace fixture {
inline double half(double x) { return 0.5 * x; }
}  // namespace fixture
