#pragma once

#include "monitoring/types.hpp"
#include "numerics/leaf.hpp"

// Fixture: core binding only its allowed dependencies; the string below
// must not trip the determinism rule (literals are stripped).
namespace fixture {
struct Ok {
  double value = 0.0;
  const char* note = "calling rand() in a string literal is fine";
};
}  // namespace fixture
