// A hot path done right: caller-owned scratch, a pfm-cold slow path
// bounding the closure, and no allocation in the closure itself.
#include <vector>

namespace pfm::runtime {

// pfm-cold
[[noreturn]] void fail_fast() { throw 1; }

void advance(std::vector<double>& scratch) {
  scratch.clear();
  scratch.push_back(1.0);
}

// pfm-hot
void tick(std::vector<double>& scratch, bool ok) {
  if (!ok) fail_fast();
  advance(scratch);
}

}  // namespace pfm::runtime
