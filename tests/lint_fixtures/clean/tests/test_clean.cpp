#include <map>

// Fixture: ordered containers and value keys are always fine.
int main() {
  std::map<int, int> m;
  m[1] = 2;
  return static_cast<int>(m.size()) - 1;
}
