// hotpath fixture: one annotated entry point, a two-hop helper
// chain, and a pfm-cold slow path bounding the closure.
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace pfm::runtime {

void helper_b() {
  std::vector<int> scratch{1, 2, 3};
  (void)scratch;
}

void helper_a() {
  std::printf("advance\n");
  helper_b();
}

// pfm-cold
void cold_handler() {
  std::string reason = "slow path";
  throw reason;
}

// pfm-hot
void tick(std::mutex& mu, bool fail) {
  std::string label("round");
  std::lock_guard<std::mutex> hold(mu);
  if (fail) cold_handler();
  if (!fail) throw 42;
  helper_a();
}

}  // namespace pfm::runtime
