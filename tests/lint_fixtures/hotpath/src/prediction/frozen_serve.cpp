// hotpath fixture: the SIMD-sweep + frozen-serve shapes. The batch
// entry point is hot, its lane helper is reached transitively, and the
// only legal throw is hoisted behind a pfm-cold [[noreturn]] helper.
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace pfm::pred {

// pfm-cold
[[noreturn]] void throw_serve_size_mismatch() {
  throw std::invalid_argument("score_batch: contexts/out size mismatch");
}

void mixture_sweep(const double* x, double* out, std::size_t n) {
  std::vector<double> lanes(4, 0.0);
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] + lanes[0];
}

// pfm-hot
void frozen_score_batch(const double* x, double* out, std::size_t n,
                        std::size_t out_n) {
  if (n != out_n) throw_serve_size_mismatch();
  std::string label("serve");
  mixture_sweep(x, out, n);
}

}  // namespace pfm::pred
