#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_map>

struct Obs {};

// Fixture: every banned entropy source, one per line (11-14).
double bad_entropy() {
  std::srand(42);
  double x = static_cast<double>(std::rand());
  std::random_device rd;
  auto t = std::chrono::system_clock::now();
  (void)t;
  return x + static_cast<double>(rd());
}

// Fixture: an address-keyed map (line 22) and iteration over an
// unordered container in a reduce (declared line 23, iterated line 25).
double bad_reduce() {
  std::map<const Obs*, double> weights;
  std::unordered_map<int, double> scores;
  double sum = 0.0;
  for (const auto& entry : scores) sum += entry.second;
  return sum + static_cast<double>(weights.size());
}
