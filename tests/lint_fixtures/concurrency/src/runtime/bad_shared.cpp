#include <cstddef>

// Fixture: a mutable function-local static shared by every thread
// (line 7), a catch-all outside the ThreadPool capture sites (line 14),
// and volatile pressed into service as a sync primitive (line 19).
std::size_t next_id() {
  static std::size_t counter = 0;
  return ++counter;
}

int swallow() {
  try {
    return next_id() > 0 ? 1 : 0;
  } catch (...) {
    return -1;
  }
}

volatile int g_flag = 0;

// Raw threading primitives outside the pool: a detached std::thread
// (23), a condition_variable member (24), a std::async launch (25).
void spawn() { std::thread([] { return 1; }).detach(); }
struct Waiter { std::condition_variable cv; };
auto sneak_off_pool() { return std::async([] { return 2; }); }
