// walltaint fixture: wall-clock-derived values flowing into sim-time
// instruments and trace emission; the kWall histogram is exempt.
#include <chrono>

namespace pfm::obs {

using WallClock = std::chrono::steady_clock;

struct WallTaintRecorder {
  void configure(Registry& registry) {
    rounds_gauge_ = registry.gauge("rounds");
    wall_hist_ = registry.histogram("latency_seconds");
    sim_hist_ = registry.histogram("rounds_per_epoch", Clock::kSim);
  }

  double wall_seconds() const {
    const auto start = WallClock::now();
    return std::chrono::duration<double>(WallClock::now() - start).count();
  }

  void flush(double sim_now) {
    const double elapsed = wall_seconds();
    rounds_gauge_->set(elapsed);
    wall_hist_->observe(elapsed);
    sim_hist_->observe(elapsed);
    record_instant(tracer_, elapsed);
    double boundary = sim_now;
    boundary = elapsed;
    span_.set_sim_end(boundary);
    rounds_gauge_->set(sim_now);
  }

  Gauge* rounds_gauge_ = nullptr;
  Histogram* wall_hist_ = nullptr;
  Histogram* sim_hist_ = nullptr;
  Tracer* tracer_ = nullptr;
  Span span_;
};

}  // namespace pfm::obs
