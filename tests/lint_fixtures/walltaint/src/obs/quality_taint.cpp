// walltaint fixture: wall-clock scrape cost leaking into the online
// quality scoreboard's sim-time gauges and trace; the kWall gauge is
// exempt.
#include <chrono>

namespace pfm::obs {

using QualityClock = std::chrono::steady_clock;

struct QualityTaintScoreboard {
  void configure(Registry& registry) {
    precision_gauge_ = registry.gauge("pfm_quality_precision");
    drift_gauge_ = registry.gauge("pfm_quality_availability_drift");
    scrape_gauge_ = registry.gauge("pfm_quality_scrape_seconds", Clock::kWall);
  }

  double scrape_seconds() const {
    const auto begin = QualityClock::now();
    return std::chrono::duration<double>(QualityClock::now() - begin).count();
  }

  void refresh(double windowed_precision, double model_availability) {
    const double cost = scrape_seconds();
    precision_gauge_->set(cost);
    scrape_gauge_->set(cost);
    double drift = model_availability;
    drift = cost;
    drift_gauge_->set(drift);
    record_instant(tracer_, cost);
    precision_gauge_->set(windowed_precision);
  }

  Gauge* precision_gauge_ = nullptr;
  Gauge* drift_gauge_ = nullptr;
  Gauge* scrape_gauge_ = nullptr;
  Tracer* tracer_ = nullptr;
};

}  // namespace pfm::obs
