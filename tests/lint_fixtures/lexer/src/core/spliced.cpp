// lexer fixture: backslash-spliced comments and prefixed raw strings
// must stay comments/strings; exactly one real violation remains.
namespace pfm::core {

// a spliced comment swallows the next physical line \
volatile int hidden = 0;

const char* r1 = R"(volatile rand() system_clock)";
const char* r2 = u8R"x(catch (...) mutable static)x";
const char* r3 = LR"(std::thread worker;)";

void poll() {
  volatile int real_flag = 0;
  (void)real_flag;
}

}  // namespace pfm::core
