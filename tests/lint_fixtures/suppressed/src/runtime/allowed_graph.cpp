// The graph-aware families honor the same suppression comments: inline
// allow, allow on the preceding line, and allow-file (next file over).
#include <chrono>
#include <string>

namespace pfm::runtime {

using WallClock = std::chrono::steady_clock;

// pfm-hot
void tick() {
  std::string label("round");  // pfm-lint: allow(hotpath) — setup label
  // pfm-lint: allow(hotpath) — slow path pinned by a fixture
  throw 1;
}

void flush(Tracer* tracer) {
  const double wall = WallClock::now().time_since_epoch().count();
  record_instant(tracer, wall);  // pfm-lint: allow(walltaint) — fixture
}

}  // namespace pfm::runtime
