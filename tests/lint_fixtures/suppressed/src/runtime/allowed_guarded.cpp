// lockdiscipline suppression: allow-file disables the rule here.
// pfm-lint: allow-file(lockdiscipline)
namespace pfm::runtime {

class Tally {
 public:
  int read() const { return count_; }

 private:
  mutable Mutex mu_;
  int count_ PFM_GUARDED_BY(mu_) = 0;
};

}  // namespace pfm::runtime
