#include "telecom/node.hpp"  // pfm-lint: allow(layering) fixture: inline suppression

#include <cstdlib>

// pfm-lint: allow(concurrency)
volatile int suppressed_flag = 0;

// pfm-lint: allow-file(determinism)
int suppressed_entropy() {
  return std::rand();
}

// pfm-lint: allow(concurrency)
int* raw_thread_shape() {
  static std::thread* owned = nullptr;  // pfm-lint: allow(concurrency)
  return nullptr;
}
