// Conformance and determinism suite of the sharded event-driven fleet
// runtime (DESIGN.md §10):
//  - core::ShardLayout partitions and (shard, local) addressing;
//  - keyed injection decision streams are invariant under re-batching;
//  - dense schedule + one shard + epoch_ticks 1 reproduces the lockstep
//    scheduler's sim-time exports byte for byte, clean and hostile;
//  - adaptive sharded runs replay bit-identically across thread counts
//    and across repeated runs, per shard count;
//  - epochs / node_steps telemetry semantics (satellite of the same PR).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/sharding.hpp"
#include "injection/injector.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "prediction/baselines.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"
#include "telecom/simulator.hpp"

namespace pfm {
namespace {

// --- ShardLayout ------------------------------------------------------------

TEST(ShardLayout, BlocksPartitionTheFleetWithSizesDifferingByAtMostOne) {
  for (std::size_t nodes : {1u, 7u, 16u, 100u, 101u}) {
    for (std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
      if (shards > nodes) continue;
      core::ShardLayout layout(nodes, shards);
      std::size_t covered = 0;
      std::size_t min_size = nodes, max_size = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(layout.begin(s), covered);
        covered += layout.size(s);
        min_size = std::min(min_size, layout.size(s));
        max_size = std::max(max_size, layout.size(s));
      }
      EXPECT_EQ(covered, nodes);
      EXPECT_LE(max_size - min_size, 1u);
      for (std::size_t node = 0; node < nodes; ++node) {
        const std::size_t s = layout.shard_of(node);
        EXPECT_GE(node, layout.begin(s));
        EXPECT_LT(node, layout.end(s));
        EXPECT_EQ(layout.global_index(s, layout.local_index(node)), node);
      }
    }
  }
}

TEST(ShardLayout, RejectsBadLayoutsAndAddresses) {
  EXPECT_THROW(core::ShardLayout(4, 0), std::invalid_argument);
  EXPECT_THROW(core::ShardLayout(3, 4), std::invalid_argument);
  core::ShardLayout layout(10, 3);
  EXPECT_THROW(layout.global_index(3, 0), std::out_of_range);
  EXPECT_THROW(layout.global_index(0, 99), std::out_of_range);
  EXPECT_THROW(layout.shard_of(10), std::out_of_range);
}

TEST(ShardLayout, FaultPlanShardAddressingTargetsTheGlobalNode) {
  core::ShardLayout layout(10, 3);  // blocks: [0,3) [3,6) [6,10)
  inj::FaultPlan plan;
  plan.node_at(layout, 1, 2).crash_at = 123.0;
  EXPECT_EQ(plan.nodes.at(5).crash_at, 123.0);
  EXPECT_EQ(plan.node_spec(layout, 1, 2).crash_at, 123.0);
  EXPECT_THROW(plan.node_at(layout, 2, 4), std::out_of_range);
}

// --- keyed decision streams --------------------------------------------------

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Constant-score predictor: isolates the injection wrapper's rolls.
class HalfPredictor final : public pred::SymptomPredictor {
 public:
  std::string name() const override { return "half"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext&) const override { return 0.5; }
};

/// The faulty-predictor rolls are keyed per item (origin, ordinal), so
/// re-batching — scoring the same items in different groupings and
/// orders, as different shard counts do — must reproduce every per-item
/// outcome bit for bit.
TEST(ShardInjection, KeyedPredictorRollsAreInvariantUnderRebatching) {
  inj::FaultPlan plan;
  plan.seed = 99;
  plan.predictors[0].nan_p = 0.3;
  plan.predictors[0].inf_p = 0.1;
  inj::FaultySymptomPredictor faulty(std::make_shared<HalfPredictor>(), 0,
                                     plan);

  // 64 distinct item identities (origin, ordinal).
  std::vector<pred::SymptomContext> items(64);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].origin = i % 16;
    items[i].ordinal = 1 + i / 16;
  }

  std::vector<double> whole(items.size());
  faulty.score_batch(items, whole);

  // Two shards' worth of batches, then a reversed order.
  std::vector<double> split(items.size());
  faulty.score_batch(std::span(items).subspan(0, 40),
                     std::span(split).subspan(0, 40));
  faulty.score_batch(std::span(items).subspan(40),
                     std::span(split).subspan(40));
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(bits(whole[i]), bits(split[i])) << "item " << i;
  }

  std::vector<pred::SymptomContext> reversed(items.rbegin(), items.rend());
  std::vector<double> rev_out(items.size());
  faulty.score_batch(reversed, rev_out);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(bits(whole[i]), bits(rev_out[items.size() - 1 - i]))
        << "item " << i;
  }

  // And the rolls really fired: some scores must differ from 0.5.
  EXPECT_TRUE(std::any_of(whole.begin(), whole.end(),
                          [](double v) { return v != 0.5; }));
}

// --- fleet-level conformance -------------------------------------------------

constexpr double kDuration = 0.25 * 86400.0;

pred::WindowGeometry geometry() { return {600.0, 300.0, 300.0}; }

/// Cheap predictor pair trained once per process (the arena-heavy UBF
/// path is pinned by test_fleet_conformance; this suite exercises the
/// scheduler, not the kernels).
struct Ensemble {
  std::shared_ptr<const pred::SymptomPredictor> trend;
  std::shared_ptr<const pred::EventPredictor> eventset;
};

const Ensemble& ensemble() {
  static const Ensemble shared = [] {
    telecom::SimConfig cfg;
    cfg.seed = 5;
    cfg.duration = 2.0 * 86400.0;
    telecom::ScpSimulator sim(cfg);
    sim.run();
    const auto trace = sim.take_trace();
    const auto g = geometry();

    auto trend = std::make_shared<pred::TrendPredictor>(g);
    trend->train(trace);
    auto eventset = std::make_shared<pred::EventsetPredictor>();
    eventset->train(trace.failure_sequences(g.data_window, g.lead_time),
                    trace.nonfailure_sequences(g.data_window, g.lead_time,
                                               g.prediction_window, 300.0));
    Ensemble out;
    out.trend = std::move(trend);
    out.eventset = std::move(eventset);
    return out;
  }();
  return shared;
}

inj::FaultPlan hostile_plan() {
  inj::FaultPlan plan;
  plan.seed = 77;
  plan.nodes[1].crash_at = 10000.0;
  plan.nodes[2].hang_at = 6000.0;
  plan.nodes[2].hang_steps = 5;
  plan.default_node.drop_sample_p = 0.03;
  plan.default_node.corrupt_sample_p = 0.02;
  plan.predictors[0].nan_p = 0.05;
  plan.predictors[0].throw_p = 0.02;
  plan.actions[0].fail_p = 0.3;
  return plan;
}

/// Everything observable about one fleet run except wall time.
struct Artifacts {
  std::string prometheus;
  std::string trace_json;
  std::string json_line;
  std::uint64_t dropped = 0;
  std::size_t rounds = 0;
  std::size_t epochs = 0;
  std::size_t node_steps = 0;
  std::size_t scores = 0;
  std::size_t warnings = 0;
  std::size_t quarantined = 0;
  std::size_t breaker_trips = 0;
  std::size_t total_actions = 0;
  double downtime = 0.0;
  double simulated = 0.0;
  std::vector<std::size_t> node_warnings;
  std::vector<bool> node_quarantined;
  std::vector<std::string> node_reason;
};

struct RunSpec {
  std::size_t nodes = 6;
  std::size_t threads = 1;
  runtime::FleetScheduler scheduler = runtime::FleetScheduler::kEventDriven;
  std::size_t num_shards = 1;
  std::size_t epoch_ticks = 1;
  bool adaptive = false;
  bool hostile = false;
};

Artifacts run_fleet(const RunSpec& spec) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = spec.threads;
  ocfg.trace_capacity = 1 << 16;
  obs::Observability hub(ocfg);

  telecom::SimConfig sim;
  sim.seed = 21;
  sim.duration = kDuration;
  sim.leak_mtbf = 21600.0;  // enough pressure to raise warnings

  runtime::FleetConfig cfg;
  cfg.mea.windows = geometry();
  cfg.mea.warning_threshold = 0.6;
  cfg.mea.action_cooldown = 600.0;
  cfg.mea.retry.max_attempts = 3;
  cfg.mea.retry.backoff_initial = 120.0;
  cfg.num_threads = spec.threads;
  cfg.scheduler = spec.scheduler;
  cfg.num_shards = spec.num_shards;
  cfg.epoch_ticks = spec.epoch_ticks;
  cfg.schedule.adaptive = spec.adaptive;
  cfg.obs = &hub;

  const auto& e = ensemble();
  auto nodes = runtime::make_scp_fleet(sim, spec.nodes);

  inj::FaultInjector injector(hostile_plan());
  injector.set_observability(&hub);

  auto make_cleanup = [] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  };
  auto make_repair = [] {
    return std::make_unique<act::PreparedRepairAction>(1800.0);
  };

  runtime::FleetController fleet(
      spec.hostile ? injector.wrap_fleet(std::move(nodes)) : std::move(nodes),
      cfg);
  if (spec.hostile) {
    fleet.add_symptom_predictor(injector.wrap_symptom_predictor(0, e.trend));
    fleet.add_event_predictor(injector.wrap_event_predictor(0, e.eventset));
    fleet.add_action(injector.wrap_action_factory(0, make_cleanup));
    fleet.add_action(injector.wrap_action_factory(1, make_repair));
  } else {
    fleet.add_symptom_predictor(e.trend);
    fleet.add_event_predictor(e.eventset);
    fleet.add_action(make_cleanup);
    fleet.add_action(make_repair);
  }
  fleet.run();

  Artifacts out;
  out.prometheus = obs::prometheus_text(hub.metrics(), /*include_wall=*/false);
  out.trace_json = obs::chrome_trace_json(hub.trace(), /*include_wall=*/false);
  out.json_line = obs::metrics_json_line(hub.metrics(), /*include_wall=*/false);
  out.dropped = hub.trace().dropped();
  const auto t = fleet.telemetry();
  out.rounds = t.rounds;
  out.epochs = t.epochs;
  out.node_steps = t.node_steps;
  out.scores = t.scores_computed;
  out.warnings = t.warnings_raised;
  out.quarantined = t.resilience.nodes_quarantined;
  out.breaker_trips = t.resilience.breaker_trips;
  out.total_actions = t.mea.total_actions();
  out.downtime = t.system.downtime;
  out.simulated = t.system.simulated;
  for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
    out.node_warnings.push_back(fleet.node_mea_stats(i).warnings);
    out.node_quarantined.push_back(fleet.node_quarantined(i));
    out.node_reason.push_back(fleet.node_quarantine_reason(i));
  }
  return out;
}

void expect_identical(const Artifacts& a, const Artifacts& b) {
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.json_line, b.json_line);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.node_steps, b.node_steps);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.total_actions, b.total_actions);
  EXPECT_EQ(bits(a.downtime), bits(b.downtime));
  EXPECT_EQ(bits(a.simulated), bits(b.simulated));
  EXPECT_EQ(a.node_warnings, b.node_warnings);
  EXPECT_EQ(a.node_quarantined, b.node_quarantined);
  EXPECT_EQ(a.node_reason, b.node_reason);
}

/// The byte-identity contract: a dense single-shard event-driven fleet
/// with epoch_ticks 1 is indistinguishable from the lockstep scheduler
/// in every sim-time export — clean and under a hostile fault plan.
void run_lockstep_equivalence(bool hostile) {
  RunSpec lockstep;
  lockstep.scheduler = runtime::FleetScheduler::kLockstep;
  lockstep.hostile = hostile;
  const auto canonical = run_fleet(lockstep);
  ASSERT_EQ(canonical.dropped, 0u);
  EXPECT_GT(canonical.rounds, 0u);
  EXPECT_GT(canonical.warnings, 0u) << "scenario too tame to exercise Act";
  EXPECT_EQ(canonical.epochs, canonical.rounds) << "lockstep: epoch == round";
  if (hostile) {
    EXPECT_GT(canonical.quarantined, 0u) << "plan injected no node faults";
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    SCOPED_TRACE(std::string(hostile ? "hostile" : "clean") +
                 " event-driven threads=" + std::to_string(threads));
    RunSpec event = lockstep;
    event.scheduler = runtime::FleetScheduler::kEventDriven;
    event.threads = threads;
    const auto run = run_fleet(event);
    ASSERT_EQ(run.dropped, 0u);
    expect_identical(canonical, run);
  }
}

TEST(FleetShard, DenseSingleShardIsByteIdenticalToLockstepClean) {
  run_lockstep_equivalence(/*hostile=*/false);
}

TEST(FleetShard, DenseSingleShardIsByteIdenticalToLockstepHostile) {
  run_lockstep_equivalence(/*hostile=*/true);
}

/// Larger epochs only batch the barrier: the dense single-shard schedule
/// computes the same rounds, scores and warnings, with fewer epochs.
TEST(FleetShard, EpochSizeTradesBarriersNotResults) {
  RunSpec tick1;
  const auto a = run_fleet(tick1);
  RunSpec tick8 = tick1;
  tick8.epoch_ticks = 8;
  const auto b = run_fleet(tick8);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.node_steps, b.node_steps);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.node_warnings, b.node_warnings);
  EXPECT_LT(b.epochs, a.epochs);
  EXPECT_EQ(a.trace_json, b.trace_json) << "spans carry no epoch structure";
}

/// The replay matrix: for every shard count, adaptive sharded runs are
/// bit-identical across thread counts and across repeated runs — clean
/// and hostile. (Results legitimately depend on the shard count: shards
/// score their own batches and keep their own breaker banks.)
void run_replay_matrix(bool hostile) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    RunSpec spec;
    spec.nodes = 16;
    spec.num_shards = shards;
    spec.epoch_ticks = 4;
    spec.adaptive = true;
    spec.hostile = hostile;
    const auto canonical = run_fleet(spec);
    ASSERT_EQ(canonical.dropped, 0u);
    EXPECT_GT(canonical.rounds, 0u);
    if (hostile) {
      EXPECT_GT(canonical.quarantined, 0u) << "plan injected no node faults";
    }
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      SCOPED_TRACE(std::string(hostile ? "hostile" : "clean") + " shards=" +
                   std::to_string(shards) + " threads=" +
                   std::to_string(threads));
      RunSpec repeat = spec;
      repeat.threads = threads;
      const auto run = run_fleet(repeat);
      ASSERT_EQ(run.dropped, 0u);
      expect_identical(canonical, run);
    }
  }
}

TEST(FleetShard, AdaptiveShardedRunsReplayAcrossThreadCountsClean) {
  run_replay_matrix(/*hostile=*/false);
}

TEST(FleetShard, AdaptiveShardedRunsReplayAcrossThreadCountsHostile) {
  run_replay_matrix(/*hostile=*/true);
}

// --- telemetry accounting (epochs / node_steps semantics) --------------------

/// Deterministic stub with a controllable SchedulingHint: quiet low
/// pressure, never fails — the adaptive scheduler should back it off.
class QuietStub final : public core::ManagedSystem {
 public:
  QuietStub(std::string name, double horizon, double urgency)
      : name_(std::move(name)),
        horizon_(horizon),
        urgency_(urgency),
        trace_(mon::SymptomSchema({"pressure"})) {}

  std::string name() const override { return name_; }
  double now() const override { return now_; }
  double horizon() const override { return horizon_; }
  bool finished() const override { return now_ >= horizon_; }
  void step_to(double t) override {
    t = std::min(t, horizon_);
    if (t <= now_) return;
    now_ = t;
    trace_.add_sample({now_, {0.1}});
  }
  const mon::MonitoringDataset& trace() const override { return trace_; }
  core::SchedulingHint scheduling_hint() const override {
    return core::SchedulingHint{urgency_};
  }

  std::size_t num_units() const override { return 1; }
  core::UnitHealth unit_health(std::size_t unit) const override {
    if (unit >= 1) throw std::out_of_range("QuietStub: unit");
    return {};
  }
  double offered_load() const override { return 100.0; }
  double unit_capacity() const override { return 200.0; }
  bool service_down() const override { return false; }
  void restart_unit(std::size_t) override {}
  void shed_load(double, double) override {}
  void checkpoint() override {}
  void prepare_for_failure(double) override {}
  core::SystemStats system_stats() const override { return {}; }

 private:
  std::string name_;
  double now_ = 0.0;
  double horizon_;
  double urgency_;
  mon::MonitoringDataset trace_;
};

/// Low constant score: never warns, never hot by score.
class LowPredictor final : public pred::SymptomPredictor {
 public:
  std::string name() const override { return "low"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext&) const override { return 0.05; }
};

runtime::FleetTelemetry run_stub_fleet(runtime::FleetConfig cfg,
                                       std::size_t num_nodes,
                                       double urgency) {
  std::vector<std::unique_ptr<core::ManagedSystem>> nodes;
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes.push_back(std::make_unique<QuietStub>(
        "stub-" + std::to_string(i), 32 * 60.0, urgency));
  }
  runtime::FleetController fleet(std::move(nodes), cfg);
  fleet.add_symptom_predictor(std::make_shared<LowPredictor>());
  fleet.run();
  return fleet.telemetry();
}

TEST(FleetShard, LockstepTelemetryCountsEpochsAndNodeStepsSeparately) {
  runtime::FleetConfig cfg;  // lockstep default
  const auto t = run_stub_fleet(cfg, 3, 1.0);
  // 32 rounds of 60 s to the 1920 s horizon, 3 nodes each round.
  EXPECT_EQ(t.rounds, 32u);
  EXPECT_EQ(t.epochs, 32u);
  EXPECT_EQ(t.node_steps, 96u);
}

TEST(FleetShard, AdaptiveSchedulingCutsNodeStepsNotCoverage) {
  runtime::FleetConfig cfg;
  cfg.scheduler = runtime::FleetScheduler::kEventDriven;
  cfg.schedule.adaptive = true;
  cfg.schedule.max_gap = 8;

  // Quiet nodes (urgency 0) back off exponentially: far fewer Monitor
  // steps than the 32-ticks-by-3-nodes dense schedule...
  const auto quiet = run_stub_fleet(cfg, 3, 0.0);
  EXPECT_LT(quiet.node_steps, 96u);
  EXPECT_GT(quiet.node_steps, 0u);
  EXPECT_EQ(quiet.warnings_raised, 0u);
  // ...while every node still reaches its horizon (coverage, not work,
  // is the contract): total simulated time equals the dense run's.
  EXPECT_EQ(quiet.nodes, 3u);

  // Urgent nodes (default urgency 1.0 >= hot_urgency) never back off —
  // unknown ManagedSystem backends stay dense by construction.
  const auto urgent = run_stub_fleet(cfg, 3, 1.0);
  EXPECT_EQ(urgent.node_steps, 96u);
  EXPECT_EQ(urgent.rounds, 32u);
}

// --- per-shard metrics -------------------------------------------------------

TEST(FleetShard, ShardMetricsSumToFleetTotalsAndSingleShardStaysUnlabelled) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 2;
  obs::Observability hub(ocfg);

  runtime::FleetConfig cfg;
  cfg.scheduler = runtime::FleetScheduler::kEventDriven;
  cfg.num_shards = 4;
  cfg.num_threads = 2;
  cfg.obs = &hub;
  std::vector<std::unique_ptr<core::ManagedSystem>> nodes;
  for (std::size_t i = 0; i < 6; ++i) {
    nodes.push_back(std::make_unique<QuietStub>(
        "stub-" + std::to_string(i), 10 * 60.0, 1.0));
  }
  runtime::FleetController fleet(std::move(nodes), cfg);
  fleet.add_symptom_predictor(std::make_shared<LowPredictor>());
  fleet.run();

  auto& metrics = hub.metrics();
  std::uint64_t ticks = 0, steps = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    ticks += metrics.counter("pfm_shard_ticks_total" + label).value();
    steps += metrics.counter("pfm_shard_node_steps_total" + label).value();
    EXPECT_GT(metrics.gauge("pfm_shard_nodes" + label).value(), 0.0);
  }
  EXPECT_EQ(ticks, metrics.counter("pfm_fleet_rounds_total").value());
  EXPECT_EQ(steps, metrics.counter("pfm_fleet_node_steps_total").value());
  EXPECT_GT(ticks, 0u);

  // A single-shard event-driven fleet registers no shard-labelled
  // metrics: its scrape is indistinguishable from the lockstep loop's.
  runtime::FleetConfig single;
  single.scheduler = runtime::FleetScheduler::kEventDriven;
  const auto t = run_stub_fleet(single, 2, 1.0);
  EXPECT_GT(t.rounds, 0u);
}

TEST(FleetShard, RejectsBadShardConfigs) {
  auto make_nodes = [] {
    std::vector<std::unique_ptr<core::ManagedSystem>> nodes;
    nodes.push_back(std::make_unique<QuietStub>("stub", 600.0, 1.0));
    return nodes;
  };
  runtime::FleetConfig cfg;
  cfg.num_shards = 0;
  EXPECT_THROW(runtime::FleetController(make_nodes(), cfg),
               std::invalid_argument);
  cfg.num_shards = 1;
  cfg.epoch_ticks = 0;
  EXPECT_THROW(runtime::FleetController(make_nodes(), cfg),
               std::invalid_argument);
  cfg.epoch_ticks = 1;
  cfg.scheduler = runtime::FleetScheduler::kEventDriven;
  cfg.num_shards = 2;  // one node cannot feed two shards
  EXPECT_THROW(runtime::FleetController(make_nodes(), cfg),
               std::invalid_argument);
  cfg.num_shards = 1;
  cfg.schedule.max_gap = 0;
  EXPECT_THROW(runtime::FleetController(make_nodes(), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace pfm
