#include "ctmc/phase_type.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace pfm::ctmc {
namespace {

TEST(PhaseType, SinglePhaseIsExponential) {
  // One transient state with exit rate 0.5: first passage ~ Exp(0.5).
  PhaseType ph(num::Matrix{{-0.5}}, {1.0});
  for (double t : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(ph.cdf(t), 1.0 - std::exp(-0.5 * t), 1e-10);
    EXPECT_NEAR(ph.pdf(t), 0.5 * std::exp(-0.5 * t), 1e-10);
    EXPECT_NEAR(ph.hazard(t), 0.5, 1e-10);
  }
  EXPECT_NEAR(ph.mean(), 2.0, 1e-12);
}

TEST(PhaseType, ErlangTwoStages) {
  // Two sequential Exp(1) stages: Erlang(2,1).
  PhaseType ph(num::Matrix{{-1.0, 1.0}, {0.0, -1.0}}, {1.0, 0.0});
  for (double t : {0.5, 1.0, 2.0, 4.0}) {
    const double cdf = 1.0 - std::exp(-t) * (1.0 + t);
    const double pdf = t * std::exp(-t);
    EXPECT_NEAR(ph.cdf(t), cdf, 1e-10);
    EXPECT_NEAR(ph.pdf(t), pdf, 1e-10);
  }
  EXPECT_NEAR(ph.mean(), 2.0, 1e-12);
  // Erlang hazard starts at zero and increases toward 1.
  EXPECT_NEAR(ph.hazard(0.0), 0.0, 1e-12);
  EXPECT_LT(ph.hazard(0.5), ph.hazard(2.0));
  // Erlang(2,1) hazard is t/(1+t).
  EXPECT_NEAR(ph.hazard(100.0), 100.0 / 101.0, 1e-6);
}

TEST(PhaseType, HyperexponentialMixture) {
  // Start in fast (rate 2) or slow (rate 0.1) phase with prob 1/2 each.
  PhaseType ph(num::Matrix{{-2.0, 0.0}, {0.0, -0.1}}, {0.5, 0.5});
  for (double t : {0.3, 1.0, 5.0}) {
    const double sf = 0.5 * std::exp(-2.0 * t) + 0.5 * std::exp(-0.1 * t);
    EXPECT_NEAR(ph.reliability(t), sf, 1e-10);
  }
  EXPECT_NEAR(ph.mean(), 0.5 / 2.0 + 0.5 / 0.1, 1e-10);
  // Hyperexponential hazard decreases (population heterogeneity).
  EXPECT_GT(ph.hazard(0.1), ph.hazard(10.0));
}

TEST(PhaseType, CdfMonotonicAndBounded) {
  PhaseType ph(num::Matrix{{-1.0, 0.6}, {0.3, -0.8}}, {0.7, 0.3});
  double prev = 0.0;
  for (double t = 0.0; t <= 20.0; t += 0.5) {
    const double f = ph.cdf(t);
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_NEAR(ph.cdf(1000.0), 1.0, 1e-9);
}

TEST(PhaseType, PdfIntegratesToCdf) {
  PhaseType ph(num::Matrix{{-1.5, 1.0}, {0.2, -0.9}}, {1.0, 0.0});
  // Trapezoid integral of pdf over [0, T] ~ cdf(T).
  const double T = 8.0;
  const int n = 4000;
  double integral = 0.0;
  double prev = ph.pdf(0.0);
  for (int i = 1; i <= n; ++i) {
    const double t = T * i / n;
    const double cur = ph.pdf(t);
    integral += 0.5 * (prev + cur) * (T / n);
    prev = cur;
  }
  EXPECT_NEAR(integral, ph.cdf(T), 1e-5);
}

TEST(PhaseType, CurvesMatchPointEvaluations) {
  PhaseType ph(num::Matrix{{-1.0, 0.5}, {0.0, -0.5}}, {1.0, 0.0});
  const auto rel = ph.reliability_curve(0.5, 10);
  const auto haz = ph.hazard_curve(0.5, 10);
  ASSERT_EQ(rel.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    const double t = 0.5 * static_cast<double>(i);
    EXPECT_DOUBLE_EQ(rel[i], ph.reliability(t));
    EXPECT_DOUBLE_EQ(haz[i], ph.hazard(t));
  }
}

TEST(PhaseType, ValidatesInput) {
  EXPECT_THROW(PhaseType(num::Matrix(2, 3), {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(PhaseType(num::Matrix{{-1.0}}, {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(PhaseType(num::Matrix{{-1.0}}, {0.5}), std::invalid_argument);
  EXPECT_THROW(PhaseType(num::Matrix{{-1.0}}, {-1.0}), std::invalid_argument);
  // Row sums positive => not a sub-generator.
  EXPECT_THROW(PhaseType(num::Matrix{{-1.0, 2.0}, {0.0, -1.0}}, {1.0, 0.0}),
               std::invalid_argument);
  // No exit at all: absorbing state unreachable.
  EXPECT_THROW(PhaseType(num::Matrix{{-1.0, 1.0}, {1.0, -1.0}}, {1.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pfm::ctmc
