#include "telecom/node.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace pfm::telecom {
namespace {

SimConfig inert_config() {
  SimConfig cfg;
  cfg.leak_mtbf = 1e12;
  cfg.cascade_mtbf = 1e12;
  cfg.noise_event_rate = 1e-12;
  cfg.lookalike_event_rate = 1e-12;
  return cfg;
}

std::vector<mon::ErrorEvent> run_node(ServiceNode& node, double t0, double t1,
                                      double utilization = 0.5) {
  std::vector<mon::ErrorEvent> events;
  for (double t = t0; t < t1; t += 1.0) {
    node.advance(t, 1.0, utilization, events);
  }
  return events;
}

TEST(Node, FreshNodeIsHealthy) {
  const SimConfig cfg = inert_config();
  num::Rng rng(1);
  ServiceNode node(cfg, 0, 0.0, rng);
  EXPECT_TRUE(node.available(0.0));
  EXPECT_FALSE(node.leak_active());
  EXPECT_EQ(node.cascade_stage(), 0);
  EXPECT_NEAR(node.memory_pressure(), cfg.base_memory_fraction, 1e-9);
  EXPECT_DOUBLE_EQ(node.degradation(0.0), 1.0);
}

TEST(Node, LeakRaisesPressureAndEmitsMemoryEvents) {
  SimConfig cfg = inert_config();
  cfg.leak_mtbf = 1.0;  // leak starts almost immediately
  cfg.leak_min_rate = cfg.leak_max_rate = 0.3;
  num::Rng rng(2);
  ServiceNode node(cfg, 0, 0.0, rng);
  const auto events = run_node(node, 0.0, 3.0 * 3600.0);
  EXPECT_TRUE(node.leak_active());
  EXPECT_GT(node.memory_pressure(), 0.7);
  // Memory events must have appeared once pressure exceeded thresholds.
  const bool has_mem_low = std::any_of(
      events.begin(), events.end(),
      [](const mon::ErrorEvent& e) { return e.event_id == event_id::kMemLow; });
  EXPECT_TRUE(has_mem_low);
  // And degradation grows beyond nominal under heavy pressure.
  EXPECT_GT(node.degradation(3.0 * 3600.0), 1.0);
}

TEST(Node, LeakEventOrderingFollowsSeverityLadder) {
  SimConfig cfg = inert_config();
  cfg.leak_mtbf = 1.0;
  cfg.leak_min_rate = cfg.leak_max_rate = 0.3;
  num::Rng rng(3);
  ServiceNode node(cfg, 0, 0.0, rng);
  const auto events = run_node(node, 0.0, 4.0 * 3600.0);
  double first_low = 1e18, first_slow = 1e18;
  for (const auto& e : events) {
    if (e.event_id == event_id::kMemLow) first_low = std::min(first_low, e.time);
    if (e.event_id == event_id::kAllocSlow) {
      first_slow = std::min(first_slow, e.time);
    }
  }
  ASSERT_LT(first_low, 1e18);
  ASSERT_LT(first_slow, 1e18);
  EXPECT_LT(first_low, first_slow);  // kMemLow threshold is lower
}

TEST(Node, CascadeProgressesThroughStagesInOrder) {
  SimConfig cfg = inert_config();
  cfg.cascade_mtbf = 1.0;
  cfg.cascade_stage_mean = 120.0;
  num::Rng rng(4);
  ServiceNode node(cfg, 0, 0.0, rng);
  const auto events = run_node(node, 0.0, 4.0 * 3600.0);
  EXPECT_GE(node.cascade_stage(), 3);
  double first1 = 1e18, first2 = 1e18, first3 = 1e18;
  for (const auto& e : events) {
    if (e.event_id == event_id::kCascadeStage1) first1 = std::min(first1, e.time);
    if (e.event_id == event_id::kCascadeStage2) first2 = std::min(first2, e.time);
    if (e.event_id == event_id::kCascadeStage3) first3 = std::min(first3, e.time);
  }
  ASSERT_LT(first1, 1e18);
  ASSERT_LT(first2, 1e18);
  ASSERT_LT(first3, 1e18);
  EXPECT_LT(first1, first2);
  EXPECT_LT(first2, first3);
}

TEST(Node, CascadeStageThreeDegradesService) {
  SimConfig cfg = inert_config();
  cfg.cascade_mtbf = 1.0;
  cfg.cascade_stage_mean = 60.0;
  num::Rng rng(5);
  ServiceNode node(cfg, 0, 0.0, rng);
  std::vector<mon::ErrorEvent> events;
  double t = 0.0;
  while (node.cascade_stage() < 3 && t < 4.0 * 3600.0) {
    node.advance(t, 1.0, 0.5, events);
    t += 1.0;
  }
  ASSERT_EQ(node.cascade_stage(), 3);
  // Let stage 3 progress; degradation must climb well above nominal.
  for (int i = 0; i < 600; ++i) {
    node.advance(t, 1.0, 0.5, events);
    t += 1.0;
  }
  EXPECT_GT(node.degradation(t), 2.0);
}

TEST(Node, OverloadEmitsQueueEvents) {
  const SimConfig cfg = inert_config();
  num::Rng rng(6);
  ServiceNode node(cfg, 0, 0.0, rng);
  const auto events = run_node(node, 0.0, 3600.0, 0.95);
  const bool has_queue_high = std::any_of(
      events.begin(), events.end(), [](const mon::ErrorEvent& e) {
        return e.event_id == event_id::kQueueHigh;
      });
  const bool has_timeout = std::any_of(
      events.begin(), events.end(), [](const mon::ErrorEvent& e) {
        return e.event_id == event_id::kTimeout;
      });
  EXPECT_TRUE(has_queue_high);
  EXPECT_TRUE(has_timeout);
}

TEST(Node, NoOverloadEventsAtNominalLoad) {
  const SimConfig cfg = inert_config();
  num::Rng rng(7);
  ServiceNode node(cfg, 0, 0.0, rng);
  const auto events = run_node(node, 0.0, 3600.0, 0.5);
  for (const auto& e : events) {
    EXPECT_NE(e.event_id, event_id::kQueueHigh);
    EXPECT_NE(e.event_id, event_id::kTimeout);
  }
}

TEST(Node, PreventiveRestartClearsFaultsAndTakesNodeDown) {
  SimConfig cfg = inert_config();
  cfg.leak_mtbf = 1.0;
  cfg.leak_min_rate = cfg.leak_max_rate = 0.3;
  num::Rng rng(8);
  ServiceNode node(cfg, 0, 0.0, rng);
  (void)run_node(node, 0.0, 2.0 * 3600.0);
  ASSERT_TRUE(node.leak_active());
  const double t = 2.0 * 3600.0;
  node.preventive_restart(t);
  EXPECT_FALSE(node.leak_active());
  EXPECT_EQ(node.cascade_stage(), 0);
  EXPECT_NEAR(node.memory_pressure(), cfg.base_memory_fraction, 1e-9);
  EXPECT_FALSE(node.available(t));
  EXPECT_TRUE(node.available(t + cfg.restart_duration + 1.0));
  EXPECT_EQ(node.restart_count(), 1);
}

TEST(Node, UnavailableNodeEmitsNothing) {
  SimConfig cfg = inert_config();
  cfg.leak_mtbf = 1.0;
  num::Rng rng(9);
  ServiceNode node(cfg, 0, 0.0, rng);
  node.preventive_restart(10.0);
  std::vector<mon::ErrorEvent> events;
  node.advance(11.0, 1.0, 0.99, events);
  EXPECT_TRUE(events.empty());
}

TEST(Node, NoiseEventsStayInBenignRange) {
  SimConfig cfg = inert_config();
  cfg.noise_event_rate = 1.0;  // dense noise
  num::Rng rng(10);
  ServiceNode node(cfg, 0, 0.0, rng);
  const auto events = run_node(node, 0.0, 600.0);
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_GE(e.event_id, event_id::kNoiseBase);
    EXPECT_LT(e.event_id, event_id::kNoiseBase + event_id::kNoiseCount);
  }
}

}  // namespace
}  // namespace pfm::telecom
