// Observability core: sharded counters/gauges/histograms must merge
// exactly, histogram buckets must follow le-semantics at the bounds, and
// the trace recorder's sorted span sequence must be independent of which
// shard a span landed in.

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pfm {
namespace {

/// Restores the calling thread's shard id on scope exit, so a test can
/// impersonate pool workers without leaking the shard into later tests.
class ShardGuard {
 public:
  ShardGuard() : saved_(obs::thread_shard()) {}
  ~ShardGuard() { obs::set_thread_shard(saved_); }

 private:
  std::size_t saved_;
};

TEST(ObsMetrics, CounterMergesAcrossShards) {
  ShardGuard guard;
  obs::MetricsRegistry registry(3);
  auto& counter = registry.counter("pfm_test_total");

  obs::set_thread_shard(0);
  counter.inc();
  obs::set_thread_shard(1);
  counter.inc(10);
  obs::set_thread_shard(2);
  counter.inc(100);
  EXPECT_EQ(counter.value(), 111u);

  // A thread that never claimed a shard (or claimed one beyond the
  // registry's sizing) falls back to shard 0 instead of writing out of
  // bounds.
  obs::set_thread_shard(7);
  counter.inc(1000);
  EXPECT_EQ(counter.value(), 1111u);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  obs::MetricsRegistry registry(1);
  auto& gauge = registry.gauge("pfm_nodes");
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(8.0);
  gauge.add(-3.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0);
}

TEST(ObsMetrics, RegistryFindsOrCreatesAndRejectsCrossFamilyNames) {
  obs::MetricsRegistry registry(2);
  auto& a = registry.counter("pfm_x_total");
  auto& b = registry.counter("pfm_x_total");
  EXPECT_EQ(&a, &b) << "same name must return the same handle";

  EXPECT_THROW(registry.gauge("pfm_x_total"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("pfm_x_total", obs::HistogramSpec{}),
               std::invalid_argument);

  auto& g = registry.gauge("pfm_y");
  EXPECT_EQ(&g, &registry.gauge("pfm_y"));
  EXPECT_THROW(registry.counter("pfm_y"), std::invalid_argument);

  // Clock tags ride along with the instrument.
  auto& wall = registry.counter("pfm_wall_total", obs::Clock::kWall);
  EXPECT_EQ(wall.clock(), obs::Clock::kWall);
  EXPECT_EQ(a.clock(), obs::Clock::kSim);
}

TEST(ObsMetrics, HistogramSpecIsValidated) {
  obs::MetricsRegistry registry(1);
  obs::HistogramSpec bad;
  bad.factor = 1.0;
  EXPECT_THROW(registry.histogram("pfm_h1", bad), std::invalid_argument);
  bad = obs::HistogramSpec{};
  bad.first_bound = 0.0;
  EXPECT_THROW(registry.histogram("pfm_h2", bad), std::invalid_argument);
  bad = obs::HistogramSpec{};
  bad.num_buckets = 0;
  EXPECT_THROW(registry.histogram("pfm_h3", bad), std::invalid_argument);
  bad = obs::HistogramSpec{};
  bad.resolution = -1.0;
  EXPECT_THROW(registry.histogram("pfm_h4", bad), std::invalid_argument);
}

/// Exact power-of-two geometry so the bound comparisons below are free
/// of floating-point slack: bounds 1, 2, 4, 8.
obs::HistogramSpec pow2_spec() {
  obs::HistogramSpec spec;
  spec.first_bound = 1.0;
  spec.factor = 2.0;
  spec.num_buckets = 4;
  spec.resolution = 0.5;
  return spec;
}

TEST(ObsMetrics, HistogramBucketsUseLeSemanticsAtExactBounds) {
  obs::MetricsRegistry registry(1);
  auto& hist = registry.histogram("pfm_dur", pow2_spec(), obs::Clock::kSim);
  ASSERT_EQ(hist.bounds().size(), 4u);
  EXPECT_DOUBLE_EQ(hist.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(hist.bounds()[3], 8.0);

  hist.observe(1.0);  // exactly at bound 0: le => bucket 0
  hist.observe(2.0);  // exactly at bound 1: le => bucket 1
  hist.observe(2.5);  // between 2 and 4    => bucket 2
  hist.observe(8.0);  // at the last bound  => bucket 3
  hist.observe(9.0);  // past every bound   => overflow
  hist.observe(0.0);  // below the first    => bucket 0

  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
  EXPECT_EQ(hist.bucket_count(4), 1u);  // +Inf bucket
  EXPECT_EQ(hist.count(), 6u);

  // Tick sum: (1 + 2 + 2.5 + 8 + 9 + 0) / 0.5 = 45 ticks.
  EXPECT_EQ(hist.sum_ticks(), 45u);
  EXPECT_DOUBLE_EQ(hist.sum(), 22.5);
}

TEST(ObsMetrics, HistogramNonFiniteAndNegativeObservations) {
  obs::MetricsRegistry registry(1);
  auto& hist = registry.histogram("pfm_dur", pow2_spec(), obs::Clock::kSim);

  hist.observe(std::numeric_limits<double>::quiet_NaN());
  hist.observe(std::numeric_limits<double>::infinity());
  hist.observe(-std::numeric_limits<double>::infinity());
  hist.observe(-3.0);

  // Non-finite values land in the overflow bucket and contribute no
  // ticks; negative values count in bucket 0 but never shrink the sum.
  EXPECT_EQ(hist.bucket_count(4), 3u);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_EQ(hist.sum_ticks(), 0u);
}

TEST(ObsMetrics, HistogramMergeIsExactAcrossShards) {
  ShardGuard guard;
  obs::MetricsRegistry sharded(4);
  obs::MetricsRegistry flat(1);
  auto& h_sharded =
      sharded.histogram("pfm_dur", pow2_spec(), obs::Clock::kSim);
  auto& h_flat = flat.histogram("pfm_dur", pow2_spec(), obs::Clock::kSim);

  const double values[] = {0.25, 1.0, 1.75, 3.5, 6.0, 8.0, 123.0};
  std::size_t shard = 0;
  for (const double v : values) {
    obs::set_thread_shard(shard);
    shard = (shard + 1) % 4;
    h_sharded.observe(v);
    obs::set_thread_shard(0);
    h_flat.observe(v);
  }

  // Integer ticks and integer bucket counts: the merge is exact no
  // matter how observations were spread over shards.
  EXPECT_EQ(h_sharded.count(), h_flat.count());
  EXPECT_EQ(h_sharded.sum_ticks(), h_flat.sum_ticks());
  for (std::size_t i = 0; i <= 4; ++i) {
    EXPECT_EQ(h_sharded.bucket_count(i), h_flat.bucket_count(i)) << i;
  }
}

obs::Span make_span(double begin, double end, std::uint32_t track,
                    obs::SpanKind kind, std::uint32_t sub = 0,
                    std::int64_t arg = 0) {
  obs::Span s;
  s.sim_begin = begin;
  s.sim_end = end;
  s.track = track;
  s.kind = kind;
  s.sub = sub;
  s.arg = arg;
  return s;
}

TEST(ObsTrace, DisabledRecorderIsANoOp) {
  obs::TraceRecorder off(2, 0);
  EXPECT_FALSE(off.enabled());
  obs::record_instant(&off, obs::SpanKind::kWarning, 0, 1.0);
  obs::record_instant(nullptr, obs::SpanKind::kWarning, 0, 1.0);
  { obs::ScopedSpan span(nullptr, obs::SpanKind::kNodeStep, 1, 0.0); }
  { obs::ScopedSpan span(&off, obs::SpanKind::kNodeStep, 1, 0.0); }
  EXPECT_EQ(off.recorded(), 0u);
  EXPECT_TRUE(off.sorted_spans().empty());
}

TEST(ObsTrace, SortedSpansFollowTheSimTimeKey) {
  obs::TraceRecorder rec(1, 16);
  ASSERT_TRUE(rec.enabled());
  // Recorded deliberately out of order.
  rec.record(make_span(2.0, 3.0, obs::kFleetTrack,
                       obs::SpanKind::kEvaluateStage, 1));
  rec.record(make_span(1.0, 2.0, obs::node_track(1),
                       obs::SpanKind::kNodeStep));
  rec.record(make_span(1.0, 2.0, obs::node_track(0),
                       obs::SpanKind::kNodeStep));
  rec.record(make_span(1.0, 2.0, obs::kFleetTrack,
                       obs::SpanKind::kMonitorStage, 1));

  const auto spans = rec.sorted_spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].kind, obs::SpanKind::kMonitorStage);
  EXPECT_EQ(spans[1].track, obs::node_track(0));
  EXPECT_EQ(spans[2].track, obs::node_track(1));
  EXPECT_EQ(spans[3].kind, obs::SpanKind::kEvaluateStage);
  EXPECT_EQ(rec.recorded(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(ObsTrace, SortedSpansAreIndependentOfShardPlacement) {
  ShardGuard guard;
  obs::TraceRecorder one_shard(1, 16);
  obs::TraceRecorder spread(3, 16);

  const obs::Span spans[] = {
      make_span(0.0, 1.0, obs::kFleetTrack, obs::SpanKind::kMonitorStage, 1),
      make_span(0.0, 0.5, obs::node_track(0), obs::SpanKind::kNodeStep),
      make_span(0.0, 0.9, obs::node_track(1), obs::SpanKind::kNodeStep),
      make_span(1.0, 1.0, obs::predictor_track(0),
                obs::SpanKind::kScoreBatch, 0, 2),
  };
  std::size_t shard = 0;
  for (const auto& s : spans) {
    obs::set_thread_shard(0);
    one_shard.record(s);
    obs::set_thread_shard(shard);
    shard = (shard + 1) % 3;
    spread.record(s);
  }
  obs::set_thread_shard(0);

  const auto a = one_shard.sorted_spans();
  const auto b = spread.sorted_spans();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].sim_begin, b[i].sim_begin) << i;
    EXPECT_DOUBLE_EQ(a[i].sim_end, b[i].sim_end) << i;
    EXPECT_EQ(a[i].track, b[i].track) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].sub, b[i].sub) << i;
    EXPECT_EQ(a[i].arg, b[i].arg) << i;
  }
}

TEST(ObsTrace, FullRingOverwritesOldestAndCountsDrops) {
  obs::TraceRecorder rec(1, 2);
  rec.record(make_span(1.0, 1.0, 0, obs::SpanKind::kWarning));
  rec.record(make_span(2.0, 2.0, 0, obs::SpanKind::kWarning));
  rec.record(make_span(3.0, 3.0, 0, obs::SpanKind::kWarning));

  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 1u);
  const auto spans = rec.sorted_spans();
  ASSERT_EQ(spans.size(), 2u);
  // The oldest span (sim 1.0) was the one overwritten.
  EXPECT_DOUBLE_EQ(spans[0].sim_begin, 2.0);
  EXPECT_DOUBLE_EQ(spans[1].sim_begin, 3.0);

  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.sorted_spans().empty());
}

TEST(ObsTrace, ScopedSpanRecordsSimIntervalAndWallDuration) {
  obs::TraceRecorder rec(1, 4);
  {
    obs::ScopedSpan span(&rec, obs::SpanKind::kActionExecute,
                         obs::node_track(2), 10.0, /*sub=*/1, /*arg=*/0);
    span.set_sim_end(12.5);
    span.set_arg(7);
    EXPECT_GE(span.elapsed_wall(), 0.0);
  }
  const auto spans = rec.sorted_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].sim_begin, 10.0);
  EXPECT_DOUBLE_EQ(spans[0].sim_end, 12.5);
  EXPECT_EQ(spans[0].track, obs::node_track(2));
  EXPECT_EQ(spans[0].sub, 1u);
  EXPECT_EQ(spans[0].arg, 7);
  EXPECT_GE(spans[0].wall_seconds, 0.0);
}

TEST(ObsTrace, RecordInstantAndKindNames) {
  obs::TraceRecorder rec(1, 4);
  obs::record_instant(&rec, obs::SpanKind::kQuarantine, obs::node_track(3),
                      42.0, 0, 5);
  const auto spans = rec.sorted_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].sim_begin, 42.0);
  EXPECT_DOUBLE_EQ(spans[0].sim_end, 42.0);
  EXPECT_EQ(spans[0].arg, 5);

  EXPECT_STREQ(obs::to_string(obs::SpanKind::kMonitorStage), "monitor_stage");
  EXPECT_STREQ(obs::to_string(obs::SpanKind::kScoreBatch), "score_batch");
  EXPECT_STREQ(obs::to_string(obs::SpanKind::kInjectedFault),
               "injected_fault");
}

TEST(ObsTrace, TrackNumberingIsStable) {
  EXPECT_EQ(obs::kFleetTrack, 0u);
  EXPECT_EQ(obs::node_track(0), 1u);
  EXPECT_EQ(obs::node_track(7), 8u);
  EXPECT_EQ(obs::predictor_track(0), 1000000u);
  EXPECT_EQ(obs::predictor_track(3), 1000003u);
}

}  // namespace
}  // namespace pfm
