// Parameterized property-style sweeps over the analytic core: invariants
// that must hold across the whole parameter space, not just at the Table 2
// operating point.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ctmc/pfm_model.hpp"
#include "eval/metrics.hpp"
#include "numerics/rng.hpp"

namespace pfm {
namespace {

// --- Fig. 9 model invariants over a (recall, precision, k) grid -------------

using QualityGrid = std::tuple<double, double, double>;  // recall, prec, k

class PfmModelProperty : public ::testing::TestWithParam<QualityGrid> {
 protected:
  ctmc::PfmModelParams params() const {
    auto [recall, precision, k] = GetParam();
    ctmc::PfmModelParams p = ctmc::PfmModelParams::table2_example();
    p.quality.recall = recall;
    p.quality.precision = precision;
    p.repair_improvement = k;
    return p;
  }
};

TEST_P(PfmModelProperty, ClosedFormMatchesNumericSteadyState) {
  const ctmc::PfmAvailabilityModel m(params());
  EXPECT_NEAR(m.availability_closed_form(), m.availability_numeric(), 1e-10);
}

TEST_P(PfmModelProperty, AvailabilityIsAProbability) {
  const ctmc::PfmAvailabilityModel m(params());
  const double a = m.availability_closed_form();
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

TEST_P(PfmModelProperty, SteadyStateIsADistribution) {
  const auto pi = ctmc::PfmAvailabilityModel(params()).chain().steady_state();
  double total = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, -1e-12);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(PfmModelProperty, ReliabilityDecreasesAndHazardNonNegative) {
  const ctmc::PfmAvailabilityModel m(params());
  const auto ph = m.reliability_model();
  double prev = 1.0;
  for (double t = 0.0; t <= 30000.0; t += 3000.0) {
    const double r = ph.reliability(t);
    EXPECT_LE(r, prev + 1e-12);
    EXPECT_GE(r, -1e-12);
    EXPECT_GE(ph.hazard(t), -1e-12);
    prev = r;
  }
}

TEST_P(PfmModelProperty, MoreRepairImprovementNeverHurts) {
  auto p = params();
  const double a1 =
      ctmc::PfmAvailabilityModel(p).availability_closed_form();
  p.repair_improvement *= 2.0;
  const double a2 =
      ctmc::PfmAvailabilityModel(p).availability_closed_form();
  EXPECT_GE(a2, a1 - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    QualitySweep, PfmModelProperty,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.62, 0.9),
                       ::testing::Values(0.2, 0.7, 0.95),
                       ::testing::Values(0.5, 2.0, 6.0)));

// --- ROC invariants across random score/label configurations -----------------

class RocProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RocProperty, CurveMonotoneAndAucBounded) {
  num::Rng rng(GetParam());
  std::vector<double> scores;
  std::vector<int> labels;
  const double signal = rng.uniform(0.0, 2.0);
  const double base_rate = rng.uniform(0.05, 0.5);
  for (int i = 0; i < 400; ++i) {
    const int y = rng.bernoulli(base_rate) ? 1 : 0;
    scores.push_back(rng.normal(y * signal, 1.0));
    labels.push_back(y);
  }
  // Degenerate single-class draws are regenerated deterministically.
  bool has0 = false, has1 = false;
  for (int y : labels) (y ? has1 : has0) = true;
  if (!has0 || !has1) {
    labels[0] = has1 ? 0 : 1;
  }
  const auto roc = eval::roc_curve(scores, labels);
  for (std::size_t i = 1; i < roc.size(); ++i) {
    EXPECT_GE(roc[i].false_positive_rate, roc[i - 1].false_positive_rate);
    EXPECT_GE(roc[i].true_positive_rate, roc[i - 1].true_positive_rate);
  }
  const double a = eval::auc(roc);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
  // With positive signal, AUC must not be drastically below chance.
  if (signal > 0.5) {
    EXPECT_GT(a, 0.45);
  }
}

TEST_P(RocProperty, ThresholdingIsConsistentWithCurve) {
  num::Rng rng(GetParam() + 1000);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const int y = rng.bernoulli(0.3) ? 1 : 0;
    scores.push_back(rng.normal(y * 1.0, 1.0));
    labels.push_back(y);
  }
  labels[0] = 1;
  labels[1] = 0;
  const auto choice = eval::max_f_measure_threshold(scores, labels);
  // The chosen operating point's F is at least that of the median score
  // threshold (it is the maximum, after all).
  const auto median_table =
      eval::score_contingency(scores, labels, 0.0);
  EXPECT_GE(choice.table.f_measure(), median_table.f_measure() - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RocProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- Phase-type invariants over random sub-generators -------------------------

class PhaseTypeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhaseTypeProperty, DistributionAxioms) {
  num::Rng rng(GetParam());
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  num::Matrix t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      t(i, j) = rng.uniform(0.0, 1.0);
      row += t(i, j);
    }
    const double exit = rng.uniform(0.05, 1.0);
    t(i, i) = -(row + exit);
  }
  std::vector<double> alpha(n, 0.0);
  alpha[0] = 1.0;
  const ctmc::PhaseType ph(std::move(t), std::move(alpha));

  double prev_cdf = 0.0;
  for (double time = 0.0; time <= 20.0; time += 1.0) {
    const double f = ph.cdf(time);
    EXPECT_GE(f, prev_cdf - 1e-10);
    EXPECT_GE(f, -1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
    EXPECT_GE(ph.pdf(time), -1e-12);
    prev_cdf = f;
  }
  EXPECT_GT(ph.mean(), 0.0);
  // Mean from the matrix identity equals the integral of the survival
  // function (coarse trapezoid check).
  double integral = 0.0;
  const double dt = 0.05;
  for (double time = 0.0; time < 400.0; time += dt) {
    integral += ph.reliability(time + 0.5 * dt) * dt;
  }
  EXPECT_NEAR(integral, ph.mean(), 0.05 * ph.mean() + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseTypeProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace pfm
