// Elastic fleet membership (DESIGN.md §11):
//  - MembershipPlan builders, burst expansion and validation;
//  - derive_member_seed stream discipline;
//  - inactive configs are byte-identical to a membership-free build;
//  - (seed, membership plan, fault plan) replays bit-identically across
//    thread counts and repeated runs, per shard count, under hostile
//    churn + faults;
//  - survivors of a churned run match an uninterrupted reference
//    bit-for-bit (warm handoff across an online reshard);
//  - lockstep and event-driven schedulers agree under churn (dense,
//    one shard, epoch_ticks 1);
//  - per-shard membership counters sum to the fleet totals;
//  - the prediction-driven scaling loop: preventive scale-up and
//    drain-and-failover, with cooldown and join caps;
//  - config and mid-run target validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "injection/injector.hpp"
#include "membership/membership_plan.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "prediction/baselines.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"
#include "telecom/simulator.hpp"

namespace pfm {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// --- plan vocabulary ---------------------------------------------------------

TEST(MembershipPlan, BuildersExpandBurstsInDeclarationOrder) {
  membership::MembershipPlan plan;
  plan.scale_out(100.0, 3, 10.0)
      .rolling_restart(200.0, 2, 3, 50.0)
      .zone_loss(50.0, 0, 2)
      .drain_node(150.0, 5)
      .node_leave(150.0, 6)
      .restart_node(400.0, 1);
  plan.validate();
  const auto changes = plan.resolve();
  ASSERT_EQ(changes.size(), 11u);

  // Stable-sorted by at_time; ties keep declaration order.
  for (std::size_t i = 1; i < changes.size(); ++i) {
    EXPECT_LE(changes[i - 1].at_time, changes[i].at_time);
  }
  using membership::ChurnKind;
  EXPECT_EQ(changes[0].kind, ChurnKind::kLeave);  // zone loss node 0 @50
  EXPECT_EQ(changes[0].node, 0u);
  EXPECT_EQ(changes[1].kind, ChurnKind::kLeave);  // zone loss node 1 @50
  EXPECT_EQ(changes[1].node, 1u);
  EXPECT_EQ(changes[2].kind, ChurnKind::kJoin);   // burst @100, 110, 120
  EXPECT_EQ(bits(changes[3].at_time), bits(110.0));
  EXPECT_EQ(bits(changes[4].at_time), bits(120.0));
  EXPECT_EQ(changes[5].kind, ChurnKind::kDrain);  // drain before leave @150
  EXPECT_EQ(changes[5].node, 5u);
  EXPECT_EQ(changes[6].kind, ChurnKind::kLeave);
  EXPECT_EQ(changes[6].node, 6u);
  // Rolling restart walks consecutive slots with the stagger.
  EXPECT_EQ(changes[7].kind, ChurnKind::kRestart);
  EXPECT_EQ(changes[7].node, 2u);
  EXPECT_EQ(changes[8].node, 3u);
  EXPECT_EQ(bits(changes[8].at_time), bits(250.0));
  EXPECT_EQ(changes[9].node, 4u);
  EXPECT_EQ(bits(changes[9].at_time), bits(300.0));
  EXPECT_EQ(changes[10].kind, ChurnKind::kRestart);  // singleton @400
  EXPECT_EQ(changes[10].node, 1u);

  // Resolving twice yields the same sequence (pure function of the plan).
  const auto again = plan.resolve();
  ASSERT_EQ(again.size(), changes.size());
  for (std::size_t i = 0; i < changes.size(); ++i) {
    EXPECT_EQ(bits(again[i].at_time), bits(changes[i].at_time));
    EXPECT_EQ(again[i].kind, changes[i].kind);
    EXPECT_EQ(again[i].node, changes[i].node);
    EXPECT_EQ(again[i].source, changes[i].source);
  }
}

TEST(MembershipPlan, ValidateRejectsBadEventsAndPolicies) {
  {
    membership::MembershipPlan plan;
    plan.node_leave(-1.0, 0);
    EXPECT_THROW(plan.validate(), std::invalid_argument);
  }
  {
    membership::MembershipPlan plan;
    plan.scale_out(100.0, 1, -5.0);
    EXPECT_THROW(plan.validate(), std::invalid_argument);
  }
  {
    membership::MembershipPlan plan;
    membership::ChurnEvent ev;
    ev.count = 0;
    plan.events.push_back(ev);
    EXPECT_THROW(plan.validate(), std::invalid_argument);
  }
  {
    membership::ElasticityPolicy policy;
    policy.enabled = true;
    policy.scale_up_mass = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(policy.validate(), std::invalid_argument);
  }
  {
    membership::ElasticityPolicy policy;
    policy.enabled = true;
    policy.scale_up_mass = 1.0;
    policy.scale_up_nodes = 0;
    EXPECT_THROW(policy.validate(), std::invalid_argument);
  }
  EXPECT_STREQ(membership::to_string(membership::ChurnKind::kJoin), "join");
  EXPECT_STREQ(membership::to_string(membership::ChurnKind::kLeave), "leave");
  EXPECT_STREQ(membership::to_string(membership::ChurnKind::kDrain), "drain");
  EXPECT_STREQ(membership::to_string(membership::ChurnKind::kRestart),
               "restart");
}

TEST(MembershipPlan, DerivedSeedsAreDeterministicAndWellSpread) {
  const std::uint64_t a = membership::derive_member_seed(42, 3, 0);
  EXPECT_EQ(a, membership::derive_member_seed(42, 3, 0));
  EXPECT_NE(a, membership::derive_member_seed(42, 4, 0));
  EXPECT_NE(a, membership::derive_member_seed(42, 3, 1));
  EXPECT_NE(a, membership::derive_member_seed(43, 3, 0));
  EXPECT_NE(a, 42u);
  // Incarnations of the same slot get distinct streams.
  EXPECT_NE(membership::derive_member_seed(42, 3, 1),
            membership::derive_member_seed(42, 3, 2));
}

// --- fleet harness -----------------------------------------------------------

constexpr double kDuration = 0.25 * 86400.0;

pred::WindowGeometry geometry() { return {600.0, 300.0, 300.0}; }

struct Ensemble {
  std::shared_ptr<const pred::SymptomPredictor> trend;
  std::shared_ptr<const pred::EventPredictor> eventset;
};

const Ensemble& ensemble() {
  static const Ensemble shared = [] {
    telecom::SimConfig cfg;
    cfg.seed = 5;
    cfg.duration = 2.0 * 86400.0;
    telecom::ScpSimulator sim(cfg);
    sim.run();
    const auto trace = sim.take_trace();
    const auto g = geometry();

    auto trend = std::make_shared<pred::TrendPredictor>(g);
    trend->train(trace);
    auto eventset = std::make_shared<pred::EventsetPredictor>();
    eventset->train(trace.failure_sequences(g.data_window, g.lead_time),
                    trace.nonfailure_sequences(g.data_window, g.lead_time,
                                               g.prediction_window, 300.0));
    Ensemble out;
    out.trend = std::move(trend);
    out.eventset = std::move(eventset);
    return out;
  }();
  return shared;
}

inj::FaultPlan hostile_plan() {
  inj::FaultPlan plan;
  plan.seed = 77;
  plan.nodes[1].crash_at = 10000.0;
  plan.nodes[2].hang_at = 6000.0;
  plan.nodes[2].hang_steps = 5;
  plan.default_node.drop_sample_p = 0.03;
  plan.default_node.corrupt_sample_p = 0.02;
  plan.predictors[0].nan_p = 0.05;
  plan.predictors[0].throw_p = 0.02;
  plan.actions[0].fail_p = 0.3;
  return plan;
}

/// A hostile churn storm layered on the hostile fault plan: a scale-out
/// burst, zone loss, a graceful drain, the restart of a node the fault
/// plan crashes at t=10000, and a staggered rolling restart.
membership::MembershipPlan churn_storm() {
  membership::MembershipPlan plan;
  plan.seed = 2026;
  plan.scale_out(3000.0, 2, 120.0)
      .node_leave(5000.0, 4)
      .drain_node(8000.0, 3)
      .restart_node(12000.0, 1)
      .rolling_restart(15000.0, 6, 3, 300.0);
  return plan;
}

/// Everything observable about one fleet run except wall time.
struct Artifacts {
  std::string prometheus;
  std::string trace_json;
  std::string json_line;
  std::uint64_t dropped = 0;
  std::size_t num_slots = 0;
  std::size_t live_nodes = 0;
  membership::MembershipStats membership;
  std::vector<std::uint64_t> node_evals;
  std::vector<std::uint64_t> node_warnings;
  std::vector<bool> node_quarantined;
  std::vector<bool> node_departed;
  std::vector<std::size_t> node_incarnation;
};

struct RunSpec {
  std::size_t nodes = 6;
  std::size_t threads = 1;
  runtime::FleetScheduler scheduler = runtime::FleetScheduler::kEventDriven;
  std::size_t num_shards = 1;
  std::size_t epoch_ticks = 1;
  bool adaptive = false;
  bool hostile = false;
  membership::MembershipPlan plan;
  membership::ElasticityPolicy policy;
};

Artifacts run_fleet(const RunSpec& spec) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = spec.threads;
  ocfg.trace_capacity = 1 << 16;
  obs::Observability hub(ocfg);

  telecom::SimConfig sim;
  sim.seed = 21;
  sim.duration = kDuration;
  sim.leak_mtbf = 21600.0;

  runtime::FleetConfig cfg;
  cfg.mea.windows = geometry();
  cfg.mea.warning_threshold = 0.6;
  cfg.mea.action_cooldown = 600.0;
  cfg.mea.retry.max_attempts = 3;
  cfg.mea.retry.backoff_initial = 120.0;
  cfg.num_threads = spec.threads;
  cfg.scheduler = spec.scheduler;
  cfg.num_shards = spec.num_shards;
  cfg.epoch_ticks = spec.epoch_ticks;
  cfg.schedule.adaptive = spec.adaptive;
  cfg.obs = &hub;

  inj::FaultInjector injector(hostile_plan());
  injector.set_observability(&hub);

  cfg.membership.plan = spec.plan;
  cfg.membership.policy = spec.policy;
  // Joiners are deterministic functions of the JoinContext alone: an SCP
  // system seeded from the membership stream, fault-wrapped under the
  // slot's own FaultPlan spec when the run is hostile.
  cfg.membership.factory =
      [&injector, sim,
       hostile = spec.hostile](const membership::JoinContext& ctx)
      -> std::unique_ptr<core::ManagedSystem> {
    telecom::SimConfig joiner = sim;
    joiner.seed = ctx.seed;
    auto inner = std::make_unique<runtime::ScpManagedSystem>(joiner);
    if (!hostile) return inner;
    return injector.wrap_node(ctx.node, std::move(inner));
  };

  const auto& e = ensemble();
  auto nodes = runtime::make_scp_fleet(sim, spec.nodes);

  auto make_cleanup = [] {
    return std::make_unique<act::StateCleanupAction>(0.70);
  };
  auto make_repair = [] {
    return std::make_unique<act::PreparedRepairAction>(1800.0);
  };

  runtime::FleetController fleet(
      spec.hostile ? injector.wrap_fleet(std::move(nodes)) : std::move(nodes),
      cfg);
  if (spec.hostile) {
    fleet.add_symptom_predictor(injector.wrap_symptom_predictor(0, e.trend));
    fleet.add_event_predictor(injector.wrap_event_predictor(0, e.eventset));
    fleet.add_action(injector.wrap_action_factory(0, make_cleanup));
    fleet.add_action(injector.wrap_action_factory(1, make_repair));
  } else {
    fleet.add_symptom_predictor(e.trend);
    fleet.add_event_predictor(e.eventset);
    fleet.add_action(make_cleanup);
    fleet.add_action(make_repair);
  }
  fleet.run();

  Artifacts out;
  out.prometheus = obs::prometheus_text(hub.metrics(), /*include_wall=*/false);
  out.trace_json = obs::chrome_trace_json(hub.trace(), /*include_wall=*/false);
  out.json_line = obs::metrics_json_line(hub.metrics(), /*include_wall=*/false);
  out.dropped = hub.trace().dropped();
  const auto t = fleet.telemetry();
  out.num_slots = fleet.num_nodes();
  out.live_nodes = t.nodes;
  out.membership = t.membership;
  for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
    out.node_evals.push_back(fleet.node_mea_stats(i).evaluations);
    out.node_warnings.push_back(fleet.node_mea_stats(i).warnings);
    out.node_quarantined.push_back(fleet.node_quarantined(i));
    out.node_departed.push_back(fleet.node_departed(i));
    out.node_incarnation.push_back(fleet.node_incarnation(i));
  }
  return out;
}

void expect_identical(const Artifacts& a, const Artifacts& b) {
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.json_line, b.json_line);
  EXPECT_EQ(a.num_slots, b.num_slots);
  EXPECT_EQ(a.live_nodes, b.live_nodes);
  EXPECT_EQ(a.membership.nodes_joined, b.membership.nodes_joined);
  EXPECT_EQ(a.membership.nodes_left, b.membership.nodes_left);
  EXPECT_EQ(a.membership.handoffs, b.membership.handoffs);
  EXPECT_EQ(a.membership.scale_ups, b.membership.scale_ups);
  EXPECT_EQ(a.membership.drains, b.membership.drains);
  EXPECT_EQ(a.node_evals, b.node_evals);
  EXPECT_EQ(a.node_warnings, b.node_warnings);
  EXPECT_EQ(a.node_quarantined, b.node_quarantined);
  EXPECT_EQ(a.node_departed, b.node_departed);
  EXPECT_EQ(a.node_incarnation, b.node_incarnation);
}

// --- zero-overhead gating ----------------------------------------------------

/// A churn-free plan is inactive: the run registers no membership
/// metrics and its exports are byte-identical to a config that never
/// mentions membership at all (the PR-6 surface).
TEST(Membership, InactiveConfigIsByteIdenticalToMembershipFreeRuns) {
  for (bool hostile : {false, true}) {
    SCOPED_TRACE(hostile ? "hostile" : "clean");
    RunSpec untouched;
    untouched.hostile = hostile;
    const auto base = run_fleet(untouched);

    RunSpec churn_free = untouched;
    churn_free.plan.seed = 123;  // a seed alone arms nothing
    const auto run = run_fleet(churn_free);

    expect_identical(base, run);
    EXPECT_EQ(base.prometheus.find("pfm_fleet_membership"), std::string::npos);
    EXPECT_EQ(base.membership.nodes_joined, 0u);
  }
}

// --- replay under churn ------------------------------------------------------

/// The replay matrix under a hostile churn storm layered on the hostile
/// fault plan: per shard count, runs are bit-identical across thread
/// counts and across repeated runs.
TEST(Membership, ChurnAndFaultPlansReplayAcrossThreadCounts) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    RunSpec spec;
    spec.nodes = 16;
    spec.num_shards = shards;
    spec.epoch_ticks = 4;
    spec.adaptive = true;
    spec.hostile = true;
    spec.plan = churn_storm();
    const auto canonical = run_fleet(spec);
    ASSERT_EQ(canonical.dropped, 0u);
    EXPECT_EQ(canonical.num_slots, 18u);  // 16 + 2 joined
    EXPECT_EQ(canonical.membership.nodes_joined, 2u + 4u);  // + 4 restarts
    EXPECT_EQ(canonical.membership.nodes_left, 2u + 4u);
    EXPECT_EQ(canonical.membership.drains, 1u);
    EXPECT_TRUE(canonical.node_departed[3]);
    EXPECT_TRUE(canonical.node_departed[4]);
    EXPECT_EQ(canonical.node_incarnation[1], 1u);
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      RunSpec repeat = spec;
      repeat.threads = threads;
      const auto run = run_fleet(repeat);
      ASSERT_EQ(run.dropped, 0u);
      expect_identical(canonical, run);
    }
  }
}

/// Dense single-shard epoch_ticks-1 event-driven execution of a churn
/// plan is byte-identical to the lockstep scheduler's: both walk the
/// same membership clock.
TEST(Membership, LockstepAndEventDrivenAgreeUnderChurn) {
  RunSpec lockstep;
  lockstep.scheduler = runtime::FleetScheduler::kLockstep;
  lockstep.nodes = 8;
  lockstep.plan.seed = 7;
  lockstep.plan.scale_out(2000.0, 1)
      .node_leave(5000.0, 4)
      .drain_node(8000.0, 3)
      .restart_node(12000.0, 1);
  const auto canonical = run_fleet(lockstep);
  ASSERT_EQ(canonical.dropped, 0u);
  EXPECT_EQ(canonical.num_slots, 9u);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    SCOPED_TRACE("event-driven threads=" + std::to_string(threads));
    RunSpec event = lockstep;
    event.scheduler = runtime::FleetScheduler::kEventDriven;
    event.threads = threads;
    const auto run = run_fleet(event);
    ASSERT_EQ(run.dropped, 0u);
    expect_identical(canonical, run);
  }
}

// --- warm handoff / survivor conformance -------------------------------------

/// Survivors of a churned run are bit-identical to the same nodes in an
/// uninterrupted reference run: the scale-out burst forces an online
/// reshard that migrates survivors between shards mid-run (warm
/// handoff), and the departures change every later batch composition —
/// none of which may perturb a surviving node's decisions.
TEST(Membership, SurvivorsMatchUninterruptedReferenceBitForBit) {
  RunSpec reference;
  reference.nodes = 16;
  reference.num_shards = 4;
  reference.epoch_ticks = 4;
  reference.adaptive = true;
  const auto base = run_fleet(reference);

  RunSpec churned = reference;
  churned.plan.seed = 9;
  churned.plan.scale_out(4000.0, 3)
      .node_leave(5000.0, 4)
      .drain_node(8000.0, 3);
  const auto run = run_fleet(churned);

  EXPECT_GT(run.membership.handoffs, 0u)
      << "scale-out must have reshaped the shard blocks";
  EXPECT_EQ(run.num_slots, 19u);
  EXPECT_EQ(run.live_nodes, 17u);
  for (std::size_t i = 0; i < reference.nodes; ++i) {
    if (i == 3 || i == 4) continue;  // the churned nodes
    SCOPED_TRACE("survivor " + std::to_string(i));
    EXPECT_EQ(base.node_evals[i], run.node_evals[i]);
    EXPECT_EQ(base.node_warnings[i], run.node_warnings[i]);
    EXPECT_EQ(base.node_quarantined[i], run.node_quarantined[i]);
    EXPECT_FALSE(run.node_departed[i]);
  }
  // The drained node stopped early; it must have done no more work than
  // its uninterrupted twin.
  EXPECT_LT(run.node_evals[3], base.node_evals[3]);
  EXPECT_LT(run.node_evals[4], base.node_evals[4]);
}

// --- per-shard counter identity ----------------------------------------------

TEST(Membership, PerShardMembershipCountersSumToFleetTotals) {
  obs::ObservabilityConfig ocfg;
  ocfg.shards = 2;
  obs::Observability hub(ocfg);

  telecom::SimConfig sim;
  sim.seed = 21;
  sim.duration = kDuration;
  sim.leak_mtbf = 21600.0;

  runtime::FleetConfig cfg;
  cfg.mea.windows = geometry();
  cfg.scheduler = runtime::FleetScheduler::kEventDriven;
  cfg.num_shards = 4;
  cfg.num_threads = 2;
  cfg.epoch_ticks = 4;
  cfg.obs = &hub;
  cfg.membership.plan.seed = 11;
  cfg.membership.plan.scale_out(3000.0, 3)
      .node_leave(5000.0, 2)
      .restart_node(7000.0, 5)
      .drain_node(9000.0, 7);
  cfg.membership.factory = [sim](const membership::JoinContext& ctx) {
    telecom::SimConfig joiner = sim;
    joiner.seed = ctx.seed;
    return std::make_unique<runtime::ScpManagedSystem>(joiner);
  };

  runtime::FleetController fleet(runtime::make_scp_fleet(sim, 12), cfg);
  fleet.add_symptom_predictor(ensemble().trend);
  fleet.run();

  auto& metrics = hub.metrics();
  std::uint64_t joined = 0, left = 0, handoffs = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    joined +=
        metrics.counter("pfm_shard_membership_joined_total" + label).value();
    left += metrics.counter("pfm_shard_membership_left_total" + label).value();
    handoffs +=
        metrics.counter("pfm_shard_membership_handoffs_total" + label).value();
  }
  EXPECT_EQ(joined,
            metrics.counter("pfm_fleet_membership_nodes_joined_total").value());
  EXPECT_EQ(left,
            metrics.counter("pfm_fleet_membership_nodes_left_total").value());
  EXPECT_EQ(handoffs,
            metrics.counter("pfm_fleet_membership_handoffs_total").value());
  EXPECT_EQ(joined, 3u + 1u);  // scale-out burst + one restart
  EXPECT_EQ(left, 1u + 1u + 1u);  // leave + restart + drain
  EXPECT_GT(handoffs, 0u);

  // telemetry() mirrors the same registry values.
  const auto t = fleet.telemetry();
  EXPECT_EQ(t.membership.nodes_joined, joined);
  EXPECT_EQ(t.membership.nodes_left, left);
  EXPECT_EQ(t.membership.handoffs, handoffs);
  EXPECT_EQ(t.membership.drains, 1u);
}

// --- the prediction-driven scaling loop --------------------------------------

/// Deterministic quiet stub (same shape as the fleet-shard suite's).
class QuietStub final : public core::ManagedSystem {
 public:
  QuietStub(std::string name, double horizon, double urgency)
      : name_(std::move(name)),
        horizon_(horizon),
        urgency_(urgency),
        trace_(mon::SymptomSchema({"pressure"})) {}

  std::string name() const override { return name_; }
  double now() const override { return now_; }
  double horizon() const override { return horizon_; }
  bool finished() const override { return now_ >= horizon_; }
  void step_to(double t) override {
    t = std::min(t, horizon_);
    if (t <= now_) return;
    now_ = t;
    trace_.add_sample({now_, {0.1}});
  }
  const mon::MonitoringDataset& trace() const override { return trace_; }
  core::SchedulingHint scheduling_hint() const override {
    return core::SchedulingHint{urgency_};
  }

  std::size_t num_units() const override { return 1; }
  core::UnitHealth unit_health(std::size_t unit) const override {
    if (unit >= 1) throw std::out_of_range("QuietStub: unit");
    return {};
  }
  double offered_load() const override { return 100.0; }
  double unit_capacity() const override { return 200.0; }
  bool service_down() const override { return false; }
  void restart_unit(std::size_t) override {}
  void shed_load(double, double) override {}
  void checkpoint() override { ++checkpoints_; }
  void prepare_for_failure(double) override {}
  core::SystemStats system_stats() const override { return {}; }

  std::size_t checkpoints() const { return checkpoints_; }

 private:
  std::string name_;
  double now_ = 0.0;
  double horizon_;
  double urgency_;
  std::size_t checkpoints_ = 0;
  mon::MonitoringDataset trace_;
};

/// Constant-score predictor, configurable per node origin.
class OriginPredictor final : public pred::SymptomPredictor {
 public:
  OriginPredictor(double base, std::size_t hot_origin, double hot)
      : base_(base), hot_origin_(hot_origin), hot_(hot) {}
  std::string name() const override { return "origin"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.origin == hot_origin_ ? hot_ : base_;
  }

 private:
  double base_;
  std::size_t hot_origin_;
  double hot_;
};

runtime::FleetConfig stub_config(membership::ElasticityPolicy policy) {
  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.95;  // policy tests never warn
  cfg.membership.policy = policy;
  cfg.membership.factory = [](const membership::JoinContext& ctx) {
    return std::make_unique<QuietStub>(
        "joiner-" + std::to_string(ctx.node) + "." +
            std::to_string(ctx.incarnation),
        32 * 60.0, 1.0);
  };
  return cfg;
}

std::vector<std::unique_ptr<core::ManagedSystem>> stub_nodes(
    std::size_t count) {
  std::vector<std::unique_ptr<core::ManagedSystem>> nodes;
  for (std::size_t i = 0; i < count; ++i) {
    nodes.push_back(std::make_unique<QuietStub>("stub-" + std::to_string(i),
                                                32 * 60.0, 1.0));
  }
  return nodes;
}

/// Preventive scale-up: summed failure-probability mass crossing the
/// threshold adds capacity, bounded by max_policy_joins and cooldown.
TEST(Membership, PolicyScalesUpOnFailureMassAndHonoursJoinCap) {
  membership::ElasticityPolicy policy;
  policy.enabled = true;
  policy.scale_up_mass = 1.2;  // 3 nodes x 0.5 crosses it
  policy.scale_up_nodes = 2;
  policy.max_policy_joins = 2;
  policy.cooldown_epochs = 4;

  runtime::FleetController fleet(stub_nodes(3), stub_config(policy));
  fleet.add_symptom_predictor(
      std::make_shared<OriginPredictor>(0.5, 99, 0.5));
  fleet.run();

  const auto t = fleet.telemetry();
  EXPECT_EQ(t.membership.scale_ups, 1u);
  EXPECT_EQ(t.membership.nodes_joined, 2u);  // capped despite rising mass
  EXPECT_EQ(t.membership.nodes_left, 0u);
  EXPECT_EQ(t.nodes, 5u);
  EXPECT_EQ(fleet.num_nodes(), 5u);
  EXPECT_FALSE(fleet.node_departed(3));
  EXPECT_FALSE(fleet.node_departed(4));
}

/// Drain-and-failover: a node whose score crosses drain_score leaves
/// gracefully (prepare_for_drain -> checkpoint) and a policy-driven
/// replacement joins in the same barrier.
TEST(Membership, PolicyDrainsHotNodeAndFailsOverToReplacement) {
  membership::ElasticityPolicy policy;
  policy.enabled = true;
  policy.drain_score = 0.5;
  policy.failover_replace = true;

  auto nodes = stub_nodes(4);
  const auto* hot = static_cast<const QuietStub*>(nodes[1].get());
  runtime::FleetController fleet(std::move(nodes), stub_config(policy));
  fleet.add_symptom_predictor(
      std::make_shared<OriginPredictor>(0.05, 1, 0.8));
  fleet.run();

  const auto t = fleet.telemetry();
  EXPECT_EQ(t.membership.drains, 1u);
  EXPECT_EQ(t.membership.nodes_left, 1u);
  EXPECT_EQ(t.membership.nodes_joined, 1u);
  EXPECT_EQ(t.membership.scale_ups, 0u);
  EXPECT_EQ(t.nodes, 4u);  // drained one, gained one
  EXPECT_EQ(fleet.num_nodes(), 5u);
  EXPECT_TRUE(fleet.node_departed(1));
  EXPECT_FALSE(fleet.node_departed(0));
  EXPECT_FALSE(fleet.node_departed(4));
  EXPECT_GT(hot->checkpoints(), 0u)
      << "graceful drain must run prepare_for_drain";
}

// --- validation --------------------------------------------------------------

TEST(Membership, ConfigValidationRejectsMissingFactoriesAndBadTargets) {
  // Joins without a factory are rejected at construction.
  {
    runtime::FleetConfig cfg;
    cfg.membership.plan.scale_out(100.0, 1);
    EXPECT_THROW(runtime::FleetController(stub_nodes(2), cfg),
                 std::invalid_argument);
  }
  // An enabled policy may spawn replacements: factory required too.
  {
    runtime::FleetConfig cfg;
    cfg.membership.policy.enabled = true;
    cfg.membership.policy.scale_up_mass = 10.0;
    EXPECT_THROW(runtime::FleetController(stub_nodes(2), cfg),
                 std::invalid_argument);
  }
  // Invalid plan events are rejected at construction.
  {
    runtime::FleetConfig cfg;
    cfg.membership.plan.node_leave(-5.0, 0);
    EXPECT_THROW(runtime::FleetController(stub_nodes(2), cfg),
                 std::invalid_argument);
  }
  // A change targeting a slot that never exists throws mid-run.
  {
    runtime::FleetConfig cfg;
    cfg.membership.plan.node_leave(100.0, 99);
    runtime::FleetController fleet(stub_nodes(2), cfg);
    fleet.add_symptom_predictor(std::make_shared<OriginPredictor>(0.05, 9, 0.));
    EXPECT_THROW(fleet.run(), std::out_of_range);
  }
  // Churning a node that already left throws (double-leave).
  {
    runtime::FleetConfig cfg;
    cfg.membership.plan.node_leave(100.0, 0).node_leave(300.0, 0);
    runtime::FleetController fleet(stub_nodes(2), cfg);
    fleet.add_symptom_predictor(std::make_shared<OriginPredictor>(0.05, 9, 0.));
    EXPECT_THROW(fleet.run(), std::invalid_argument);
  }
}

}  // namespace
}  // namespace pfm
