#include "numerics/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "numerics/stats.hpp"

namespace pfm::num {
namespace {

TEST(Rng, Reproducible) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(5);
  std::vector<int> seen(3, 0);
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.uniform_int(0, 2);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 2);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int c : seen) EXPECT_GT(c, 800);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(rs.mean(), 3.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.exponential(2.0));
  EXPECT_NEAR(rs.mean(), 0.5, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(41);
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / double(n), 0.6, 0.015);
}

TEST(Rng, CategoricalErrors) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(rng.categorical(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(rng.categorical(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Rng, CategoricalZeroWeightNeverPicked) {
  Rng rng(2);
  const std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.categorical(w), 1u);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(55);
  auto p = rng.permutation(20);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(77);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / double(n), 0.2, 0.01);
}

}  // namespace
}  // namespace pfm::num
