// Online prediction-quality tracking (DESIGN.md §12): the streaming
// tracker must reproduce the offline evaluation pipeline exactly — same
// Sect. 3.3 matching rule, same contingency counts — while staying
// bit-identical across thread counts, shard-count invariant on a clean
// fleet, and silent (no instruments at all) when disabled. The live
// Eq. 8 availability gauges must agree with a by-hand recomputation
// through ctmc::clamped_quality and the closed-form CTMC solution.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ctmc/pfm_model.hpp"
#include "eval/metrics.hpp"
#include "monitoring/dataset.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "obs/quality.hpp"
#include "prediction/evaluate.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scp_system.hpp"

namespace pfm {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// --- replay cross-check against the offline pipeline ------------------------

/// Scores 1.0 whenever the newest sample's variable 0 exceeds 0.5 — the
/// same near-oracle stub the offline evaluate tests use.
class StubSymptom final : public pred::SymptomPredictor {
 public:
  std::string name() const override { return "stub"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values[0] > 0.5 ? 1.0 : 0.0;
  }
};

/// A trace with two failures and an imperfect precursor variable: high
/// before the first failure (hits), high once with no failure following
/// (a false alarm), and silent before the second failure (misses) — so
/// every contingency cell is populated.
mon::MonitoringDataset two_failure_trace() {
  mon::MonitoringDataset ds(mon::SymptomSchema({"v"}));
  for (double t = 0.0; t <= 8000.0; t += 50.0) {
    const bool precursor = (t > 1400.0 && t < 2000.0) ||  // true precursor
                           (t > 4000.0 && t < 4400.0);    // false alarm
    ds.add_sample({t, {precursor ? 1.0 : 0.0}});
  }
  ds.add_failure(2000.0);
  ds.add_failure(6500.0);  // unheralded: the stub scores 0 before it
  return ds;
}

/// Replays the offline grid through the online tracker: observe() every
/// sample instant in time order, resolve() at the horizon. Returns the
/// tracker's cumulative combined-lane counts.
obs::ConfusionCounts replay_online(const mon::MonitoringDataset& ds,
                                   const pred::SymptomPredictor& predictor,
                                   const pred::EvalOptions& eo,
                                   double threshold,
                                   obs::MetricsRegistry& registry) {
  obs::QualityConfig qc;
  qc.lead_time = eo.windows.lead_time;
  qc.prediction_window = eo.windows.prediction_window;
  qc.count_early_failures = eo.count_early_failures;
  qc.warning_threshold = threshold;
  qc.pending_capacity = ds.samples().size() + 1;  // no evictions
  qc.outcome_window = 4096;
  obs::QualityTracker tracker(qc, &registry);
  const std::vector<std::string> labels{"stub"};
  tracker.set_predictors(labels);
  tracker.ensure_nodes(1);

  const auto samples = ds.samples();
  const auto failures = ds.failures();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double t = samples[i].time;
    // The online situation score_on_grid replays: trailing context only.
    const std::size_t first =
        i + 1 >= eo.context_samples ? i + 1 - eo.context_samples : 0;
    pred::SymptomContext ctx;
    ctx.history = samples.subspan(first, i - first + 1);
    const double score = predictor.score(ctx);
    const double row[2] = {score, score};  // lane + combined
    tracker.resolve(0, t, failures);
    tracker.observe(0, t, row);
  }
  tracker.resolve(0, ds.end_time(), failures);
  EXPECT_EQ(tracker.cumulative(0).total(),
            tracker.cumulative(tracker.combined_lane()).total());
  return tracker.cumulative(tracker.combined_lane());
}

void expect_matches_offline(bool count_early_failures) {
  const auto ds = two_failure_trace();
  StubSymptom predictor;
  pred::EvalOptions eo;
  eo.windows = {600.0, 300.0, 300.0};
  eo.count_early_failures = count_early_failures;
  const double threshold = 0.6;

  // Offline: grid scoring plus a thresholded contingency table.
  const auto instants = pred::score_on_grid(predictor, ds, eo);
  ASSERT_FALSE(instants.empty());
  std::vector<double> scores;
  std::vector<int> labels;
  for (const auto& si : instants) {
    scores.push_back(si.score);
    labels.push_back(si.label);
  }
  const auto offline = eval::score_contingency(scores, labels, threshold);
  EXPECT_GT(offline.true_positives, 0u);
  EXPECT_GT(offline.false_positives, 0u);
  EXPECT_GT(offline.true_negatives, 0u);
  EXPECT_GT(offline.false_negatives, 0u);

  // Online: the tracker, fed the same instants as they would stream in.
  obs::MetricsRegistry registry(1);
  const auto online = replay_online(ds, predictor, eo, threshold, registry);

  EXPECT_EQ(online.true_positives, offline.true_positives);
  EXPECT_EQ(online.false_positives, offline.false_positives);
  EXPECT_EQ(online.true_negatives, offline.true_negatives);
  EXPECT_EQ(online.false_negatives, offline.false_negatives);
  EXPECT_EQ(online.total(), instants.size());
  EXPECT_DOUBLE_EQ(online.precision(), offline.precision());
  EXPECT_DOUBLE_EQ(online.recall(), offline.recall());
  EXPECT_DOUBLE_EQ(online.false_positive_rate(),
                   offline.false_positive_rate());
  EXPECT_DOUBLE_EQ(online.f_measure(), offline.f_measure());
}

TEST(Quality, OnlineReplayMatchesOfflineContingencyExactly) {
  expect_matches_offline(/*count_early_failures=*/true);
}

TEST(Quality, StrictWindowVariantMatchesOfflineToo) {
  expect_matches_offline(/*count_early_failures=*/false);
}

// --- tracker unit semantics --------------------------------------------------

TEST(Quality, ConfigValidates) {
  obs::MetricsRegistry registry(1);
  obs::QualityConfig qc;
  EXPECT_NO_THROW(obs::QualityTracker(qc, &registry));
  EXPECT_THROW(obs::QualityTracker(qc, nullptr), std::invalid_argument);
  auto bad = qc;
  bad.prediction_window = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = qc;
  bad.lead_time = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = qc;
  bad.pending_capacity = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = qc;
  bad.score_bins = 100;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Quality, LaneLabelsDedupAndAppendCombined) {
  obs::MetricsRegistry registry(1);
  obs::QualityConfig qc;
  obs::QualityTracker tracker(qc, &registry);
  const std::vector<std::string> labels{"ubf", "ubf", "combined"};
  tracker.set_predictors(labels);
  ASSERT_EQ(tracker.lanes(), 4u);
  EXPECT_EQ(tracker.lane_labels()[0], "ubf");
  EXPECT_EQ(tracker.lane_labels()[1], "ubf#1");
  EXPECT_EQ(tracker.lane_labels()[2], "combined#2");
  EXPECT_EQ(tracker.lane_labels()[3], "combined");
  EXPECT_EQ(tracker.combined_lane(), 3u);
  EXPECT_THROW(
      [&] {
        obs::QualityTracker fresh(qc, &registry);
        fresh.ensure_nodes(1);  // lanes not declared yet
      }(),
      std::invalid_argument);
}

TEST(Quality, PendingRingEvictsOldestAndCountsIt) {
  obs::MetricsRegistry registry(1);
  obs::QualityConfig qc;
  qc.lead_time = 0.0;
  qc.prediction_window = 100.0;
  qc.pending_capacity = 2;
  obs::QualityTracker tracker(qc, &registry);
  const std::vector<std::string> labels{"p"};
  tracker.set_predictors(labels);
  tracker.ensure_nodes(1);

  const double row[2] = {0.9, 0.9};
  tracker.observe(0, 0.0, row);
  tracker.observe(0, 10.0, row);
  tracker.observe(0, 20.0, row);  // evicts the t=0 instant
  EXPECT_EQ(tracker.pending_total(), 2u);
  EXPECT_EQ(registry.counter("pfm_quality_observed_total").value(), 3u);
  EXPECT_EQ(registry.counter("pfm_quality_evicted_total").value(), 1u);

  // Resolve everything: only the two surviving instants tally.
  const std::vector<double> failures;  // none -> all negatives
  tracker.resolve(0, 1000.0, failures);
  EXPECT_EQ(tracker.pending_total(), 0u);
  EXPECT_EQ(registry.counter("pfm_quality_resolved_total").value(), 2u);
  const auto counts = tracker.cumulative(tracker.combined_lane());
  EXPECT_EQ(counts.total(), 2u);
  EXPECT_EQ(counts.false_positives, 2u);  // 0.9 >= 0.6 with no failure
}

TEST(Quality, NanLaneScoresResolveToNoOutcome) {
  obs::MetricsRegistry registry(1);
  obs::QualityConfig qc;
  qc.lead_time = 0.0;
  qc.prediction_window = 100.0;
  obs::QualityTracker tracker(qc, &registry);
  const std::vector<std::string> labels{"p"};
  tracker.set_predictors(labels);
  tracker.ensure_nodes(1);

  const double row[2] = {kNaN, 0.2};  // lane 0 did not score here
  tracker.observe(0, 0.0, row);
  const std::vector<double> failures{50.0};
  tracker.resolve(0, 200.0, failures);
  EXPECT_EQ(tracker.cumulative(0).total(), 0u);
  const auto combined = tracker.cumulative(tracker.combined_lane());
  EXPECT_EQ(combined.total(), 1u);
  EXPECT_EQ(combined.false_negatives, 1u);  // 0.2 < 0.6, failure followed
}

TEST(Quality, ResetNodeClearsWindowKeepsCumulative) {
  obs::MetricsRegistry registry(1);
  obs::QualityConfig qc;
  qc.lead_time = 0.0;
  qc.prediction_window = 100.0;
  obs::QualityTracker tracker(qc, &registry);
  const std::vector<std::string> labels{"p"};
  tracker.set_predictors(labels);
  tracker.ensure_nodes(2);

  const double row[2] = {0.9, 0.9};
  const std::vector<double> failures;
  tracker.observe(0, 0.0, row);
  tracker.resolve(0, 200.0, failures);
  tracker.observe(0, 300.0, row);  // left pending by the restart
  ASSERT_EQ(tracker.node_windowed(0, 1).total(), 1u);

  tracker.reset_node(0);
  EXPECT_EQ(tracker.node_windowed(0, 1).total(), 0u);
  EXPECT_EQ(tracker.node_cumulative(0, 1).total(), 1u);
  EXPECT_EQ(tracker.pending_total(), 0u);
  EXPECT_EQ(registry.counter("pfm_quality_evicted_total").value(), 1u);
  EXPECT_EQ(tracker.windowed_nodes(1, 0, 2).total(), 0u);
}

TEST(Quality, SlidingWindowEvictsOldestOutcome) {
  obs::MetricsRegistry registry(1);
  obs::QualityConfig qc;
  qc.lead_time = 0.0;
  qc.prediction_window = 10.0;
  qc.outcome_window = 2;
  obs::QualityTracker tracker(qc, &registry);
  const std::vector<std::string> labels{"p"};
  tracker.set_predictors(labels);
  tracker.ensure_nodes(1);

  const std::vector<double> failures;
  const double warn[2] = {0.9, 0.9};
  const double quiet[2] = {0.1, 0.1};
  tracker.observe(0, 0.0, warn);   // fp once resolved
  tracker.observe(0, 1.0, quiet);  // tn
  tracker.observe(0, 2.0, quiet);  // tn — slides the fp out
  tracker.resolve(0, 100.0, failures);

  const auto windowed = tracker.windowed(tracker.combined_lane());
  EXPECT_EQ(windowed.total(), 2u);
  EXPECT_EQ(windowed.true_negatives, 2u);
  EXPECT_EQ(windowed.false_positives, 0u);
  const auto cumulative = tracker.cumulative(tracker.combined_lane());
  EXPECT_EQ(cumulative.false_positives, 1u);
  EXPECT_EQ(cumulative.true_negatives, 2u);
}

TEST(Quality, AucEstimateSeparatesAnOracle) {
  obs::MetricsRegistry registry(1);
  obs::QualityConfig qc;
  qc.lead_time = 0.0;
  qc.prediction_window = 10.0;
  obs::QualityTracker tracker(qc, &registry);
  const std::vector<std::string> labels{"p"};
  tracker.set_predictors(labels);
  tracker.ensure_nodes(1);

  // Positives score 0.95, negatives 0.05: a perfect separation.
  const std::vector<double> failures{105.0};
  const double hot[2] = {0.95, 0.95};
  const double cold[2] = {0.05, 0.05};
  tracker.observe(0, 100.0, hot);  // failure at 105 inside [100, 110)
  for (double t : {200.0, 300.0, 400.0}) tracker.observe(0, t, cold);
  EXPECT_DOUBLE_EQ(tracker.auc_estimate(0), 0.5);  // nothing resolved yet
  tracker.resolve(0, 1000.0, failures);
  EXPECT_DOUBLE_EQ(tracker.auc_estimate(0), 1.0);
  tracker.refresh_gauges();
  EXPECT_DOUBLE_EQ(registry.gauge("pfm_quality_auc{predictor=\"p\"}").value(),
                   1.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("pfm_quality_precision{predictor=\"p\"}").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("pfm_quality_recall{predictor=\"p\"}").value(), 1.0);
}

TEST(Quality, ClampedQualityHandlesDegenerateInputs) {
  // Non-finite anywhere falls back to the perfect-predictor point.
  const auto nan = ctmc::clamped_quality(kNaN, 0.5, 0.1);
  EXPECT_DOUBLE_EQ(nan.precision, 1.0);
  EXPECT_DOUBLE_EQ(nan.recall, 1.0);
  EXPECT_DOUBLE_EQ(nan.false_positive_rate, 0.0);
  // Boundary clamps: zero precision lifts to eps, fpr backs off 1.
  const auto lifted = ctmc::clamped_quality(0.0, 1.5, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(lifted.precision, 1e-6);
  EXPECT_DOUBLE_EQ(lifted.recall, 1.0);
  EXPECT_DOUBLE_EQ(lifted.false_positive_rate, 1.0 - 1e-6);
  // precision < 1 with fpr == 0 is contradictory; fpr lifts to eps.
  const auto contradictory = ctmc::clamped_quality(0.5, 0.5, 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(contradictory.false_positive_rate, 1e-6);
  EXPECT_NO_THROW(contradictory.validate());
  // Every clamped point must be a valid model input.
  EXPECT_NO_THROW(ctmc::clamped_quality(0.0, -3.0, 9.0).validate());
}

// --- fleet integration -------------------------------------------------------

/// Oracle predictor: newest value of symptom 0 (see test_fleet).
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t pressure_index)
      : index_(pressure_index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

telecom::SimConfig scp_config() {
  telecom::SimConfig cfg;
  cfg.seed = 21;
  cfg.duration = 0.5 * 86400.0;
  cfg.leak_mtbf = 21600.0;  // enough pressure to trigger warnings
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;
  return cfg;
}

struct QualityRun {
  std::string prometheus;
  obs::ConfusionCounts combined_windowed;
  double model_gauge = 0.0;
  double measured_gauge = 0.0;
  double drift_gauge = 0.0;
  double recomputed_model = 0.0;
  double measured_availability = 0.0;
};

QualityRun run_quality_scp_fleet(std::size_t num_threads, bool enable_quality,
                                 runtime::FleetScheduler scheduler =
                                     runtime::FleetScheduler::kLockstep,
                                 std::size_t num_shards = 1) {
  const std::size_t kNodes = 16;
  obs::ObservabilityConfig ocfg;
  ocfg.shards = num_threads;
  obs::Observability hub(ocfg);

  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.72;
  cfg.mea.action_cooldown = 600.0;
  cfg.num_threads = num_threads;
  cfg.scheduler = scheduler;
  cfg.num_shards = num_shards;
  cfg.epoch_ticks = 4;
  cfg.quality.enabled = enable_quality;
  cfg.obs = &hub;
  auto nodes = runtime::make_scp_fleet(scp_config(), kNodes);
  const auto idx = *nodes.front()->trace().schema().index("mem_pressure_max");
  runtime::FleetController fleet(std::move(nodes), cfg);
  fleet.add_symptom_predictor(std::make_shared<PressurePredictor>(idx));
  fleet.add_action(
      [] { return std::make_unique<act::StateCleanupAction>(0.70); });
  fleet.add_action(
      [] { return std::make_unique<act::PreparedRepairAction>(1800.0); });
  fleet.run();

  QualityRun out;
  out.prometheus = obs::prometheus_text(hub.metrics(), false);
  const auto* tracker = fleet.quality_tracker();
  EXPECT_EQ(tracker != nullptr, enable_quality);
  if (tracker != nullptr) {
    out.combined_windowed = tracker->windowed(tracker->combined_lane());
    out.model_gauge =
        hub.metrics().gauge("pfm_quality_model_availability").value();
    out.measured_gauge =
        hub.metrics().gauge("pfm_quality_measured_availability").value();
    out.drift_gauge =
        hub.metrics().gauge("pfm_quality_availability_drift").value();
    ctmc::PfmModelParams params = cfg.quality.model;
    params.quality = ctmc::clamped_quality(
        out.combined_windowed.precision(), out.combined_windowed.recall(),
        out.combined_windowed.false_positive_rate());
    out.recomputed_model =
        ctmc::PfmAvailabilityModel(params).availability_closed_form();
    out.measured_availability = fleet.telemetry().system.availability();
  }
  return out;
}

TEST(QualityFleet, DisabledConfigExportsNoQualitySeries) {
  const auto run = run_quality_scp_fleet(2, /*enable_quality=*/false);
  EXPECT_EQ(run.prometheus.find("pfm_quality"), std::string::npos);
}

TEST(QualityFleet, EnabledConfigExportsTheScoreboard) {
  const auto run = run_quality_scp_fleet(1, /*enable_quality=*/true);
  EXPECT_NE(run.prometheus.find("pfm_quality_outcomes_total{predictor="
                                "\"combined\",outcome=\"tp\"}"),
            std::string::npos);
  EXPECT_NE(run.prometheus.find("pfm_quality_precision{predictor="
                                "\"pressure\"}"),
            std::string::npos);
  EXPECT_NE(run.prometheus.find("pfm_quality_model_availability"),
            std::string::npos);
  EXPECT_NE(run.prometheus.find("pfm_quality_pending_instants"),
            std::string::npos);
  // The scenario actually resolves instants in every quadrant's reach.
  EXPECT_GT(run.combined_windowed.total(), 0u);
}

TEST(QualityFleet, SimTimeQualityExportsBitIdenticalAcrossThreadCounts) {
  const auto t1 = run_quality_scp_fleet(1, true);
  const auto t2 = run_quality_scp_fleet(2, true);
  const auto t8 = run_quality_scp_fleet(8, true);
  EXPECT_EQ(t1.prometheus, t2.prometheus);
  EXPECT_EQ(t1.prometheus, t8.prometheus);
}

TEST(QualityFleet, EventDrivenQualityExportsBitIdenticalAcrossThreadCounts) {
  const auto t1 = run_quality_scp_fleet(1, true,
                                        runtime::FleetScheduler::kEventDriven,
                                        /*num_shards=*/4);
  const auto t2 = run_quality_scp_fleet(2, true,
                                        runtime::FleetScheduler::kEventDriven,
                                        /*num_shards=*/4);
  const auto t8 = run_quality_scp_fleet(8, true,
                                        runtime::FleetScheduler::kEventDriven,
                                        /*num_shards=*/4);
  EXPECT_EQ(t1.prometheus, t2.prometheus);
  EXPECT_EQ(t1.prometheus, t8.prometheus);
}

/// Extracts the fleet-wide pfm_quality_* lines of a scrape, skipping the
/// per-shard Eq. 8 attributions (registered only for multi-shard fleets
/// by design, so they cannot be part of a cross-shard-count comparison).
std::string quality_lines(const std::string& prometheus) {
  std::string out;
  std::size_t begin = 0;
  while (begin < prometheus.size()) {
    std::size_t end = prometheus.find('\n', begin);
    if (end == std::string::npos) end = prometheus.size();
    const std::string line = prometheus.substr(begin, end - begin);
    if (line.find("pfm_quality") != std::string::npos &&
        line.find("{shard=") == std::string::npos) {
      out += line;
      out += '\n';
    }
    begin = end + 1;
  }
  return out;
}

// On a clean fleet (no component faults, so no per-shard breaker or
// quarantine divergence) the scoreboard depends only on each node's own
// visit schedule — shard-count invariant by construction.
TEST(QualityFleet, CleanFleetScoreboardIsShardCountInvariant) {
  const auto s1 = run_quality_scp_fleet(
      2, true, runtime::FleetScheduler::kEventDriven, 1);
  const auto s4 = run_quality_scp_fleet(
      2, true, runtime::FleetScheduler::kEventDriven, 4);
  const auto s16 = run_quality_scp_fleet(
      2, true, runtime::FleetScheduler::kEventDriven, 16);
  const std::string q1 = quality_lines(s1.prometheus);
  ASSERT_FALSE(q1.empty());
  EXPECT_EQ(q1, quality_lines(s4.prometheus));
  EXPECT_EQ(q1, quality_lines(s16.prometheus));
  // Multi-shard fleets additionally attribute the Eq. 8 estimate.
  EXPECT_EQ(s1.prometheus.find("pfm_quality_model_availability{shard="),
            std::string::npos);
  EXPECT_NE(s4.prometheus.find("pfm_quality_model_availability{shard=\"3\"}"),
            std::string::npos);
  EXPECT_NE(
      s16.prometheus.find("pfm_quality_model_availability{shard=\"15\"}"),
      std::string::npos);
}

TEST(QualityFleet, Eq8GaugesMatchRecomputedClosedForm) {
  const auto run = run_quality_scp_fleet(2, true);
  EXPECT_DOUBLE_EQ(run.model_gauge, run.recomputed_model);
  EXPECT_DOUBLE_EQ(run.measured_gauge, run.measured_availability);
  EXPECT_DOUBLE_EQ(run.drift_gauge, run.model_gauge - run.measured_gauge);
  EXPECT_GT(run.model_gauge, 0.0);
  EXPECT_LE(run.model_gauge, 1.0);
  EXPECT_GT(run.measured_gauge, 0.0);
  EXPECT_LE(run.measured_gauge, 1.0);
}

}  // namespace
}  // namespace pfm
