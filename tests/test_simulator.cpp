#include "telecom/simulator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pfm::telecom {
namespace {

TEST(SimConfig, Validation) {
  SimConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.duration = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.num_nodes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.diurnal_amplitude = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.max_violation_fraction = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Simulator, ReproducibleForSameSeed) {
  SimConfig cfg;
  cfg.duration = 86400.0;
  cfg.seed = 42;
  ScpSimulator a(cfg), b(cfg);
  a.run();
  b.run();
  EXPECT_EQ(a.stats().failures, b.stats().failures);
  EXPECT_EQ(a.stats().total_requests, b.stats().total_requests);
  EXPECT_EQ(a.trace().events().size(), b.trace().events().size());
  EXPECT_EQ(a.trace().samples().size(), b.trace().samples().size());
}

TEST(Simulator, DifferentSeedsDiffer) {
  SimConfig cfg;
  cfg.duration = 86400.0;
  cfg.seed = 1;
  ScpSimulator a(cfg);
  cfg.seed = 2;
  ScpSimulator b(cfg);
  a.run();
  b.run();
  EXPECT_NE(a.stats().total_requests, b.stats().total_requests);
}

TEST(Simulator, SchemaHasFifteenDocumentedVariables) {
  SimConfig cfg;
  cfg.duration = 600.0;
  ScpSimulator sim(cfg);
  sim.run();
  const auto& schema = sim.trace().schema();
  EXPECT_EQ(schema.size(), 15u);
  EXPECT_TRUE(schema.index("free_mem_min_mb").has_value());
  EXPECT_TRUE(schema.index("util_max").has_value());
  EXPECT_TRUE(schema.index("error_rate").has_value());
  EXPECT_FALSE(schema.index("no_such_variable").has_value());
}

TEST(Simulator, SamplesArriveAtConfiguredInterval) {
  SimConfig cfg;
  cfg.duration = 3600.0;
  cfg.sample_interval = 30.0;
  ScpSimulator sim(cfg);
  sim.run();
  const auto samples = sim.trace().samples();
  ASSERT_GT(samples.size(), 100u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_NEAR(samples[i].time - samples[i - 1].time, 30.0, 1.5);
  }
}

TEST(Simulator, MultiDayRunProducesFailuresOfSeveralCauses) {
  SimConfig cfg;
  cfg.duration = 7.0 * 86400.0;
  cfg.seed = 5;
  ScpSimulator sim(cfg);
  sim.run();
  EXPECT_GT(sim.stats().failures, 10);
  EXPECT_LT(sim.stats().failures, 200);
  EXPECT_EQ(static_cast<std::size_t>(sim.stats().failures),
            sim.trace().failures().size());
  std::set<FailureCause> causes;
  for (const auto& f : sim.failure_infos()) causes.insert(f.cause);
  // The three injected fault classes all surface as failures.
  EXPECT_TRUE(causes.contains(FailureCause::kMemoryLeak));
  EXPECT_TRUE(causes.contains(FailureCause::kCascade));
  EXPECT_TRUE(causes.contains(FailureCause::kOverload));
}

TEST(Simulator, AvailabilityWithinBoundsAndDowntimeConsistent) {
  SimConfig cfg;
  cfg.duration = 4.0 * 86400.0;
  cfg.seed = 9;
  ScpSimulator sim(cfg);
  sim.run();
  const auto& st = sim.stats();
  EXPECT_GT(st.availability(), 0.8);
  EXPECT_LE(st.availability(), 1.0);
  // Downtime should roughly equal the sum of repair times (failures do not
  // overlap because the service is down while repairing).
  double ttr_sum = 0.0;
  for (const auto& f : sim.failure_infos()) ttr_sum += f.repair_time;
  EXPECT_NEAR(st.downtime, ttr_sum, 0.05 * ttr_sum + 10.0);
}

TEST(Simulator, RepairTimeDecompositionFollowsFig8) {
  SimConfig cfg;
  ScpSimulator sim(cfg);
  // Prepared repair is faster at equal checkpoint age.
  EXPECT_LT(sim.repair_time(true, 1000.0), sim.repair_time(false, 1000.0));
  // Older checkpoints mean more recomputation...
  EXPECT_LT(sim.repair_time(false, 100.0), sim.repair_time(false, 10000.0));
  // ...bounded by recompute_max.
  EXPECT_NEAR(sim.repair_time(false, 1e9),
              cfg.reconfig_cold + cfg.recompute_max, 1e-9);
  // Fresh checkpoint: reconfiguration only.
  EXPECT_NEAR(sim.repair_time(true, 0.0), cfg.reconfig_warm, 1e-9);
}

TEST(Simulator, PreparedRepairShortensDowntime) {
  // Two identical runs; in one, repairs are always prepared via a standing
  // prepare_for_failure window refreshed continuously.
  SimConfig cfg;
  cfg.duration = 4.0 * 86400.0;
  cfg.seed = 11;
  ScpSimulator plain(cfg);
  plain.run();

  ScpSimulator prepared(cfg);
  while (!prepared.finished()) {
    prepared.prepare_for_failure(4000.0);
    prepared.step_to(prepared.now() + 3600.0);
  }
  ASSERT_GT(plain.stats().failures, 0);
  EXPECT_GT(prepared.stats().prepared_repairs, 0);
  EXPECT_EQ(plain.stats().prepared_repairs, 0);
  // Same fault processes (same seed), so downtime per failure must shrink.
  const double plain_ttr =
      plain.stats().downtime / static_cast<double>(plain.stats().failures);
  const double prep_ttr =
      prepared.stats().downtime /
      static_cast<double>(prepared.stats().failures);
  EXPECT_LT(prep_ttr, plain_ttr);
}

TEST(Simulator, PreventiveRestartIsCountedAndClearsNode) {
  SimConfig cfg;
  cfg.duration = 7200.0;
  ScpSimulator sim(cfg);
  sim.step_to(3600.0);
  sim.preventive_restart(0);
  EXPECT_EQ(sim.stats().preventive_restarts, 1);
  EXPECT_FALSE(sim.node(0).available(sim.now()));
  EXPECT_THROW(sim.preventive_restart(99), std::out_of_range);
}

TEST(Simulator, ShedLoadReducesServedRequests) {
  SimConfig cfg;
  cfg.duration = 4.0 * 3600.0;
  cfg.seed = 13;
  ScpSimulator plain(cfg);
  plain.run();

  ScpSimulator shedding(cfg);
  shedding.step_to(3600.0);
  shedding.shed_load(0.5, 3.0 * 3600.0);
  shedding.step_to(cfg.duration);
  EXPECT_GT(shedding.stats().shed_requests, 0);
  EXPECT_LT(shedding.stats().total_requests, plain.stats().total_requests);
}

TEST(Simulator, StepToIsIdempotentAndMonotone) {
  SimConfig cfg;
  cfg.duration = 3600.0;
  ScpSimulator sim(cfg);
  sim.step_to(600.0);
  const double t = sim.now();
  sim.step_to(100.0);  // earlier target: no-op
  EXPECT_DOUBLE_EQ(sim.now(), t);
  sim.step_to(1e9);  // clamped to duration
  EXPECT_TRUE(sim.finished());
  EXPECT_LE(sim.now(), cfg.duration + cfg.tick);
}

TEST(Simulator, FailureEntersDowntimeAndRecovers) {
  SimConfig cfg;
  cfg.duration = 7.0 * 86400.0;
  cfg.seed = 5;
  ScpSimulator sim(cfg);
  // Step until the first failure.
  while (sim.stats().failures == 0 && !sim.finished()) {
    sim.step_to(sim.now() + 300.0);
  }
  ASSERT_GT(sim.stats().failures, 0);
  EXPECT_TRUE(sim.service_down());
  const auto& f = sim.failure_infos().front();
  sim.step_to(f.time + f.repair_time + 10.0);
  EXPECT_FALSE(sim.service_down());
}

}  // namespace
}  // namespace pfm::telecom
