#include "core/architecture.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>

#include "numerics/rng.hpp"

namespace pfm::core {
namespace {

class ConstSymptom final : public pred::SymptomPredictor {
 public:
  explicit ConstSymptom(double v) : v_(v) {}
  std::string name() const override { return "const"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext&) const override { return v_; }

 private:
  double v_;
};

class CountEvents final : public pred::EventPredictor {
 public:
  std::string name() const override { return "count"; }
  void train(std::span<const mon::ErrorSequence>,
             std::span<const mon::ErrorSequence>) override {}
  double score(const mon::ErrorSequence& s) const override {
    return std::min(1.0, 0.25 * static_cast<double>(s.events.size()));
  }
};

pred::SymptomContext some_context() {
  static std::vector<mon::SymptomSample> samples{{100.0, {1.0}}};
  pred::SymptomContext ctx;
  ctx.history = samples;
  return ctx;
}

TEST(Layers, Names) {
  EXPECT_EQ(to_string(Layer::kHardware), "hardware");
  EXPECT_EQ(to_string(Layer::kApplication), "application");
  EXPECT_EQ(to_string(Layer::kVirtualMachineMonitor),
            "virtual-machine-monitor");
}

TEST(Architecture, LayerRegistrationAndScores) {
  LayeredArchitecture arch;
  EXPECT_EQ(arch.num_active_layers(), 0u);
  EXPECT_THROW(arch.set_layer(Layer::kHardware, {}), std::invalid_argument);

  arch.set_layer(Layer::kHardware,
                 {std::make_shared<ConstSymptom>(0.2), nullptr});
  LayerPredictors app;
  app.symptom = std::make_shared<ConstSymptom>(0.7);
  app.event = std::make_shared<CountEvents>();
  arch.set_layer(Layer::kApplication, std::move(app));

  EXPECT_TRUE(arch.has_layer(Layer::kHardware));
  EXPECT_FALSE(arch.has_layer(Layer::kMiddleware));
  EXPECT_EQ(arch.num_active_layers(), 2u);

  mon::ErrorSequence seq;
  seq.events.push_back({90.0, 201, 0, 2});
  const auto hw = arch.layer_score(Layer::kHardware, some_context(), seq);
  ASSERT_TRUE(hw.has_value());
  EXPECT_DOUBLE_EQ(*hw, 0.2);
  // Application layer combines symptom (0.7) and event (0.25) by max.
  const auto app_score =
      arch.layer_score(Layer::kApplication, some_context(), seq);
  ASSERT_TRUE(app_score.has_value());
  EXPECT_DOUBLE_EQ(*app_score, 0.7);
  EXPECT_FALSE(
      arch.layer_score(Layer::kMiddleware, some_context(), seq).has_value());

  const auto all = arch.all_scores(some_context(), seq);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0], 0.2);  // layer order: hardware first
  EXPECT_DOUBLE_EQ(all[1], 0.7);
}

TEST(Architecture, FuseFallsBackToMaxWithoutFusion) {
  LayeredArchitecture arch;
  arch.set_layer(Layer::kHardware,
                 {std::make_shared<ConstSymptom>(0.3), nullptr});
  arch.set_layer(Layer::kApplication,
                 {std::make_shared<ConstSymptom>(0.8), nullptr});
  mon::ErrorSequence seq;
  EXPECT_DOUBLE_EQ(arch.fuse(some_context(), seq), 0.8);
}

TEST(Architecture, FittedFusionCombinesLayers) {
  LayeredArchitecture arch;
  arch.set_layer(Layer::kHardware,
                 {std::make_shared<ConstSymptom>(0.3), nullptr});
  arch.set_layer(Layer::kApplication,
                 {std::make_shared<ConstSymptom>(0.8), nullptr});
  // Synthetic out-of-sample level-0 scores: layer 1 is informative.
  num::Rng rng(3);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 1000; ++i) {
    const int y = rng.bernoulli(0.3) ? 1 : 0;
    scores.push_back(rng.uniform());                      // hardware: noise
    scores.push_back(y ? 0.9 : 0.1);                      // app: informative
    labels.push_back(y);
  }
  arch.fit_fusion(scores, labels);
  const auto contributions = arch.contributions();
  ASSERT_EQ(contributions.size(), 2u);
  // Translucency: the informative layer carries the larger weight.
  EXPECT_GT(contributions[1].stacking_weight,
            contributions[0].stacking_weight);

  mon::ErrorSequence seq;
  const double fused = arch.fuse(some_context(), seq);
  EXPECT_GT(fused, 0.0);
  EXPECT_LT(fused, 1.0);
}

TEST(Architecture, FitFusionWithoutLayersThrows) {
  LayeredArchitecture arch;
  EXPECT_THROW(arch.fit_fusion(std::vector<double>{0.1}, std::vector<int>{1}),
               std::logic_error);
}

TEST(Architecture, ContributionsEmbedCallerScores) {
  LayeredArchitecture arch;
  arch.set_layer(Layer::kHardware,
                 {std::make_shared<ConstSymptom>(0.2), nullptr});
  arch.set_layer(Layer::kApplication,
                 {std::make_shared<ConstSymptom>(0.7), nullptr});

  // Scoring keeps no state, so the no-arg report leaves last_score at 0.
  mon::ErrorSequence seq;
  const auto scores = arch.all_scores(some_context(), seq);
  for (const auto& c : arch.contributions()) {
    EXPECT_DOUBLE_EQ(c.last_score, 0.0);
  }

  const auto report = arch.contributions(scores);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].layer, Layer::kHardware);
  EXPECT_DOUBLE_EQ(report[0].last_score, 0.2);
  EXPECT_EQ(report[1].layer, Layer::kApplication);
  EXPECT_DOUBLE_EQ(report[1].last_score, 0.7);

  EXPECT_THROW(arch.contributions(std::vector<double>{0.1}),
               std::invalid_argument);
}

TEST(Architecture, ConstScoringIsSafeFromManyThreads) {
  // Regression for the old `mutable last_scores_` member: layer_score and
  // friends are const and must not write shared state, so hammering one
  // instance from several threads is race-free (run under
  // -DPFM_SANITIZE=thread to prove it) and every thread sees the same
  // values.
  LayeredArchitecture arch;
  arch.set_layer(Layer::kHardware,
                 {std::make_shared<ConstSymptom>(0.3), nullptr});
  arch.set_layer(Layer::kApplication,
                 {std::make_shared<ConstSymptom>(0.8), nullptr});
  mon::ErrorSequence seq;

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const auto all = arch.all_scores(some_context(), seq);
        if (all.size() != 2 || all[0] != 0.3 || all[1] != 0.8) ++mismatches;
        if (arch.fuse(some_context(), seq) != 0.8) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Architecture, DriftDetectionFlagsRetraining) {
  LayeredArchitecture arch;
  arch.set_layer(Layer::kOperatingSystem,
                 {std::make_shared<ConstSymptom>(0.5), nullptr});
  EXPECT_TRUE(arch.take_retraining_requests().empty());
  num::Rng rng(5);
  // Stable behavior indicator: no drift.
  bool drifted = false;
  for (int i = 0; i < 300; ++i) {
    drifted |= arch.observe_layer_behavior(Layer::kOperatingSystem,
                                           rng.normal(0.1, 0.02));
  }
  EXPECT_FALSE(drifted);
  // The layer's behavior shifts (e.g., after an upgrade).
  int steps = 0;
  while (!arch.observe_layer_behavior(Layer::kOperatingSystem,
                                      rng.normal(0.9, 0.02))) {
    ASSERT_LT(++steps, 500);
  }
  const auto requests = arch.take_retraining_requests();
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0], Layer::kOperatingSystem);
  // Requests are cleared after being taken.
  EXPECT_TRUE(arch.take_retraining_requests().empty());
}

}  // namespace
}  // namespace pfm::core
