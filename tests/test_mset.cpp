#include "prediction/mset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "numerics/rng.hpp"
#include "prediction/evaluate.hpp"

namespace pfm::pred {
namespace {

/// Two healthy operating regimes (low/high load) plus a pre-failure drift
/// regime of variable 0.
mon::MonitoringDataset regime_trace(std::uint64_t seed) {
  num::Rng rng(seed);
  mon::MonitoringDataset ds(mon::SymptomSchema({"a", "b"}));
  const double period = 8000.0;
  double next_failure = period;
  for (double t = 0.0; t < 5.0 * 86400.0; t += 30.0) {
    const bool high = std::fmod(t, 7200.0) > 3600.0;  // alternating regimes
    double a = rng.normal(high ? 3.0 : 1.0, 0.15);
    double b = rng.normal(high ? 2.0 : 0.5, 0.15);
    const double to_failure = next_failure - t;
    if (to_failure < 1200.0 && to_failure > 0.0) {
      a += 2.5 * (1.0 - to_failure / 1200.0);  // drift out of both regimes
    }
    ds.add_sample({t, {a, b}});
    if (t >= next_failure) {
      ds.add_failure(t);
      next_failure += period;
    }
  }
  return ds;
}

MsetConfig fast_config() {
  MsetConfig cfg;
  cfg.windows = {600.0, 300.0, 300.0};
  cfg.memory_size = 24;
  return cfg;
}

TEST(Mset, ConfigValidation) {
  MsetConfig cfg = fast_config();
  cfg.memory_size = 1;
  EXPECT_THROW(MsetPredictor{cfg}, std::invalid_argument);
  cfg = fast_config();
  cfg.bandwidth = 0.0;
  EXPECT_THROW(MsetPredictor{cfg}, std::invalid_argument);
}

TEST(Mset, GuardsBeforeTraining) {
  MsetPredictor p(fast_config());
  SymptomContext ctx;
  EXPECT_THROW(p.score(ctx), std::logic_error);
  EXPECT_THROW(p.residual(std::vector<double>{1.0, 2.0}), std::logic_error);
}

TEST(Mset, TrainRequiresEnoughHealthyData) {
  MsetPredictor p(fast_config());
  mon::MonitoringDataset tiny(mon::SymptomSchema({"a"}));
  for (int i = 0; i < 10; ++i) tiny.add_sample({i * 30.0, {1.0}});
  tiny.add_failure(200.0);
  tiny.add_sample({400.0, {1.0}});
  EXPECT_THROW(p.train(tiny), std::invalid_argument);
}

TEST(Mset, HealthyStatesReconstructWellAnomalousDont) {
  const auto trace = regime_trace(3);
  MsetPredictor p(fast_config());
  p.train(trace);
  EXPECT_EQ(p.memory_size(), 24u);
  // Observations inside either healthy regime: small residual.
  const double r_low = p.residual(std::vector<double>{1.0, 0.5});
  const double r_high = p.residual(std::vector<double>{3.0, 2.0});
  // An observation far outside both regimes: large residual.
  const double r_bad = p.residual(std::vector<double>{5.5, 0.5});
  EXPECT_LT(r_low, r_bad);
  EXPECT_LT(r_high, r_bad);
}

TEST(Mset, ScoreSeparatesAnomalousStates) {
  const auto trace = regime_trace(5);
  MsetPredictor p(fast_config());
  p.train(trace);
  auto ctx_of = [](double a, double b) {
    static std::vector<mon::SymptomSample> h;
    h = {{1000.0, {a, b}}};
    SymptomContext ctx;
    ctx.history = h;
    return ctx;
  };
  EXPECT_LT(p.score(ctx_of(1.0, 0.5)), 0.4);   // healthy regime
  EXPECT_GT(p.score(ctx_of(5.5, 0.5)), 0.6);   // far out-of-norm
}

TEST(Mset, EndToEndAucBeatsChance) {
  const auto trace = regime_trace(7);
  const auto [train, test] = trace.split_at(3.5 * 86400.0);
  MsetPredictor p(fast_config());
  p.train(train);
  EvalOptions eo;
  eo.windows = fast_config().windows;
  const auto report = make_report("MSET", score_on_grid(p, test, eo));
  EXPECT_GT(report.auc, 0.75);
}

TEST(Mset, MultiModalHealthIsNotFlaggedByMeanDistance) {
  // The point of the memory-matrix approach: *both* healthy regimes score
  // low, even though each is far from the overall mean.
  const auto trace = regime_trace(9);
  MsetPredictor p(fast_config());
  p.train(trace);
  const double r_low = p.residual(std::vector<double>{1.0, 0.5});
  const double r_high = p.residual(std::vector<double>{3.0, 2.0});
  const double r_between = p.residual(std::vector<double>{2.0, 1.25});
  // The midpoint between regimes is *less* healthy than either regime.
  EXPECT_GT(r_between, r_low);
  EXPECT_GT(r_between, r_high);
}

}  // namespace
}  // namespace pfm::pred
