#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "numerics/rng.hpp"

namespace pfm::eval {
namespace {

TEST(ContingencyTable, MetricsMatchDefinitions) {
  // Sect. 3.3's worked example: precision 0.8 means 80% of warnings are
  // true; recall 0.9 means 90% of failures are caught.
  ContingencyTable t;
  t.true_positives = 8;
  t.false_positives = 2;
  t.false_negatives = 1;  // 8 of 9 failures predicted -> recall 8/9
  t.true_negatives = 89;
  EXPECT_DOUBLE_EQ(t.precision(), 0.8);
  EXPECT_NEAR(t.recall(), 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(t.false_positive_rate(), 2.0 / 91.0, 1e-12);
  EXPECT_EQ(t.total(), 100u);
  EXPECT_NEAR(t.accuracy(), 0.97, 1e-12);
  const double p = 0.8, r = 8.0 / 9.0;
  EXPECT_NEAR(t.f_measure(), 2 * p * r / (p + r), 1e-12);
}

TEST(ContingencyTable, DegenerateDenominators) {
  ContingencyTable t;  // all zero
  EXPECT_DOUBLE_EQ(t.precision(), 1.0);
  EXPECT_DOUBLE_EQ(t.recall(), 1.0);
  EXPECT_DOUBLE_EQ(t.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(t.accuracy(), 0.0);
}

TEST(ScoreContingency, ThresholdSplitsCorrectly) {
  const std::vector<double> scores{0.9, 0.8, 0.3, 0.1};
  const std::vector<int> labels{1, 0, 1, 0};
  const auto t = score_contingency(scores, labels, 0.5);
  EXPECT_EQ(t.true_positives, 1u);
  EXPECT_EQ(t.false_positives, 1u);
  EXPECT_EQ(t.false_negatives, 1u);
  EXPECT_EQ(t.true_negatives, 1u);
  // Threshold is inclusive.
  const auto t2 = score_contingency(scores, labels, 0.9);
  EXPECT_EQ(t2.true_positives, 1u);
  EXPECT_EQ(t2.false_positives, 0u);
}

TEST(ScoreContingency, LengthMismatchThrows) {
  EXPECT_THROW(score_contingency(std::vector<double>{1.0},
                                 std::vector<int>{1, 0}, 0.5),
               std::invalid_argument);
}

TEST(Roc, PerfectClassifierHasUnitAuc) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 1.0);
}

TEST(Roc, InvertedClassifierHasZeroAuc) {
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.0);
}

TEST(Roc, RandomScoresGiveHalfAuc) {
  num::Rng rng(9);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.bernoulli(0.3) ? 1 : 0);
  }
  EXPECT_NEAR(auc(scores, labels), 0.5, 0.02);
}

TEST(Roc, CurveIsMonotone) {
  num::Rng rng(11);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int y = rng.bernoulli(0.4) ? 1 : 0;
    scores.push_back(y ? rng.normal(1.0, 1.0) : rng.normal(0.0, 1.0));
    labels.push_back(y);
  }
  const auto roc = roc_curve(scores, labels);
  ASSERT_GE(roc.size(), 3u);
  EXPECT_DOUBLE_EQ(roc.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(roc.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(roc.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(roc.back().true_positive_rate, 1.0);
  for (std::size_t i = 1; i < roc.size(); ++i) {
    EXPECT_GE(roc[i].false_positive_rate, roc[i - 1].false_positive_rate);
    EXPECT_GE(roc[i].true_positive_rate, roc[i - 1].true_positive_rate);
  }
  // A separable-ish problem must beat chance.
  EXPECT_GT(auc(roc), 0.6);
}

TEST(Roc, TiedScoresHandledAsOneGroup) {
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels{1, 0, 1, 0};
  const auto roc = roc_curve(scores, labels);
  // One tie group: (0,0) then (1,1); AUC is exactly 1/2.
  ASSERT_EQ(roc.size(), 2u);
  EXPECT_DOUBLE_EQ(auc(roc), 0.5);
}

TEST(Roc, SingleClassThrows) {
  const std::vector<double> scores{0.1, 0.9};
  EXPECT_THROW(roc_curve(scores, std::vector<int>{1, 1}),
               std::invalid_argument);
  EXPECT_THROW(roc_curve(scores, std::vector<int>{0, 0}),
               std::invalid_argument);
  EXPECT_THROW(roc_curve(std::vector<double>{}, std::vector<int>{}),
               std::invalid_argument);
}

TEST(MaxFMeasure, FindsSeparatingThreshold) {
  const std::vector<double> scores{0.95, 0.9, 0.85, 0.4, 0.3, 0.2};
  const std::vector<int> labels{1, 1, 1, 0, 0, 0};
  const auto choice = max_f_measure_threshold(scores, labels);
  EXPECT_GT(choice.threshold, 0.4);
  EXPECT_LE(choice.threshold, 0.85);
  EXPECT_DOUBLE_EQ(choice.table.f_measure(), 1.0);
}

TEST(MaxFMeasure, EmptyThrows) {
  EXPECT_THROW(
      max_f_measure_threshold(std::vector<double>{}, std::vector<int>{}),
      std::invalid_argument);
}

TEST(Summary, ContainsKeyFigures) {
  ContingencyTable t;
  t.true_positives = 3;
  t.false_negatives = 1;
  const auto s = summary(t);
  EXPECT_NE(s.find("precision="), std::string::npos);
  EXPECT_NE(s.find("recall="), std::string::npos);
  EXPECT_NE(s.find("tp=3"), std::string::npos);
}

}  // namespace
}  // namespace pfm::eval
