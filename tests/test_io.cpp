#include "monitoring/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "telecom/simulator.hpp"

namespace pfm::mon {
namespace {

MonitoringDataset small_trace() {
  MonitoringDataset ds(SymptomSchema({"load", "mem"}));
  ds.add_sample({0.0, {1.25, 4096.0}});
  ds.add_sample({30.0, {1.5, 4000.5}});
  ds.add_event({12.0, 201, 3, 2});
  ds.add_event({25.0, 403, 1, 1});
  ds.add_failure(100.0);
  return ds;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const auto original = small_trace();
  std::stringstream buffer;
  write_csv(original, buffer);
  const auto restored = read_csv(buffer);

  ASSERT_EQ(restored.schema().size(), 2u);
  EXPECT_EQ(restored.schema().name(0), "load");
  EXPECT_EQ(restored.schema().name(1), "mem");
  ASSERT_EQ(restored.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(restored.samples()[0].time, 0.0);
  EXPECT_DOUBLE_EQ(restored.samples()[1].values[1], 4000.5);
  ASSERT_EQ(restored.events().size(), 2u);
  EXPECT_EQ(restored.events()[0].event_id, 201);
  EXPECT_EQ(restored.events()[0].component, 3);
  EXPECT_EQ(restored.events()[0].severity, 2);
  ASSERT_EQ(restored.failures().size(), 1u);
  EXPECT_DOUBLE_EQ(restored.failures()[0], 100.0);
}

TEST(TraceIo, RoundTripOfSimulatorTrace) {
  telecom::SimConfig cfg;
  cfg.duration = 6.0 * 3600.0;
  cfg.seed = 3;
  telecom::ScpSimulator sim(cfg);
  sim.run();
  const auto& original = sim.trace();

  std::stringstream buffer;
  write_csv(original, buffer);
  const auto restored = read_csv(buffer);
  EXPECT_EQ(restored.samples().size(), original.samples().size());
  EXPECT_EQ(restored.events().size(), original.events().size());
  EXPECT_EQ(restored.failures().size(), original.failures().size());
  // Timestamps survive exactly (printed at 17 significant digits).
  for (std::size_t i = 0; i < original.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.events()[i].time, original.events()[i].time);
  }
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "schema,x\n"
      "\n"
      "s,1.0,2.0\n"
      "# another comment\n"
      "f,5.0\n");
  const auto ds = read_csv(in);
  EXPECT_EQ(ds.samples().size(), 1u);
  EXPECT_EQ(ds.failures().size(), 1u);
}

TEST(TraceIo, MalformedInputRejected) {
  // Unknown tag.
  {
    std::stringstream in("schema,x\nq,1.0\n");
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  // Sample before schema.
  {
    std::stringstream in("s,1.0,2.0\n");
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  // Sample arity mismatch.
  {
    std::stringstream in("schema,x,y\ns,1.0,2.0\n");
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  // Non-numeric field.
  {
    std::stringstream in("schema,x\ns,abc,2.0\n");
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  // Event arity mismatch.
  {
    std::stringstream in("schema,x\ne,1.0,201\n");
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  // Duplicate schema.
  {
    std::stringstream in("schema,x\nschema,y\n");
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  // Out-of-order timestamps violate the dataset contract.
  {
    std::stringstream in("schema,x\ns,5.0,1.0\ns,1.0,1.0\n");
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const auto original = small_trace();
  const std::string path = ::testing::TempDir() + "pfm_trace_io_test.csv";
  save_csv(original, path);
  const auto restored = load_csv(path);
  EXPECT_EQ(restored.samples().size(), original.samples().size());
  std::remove(path.c_str());
  EXPECT_THROW(load_csv("/nonexistent/dir/trace.csv"), std::runtime_error);
}

}  // namespace
}  // namespace pfm::mon
