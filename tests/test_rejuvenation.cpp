#include "actions/rejuvenation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace pfm::act {
namespace {

TEST(Rejuvenation, Validation) {
  RejuvenationModel m;
  EXPECT_NO_THROW(m.validate());
  m.restart_downtime = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = RejuvenationModel{};
  m.restart_downtime = m.failure_downtime;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = RejuvenationModel{};
  m.lifetime.shape = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Rejuvenation, NeverRejuvenateMatchesRenewalFormula) {
  RejuvenationModel m;
  const double expected =
      m.failure_downtime / (m.lifetime.mean() + m.failure_downtime);
  EXPECT_NEAR(m.downtime_fraction_never(), expected, 1e-12);
  EXPECT_NEAR(m.downtime_fraction(0.0), expected, 1e-12);
  EXPECT_NEAR(m.downtime_fraction(
                  std::numeric_limits<double>::infinity()),
              expected, 1e-12);
}

TEST(Rejuvenation, AgingSystemHasFiniteOptimalInterval) {
  // The classic result: increasing hazard (shape > 1) makes a finite
  // rejuvenation schedule optimal.
  RejuvenationModel m;
  m.lifetime = num::Weibull{3.0, 50000.0};
  m.restart_downtime = 60.0;
  m.failure_downtime = 1200.0;
  const double t_opt = m.optimal_interval();
  ASSERT_TRUE(std::isfinite(t_opt));
  EXPECT_GT(t_opt, 0.0);
  EXPECT_LT(m.downtime_fraction(t_opt), m.downtime_fraction_never());
  EXPECT_LT(m.optimal_improvement(), 1.0);
  // Local optimality: nearby intervals are not better.
  EXPECT_LE(m.downtime_fraction(t_opt),
            m.downtime_fraction(t_opt * 0.5) + 1e-12);
  EXPECT_LE(m.downtime_fraction(t_opt),
            m.downtime_fraction(t_opt * 2.0) + 1e-12);
}

TEST(Rejuvenation, MemorylessSystemNeverBenefits) {
  // Exponential lifetime (shape 1): restarting cannot help — the classic
  // negative result for rejuvenation without aging.
  RejuvenationModel m;
  m.lifetime = num::Weibull{1.0, 50000.0};
  EXPECT_TRUE(std::isinf(m.optimal_interval()));
  EXPECT_NEAR(m.optimal_improvement(), 1.0, 1e-9);
  // Any finite interval is at least as bad as never rejuvenating.
  for (double T : {1000.0, 10000.0, 50000.0}) {
    EXPECT_GE(m.downtime_fraction(T), m.downtime_fraction_never() - 1e-9);
  }
}

TEST(Rejuvenation, InfantMortalityNeverBenefits) {
  RejuvenationModel m;
  m.lifetime = num::Weibull{0.7, 50000.0};
  EXPECT_TRUE(std::isinf(m.optimal_interval()));
}

TEST(Rejuvenation, StrongerAgingBenefitsMoreFromRejuvenation) {
  // The sharper the wear-out (more deterministic lifetime), the more of
  // the failure downtime a schedule can convert into cheap restarts.
  RejuvenationModel mild, strong;
  mild.lifetime = num::Weibull{2.0, 50000.0};
  strong.lifetime = num::Weibull{5.0, 50000.0};
  ASSERT_TRUE(std::isfinite(mild.optimal_interval()));
  ASSERT_TRUE(std::isfinite(strong.optimal_interval()));
  EXPECT_LT(strong.optimal_improvement(), mild.optimal_improvement());
}

TEST(Rejuvenation, OptimalIntervalPrecedesWearOut) {
  // For an aging system the optimal restart happens before the mean
  // lifetime — waiting past it forfeits the benefit.
  RejuvenationModel m;
  m.lifetime = num::Weibull{4.0, 50000.0};
  const double t_opt = m.optimal_interval();
  ASSERT_TRUE(std::isfinite(t_opt));
  EXPECT_LT(t_opt, m.lifetime.mean());
}

TEST(Rejuvenation, CheaperRestartsMeanMoreFrequentRejuvenation) {
  RejuvenationModel cheap, expensive;
  cheap.lifetime = expensive.lifetime = num::Weibull{3.0, 50000.0};
  cheap.restart_downtime = 10.0;
  expensive.restart_downtime = 300.0;
  const double t_cheap = cheap.optimal_interval();
  const double t_expensive = expensive.optimal_interval();
  ASSERT_TRUE(std::isfinite(t_cheap));
  ASSERT_TRUE(std::isfinite(t_expensive));
  EXPECT_LT(t_cheap, t_expensive);
}

TEST(Rejuvenation, DowntimeFractionIsAFraction) {
  RejuvenationModel m;
  m.lifetime = num::Weibull{2.5, 30000.0};
  for (double T : {100.0, 1000.0, 10000.0, 100000.0}) {
    const double f = m.downtime_fraction(T);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
  }
}

}  // namespace
}  // namespace pfm::act
