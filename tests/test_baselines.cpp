#include "prediction/baselines.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "numerics/rng.hpp"

namespace pfm::pred {
namespace {

WindowGeometry windows() { return {600.0, 300.0, 300.0}; }

/// Variable 0 rises before failures, variable 1 is noise.
mon::MonitoringDataset symptom_trace(std::uint64_t seed) {
  num::Rng rng(seed);
  mon::MonitoringDataset ds(mon::SymptomSchema({"resource", "noise"}));
  const double period = 6000.0;
  double next_failure = period;
  for (double t = 0.0; t < 4.0 * 86400.0; t += 30.0) {
    const double to_failure = next_failure - t;
    double v = rng.normal(0.0, 0.2);
    if (to_failure < 1200.0 && to_failure > 0.0) {
      v += 3.0 * (1.0 - to_failure / 1200.0);
    }
    ds.add_sample({t, {v, rng.normal(0.0, 1.0)}});
    if (t >= next_failure) {
      ds.add_failure(t);
      next_failure += period;
    }
  }
  return ds;
}

SymptomContext context_of(const std::vector<mon::SymptomSample>& history,
                          std::span<const double> failures = {}) {
  SymptomContext ctx;
  ctx.history = history;
  ctx.past_failures = failures;
  return ctx;
}

TEST(Threshold, PicksCorrelatedVariableAndDirection) {
  const auto trace = symptom_trace(1);
  ThresholdPredictor p(windows());
  p.train(trace);
  EXPECT_EQ(p.variable(), 0u);
  const std::vector<mon::SymptomSample> low{{100.0, {0.0, 0.0}}};
  const std::vector<mon::SymptomSample> high{{100.0, {3.0, 0.0}}};
  EXPECT_GT(p.score(context_of(high)), p.score(context_of(low)));
}

TEST(Threshold, ErrorsAndGuards) {
  ThresholdPredictor p(windows());
  const std::vector<mon::SymptomSample> h{{0.0, {1.0, 1.0}}};
  EXPECT_THROW(p.score(context_of(h)), std::logic_error);
  mon::MonitoringDataset no_failures(mon::SymptomSchema({"a"}));
  for (int i = 0; i < 200; ++i) no_failures.add_sample({i * 30.0, {1.0}});
  EXPECT_THROW(p.train(no_failures), std::invalid_argument);
  p.train(symptom_trace(2));
  EXPECT_THROW(p.score(SymptomContext{}), std::invalid_argument);
}

TEST(Trend, RisingSlopeRaisesScore) {
  const auto trace = symptom_trace(3);
  TrendPredictor p(windows());
  p.train(trace);
  EXPECT_EQ(p.variable(), 0u);
  // Same final level, different slopes.
  std::vector<mon::SymptomSample> rising, flat;
  for (int i = 0; i < 10; ++i) {
    const double t = i * 30.0;
    rising.push_back({t, {0.5 + 0.15 * i, 0.0}});
    flat.push_back({t, {1.85, 0.0}});
  }
  EXPECT_GT(p.score(context_of(rising)), p.score(context_of(flat)));
}

TEST(Trend, SingleSampleContextFallsBackToLevel) {
  const auto trace = symptom_trace(4);
  TrendPredictor p(windows());
  p.train(trace);
  const std::vector<mon::SymptomSample> one{{0.0, {2.0, 0.0}}};
  const double s = p.score(context_of(one));
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(FailureTracking, RequiresEnoughFailures) {
  FailureTrackingPredictor p(windows());
  mon::MonitoringDataset ds(mon::SymptomSchema({"a"}));
  ds.add_sample({0.0, {1.0}});
  ds.add_failure(100.0);
  ds.add_failure(200.0);
  EXPECT_THROW(p.train(ds), std::invalid_argument);
}

TEST(FailureTracking, HazardGrowsWithAgeForAgingDistribution) {
  // Regular, tight failure spacing: Weibull shape > 1 (aging), so the
  // conditional failure probability grows with time since repair.
  num::Rng rng(5);
  mon::MonitoringDataset ds(mon::SymptomSchema({"a"}));
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    t += 3600.0 + rng.normal(0.0, 300.0);
    ds.add_failure(t);
  }
  ds.add_sample({t + 100.0, {0.0}});
  FailureTrackingPredictor p(windows());
  p.train(ds);
  EXPECT_TRUE(p.uses_weibull());

  const std::vector<double> failures{10000.0};
  const std::vector<mon::SymptomSample> young{{10600.0, {0.0}}};
  const std::vector<mon::SymptomSample> old{{13400.0, {0.0}}};
  const double s_young = p.score(context_of(young, failures));
  const double s_old = p.score(context_of(old, failures));
  EXPECT_GT(s_old, s_young);
}

TEST(FailureTracking, ScoreIsProbability) {
  num::Rng rng(6);
  mon::MonitoringDataset ds(mon::SymptomSchema({"a"}));
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    t += rng.exponential(1.0 / 5000.0);
    ds.add_failure(t);
  }
  ds.add_sample({t, {0.0}});
  FailureTrackingPredictor p(windows());
  p.train(ds);
  const std::vector<double> failures{1000.0};
  const std::vector<mon::SymptomSample> now{{5000.0, {0.0}}};
  const double s = p.score(context_of(now, failures));
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

// --- event baselines ------------------------------------------------------------

mon::ErrorSequence seq_of(std::initializer_list<std::pair<double, int>> ev,
                          double end) {
  mon::ErrorSequence s;
  for (const auto& [t, id] : ev) s.events.push_back({t, id, 0, 2});
  s.end_time = end;
  return s;
}

std::vector<mon::ErrorSequence> some_failures() {
  std::vector<mon::ErrorSequence> v;
  for (int i = 0; i < 20; ++i) {
    const double base = i * 1000.0;
    v.push_back(seq_of({{base + 10, 201},
                        {base + 40, 201},
                        {base + 55, 202},
                        {base + 60, 202},
                        {base + 63, 204}},
                       base + 600.0));
  }
  return v;
}

std::vector<mon::ErrorSequence> some_benign() {
  std::vector<mon::ErrorSequence> v;
  num::Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    const double base = i * 1000.0;
    mon::ErrorSequence s;
    if (rng.bernoulli(0.5)) {
      s.events.push_back({base + rng.uniform(0.0, 500.0),
                          400 + static_cast<int>(rng.uniform_int(0, 5)), 0, 1});
    }
    s.end_time = base + 600.0;
    v.push_back(std::move(s));
  }
  return v;
}

TEST(Dft, TrainsAndRanksBurstsAboveQuiet) {
  DftPredictor p;
  EXPECT_THROW(p.score(seq_of({}, 600.0)), std::logic_error);
  const auto fail = some_failures();
  const auto ok = some_benign();
  EXPECT_THROW(p.train(fail, {}), std::invalid_argument);
  p.train(fail, ok);
  const double burst = p.score(fail.front());
  const double quiet = p.score(ok.front());
  EXPECT_GT(burst, quiet);
  EXPECT_DOUBLE_EQ(p.score(seq_of({}, 600.0)), 0.0);
}

TEST(Dft, AcceleratingErrorsFireThe33Rule) {
  DftPredictor p;
  p.train(some_failures(), some_benign());
  // Inter-arrivals 200, 100, 40: each at most half the previous.
  const auto accel =
      seq_of({{0, 401}, {200, 401}, {300, 401}, {340, 401}}, 600.0);
  // Evenly spread errors of the same count.
  const auto spread =
      seq_of({{0, 401}, {150, 401}, {300, 401}, {450, 401}}, 600.0);
  EXPECT_GT(p.score(accel), p.score(spread));
}

TEST(Eventset, MinesIndicativeSetsAndScores) {
  EventsetPredictor p;
  EXPECT_THROW(p.score(seq_of({}, 0.0)), std::logic_error);
  p.train(some_failures(), some_benign());
  EXPECT_GT(p.num_mined_sets(), 0u);
  // A window containing the mined failure ids scores near 1.
  const double hit = p.score(seq_of({{10, 201}, {20, 202}}, 600.0));
  // A window with only benign ids scores at the floor.
  const double miss = p.score(seq_of({{10, 403}}, 600.0));
  EXPECT_GT(hit, 0.8);
  EXPECT_LT(miss, 0.3);
}

TEST(Eventset, ConfigValidation) {
  EventsetPredictor::Config c;
  c.min_support = 0.0;
  EXPECT_THROW(EventsetPredictor{c}, std::invalid_argument);
  c = EventsetPredictor::Config{};
  c.max_set_size = 0;
  EXPECT_THROW(EventsetPredictor{c}, std::invalid_argument);
}

TEST(Eventset, LookalikeSupportLowersConfidence) {
  // When benign windows also contain {201}, the singleton's confidence
  // drops and pairs carry the signal.
  auto fail = some_failures();
  std::vector<mon::ErrorSequence> ok = some_benign();
  for (int i = 0; i < 40; ++i) {
    ok.push_back(seq_of({{i * 100.0, 201}}, i * 100.0 + 600.0));
  }
  EventsetPredictor p;
  p.train(fail, ok);
  const double singleton = p.score(seq_of({{10, 201}}, 600.0));
  const double pair = p.score(seq_of({{10, 201}, {20, 202}}, 600.0));
  EXPECT_GT(pair, singleton);
}

}  // namespace
}  // namespace pfm::pred
