#include "numerics/matexp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/rng.hpp"

namespace pfm::num {
namespace {

TEST(Expm, ZeroMatrixIsIdentity) {
  const Matrix z(3, 3);
  EXPECT_TRUE(expm(z).approx_equal(Matrix::identity(3), 1e-14));
}

TEST(Expm, DiagonalMatrix) {
  const double d[] = {1.0, -2.0, 0.5};
  const Matrix m = Matrix::diagonal(d);
  const Matrix e = expm(m);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentMatrix) {
  // exp([[0,1],[0,0]]) = [[1,1],[0,1]].
  const Matrix n{{0.0, 1.0}, {0.0, 0.0}};
  const Matrix e = expm(n);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-14);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-14);
}

TEST(Expm, RotationMatrix) {
  // exp(t*[[0,-1],[1,0]]) = [[cos t, -sin t],[sin t, cos t]].
  const double t = 1.3;
  const Matrix a{{0.0, -t}, {t, 0.0}};
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-12);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-12);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-12);
}

TEST(Expm, LargeNormTriggersScaling) {
  // Norm far above theta_13 exercises the squaring phase.
  const Matrix a{{-50.0, 50.0}, {30.0, -30.0}};
  const Matrix e = expm(a);
  // Rows of exp(tQ) for a generator sum to one.
  EXPECT_NEAR(e(0, 0) + e(0, 1), 1.0, 1e-9);
  EXPECT_NEAR(e(1, 0) + e(1, 1), 1.0, 1e-9);
  // Stationary distribution of this chain is (3/8, 5/8).
  EXPECT_NEAR(e(0, 0), 3.0 / 8.0, 1e-6);
  EXPECT_NEAR(e(0, 1), 5.0 / 8.0, 1e-6);
}

TEST(Expm, NonSquareThrows) {
  EXPECT_THROW(expm(Matrix(2, 3)), std::invalid_argument);
}

TEST(Uniformization, MatchesExpmOnGenerators) {
  Rng rng(11);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    Matrix q(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        q(i, j) = rng.uniform(0.0, 1.5);
        row += q(i, j);
      }
      q(i, i) = -row;
    }
    const double t = rng.uniform(0.1, 5.0);
    std::vector<double> p0(n, 0.0);
    p0[0] = 1.0;
    const auto via_uniform = uniformized_transient(q, p0, t);
    const Matrix e = expm(q * t);
    const auto via_expm = e.apply_left(p0);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(via_uniform[i], via_expm[i], 1e-9);
    }
  }
}

TEST(Uniformization, PreservesProbabilityMass) {
  const Matrix q{{-0.2, 0.2}, {1.0, -1.0}};
  const std::vector<double> p0{0.3, 0.7};
  for (double t : {0.0, 0.5, 10.0, 500.0}) {
    const auto p = uniformized_transient(q, p0, t);
    double mass = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      mass += v;
    }
    EXPECT_NEAR(mass, 1.0, 1e-9);
  }
}

TEST(Uniformization, SubGeneratorLosesMassMonotonically) {
  // Absorbing chain restricted to transient states: row sums < 0.
  const Matrix t_sub{{-1.0, 0.5}, {0.2, -0.7}};
  const std::vector<double> p0{1.0, 0.0};
  double prev = 1.0;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto p = uniformized_transient(t_sub, p0, t);
    const double mass = p[0] + p[1];
    EXPECT_LT(mass, prev);
    EXPECT_GE(mass, 0.0);
    prev = mass;
  }
}

TEST(Uniformization, ErrorsOnBadInput) {
  const Matrix q{{-1.0, 1.0}, {1.0, -1.0}};
  const std::vector<double> p0{1.0, 0.0};
  EXPECT_THROW(uniformized_transient(q, p0, -1.0), std::invalid_argument);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(uniformized_transient(q, wrong, 1.0), std::invalid_argument);
  EXPECT_THROW(uniformized_transient(Matrix(2, 3), p0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pfm::num
