#include "ctmc/pfm_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/rng.hpp"

namespace pfm::ctmc {
namespace {

TEST(PredictionQuality, FMeasure) {
  PredictionQuality q{0.70, 0.62, 0.016};
  EXPECT_NEAR(q.f_measure(), 2.0 * 0.7 * 0.62 / (0.7 + 0.62), 1e-12);
  PredictionQuality zero{1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(zero.f_measure(), 0.0);
}

TEST(PredictionQuality, Validation) {
  EXPECT_NO_THROW((PredictionQuality{0.5, 0.5, 0.1}).validate());
  EXPECT_THROW((PredictionQuality{0.0, 0.5, 0.1}).validate(),
               std::invalid_argument);
  EXPECT_THROW((PredictionQuality{0.5, 1.5, 0.1}).validate(),
               std::invalid_argument);
  EXPECT_THROW((PredictionQuality{0.5, 0.5, 1.0}).validate(),
               std::invalid_argument);
}

TEST(PfmModelParams, DefaultsAndTable2Validate) {
  EXPECT_NO_THROW(PfmModelParams{}.validate());
  EXPECT_NO_THROW(PfmModelParams::table2_example().validate());
  PfmModelParams bad = PfmModelParams::table2_example();
  bad.mttf = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = PfmModelParams::table2_example();
  bad.p_fp = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(PfmRates, DerivationConsistency) {
  const auto params = PfmModelParams::table2_example();
  const auto r = PfmRates::derive(params);
  const double lambda = 1.0 / params.mttf;
  // Failure-prone situations split into caught and missed.
  EXPECT_NEAR(r.r_tp + r.r_fn, lambda, 1e-15);
  // Rates reproduce the input quality metrics.
  EXPECT_NEAR(r.r_tp / (r.r_tp + r.r_fp), params.quality.precision, 1e-12);
  EXPECT_NEAR(r.r_tp / (r.r_tp + r.r_fn), params.quality.recall, 1e-12);
  EXPECT_NEAR(r.r_fp / (r.r_fp + r.r_tn),
              params.quality.false_positive_rate, 1e-12);
  EXPECT_NEAR(r.r_r / r.r_f, params.repair_improvement, 1e-12);
}

TEST(PfmRates, PerfectPredictorEdgeCase) {
  PfmModelParams p = PfmModelParams::table2_example();
  p.quality = PredictionQuality{1.0, 1.0, 0.0};
  const auto r = PfmRates::derive(p);
  EXPECT_DOUBLE_EQ(r.r_fp, 0.0);
  EXPECT_DOUBLE_EQ(r.r_fn, 0.0);
  EXPECT_GT(r.r_tn, 0.0);
}

TEST(PfmRates, InconsistentFprThrows) {
  PfmModelParams p = PfmModelParams::table2_example();
  p.quality.false_positive_rate = 0.0;  // but precision < 1 => r_FP > 0
  EXPECT_THROW(PfmRates::derive(p), std::invalid_argument);
}

TEST(PfmAvailabilityModel, ClosedFormMatchesNumericSteadyState) {
  const PfmAvailabilityModel m(PfmModelParams::table2_example());
  EXPECT_NEAR(m.availability_closed_form(), m.availability_numeric(), 1e-12);
}

TEST(PfmAvailabilityModel, ClosedFormMatchesNumericOnRandomParameters) {
  num::Rng rng(2026);
  for (int rep = 0; rep < 50; ++rep) {
    PfmModelParams p;
    p.quality.precision = rng.uniform(0.05, 1.0);
    p.quality.recall = rng.uniform(0.0, 1.0);
    p.quality.false_positive_rate = rng.uniform(0.001, 0.9);
    p.mttf = rng.uniform(1000.0, 100000.0);
    p.mttr = rng.uniform(30.0, 3600.0);
    p.action_time = rng.uniform(1.0, 600.0);
    p.repair_improvement = rng.uniform(0.5, 10.0);
    p.p_tp = rng.uniform(0.0, 1.0);
    p.p_fp = rng.uniform(0.0, 1.0);
    p.p_tn = rng.uniform(0.0, 0.1);
    const PfmAvailabilityModel m(p);
    const double a_closed = m.availability_closed_form();
    const double a_numeric = m.availability_numeric();
    EXPECT_GE(a_closed, 0.0);
    EXPECT_LE(a_closed, 1.0);
    EXPECT_NEAR(a_closed, a_numeric, 1e-9);
  }
}

TEST(PfmAvailabilityModel, Equation14RatioIsAboutHalf) {
  // The paper's headline analytic result: unavailability roughly halved
  // (Eq. 14: ratio ~ 0.488) for the Table 2 parameters.
  const PfmAvailabilityModel m(PfmModelParams::table2_example());
  EXPECT_NEAR(m.unavailability_ratio(), 0.488, 0.005);
}

TEST(PfmAvailabilityModel, PerfectPredictionAndAvoidanceEliminatesDowntime) {
  PfmModelParams p = PfmModelParams::table2_example();
  p.quality = PredictionQuality{1.0, 1.0, 0.0};
  p.p_tp = 0.0;  // avoidance always succeeds
  p.p_fp = 0.0;
  p.p_tn = 0.0;
  const PfmAvailabilityModel m(p);
  EXPECT_NEAR(m.availability_closed_form(), 1.0, 1e-12);
}

TEST(PfmAvailabilityModel, UselessPredictorMatchesBaseline) {
  // recall = 0 with negligible prediction overhead: no failure is caught,
  // every failure is unprepared => availability equals the no-PFM system.
  PfmModelParams p;
  p.quality = PredictionQuality{1.0, 0.0, 0.5};
  p.p_tp = 0.0;
  p.p_fp = 0.0;
  p.p_tn = 0.0;
  p.action_time = 1e-7;  // instantaneous evaluation
  const PfmAvailabilityModel m(p);
  EXPECT_NEAR(m.availability_closed_form(), m.availability_without_pfm(),
              1e-6);
}

TEST(PfmAvailabilityModel, BetterRecallImprovesAvailability) {
  PfmModelParams lo = PfmModelParams::table2_example();
  PfmModelParams hi = lo;
  lo.quality.recall = 0.3;
  hi.quality.recall = 0.9;
  EXPECT_GT(PfmAvailabilityModel(hi).availability_closed_form(),
            PfmAvailabilityModel(lo).availability_closed_form());
}

TEST(PfmAvailabilityModel, LargerKImprovesAvailability) {
  PfmModelParams lo = PfmModelParams::table2_example();
  PfmModelParams hi = lo;
  lo.repair_improvement = 1.0;
  hi.repair_improvement = 4.0;
  EXPECT_GT(PfmAvailabilityModel(hi).availability_closed_form(),
            PfmAvailabilityModel(lo).availability_closed_form());
}

TEST(PfmAvailabilityModel, ChainStructureMatchesFig9) {
  const PfmAvailabilityModel m(PfmModelParams::table2_example());
  const auto c = m.chain();
  ASSERT_EQ(c.num_states(), 7u);
  const auto& q = c.generator();
  const auto& r = m.rates();
  const auto s = [](PfmState st) { return static_cast<std::size_t>(st); };
  // Predictions leave the up state.
  EXPECT_DOUBLE_EQ(q(s(PfmState::kUp), s(PfmState::kTruePositive)), r.r_tp);
  EXPECT_DOUBLE_EQ(q(s(PfmState::kUp), s(PfmState::kFalseNegative)), r.r_fn);
  // FN goes to the unprepared down state only.
  EXPECT_DOUBLE_EQ(q(s(PfmState::kFalseNegative), s(PfmState::kUp)), 0.0);
  EXPECT_DOUBLE_EQ(
      q(s(PfmState::kFalseNegative), s(PfmState::kUnpreparedDown)), r.r_a);
  // TP reaches the prepared down state, never the unprepared one.
  EXPECT_GT(q(s(PfmState::kTruePositive), s(PfmState::kPreparedDown)), 0.0);
  EXPECT_DOUBLE_EQ(
      q(s(PfmState::kTruePositive), s(PfmState::kUnpreparedDown)), 0.0);
  // Repair rates.
  EXPECT_DOUBLE_EQ(q(s(PfmState::kPreparedDown), s(PfmState::kUp)), r.r_r);
  EXPECT_DOUBLE_EQ(q(s(PfmState::kUnpreparedDown), s(PfmState::kUp)), r.r_f);
}

TEST(PfmAvailabilityModel, ReliabilityModelBeatsBaseline) {
  const PfmAvailabilityModel m(PfmModelParams::table2_example());
  const auto ph = m.reliability_model();
  // PFM reliability dominates the no-PFM exponential at sampled times
  // (Fig. 10(a)).
  for (double t : {1000.0, 5000.0, 20000.0, 50000.0}) {
    EXPECT_GT(ph.reliability(t), m.baseline_reliability(t));
  }
}

TEST(PfmAvailabilityModel, HazardBelowBaselineAndStartsAtZero) {
  const PfmAvailabilityModel m(PfmModelParams::table2_example());
  const auto ph = m.reliability_model();
  // Fig. 10(b): h(0) = 0 (a failure needs at least one intermediate state),
  // then rises toward an asymptote below the constant baseline hazard.
  EXPECT_NEAR(ph.hazard(0.0), 0.0, 1e-12);
  EXPECT_LT(ph.hazard(500.0), m.baseline_hazard());
  EXPECT_LT(ph.hazard(1000.0), m.baseline_hazard());
  EXPECT_GT(ph.hazard(1000.0), ph.hazard(10.0));
}

TEST(PfmAvailabilityModel, MeanTimeToFailureImproves) {
  const PfmAvailabilityModel m(PfmModelParams::table2_example());
  const auto ph = m.reliability_model();
  EXPECT_GT(ph.mean(), m.params().mttf);
}

TEST(PfmAvailabilityModel, SteadyStateAgreesWithSimulation) {
  const PfmAvailabilityModel m(PfmModelParams::table2_example());
  const auto chain = m.chain();
  num::Rng rng(7);
  const auto occ = chain.simulate_occupancy(0, 5e7, rng);
  double sim_avail = 0.0;
  for (std::size_t i = 0; i <= 4; ++i) sim_avail += occ[i];
  EXPECT_NEAR(sim_avail, m.availability_closed_form(), 2e-3);
}

}  // namespace
}  // namespace pfm::ctmc
