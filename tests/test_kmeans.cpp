#include "numerics/kmeans.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace pfm::num {
namespace {

TEST(KMeans, SeparatesTwoObviousClusters) {
  Rng rng(8);
  std::vector<double> data;
  // Cluster A around (0,0), cluster B around (10,10).
  for (int i = 0; i < 50; ++i) {
    data.push_back(rng.normal(0.0, 0.3));
    data.push_back(rng.normal(0.0, 0.3));
  }
  for (int i = 0; i < 50; ++i) {
    data.push_back(rng.normal(10.0, 0.3));
    data.push_back(rng.normal(10.0, 0.3));
  }
  const auto res = kmeans(data, 2, 2, rng);
  ASSERT_EQ(res.k, 2u);
  // One center near (0,0), the other near (10,10).
  const auto c0 = res.center(0);
  const auto c1 = res.center(1);
  const bool c0_low = std::abs(c0[0]) < 1.0;
  const auto& low = c0_low ? c0 : c1;
  const auto& high = c0_low ? c1 : c0;
  EXPECT_NEAR(low[0], 0.0, 0.5);
  EXPECT_NEAR(high[0], 10.0, 0.5);
  // All points in the same half share an assignment.
  for (int i = 1; i < 50; ++i) {
    EXPECT_EQ(res.assignment[0], res.assignment[i]);
  }
  for (int i = 51; i < 100; ++i) {
    EXPECT_EQ(res.assignment[50], res.assignment[i]);
  }
  EXPECT_NE(res.assignment[0], res.assignment[50]);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(15);
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) data.push_back(rng.uniform(0.0, 100.0));
  Rng r1(1), r2(1);
  const auto k2 = kmeans(data, 1, 2, r1);
  const auto k8 = kmeans(data, 1, 8, r2);
  EXPECT_LT(k8.inertia, k2.inertia);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  Rng rng(4);
  const std::vector<double> data{1.0, 5.0, 9.0};
  const auto res = kmeans(data, 1, 3, rng);
  EXPECT_NEAR(res.inertia, 0.0, 1e-18);
}

TEST(KMeans, Errors) {
  Rng rng(1);
  const std::vector<double> data{1.0, 2.0, 3.0};
  EXPECT_THROW(kmeans(data, 0, 1, rng), std::invalid_argument);
  EXPECT_THROW(kmeans(data, 1, 0, rng), std::invalid_argument);
  EXPECT_THROW(kmeans(data, 2, 1, rng), std::invalid_argument);  // ragged
  EXPECT_THROW(kmeans(data, 1, 5, rng), std::invalid_argument);  // k > n
}

}  // namespace
}  // namespace pfm::num
