// Model-vs-simulation property: a seeded closed-loop fleet whose nodes
// follow the Fig. 9 failure/prediction dynamics must converge, over a
// long run, to the steady-state availability the CTMC closed form (Eq. 8)
// computes from the *measured* TP/FP/TN/FN rates — the analytic model and
// the MEA runtime describing the same system must agree. Plus the Table 2
// spot check (unavailability ratio ~ 0.488) and the monotonicity the
// paper argues from Eq. 8.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ctmc/pfm_model.hpp"
#include "numerics/rng.hpp"
#include "runtime/fleet.hpp"

namespace pfm {
namespace {

/// Timing/probability assumptions of the harness (the chain the nodes
/// sample from). The prediction-state dwell (action_time) is long
/// relative to the 60 s evaluation interval so the closed loop observes
/// nearly every warning episode before it resolves.
ctmc::PfmModelParams harness_params() {
  ctmc::PfmModelParams p;
  p.quality = ctmc::PredictionQuality{0.70, 0.62, 0.016};
  p.mttf = 5000.0;
  p.mttr = 600.0;
  p.action_time = 600.0;
  p.repair_improvement = 2.0;
  p.p_tp = 0.25;
  p.p_fp = 0.1;
  p.p_tn = 0.001;
  return p;
}

/// A ManagedSystem that *is* the Fig. 9 chain: competing exponentials
/// drive S0 -> {TP, FP, TN, FN} -> up/down, with one closed-loop twist —
/// a warning-state failure lands in the *prepared* down state only when
/// the MEA loop actually called prepare_for_failure() during the episode
/// (in the analytic chain that is an assumption; here the controller has
/// to earn it). The surfaced symptom is 1.0 exactly while a warning
/// state is active, so an oracle threshold predictor closes the loop.
class ChainSystem final : public core::ManagedSystem {
 public:
  enum class State { kUp, kTp, kFp, kTn, kFn, kDown };

  ChainSystem(std::string name, double horizon,
              const ctmc::PfmModelParams& params, std::uint64_t seed)
      : name_(std::move(name)),
        horizon_(horizon),
        params_(params),
        rates_(ctmc::PfmRates::derive(params)),
        rng_(seed),
        trace_(mon::SymptomSchema({"warning"})) {
    enter_up();
  }

  std::string name() const override { return name_; }
  double now() const override { return now_; }
  double horizon() const override { return horizon_; }
  bool finished() const override { return now_ >= horizon_; }

  void step_to(double t) override {
    t = std::min(t, horizon_);
    if (t <= now_) return;
    while (state_until_ <= t) transition();
    now_ = t;
    const bool warning = (state_ == State::kTp || state_ == State::kFp);
    trace_.add_sample({now_, {warning ? 1.0 : 0.0}});
  }

  const mon::MonitoringDataset& trace() const override { return trace_; }

  std::size_t num_units() const override { return 1; }
  core::UnitHealth unit_health(std::size_t unit) const override {
    if (unit >= 1) throw std::out_of_range("ChainSystem: unit");
    core::UnitHealth h;
    h.available = state_ != State::kDown;
    return h;
  }
  double offered_load() const override { return 100.0; }
  double unit_capacity() const override { return 200.0; }
  bool service_down() const override { return state_ == State::kDown; }

  void restart_unit(std::size_t) override {}
  void shed_load(double, double) override {}
  void checkpoint() override {}
  void prepare_for_failure(double window) override {
    if (state_ == State::kTp || state_ == State::kFp) {
      prepared_until_ = now_ + window;
    }
  }

  core::SystemStats system_stats() const override {
    core::SystemStats stats;
    stats.simulated = now_;
    stats.downtime = downtime_;
    stats.failures = failures_;
    stats.prepared_repairs = prepared_repairs_;
    stats.unprepared_repairs = failures_ - prepared_repairs_;
    return stats;
  }

  // Measured confusion-matrix rates for the model comparison.
  std::size_t n_tp() const noexcept { return n_tp_; }
  std::size_t n_fp() const noexcept { return n_fp_; }
  std::size_t n_tn() const noexcept { return n_tn_; }
  std::size_t n_fn() const noexcept { return n_fn_; }
  double up_dwell_total() const noexcept { return up_dwell_total_; }

 private:
  void enter_up() {
    state_ = State::kUp;
    prepared_until_ = -1.0;
    const double dwell = rng_.exponential(rates_.prediction_rate());
    up_dwell_total_ += dwell;
    state_until_ = state_entered_ + dwell;
  }

  void transition() {
    const double at = state_until_;
    switch (state_) {
      case State::kUp: {
        const double w[] = {rates_.r_tp, rates_.r_fp, rates_.r_tn,
                            rates_.r_fn};
        switch (rng_.categorical(w)) {
          case 0: state_ = State::kTp; ++n_tp_; break;
          case 1: state_ = State::kFp; ++n_fp_; break;
          case 2: state_ = State::kTn; ++n_tn_; break;
          default: state_ = State::kFn; ++n_fn_; break;
        }
        state_entered_ = at;
        state_until_ = at + rng_.exponential(rates_.r_a);
        break;
      }
      case State::kTp:
      case State::kFp:
      case State::kTn:
      case State::kFn: {
        const double p_fail =
            state_ == State::kTp   ? params_.p_tp
            : state_ == State::kFp ? params_.p_fp
            : state_ == State::kTn ? params_.p_tn
                                   : 1.0;  // FN: the failure always strikes
        const bool warned = state_ == State::kTp || state_ == State::kFp;
        if (rng_.bernoulli(p_fail)) {
          ++failures_;
          const bool prepared = warned && prepared_until_ >= at;
          if (prepared) ++prepared_repairs_;
          state_ = State::kDown;
          state_entered_ = at;
          const double repair =
              rng_.exponential(prepared ? rates_.r_r : rates_.r_f);
          downtime_ += repair;
          state_until_ = at + repair;
        } else {
          state_entered_ = at;
          enter_up();
        }
        break;
      }
      case State::kDown:
        state_entered_ = at;
        enter_up();
        break;
    }
  }

  std::string name_;
  double now_ = 0.0;
  double horizon_;
  ctmc::PfmModelParams params_;
  ctmc::PfmRates rates_;
  num::Rng rng_;
  mon::MonitoringDataset trace_;

  State state_ = State::kUp;
  double state_entered_ = 0.0;
  double state_until_ = 0.0;
  double prepared_until_ = -1.0;

  double downtime_ = 0.0;
  std::int64_t failures_ = 0;
  std::int64_t prepared_repairs_ = 0;
  std::size_t n_tp_ = 0, n_fp_ = 0, n_tn_ = 0, n_fn_ = 0;
  double up_dwell_total_ = 0.0;
};

/// Oracle: the newest "warning" symptom (1.0 in warning states).
class WarningOracle final : public pred::SymptomPredictor {
 public:
  std::string name() const override { return "warning-oracle"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(0);
  }
};

TEST(FleetCtmc, ClosedLoopAvailabilityConvergesToTheEq8ClosedForm) {
  const auto params = harness_params();
  const std::size_t kChains = 8;
  const double kHorizon = 1.25e6;  // 10^7 chain-seconds in total

  runtime::FleetConfig cfg;
  cfg.mea.warning_threshold = 0.5;
  cfg.mea.action_cooldown = 0.0;  // re-preparing is idempotent and cheap
  cfg.num_threads = 2;

  std::vector<std::unique_ptr<core::ManagedSystem>> nodes;
  std::vector<const ChainSystem*> chains;
  for (std::size_t i = 0; i < kChains; ++i) {
    auto node = std::make_unique<ChainSystem>(
        "chain-" + std::to_string(i), kHorizon, params, 0xC7 + 11 * i);
    chains.push_back(node.get());
    nodes.push_back(std::move(node));
  }
  runtime::FleetController fleet(std::move(nodes), cfg);
  fleet.add_symptom_predictor(std::make_shared<WarningOracle>());
  fleet.add_action(
      [] { return std::make_unique<act::PreparedRepairAction>(1800.0); });
  fleet.run();

  // Measured confusion matrix and failure-prone-situation rate.
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  double up_time = 0.0;
  for (const auto* c : chains) {
    tp += c->n_tp();
    fp += c->n_fp();
    tn += c->n_tn();
    fn += c->n_fn();
    up_time += c->up_dwell_total();
  }
  ASSERT_GT(tp, 100u) << "horizon too short to estimate the rates";
  ASSERT_GT(fn, 50u);
  ASSERT_GT(up_time, 0.0);

  const auto t = fleet.telemetry();
  EXPECT_GT(t.warnings_raised, 0u);
  EXPECT_GT(t.system.prepared_repairs, 0);
  EXPECT_GT(t.system.unprepared_repairs, 0);

  // Rebuild the analytic model from what the run actually exhibited:
  // measured precision/recall/fpr and measured MTTF; the timing constants
  // (dwell means, MTTR, k, P_*) are harness inputs, as in the paper.
  ctmc::PfmModelParams measured = params;
  measured.quality.precision =
      static_cast<double>(tp) / static_cast<double>(tp + fp);
  measured.quality.recall =
      static_cast<double>(tp) / static_cast<double>(tp + fn);
  measured.quality.false_positive_rate =
      static_cast<double>(fp) / static_cast<double>(fp + tn);
  measured.mttf = up_time / static_cast<double>(tp + fn);
  const ctmc::PfmAvailabilityModel model(measured);

  const double a_model = model.availability_closed_form();
  const double a_measured = t.system.availability();

  // The closed loop misses the rare warning episode that begins and ends
  // between two evaluations (~5% of them at these dwells), and a finite
  // run carries sampling noise ~1/sqrt(#failures); 15% on unavailability
  // covers both with margin while still pinning the model to the run.
  const double u_model = 1.0 - a_model;
  const double u_measured = 1.0 - a_measured;
  ASSERT_GT(u_model, 0.0);
  EXPECT_NEAR(u_measured / u_model, 1.0, 0.15)
      << "A_model=" << a_model << " A_measured=" << a_measured;

  // And the closed form itself agrees with the numeric stationary
  // distribution of the measured-parameter chain.
  EXPECT_NEAR(model.availability_numeric(), a_model, 1e-12);
}

TEST(FleetCtmc, Table2SpotCheckReproducesThePublishedRatio) {
  const ctmc::PfmAvailabilityModel model(
      ctmc::PfmModelParams::table2_example());
  EXPECT_NEAR(model.unavailability_ratio(), 0.488, 0.01);
}

// In the paper's parameter regime (r_A >> r_p: actions resolve in
// seconds, predictions arrive hours apart) Eq. 8 is monotone in the
// prediction quality. (With slow actions the chain has a quirk — time
// parked in TN states dilutes the S0 failure exposure — so the harness
// parameters above would not satisfy this.)
TEST(FleetCtmc, BetterPredictionQualityNeverHurtsAvailability) {
  auto params = ctmc::PfmModelParams::table2_example();
  const double base =
      ctmc::PfmAvailabilityModel(params).availability_closed_form();

  auto better_recall = params;
  better_recall.quality.recall = 0.9;
  EXPECT_GE(ctmc::PfmAvailabilityModel(better_recall)
                .availability_closed_form(),
            base);

  auto better_precision = params;
  better_precision.quality.precision = 0.95;
  EXPECT_GE(ctmc::PfmAvailabilityModel(better_precision)
                .availability_closed_form(),
            base);
}

}  // namespace
}  // namespace pfm
