#include "numerics/logistic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "numerics/rng.hpp"

namespace pfm::num {
namespace {

TEST(Sigmoid, SymmetricAndBounded) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(5.0) + sigmoid(-5.0), 1.0, 1e-12);
  EXPECT_GT(sigmoid(100.0), 0.999999);
  EXPECT_LT(sigmoid(-100.0), 1e-6);
  // No overflow at extreme arguments.
  EXPECT_TRUE(std::isfinite(sigmoid(1e6)));
  EXPECT_TRUE(std::isfinite(sigmoid(-1e6)));
}

TEST(LogisticRegression, LearnsSeparableProblem) {
  // Class 1 iff x0 > 1.
  std::vector<double> features;
  std::vector<int> labels;
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    features.push_back(x);
    labels.push_back(x > 1.0 ? 1 : 0);
  }
  LogisticRegression lr;
  lr.fit(features, 1, labels);
  EXPECT_TRUE(lr.fitted());
  EXPECT_GT(lr.predict_probability(std::vector<double>{4.0}), 0.9);
  EXPECT_LT(lr.predict_probability(std::vector<double>{-2.0}), 0.1);
}

TEST(LogisticRegression, TwoFeatureWeightsPointRightWay) {
  // Label depends positively on x0 and negatively on x1.
  std::vector<double> features;
  std::vector<int> labels;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.normal();
    const double b = rng.normal();
    features.push_back(a);
    features.push_back(b);
    labels.push_back(a - b + 0.3 * rng.normal() > 0.0 ? 1 : 0);
  }
  LogisticRegression lr;
  lr.fit(features, 2, labels);
  EXPECT_GT(lr.weights()[0], 0.0);
  EXPECT_LT(lr.weights()[1], 0.0);
}

TEST(LogisticRegression, ProbabilityCalibrationOnNoisyData) {
  // P(y=1|x) = sigmoid(2x); check predicted probability tracks it.
  std::vector<double> features;
  std::vector<int> labels;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-2.0, 2.0);
    features.push_back(x);
    labels.push_back(rng.bernoulli(sigmoid(2.0 * x)) ? 1 : 0);
  }
  LogisticRegression lr;
  LogisticRegression::Options opts;
  opts.l2 = 1e-6;
  lr.fit(features, 1, labels, opts);
  EXPECT_NEAR(lr.predict_probability(std::vector<double>{0.0}), 0.5, 0.05);
  EXPECT_NEAR(lr.predict_probability(std::vector<double>{1.0}),
              sigmoid(2.0), 0.05);
}

TEST(LogisticRegression, Errors) {
  LogisticRegression lr;
  EXPECT_THROW(lr.predict_probability(std::vector<double>{1.0}),
               std::invalid_argument);
  const std::vector<double> f{1.0, 2.0};
  const std::vector<int> y{1};
  EXPECT_THROW(lr.fit(f, 0, y), std::invalid_argument);
  EXPECT_THROW(lr.fit(f, 2, std::vector<int>{}), std::invalid_argument);
  lr.fit(f, 1, std::vector<int>{0, 1});
  EXPECT_THROW(lr.predict_probability(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pfm::num
