// The ManagedSystem seam: the MEA core must behave identically through
// the ScpManagedSystem adapter as it did when it drove the simulator
// directly, and src/core must stay free of telecom includes.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "core/mea.hpp"
#include "lint.hpp"
#include "runtime/scp_system.hpp"

namespace pfm {
namespace {

/// Oracle-style predictor: warns on the worst node's memory pressure, so
/// the closed-loop trajectory depends only on simulator + controller.
class PressurePredictor final : public pred::SymptomPredictor {
 public:
  explicit PressurePredictor(std::size_t pressure_index)
      : index_(pressure_index) {}
  std::string name() const override { return "pressure"; }
  void train(const mon::MonitoringDataset&) override {}
  double score(const pred::SymptomContext& ctx) const override {
    return ctx.history.back().values.at(index_);
  }

 private:
  std::size_t index_;
};

// Golden closed-loop trajectory captured from the pre-refactor code (the
// controller held a ScpSimulator& directly). The refactored controller
// must reproduce it bit-for-bit through the adapter.
TEST(ManagedSystem, MeaThroughAdapterMatchesGoldenTrajectory) {
  telecom::SimConfig cfg;
  cfg.duration = 3.0 * 86400.0;
  cfg.seed = 21;
  cfg.leak_mtbf = 43200.0;
  cfg.cascade_mtbf = 1e12;
  cfg.spike_mtbf = 1e12;

  telecom::ScpSimulator managed(cfg);
  runtime::ScpManagedSystem system(managed);
  core::MeaConfig mc;
  mc.warning_threshold = 0.72;
  mc.action_cooldown = 600.0;
  core::MeaController mea(system, mc);
  const auto idx = *managed.trace().schema().index("mem_pressure_max");
  mea.add_symptom_predictor(std::make_shared<PressurePredictor>(idx));
  mea.add_action(std::make_unique<act::StateCleanupAction>(0.70));
  mea.add_action(std::make_unique<act::PreventiveFailoverAction>());
  mea.add_action(std::make_unique<act::LoadLoweringAction>());
  mea.add_action(std::make_unique<act::PreparedRepairAction>(1800.0));
  mea.run();

  const auto& m = mea.stats();
  EXPECT_EQ(m.evaluations, 4320u);
  EXPECT_EQ(m.warnings, 18u);
  EXPECT_EQ(m.actions_by_kind[0], 18u);  // state cleanup
  EXPECT_EQ(m.actions_by_kind[1], 0u);
  EXPECT_EQ(m.actions_by_kind[2], 0u);
  EXPECT_EQ(m.actions_by_kind[3], 18u);  // prepared repair
  EXPECT_EQ(m.actions_by_kind[4], 0u);

  const auto& s = managed.stats();
  EXPECT_EQ(s.total_requests, 15519907);
  EXPECT_EQ(s.violations, 3143);
  EXPECT_EQ(s.failures, 5);
  EXPECT_DOUBLE_EQ(s.downtime, 471.0);
  EXPECT_EQ(s.shed_requests, 0);
  EXPECT_EQ(s.preventive_restarts, 18);
  EXPECT_EQ(s.prepared_repairs, 5);
  EXPECT_EQ(s.unprepared_repairs, 0);
  EXPECT_DOUBLE_EQ(s.simulated, 259200.0);

  // The adapter's aggregate view is the same data.
  const auto sys = system.system_stats();
  EXPECT_EQ(sys.total_requests, s.total_requests);
  EXPECT_EQ(sys.failures, s.failures);
  EXPECT_DOUBLE_EQ(sys.downtime, s.downtime);
  EXPECT_DOUBLE_EQ(sys.availability(), s.availability());
}

// The point of the seam: nothing under src/core may include a telecom
// (or runtime, or injection) header. Asserted through pfm-lint's
// layering rule, so the dependency policy in tools/pfm_lint/lint.cpp is
// the single source of truth — this test only pins that the rule still
// runs over a tree that actually contains src/core.
TEST(ManagedSystem, CoreStaysTelecomFreeViaLintLayeringRule) {
  pfm::lint::Options options;
  options.root = std::filesystem::path(PFM_SOURCE_DIR);
  options.rules = {"layering"};
  ASSERT_TRUE(std::filesystem::is_directory(options.root / "src" / "core"));
  const auto findings = pfm::lint::run(options);
  for (const auto& finding : findings) {
    ADD_FAILURE() << pfm::lint::format(finding);
  }
  EXPECT_TRUE(findings.empty());
}

TEST(ManagedSystem, AdapterDelegatesStateAndActions) {
  telecom::SimConfig cfg;
  cfg.seed = 7;
  cfg.duration = 7200.0;
  telecom::ScpSimulator sim(cfg);
  runtime::ScpManagedSystem system(sim);

  EXPECT_EQ(system.name(), "scp-7");
  EXPECT_DOUBLE_EQ(system.horizon(), 7200.0);
  EXPECT_EQ(system.num_units(), sim.num_nodes());
  EXPECT_FALSE(system.finished());

  system.step_to(3600.0);
  EXPECT_DOUBLE_EQ(system.now(), sim.now());
  for (std::size_t i = 0; i < system.num_units(); ++i) {
    const auto h = system.unit_health(i);
    EXPECT_EQ(h.available, sim.node(i).available(sim.now()));
    EXPECT_DOUBLE_EQ(h.memory_pressure, sim.node(i).memory_pressure());
    EXPECT_EQ(h.cascade_stage, sim.node(i).cascade_stage());
  }
  EXPECT_DOUBLE_EQ(system.offered_load(), sim.current_arrival_rate());
  EXPECT_DOUBLE_EQ(system.unit_capacity(), sim.config().node_capacity);

  // Actions route to the simulator: a preventive restart is recorded.
  system.restart_unit(0);
  EXPECT_EQ(sim.stats().preventive_restarts, 1);
  system.prepare_for_failure(600.0);
  system.checkpoint();
  system.shed_load(0.5, 60.0);

  system.step_to(7200.0);
  EXPECT_TRUE(system.finished());
}

TEST(ManagedSystem, MonitorViewsMatchTheTrace) {
  telecom::SimConfig cfg;
  cfg.seed = 11;
  cfg.duration = 3600.0;
  runtime::ScpManagedSystem system{cfg};  // owning constructor
  system.step_to(1800.0);

  const auto ctx = system.symptom_context(5);
  ASSERT_FALSE(ctx.history.empty());
  EXPECT_LE(ctx.history.size(), 5u);
  EXPECT_DOUBLE_EQ(ctx.history.back().time,
                   system.trace().samples().back().time);

  const auto seq = system.error_sequence(600.0);
  EXPECT_DOUBLE_EQ(seq.end_time, system.now());
  for (const auto& e : seq.events) {
    EXPECT_GE(e.time, system.now() - 600.0);
    EXPECT_LE(e.time, system.now());
  }
}

}  // namespace
}  // namespace pfm
