#include "actions/ttr.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfm::act {

void TtrModel::validate() const {
  if (reconfig_cold <= 0.0 || reconfig_warm <= 0.0 ||
      reconfig_warm > reconfig_cold) {
    throw std::invalid_argument(
        "TtrModel: need 0 < reconfig_warm <= reconfig_cold");
  }
  if (recompute_factor < 0.0 || recompute_max < 0.0) {
    throw std::invalid_argument("TtrModel: recompute terms must be >= 0");
  }
}

double TtrModel::recompute_time(double checkpoint_age) const {
  return std::min(recompute_max,
                  recompute_factor * std::max(checkpoint_age, 0.0));
}

double TtrModel::classical(double checkpoint_age) const {
  return reconfig_cold + recompute_time(checkpoint_age);
}

double TtrModel::prepared(double checkpoint_age) const {
  return reconfig_warm + recompute_time(checkpoint_age);
}

double TtrModel::improvement_factor(double classical_age,
                                    double prepared_age) const {
  return classical(classical_age) / prepared(prepared_age);
}

}  // namespace pfm::act
