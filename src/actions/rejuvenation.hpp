#pragma once

#include "numerics/distributions.hpp"

namespace pfm::act {

/// Analytic model of time-based software rejuvenation (Sect. 4.3's
/// "preventive restart"; Huang et al. [39], optimal schedules per
/// Dohi et al. [22,23] and Andrzejak/Silva [2]).
///
/// The system ages: its time-to-failure since the last (re)start follows a
/// Weibull lifetime. Restarting proactively every `interval` seconds costs
/// a short planned outage; failing costs a long unplanned one. The model
/// computes the long-run downtime fraction of the renewal process and the
/// interval minimizing it.
///
/// Classic structure of the result, reproduced by this model and asserted
/// in the tests: with increasing hazard (Weibull shape > 1) a finite
/// optimal interval exists; with shape <= 1 (no aging) rejuvenation can
/// only hurt and the optimal interval is unbounded.
struct RejuvenationModel {
  /// Time-to-failure since restart.
  num::Weibull lifetime{2.0, 50000.0};
  /// Downtime of one planned restart, seconds.
  double restart_downtime = 60.0;
  /// Downtime of one unplanned failure repair, seconds.
  double failure_downtime = 600.0;

  /// Throws std::invalid_argument on non-positive parameters or when a
  /// planned restart is not cheaper than a failure.
  void validate() const;

  /// Long-run downtime fraction when rejuvenating every `interval` s:
  ///   cycle uptime   U(T) = int_0^T S(t) dt
  ///   cycle downtime D(T) = F(T) * failure_downtime + S(T) * restart_downtime
  ///   fraction(T)    = D(T) / (U(T) + D(T))
  /// `interval` <= 0 or +inf means "never rejuvenate".
  double downtime_fraction(double interval) const;

  /// Downtime fraction without rejuvenation (pure run-to-failure).
  double downtime_fraction_never() const;

  /// Interval minimizing downtime_fraction, found by golden-section search
  /// over (0, search_horizon]. Returns +inf when never-rejuvenate is at
  /// least as good as any finite interval (the shape <= 1 case).
  double optimal_interval(double search_horizon = 0.0) const;

  /// Downtime-fraction improvement of the optimal schedule over
  /// run-to-failure (1 = no benefit, < 1 = rejuvenation helps).
  double optimal_improvement() const;
};

}  // namespace pfm::act
