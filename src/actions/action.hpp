#pragma once

#include <cstdint>
#include <string>

#include "core/managed_system.hpp"

namespace pfm::act {

/// The two principal goals of prediction-triggered actions (Fig. 7).
enum class ActionGoal : std::uint8_t {
  kDowntimeAvoidance = 0,
  kDowntimeMinimization = 1
};

/// The five action classes of the Fig. 7 classification.
enum class ActionKind : std::uint8_t {
  kStateCleanup = 0,       ///< garbage collection, clearing queues, ...
  kPreventiveFailover = 1, ///< switch/migrate away from the failure-prone unit
  kLoadLowering = 2,       ///< reject/shed load to prevent overload
  kPreparedRepair = 3,     ///< warm spare + checkpoint before the failure
  kPreventiveRestart = 4   ///< rejuvenation: forced restart
};
inline constexpr std::size_t kNumActionKinds = 5;

/// Fig. 7 mapping from action class to principal goal.
ActionGoal goal_of(ActionKind kind) noexcept;

std::string to_string(ActionKind kind);
std::string to_string(ActionGoal goal);

/// Objective-function inputs of an action (Sect. 2: effectiveness is
/// evaluated from "cost of actions, confidence in the prediction,
/// probability of success and complexity of actions").
struct ActionProperties {
  double cost = 1.0;                 ///< abstract execution cost, >= 0
  double success_probability = 0.5; ///< P(action removes the threat), [0,1]
  double complexity = 1.0;          ///< >= 1; divides the net benefit

  void validate() const;
};

/// A prediction-triggered countermeasure executable against any managed
/// system. Concrete actions operate through the ManagedSystem
/// countermeasure hooks.
class Action {
 public:
  virtual ~Action() = default;

  virtual std::string name() const = 0;
  virtual ActionKind kind() const = 0;
  ActionGoal goal() const noexcept { return goal_of(kind()); }

  virtual const ActionProperties& properties() const = 0;

  /// True when the action is worth attempting in the system's current
  /// state (e.g., restarting is pointless when no unit is degraded).
  virtual bool applicable(const core::ManagedSystem& system) const = 0;

  /// Executes against the system. `confidence` is the failure warning's
  /// score in (0,1); actions may scale their aggressiveness with it.
  ///
  /// Fault model: execute may throw (an actuator can fail like anything
  /// else). The Act engine retries per core::ActionRetryPolicy and backs
  /// the action kind off exponentially when every attempt fails, so
  /// implementations should tolerate being re-executed after a partial
  /// completion (all hooks on ManagedSystem are safe to repeat).
  virtual void execute(core::ManagedSystem& system, double confidence) = 0;
};

/// State clean-up (downtime avoidance): restart of the unit with the
/// highest memory pressure, clearing leaked state.
class StateCleanupAction final : public Action {
 public:
  explicit StateCleanupAction(double pressure_trigger = 0.70);

  std::string name() const override { return "state-cleanup"; }
  ActionKind kind() const override { return ActionKind::kStateCleanup; }
  const ActionProperties& properties() const override { return props_; }
  bool applicable(const core::ManagedSystem& system) const override;
  void execute(core::ManagedSystem& system, double confidence) override;

 private:
  double pressure_trigger_;
  ActionProperties props_{0.8, 0.9, 1.0};
};

/// Preventive failover (downtime avoidance): take the unit with an active
/// error cascade out of service so the replicas carry its traffic.
class PreventiveFailoverAction final : public Action {
 public:
  std::string name() const override { return "preventive-failover"; }
  ActionKind kind() const override { return ActionKind::kPreventiveFailover; }
  const ActionProperties& properties() const override { return props_; }
  bool applicable(const core::ManagedSystem& system) const override;
  void execute(core::ManagedSystem& system, double confidence) override;

 private:
  ActionProperties props_{1.2, 0.85, 1.5};
};

/// Load lowering (downtime avoidance): shed a confidence-scaled fraction
/// of the offered load for a fixed relief period.
class LoadLoweringAction final : public Action {
 public:
  explicit LoadLoweringAction(double utilization_trigger = 0.75,
                              double relief_duration = 600.0);

  std::string name() const override { return "load-lowering"; }
  ActionKind kind() const override { return ActionKind::kLoadLowering; }
  const ActionProperties& properties() const override { return props_; }
  bool applicable(const core::ManagedSystem& system) const override;
  void execute(core::ManagedSystem& system, double confidence) override;

 private:
  double utilization_trigger_;
  double relief_duration_;
  ActionProperties props_{2.0, 0.8, 1.2};
};

/// Prepared repair (downtime minimization): pre-boot the spare and
/// checkpoint now, so an anticipated failure repairs fast (Fig. 8(b)).
class PreparedRepairAction final : public Action {
 public:
  explicit PreparedRepairAction(double preparation_window = 900.0);

  std::string name() const override { return "prepared-repair"; }
  ActionKind kind() const override { return ActionKind::kPreparedRepair; }
  const ActionProperties& properties() const override { return props_; }
  bool applicable(const core::ManagedSystem& system) const override;
  void execute(core::ManagedSystem& system, double confidence) override;

 private:
  double preparation_window_;
  ActionProperties props_{0.5, 0.95, 1.0};
};

/// Preventive restart / rejuvenation (downtime minimization): forced
/// restart of the most degraded unit, trading a short planned outage
/// against a longer unplanned one.
class PreventiveRestartAction final : public Action {
 public:
  std::string name() const override { return "preventive-restart"; }
  ActionKind kind() const override { return ActionKind::kPreventiveRestart; }
  const ActionProperties& properties() const override { return props_; }
  bool applicable(const core::ManagedSystem& system) const override;
  void execute(core::ManagedSystem& system, double confidence) override;

 private:
  ActionProperties props_{1.5, 0.9, 1.3};
};

}  // namespace pfm::act
