#pragma once

namespace pfm::act {

/// Standalone time-to-repair model of Fig. 8.
///
/// TTR decomposes into (a) the time to obtain a fault-free system
/// (reconfiguration: cold-spare boot vs. warm, pre-booted spare) and
/// (b) recomputation of the work lost since the last checkpoint. Proactive
/// preparation shortens both: the spare boots before the failure, and a
/// prediction-triggered checkpoint is taken close to the failure.
struct TtrModel {
  double reconfig_cold = 360.0;  ///< unanticipated: boot + fault isolation
  double reconfig_warm = 90.0;   ///< prepared: spare already running
  double recompute_factor = 0.02;  ///< repair seconds per second since ckpt
  double recompute_max = 600.0;

  /// Throws std::invalid_argument on non-positive/negative parameters.
  void validate() const;

  /// Recomputation time for a checkpoint of the given age (Fig. 8: the
  /// span between "Checkpoint" and "Failure").
  double recompute_time(double checkpoint_age) const;

  /// Fig. 8(a): classical recovery with periodic checkpoints of age
  /// `checkpoint_age` at failure time.
  double classical(double checkpoint_age) const;

  /// Fig. 8(b): prediction-prepared recovery; the checkpoint was saved at
  /// warning time, `checkpoint_age` seconds before the failure (the lead
  /// time, typically small).
  double prepared(double checkpoint_age) const;

  /// Repair-time improvement factor k (Eq. 6) achieved by preparation for
  /// given checkpoint ages in the two schemes.
  double improvement_factor(double classical_age, double prepared_age) const;
};

}  // namespace pfm::act
