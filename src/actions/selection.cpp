#include "actions/selection.hpp"

namespace pfm::act {

double objective_score(const Action& action, double confidence,
                       const ObjectiveWeights& weights) {
  const auto& p = action.properties();
  const double benefit =
      confidence * p.success_probability * weights.failure_cost;
  return (benefit - weights.cost_weight * p.cost) / p.complexity;
}

ActionSelector::ActionSelector(ObjectiveWeights weights) : weights_(weights) {}

Action* ActionSelector::select(
    std::span<const std::unique_ptr<Action>> actions,
    const core::ManagedSystem& system, double confidence) const {
  Action* best = nullptr;
  double best_score = 0.0;  // "do nothing" scores zero
  for (const auto& a : actions) {
    if (!a) continue;
    if (a->properties().cost > weights_.max_action_cost) continue;
    if (!a->applicable(system)) continue;
    const double s = objective_score(*a, confidence, weights_);
    if (s > best_score) {
      best_score = s;
      best = a.get();
    }
  }
  return best;
}

}  // namespace pfm::act
