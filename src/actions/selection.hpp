#pragma once

#include <memory>
#include <span>
#include <vector>

#include "actions/action.hpp"

namespace pfm::act {

/// Weights of the action-selection objective function (Sect. 2 / Sect. 6:
/// the Act component selects "the most effective method" from prediction
/// confidence, success probability, cost and complexity, possibly under
/// business constraints).
struct ObjectiveWeights {
  /// Expected benefit of averting one failure (same abstract units as
  /// ActionProperties::cost): roughly "cost of an unhandled failure".
  double failure_cost = 10.0;
  /// Multiplier on the action's execution cost.
  double cost_weight = 1.0;
  /// Hard budget: actions whose cost exceeds this are never selected
  /// (models the "limited budget" business constraint).
  double max_action_cost = 1e9;
};

/// Evaluates the objective for one action given the prediction confidence:
///   score = (confidence * P(success) * failure_cost - cost_weight * cost)
///           / complexity
double objective_score(const Action& action, double confidence,
                       const ObjectiveWeights& weights);

/// Selects the best applicable action (or nullptr when no action clears a
/// zero objective — doing nothing is then the most effective choice).
class ActionSelector {
 public:
  explicit ActionSelector(ObjectiveWeights weights = {});

  /// Picks argmax of the objective over applicable actions with positive
  /// score. `actions` may contain nullptr entries (skipped).
  Action* select(std::span<const std::unique_ptr<Action>> actions,
                 const core::ManagedSystem& system,
                 double confidence) const;

  const ObjectiveWeights& weights() const noexcept { return weights_; }

 private:
  ObjectiveWeights weights_;
};

}  // namespace pfm::act
