#include "actions/rejuvenation.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pfm::act {

namespace {

/// Trapezoid integral of the survival function over [0, T].
double uptime_integral(const num::Weibull& w, double T) {
  if (T <= 0.0) return 0.0;
  const int steps = 2000;
  const double dt = T / steps;
  double acc = 0.0;
  double prev = w.survival(0.0);
  for (int i = 1; i <= steps; ++i) {
    const double cur = w.survival(dt * i);
    acc += 0.5 * (prev + cur) * dt;
    prev = cur;
  }
  return acc;
}

}  // namespace

void RejuvenationModel::validate() const {
  if (lifetime.shape <= 0.0 || lifetime.scale <= 0.0) {
    throw std::invalid_argument("RejuvenationModel: bad lifetime");
  }
  if (restart_downtime <= 0.0 || failure_downtime <= 0.0) {
    throw std::invalid_argument("RejuvenationModel: downtimes must be > 0");
  }
  if (restart_downtime >= failure_downtime) {
    throw std::invalid_argument(
        "RejuvenationModel: a planned restart must be cheaper than a "
        "failure, otherwise rejuvenation is pointless");
  }
}

double RejuvenationModel::downtime_fraction(double interval) const {
  if (!(interval > 0.0) || std::isinf(interval)) {
    return downtime_fraction_never();
  }
  const double up = uptime_integral(lifetime, interval);
  const double f = lifetime.cdf(interval);
  const double down = f * failure_downtime + (1.0 - f) * restart_downtime;
  return down / (up + down);
}

double RejuvenationModel::downtime_fraction_never() const {
  const double mttf = lifetime.mean();
  return failure_downtime / (mttf + failure_downtime);
}

double RejuvenationModel::optimal_interval(double search_horizon) const {
  validate();
  if (search_horizon <= 0.0) search_horizon = 20.0 * lifetime.mean();

  // Coarse log-spaced scan first: downtime_fraction is unimodal but has a
  // flat tail at large intervals (where it approaches the run-to-failure
  // level), which would mislead a bare golden-section search.
  const double lo = 1e-6 * search_horizon;
  const int grid = 64;
  double best_t = lo;
  double best_f = downtime_fraction(lo);
  int best_i = 0;
  for (int i = 1; i <= grid; ++i) {
    const double t =
        lo * std::pow(search_horizon / lo, static_cast<double>(i) / grid);
    const double f = downtime_fraction(t);
    if (f < best_f) {
      best_f = f;
      best_t = t;
      best_i = i;
    }
  }
  // Golden-section refinement inside the bracketing grid cells.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo * std::pow(search_horizon / lo,
                           static_cast<double>(std::max(best_i - 1, 0)) / grid);
  double b = lo * std::pow(search_horizon / lo,
                           static_cast<double>(std::min(best_i + 1, grid)) / grid);
  for (int iter = 0; iter < 80; ++iter) {
    const double c = b - phi * (b - a);
    const double d = a + phi * (b - a);
    if (downtime_fraction(c) < downtime_fraction(d)) {
      b = d;
    } else {
      a = c;
    }
  }
  const double refined = 0.5 * (a + b);
  if (downtime_fraction(refined) < best_f) best_t = refined;

  // Improvements below the quadrature noise floor mean "do not rejuvenate".
  if (downtime_fraction(best_t) >=
      downtime_fraction_never() * (1.0 - 1e-4)) {
    return std::numeric_limits<double>::infinity();
  }
  return best_t;
}

double RejuvenationModel::optimal_improvement() const {
  const double best = optimal_interval();
  return downtime_fraction(best) / downtime_fraction_never();
}

}  // namespace pfm::act
