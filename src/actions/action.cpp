#include "actions/action.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfm::act {

ActionGoal goal_of(ActionKind kind) noexcept {
  switch (kind) {
    case ActionKind::kStateCleanup:
    case ActionKind::kPreventiveFailover:
    case ActionKind::kLoadLowering:
      return ActionGoal::kDowntimeAvoidance;
    case ActionKind::kPreparedRepair:
    case ActionKind::kPreventiveRestart:
      return ActionGoal::kDowntimeMinimization;
  }
  return ActionGoal::kDowntimeAvoidance;
}

std::string to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kStateCleanup:
      return "state-cleanup";
    case ActionKind::kPreventiveFailover:
      return "preventive-failover";
    case ActionKind::kLoadLowering:
      return "load-lowering";
    case ActionKind::kPreparedRepair:
      return "prepared-repair";
    case ActionKind::kPreventiveRestart:
      return "preventive-restart";
  }
  return "unknown";
}

std::string to_string(ActionGoal goal) {
  return goal == ActionGoal::kDowntimeAvoidance ? "downtime-avoidance"
                                                : "downtime-minimization";
}

void ActionProperties::validate() const {
  if (cost < 0.0) throw std::invalid_argument("ActionProperties: cost >= 0");
  if (success_probability < 0.0 || success_probability > 1.0) {
    throw std::invalid_argument(
        "ActionProperties: success_probability in [0,1]");
  }
  if (complexity < 1.0) {
    throw std::invalid_argument("ActionProperties: complexity >= 1");
  }
}

namespace {

/// Index of the node with the highest memory pressure; the node must be
/// available to be a restart target.
std::size_t worst_pressure_node(const telecom::ScpSimulator& sim) {
  std::size_t arg = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    if (!sim.node(i).available(sim.now())) continue;
    if (sim.node(i).memory_pressure() > best) {
      best = sim.node(i).memory_pressure();
      arg = i;
    }
  }
  return arg;
}

}  // namespace

// --- StateCleanupAction ---------------------------------------------------------

StateCleanupAction::StateCleanupAction(double pressure_trigger)
    : pressure_trigger_(pressure_trigger) {
  if (pressure_trigger <= 0.0 || pressure_trigger >= 1.0) {
    throw std::invalid_argument("StateCleanupAction: trigger in (0,1)");
  }
}

bool StateCleanupAction::applicable(
    const telecom::ScpSimulator& system) const {
  for (std::size_t i = 0; i < system.num_nodes(); ++i) {
    if (system.node(i).available(system.now()) &&
        system.node(i).memory_pressure() > pressure_trigger_) {
      return true;
    }
  }
  return false;
}

void StateCleanupAction::execute(telecom::ScpSimulator& system,
                                 double /*confidence*/) {
  system.preventive_restart(worst_pressure_node(system));
}

// --- PreventiveFailoverAction ------------------------------------------------------

bool PreventiveFailoverAction::applicable(
    const telecom::ScpSimulator& system) const {
  for (std::size_t i = 0; i < system.num_nodes(); ++i) {
    if (system.node(i).available(system.now()) &&
        system.node(i).cascade_stage() >= 1) {
      return true;
    }
  }
  return false;
}

void PreventiveFailoverAction::execute(telecom::ScpSimulator& system,
                                       double /*confidence*/) {
  for (std::size_t i = 0; i < system.num_nodes(); ++i) {
    if (system.node(i).available(system.now()) &&
        system.node(i).cascade_stage() >= 1) {
      // Taking the node out of service re-routes its traffic to the
      // replicas and clears the faulty process state on restart.
      system.preventive_restart(i);
      return;
    }
  }
}

// --- LoadLoweringAction -------------------------------------------------------------

LoadLoweringAction::LoadLoweringAction(double utilization_trigger,
                                       double relief_duration)
    : utilization_trigger_(utilization_trigger),
      relief_duration_(relief_duration) {
  if (utilization_trigger <= 0.0 || relief_duration <= 0.0) {
    throw std::invalid_argument("LoadLoweringAction: bad parameters");
  }
}

bool LoadLoweringAction::applicable(
    const telecom::ScpSimulator& system) const {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < system.num_nodes(); ++i) {
    alive += system.node(i).available(system.now()) ? 1 : 0;
  }
  if (alive == 0) return false;
  const double per_node = system.current_arrival_rate() /
                          static_cast<double>(alive);
  return per_node / system.config().node_capacity > utilization_trigger_;
}

void LoadLoweringAction::execute(telecom::ScpSimulator& system,
                                 double confidence) {
  // Sect. 4.2: "the number of allowed connections is adaptive and would
  // depend on the assessed risk of failure" — shed more when more sure.
  const double fraction = std::clamp(0.25 + 0.5 * confidence, 0.25, 0.75);
  system.shed_load(fraction, relief_duration_);
}

// --- PreparedRepairAction -----------------------------------------------------------

PreparedRepairAction::PreparedRepairAction(double preparation_window)
    : preparation_window_(preparation_window) {
  if (preparation_window <= 0.0) {
    throw std::invalid_argument("PreparedRepairAction: window > 0");
  }
}

bool PreparedRepairAction::applicable(
    const telecom::ScpSimulator& /*system*/) const {
  return true;  // preparation never hurts (small cost, no downtime)
}

void PreparedRepairAction::execute(telecom::ScpSimulator& system,
                                   double /*confidence*/) {
  system.prepare_for_failure(preparation_window_);
}

// --- PreventiveRestartAction ----------------------------------------------------------

bool PreventiveRestartAction::applicable(
    const telecom::ScpSimulator& system) const {
  for (std::size_t i = 0; i < system.num_nodes(); ++i) {
    if (system.node(i).available(system.now()) &&
        (system.node(i).leak_active() ||
         system.node(i).cascade_stage() >= 1)) {
      return true;
    }
  }
  return false;
}

void PreventiveRestartAction::execute(telecom::ScpSimulator& system,
                                      double /*confidence*/) {
  // Restart the most suspicious node: active cascade first, then the
  // highest memory pressure.
  for (std::size_t i = 0; i < system.num_nodes(); ++i) {
    if (system.node(i).available(system.now()) &&
        system.node(i).cascade_stage() >= 1) {
      system.preventive_restart(i);
      return;
    }
  }
  system.preventive_restart(worst_pressure_node(system));
}

}  // namespace pfm::act
