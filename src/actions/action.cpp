#include "actions/action.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfm::act {

ActionGoal goal_of(ActionKind kind) noexcept {
  switch (kind) {
    case ActionKind::kStateCleanup:
    case ActionKind::kPreventiveFailover:
    case ActionKind::kLoadLowering:
      return ActionGoal::kDowntimeAvoidance;
    case ActionKind::kPreparedRepair:
    case ActionKind::kPreventiveRestart:
      return ActionGoal::kDowntimeMinimization;
  }
  return ActionGoal::kDowntimeAvoidance;
}

std::string to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kStateCleanup:
      return "state-cleanup";
    case ActionKind::kPreventiveFailover:
      return "preventive-failover";
    case ActionKind::kLoadLowering:
      return "load-lowering";
    case ActionKind::kPreparedRepair:
      return "prepared-repair";
    case ActionKind::kPreventiveRestart:
      return "preventive-restart";
  }
  return "unknown";
}

std::string to_string(ActionGoal goal) {
  return goal == ActionGoal::kDowntimeAvoidance ? "downtime-avoidance"
                                                : "downtime-minimization";
}

void ActionProperties::validate() const {
  if (cost < 0.0) throw std::invalid_argument("ActionProperties: cost >= 0");
  if (success_probability < 0.0 || success_probability > 1.0) {
    throw std::invalid_argument(
        "ActionProperties: success_probability in [0,1]");
  }
  if (complexity < 1.0) {
    throw std::invalid_argument("ActionProperties: complexity >= 1");
  }
}

namespace {

/// Index of the unit with the highest memory pressure; the unit must be
/// available to be a restart target.
std::size_t worst_pressure_unit(const core::ManagedSystem& system) {
  std::size_t arg = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < system.num_units(); ++i) {
    const auto health = system.unit_health(i);
    if (!health.available) continue;
    if (health.memory_pressure > best) {
      best = health.memory_pressure;
      arg = i;
    }
  }
  return arg;
}

}  // namespace

// --- StateCleanupAction ---------------------------------------------------------

StateCleanupAction::StateCleanupAction(double pressure_trigger)
    : pressure_trigger_(pressure_trigger) {
  if (pressure_trigger <= 0.0 || pressure_trigger >= 1.0) {
    throw std::invalid_argument("StateCleanupAction: trigger in (0,1)");
  }
}

bool StateCleanupAction::applicable(
    const core::ManagedSystem& system) const {
  for (std::size_t i = 0; i < system.num_units(); ++i) {
    const auto health = system.unit_health(i);
    if (health.available && health.memory_pressure > pressure_trigger_) {
      return true;
    }
  }
  return false;
}

void StateCleanupAction::execute(core::ManagedSystem& system,
                                 double /*confidence*/) {
  system.restart_unit(worst_pressure_unit(system));
}

// --- PreventiveFailoverAction ------------------------------------------------------

bool PreventiveFailoverAction::applicable(
    const core::ManagedSystem& system) const {
  for (std::size_t i = 0; i < system.num_units(); ++i) {
    const auto health = system.unit_health(i);
    if (health.available && health.cascade_stage >= 1) return true;
  }
  return false;
}

void PreventiveFailoverAction::execute(core::ManagedSystem& system,
                                       double /*confidence*/) {
  for (std::size_t i = 0; i < system.num_units(); ++i) {
    const auto health = system.unit_health(i);
    if (health.available && health.cascade_stage >= 1) {
      // Taking the unit out of service re-routes its traffic to the
      // replicas and clears the faulty process state on restart.
      system.restart_unit(i);
      return;
    }
  }
}

// --- LoadLoweringAction -------------------------------------------------------------

LoadLoweringAction::LoadLoweringAction(double utilization_trigger,
                                       double relief_duration)
    : utilization_trigger_(utilization_trigger),
      relief_duration_(relief_duration) {
  if (utilization_trigger <= 0.0 || relief_duration <= 0.0) {
    throw std::invalid_argument("LoadLoweringAction: bad parameters");
  }
}

bool LoadLoweringAction::applicable(
    const core::ManagedSystem& system) const {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < system.num_units(); ++i) {
    alive += system.unit_health(i).available ? 1 : 0;
  }
  if (alive == 0) return false;
  const double per_unit = system.offered_load() / static_cast<double>(alive);
  return per_unit / system.unit_capacity() > utilization_trigger_;
}

void LoadLoweringAction::execute(core::ManagedSystem& system,
                                 double confidence) {
  // Sect. 4.2: "the number of allowed connections is adaptive and would
  // depend on the assessed risk of failure" — shed more when more sure.
  const double fraction = std::clamp(0.25 + 0.5 * confidence, 0.25, 0.75);
  system.shed_load(fraction, relief_duration_);
}

// --- PreparedRepairAction -----------------------------------------------------------

PreparedRepairAction::PreparedRepairAction(double preparation_window)
    : preparation_window_(preparation_window) {
  if (preparation_window <= 0.0) {
    throw std::invalid_argument("PreparedRepairAction: window > 0");
  }
}

bool PreparedRepairAction::applicable(
    const core::ManagedSystem& /*system*/) const {
  return true;  // preparation never hurts (small cost, no downtime)
}

void PreparedRepairAction::execute(core::ManagedSystem& system,
                                   double /*confidence*/) {
  system.prepare_for_failure(preparation_window_);
}

// --- PreventiveRestartAction ----------------------------------------------------------

bool PreventiveRestartAction::applicable(
    const core::ManagedSystem& system) const {
  for (std::size_t i = 0; i < system.num_units(); ++i) {
    const auto health = system.unit_health(i);
    if (health.available &&
        (health.leak_active || health.cascade_stage >= 1)) {
      return true;
    }
  }
  return false;
}

void PreventiveRestartAction::execute(core::ManagedSystem& system,
                                      double /*confidence*/) {
  // Restart the most suspicious unit: active cascade first, then the
  // highest memory pressure.
  for (std::size_t i = 0; i < system.num_units(); ++i) {
    const auto health = system.unit_health(i);
    if (health.available && health.cascade_stage >= 1) {
      system.restart_unit(i);
      return;
    }
  }
  system.restart_unit(worst_pressure_unit(system));
}

}  // namespace pfm::act
