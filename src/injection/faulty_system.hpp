#pragma once

#include <memory>

#include "core/managed_system.hpp"
#include "injection/fault_plan.hpp"
#include "obs/observability.hpp"

namespace pfm::inj {

/// Decorator applying a NodeFaultSpec to a core::ManagedSystem:
///
///  - *crash*: once the node's time reaches `crash_at`, step_to and every
///    countermeasure hook throw NodeCrashError. Read accessors (trace,
///    stats, health) keep answering with the last known state, the way a
///    monitoring store outlives the process it watched.
///  - *hang*: starting at `hang_at`, the next `hang_steps` step_to calls
///    return without advancing time (a liveness fault, not a crash).
///  - *dropped / corrupted samples*: the decorator maintains a shadow
///    trace into which freshly monitored symptom samples are copied,
///    dropped, or rewritten to quiet NaN per the decision stream; error
///    events and failures pass through unmodified.
///
/// With a zero spec the decorator forwards everything and exposes the
/// inner trace object itself — the wrapped node is bit-identical to the
/// bare one. Faults draw from a DecisionStream keyed by the node index,
/// so a fixed (seed, plan) yields the same fault sequence regardless of
/// which pool thread steps the node.
class FaultyManagedSystem final : public core::ManagedSystem {
 public:
  /// `hub`, when given, receives cause-side fault counters and — for the
  /// sim-timed crash/hang faults — kInjectedFault spans on the node's
  /// trace lane.
  FaultyManagedSystem(std::unique_ptr<core::ManagedSystem> inner,
                      std::size_t node_index, const FaultPlan& plan,
                      obs::Observability* hub = nullptr);

  std::string name() const override { return inner_->name(); }

  double now() const override { return inner_->now(); }
  double horizon() const override { return inner_->horizon(); }
  bool finished() const override { return inner_->finished(); }
  void step_to(double t) override;

  const mon::MonitoringDataset& trace() const override {
    return filtering_ ? shadow_ : inner_->trace();
  }

  std::size_t num_units() const override { return inner_->num_units(); }
  core::UnitHealth unit_health(std::size_t unit) const override {
    return inner_->unit_health(unit);
  }
  double offered_load() const override { return inner_->offered_load(); }
  double unit_capacity() const override { return inner_->unit_capacity(); }
  bool service_down() const override { return inner_->service_down(); }
  // Read-only like trace(): keeps answering from the inner system even
  // after a crash (the node is quarantined at its next step anyway).
  core::SchedulingHint scheduling_hint() const override {
    return inner_->scheduling_hint();
  }

  void restart_unit(std::size_t unit) override;
  void shed_load(double fraction, double duration) override;
  void checkpoint() override;
  void prepare_for_failure(double window) override;

  core::SystemStats system_stats() const override {
    return inner_->system_stats();
  }

  bool crashed() const noexcept { return crashed_; }
  const InjectionStats& injection_stats() const noexcept { return stats_; }

 private:
  void throw_if_crashed() const;
  void sync_shadow();

  std::unique_ptr<core::ManagedSystem> inner_;
  NodeFaultSpec spec_;
  DecisionStream stream_;
  InjectionStats stats_;

  obs::TraceRecorder* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  obs::FlightRecorder* flight_ = nullptr;
  std::size_t node_index_ = 0;
  obs::Counter* crash_counter_ = nullptr;
  obs::Counter* hang_counter_ = nullptr;
  obs::Counter* drop_counter_ = nullptr;
  obs::Counter* corrupt_counter_ = nullptr;

  bool crashed_ = false;
  std::size_t hang_steps_served_ = 0;

  // Shadow trace (only maintained when the spec drops/corrupts samples).
  bool filtering_ = false;
  mon::MonitoringDataset shadow_;
  std::size_t samples_seen_ = 0;
  std::size_t events_seen_ = 0;
  std::size_t failures_seen_ = 0;
};

}  // namespace pfm::inj
