#include "injection/faulty_system.hpp"

#include <limits>
#include <stdexcept>

namespace pfm::inj {

namespace {
// Stream-kind tags keeping the per-family decision streams disjoint.
constexpr std::uint64_t kNodeStream = 1;
}  // namespace

FaultyManagedSystem::FaultyManagedSystem(
    std::unique_ptr<core::ManagedSystem> inner, std::size_t node_index,
    const FaultPlan& plan, obs::Observability* hub)
    : inner_(std::move(inner)),
      spec_(plan.node_spec(node_index)),
      stream_(plan.seed, kNodeStream, node_index) {
  if (!inner_) {
    throw std::invalid_argument("FaultyManagedSystem: null inner system");
  }
  node_index_ = node_index;
  if (hub != nullptr) {
    tracer_ = hub->tracer();
    flight_ = hub->flight();
    track_ = obs::node_track(node_index);
    auto& metrics = hub->metrics();
    crash_counter_ =
        &metrics.counter("pfm_injected_faults_total{kind=\"node_crash\"}");
    hang_counter_ =
        &metrics.counter("pfm_injected_faults_total{kind=\"node_hang\"}");
    drop_counter_ =
        &metrics.counter("pfm_injected_faults_total{kind=\"sample_drop\"}");
    corrupt_counter_ =
        &metrics.counter("pfm_injected_faults_total{kind=\"sample_corrupt\"}");
  }
  filtering_ = spec_.drop_sample_p > 0.0 || spec_.corrupt_sample_p > 0.0;
  if (filtering_) {
    shadow_ = mon::MonitoringDataset(inner_->trace().schema());
    sync_shadow();
  }
}

void FaultyManagedSystem::throw_if_crashed() const {
  if (crashed_) {
    throw NodeCrashError(inner_->name() + ": node crashed at t=" +
                         std::to_string(spec_.crash_at));
  }
}

void FaultyManagedSystem::step_to(double t) {
  throw_if_crashed();
  if (spec_.crash_at >= 0.0 && inner_->now() >= spec_.crash_at) {
    crashed_ = true;
    ++stats_.node_crashes;
    if (crash_counter_ != nullptr) crash_counter_->inc();
    obs::record_instant(tracer_, obs::SpanKind::kInjectedFault, track_,
                        inner_->now(), 0,
                        static_cast<std::int64_t>(FaultCode::kNodeCrash));
    if (flight_ != nullptr) {
      flight_->record_node(
          node_index_,
          obs::FlightEvent{inner_->now(), obs::FlightEventKind::kInjectedFault,
                           0, static_cast<std::int64_t>(FaultCode::kNodeCrash),
                           0.0});
    }
    throw_if_crashed();
  }
  if (spec_.hang_at >= 0.0 && inner_->now() >= spec_.hang_at &&
      hang_steps_served_ < spec_.hang_steps) {
    ++hang_steps_served_;
    ++stats_.node_hangs;
    if (hang_counter_ != nullptr) hang_counter_->inc();
    obs::record_instant(tracer_, obs::SpanKind::kInjectedFault, track_,
                        inner_->now(), 0,
                        static_cast<std::int64_t>(FaultCode::kNodeHang));
    if (flight_ != nullptr) {
      flight_->record_node(
          node_index_,
          obs::FlightEvent{inner_->now(), obs::FlightEventKind::kInjectedFault,
                           0, static_cast<std::int64_t>(FaultCode::kNodeHang),
                           0.0});
    }
    return;  // liveness fault: the call returns but time stands still
  }
  inner_->step_to(t);
  if (filtering_) sync_shadow();
}

void FaultyManagedSystem::sync_shadow() {
  const auto& t = inner_->trace();
  const auto samples = t.samples();
  for (; samples_seen_ < samples.size(); ++samples_seen_) {
    if (stream_.fire(spec_.drop_sample_p)) {
      ++stats_.samples_dropped;
      // High-frequency sample faults stay counter-only — a lossy sensor
      // would flood the span rings.
      if (drop_counter_ != nullptr) drop_counter_->inc();
      continue;
    }
    mon::SymptomSample s = samples[samples_seen_];
    if (stream_.fire(spec_.corrupt_sample_p)) {
      ++stats_.samples_corrupted;
      if (corrupt_counter_ != nullptr) corrupt_counter_->inc();
      for (auto& v : s.values) {
        v = std::numeric_limits<double>::quiet_NaN();
      }
    }
    shadow_.add_sample(std::move(s));
  }
  const auto events = t.events();
  for (; events_seen_ < events.size(); ++events_seen_) {
    shadow_.add_event(events[events_seen_]);
  }
  const auto failures = t.failures();
  for (; failures_seen_ < failures.size(); ++failures_seen_) {
    shadow_.add_failure(failures[failures_seen_]);
  }
}

void FaultyManagedSystem::restart_unit(std::size_t unit) {
  throw_if_crashed();
  inner_->restart_unit(unit);
}

void FaultyManagedSystem::shed_load(double fraction, double duration) {
  throw_if_crashed();
  inner_->shed_load(fraction, duration);
}

void FaultyManagedSystem::checkpoint() {
  throw_if_crashed();
  inner_->checkpoint();
}

void FaultyManagedSystem::prepare_for_failure(double window) {
  throw_if_crashed();
  inner_->prepare_for_failure(window);
}

}  // namespace pfm::inj
