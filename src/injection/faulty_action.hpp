#pragma once

#include <memory>

#include "actions/action.hpp"
#include "injection/fault_plan.hpp"
#include "obs/observability.hpp"

namespace pfm::inj {

/// Decorator applying an ActionFaultSpec to a countermeasure:
///
///  - *outright failure*: execute throws ActionFaultError before touching
///    the system (the actuator was unreachable);
///  - *partial completion*: the inner action executes, then the decorator
///    throws anyway (the work happened but the acknowledgement was lost)
///    — exercising the retry path's tolerance of re-executed actions.
///
/// Each attempt re-rolls the decision stream, so a retried action can
/// succeed; the stream is keyed by (action id, instance) so every node's
/// copy of an action fails independently but deterministically.
class FaultyAction final : public act::Action {
 public:
  /// `hub`, when given, counts injected failures and records
  /// kInjectedFault spans. `instance` doubles as the trace lane: the
  /// fleet controller creates one instance per node in node order, so
  /// instance i maps to node_track(i).
  FaultyAction(std::unique_ptr<act::Action> inner, std::size_t action_id,
               std::size_t instance, const FaultPlan& plan,
               obs::Observability* hub = nullptr);

  std::string name() const override { return inner_->name() + "+faults"; }
  act::ActionKind kind() const override { return inner_->kind(); }
  const act::ActionProperties& properties() const override {
    return inner_->properties();
  }
  bool applicable(const core::ManagedSystem& system) const override {
    return inner_->applicable(system);
  }
  void execute(core::ManagedSystem& system, double confidence) override;

  const InjectionStats& injection_stats() const noexcept { return stats_; }

 private:
  std::unique_ptr<act::Action> inner_;
  ActionFaultSpec spec_;
  DecisionStream stream_;
  InjectionStats stats_;
  obs::TraceRecorder* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  obs::Counter* failure_counter_ = nullptr;
};

}  // namespace pfm::inj
