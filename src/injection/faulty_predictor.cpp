#include "injection/faulty_predictor.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

namespace pfm::inj {

namespace detail {

namespace {
constexpr std::uint64_t kPredictorStream = 2;
}  // namespace

PredictorFaultState::PredictorFaultState(const FaultPlan& plan,
                                         std::size_t id,
                                         obs::Observability* hub)
    : spec_(plan.predictor_spec(id)), seed_(plan.seed), id_(id) {
  if (hub != nullptr) {
    auto& metrics = hub->metrics();
    throw_counter_ = &metrics.counter(
        "pfm_injected_faults_total{kind=\"predictor_throw\"}");
    nan_counter_ =
        &metrics.counter("pfm_injected_faults_total{kind=\"predictor_nan\"}");
  }
}

void PredictorFaultState::sleep_latency() const {
  if (spec_.added_latency > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(spec_.added_latency));
  }
}

void PredictorFaultState::corrupt_one(double& value, std::uint64_t origin,
                                      std::uint64_t ordinal) const {
  if (spec_.throw_p <= 0.0 && spec_.nan_p <= 0.0 && spec_.inf_p <= 0.0) {
    return;
  }
  DecisionStream stream(
      seed_, kPredictorStream,
      DecisionStream::derive(DecisionStream::derive(id_, origin), ordinal));
  if (stream.fire(spec_.throw_p)) {
    throws_.fetch_add(1, std::memory_order_relaxed);
    if (throw_counter_ != nullptr) throw_counter_->inc();
    throw PredictorFaultError("injected predictor fault");
  }
  if (stream.fire(spec_.nan_p)) {
    nans_.fetch_add(1, std::memory_order_relaxed);
    if (nan_counter_ != nullptr) nan_counter_->inc();
    value = std::numeric_limits<double>::quiet_NaN();
  } else if (stream.fire(spec_.inf_p)) {
    nans_.fetch_add(1, std::memory_order_relaxed);
    if (nan_counter_ != nullptr) nan_counter_->inc();
    value = std::numeric_limits<double>::infinity();
  }
}

}  // namespace detail

FaultySymptomPredictor::FaultySymptomPredictor(
    std::shared_ptr<const pred::SymptomPredictor> inner, std::size_t id,
    const FaultPlan& plan, obs::Observability* hub)
    : inner_(std::move(inner)), state_(plan, id, hub) {
  if (!inner_) {
    throw std::invalid_argument("FaultySymptomPredictor: null inner");
  }
}

void FaultySymptomPredictor::train(const mon::MonitoringDataset&) {
  // Wrappers decorate already-trained predictors shared read-only across
  // the fleet; training through the wrapper is a wiring mistake.
  throw std::logic_error("FaultySymptomPredictor: wrap after training");
}

double FaultySymptomPredictor::score(
    const pred::SymptomContext& context) const {
  double value = inner_->score(context);
  state_.sleep_latency();
  state_.corrupt_one(value, context.origin, context.ordinal);
  return value;
}

void FaultySymptomPredictor::score_batch(
    std::span<const pred::SymptomContext> contexts,
    std::span<double> out) const {
  inner_->score_batch(contexts, out);
  state_.sleep_latency();
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    state_.corrupt_one(out[i], contexts[i].origin, contexts[i].ordinal);
  }
}

void FaultySymptomPredictor::score_batch(
    std::span<const pred::SymptomContext> contexts, std::span<double> out,
    pred::BatchScratch& scratch) const {
  inner_->score_batch(contexts, out, scratch);
  state_.sleep_latency();
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    state_.corrupt_one(out[i], contexts[i].origin, contexts[i].ordinal);
  }
}

FaultyEventPredictor::FaultyEventPredictor(
    std::shared_ptr<const pred::EventPredictor> inner, std::size_t id,
    const FaultPlan& plan, obs::Observability* hub)
    : inner_(std::move(inner)), state_(plan, id, hub) {
  if (!inner_) {
    throw std::invalid_argument("FaultyEventPredictor: null inner");
  }
}

void FaultyEventPredictor::train(std::span<const mon::ErrorSequence>,
                                 std::span<const mon::ErrorSequence>) {
  throw std::logic_error("FaultyEventPredictor: wrap after training");
}

double FaultyEventPredictor::score(const mon::ErrorSequence& sequence) const {
  double value = inner_->score(sequence);
  state_.sleep_latency();
  state_.corrupt_one(value, sequence.origin, sequence.ordinal);
  return value;
}

void FaultyEventPredictor::score_batch(
    std::span<const mon::ErrorSequence> sequences,
    std::span<double> out) const {
  inner_->score_batch(sequences, out);
  state_.sleep_latency();
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    state_.corrupt_one(out[i], sequences[i].origin, sequences[i].ordinal);
  }
}

void FaultyEventPredictor::score_batch(
    std::span<const mon::ErrorSequence> sequences, std::span<double> out,
    pred::BatchScratch& scratch) const {
  inner_->score_batch(sequences, out, scratch);
  state_.sleep_latency();
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    state_.corrupt_one(out[i], sequences[i].origin, sequences[i].ordinal);
  }
}

}  // namespace pfm::inj
