#include "injection/faulty_predictor.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

namespace pfm::inj {

namespace detail {

namespace {
constexpr std::uint64_t kPredictorStream = 2;
}  // namespace

PredictorFaultState::PredictorFaultState(const FaultPlan& plan,
                                         std::size_t id,
                                         obs::Observability* hub)
    : spec_(plan.predictor_spec(id)),
      stream_(plan.seed, kPredictorStream, id) {
  if (hub != nullptr) {
    auto& metrics = hub->metrics();
    throw_counter_ = &metrics.counter(
        "pfm_injected_faults_total{kind=\"predictor_throw\"}");
    nan_counter_ =
        &metrics.counter("pfm_injected_faults_total{kind=\"predictor_nan\"}");
  }
}

void PredictorFaultState::corrupt(std::span<double> out) const {
  if (spec_.added_latency > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(spec_.added_latency));
  }
  for (auto& value : out) {
    if (stream_.fire(spec_.throw_p)) {
      ++stats_.predictor_throws;
      if (throw_counter_ != nullptr) throw_counter_->inc();
      throw PredictorFaultError("injected predictor fault");
    }
    if (stream_.fire(spec_.nan_p)) {
      ++stats_.predictor_nans;
      if (nan_counter_ != nullptr) nan_counter_->inc();
      value = std::numeric_limits<double>::quiet_NaN();
    } else if (stream_.fire(spec_.inf_p)) {
      ++stats_.predictor_nans;
      if (nan_counter_ != nullptr) nan_counter_->inc();
      value = std::numeric_limits<double>::infinity();
    }
  }
}

}  // namespace detail

FaultySymptomPredictor::FaultySymptomPredictor(
    std::shared_ptr<const pred::SymptomPredictor> inner, std::size_t id,
    const FaultPlan& plan, obs::Observability* hub)
    : inner_(std::move(inner)), state_(plan, id, hub) {
  if (!inner_) {
    throw std::invalid_argument("FaultySymptomPredictor: null inner");
  }
}

void FaultySymptomPredictor::train(const mon::MonitoringDataset&) {
  // Wrappers decorate already-trained predictors shared read-only across
  // the fleet; training through the wrapper is a wiring mistake.
  throw std::logic_error("FaultySymptomPredictor: wrap after training");
}

double FaultySymptomPredictor::score(
    const pred::SymptomContext& context) const {
  double value = inner_->score(context);
  state_.corrupt({&value, 1});
  return value;
}

void FaultySymptomPredictor::score_batch(
    std::span<const pred::SymptomContext> contexts,
    std::span<double> out) const {
  inner_->score_batch(contexts, out);
  state_.corrupt(out);
}

FaultyEventPredictor::FaultyEventPredictor(
    std::shared_ptr<const pred::EventPredictor> inner, std::size_t id,
    const FaultPlan& plan, obs::Observability* hub)
    : inner_(std::move(inner)), state_(plan, id, hub) {
  if (!inner_) {
    throw std::invalid_argument("FaultyEventPredictor: null inner");
  }
}

void FaultyEventPredictor::train(std::span<const mon::ErrorSequence>,
                                 std::span<const mon::ErrorSequence>) {
  throw std::logic_error("FaultyEventPredictor: wrap after training");
}

double FaultyEventPredictor::score(const mon::ErrorSequence& sequence) const {
  double value = inner_->score(sequence);
  state_.corrupt({&value, 1});
  return value;
}

void FaultyEventPredictor::score_batch(
    std::span<const mon::ErrorSequence> sequences,
    std::span<double> out) const {
  inner_->score_batch(sequences, out);
  state_.corrupt(out);
}

}  // namespace pfm::inj
