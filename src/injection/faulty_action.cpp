#include "injection/faulty_action.hpp"

#include <stdexcept>

namespace pfm::inj {

namespace {
constexpr std::uint64_t kActionStream = 3;

std::uint64_t action_stream_id(std::size_t action_id,
                               std::size_t instance) noexcept {
  return (static_cast<std::uint64_t>(action_id) << 32) | instance;
}
}  // namespace

FaultyAction::FaultyAction(std::unique_ptr<act::Action> inner,
                           std::size_t action_id, std::size_t instance,
                           const FaultPlan& plan, obs::Observability* hub)
    : inner_(std::move(inner)),
      spec_(plan.action_spec(action_id)),
      stream_(plan.seed, kActionStream, action_stream_id(action_id, instance)) {
  if (!inner_) throw std::invalid_argument("FaultyAction: null inner");
  if (hub != nullptr) {
    tracer_ = hub->tracer();
    track_ = obs::node_track(instance);
    failure_counter_ = &hub->metrics().counter(
        "pfm_injected_faults_total{kind=\"action_failure\"}");
  }
}

void FaultyAction::execute(core::ManagedSystem& system, double confidence) {
  if (stream_.fire(spec_.fail_p)) {
    ++stats_.action_failures;
    if (failure_counter_ != nullptr) failure_counter_->inc();
    obs::record_instant(tracer_, obs::SpanKind::kInjectedFault, track_,
                        system.now(), 0,
                        static_cast<std::int64_t>(FaultCode::kActionFail));
    throw ActionFaultError(inner_->name() + ": injected outright failure");
  }
  const bool partial = stream_.fire(spec_.partial_p);
  inner_->execute(system, confidence);
  if (partial) {
    ++stats_.action_failures;
    if (failure_counter_ != nullptr) failure_counter_->inc();
    obs::record_instant(tracer_, obs::SpanKind::kInjectedFault, track_,
                        system.now(), 0,
                        static_cast<std::int64_t>(FaultCode::kActionPartial));
    throw ActionFaultError(inner_->name() + ": injected partial completion");
  }
}

}  // namespace pfm::inj
