#include "injection/injector.hpp"

#include <stdexcept>
#include <utility>

namespace pfm::inj {

std::unique_ptr<core::ManagedSystem> FaultInjector::wrap_node(
    std::size_t index, std::unique_ptr<core::ManagedSystem> inner) {
  auto wrapped = std::make_unique<FaultyManagedSystem>(std::move(inner),
                                                       index, plan_, obs_);
  systems_.push_back(wrapped.get());
  return wrapped;
}

std::vector<std::unique_ptr<core::ManagedSystem>> FaultInjector::wrap_fleet(
    std::vector<std::unique_ptr<core::ManagedSystem>> nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = wrap_node(i, std::move(nodes[i]));
  }
  return nodes;
}

std::shared_ptr<const pred::SymptomPredictor>
FaultInjector::wrap_symptom_predictor(
    std::size_t id, std::shared_ptr<const pred::SymptomPredictor> inner) {
  auto wrapped = std::make_shared<FaultySymptomPredictor>(std::move(inner),
                                                          id, plan_, obs_);
  symptom_.push_back(wrapped.get());
  return wrapped;
}

std::shared_ptr<const pred::EventPredictor>
FaultInjector::wrap_event_predictor(
    std::size_t id, std::shared_ptr<const pred::EventPredictor> inner) {
  auto wrapped = std::make_shared<FaultyEventPredictor>(std::move(inner), id,
                                                        plan_, obs_);
  event_.push_back(wrapped.get());
  return wrapped;
}

std::function<std::unique_ptr<act::Action>()>
FaultInjector::wrap_action_factory(
    std::size_t id, std::function<std::unique_ptr<act::Action>()> factory) {
  if (!factory) {
    throw std::invalid_argument("FaultInjector: null action factory");
  }
  // Instances are numbered in creation order — FleetController invokes
  // the factory once per node, in node order, on the caller thread.
  return [this, id, factory = std::move(factory)]() {
    auto wrapped = std::make_unique<FaultyAction>(
        factory(), id, action_instances_++, plan_, obs_);
    actions_.push_back(wrapped.get());
    return std::unique_ptr<act::Action>(std::move(wrapped));
  };
}

InjectionStats FaultInjector::stats() const {
  InjectionStats out;
  for (const auto* s : systems_) out += s->injection_stats();
  for (const auto* p : symptom_) out += p->injection_stats();
  for (const auto* p : event_) out += p->injection_stats();
  for (const auto* a : actions_) out += a->injection_stats();
  return out;
}

}  // namespace pfm::inj
