#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "injection/fault_plan.hpp"
#include "injection/faulty_action.hpp"
#include "injection/faulty_predictor.hpp"
#include "injection/faulty_system.hpp"
#include "obs/observability.hpp"

namespace pfm::inj {

/// Applies one FaultPlan to the components of a fleet by wrapping them in
/// the decorator types of this subsystem. The injector owns nothing: it
/// hands the wrappers to the caller (typically a runtime::FleetController)
/// and keeps non-owning pointers so stats() can aggregate what was
/// actually injected. Call stats() only while the wrapped components are
/// alive and no run is in flight.
///
/// Everything is deterministic: wrapper decision streams are pure
/// functions of (plan seed, component identity), and components consult
/// them in an order fixed by the round structure — so a fixed (seed,
/// plan) produces the same faults at any thread count, and an empty plan
/// produces none at all (wrappers forward bit-identically).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Attaches an observability hub: wrappers created *after* this call
  /// count every injected fault into pfm_injected_faults_total{kind=...}
  /// and record kInjectedFault spans for the sim-timed families (node
  /// crashes/hangs, action failures). Call before wrapping; the cause
  /// side of a fault scenario then lands in the same registry as the
  /// runtime's effect-side counters. Null detaches.
  void set_observability(obs::Observability* hub) noexcept { obs_ = hub; }

  /// Wraps node `index` of the fleet.
  std::unique_ptr<core::ManagedSystem> wrap_node(
      std::size_t index, std::unique_ptr<core::ManagedSystem> inner);

  /// Wraps every node of a fleet, preserving order (node i gets spec i).
  std::vector<std::unique_ptr<core::ManagedSystem>> wrap_fleet(
      std::vector<std::unique_ptr<core::ManagedSystem>> nodes);

  /// Wraps an already-trained symptom predictor under plan id `id`.
  std::shared_ptr<const pred::SymptomPredictor> wrap_symptom_predictor(
      std::size_t id, std::shared_ptr<const pred::SymptomPredictor> inner);

  /// Wraps an already-trained event predictor under plan id `id`.
  std::shared_ptr<const pred::EventPredictor> wrap_event_predictor(
      std::size_t id, std::shared_ptr<const pred::EventPredictor> inner);

  /// Wraps an action factory under plan id `id`: every action the factory
  /// produces (one per node, in FleetController::add_action) becomes a
  /// FaultyAction with its own decision stream, numbered in creation
  /// order.
  std::function<std::unique_ptr<act::Action>()> wrap_action_factory(
      std::size_t id, std::function<std::unique_ptr<act::Action>()> factory);

  /// Sum of the injected-fault counters over every wrapper created so
  /// far.
  InjectionStats stats() const;

 private:
  FaultPlan plan_;
  obs::Observability* obs_ = nullptr;
  // Non-owning observation points for stats(); the wrapped components
  // (and, for factories, the injector itself) must stay alive while the
  // returned wrappers are in use.
  std::vector<const FaultyManagedSystem*> systems_;
  std::vector<const FaultySymptomPredictor*> symptom_;
  std::vector<const FaultyEventPredictor*> event_;
  std::vector<const FaultyAction*> actions_;
  std::size_t action_instances_ = 0;
};

}  // namespace pfm::inj
