#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/sharding.hpp"

namespace pfm::inj {

/// Exception thrown by a FaultyManagedSystem once its scripted crash time
/// has passed: every subsequent interaction with the node fails with it,
/// the way a dead remote endpoint fails every RPC.
class NodeCrashError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exception thrown by FaultySymptomPredictor / FaultyEventPredictor when
/// a scoring call is scripted to fail.
class PredictorFaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exception thrown by FaultyAction when a countermeasure execution is
/// scripted to fail (outright or after partial completion).
class ActionFaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Scripted faults of one managed system. Times are in the node's own
/// simulated seconds; probabilities are per interaction and drawn from
/// the injector's deterministic decision stream.
struct NodeFaultSpec {
  /// Node crashes (throws NodeCrashError from every method) once its time
  /// reaches this instant. <0 disables.
  double crash_at = -1.0;
  /// Node hangs (step_to makes no progress) for `hang_steps` Monitor
  /// steps starting at the first step at or after this instant. <0
  /// disables.
  double hang_at = -1.0;
  std::size_t hang_steps = 0;
  /// Probability that a freshly monitored symptom sample is silently
  /// dropped from the trace (sensor outage).
  double drop_sample_p = 0.0;
  /// Probability that a freshly monitored symptom sample is corrupted:
  /// every value replaced by quiet NaN (sensor garbage).
  double corrupt_sample_p = 0.0;
};

/// Scripted faults of one predictor (identified by the id given at wrap
/// time). Probabilities are per scored item.
struct PredictorFaultSpec {
  double throw_p = 0.0;  ///< scoring throws PredictorFaultError
  double nan_p = 0.0;    ///< score comes back as quiet NaN
  double inf_p = 0.0;    ///< score comes back as +infinity
  /// Extra wall latency per score_batch call, seconds (stage slowdown;
  /// never affects results, only timing telemetry).
  double added_latency = 0.0;
};

/// Scripted faults of one action wrapper. Probabilities are per execution
/// attempt, so retries re-roll the dice — a retried action can succeed.
struct ActionFaultSpec {
  double fail_p = 0.0;     ///< throws before touching the system
  double partial_p = 0.0;  ///< executes, then throws (work done, ack lost)
};

/// A declarative, fully deterministic fault scenario: which nodes,
/// predictors and actions misbehave and how. Applied by FaultInjector via
/// decorator wrappers; an empty (default) plan injects nothing and leaves
/// every wrapped component bit-identical to the bare one.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Per-node specs keyed by node index; absent nodes are fault-free.
  std::unordered_map<std::size_t, NodeFaultSpec> nodes;
  /// Spec applied to every node in addition to its own entry-free default
  /// (a node with an explicit entry uses that entry instead).
  NodeFaultSpec default_node;

  /// Per-predictor specs keyed by the id passed to wrap_*_predictor.
  std::unordered_map<std::size_t, PredictorFaultSpec> predictors;
  PredictorFaultSpec default_predictor;

  /// Per-action specs keyed by the action wrapper's stream id (assigned
  /// in wrap order).
  std::unordered_map<std::size_t, ActionFaultSpec> actions;
  ActionFaultSpec default_action;

  const NodeFaultSpec& node_spec(std::size_t index) const {
    auto it = nodes.find(index);
    return it != nodes.end() ? it->second : default_node;
  }

  /// Writable spec slot for the node addressed as (shard, local) under
  /// `layout` — the sharded runtime's native addressing. The plan still
  /// stores specs by global index, so the same plan replays bit-exactly
  /// under any resharding: re-addressing through a different layout
  /// reaches the same global slot or a different node, never a shifted
  /// stream.
  NodeFaultSpec& node_at(const core::ShardLayout& layout, std::size_t shard,
                         std::size_t local) {
    return nodes[layout.global_index(shard, local)];
  }
  const NodeFaultSpec& node_spec(const core::ShardLayout& layout,
                                 std::size_t shard, std::size_t local) const {
    return node_spec(layout.global_index(shard, local));
  }
  const PredictorFaultSpec& predictor_spec(std::size_t id) const {
    auto it = predictors.find(id);
    return it != predictors.end() ? it->second : default_predictor;
  }
  const ActionFaultSpec& action_spec(std::size_t id) const {
    auto it = actions.find(id);
    return it != actions.end() ? it->second : default_action;
  }
};

/// One deterministic decision stream of the injector: a counted sequence
/// of uniform draws that is a pure function of (plan seed, stream kind,
/// stream id). Wrappers own one stream each and consult it in their own
/// deterministic call order, so injected runs are bit-identical for a
/// fixed (seed, plan) at any thread count — no shared RNG state exists.
class DecisionStream {
 public:
  DecisionStream() = default;
  DecisionStream(std::uint64_t seed, std::uint64_t kind, std::uint64_t id)
      : key_(mix(mix(seed ^ 0x9e3779b97f4a7c15ULL, kind), id)) {}

  /// Next uniform draw in [0, 1).
  double uniform() {
    return static_cast<double>(mix(key_, counter_++) >> 11) * 0x1.0p-53;
  }

  /// Next Bernoulli draw; p <= 0 never fires (and burns no draw), so a
  /// zero-probability plan leaves the stream untouched.
  bool fire(double p) { return p > 0.0 && uniform() < p; }

  /// Derives a sub-stream id from two components with the same splitmix64
  /// finalizer the stream key uses. Wrappers that roll *per item* rather
  /// than per call chain this over the item's identity — e.g.
  /// derive(derive(id, origin), ordinal) — so each item owns a stream
  /// that is a pure function of what it is, not of when or where it was
  /// scored; that is what keeps injected rolls bit-exact under
  /// resharding and concurrent scoring.
  static std::uint64_t derive(std::uint64_t a, std::uint64_t b) noexcept {
    return mix(a, b);
  }

 private:
  /// splitmix64 finalizer over a combined key (same construction as
  /// runtime::derive_node_seed).
  static std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t key_ = 0;
  std::uint64_t counter_ = 0;
};

/// Cause-side fault kinds, carried in the `arg` payload of kInjectedFault
/// trace spans and as the {kind="..."} label of the
/// pfm_injected_faults_total metrics family.
enum class FaultCode : int {
  kNodeCrash = 0,
  kNodeHang = 1,
  kSampleDrop = 2,
  kSampleCorrupt = 3,
  kPredictorThrow = 4,
  kPredictorNan = 5,
  kActionFail = 6,
  kActionPartial = 7,
};

/// Injection-side counters: how many faults each wrapper family actually
/// injected. The runtime's FleetTelemetry reports the *observed* side
/// (quarantines, trips, retries); these report the *cause* side.
struct InjectionStats {
  std::size_t node_crashes = 0;
  std::size_t node_hangs = 0;        ///< stalled Monitor steps served
  std::size_t samples_dropped = 0;
  std::size_t samples_corrupted = 0;
  std::size_t predictor_throws = 0;
  std::size_t predictor_nans = 0;    ///< NaN and inf scores
  std::size_t action_failures = 0;   ///< outright and partial

  std::size_t total() const noexcept {
    return node_crashes + node_hangs + samples_dropped + samples_corrupted +
           predictor_throws + predictor_nans + action_failures;
  }

  InjectionStats& operator+=(const InjectionStats& other) noexcept {
    node_crashes += other.node_crashes;
    node_hangs += other.node_hangs;
    samples_dropped += other.samples_dropped;
    samples_corrupted += other.samples_corrupted;
    predictor_throws += other.predictor_throws;
    predictor_nans += other.predictor_nans;
    action_failures += other.action_failures;
    return *this;
  }
};

}  // namespace pfm::inj
