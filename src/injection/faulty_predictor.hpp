#pragma once

#include <memory>

#include "injection/fault_plan.hpp"
#include "obs/observability.hpp"
#include "prediction/predictor.hpp"

namespace pfm::inj {

namespace detail {

/// Shared fault machinery of the two predictor decorators: per-item rolls
/// of (throw, NaN, inf) from one decision stream, plus optional wall
/// latency per batch call. Mutable because the predictor contracts are
/// const; unlike bare predictors, a faulty wrapper must therefore not be
/// scored concurrently with itself (the fleet runtime issues one
/// score_batch per predictor per round, which satisfies this).
class PredictorFaultState {
 public:
  /// `hub`, when given, counts injected predictor faults (throws, NaN
  /// and inf scores) into the registry. Predictor faults carry no sim
  /// timestamp, so they are counter-only — no spans.
  PredictorFaultState(const FaultPlan& plan, std::size_t id,
                      obs::Observability* hub = nullptr);

  /// Applies the per-item rolls to `out` (already filled by the inner
  /// predictor) and sleeps the injected latency. Throws
  /// PredictorFaultError when the throw roll fires for any item.
  void corrupt(std::span<double> out) const;

  const InjectionStats& stats() const noexcept { return stats_; }

 private:
  PredictorFaultSpec spec_;
  mutable DecisionStream stream_;
  mutable InjectionStats stats_;
  obs::Counter* throw_counter_ = nullptr;  // sharded: safe from workers
  obs::Counter* nan_counter_ = nullptr;
};

}  // namespace detail

/// Decorator applying a PredictorFaultSpec to a symptom predictor. With a
/// zero spec it forwards scoring untouched (bit-identical scores).
class FaultySymptomPredictor final : public pred::SymptomPredictor {
 public:
  FaultySymptomPredictor(std::shared_ptr<const pred::SymptomPredictor> inner,
                         std::size_t id, const FaultPlan& plan,
                         obs::Observability* hub = nullptr);

  std::string name() const override { return inner_->name() + "+faults"; }
  void train(const mon::MonitoringDataset& data) override;
  double score(const pred::SymptomContext& context) const override;
  void score_batch(std::span<const pred::SymptomContext> contexts,
                   std::span<double> out) const override;

  const InjectionStats& injection_stats() const noexcept {
    return state_.stats();
  }

 private:
  std::shared_ptr<const pred::SymptomPredictor> inner_;
  detail::PredictorFaultState state_;
};

/// Decorator applying a PredictorFaultSpec to an event predictor.
class FaultyEventPredictor final : public pred::EventPredictor {
 public:
  FaultyEventPredictor(std::shared_ptr<const pred::EventPredictor> inner,
                       std::size_t id, const FaultPlan& plan,
                       obs::Observability* hub = nullptr);

  std::string name() const override { return inner_->name() + "+faults"; }
  void train(
      std::span<const mon::ErrorSequence> failure_sequences,
      std::span<const mon::ErrorSequence> nonfailure_sequences) override;
  double score(const mon::ErrorSequence& sequence) const override;
  void score_batch(std::span<const mon::ErrorSequence> sequences,
                   std::span<double> out) const override;

  const InjectionStats& injection_stats() const noexcept {
    return state_.stats();
  }

 private:
  std::shared_ptr<const pred::EventPredictor> inner_;
  detail::PredictorFaultState state_;
};

}  // namespace pfm::inj
