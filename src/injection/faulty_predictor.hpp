#pragma once

#include <atomic>
#include <memory>

#include "injection/fault_plan.hpp"
#include "obs/observability.hpp"
#include "prediction/predictor.hpp"

namespace pfm::inj {

namespace detail {

/// Shared fault machinery of the two predictor decorators: per-item rolls
/// of (throw, NaN, inf), plus optional wall latency per batch call.
///
/// Each scored item rolls from its *own* decision stream, keyed by
/// (plan seed, predictor id, item origin, item ordinal) — the identity
/// the controller stamped into the context/sequence. The rolls are
/// therefore a pure function of what is scored, never of call order:
/// the sharded fleet runtime may score the same wrapper concurrently
/// from many shard controllers, re-batch items arbitrarily, or reshard
/// the fleet, and every item still draws the same faults. The only
/// mutable state left is the atomic fault counters.
class PredictorFaultState {
 public:
  /// `hub`, when given, counts injected predictor faults (throws, NaN
  /// and inf scores) into the registry. Predictor faults carry no sim
  /// timestamp, so they are counter-only — no spans.
  PredictorFaultState(const FaultPlan& plan, std::size_t id,
                      obs::Observability* hub = nullptr);

  /// Applies the (throw, NaN, inf) rolls of item (origin, ordinal) to
  /// `value` (already scored by the inner predictor). Throws
  /// PredictorFaultError when the throw roll fires.
  void corrupt_one(double& value, std::uint64_t origin,
                   std::uint64_t ordinal) const;

  /// Sleeps the injected per-call latency (wall time only; no results).
  void sleep_latency() const;

  /// Snapshot of the injected-fault counters (atomics materialized).
  InjectionStats stats() const noexcept {
    InjectionStats out;
    out.predictor_throws = throws_.load(std::memory_order_relaxed);
    out.predictor_nans = nans_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  PredictorFaultSpec spec_;
  std::uint64_t seed_ = 0;
  std::uint64_t id_ = 0;
  mutable std::atomic<std::size_t> throws_{0};
  mutable std::atomic<std::size_t> nans_{0};
  obs::Counter* throw_counter_ = nullptr;  // sharded: safe from workers
  obs::Counter* nan_counter_ = nullptr;
};

}  // namespace detail

/// Decorator applying a PredictorFaultSpec to a symptom predictor. With a
/// zero spec it forwards scoring untouched (bit-identical scores).
class FaultySymptomPredictor final : public pred::SymptomPredictor {
 public:
  FaultySymptomPredictor(std::shared_ptr<const pred::SymptomPredictor> inner,
                         std::size_t id, const FaultPlan& plan,
                         obs::Observability* hub = nullptr);

  std::string name() const override { return inner_->name() + "+faults"; }
  void train(const mon::MonitoringDataset& data) override;
  double score(const pred::SymptomContext& context) const override;
  void score_batch(std::span<const pred::SymptomContext> contexts,
                   std::span<double> out) const override;
  void score_batch(std::span<const pred::SymptomContext> contexts,
                   std::span<double> out,
                   pred::BatchScratch& scratch) const override;

  InjectionStats injection_stats() const noexcept { return state_.stats(); }

 private:
  std::shared_ptr<const pred::SymptomPredictor> inner_;
  detail::PredictorFaultState state_;
};

/// Decorator applying a PredictorFaultSpec to an event predictor.
class FaultyEventPredictor final : public pred::EventPredictor {
 public:
  FaultyEventPredictor(std::shared_ptr<const pred::EventPredictor> inner,
                       std::size_t id, const FaultPlan& plan,
                       obs::Observability* hub = nullptr);

  std::string name() const override { return inner_->name() + "+faults"; }
  void train(
      std::span<const mon::ErrorSequence> failure_sequences,
      std::span<const mon::ErrorSequence> nonfailure_sequences) override;
  double score(const mon::ErrorSequence& sequence) const override;
  void score_batch(std::span<const mon::ErrorSequence> sequences,
                   std::span<double> out) const override;
  void score_batch(std::span<const mon::ErrorSequence> sequences,
                   std::span<double> out,
                   pred::BatchScratch& scratch) const override;

  InjectionStats injection_stats() const noexcept { return state_.stats(); }

 private:
  std::shared_ptr<const pred::EventPredictor> inner_;
  detail::PredictorFaultState state_;
};

}  // namespace pfm::inj
