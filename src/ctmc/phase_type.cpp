#include "ctmc/phase_type.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "numerics/linalg.hpp"
#include "numerics/matexp.hpp"

namespace pfm::ctmc {

PhaseType::PhaseType(num::Matrix t, std::vector<double> alpha)
    : t_(std::move(t)), alpha_(std::move(alpha)) {
  if (!t_.square()) throw std::invalid_argument("PhaseType: T must be square");
  const std::size_t n = t_.rows();
  if (alpha_.size() != n) {
    throw std::invalid_argument("PhaseType: alpha size mismatch");
  }
  double alpha_sum = 0.0;
  for (double a : alpha_) {
    if (a < 0.0) throw std::invalid_argument("PhaseType: negative alpha");
    alpha_sum += a;
  }
  if (std::abs(alpha_sum - 1.0) > 1e-9) {
    throw std::invalid_argument("PhaseType: alpha must sum to 1");
  }
  exit_.assign(n, 0.0);
  bool any_exit = false;
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && t_(i, j) < 0.0) {
        throw std::invalid_argument("PhaseType: negative off-diagonal");
      }
      row_sum += t_(i, j);
    }
    if (row_sum > 1e-9 * (std::abs(t_(i, i)) + 1.0)) {
      throw std::invalid_argument("PhaseType: row sums must be <= 0");
    }
    exit_[i] = -row_sum;
    if (exit_[i] < 0.0) exit_[i] = 0.0;  // round-off
    if (exit_[i] > 0.0) any_exit = true;
  }
  if (!any_exit) {
    throw std::invalid_argument("PhaseType: absorbing state unreachable");
  }
}

std::vector<double> PhaseType::transient(double t) const {
  return num::uniformized_transient(t_, alpha_, t);
}

double PhaseType::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  const auto p = transient(t);
  double survive = 0.0;
  for (double v : p) survive += v;
  return 1.0 - survive;
}

double PhaseType::pdf(double t) const {
  if (t < 0.0) return 0.0;
  const auto p = transient(t);
  double f = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) f += p[i] * exit_[i];
  return f;
}

double PhaseType::reliability(double t) const { return 1.0 - cdf(t); }

double PhaseType::hazard(double t) const {
  const auto p = transient(std::max(t, 0.0));
  double survive = 0.0, f = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    survive += p[i];
    f += p[i] * exit_[i];
  }
  if (survive <= 0.0) return std::numeric_limits<double>::infinity();
  return f / survive;
}

double PhaseType::mean() const {
  // -alpha T^{-1} 1  ==  solve T^T y = -alpha, then sum(y)... simpler:
  // m = alpha * x where T x = -1.
  std::vector<double> minus_one(t_.rows(), -1.0);
  const auto x = num::solve(t_, minus_one);
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m += alpha_[i] * x[i];
  return m;
}

std::vector<double> PhaseType::reliability_curve(double dt,
                                                 std::size_t n) const {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = reliability(dt * static_cast<double>(i));
  }
  return out;
}

std::vector<double> PhaseType::hazard_curve(double dt, std::size_t n) const {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = hazard(dt * static_cast<double>(i));
  }
  return out;
}

}  // namespace pfm::ctmc
