#pragma once

#include <span>
#include <vector>

#include "numerics/matrix.hpp"

namespace pfm::ctmc {

/// Continuous phase-type distribution PH(alpha, T).
///
/// T is the sub-generator restricted to the transient states of an absorbing
/// CTMC, alpha the initial distribution over those states. This represents
/// the first-passage time into the absorbing (failure) state and provides
/// the paper's Eqs. 9-12:
///   F(t) = 1 - alpha exp(tT) 1        (Eq. 11)
///   f(t) = alpha exp(tT) t0           (Eq. 12), t0 = -T 1
///   R(t) = 1 - F(t)                   (Eq. 9)
///   h(t) = f(t) / (1 - F(t))          (Eq. 10)
class PhaseType {
 public:
  /// Validates shapes and that T is a proper sub-generator (nonnegative
  /// off-diagonals, row sums <= 0, at least one strictly negative so the
  /// absorbing state is reachable). Throws std::invalid_argument otherwise.
  PhaseType(num::Matrix t, std::vector<double> alpha);

  std::size_t num_phases() const noexcept { return t_.rows(); }

  /// Cumulative first-passage distribution F(t).
  double cdf(double t) const;

  /// Density f(t).
  double pdf(double t) const;

  /// Reliability R(t) = 1 - F(t).
  double reliability(double t) const;

  /// Hazard rate h(t) = f(t) / R(t); returns +inf when R(t) underflows.
  double hazard(double t) const;

  /// Mean time to absorption: -alpha T^{-1} 1 (MTTF of the modeled system).
  double mean() const;

  /// Convenience: evaluates reliability on an evenly spaced grid
  /// t = 0, dt, ..., (n-1) dt.
  std::vector<double> reliability_curve(double dt, std::size_t n) const;

  /// Convenience: evaluates the hazard rate on the same grid.
  std::vector<double> hazard_curve(double dt, std::size_t n) const;

 private:
  /// alpha * exp(tT) via uniformization on the sub-generator.
  std::vector<double> transient(double t) const;

  num::Matrix t_;
  std::vector<double> alpha_;
  std::vector<double> exit_;  // t0 = -T 1
};

}  // namespace pfm::ctmc
