#pragma once

#include <span>
#include <string>
#include <vector>

#include "numerics/matrix.hpp"
#include "numerics/rng.hpp"

namespace pfm::ctmc {

/// A finite continuous-time Markov chain described by its generator matrix.
///
/// The generator Q has nonnegative off-diagonal entries (transition rates)
/// and rows summing to zero. The class validates this at construction and
/// offers steady-state and transient analysis plus trajectory simulation.
class Ctmc {
 public:
  /// Validates and stores the generator. `state_names` is optional
  /// (defaults to "S0".."Sn"). Throws std::invalid_argument when Q is not
  /// square, has negative off-diagonal entries, or rows do not sum to ~0.
  explicit Ctmc(num::Matrix generator,
                std::vector<std::string> state_names = {});

  std::size_t num_states() const noexcept { return q_.rows(); }
  const num::Matrix& generator() const noexcept { return q_; }
  const std::string& state_name(std::size_t i) const { return names_.at(i); }

  /// Stationary distribution pi with pi Q = 0, sum(pi) = 1.
  std::vector<double> steady_state() const;

  /// Transient distribution p(t) = p0 * exp(tQ) by uniformization.
  std::vector<double> transient(std::span<const double> p0, double t) const;

  /// Expected fraction of time spent in each state over [0, horizon],
  /// estimated by averaging the transient distribution on a grid.
  std::vector<double> time_average(std::span<const double> p0, double horizon,
                                   std::size_t steps = 200) const;

  /// One simulated jump trajectory up to `horizon`, as (time, state) pairs
  /// beginning with (0, start). Useful for validating analytic results.
  struct Jump {
    double time;
    std::size_t state;
  };
  std::vector<Jump> simulate(std::size_t start, double horizon,
                             num::Rng& rng) const;

  /// Fraction of time spent in each state along a simulated trajectory.
  std::vector<double> simulate_occupancy(std::size_t start, double horizon,
                                         num::Rng& rng) const;

 private:
  num::Matrix q_;
  std::vector<std::string> names_;
};

}  // namespace pfm::ctmc
