#include "ctmc/pfm_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pfm::ctmc {

namespace {

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

}  // namespace

double PredictionQuality::f_measure() const noexcept {
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

void PredictionQuality::validate() const {
  require(precision > 0.0 && precision <= 1.0,
          "PredictionQuality: precision must be in (0,1]");
  require(recall >= 0.0 && recall <= 1.0,
          "PredictionQuality: recall must be in [0,1]");
  require(false_positive_rate >= 0.0 && false_positive_rate < 1.0,
          "PredictionQuality: fpr must be in [0,1)");
}

PredictionQuality clamped_quality(double precision, double recall,
                                  double false_positive_rate, double eps) {
  require(eps > 0.0 && eps < 0.5, "clamped_quality: eps must be in (0,0.5)");
  PredictionQuality q;  // the degenerate perfect-predictor point
  if (std::isfinite(precision) && std::isfinite(recall) &&
      std::isfinite(false_positive_rate)) {
    q.precision = std::min(std::max(precision, eps), 1.0);
    q.recall = std::min(std::max(recall, 0.0), 1.0);
    q.false_positive_rate =
        std::min(std::max(false_positive_rate, 0.0), 1.0 - eps);
    // precision < 1 implies false positives exist; fpr == 0 would make
    // PfmRates::derive reject the pair as contradictory.
    if (q.false_positive_rate <= 0.0 && q.precision < 1.0) {
      q.false_positive_rate = eps;
    }
  }
  return q;
}

void PfmModelParams::validate() const {
  quality.validate();
  require(mttf > 0.0, "PfmModelParams: mttf must be positive");
  require(mttr > 0.0, "PfmModelParams: mttr must be positive");
  require(action_time > 0.0, "PfmModelParams: action_time must be positive");
  require(repair_improvement > 0.0,
          "PfmModelParams: repair_improvement must be positive");
  for (double p : {p_tp, p_fp, p_tn}) {
    require(p >= 0.0 && p <= 1.0,
            "PfmModelParams: conditional failure probabilities in [0,1]");
  }
}

PfmModelParams PfmModelParams::table2_example() {
  PfmModelParams p;
  p.quality = PredictionQuality{0.70, 0.62, 0.016};
  p.p_tp = 0.25;
  p.p_fp = 0.1;
  p.p_tn = 0.001;
  p.repair_improvement = 2.0;
  return p;
}

PfmRates PfmRates::derive(const PfmModelParams& params) {
  params.validate();
  const double lambda = 1.0 / params.mttf;
  PfmRates r;
  r.r_tp = params.quality.recall * lambda;
  r.r_fn = (1.0 - params.quality.recall) * lambda;
  r.r_fp = r.r_tp * (1.0 - params.quality.precision) / params.quality.precision;
  const double fpr = params.quality.false_positive_rate;
  // fpr = r_FP / (r_FP + r_TN). fpr == 0 with r_FP > 0 is contradictory.
  if (fpr <= 0.0) {
    if (r.r_fp > 0.0) {
      throw std::invalid_argument(
          "PfmRates: fpr == 0 is inconsistent with precision < 1");
    }
    r.r_tn = lambda;  // arbitrary positive negative-prediction rate
  } else {
    r.r_tn = r.r_fp * (1.0 - fpr) / fpr;
  }
  r.r_a = 1.0 / params.action_time;
  r.r_f = 1.0 / params.mttr;
  r.r_r = params.repair_improvement * r.r_f;
  return r;
}

PfmAvailabilityModel::PfmAvailabilityModel(PfmModelParams params)
    : params_(std::move(params)), rates_(PfmRates::derive(params_)) {}

Ctmc PfmAvailabilityModel::chain() const {
  const auto& r = rates_;
  const auto& p = params_;
  num::Matrix q(7, 7);

  auto set = [&q](PfmState from, PfmState to, double rate) {
    q(static_cast<std::size_t>(from), static_cast<std::size_t>(to)) = rate;
  };

  // Predictions out of the up state.
  set(PfmState::kUp, PfmState::kTruePositive, r.r_tp);
  set(PfmState::kUp, PfmState::kFalsePositive, r.r_fp);
  set(PfmState::kUp, PfmState::kTrueNegative, r.r_tn);
  set(PfmState::kUp, PfmState::kFalseNegative, r.r_fn);

  // True positive: downtime avoidance succeeds with (1 - P_TP); otherwise
  // the failure happens but repair was prepared.
  set(PfmState::kTruePositive, PfmState::kUp, r.r_a * (1.0 - p.p_tp));
  set(PfmState::kTruePositive, PfmState::kPreparedDown, r.r_a * p.p_tp);

  // False positive: unnecessary actions; small induced-failure risk P_FP,
  // but preparation happened, so an induced failure is a prepared one.
  set(PfmState::kFalsePositive, PfmState::kUp, r.r_a * (1.0 - p.p_fp));
  set(PfmState::kFalsePositive, PfmState::kPreparedDown, r.r_a * p.p_fp);

  // True negative: no action; prediction overhead may still induce a
  // failure with P_TN, unprepared.
  set(PfmState::kTrueNegative, PfmState::kUp, r.r_a * (1.0 - p.p_tn));
  set(PfmState::kTrueNegative, PfmState::kUnpreparedDown, r.r_a * p.p_tn);

  // False negative: the looming failure always strikes, unprepared.
  set(PfmState::kFalseNegative, PfmState::kUnpreparedDown, r.r_a);

  // Repairs.
  set(PfmState::kPreparedDown, PfmState::kUp, r.r_r);
  set(PfmState::kUnpreparedDown, PfmState::kUp, r.r_f);

  // Diagonal.
  for (std::size_t i = 0; i < 7; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      if (j != i) row += q(i, j);
    }
    q(i, i) = -row;
  }
  return Ctmc(std::move(q),
              {"S0", "S_TP", "S_FP", "S_TN", "S_FN", "S_R", "S_F"});
}

double PfmAvailabilityModel::availability_closed_form() const {
  // Eq. 8:
  //        (r_A + r_p) k r_F
  // A = ------------------------------------------------------------------
  //     k r_F (r_A + r_p) + r_A (P_FP r_FP + P_TP r_TP + k P_TN r_TN + k r_FN)
  const auto& r = rates_;
  const auto& p = params_;
  const double k = p.repair_improvement;
  const double rp = r.prediction_rate();
  const double numerator = (r.r_a + rp) * k * r.r_f;
  const double denominator =
      k * r.r_f * (r.r_a + rp) +
      r.r_a * (p.p_fp * r.r_fp + p.p_tp * r.r_tp + k * p.p_tn * r.r_tn +
               k * r.r_fn);
  return numerator / denominator;
}

double PfmAvailabilityModel::availability_numeric() const {
  const auto pi = chain().steady_state();
  // Eq. 7: A = sum_{i=0..4} pi_i.
  double a = 0.0;
  for (std::size_t i = 0; i <= 4; ++i) a += pi[i];
  return a;
}

double PfmAvailabilityModel::availability_without_pfm() const {
  // Two-state chain: A = MTTF / (MTTF + MTTR).
  return params_.mttf / (params_.mttf + params_.mttr);
}

double PfmAvailabilityModel::unavailability_ratio() const {
  const double u_pfm = 1.0 - availability_closed_form();
  const double u_base = 1.0 - availability_without_pfm();
  return u_pfm / u_base;
}

PhaseType PfmAvailabilityModel::reliability_model() const {
  // Sect. 5.4: merge S_R and S_F into one absorbing down state, drop
  // repairs; the transient sub-generator covers states 0..4.
  const auto full = chain().generator();
  num::Matrix t(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) t(i, j) = full(i, j);
  }
  // alpha = [1 0 0 0 0] (Eq. 13).
  return PhaseType(std::move(t), {1.0, 0.0, 0.0, 0.0, 0.0});
}

double PfmAvailabilityModel::baseline_reliability(double t) const {
  return std::exp(-t / params_.mttf);
}

double PfmAvailabilityModel::baseline_hazard() const noexcept {
  return 1.0 / params_.mttf;
}

}  // namespace pfm::ctmc
