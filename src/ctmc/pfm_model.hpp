#pragma once

#include <string>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/phase_type.hpp"

namespace pfm::ctmc {

/// Accuracy of an online failure predictor, as defined in Sect. 3.3 of the
/// paper: precision, recall (true positive rate) and false positive rate.
struct PredictionQuality {
  double precision = 1.0;
  double recall = 1.0;
  double false_positive_rate = 0.0;

  /// F-measure: harmonic mean of precision and recall.
  double f_measure() const noexcept;

  /// Throws std::invalid_argument when any metric leaves its valid range
  /// (precision in (0,1], recall in [0,1], fpr in [0,1)).
  void validate() const;
};

/// Clamps raw measured quality (e.g. a windowed online contingency
/// table, which can legitimately report precision 0 or fpr at one of
/// the boundaries the rate derivation excludes) into the open domain
/// PfmRates::derive accepts: precision into [eps, 1], recall into
/// [0, 1], fpr into [0, 1 - eps], and fpr lifted to eps whenever
/// precision < 1 demands a positive false-positive rate. Non-finite
/// inputs fall back to the degenerate perfect-predictor point
/// (1, 1, 0). The result always satisfies PredictionQuality::validate.
PredictionQuality clamped_quality(double precision, double recall,
                                  double false_positive_rate,
                                  double eps = 1e-6);

/// All parameters of the Fig. 9 availability model.
///
/// The timing constants (MTTF, MTTR, action time) are not published in the
/// paper; the defaults here are the documented assumptions from DESIGN.md
/// chosen so that the no-PFM hazard matches the flat 8e-5 1/s line of
/// Fig. 10(b).
struct PfmModelParams {
  PredictionQuality quality;

  /// Mean time between failure-prone situations (no-PFM MTTF), seconds.
  double mttf = 12500.0;
  /// Mean time to repair after an *unanticipated* failure, seconds.
  double mttr = 600.0;
  /// Mean time from the start of a prediction to the action outcome
  /// (1 / r_A), seconds. Not published in the paper; calibrated so that the
  /// Table 2 parameters reproduce the published Eq. 14 ratio of 0.488
  /// (the ratio spans ~0.46..0.50 for action times between 60 s and 0 s).
  double action_time = 16.14;
  /// Repair time improvement factor k = MTTR / MTTR_prepared (Eq. 6).
  double repair_improvement = 2.0;

  /// P(failure | true positive prediction)  -- Eq. 3.
  double p_tp = 0.25;
  /// P(failure | false positive prediction) -- Eq. 4.
  double p_fp = 0.1;
  /// P(failure | true negative prediction)  -- Eq. 5.
  double p_tn = 0.001;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;

  /// The Table 2 example: precision 0.70, recall 0.62, fpr 0.016,
  /// P_TP 0.25, P_FP 0.1, P_TN 0.001, k 2 (HSMM case-study accuracy).
  static PfmModelParams table2_example();
};

/// Transition rates of the Fig. 9 CTMC, derived from prediction quality.
///
/// Derivation (substitutes [64, Chap. 10]; validated against Eq. 8 and the
/// Eq. 14 ratio): with lambda = 1/MTTF the rate of failure-prone situations,
///   r_TP = recall * lambda            r_FN = (1 - recall) * lambda
///   r_FP = r_TP (1 - precision) / precision
///   r_TN = r_FP (1 - fpr) / fpr
///   r_A  = 1 / action_time,  r_F = 1 / MTTR,  r_R = k * r_F.
struct PfmRates {
  double r_tp = 0.0;
  double r_fp = 0.0;
  double r_tn = 0.0;
  double r_fn = 0.0;
  double r_a = 0.0;
  double r_r = 0.0;
  double r_f = 0.0;

  /// Sum of the four prediction rates (r_p in Eq. 8).
  double prediction_rate() const noexcept {
    return r_tp + r_fp + r_tn + r_fn;
  }

  static PfmRates derive(const PfmModelParams& params);
};

/// State indices of the Fig. 9 model.
enum class PfmState : std::size_t {
  kUp = 0,             ///< S0: fault-free operation
  kTruePositive = 1,   ///< S_TP: failure imminent, warning raised
  kFalsePositive = 2,  ///< S_FP: warning raised, no failure imminent
  kTrueNegative = 3,   ///< S_TN: no warning, no failure imminent
  kFalseNegative = 4,  ///< S_FN: failure imminent, no warning
  kPreparedDown = 5,   ///< S_R: forced / prepared downtime
  kUnpreparedDown = 6  ///< S_F: unplanned downtime
};

/// The 7-state CTMC availability/reliability model of Sect. 5 (Fig. 9).
class PfmAvailabilityModel {
 public:
  /// Validates the parameters and derives the rates.
  explicit PfmAvailabilityModel(PfmModelParams params);

  const PfmModelParams& params() const noexcept { return params_; }
  const PfmRates& rates() const noexcept { return rates_; }

  /// The full 7-state CTMC (Fig. 9), including repair transitions.
  Ctmc chain() const;

  /// Steady-state availability from the closed form of Eq. 8.
  double availability_closed_form() const;

  /// Steady-state availability from the numeric stationary distribution
  /// (sum of the five up-state probabilities, Eq. 7). Agrees with the
  /// closed form to machine precision; kept as an independent check.
  double availability_numeric() const;

  /// Steady-state availability of the same system *without* PFM: the
  /// two-state up/down chain with rates lambda = 1/MTTF and r_F = 1/MTTR.
  double availability_without_pfm() const;

  /// The Eq. 14 figure of merit: (1 - A_PFM) / (1 - A_noPFM); 0.488 for
  /// the Table 2 parameters.
  double unavailability_ratio() const;

  /// Phase-type first-passage model for reliability/hazard (Sect. 5.4):
  /// the five up states become transient, both down states merge into one
  /// absorbing failure state, repairs are removed.
  PhaseType reliability_model() const;

  /// Reliability of the no-PFM baseline: R(t) = exp(-t / MTTF).
  double baseline_reliability(double t) const;

  /// Constant hazard of the no-PFM baseline: 1 / MTTF.
  double baseline_hazard() const noexcept;

 private:
  PfmModelParams params_;
  PfmRates rates_;
};

}  // namespace pfm::ctmc
