#include "ctmc/ctmc.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/linalg.hpp"
#include "numerics/matexp.hpp"

namespace pfm::ctmc {

Ctmc::Ctmc(num::Matrix generator, std::vector<std::string> state_names)
    : q_(std::move(generator)), names_(std::move(state_names)) {
  if (!q_.square()) throw std::invalid_argument("Ctmc: Q must be square");
  const std::size_t n = q_.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && q_(i, j) < 0.0) {
        throw std::invalid_argument("Ctmc: negative off-diagonal rate");
      }
      row_sum += q_(i, j);
    }
    const double scale = std::abs(q_(i, i)) + 1.0;
    if (std::abs(row_sum) > 1e-9 * scale) {
      throw std::invalid_argument("Ctmc: generator rows must sum to zero");
    }
  }
  if (names_.empty()) {
    names_.reserve(n);
    // Built with += rather than operator+(const char*, string&&), which
    // trips GCC 12's -Wrestrict false positive (PR 105651) under -O2.
    for (std::size_t i = 0; i < n; ++i) {
      std::string label("S");
      label += std::to_string(i);
      names_.push_back(std::move(label));
    }
  } else if (names_.size() != n) {
    throw std::invalid_argument("Ctmc: state name count mismatch");
  }
}

std::vector<double> Ctmc::steady_state() const {
  return num::stationary_distribution(q_);
}

std::vector<double> Ctmc::transient(std::span<const double> p0, double t) const {
  return num::uniformized_transient(q_, p0, t);
}

std::vector<double> Ctmc::time_average(std::span<const double> p0,
                                       double horizon,
                                       std::size_t steps) const {
  if (steps == 0) throw std::invalid_argument("time_average: steps == 0");
  std::vector<double> acc(num_states(), 0.0);
  const double dt = horizon / static_cast<double>(steps);
  // Midpoint rule over the grid.
  for (std::size_t s = 0; s < steps; ++s) {
    const double t = (static_cast<double>(s) + 0.5) * dt;
    const auto p = transient(p0, t);
    for (std::size_t i = 0; i < p.size(); ++i) acc[i] += p[i];
  }
  for (double& a : acc) a /= static_cast<double>(steps);
  return acc;
}

std::vector<Ctmc::Jump> Ctmc::simulate(std::size_t start, double horizon,
                                       num::Rng& rng) const {
  if (start >= num_states()) throw std::invalid_argument("simulate: state");
  std::vector<Jump> path{{0.0, start}};
  double t = 0.0;
  std::size_t s = start;
  std::vector<double> weights(num_states());
  while (t < horizon) {
    const double exit_rate = -q_(s, s);
    if (exit_rate <= 0.0) break;  // absorbing
    t += rng.exponential(exit_rate);
    if (t >= horizon) break;
    for (std::size_t j = 0; j < num_states(); ++j) {
      weights[j] = j == s ? 0.0 : q_(s, j);
    }
    s = rng.categorical(weights);
    path.push_back({t, s});
  }
  return path;
}

std::vector<double> Ctmc::simulate_occupancy(std::size_t start, double horizon,
                                             num::Rng& rng) const {
  const auto path = simulate(start, horizon, rng);
  std::vector<double> occ(num_states(), 0.0);
  for (std::size_t i = 0; i < path.size(); ++i) {
    const double end = i + 1 < path.size() ? path[i + 1].time : horizon;
    occ[path[i].state] += end - path[i].time;
  }
  for (double& o : occ) o /= horizon;
  return occ;
}

}  // namespace pfm::ctmc
