#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pfm::eval {

/// 2x2 contingency table of prediction outcomes (Sect. 3.3 / Table 1).
struct ContingencyTable {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  std::size_t total() const noexcept {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }

  /// Fraction of correct failure warnings among all warnings; 1 when no
  /// warning was raised (vacuously correct).
  double precision() const noexcept;

  /// Fraction of failures that were predicted (true positive rate);
  /// 1 when there was no failure.
  double recall() const noexcept;

  /// Fraction of false alarms among all non-failures; 0 when there was no
  /// non-failure.
  double false_positive_rate() const noexcept;

  /// Harmonic mean of precision and recall.
  double f_measure() const noexcept;

  /// Overall fraction of correct classifications.
  double accuracy() const noexcept;
};

/// Builds a contingency table from real-valued scores, a decision
/// threshold (warning when score >= threshold) and ground-truth labels.
/// Throws std::invalid_argument on length mismatch.
ContingencyTable score_contingency(std::span<const double> scores,
                                   std::span<const int> labels,
                                   double threshold);

/// One point of a Receiver Operating Characteristic.
struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;   ///< recall
  double false_positive_rate = 0.0;
  double precision = 0.0;
};

/// ROC curve over all distinct score thresholds, ordered by increasing
/// false positive rate (threshold decreasing). Includes the trivial
/// (0,0) and (1,1) endpoints. Throws std::invalid_argument on mismatch,
/// empty input, or single-class labels.
std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const int> labels);

/// Area under the ROC curve by trapezoidal integration.
double auc(std::span<const RocPoint> roc);

/// One point of a precision-recall curve.
struct PrPoint {
  double threshold = 0.0;
  double recall = 0.0;
  double precision = 0.0;
};

/// Precision-recall curve over all distinct thresholds, ordered by
/// increasing recall (threshold decreasing). Same input contract as
/// roc_curve. The paper's Sect. 3.3 notes the precision/recall trade-off
/// controlled by the warning threshold; this curve is that trade-off.
std::vector<PrPoint> pr_curve(std::span<const double> scores,
                              std::span<const int> labels);

/// Average precision: area under the precision-recall curve using the
/// step-wise (right-continuous) interpolation standard for AP.
double average_precision(std::span<const double> scores,
                         std::span<const int> labels);

/// Convenience: AUC straight from scores and labels.
double auc(std::span<const double> scores, std::span<const int> labels);

/// Threshold maximizing the F-measure, with the achieved table.
struct ThresholdChoice {
  double threshold = 0.0;
  ContingencyTable table;
};
ThresholdChoice max_f_measure_threshold(std::span<const double> scores,
                                        std::span<const int> labels);

/// Renders a metrics summary line ("precision=.. recall=.. fpr=.. F=..").
std::string summary(const ContingencyTable& table);

}  // namespace pfm::eval
