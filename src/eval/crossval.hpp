#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "monitoring/dataset.hpp"

namespace pfm::eval {

/// One temporal train/test split.
struct TemporalFold {
  double train_begin = 0.0;
  double train_end = 0.0;  ///< == test_begin
  double test_end = 0.0;
};

/// Forward-chaining (rolling-origin) cross-validation boundaries for time
/// series: fold i trains on everything up to a growing cutoff and tests on
/// the following block. Ordinary shuffled k-fold would leak the future
/// into training, which is why predictor evaluation on monitoring traces
/// must use this scheme.
///
/// Throws std::invalid_argument when `folds` == 0 or the trace is too
/// short to split.
inline std::vector<TemporalFold> forward_chaining_folds(
    const mon::MonitoringDataset& data, std::size_t folds) {
  if (folds == 0) {
    throw std::invalid_argument("forward_chaining_folds: folds == 0");
  }
  const double begin = data.start_time();
  const double end = data.end_time();
  if (end <= begin) {
    throw std::invalid_argument("forward_chaining_folds: empty trace");
  }
  // The trace is cut into folds + 1 equal blocks; fold i trains on blocks
  // [0, i] and tests on block i + 1.
  const double block = (end - begin) / static_cast<double>(folds + 1);
  std::vector<TemporalFold> out;
  out.reserve(folds);
  for (std::size_t i = 0; i < folds; ++i) {
    TemporalFold f;
    f.train_begin = begin;
    f.train_end = begin + block * static_cast<double>(i + 1);
    f.test_end = begin + block * static_cast<double>(i + 2);
    out.push_back(f);
  }
  out.back().test_end = end;  // absorb rounding into the last fold
  return out;
}

/// Materializes one fold into (train, test) datasets.
inline std::pair<mon::MonitoringDataset, mon::MonitoringDataset>
materialize_fold(const mon::MonitoringDataset& data, const TemporalFold& f) {
  auto [train, rest] = data.split_at(f.train_end);
  auto [test, tail] = rest.split_at(f.test_end);
  (void)tail;
  return {std::move(train), std::move(test)};
}

}  // namespace pfm::eval
