#include "eval/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace pfm::eval {

double ContingencyTable::precision() const noexcept {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 1.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ContingencyTable::recall() const noexcept {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 1.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ContingencyTable::false_positive_rate() const noexcept {
  const auto denom = false_positives + true_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(false_positives) /
                          static_cast<double>(denom);
}

double ContingencyTable::f_measure() const noexcept {
  const double p = precision();
  const double r = recall();
  return p + r <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ContingencyTable::accuracy() const noexcept {
  const auto n = total();
  return n == 0 ? 0.0
                : static_cast<double>(true_positives + true_negatives) /
                      static_cast<double>(n);
}

ContingencyTable score_contingency(std::span<const double> scores,
                                   std::span<const int> labels,
                                   double threshold) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("score_contingency: length mismatch");
  }
  ContingencyTable t;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool warn = scores[i] >= threshold;
    const bool fail = labels[i] != 0;
    if (warn && fail) {
      ++t.true_positives;
    } else if (warn && !fail) {
      ++t.false_positives;
    } else if (!warn && fail) {
      ++t.false_negatives;
    } else {
      ++t.true_negatives;
    }
  }
  return t;
}

std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const int> labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("roc_curve: length mismatch");
  }
  if (scores.empty()) throw std::invalid_argument("roc_curve: empty input");
  std::size_t positives = 0;
  for (int y : labels) positives += y != 0 ? 1 : 0;
  const std::size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) {
    throw std::invalid_argument("roc_curve: labels are single-class");
  }

  // Sort indices by score descending; sweep thresholds between groups of
  // equal scores.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<RocPoint> roc;
  roc.push_back({scores[order.front()] + 1.0, 0.0, 0.0, 1.0});
  std::size_t tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double s = scores[order[i]];
    // Consume the whole tie group at this score.
    while (i < order.size() && scores[order[i]] == s) {
      if (labels[order[i]] != 0) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    RocPoint p;
    p.threshold = s;
    p.true_positive_rate = static_cast<double>(tp) / static_cast<double>(positives);
    p.false_positive_rate =
        static_cast<double>(fp) / static_cast<double>(negatives);
    p.precision = tp + fp == 0
                      ? 1.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
    roc.push_back(p);
  }
  return roc;
}

double auc(std::span<const RocPoint> roc) {
  double area = 0.0;
  for (std::size_t i = 1; i < roc.size(); ++i) {
    const double dx =
        roc[i].false_positive_rate - roc[i - 1].false_positive_rate;
    area += dx * 0.5 *
            (roc[i].true_positive_rate + roc[i - 1].true_positive_rate);
  }
  return area;
}

double auc(std::span<const double> scores, std::span<const int> labels) {
  const auto roc = roc_curve(scores, labels);
  return auc(roc);
}

std::vector<PrPoint> pr_curve(std::span<const double> scores,
                              std::span<const int> labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("pr_curve: length mismatch");
  }
  if (scores.empty()) throw std::invalid_argument("pr_curve: empty input");
  std::size_t positives = 0;
  for (int y : labels) positives += y != 0 ? 1 : 0;
  if (positives == 0 || positives == labels.size()) {
    throw std::invalid_argument("pr_curve: labels are single-class");
  }

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<PrPoint> out;
  std::size_t tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double s = scores[order[i]];
    while (i < order.size() && scores[order[i]] == s) {
      if (labels[order[i]] != 0) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    PrPoint p;
    p.threshold = s;
    p.recall = static_cast<double>(tp) / static_cast<double>(positives);
    p.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    out.push_back(p);
  }
  return out;
}

double average_precision(std::span<const double> scores,
                         std::span<const int> labels) {
  const auto curve = pr_curve(scores, labels);
  double ap = 0.0;
  double prev_recall = 0.0;
  for (const auto& p : curve) {
    ap += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
  }
  return ap;
}

ThresholdChoice max_f_measure_threshold(std::span<const double> scores,
                                        std::span<const int> labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    throw std::invalid_argument("max_f_measure_threshold: bad input");
  }
  // Candidate thresholds: the distinct scores (warning iff score >= thr).
  std::vector<double> candidates(scores.begin(), scores.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  ThresholdChoice best;
  double best_f = -1.0;
  for (double thr : candidates) {
    const auto table = score_contingency(scores, labels, thr);
    const double f = table.f_measure();
    if (f > best_f) {
      best_f = f;
      best = {thr, table};
    }
  }
  return best;
}

std::string summary(const ContingencyTable& t) {
  std::ostringstream os;
  os.precision(4);
  os << "precision=" << t.precision() << " recall=" << t.recall()
     << " fpr=" << t.false_positive_rate() << " F=" << t.f_measure()
     << " (tp=" << t.true_positives << " fp=" << t.false_positives
     << " tn=" << t.true_negatives << " fn=" << t.false_negatives << ")";
  return os.str();
}

}  // namespace pfm::eval
