#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pfm::mon {

/// One periodic observation of all monitored symptom variables
/// (SAR-style: free memory, CPU load, queue lengths, ...). `values` is
/// aligned with the owning dataset's SymptomSchema.
struct SymptomSample {
  double time = 0.0;  ///< seconds since trace start
  std::vector<double> values;
};

/// One detected-error report from the system's logging facility
/// (Sect. 3.1: "reporting"). Categorical data: an event type id plus the
/// reporting component.
struct ErrorEvent {
  double time = 0.0;
  std::int32_t event_id = 0;   ///< message/event type identifier
  std::int32_t component = 0;  ///< reporting component identifier
  std::int32_t severity = 1;   ///< 1 = info .. 5 = critical
};

/// A service failure as defined by the system's specification (for the
/// case study: the Eq. 2 interval-availability violation).
struct FailureRecord {
  double time = 0.0;
};

/// Names and lookup of the monitored symptom variables.
class SymptomSchema {
 public:
  SymptomSchema() = default;
  explicit SymptomSchema(std::vector<std::string> names)
      : names_(std::move(names)) {}

  std::size_t size() const noexcept { return names_.size(); }
  const std::string& name(std::size_t i) const { return names_.at(i); }
  const std::vector<std::string>& names() const noexcept { return names_; }

  /// Index of a variable by name, or nullopt when absent.
  std::optional<std::size_t> index(std::string_view name) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return i;
    }
    return std::nullopt;
  }

 private:
  std::vector<std::string> names_;
};

/// A temporal error sequence as used by the HSMM predictor (Fig. 6):
/// all error events inside a data window of length delta_td, labeled by
/// whether a failure followed `lead_time` after the window's end.
struct ErrorSequence {
  std::vector<ErrorEvent> events;
  double end_time = 0.0;          ///< right edge of the data window
  bool preceded_failure = false;  ///< ground-truth label
  /// Evaluation identity stamped by the controller that cut the window
  /// (global node index / per-node evaluation count); predictors ignore
  /// it, fault-injection wrappers key per-item decision streams on it so
  /// injected rolls survive resharding bit-exactly. 0/0 for training
  /// sequences.
  std::uint64_t origin = 0;
  std::uint64_t ordinal = 0;
};

}  // namespace pfm::mon
