#include "monitoring/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfm::mon {

void MonitoringDataset::add_sample(SymptomSample sample) {
  if (sample.values.size() != schema_.size()) {
    throw std::invalid_argument("MonitoringDataset: sample/schema mismatch");
  }
  if (!samples_.empty() && sample.time < samples_.back().time) {
    throw std::invalid_argument("MonitoringDataset: sample time decreases");
  }
  samples_.push_back(std::move(sample));
}

void MonitoringDataset::add_event(ErrorEvent event) {
  if (!events_.empty() && event.time < events_.back().time) {
    throw std::invalid_argument("MonitoringDataset: event time decreases");
  }
  events_.push_back(event);
}

void MonitoringDataset::add_failure(double time) {
  if (!failures_.empty() && time < failures_.back()) {
    throw std::invalid_argument("MonitoringDataset: failure time decreases");
  }
  failures_.push_back(time);
}

double MonitoringDataset::end_time() const noexcept {
  double t = 0.0;
  if (!samples_.empty()) t = std::max(t, samples_.back().time);
  if (!events_.empty()) t = std::max(t, events_.back().time);
  if (!failures_.empty()) t = std::max(t, failures_.back());
  return t;
}

double MonitoringDataset::start_time() const noexcept {
  double t = end_time();
  if (!samples_.empty()) t = std::min(t, samples_.front().time);
  if (!events_.empty()) t = std::min(t, events_.front().time);
  if (!failures_.empty()) t = std::min(t, failures_.front());
  return t;
}

bool MonitoringDataset::failure_within(double t_begin, double t_end) const {
  const auto it =
      std::lower_bound(failures_.begin(), failures_.end(), t_begin);
  return it != failures_.end() && *it < t_end;
}

std::pair<MonitoringDataset, MonitoringDataset> MonitoringDataset::split_at(
    double t) const {
  MonitoringDataset before(schema_);
  MonitoringDataset after(schema_);
  for (const auto& s : samples_) {
    (s.time < t ? before : after).add_sample(s);
  }
  for (const auto& e : events_) {
    (e.time < t ? before : after).add_event(e);
  }
  for (double f : failures_) {
    (f < t ? before : after).add_failure(f);
  }
  return {std::move(before), std::move(after)};
}

std::vector<LabeledWindow> MonitoringDataset::labeled_windows(
    double lead_time, double prediction_window) const {
  if (lead_time < 0.0 || prediction_window <= 0.0) {
    throw std::invalid_argument("labeled_windows: bad window parameters");
  }
  const double horizon = end_time();
  std::vector<LabeledWindow> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    const double w_begin = s.time + lead_time;
    const double w_end = w_begin + prediction_window;
    if (w_end > horizon) continue;  // not labelable yet
    out.push_back(
        {s.time, s.values, failure_within(w_begin, w_end)});
  }
  return out;
}

std::vector<ErrorSequence> MonitoringDataset::failure_sequences(
    double data_window, double lead_time) const {
  if (data_window <= 0.0 || lead_time < 0.0) {
    throw std::invalid_argument("failure_sequences: bad window parameters");
  }
  std::vector<ErrorSequence> out;
  out.reserve(failures_.size());
  for (double tf : failures_) {
    const double w_end = tf - lead_time;
    const double w_begin = w_end - data_window;
    if (w_begin < 0.0) continue;
    ErrorSequence seq;
    seq.events = events_in(w_begin, w_end);
    seq.end_time = w_end;
    seq.preceded_failure = true;
    out.push_back(std::move(seq));
  }
  return out;
}

std::vector<ErrorSequence> MonitoringDataset::nonfailure_sequences(
    double data_window, double lead_time, double prediction_window,
    double stride) const {
  if (data_window <= 0.0 || stride <= 0.0) {
    throw std::invalid_argument("nonfailure_sequences: bad parameters");
  }
  const double horizon = end_time();
  std::vector<ErrorSequence> out;
  for (double w_end = data_window; w_end + lead_time + prediction_window <= horizon;
       w_end += stride) {
    const double w_begin = w_end - data_window;
    // The window must not be a failure precursor...
    if (failure_within(w_end + lead_time,
                       w_end + lead_time + prediction_window)) {
      continue;
    }
    // ...and must not overlap downtime or a failure-adjacent region.
    if (failure_within(w_begin, w_end + lead_time)) continue;
    ErrorSequence seq;
    seq.events = events_in(w_begin, w_end);
    seq.end_time = w_end;
    seq.preceded_failure = false;
    out.push_back(std::move(seq));
  }
  return out;
}

std::vector<ErrorEvent> MonitoringDataset::events_in(double t_begin,
                                                     double t_end) const {
  const auto lo = std::upper_bound(
      events_.begin(), events_.end(), t_begin,
      [](double t, const ErrorEvent& e) { return t < e.time; });
  const auto hi = std::upper_bound(
      events_.begin(), events_.end(), t_end,
      [](double t, const ErrorEvent& e) { return t < e.time; });
  return {lo, hi};
}

}  // namespace pfm::mon
