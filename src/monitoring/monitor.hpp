#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "monitoring/types.hpp"

namespace pfm::mon {

/// A pluggable source of one monitored variable (Sect. 6: "a robust and
/// flexible monitoring infrastructure ... must be pluggable such that new
/// monitoring data sources can be incorporated easily").
class MonitorSource {
 public:
  virtual ~MonitorSource() = default;

  /// Variable name exposed in the schema.
  virtual std::string name() const = 0;

  /// Current value of the variable at simulation/wall time `now`.
  virtual double sample(double now) = 0;
};

/// Adapts a callable into a MonitorSource.
class CallbackSource final : public MonitorSource {
 public:
  CallbackSource(std::string name, std::function<double(double)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  double sample(double now) override { return fn_(now); }

 private:
  std::string name_;
  std::function<double(double)> fn_;
};

/// Collects samples from a set of sources into SymptomSample records and
/// supports runtime adaptation of the sampling interval (Sect. 6:
/// "monitoring should be adaptable during runtime").
class Monitor {
 public:
  /// Registers a source; the schema grows accordingly. Throws
  /// std::invalid_argument for a null source or duplicate name.
  void add_source(std::shared_ptr<MonitorSource> source);

  /// Schema over the registered sources, in registration order.
  SymptomSchema schema() const;

  std::size_t num_sources() const noexcept { return sources_.size(); }

  /// Base sampling interval in seconds (default 60).
  double interval() const noexcept { return interval_; }

  /// Adjusts the sampling interval at runtime; throws std::invalid_argument
  /// for non-positive values.
  void set_interval(double seconds);

  /// Next due sampling time given the last sample time.
  double next_due(double last_sample_time) const noexcept {
    return last_sample_time + interval_;
  }

  /// Samples every source at time `now`.
  SymptomSample collect(double now);

 private:
  std::vector<std::shared_ptr<MonitorSource>> sources_;
  double interval_ = 60.0;
};

}  // namespace pfm::mon
