#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <stdexcept>
#include <vector>

namespace pfm::mon {

/// Fixed-capacity ring buffer that drops the oldest element when full.
/// Used for bounded monitoring history inside long-running MEA loops.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("RingBuffer: zero capacity");
    }
  }

  void push(T value) {
    if (items_.size() == capacity_) items_.pop_front();
    items_.push_back(std::move(value));
  }

  std::size_t size() const noexcept { return items_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return items_.empty(); }
  bool full() const noexcept { return items_.size() == capacity_; }

  /// Oldest-first access; index 0 is the oldest retained element.
  const T& operator[](std::size_t i) const { return items_.at(i); }
  const T& front() const { return items_.front(); }
  const T& back() const { return items_.back(); }

  auto begin() const noexcept { return items_.begin(); }
  auto end() const noexcept { return items_.end(); }

  void clear() noexcept { items_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
};

/// A single monitored variable over time: (time, value) pairs with
/// nondecreasing timestamps and window queries.
class TimeSeries {
 public:
  /// Appends an observation. Throws std::invalid_argument when `time`
  /// precedes the previous observation.
  void push(double time, double value);

  std::size_t size() const noexcept { return times_.size(); }
  bool empty() const noexcept { return times_.empty(); }

  std::span<const double> times() const noexcept { return times_; }
  std::span<const double> values() const noexcept { return values_; }

  double last_time() const;
  double last_value() const;

  /// Values observed in the half-open window (t_begin, t_end].
  std::vector<double> window_values(double t_begin, double t_end) const;

  /// Mean over the window (t_begin, t_end]; 0 when empty.
  double window_mean(double t_begin, double t_end) const;

  /// Least-squares slope of value over time within the window; 0 when the
  /// window holds fewer than two points. Used by trend-based predictors.
  double window_slope(double t_begin, double t_end) const;

 private:
  /// First index with time > t (binary search).
  std::size_t upper_bound(double t) const;

  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace pfm::mon
