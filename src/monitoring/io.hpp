#pragma once

#include <iosfwd>
#include <string>

#include "monitoring/dataset.hpp"

namespace pfm::mon {

/// Plain-text serialization of monitoring traces, so real log data can be
/// brought into the library (the paper's Sect. 7 laments how hard field
/// data is to share — at least the format should not be the obstacle).
///
/// Format (one record per line, '#' comments ignored):
///   schema,<name1>,<name2>,...
///   s,<time>,<v1>,<v2>,...          symptom sample
///   e,<time>,<event_id>,<component>,<severity>
///   f,<time>                        failure
///
/// Records of each stream must appear in nondecreasing time order (the
/// MonitoringDataset contract).
void write_csv(const MonitoringDataset& dataset, std::ostream& out);

/// Parses a trace written by write_csv (or hand-authored in the same
/// format). Throws std::invalid_argument on malformed input: unknown
/// record tags, arity mismatches against the schema, or non-numeric
/// fields.
MonitoringDataset read_csv(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error when the file
/// cannot be opened.
void save_csv(const MonitoringDataset& dataset, const std::string& path);
MonitoringDataset load_csv(const std::string& path);

}  // namespace pfm::mon
