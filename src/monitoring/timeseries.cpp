#include "monitoring/timeseries.hpp"

#include <algorithm>

#include "numerics/stats.hpp"

namespace pfm::mon {

void TimeSeries::push(double time, double value) {
  if (!times_.empty() && time < times_.back()) {
    throw std::invalid_argument("TimeSeries: non-monotonic timestamp");
  }
  times_.push_back(time);
  values_.push_back(value);
}

double TimeSeries::last_time() const {
  if (empty()) throw std::out_of_range("TimeSeries: empty");
  return times_.back();
}

double TimeSeries::last_value() const {
  if (empty()) throw std::out_of_range("TimeSeries: empty");
  return values_.back();
}

std::size_t TimeSeries::upper_bound(double t) const {
  return static_cast<std::size_t>(
      std::upper_bound(times_.begin(), times_.end(), t) - times_.begin());
}

std::vector<double> TimeSeries::window_values(double t_begin,
                                              double t_end) const {
  const std::size_t lo = upper_bound(t_begin);
  const std::size_t hi = upper_bound(t_end);
  return {values_.begin() + static_cast<std::ptrdiff_t>(lo),
          values_.begin() + static_cast<std::ptrdiff_t>(hi)};
}

double TimeSeries::window_mean(double t_begin, double t_end) const {
  const auto w = window_values(t_begin, t_end);
  return num::mean(w);
}

double TimeSeries::window_slope(double t_begin, double t_end) const {
  const std::size_t lo = upper_bound(t_begin);
  const std::size_t hi = upper_bound(t_end);
  if (hi - lo < 2) return 0.0;
  const std::span<const double> t{times_.data() + lo, hi - lo};
  const std::span<const double> v{values_.data() + lo, hi - lo};
  return num::fit_line(t, v).slope;
}

}  // namespace pfm::mon
