#pragma once

#include <span>
#include <utility>
#include <vector>

#include "monitoring/types.hpp"

namespace pfm::mon {

/// A labeled observation for symptom-based predictors: the feature vector
/// at one instant plus the ground truth "a failure follows within the
/// prediction window" (lead time semantics of Fig. 6).
struct LabeledWindow {
  double time = 0.0;
  std::vector<double> features;
  bool failure_follows = false;
};

/// A complete monitoring trace of one system run: periodic symptom samples,
/// the error-event log and the failure log.
///
/// This is the training/evaluation substrate for every predictor in
/// src/prediction. Timestamps must be appended in nondecreasing order per
/// stream (samples, events, failures are independent streams).
class MonitoringDataset {
 public:
  MonitoringDataset() = default;
  explicit MonitoringDataset(SymptomSchema schema)
      : schema_(std::move(schema)) {}

  const SymptomSchema& schema() const noexcept { return schema_; }

  /// Appends a symptom sample. Throws std::invalid_argument when the value
  /// count does not match the schema or the timestamp decreases.
  void add_sample(SymptomSample sample);

  /// Appends an error event. Throws std::invalid_argument on decreasing
  /// timestamps.
  void add_event(ErrorEvent event);

  /// Appends a failure occurrence. Throws std::invalid_argument on
  /// decreasing timestamps.
  void add_failure(double time);

  std::span<const SymptomSample> samples() const noexcept { return samples_; }
  std::span<const ErrorEvent> events() const noexcept { return events_; }
  std::span<const double> failures() const noexcept { return failures_; }

  /// End of the observed trace: max timestamp over all three streams.
  double end_time() const noexcept;

  /// Start of the observed trace: min first-timestamp over the streams
  /// (0 when the dataset is empty). Relevant for trace segments produced
  /// by split_at, whose time axis does not begin at zero.
  double start_time() const noexcept;

  /// True when at least one failure falls into [t_begin, t_end).
  bool failure_within(double t_begin, double t_end) const;

  /// Splits the trace at `t`: first part holds everything strictly before
  /// `t`, second part the rest. Used for train/test splits.
  std::pair<MonitoringDataset, MonitoringDataset> split_at(double t) const;

  /// Labeled feature windows for symptom predictors: one entry per symptom
  /// sample, labeled true when a failure occurs within
  /// [sample.time + lead_time, sample.time + lead_time + prediction_window).
  ///
  /// Samples too close to the end of the trace to be labeled reliably
  /// (their prediction window extends past end_time) are dropped.
  std::vector<LabeledWindow> labeled_windows(double lead_time,
                                             double prediction_window) const;

  /// Failure sequences per Fig. 6: for every failure at time tF, the error
  /// events within [tF - lead_time - data_window, tF - lead_time).
  /// Sequences without any event are kept (an empty sequence is itself
  /// informative).
  std::vector<ErrorSequence> failure_sequences(double data_window,
                                               double lead_time) const;

  /// Non-failure sequences: windows of length data_window placed every
  /// `stride` seconds whose subsequent [end, end + lead_time +
  /// prediction_window) interval is failure-free and that do not overlap a
  /// failure sequence window.
  std::vector<ErrorSequence> nonfailure_sequences(
      double data_window, double lead_time, double prediction_window,
      double stride) const;

  /// Error events within (t_begin, t_end].
  std::vector<ErrorEvent> events_in(double t_begin, double t_end) const;

 private:
  SymptomSchema schema_;
  std::vector<SymptomSample> samples_;
  std::vector<ErrorEvent> events_;
  std::vector<double> failures_;
};

}  // namespace pfm::mon
