#include "monitoring/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pfm::mon {

namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) out.push_back(field);
  return out;
}

double parse_number(const std::string& s, std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("trace csv line " + std::to_string(line_no) +
                                ": bad number '" + s + "'");
  }
}

}  // namespace

void write_csv(const MonitoringDataset& dataset, std::ostream& out) {
  out << std::setprecision(17);
  out << "schema";
  for (const auto& name : dataset.schema().names()) out << ',' << name;
  out << '\n';
  // Streams are written separately; each is internally time-ordered.
  for (const auto& s : dataset.samples()) {
    out << "s," << s.time;
    for (double v : s.values) out << ',' << v;
    out << '\n';
  }
  for (const auto& e : dataset.events()) {
    out << "e," << e.time << ',' << e.event_id << ',' << e.component << ','
        << e.severity << '\n';
  }
  for (double f : dataset.failures()) {
    out << "f," << f << '\n';
  }
}

MonitoringDataset read_csv(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  bool have_schema = false;
  MonitoringDataset dataset;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_fields(line);
    const auto& tag = fields.front();
    if (tag == "schema") {
      if (have_schema) {
        throw std::invalid_argument("trace csv line " +
                                    std::to_string(line_no) +
                                    ": duplicate schema record");
      }
      dataset = MonitoringDataset(
          SymptomSchema({fields.begin() + 1, fields.end()}));
      have_schema = true;
    } else if (tag == "s") {
      if (!have_schema) {
        throw std::invalid_argument("trace csv: sample before schema");
      }
      if (fields.size() != 2 + dataset.schema().size()) {
        throw std::invalid_argument("trace csv line " +
                                    std::to_string(line_no) +
                                    ": sample arity mismatch");
      }
      SymptomSample s;
      s.time = parse_number(fields[1], line_no);
      s.values.reserve(dataset.schema().size());
      for (std::size_t i = 2; i < fields.size(); ++i) {
        s.values.push_back(parse_number(fields[i], line_no));
      }
      dataset.add_sample(std::move(s));
    } else if (tag == "e") {
      if (fields.size() != 5) {
        throw std::invalid_argument("trace csv line " +
                                    std::to_string(line_no) +
                                    ": event arity mismatch");
      }
      ErrorEvent e;
      e.time = parse_number(fields[1], line_no);
      e.event_id = static_cast<std::int32_t>(parse_number(fields[2], line_no));
      e.component =
          static_cast<std::int32_t>(parse_number(fields[3], line_no));
      e.severity = static_cast<std::int32_t>(parse_number(fields[4], line_no));
      dataset.add_event(e);
    } else if (tag == "f") {
      if (fields.size() != 2) {
        throw std::invalid_argument("trace csv line " +
                                    std::to_string(line_no) +
                                    ": failure arity mismatch");
      }
      dataset.add_failure(parse_number(fields[1], line_no));
    } else {
      throw std::invalid_argument("trace csv line " + std::to_string(line_no) +
                                  ": unknown record tag '" + tag + "'");
    }
  }
  return dataset;
}

void save_csv(const MonitoringDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_csv: cannot open " + path);
  write_csv(dataset, out);
  if (!out) throw std::runtime_error("save_csv: write failed for " + path);
}

MonitoringDataset load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_csv: cannot open " + path);
  return read_csv(in);
}

}  // namespace pfm::mon
