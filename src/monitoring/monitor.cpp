#include "monitoring/monitor.hpp"

#include <stdexcept>

namespace pfm::mon {

void Monitor::add_source(std::shared_ptr<MonitorSource> source) {
  if (!source) throw std::invalid_argument("Monitor: null source");
  for (const auto& s : sources_) {
    if (s->name() == source->name()) {
      throw std::invalid_argument("Monitor: duplicate source name '" +
                                  source->name() + "'");
    }
  }
  sources_.push_back(std::move(source));
}

SymptomSchema Monitor::schema() const {
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& s : sources_) names.push_back(s->name());
  return SymptomSchema(std::move(names));
}

void Monitor::set_interval(double seconds) {
  if (seconds <= 0.0) {
    throw std::invalid_argument("Monitor: interval must be positive");
  }
  interval_ = seconds;
}

SymptomSample Monitor::collect(double now) {
  SymptomSample sample;
  sample.time = now;
  sample.values.reserve(sources_.size());
  for (const auto& s : sources_) sample.values.push_back(s->sample(now));
  return sample;
}

}  // namespace pfm::mon
