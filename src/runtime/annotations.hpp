#pragma once

// Clang thread-safety capability annotations, behind PFM_ macros so the
// code stays a no-op under GCC (and any compiler without the attribute).
// src/ builds with -Wthread-safety -Werror=thread-safety under Clang
// (see src/CMakeLists.txt), so an access to annotated shared state
// without its capability is a build break, not a review comment.
//
// Two capability shapes are used in runtime/:
//
//   Mutex / MutexLock  — a real lock. libstdc++'s std::mutex carries no
//       capability attributes, so the analysis cannot see through it;
//       Mutex is the annotated wrapper and MutexLock the annotated RAII
//       scope (condition-variable-compatible via native()).
//
//   ThreadRole / RoleGuard — a phantom capability naming a *thread
//       role* rather than a lock. The FleetController's quarantine,
//       breaker and telemetry accumulators are mutated only by the
//       controller thread between parallel sections; there is no mutex
//       to annotate, but the ownership rule is still machine-checkable:
//       state marked PFM_GUARDED_BY(role) is only touchable from scopes
//       that hold a RoleGuard, and worker-side lambdas (which must stay
//       on disjoint per-node slots) do not — so a future edit that
//       reaches from a worker into controller state fails the Clang
//       build. Acquiring a role costs nothing at runtime; the value is
//       purely in the analysis.
//
// The macro set mirrors the Clang documentation's canonical names with
// a PFM_ prefix; see DESIGN.md "Correctness tooling" for the map of
// what is guarded by what.

#if defined(__clang__)
#define PFM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PFM_THREAD_ANNOTATION(x)
#endif

#define PFM_CAPABILITY(x) PFM_THREAD_ANNOTATION(capability(x))
#define PFM_SCOPED_CAPABILITY PFM_THREAD_ANNOTATION(scoped_lockable)
#define PFM_GUARDED_BY(x) PFM_THREAD_ANNOTATION(guarded_by(x))
#define PFM_PT_GUARDED_BY(x) PFM_THREAD_ANNOTATION(pt_guarded_by(x))
#define PFM_REQUIRES(...) \
  PFM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PFM_ACQUIRE(...) \
  PFM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PFM_RELEASE(...) \
  PFM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PFM_EXCLUDES(...) PFM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PFM_NO_THREAD_SAFETY_ANALYSIS \
  PFM_THREAD_ANNOTATION(no_thread_safety_analysis)

#include <condition_variable>
#include <mutex>

namespace pfm::runtime {

/// Annotated std::mutex wrapper (see file comment).
class PFM_CAPABILITY("mutex") Mutex {
 public:
  void lock() PFM_ACQUIRE() { mu_.lock(); }
  void unlock() PFM_RELEASE() { mu_.unlock(); }
  /// The raw mutex, for std::condition_variable interop only.
  std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scope holding a Mutex for its lifetime. wait() parks on a
/// condition variable; per the standard CV contract the lock is
/// reacquired before wait() returns, so the capability is held whenever
/// user code runs — which is exactly what the analysis assumes.
class PFM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PFM_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() PFM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Phantom capability naming a thread role (see file comment).
class PFM_CAPABILITY("role") ThreadRole {};

/// Zero-cost RAII assertion that the current scope plays `role`.
class PFM_SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(const ThreadRole& role) PFM_ACQUIRE(role) {
    (void)role;
  }
  ~RoleGuard() PFM_RELEASE() {}

  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;
};

}  // namespace pfm::runtime
