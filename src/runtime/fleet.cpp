#include "runtime/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace pfm::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

FleetController::FleetController(
    std::vector<std::unique_ptr<core::ManagedSystem>> nodes,
    FleetConfig config)
    : nodes_(std::move(nodes)),
      config_(std::move(config)),
      engines_(nodes_.size()),
      stats_(nodes_.size()),
      pool_(config_.num_threads),
      node_state_(nodes_.size()) {
  if (nodes_.empty()) {
    throw std::invalid_argument("FleetController: empty fleet");
  }
  for (const auto& n : nodes_) {
    if (!n) throw std::invalid_argument("FleetController: null node");
  }
  config_.mea.windows.validate();
  if (config_.mea.evaluation_interval <= 0.0) {
    throw std::invalid_argument("FleetController: evaluation interval > 0");
  }
  if (config_.mea.warning_threshold < 0.0 ||
      config_.mea.warning_threshold > 1.0) {
    throw std::invalid_argument("FleetController: threshold in [0,1]");
  }
}

void FleetController::add_symptom_predictor(
    std::shared_ptr<const pred::SymptomPredictor> p) {
  if (!p) throw std::invalid_argument("FleetController: null predictor");
  symptom_.push_back(std::move(p));
}

void FleetController::add_event_predictor(
    std::shared_ptr<const pred::EventPredictor> p) {
  if (!p) throw std::invalid_argument("FleetController: null predictor");
  event_.push_back(std::move(p));
}

void FleetController::add_action(
    const std::function<std::unique_ptr<act::Action>()>& factory) {
  if (!factory) throw std::invalid_argument("FleetController: null factory");
  for (auto& engine : engines_) engine.add_action(factory());
}

void FleetController::run() {
  double horizon = 0.0;
  for (const auto& n : nodes_) horizon = std::max(horizon, n->horizon());
  run_until(horizon);
}

std::string FleetController::describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {  // pfm-lint: allow(concurrency) — describing an already
                   // captured exception_ptr; nothing is swallowed here
    return "unknown error";
  }
}

void FleetController::quarantine(std::size_t node_index,
                                 const std::string& reason) {
  auto& state = node_state_[node_index];
  if (state.quarantined) return;
  state.quarantined = true;
  state.reason = reason;
  state.quarantine_time = nodes_[node_index]->now();
}

void FleetController::run_until(double t) {
  // This thread is the controller for the whole run: quarantine, breaker
  // and telemetry state below is only ever touched between the parallel
  // sections (never from the worker lambdas handed to pool_).
  RoleGuard controller_guard(controller_);
  const double interval = config_.mea.evaluation_interval;
  const double threshold = config_.mea.warning_threshold;
  const ResilienceConfig& res = config_.resilience;
  const bool hardened = res.enabled;

  // Breakers persist across run_until calls; predictors may have been
  // registered since the last call.
  const std::size_t num_predictors = symptom_.size() + event_.size();
  breakers_.resize(num_predictors);

  std::vector<std::size_t> active;              // node index per stepped node
  std::vector<double> pre_step_time;            // now() before Monitor, per active
  std::vector<std::exception_ptr> errors;       // per-task capture buffer
  std::vector<pred::SymptomContext> contexts;   // one per scoreable node
  std::vector<std::size_t> context_owner;       // active-list position
  std::vector<mon::ErrorSequence> sequences;    // one per active node
  std::vector<double> combined;                 // max score per active node
  std::vector<std::vector<double>> columns(num_predictors);
  std::vector<std::size_t> live;                // predictors scored this round

  for (;;) {
    active.clear();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (node_state_[i].quarantined) continue;
      if (!nodes_[i]->finished() && nodes_[i]->now() < t) active.push_back(i);
    }
    if (active.empty()) break;
    ++rounds_;

    // --- Monitor: advance every live node one evaluation interval. ----------
    const auto monitor_start = Clock::now();
    pre_step_time.resize(active.size());
    for (std::size_t a = 0; a < active.size(); ++a) {
      pre_step_time[a] = nodes_[active[a]]->now();
    }
    auto step_node = [&](std::size_t a) {
      auto& node = *nodes_[active[a]];
      node.step_to(std::min(node.now() + interval, t));
    };
    if (hardened) {
      pool_.parallel_for_captured(active.size(), step_node, errors);
      for (std::size_t a = 0; a < active.size(); ++a) {
        const std::size_t i = active[a];
        if (errors[a]) {
          ++resilience_.node_faults;
          quarantine(i, describe(errors[a]));
        } else if (!nodes_[i]->finished() &&
                   nodes_[i]->now() <= pre_step_time[a]) {
          // The node returned but made no time progress: a hang, not a
          // crash. Quarantine only after a persistent streak so a
          // transient stall can recover.
          ++resilience_.stall_detections;
          if (++node_state_[i].stall_streak >= res.max_stall_rounds) {
            quarantine(i, "stalled: no monitor progress for " +
                              std::to_string(node_state_[i].stall_streak) +
                              " rounds");
          }
        } else {
          node_state_[i].stall_streak = 0;
        }
      }
      // Nodes quarantined this round drop out of Evaluate/Act. (The
      // local alias keeps the lambda — analyzed as its own function —
      // off the role-guarded member; it runs inline on this thread.)
      const auto& node_state = node_state_;
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [&](std::size_t i) {
                                    return node_state[i].quarantined;
                                  }),
                   active.end());
    } else {
      pool_.parallel_for(active.size(), step_node);
    }
    latency_.monitor_seconds += seconds_since(monitor_start);
    if (active.empty()) continue;

    // --- Evaluate: one score_batch call per predictor over the fleet. -------
    const auto evaluate_start = Clock::now();
    contexts.clear();
    context_owner.clear();
    sequences.clear();
    for (std::size_t a = 0; a < active.size(); ++a) {
      auto& node = *nodes_[active[a]];
      ++stats_[active[a]].evaluations;
      if (!symptom_.empty() && !node.trace().samples().empty()) {
        contexts.push_back(node.symptom_context(config_.mea.context_samples));
        context_owner.push_back(a);
      }
      if (!event_.empty()) {
        sequences.push_back(
            node.error_sequence(config_.mea.windows.data_window));
      }
    }

    // Breaker scheduling: open breakers sit out their cooldown, then get
    // one half-open probe round; closed (and probing) predictors score.
    live.clear();
    for (std::size_t p = 0; p < num_predictors; ++p) {
      if (hardened && breakers_[p].open && breakers_[p].open_rounds_left > 0) {
        --breakers_[p].open_rounds_left;
        continue;
      }
      live.push_back(p);
    }

    auto score_live = [&](std::size_t lp) {
      const std::size_t p = live[lp];
      auto& column = columns[p];
      if (p < symptom_.size()) {
        column.resize(contexts.size());
        symptom_[p]->score_batch(contexts, column);
      } else {
        column.resize(sequences.size());
        event_[p - symptom_.size()]->score_batch(sequences, column);
      }
    };
    if (hardened) {
      pool_.parallel_for_captured(live.size(), score_live, errors);
    } else {
      pool_.parallel_for(live.size(), score_live);
    }

    // Per-predictor outcome: a throw or any non-finite score is a faulty
    // round feeding the breaker; a clean round closes/heals it.
    combined.assign(active.size(), 0.0);
    for (std::size_t lp = 0; lp < live.size(); ++lp) {
      const std::size_t p = live[lp];
      const bool threw = hardened && errors[lp] != nullptr;
      bool faulty = threw;
      if (!threw) {
        const auto& column = columns[p];
        const std::size_t n = column.size();
        scores_computed_ += n;
        if (p < symptom_.size()) {
          for (std::size_t c = 0; c < n; ++c) {
            const double v = column[c];
            if (hardened && !std::isfinite(v)) {
              ++resilience_.scores_sanitized;
              faulty = true;
              continue;
            }
            combined[context_owner[c]] =
                std::max(combined[context_owner[c]], v);
          }
        } else {
          for (std::size_t a = 0; a < n; ++a) {
            const double v = column[a];
            if (hardened && !std::isfinite(v)) {
              ++resilience_.scores_sanitized;
              faulty = true;
              continue;
            }
            combined[a] = std::max(combined[a], v);
          }
        }
      }
      if (!hardened) continue;
      auto& breaker = breakers_[p];
      if (faulty) {
        ++resilience_.predictor_faults;
        if (breaker.open) {
          // Half-open probe failed: back to a full cooldown.
          breaker.open_rounds_left = res.breaker_open_rounds;
          ++resilience_.breaker_trips;
        } else if (++breaker.failure_streak >= res.breaker_trip_failures) {
          breaker.open = true;
          breaker.open_rounds_left = res.breaker_open_rounds;
          ++resilience_.breaker_trips;
        }
      } else {
        breaker.open = false;  // closes after a successful probe
        breaker.failure_streak = 0;
      }
    }
    latency_.evaluate_seconds += seconds_since(evaluate_start);

    // --- Act: warned nodes run their own countermeasure engines. ------------
    const auto act_start = Clock::now();
    for (std::size_t a = 0; a < active.size(); ++a) {
      if (combined[a] >= threshold) ++warnings_raised_;
    }
    auto act_node = [&](std::size_t a) {
      if (combined[a] < threshold) return;
      const std::size_t i = active[a];
      ++stats_[i].warnings;
      engines_[i].act(*nodes_[i], combined[a], config_.mea, stats_[i]);
    };
    if (hardened) {
      pool_.parallel_for_captured(active.size(), act_node, errors);
      for (std::size_t a = 0; a < active.size(); ++a) {
        if (!errors[a]) continue;
        ++resilience_.node_faults;
        quarantine(active[a], describe(errors[a]));
      }
    } else {
      pool_.parallel_for(active.size(), act_node);
    }
    latency_.act_seconds += seconds_since(act_start);
  }
}

FleetTelemetry FleetController::telemetry() const {
  RoleGuard guard(controller_);
  FleetTelemetry out;
  out.nodes = nodes_.size();
  out.rounds = rounds_;
  out.scores_computed = scores_computed_;
  out.warnings_raised = warnings_raised_;
  out.latency = latency_;
  out.resilience = resilience_;
  for (const auto& state : node_state_) {
    if (state.quarantined) ++out.resilience.nodes_quarantined;
  }
  for (const auto& breaker : breakers_) {
    if (breaker.open) ++out.resilience.breakers_open;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.mea += stats_[i];
    out.system += nodes_[i]->system_stats();
  }
  return out;
}

}  // namespace pfm::runtime
