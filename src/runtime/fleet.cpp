#include "runtime/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "prediction/frozen.hpp"
#include "prediction/ubf.hpp"
#include "runtime/shard.hpp"

namespace pfm::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

FleetController::FleetController(
    std::vector<std::unique_ptr<core::ManagedSystem>> nodes,
    FleetConfig config)
    : nodes_(std::move(nodes)),
      config_(std::move(config)),
      engines_(nodes_.size()),
      stats_(nodes_.size()),
      pool_(config_.num_threads,
            ThreadPoolOptions{
                .persistent = config_.path != FleetPath::kReference}),
      node_state_(nodes_.size()) {
  if (nodes_.empty()) {
    throw std::invalid_argument("FleetController: empty fleet");
  }
  for (const auto& n : nodes_) {
    if (!n) throw std::invalid_argument("FleetController: null node");
  }
  config_.mea.windows.validate();
  if (config_.mea.evaluation_interval <= 0.0) {
    throw std::invalid_argument("FleetController: evaluation interval > 0");
  }
  if (config_.mea.warning_threshold < 0.0 ||
      config_.mea.warning_threshold > 1.0) {
    throw std::invalid_argument("FleetController: threshold in [0,1]");
  }
  if (config_.num_shards == 0) {
    throw std::invalid_argument("FleetController: num_shards must be >= 1");
  }
  if (config_.epoch_ticks == 0) {
    throw std::invalid_argument("FleetController: epoch_ticks must be >= 1");
  }
  config_.schedule.validate();
  if (config_.scheduler == FleetScheduler::kEventDriven &&
      config_.num_shards > nodes_.size()) {
    throw std::invalid_argument(
        "FleetController: more shards than nodes (need at least one node "
        "per shard)");
  }
  config_.membership.validate();
  member_active_ = config_.membership.active();
  live_nodes_ = nodes_.size();
  if (member_active_) {
    member_timeline_ = config_.membership.plan.resolve();
    incarnations_.assign(nodes_.size(), 0);
    last_combined_.assign(nodes_.size(), 0.0);
  }

  // Observability: use the caller's hub when given (it must have a shard
  // for every pool thread, or two workers would share a slot and race);
  // otherwise keep a private metrics-only hub so telemetry() always has
  // a registry behind it. Handle registration happens here, once, on the
  // controller thread — the hot loop only bumps prebuilt handles.
  if (config_.obs != nullptr) {
    if (config_.obs->shards() < pool_.num_threads()) {
      throw std::invalid_argument(
          "FleetController: observability hub has fewer shards than the "
          "pool has threads");
    }
    obs_ = config_.obs;
  } else {
    obs::ObservabilityConfig fallback;
    fallback.shards = pool_.num_threads();
    fallback.trace_capacity = 0;
    owned_obs_ = std::make_unique<obs::Observability>(fallback);
    obs_ = owned_obs_.get();
  }
  auto& metrics = obs_->metrics();
  inst_.rounds_total = &metrics.counter("pfm_fleet_rounds_total");
  inst_.epochs_total = &metrics.counter("pfm_fleet_epochs_total");
  inst_.node_steps_total = &metrics.counter("pfm_fleet_node_steps_total");
  inst_.scores_total = &metrics.counter("pfm_fleet_scores_total");
  inst_.warnings_total = &metrics.counter("pfm_fleet_warnings_total");
  inst_.node_faults_total = &metrics.counter("pfm_fleet_node_faults_total");
  inst_.stall_detections_total =
      &metrics.counter("pfm_fleet_stall_detections_total");
  inst_.quarantines_total = &metrics.counter("pfm_fleet_quarantines_total");
  inst_.predictor_faults_total =
      &metrics.counter("pfm_fleet_predictor_faults_total");
  inst_.breaker_trips_total =
      &metrics.counter("pfm_fleet_breaker_trips_total");
  inst_.scores_sanitized_total =
      &metrics.counter("pfm_fleet_scores_sanitized_total");
  const obs::HistogramSpec latency_spec;  // 1µs..~17s log-scale, 1ns ticks
  inst_.monitor_latency = &metrics.histogram(
      "pfm_stage_latency_seconds{stage=\"monitor\"}", latency_spec);
  inst_.evaluate_latency = &metrics.histogram(
      "pfm_stage_latency_seconds{stage=\"evaluate\"}", latency_spec);
  inst_.act_latency = &metrics.histogram(
      "pfm_stage_latency_seconds{stage=\"act\"}", latency_spec);
  nodes_gauge_ = &metrics.gauge("pfm_fleet_nodes");
  nodes_gauge_->set(static_cast<double>(nodes_.size()));
  quarantined_gauge_ = &metrics.gauge("pfm_fleet_quarantined_nodes");
  breakers_open_gauge_ = &metrics.gauge("pfm_fleet_open_breakers");
  // Evaluate batch sizes are pure functions of sim state (identical on
  // both paths and at every thread count), so the histogram lives on the
  // sim clock and participates in the deterministic exports.
  obs::HistogramSpec batch_spec;
  batch_spec.first_bound = 1.0;
  batch_spec.factor = 2.0;
  batch_spec.num_buckets = 12;
  batch_spec.resolution = 1.0;
  inst_.batch_size_hist = &metrics.histogram("pfm_fleet_batch_size",
                                             batch_spec, obs::Clock::kSim);
  // Arena footprint differs between paths by design — wall clock keeps
  // it out of the include_wall=false exports the conformance suite pins.
  scratch_bytes_gauge_ =
      &metrics.gauge("pfm_fleet_scratch_bytes", obs::Clock::kWall);
  // Membership counters exist only while membership is active, so an
  // inactive config's exports stay byte-identical to a membership-free
  // build (the satellite determinism contract).
  if (member_active_) {
    member_joined_total_ =
        &metrics.counter("pfm_fleet_membership_nodes_joined_total");
    member_left_total_ =
        &metrics.counter("pfm_fleet_membership_nodes_left_total");
    member_handoffs_total_ =
        &metrics.counter("pfm_fleet_membership_handoffs_total");
    member_scale_ups_total_ =
        &metrics.counter("pfm_fleet_membership_scale_ups_total");
    member_drains_total_ =
        &metrics.counter("pfm_fleet_membership_drains_total");
  }
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    engines_[i].set_observability(obs_, obs::node_track(i));
  }
}

FleetController::~FleetController() = default;

void FleetController::add_symptom_predictor(
    std::shared_ptr<const pred::SymptomPredictor> p) {
  if (!p) throw std::invalid_argument("FleetController: null predictor");
  symptom_.push_back(std::move(p));
}

void FleetController::add_event_predictor(
    std::shared_ptr<const pred::EventPredictor> p) {
  if (!p) throw std::invalid_argument("FleetController: null predictor");
  event_.push_back(std::move(p));
}

std::vector<std::string> FleetController::freeze_symptom_predictors(
    const std::string& dir) const {
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < symptom_.size(); ++i) {
    const auto* ubf = dynamic_cast<const pred::UbfPredictor*>(symptom_[i].get());
    if (ubf == nullptr) continue;  // no freeze path for this predictor type
    const auto model = ubf->export_model();
    std::string path = dir + "/" + model.name + "_" + std::to_string(i) +
                       ".pfmfrozen";
    const pred::FrozenError err = pred::freeze(model, path);
    if (err != pred::FrozenError::kOk) {
      throw std::runtime_error("FleetController: freeze failed for " + path +
                               ": " + pred::to_string(err));
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

void FleetController::add_action(
    const std::function<std::unique_ptr<act::Action>()>& factory) {
  if (!factory) throw std::invalid_argument("FleetController: null factory");
  for (auto& engine : engines_) engine.add_action(factory());
  // Joiners and restarted nodes get the same countermeasure set: the
  // factory is replayed onto their fresh engines at the barrier.
  if (member_active_) action_factories_.push_back(factory);
}

void FleetController::run() {
  double horizon = 0.0;
  for (const auto& n : nodes_) horizon = std::max(horizon, n->horizon());
  run_until(horizon);
}

void FleetController::run_until(double t) {
  if (config_.scheduler == FleetScheduler::kEventDriven) {
    run_event_driven(t);
  } else {
    run_lockstep(t);
  }
}

std::string FleetController::describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {  // pfm-lint: allow(concurrency) — describing an already
                   // captured exception_ptr; nothing is swallowed here
    return "unknown error";
  }
}

void FleetController::quarantine(std::size_t node_index,
                                 const std::string& reason) {
  auto& state = node_state_[node_index];
  if (state.quarantined) return;
  state.quarantined = true;
  state.reason = reason;
  state.quarantine_time = nodes_[node_index]->now();
  inst_.quarantines_total->inc();
  obs::record_instant(obs_->tracer(), obs::SpanKind::kQuarantine,
                      obs::node_track(node_index), state.quarantine_time);
  if (flight_ != nullptr) {
    flight_->record_node(
        node_index,
        obs::FlightEvent{state.quarantine_time,
                         obs::FlightEventKind::kQuarantine, 0, 0, 0.0});
    flight_->dump_node(node_index, "quarantine", state.quarantine_time);
  }
}

void FleetController::ensure_observers_ready() {
  const std::size_t num_predictors = symptom_.size() + event_.size();
  flight_ = obs_->flight();
  if (flight_ != nullptr) {
    flight_->ensure_nodes(nodes_.size());
    // One predictor lane bank per shard (per-shard breakers trip
    // independently); the lockstep loop uses bank 0.
    const std::size_t lane_shards = shards_.empty() ? 1 : shards_.size();
    flight_->ensure_lanes(lane_shards * num_predictors, num_predictors);
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      engines_[i].set_flight(flight_, i);
    }
  }
  if (!config_.quality.enabled) return;
  if (!quality_) {
    obs::QualityConfig qc;
    qc.lead_time = config_.mea.windows.lead_time;
    qc.prediction_window = config_.mea.windows.prediction_window;
    qc.count_early_failures = config_.quality.count_early_failures;
    qc.warning_threshold = config_.mea.warning_threshold;
    qc.pending_capacity = config_.quality.pending_capacity;
    qc.outcome_window = config_.quality.outcome_window;
    qc.score_bins = config_.quality.score_bins;
    quality_ = std::make_unique<obs::QualityTracker>(qc, &obs_->metrics());
    auto& metrics = obs_->metrics();
    model_availability_gauge_ =
        &metrics.gauge("pfm_quality_model_availability");
    measured_availability_gauge_ =
        &metrics.gauge("pfm_quality_measured_availability");
    availability_drift_gauge_ =
        &metrics.gauge("pfm_quality_availability_drift");
  }
  // Predictors may have been registered since the last run; a lane-set
  // change resets per-node tracker state, a matching one is a no-op.
  std::vector<std::string> labels;
  labels.reserve(num_predictors);
  for (const auto& p : symptom_) labels.push_back(p->name());
  for (const auto& p : event_) labels.push_back(p->name());
  quality_->set_predictors(labels);
  quality_->ensure_nodes(nodes_.size());
  quality_row_.assign(quality_->lanes(), 0.0);
}

void FleetController::refresh_quality_gauges() {
  if (quality_ == nullptr) return;
  quality_->refresh_gauges();
  // Eq. 2 measured interval availability over the whole fleet (current
  // systems plus the retired incarnations of restarted slots).
  core::SystemStats sys = retired_system_stats_;
  for (const auto& node : nodes_) sys += node->system_stats();
  const double measured = sys.availability();
  // Eq. 8 model availability, driven by the live windowed quality of the
  // combined lane — the self-assessed counterpart of `measured`.
  const std::size_t lane = quality_->combined_lane();
  auto model_of = [&](const obs::ConfusionCounts& counts) {
    ctmc::PfmModelParams params = config_.quality.model;
    params.quality = ctmc::clamped_quality(
        counts.precision(), counts.recall(), counts.false_positive_rate());
    return ctmc::PfmAvailabilityModel(params).availability_closed_form();
  };
  const double model = model_of(quality_->windowed(lane));
  model_availability_gauge_->set(model);
  measured_availability_gauge_->set(measured);
  availability_drift_gauge_->set(model - measured);
  if (shards_.size() > 1) {
    auto& metrics = obs_->metrics();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      metrics
          .gauge("pfm_quality_model_availability{shard=\"" +
                 std::to_string(s) + "\"}")
          .set(model_of(quality_->windowed_nodes(lane, layout_.begin(s),
                                                 layout_.size(s))));
    }
  }
}

void FleetController::run_lockstep(double t) {
  // This thread is the controller for the whole run: quarantine, breaker
  // and telemetry state below is only ever touched between the parallel
  // sections (never from the worker lambdas handed to pool_).
  RoleGuard controller_guard(controller_);
  const double interval = config_.mea.evaluation_interval;
  const double threshold = config_.mea.warning_threshold;
  const ResilienceConfig& res = config_.resilience;
  const bool hardened = res.enabled;

  // Breakers persist across run_until calls; predictors may have been
  // registered since the last call.
  const std::size_t num_predictors = symptom_.size() + event_.size();
  breakers_.resize(num_predictors);
  columns_.resize(num_predictors);
  batch_scratch_.resize(num_predictors);
  const bool optimized = config_.path != FleetPath::kReference;
  const pred::BatchKernel kernel = config_.path == FleetPath::kSimd
                                       ? pred::BatchKernel::kSimd
                                       : pred::BatchKernel::kScalar;
  for (auto& scratch : batch_scratch_) scratch.kernel = kernel;
  ensure_observers_ready();

  // The round scratch lives in members (reused across rounds and calls);
  // the aliases keep the loop body readable.
  std::vector<std::size_t>& active = active_;
  std::vector<double>& pre_step_time = pre_step_time_;
  std::vector<std::exception_ptr>& errors = round_errors_;
  std::vector<pred::SymptomContext>& contexts = contexts_;
  std::vector<std::size_t>& context_owner = context_owner_;
  std::vector<mon::ErrorSequence>& sequences = sequences_;
  std::vector<double>& combined = combined_;
  std::vector<std::vector<double>>& columns = columns_;
  std::vector<std::size_t>& live = live_;

  obs::TraceRecorder* tracer = obs_->tracer();

  for (;;) {
    // Membership barrier: churn applies between rounds, on the lockstep
    // membership clock (rounds started, idle ones included). The clock
    // advances immediately so the k-th round sees member time k*interval
    // — the same schedule the event-driven loop derives from its epoch
    // grid.
    if (member_active_) {
      membership_barrier(static_cast<double>(member_ticks_) * interval, t);
      ++member_ticks_;
    }
    active.clear();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (node_state_[i].quarantined || node_state_[i].departed) continue;
      if (!nodes_[i]->finished() && nodes_[i]->now() < t) active.push_back(i);
    }
    if (active.empty()) {
      // Idle round: nothing runnable now, but a planned change at a later
      // membership tick may still add or revive work before `t`.
      if (!member_active_ || !membership_pending(t)) break;
      continue;
    }
    inst_.rounds_total->inc();
    // Under lockstep every round is a fleet-wide synchronization point
    // and every active node steps once, so epochs == rounds and
    // node_steps advances by the active count.
    inst_.epochs_total->inc();
    inst_.node_steps_total->inc(active.size());
    // Stage spans of one round share the round ordinal as their `sub`,
    // keeping them unique (and grouped) in the deterministic sort.
    const auto round = static_cast<std::uint32_t>(inst_.rounds_total->value());

    // --- Monitor: advance every live node one evaluation interval. ----------
    const auto monitor_start = Clock::now();
    pre_step_time.resize(active.size());
    double round_begin = nodes_[active[0]]->now();
    for (std::size_t a = 0; a < active.size(); ++a) {
      pre_step_time[a] = nodes_[active[a]]->now();
      round_begin = std::min(round_begin, pre_step_time[a]);
    }
    {
      obs::ScopedSpan monitor_span(tracer, obs::SpanKind::kMonitorStage,
                                   obs::kFleetTrack, round_begin, round,
                                   static_cast<std::int64_t>(active.size()));
      auto step_node = [&](std::size_t a) {
        const std::size_t i = active[a];
        auto& node = *nodes_[i];
        obs::ScopedSpan span(tracer, obs::SpanKind::kNodeStep,
                             obs::node_track(i), pre_step_time[a]);
        node.step_to(std::min(node.now() + interval, t));
        span.set_sim_end(node.now());
      };
      if (hardened) {
        pool_.parallel_for_captured(active.size(), step_node, errors);
        for (std::size_t a = 0; a < active.size(); ++a) {
          const std::size_t i = active[a];
          if (errors[a]) {
            inst_.node_faults_total->inc();
            quarantine(i, describe(errors[a]));
          } else if (!nodes_[i]->finished() &&
                     nodes_[i]->now() <= pre_step_time[a]) {
            // The node returned but made no time progress: a hang, not a
            // crash. Quarantine only after a persistent streak so a
            // transient stall can recover.
            inst_.stall_detections_total->inc();
            if (++node_state_[i].stall_streak >= res.max_stall_rounds) {
              quarantine(i, "stalled: no monitor progress for " +
                                std::to_string(node_state_[i].stall_streak) +
                                " rounds");
            }
          } else {
            node_state_[i].stall_streak = 0;
          }
        }
        // Nodes quarantined this round drop out of Evaluate/Act. (The
        // local alias keeps the lambda — analyzed as its own function —
        // off the role-guarded member; it runs inline on this thread.)
        const auto& node_state = node_state_;
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](std::size_t i) {
                                      return node_state[i].quarantined;
                                    }),
                     active.end());
      } else {
        pool_.parallel_for(active.size(), step_node);
      }
      double round_end = round_begin;
      for (const std::size_t i : active) {
        round_end = std::max(round_end, nodes_[i]->now());
      }
      monitor_span.set_sim_end(round_end);
    }
    inst_.monitor_latency->observe(seconds_since(monitor_start));
    if (active.empty()) continue;

    // Quality: each surviving node's clock just advanced, so pending
    // evaluation instants whose prediction window closed are resolved
    // against the node's ground-truth failure log (Sect. 3.3 matching).
    if (quality_ != nullptr) {
      for (const std::size_t i : active) {
        quality_->resolve(i, nodes_[i]->now(), nodes_[i]->trace().failures());
      }
    }

    // --- Evaluate: one score_batch call per predictor over the fleet. -------
    const auto evaluate_start = Clock::now();
    // Scoring and acting happen "at" the round's post-Monitor instant; a
    // deterministic reduction over node clocks, so span timestamps stay
    // thread-count invariant.
    double eval_time = nodes_[active[0]]->now();
    for (const std::size_t i : active) {
      eval_time = std::max(eval_time, nodes_[i]->now());
    }
    {
    obs::ScopedSpan evaluate_span(tracer, obs::SpanKind::kEvaluateStage,
                                  obs::kFleetTrack, eval_time, round,
                                  static_cast<std::int64_t>(active.size()));
    contexts.clear();
    context_owner.clear();
    sequences.clear();
    for (std::size_t a = 0; a < active.size(); ++a) {
      auto& node = *nodes_[active[a]];
      ++stats_[active[a]].evaluations;
      if (!symptom_.empty() && !node.trace().samples().empty()) {
        contexts.push_back(node.symptom_context(config_.mea.context_samples));
        contexts.back().origin = active[a];
        contexts.back().ordinal = stats_[active[a]].evaluations;
        context_owner.push_back(a);
      }
      if (!event_.empty()) {
        sequences.push_back(
            node.error_sequence(config_.mea.windows.data_window));
        sequences.back().origin = active[a];
        sequences.back().ordinal = stats_[active[a]].evaluations;
      }
    }
    if (!symptom_.empty()) {
      inst_.batch_size_hist->observe(static_cast<double>(contexts.size()));
    }
    if (!event_.empty()) {
      inst_.batch_size_hist->observe(static_cast<double>(sequences.size()));
    }

    // Breaker scheduling: open breakers sit out their cooldown, then get
    // one half-open probe round; closed (and probing) predictors score.
    live.clear();
    for (std::size_t p = 0; p < num_predictors; ++p) {
      if (hardened && breakers_[p].open && breakers_[p].open_rounds_left > 0) {
        --breakers_[p].open_rounds_left;
        continue;
      }
      live.push_back(p);
    }

    auto score_live = [&](std::size_t lp) {
      const std::size_t p = live[lp];
      auto& column = columns[p];
      obs::ScopedSpan span(tracer, obs::SpanKind::kScoreBatch,
                           obs::predictor_track(p), eval_time);
      if (p < symptom_.size()) {
        column.resize(contexts.size());
        if (optimized) {
          symptom_[p]->score_batch(contexts, column, batch_scratch_[p]);
        } else {
          symptom_[p]->score_batch(contexts, column);
        }
      } else {
        column.resize(sequences.size());
        const auto& ep = *event_[p - symptom_.size()];
        if (optimized) {
          ep.score_batch(sequences, column, batch_scratch_[p]);
        } else {
          ep.score_batch(sequences, column);
        }
      }
      span.set_arg(static_cast<std::int64_t>(column.size()));
    };
    if (hardened) {
      pool_.parallel_for_captured(live.size(), score_live, errors);
    } else {
      pool_.parallel_for(live.size(), score_live);
    }

    // Per-predictor outcome: a throw or any non-finite score is a faulty
    // round feeding the breaker; a clean round closes/heals it.
    combined.assign(active.size(), 0.0);
    for (std::size_t lp = 0; lp < live.size(); ++lp) {
      const std::size_t p = live[lp];
      const bool threw = hardened && errors[lp] != nullptr;
      bool faulty = threw;
      if (!threw) {
        const auto& column = columns[p];
        const std::size_t n = column.size();
        inst_.scores_total->inc(n);
        if (p < symptom_.size()) {
          for (std::size_t c = 0; c < n; ++c) {
            const double v = column[c];
            if (hardened && !std::isfinite(v)) {
              inst_.scores_sanitized_total->inc();
              faulty = true;
              continue;
            }
            combined[context_owner[c]] =
                std::max(combined[context_owner[c]], v);
          }
        } else {
          for (std::size_t a = 0; a < n; ++a) {
            const double v = column[a];
            if (hardened && !std::isfinite(v)) {
              inst_.scores_sanitized_total->inc();
              faulty = true;
              continue;
            }
            combined[a] = std::max(combined[a], v);
          }
        }
      }
      if (!hardened) continue;
      auto& breaker = breakers_[p];
      if (faulty) {
        inst_.predictor_faults_total->inc();
        bool tripped = false;
        if (breaker.open) {
          // Half-open probe failed: back to a full cooldown.
          breaker.open_rounds_left = res.breaker_open_rounds;
          inst_.breaker_trips_total->inc();
          obs::record_instant(tracer, obs::SpanKind::kBreakerTrip,
                              obs::predictor_track(p), eval_time, round);
          tripped = true;
        } else if (++breaker.failure_streak >= res.breaker_trip_failures) {
          breaker.open = true;
          breaker.open_rounds_left = res.breaker_open_rounds;
          inst_.breaker_trips_total->inc();
          obs::record_instant(tracer, obs::SpanKind::kBreakerTrip,
                              obs::predictor_track(p), eval_time, round);
          tripped = true;
        }
        if (tripped && flight_ != nullptr) {
          // A trip is an incident: the lane's ring (ending in the trip
          // itself) becomes a post-mortem.
          flight_->record_lane(
              p, obs::FlightEvent{eval_time,
                                  obs::FlightEventKind::kBreakerTrip, round,
                                  static_cast<std::int64_t>(
                                      breaker.failure_streak),
                                  0.0});
          flight_->dump_lane(p, "breaker", eval_time);
        }
      } else {
        if (breaker.open) {
          // A successful half-open probe closes the breaker.
          obs::record_instant(tracer, obs::SpanKind::kBreakerClose,
                              obs::predictor_track(p), eval_time, round);
          if (flight_ != nullptr) {
            flight_->record_lane(
                p, obs::FlightEvent{eval_time,
                                    obs::FlightEventKind::kBreakerClose,
                                    round, 0, 0.0});
          }
        }
        breaker.open = false;
        breaker.failure_streak = 0;
      }
    }
    if (member_active_) {
      // The elasticity policy reads these at the next barrier (drain
      // signal per node, summed failure mass fleet-wide).
      for (std::size_t a = 0; a < active.size(); ++a) {
        last_combined_[active[a]] = combined[a];
      }
    }
    if (flight_ != nullptr) {
      for (std::size_t a = 0; a < active.size(); ++a) {
        const std::size_t i = active[a];
        flight_->record_node(
            i, obs::FlightEvent{nodes_[i]->now(),
                                obs::FlightEventKind::kScore, 0, 0,
                                combined[a]});
      }
    }
    // Quality: record this round's evaluation instants. Per-predictor
    // lanes get their own column value (NaN when the predictor sat out —
    // open breaker, a throw, or a sanitized non-finite score); the
    // trailing combined lane gets the max-reduced score the warning
    // decision actually thresholds.
    if (quality_ != nullptr) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      scored_.assign(num_predictors, 0);
      for (std::size_t lp = 0; lp < live.size(); ++lp) {
        if (!hardened || errors[lp] == nullptr) scored_[live[lp]] = 1;
      }
      ctx_of_active_.assign(active.size(), -1);
      for (std::size_t c = 0; c < context_owner.size(); ++c) {
        ctx_of_active_[context_owner[c]] = static_cast<std::ptrdiff_t>(c);
      }
      for (std::size_t a = 0; a < active.size(); ++a) {
        const std::size_t i = active[a];
        for (std::size_t p = 0; p < num_predictors; ++p) {
          double v = nan;
          if (scored_[p] != 0) {
            if (p < symptom_.size()) {
              const std::ptrdiff_t c = ctx_of_active_[a];
              if (c >= 0) v = columns[p][static_cast<std::size_t>(c)];
            } else {
              v = columns[p][a];
            }
            if (!std::isfinite(v)) v = nan;
          }
          quality_row_[p] = v;
        }
        quality_row_[num_predictors] = combined[a];
        quality_->observe(i, nodes_[i]->now(), quality_row_.data());
      }
    }
    }  // evaluate_span
    inst_.evaluate_latency->observe(seconds_since(evaluate_start));
    if (optimized) {
      // Footprint accounting: after warm-up the arenas stop growing, so
      // this settles to zero new events (the stress suite asserts it).
      const std::size_t bytes = scratch_capacity_bytes();
      if (bytes > scratch_bytes_seen_) {
        ++scratch_grow_events_;
        scratch_bytes_seen_ = bytes;
        scratch_bytes_gauge_->set(static_cast<double>(bytes));
      }
    }

    // --- Act: warned nodes run their own countermeasure engines. ------------
    const auto act_start = Clock::now();
    {
      obs::ScopedSpan act_span(tracer, obs::SpanKind::kActStage,
                               obs::kFleetTrack, eval_time, round);
      std::int64_t warned = 0;
      for (std::size_t a = 0; a < active.size(); ++a) {
        if (combined[a] < threshold) continue;
        ++warned;
        inst_.warnings_total->inc();
        obs::record_instant(tracer, obs::SpanKind::kWarning,
                            obs::node_track(active[a]),
                            nodes_[active[a]]->now(), 0,
                            static_cast<std::int64_t>(combined[a] * 1e6));
        if (flight_ != nullptr) {
          flight_->record_node(
              active[a],
              obs::FlightEvent{nodes_[active[a]]->now(),
                               obs::FlightEventKind::kWarning, 0,
                               static_cast<std::int64_t>(combined[a] * 1e6),
                               combined[a]});
        }
      }
      act_span.set_arg(warned);
      auto act_node = [&](std::size_t a) {
        if (combined[a] < threshold) return;
        const std::size_t i = active[a];
        ++stats_[i].warnings;
        engines_[i].act(*nodes_[i], combined[a], config_.mea, stats_[i]);
      };
      if (hardened) {
        pool_.parallel_for_captured(active.size(), act_node, errors);
        for (std::size_t a = 0; a < active.size(); ++a) {
          if (!errors[a]) continue;
          inst_.node_faults_total->inc();
          quarantine(active[a], describe(errors[a]));
        }
      } else {
        pool_.parallel_for(active.size(), act_node);
      }
    }
    inst_.act_latency->observe(seconds_since(act_start));
  }

  // Scrape-facing level gauges, refreshed when the loop settles (gauges
  // are controller-thread instruments).
  std::size_t quarantined = 0;
  for (const auto& state : node_state_) {
    if (state.quarantined) ++quarantined;
  }
  quarantined_gauge_->set(static_cast<double>(quarantined));
  std::size_t open = 0;
  for (const auto& breaker : breakers_) {
    if (breaker.open) ++open;
  }
  breakers_open_gauge_->set(static_cast<double>(open));
  refresh_quality_gauges();
}

void FleetController::ensure_shards() {
  if (!shards_.empty()) return;
  layout_ = core::ShardLayout(nodes_.size(), config_.num_shards);
  auto& metrics = obs_->metrics();
  const bool multi = config_.num_shards > 1;
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    ShardEnv env;
    env.config = &config_;
    env.nodes = &nodes_;
    env.engines = &engines_;
    env.stats = &stats_;
    env.symptom = &symptom_;
    env.event = &event_;
    env.obs = obs_;
    env.inst = inst_;
    // A single-shard fleet records its stage spans on the fleet track and
    // registers no shard-labelled metrics, keeping its exports identical
    // to the lockstep loop's.
    const std::uint32_t track =
        multi ? obs::shard_track(s) : obs::kFleetTrack;
    auto shard = std::make_unique<ShardController>(
        env, s, layout_.begin(s), layout_.size(s), track);
    if (multi) {
      const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
      shard->set_shard_metrics(
          &metrics.counter("pfm_shard_ticks_total" + label),
          &metrics.counter("pfm_shard_node_steps_total" + label));
      metrics.gauge("pfm_shard_nodes" + label)
          .set(static_cast<double>(layout_.size(s)));
      if (member_active_) {
        ShardMemberCounters counters;
        counters.joined =
            &metrics.counter("pfm_shard_membership_joined_total" + label);
        counters.left =
            &metrics.counter("pfm_shard_membership_left_total" + label);
        counters.handoffs =
            &metrics.counter("pfm_shard_membership_handoffs_total" + label);
        shard_member_counters_.push_back(counters);
      }
    }
    shards_.push_back(std::move(shard));
  }
}

void FleetController::run_event_driven(double t) {
  // Membership barriers touch the role-guarded banks (restart resets,
  // member_state routing); this thread is the controller between the
  // parallel epoch sections, exactly like the lockstep loop.
  RoleGuard controller_guard(controller_);
  ensure_shards();
  ensure_observers_ready();
  const double interval = config_.mea.evaluation_interval;
  const std::size_t num_predictors = symptom_.size() + event_.size();
  for (auto& shard : shards_) {
    shard->resize_predictors(num_predictors);
    // Each shard records breaker incidents into its own flight lane bank
    // (per-shard breakers trip independently).
    shard->set_quality(quality_.get(), flight_,
                       shard->shard_index() * num_predictors);
    shard->activate(t);
  }
  for (;;) {
    // Membership barrier on the epoch grid: before the k-th epoch the
    // clock reads epoch_end_tick_ (= k * epoch_ticks) intervals — the
    // same schedule the lockstep loop derives from its round counter.
    // Every shard's calendar cursor sits on this shared tick here, which
    // is what makes the reshard handoff's calendar rebuild exact.
    if (member_active_) {
      membership_barrier(
          static_cast<double>(epoch_end_tick_) * interval, t);
    }
    bool all_idle = true;
    for (const auto& shard : shards_) {
      if (!shard->idle()) {
        all_idle = false;
        break;
      }
    }
    if (all_idle) {
      if (!member_active_ || !membership_pending(t)) break;
      // Idle epoch while churn is still due: advance only the membership
      // clock (no work ran, so the epochs counter — a count of
      // synchronization points that did work — stays put, matching the
      // lockstep loop's idle rounds).
      epoch_end_tick_ += config_.epoch_ticks;
      continue;
    }
    // One cross-shard epoch: every shard drains its calendar up to the
    // shared barrier tick in parallel (one pool thread per shard; all
    // state a shard touches is shard-local, so the pool handshake is the
    // only synchronization). With resilience enabled shards absorb
    // component faults internally and never throw; fail-fast mode
    // propagates the first fault, like the lockstep loop.
    inst_.epochs_total->inc();
    epoch_end_tick_ += config_.epoch_ticks;
    const std::uint64_t end_tick = epoch_end_tick_;
    pool_.parallel_for(shards_.size(),
                       [&](std::size_t s) { shards_[s]->run_epoch(end_tick, t); });
  }

  // Scrape-facing level gauges, refreshed when the loop settles (gauges
  // are controller-thread instruments).
  std::size_t quarantined = 0;
  std::size_t open = 0;
  for (const auto& shard : shards_) {
    quarantined += shard->quarantined_nodes();
    open += shard->open_breakers();
  }
  quarantined_gauge_->set(static_cast<double>(quarantined));
  breakers_open_gauge_->set(static_cast<double>(open));
  if (config_.path != FleetPath::kReference) {
    scratch_bytes_gauge_->set(
        static_cast<double>(scratch_capacity_bytes()));
  }
  refresh_quality_gauges();
}

bool FleetController::membership_pending(double t) const {
  return next_member_change_ < member_timeline_.size() &&
         member_timeline_[next_member_change_].at_time <= t;
}

void FleetController::membership_barrier(double member_now, double t) {
  // Planned churn first (the declared scenario), then the closed loop's
  // own decisions, then — if the structure changed — one reshard with
  // warm handoff and a reactivation pass that schedules fresh slots.
  while (next_member_change_ < member_timeline_.size()) {
    const auto& change = member_timeline_[next_member_change_];
    if (change.at_time > member_now || change.at_time > t) break;
    apply_member_change(change, member_now);
    ++next_member_change_;
  }
  evaluate_policy(member_now);
  if (layout_dirty_) {
    reshard(member_now);
    for (auto& shard : shards_) shard->activate(t);
    layout_dirty_ = false;
  }
  nodes_gauge_->set(static_cast<double>(live_nodes_));
}

void FleetController::apply_member_change(
    const membership::MemberChange& change, double member_now) {
  using membership::ChurnKind;
  if (change.kind == ChurnKind::kJoin) {
    member_join(member_now, /*policy_driven=*/false);
    return;
  }
  if (change.node >= nodes_.size()) {
    throw std::out_of_range("MembershipPlan: change targets unknown node " +
                            std::to_string(change.node));
  }
  if (!shards_.empty() && change.node >= layout_.num_nodes) {
    // The target joined earlier in this same barrier; give it a shard
    // slot before touching its state.
    reshard(member_now);
  }
  switch (change.kind) {
    case ChurnKind::kLeave:
      member_depart(change.node, member_now, /*drain=*/false, 0);
      break;
    case ChurnKind::kDrain:
      member_depart(change.node, member_now, /*drain=*/true, 1);
      break;
    case ChurnKind::kRestart:
      member_restart(change.node, member_now);
      break;
    case ChurnKind::kJoin:
      break;  // handled above
  }
}

std::size_t FleetController::member_join(double at_time, bool policy_driven) {
  const std::size_t slot = nodes_.size();
  membership::JoinContext ctx;
  ctx.node = slot;
  ctx.incarnation = 0;
  ctx.at_time = at_time;
  ctx.seed =
      membership::derive_member_seed(config_.membership.plan.seed, slot, 0);
  ctx.policy_driven = policy_driven;
  auto node = config_.membership.factory(ctx);
  if (!node) {
    throw std::invalid_argument(
        "FleetController: membership factory returned a null node");
  }
  nodes_.push_back(std::move(node));
  engines_.emplace_back();
  auto& engine = engines_.back();
  for (const auto& f : action_factories_) engine.add_action(f());
  engine.set_observability(obs_, obs::node_track(slot));
  if (quality_ != nullptr) quality_->ensure_nodes(slot + 1);
  if (flight_ != nullptr) {
    flight_->ensure_nodes(slot + 1);
    engine.set_flight(flight_, slot);
    flight_->record_node(
        slot, obs::FlightEvent{at_time, obs::FlightEventKind::kMemberJoin, 0,
                               policy_driven ? 1 : 0, 0.0});
  }
  stats_.emplace_back();
  node_state_.emplace_back();
  incarnations_.push_back(0);
  last_combined_.push_back(0.0);
  ++live_nodes_;
  layout_dirty_ = true;
  member_joined_total_->inc();
  obs::record_instant(obs_->tracer(), obs::SpanKind::kMemberJoin,
                      obs::node_track(slot), at_time, 0,
                      policy_driven ? 1 : 0);
  return slot;
}

void FleetController::member_depart(std::size_t i, double at_time, bool drain,
                                    std::int64_t leave_arg) {
  FleetNodeState& state = member_state(i);
  if (state.departed) {
    throw std::invalid_argument("FleetController: node " + std::to_string(i) +
                                " already departed");
  }
  if (drain) {
    member_drains_total_->inc();
    // Graceful removal: let the system persist state first — unless it
    // is quarantined (crashed/hung systems get no goodbye call).
    if (!state.quarantined && !nodes_[i]->finished()) {
      if (config_.resilience.enabled) {
        try {
          nodes_[i]->prepare_for_drain();
        } catch (...) {  // pfm-lint: allow(concurrency) — barrier-time
                         // capture; the node is leaving either way, a
                         // failing goodbye only counts as a node fault
          inst_.node_faults_total->inc();
        }
      } else {
        nodes_[i]->prepare_for_drain();
      }
    }
  }
  state.departed = true;
  state.depart_time = at_time;
  --live_nodes_;
  member_left_total_->inc();
  if (!shard_member_counters_.empty()) {
    shard_member_counters_[layout_.shard_of(i)].left->inc();
  }
  obs::record_instant(obs_->tracer(), obs::SpanKind::kMemberLeave,
                      obs::node_track(i), at_time,
                      static_cast<std::uint32_t>(incarnations_[i]),
                      leave_arg);
  if (flight_ != nullptr) {
    flight_->record_node(
        i, obs::FlightEvent{at_time,
                            drain ? obs::FlightEventKind::kMemberDrain
                                  : obs::FlightEventKind::kMemberLeave,
                            static_cast<std::uint32_t>(incarnations_[i]),
                            leave_arg, 0.0});
    // A drain is a farewell worth keeping: dump the departing node's
    // recent history as its post-mortem.
    if (drain) flight_->dump_node(i, "drain", at_time);
  }
}

void FleetController::member_restart(std::size_t i, double at_time) {
  FleetNodeState& state = member_state(i);
  if (state.departed) {
    throw std::invalid_argument(
        "FleetController: restart of departed node " + std::to_string(i));
  }
  retired_system_stats_ += nodes_[i]->system_stats();
  const std::size_t incarnation = ++incarnations_[i];
  membership::JoinContext ctx;
  ctx.node = i;
  ctx.incarnation = incarnation;
  ctx.at_time = at_time;
  ctx.seed = membership::derive_member_seed(config_.membership.plan.seed, i,
                                            incarnation);
  ctx.policy_driven = false;
  auto fresh = config_.membership.factory(ctx);
  if (!fresh) {
    throw std::invalid_argument(
        "FleetController: membership factory returned a null node");
  }
  nodes_[i] = std::move(fresh);
  engines_[i] = core::ActEngine{};
  for (const auto& f : action_factories_) engines_[i].add_action(f());
  engines_[i].set_observability(obs_, obs::node_track(i));
  // The fresh incarnation starts with a clean quality window (cumulative
  // tallies persist, like the retired-stats ledger) and a flight ring
  // that keeps recording across the restart boundary.
  if (quality_ != nullptr) quality_->reset_node(i);
  if (flight_ != nullptr) {
    engines_[i].set_flight(flight_, i);
    flight_->record_node(
        i, obs::FlightEvent{at_time, obs::FlightEventKind::kMemberRestart,
                            static_cast<std::uint32_t>(incarnation), 0, 0.0});
  }
  // Explicit reset semantics (churn-vs-fault composition): a crashed or
  // hung incarnation's quarantine record, stall streak and sampling/
  // backoff state die with it — the fresh incarnation starts clean and
  // dense. Only MeaStats stays cumulative, so injection decision-stream
  // ordinals keep rising and never replay.
  state = FleetNodeState{};
  if (!shards_.empty()) {
    const std::size_t s = layout_.shard_of(i);
    shards_[s]->node_sched_mut(i - layout_.begin(s)) = NodeSchedule{};
    // Its stale calendar entry is dropped by the barrier's reshard
    // rebuild (layout_dirty_ below forces one).
  }
  last_combined_[i] = 0.0;
  layout_dirty_ = true;
  member_left_total_->inc();
  member_joined_total_->inc();
  if (!shard_member_counters_.empty()) {
    const auto& counters = shard_member_counters_[layout_.shard_of(i)];
    counters.left->inc();
    counters.joined->inc();
  }
  obs::record_instant(obs_->tracer(), obs::SpanKind::kMemberLeave,
                      obs::node_track(i), at_time,
                      static_cast<std::uint32_t>(incarnation - 1), 2);
  obs::record_instant(obs_->tracer(), obs::SpanKind::kMemberJoin,
                      obs::node_track(i), at_time,
                      static_cast<std::uint32_t>(incarnation), 0);
}

void FleetController::evaluate_policy(double member_now) {
  const membership::ElasticityPolicy& policy = config_.membership.policy;
  if (!policy.enabled) return;
  if (policy_cooldown_left_ > 0) {
    --policy_cooldown_left_;
    return;
  }
  bool acted = false;
  // Slots joined earlier in this barrier have no scores yet; they are
  // excluded until the reshard gives them shard state.
  const std::size_t limit =
      !shards_.empty() ? layout_.num_nodes : nodes_.size();

  // Drain-and-failover: nodes whose failure probability crossed the
  // drain threshold leave gracefully; a fresh replacement joins at once.
  if (policy.drain_score >= 0.0) {
    for (std::size_t i = 0; i < limit; ++i) {
      const FleetNodeState& state = member_state(i);
      if (state.quarantined || state.departed) continue;
      const double score = member_score(i);
      if (score < policy.drain_score) continue;
      obs::record_instant(obs_->tracer(), obs::SpanKind::kDrainNode,
                          obs::node_track(i), member_now, 0,
                          static_cast<std::int64_t>(score * 1e6));
      member_depart(i, member_now, /*drain=*/true, 1);
      if (policy.failover_replace && policy_joins_ < policy.max_policy_joins) {
        ++policy_joins_;
        member_join(member_now, /*policy_driven=*/true);
      }
      acted = true;
    }
  }

  // Preventive scale-up: the Eq. 8 machinery as a capacity actuator —
  // when the fleet's summed failure-probability mass crosses the
  // threshold, add headroom before the failures land.
  if (policy.scale_up_mass >= 0.0 && policy_joins_ < policy.max_policy_joins) {
    double mass = 0.0;
    if (!shards_.empty()) {
      for (const auto& shard : shards_) mass += shard->score_mass();
    } else {
      for (std::size_t i = 0; i < limit; ++i) {
        if (node_state_[i].quarantined || node_state_[i].departed) continue;
        mass += last_combined_[i];
      }
    }
    if (mass >= policy.scale_up_mass) {
      const std::size_t count = std::min(
          policy.scale_up_nodes, policy.max_policy_joins - policy_joins_);
      member_scale_ups_total_->inc();
      obs::record_instant(obs_->tracer(), obs::SpanKind::kScaleUp,
                          obs::kFleetTrack, member_now,
                          static_cast<std::uint32_t>(count),
                          static_cast<std::int64_t>(mass * 1e6));
      for (std::size_t k = 0; k < count; ++k) {
        ++policy_joins_;
        member_join(member_now, /*policy_driven=*/true);
      }
      acted = true;
    }
  }
  if (acted) policy_cooldown_left_ = policy.cooldown_epochs;
}

void FleetController::reshard(double member_now) {
  if (shards_.empty()) return;  // lockstep keeps global state; nothing to do
  const core::ShardLayout old_layout = layout_;
  const core::ShardLayout new_layout(nodes_.size(), config_.num_shards);
  // Export every slot's shard-owned state while all calendar cursors sit
  // on the shared barrier tick (run_epoch leaves each cursor at the
  // epoch end, so pending due ticks are all >= every shard's cursor).
  std::vector<NodeHandoff> handoff(old_layout.num_nodes);
  for (std::size_t i = 0; i < old_layout.num_nodes; ++i) {
    const std::size_t s = old_layout.shard_of(i);
    handoff[i] = shards_[s]->export_node(i - old_layout.begin(s));
  }
  auto& metrics = obs_->metrics();
  const bool multi = config_.num_shards > 1;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->reshape(new_layout.begin(s), new_layout.size(s));
    if (multi) {
      metrics.gauge("pfm_shard_nodes{shard=\"" + std::to_string(s) + "\"}")
          .set(static_cast<double>(new_layout.size(s)));
    }
  }
  obs::TraceRecorder* tracer = obs_->tracer();
  for (std::size_t i = 0; i < old_layout.num_nodes; ++i) {
    const std::size_t s = new_layout.shard_of(i);
    shards_[s]->import_node(i - new_layout.begin(s), handoff[i]);
    if (s != old_layout.shard_of(i) && !handoff[i].state.departed) {
      member_handoffs_total_->inc();
      if (!shard_member_counters_.empty()) {
        shard_member_counters_[s].handoffs->inc();
      }
      obs::record_instant(tracer, obs::SpanKind::kMemberHandoff,
                          obs::node_track(i), member_now, 0,
                          static_cast<std::int64_t>(s));
    }
  }
  // Joined slots enter their shard with fresh state; the barrier's
  // activate() pass schedules them at the shared cursor.
  for (std::size_t i = old_layout.num_nodes; i < new_layout.num_nodes; ++i) {
    if (!shard_member_counters_.empty()) {
      shard_member_counters_[new_layout.shard_of(i)].joined->inc();
    }
  }
  layout_ = new_layout;
}

FleetNodeState& FleetController::member_state(std::size_t i) {
  if (!shards_.empty() && i < layout_.num_nodes) {
    const std::size_t s = layout_.shard_of(i);
    return shards_[s]->node_state_mut(i - layout_.begin(s));
  }
  return node_state_.at(i);
}

double FleetController::member_score(std::size_t i) const {
  if (!shards_.empty() && i < layout_.num_nodes) {
    const std::size_t s = layout_.shard_of(i);
    return shards_[s]->node_sched(i - layout_.begin(s)).last_score;
  }
  return last_combined_.at(i);
}

bool FleetController::node_departed(std::size_t i) const {
  RoleGuard guard(controller_);
  if (!shards_.empty() && i < layout_.num_nodes) {
    const std::size_t s = layout_.shard_of(i);
    return shards_[s]->node_state(i - layout_.begin(s)).departed;
  }
  return node_state_.at(i).departed;
}

std::size_t FleetController::node_incarnation(std::size_t i) const {
  if (i >= nodes_.size()) {
    throw std::out_of_range("FleetController: bad node index");
  }
  return i < incarnations_.size() ? incarnations_[i] : 0;
}

bool FleetController::node_quarantined(std::size_t i) const {
  RoleGuard guard(controller_);
  if (!shards_.empty()) {
    const std::size_t s = layout_.shard_of(i);
    return shards_[s]->node_state(i - layout_.begin(s)).quarantined;
  }
  return node_state_.at(i).quarantined;
}

const std::string& FleetController::node_quarantine_reason(
    std::size_t i) const {
  RoleGuard guard(controller_);
  if (!shards_.empty()) {
    const std::size_t s = layout_.shard_of(i);
    return shards_[s]->node_state(i - layout_.begin(s)).reason;
  }
  return node_state_.at(i).reason;
}

bool FleetController::predictor_tripped(std::size_t p) const {
  RoleGuard guard(controller_);
  if (p < breakers_.size() && breakers_[p].open) return true;
  for (const auto& shard : shards_) {
    if (shard->breaker_open(p)) return true;
  }
  return false;
}

std::size_t FleetController::scratch_capacity_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& s : batch_scratch_) total += s.capacity_bytes();
  for (const auto& shard : shards_) total += shard->scratch_capacity_bytes();
  return total;
}

std::size_t FleetController::scratch_grow_events() const noexcept {
  std::size_t total = scratch_grow_events_;
  for (const auto& shard : shards_) total += shard->scratch_grow_events();
  return total;
}

FleetTelemetry FleetController::telemetry() const {
  RoleGuard guard(controller_);
  FleetTelemetry out;
  out.nodes = live_nodes_;
  // Counter-valued fields are views over the metrics registry — the same
  // numbers a Prometheus scrape of the hub reports.
  out.rounds = inst_.rounds_total->value();
  out.epochs = inst_.epochs_total->value();
  out.node_steps = inst_.node_steps_total->value();
  out.scores_computed = inst_.scores_total->value();
  out.warnings_raised = inst_.warnings_total->value();
  out.latency.monitor_seconds = inst_.monitor_latency->sum();
  out.latency.evaluate_seconds = inst_.evaluate_latency->sum();
  out.latency.act_seconds = inst_.act_latency->sum();
  out.resilience.node_faults = inst_.node_faults_total->value();
  out.resilience.stall_detections = inst_.stall_detections_total->value();
  out.resilience.predictor_faults = inst_.predictor_faults_total->value();
  out.resilience.breaker_trips = inst_.breaker_trips_total->value();
  out.resilience.scores_sanitized = inst_.scores_sanitized_total->value();
  // Level counts live wherever the scheduler keeps its state: the
  // lockstep banks, the shard banks, or both (one of them is all-zero).
  for (const auto& state : node_state_) {
    if (state.quarantined) ++out.resilience.nodes_quarantined;
  }
  for (const auto& breaker : breakers_) {
    if (breaker.open) ++out.resilience.breakers_open;
  }
  for (const auto& shard : shards_) {
    out.resilience.nodes_quarantined += shard->quarantined_nodes();
    out.resilience.breakers_open += shard->open_breakers();
  }
  if (member_joined_total_ != nullptr) {
    out.membership.nodes_joined = member_joined_total_->value();
    out.membership.nodes_left = member_left_total_->value();
    out.membership.handoffs = member_handoffs_total_->value();
    out.membership.scale_ups = member_scale_ups_total_->value();
    out.membership.drains = member_drains_total_->value();
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.mea += stats_[i];
    out.system += nodes_[i]->system_stats();
  }
  // Restarted slots: their previous incarnations' work is accumulated
  // here so fleet totals never go backwards across a restart.
  out.system += retired_system_stats_;
  return out;
}

}  // namespace pfm::runtime
