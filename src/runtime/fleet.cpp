#include "runtime/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "runtime/shard.hpp"

namespace pfm::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

FleetController::FleetController(
    std::vector<std::unique_ptr<core::ManagedSystem>> nodes,
    FleetConfig config)
    : nodes_(std::move(nodes)),
      config_(std::move(config)),
      engines_(nodes_.size()),
      stats_(nodes_.size()),
      pool_(config_.num_threads,
            ThreadPoolOptions{
                .persistent = config_.path == FleetPath::kOptimized}),
      node_state_(nodes_.size()) {
  if (nodes_.empty()) {
    throw std::invalid_argument("FleetController: empty fleet");
  }
  for (const auto& n : nodes_) {
    if (!n) throw std::invalid_argument("FleetController: null node");
  }
  config_.mea.windows.validate();
  if (config_.mea.evaluation_interval <= 0.0) {
    throw std::invalid_argument("FleetController: evaluation interval > 0");
  }
  if (config_.mea.warning_threshold < 0.0 ||
      config_.mea.warning_threshold > 1.0) {
    throw std::invalid_argument("FleetController: threshold in [0,1]");
  }
  if (config_.num_shards == 0) {
    throw std::invalid_argument("FleetController: num_shards must be >= 1");
  }
  if (config_.epoch_ticks == 0) {
    throw std::invalid_argument("FleetController: epoch_ticks must be >= 1");
  }
  config_.schedule.validate();
  if (config_.scheduler == FleetScheduler::kEventDriven &&
      config_.num_shards > nodes_.size()) {
    throw std::invalid_argument(
        "FleetController: more shards than nodes (need at least one node "
        "per shard)");
  }

  // Observability: use the caller's hub when given (it must have a shard
  // for every pool thread, or two workers would share a slot and race);
  // otherwise keep a private metrics-only hub so telemetry() always has
  // a registry behind it. Handle registration happens here, once, on the
  // controller thread — the hot loop only bumps prebuilt handles.
  if (config_.obs != nullptr) {
    if (config_.obs->shards() < pool_.num_threads()) {
      throw std::invalid_argument(
          "FleetController: observability hub has fewer shards than the "
          "pool has threads");
    }
    obs_ = config_.obs;
  } else {
    obs::ObservabilityConfig fallback;
    fallback.shards = pool_.num_threads();
    fallback.trace_capacity = 0;
    owned_obs_ = std::make_unique<obs::Observability>(fallback);
    obs_ = owned_obs_.get();
  }
  auto& metrics = obs_->metrics();
  inst_.rounds_total = &metrics.counter("pfm_fleet_rounds_total");
  inst_.epochs_total = &metrics.counter("pfm_fleet_epochs_total");
  inst_.node_steps_total = &metrics.counter("pfm_fleet_node_steps_total");
  inst_.scores_total = &metrics.counter("pfm_fleet_scores_total");
  inst_.warnings_total = &metrics.counter("pfm_fleet_warnings_total");
  inst_.node_faults_total = &metrics.counter("pfm_fleet_node_faults_total");
  inst_.stall_detections_total =
      &metrics.counter("pfm_fleet_stall_detections_total");
  inst_.quarantines_total = &metrics.counter("pfm_fleet_quarantines_total");
  inst_.predictor_faults_total =
      &metrics.counter("pfm_fleet_predictor_faults_total");
  inst_.breaker_trips_total =
      &metrics.counter("pfm_fleet_breaker_trips_total");
  inst_.scores_sanitized_total =
      &metrics.counter("pfm_fleet_scores_sanitized_total");
  const obs::HistogramSpec latency_spec;  // 1µs..~17s log-scale, 1ns ticks
  inst_.monitor_latency = &metrics.histogram(
      "pfm_stage_latency_seconds{stage=\"monitor\"}", latency_spec);
  inst_.evaluate_latency = &metrics.histogram(
      "pfm_stage_latency_seconds{stage=\"evaluate\"}", latency_spec);
  inst_.act_latency = &metrics.histogram(
      "pfm_stage_latency_seconds{stage=\"act\"}", latency_spec);
  nodes_gauge_ = &metrics.gauge("pfm_fleet_nodes");
  nodes_gauge_->set(static_cast<double>(nodes_.size()));
  quarantined_gauge_ = &metrics.gauge("pfm_fleet_quarantined_nodes");
  breakers_open_gauge_ = &metrics.gauge("pfm_fleet_open_breakers");
  // Evaluate batch sizes are pure functions of sim state (identical on
  // both paths and at every thread count), so the histogram lives on the
  // sim clock and participates in the deterministic exports.
  obs::HistogramSpec batch_spec;
  batch_spec.first_bound = 1.0;
  batch_spec.factor = 2.0;
  batch_spec.num_buckets = 12;
  batch_spec.resolution = 1.0;
  inst_.batch_size_hist = &metrics.histogram("pfm_fleet_batch_size",
                                             batch_spec, obs::Clock::kSim);
  // Arena footprint differs between paths by design — wall clock keeps
  // it out of the include_wall=false exports the conformance suite pins.
  scratch_bytes_gauge_ =
      &metrics.gauge("pfm_fleet_scratch_bytes", obs::Clock::kWall);
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    engines_[i].set_observability(obs_, obs::node_track(i));
  }
}

FleetController::~FleetController() = default;

void FleetController::add_symptom_predictor(
    std::shared_ptr<const pred::SymptomPredictor> p) {
  if (!p) throw std::invalid_argument("FleetController: null predictor");
  symptom_.push_back(std::move(p));
}

void FleetController::add_event_predictor(
    std::shared_ptr<const pred::EventPredictor> p) {
  if (!p) throw std::invalid_argument("FleetController: null predictor");
  event_.push_back(std::move(p));
}

void FleetController::add_action(
    const std::function<std::unique_ptr<act::Action>()>& factory) {
  if (!factory) throw std::invalid_argument("FleetController: null factory");
  for (auto& engine : engines_) engine.add_action(factory());
}

void FleetController::run() {
  double horizon = 0.0;
  for (const auto& n : nodes_) horizon = std::max(horizon, n->horizon());
  run_until(horizon);
}

void FleetController::run_until(double t) {
  if (config_.scheduler == FleetScheduler::kEventDriven) {
    run_event_driven(t);
  } else {
    run_lockstep(t);
  }
}

std::string FleetController::describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {  // pfm-lint: allow(concurrency) — describing an already
                   // captured exception_ptr; nothing is swallowed here
    return "unknown error";
  }
}

void FleetController::quarantine(std::size_t node_index,
                                 const std::string& reason) {
  auto& state = node_state_[node_index];
  if (state.quarantined) return;
  state.quarantined = true;
  state.reason = reason;
  state.quarantine_time = nodes_[node_index]->now();
  inst_.quarantines_total->inc();
  obs::record_instant(obs_->tracer(), obs::SpanKind::kQuarantine,
                      obs::node_track(node_index), state.quarantine_time);
}

void FleetController::run_lockstep(double t) {
  // This thread is the controller for the whole run: quarantine, breaker
  // and telemetry state below is only ever touched between the parallel
  // sections (never from the worker lambdas handed to pool_).
  RoleGuard controller_guard(controller_);
  const double interval = config_.mea.evaluation_interval;
  const double threshold = config_.mea.warning_threshold;
  const ResilienceConfig& res = config_.resilience;
  const bool hardened = res.enabled;

  // Breakers persist across run_until calls; predictors may have been
  // registered since the last call.
  const std::size_t num_predictors = symptom_.size() + event_.size();
  breakers_.resize(num_predictors);
  columns_.resize(num_predictors);
  batch_scratch_.resize(num_predictors);
  const bool optimized = config_.path == FleetPath::kOptimized;

  // The round scratch lives in members (reused across rounds and calls);
  // the aliases keep the loop body readable.
  std::vector<std::size_t>& active = active_;
  std::vector<double>& pre_step_time = pre_step_time_;
  std::vector<std::exception_ptr>& errors = round_errors_;
  std::vector<pred::SymptomContext>& contexts = contexts_;
  std::vector<std::size_t>& context_owner = context_owner_;
  std::vector<mon::ErrorSequence>& sequences = sequences_;
  std::vector<double>& combined = combined_;
  std::vector<std::vector<double>>& columns = columns_;
  std::vector<std::size_t>& live = live_;

  obs::TraceRecorder* tracer = obs_->tracer();

  for (;;) {
    active.clear();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (node_state_[i].quarantined) continue;
      if (!nodes_[i]->finished() && nodes_[i]->now() < t) active.push_back(i);
    }
    if (active.empty()) break;
    inst_.rounds_total->inc();
    // Under lockstep every round is a fleet-wide synchronization point
    // and every active node steps once, so epochs == rounds and
    // node_steps advances by the active count.
    inst_.epochs_total->inc();
    inst_.node_steps_total->inc(active.size());
    // Stage spans of one round share the round ordinal as their `sub`,
    // keeping them unique (and grouped) in the deterministic sort.
    const auto round = static_cast<std::uint32_t>(inst_.rounds_total->value());

    // --- Monitor: advance every live node one evaluation interval. ----------
    const auto monitor_start = Clock::now();
    pre_step_time.resize(active.size());
    double round_begin = nodes_[active[0]]->now();
    for (std::size_t a = 0; a < active.size(); ++a) {
      pre_step_time[a] = nodes_[active[a]]->now();
      round_begin = std::min(round_begin, pre_step_time[a]);
    }
    {
      obs::ScopedSpan monitor_span(tracer, obs::SpanKind::kMonitorStage,
                                   obs::kFleetTrack, round_begin, round,
                                   static_cast<std::int64_t>(active.size()));
      auto step_node = [&](std::size_t a) {
        const std::size_t i = active[a];
        auto& node = *nodes_[i];
        obs::ScopedSpan span(tracer, obs::SpanKind::kNodeStep,
                             obs::node_track(i), pre_step_time[a]);
        node.step_to(std::min(node.now() + interval, t));
        span.set_sim_end(node.now());
      };
      if (hardened) {
        pool_.parallel_for_captured(active.size(), step_node, errors);
        for (std::size_t a = 0; a < active.size(); ++a) {
          const std::size_t i = active[a];
          if (errors[a]) {
            inst_.node_faults_total->inc();
            quarantine(i, describe(errors[a]));
          } else if (!nodes_[i]->finished() &&
                     nodes_[i]->now() <= pre_step_time[a]) {
            // The node returned but made no time progress: a hang, not a
            // crash. Quarantine only after a persistent streak so a
            // transient stall can recover.
            inst_.stall_detections_total->inc();
            if (++node_state_[i].stall_streak >= res.max_stall_rounds) {
              quarantine(i, "stalled: no monitor progress for " +
                                std::to_string(node_state_[i].stall_streak) +
                                " rounds");
            }
          } else {
            node_state_[i].stall_streak = 0;
          }
        }
        // Nodes quarantined this round drop out of Evaluate/Act. (The
        // local alias keeps the lambda — analyzed as its own function —
        // off the role-guarded member; it runs inline on this thread.)
        const auto& node_state = node_state_;
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](std::size_t i) {
                                      return node_state[i].quarantined;
                                    }),
                     active.end());
      } else {
        pool_.parallel_for(active.size(), step_node);
      }
      double round_end = round_begin;
      for (const std::size_t i : active) {
        round_end = std::max(round_end, nodes_[i]->now());
      }
      monitor_span.set_sim_end(round_end);
    }
    inst_.monitor_latency->observe(seconds_since(monitor_start));
    if (active.empty()) continue;

    // --- Evaluate: one score_batch call per predictor over the fleet. -------
    const auto evaluate_start = Clock::now();
    // Scoring and acting happen "at" the round's post-Monitor instant; a
    // deterministic reduction over node clocks, so span timestamps stay
    // thread-count invariant.
    double eval_time = nodes_[active[0]]->now();
    for (const std::size_t i : active) {
      eval_time = std::max(eval_time, nodes_[i]->now());
    }
    {
    obs::ScopedSpan evaluate_span(tracer, obs::SpanKind::kEvaluateStage,
                                  obs::kFleetTrack, eval_time, round,
                                  static_cast<std::int64_t>(active.size()));
    contexts.clear();
    context_owner.clear();
    sequences.clear();
    for (std::size_t a = 0; a < active.size(); ++a) {
      auto& node = *nodes_[active[a]];
      ++stats_[active[a]].evaluations;
      if (!symptom_.empty() && !node.trace().samples().empty()) {
        contexts.push_back(node.symptom_context(config_.mea.context_samples));
        contexts.back().origin = active[a];
        contexts.back().ordinal = stats_[active[a]].evaluations;
        context_owner.push_back(a);
      }
      if (!event_.empty()) {
        sequences.push_back(
            node.error_sequence(config_.mea.windows.data_window));
        sequences.back().origin = active[a];
        sequences.back().ordinal = stats_[active[a]].evaluations;
      }
    }
    if (!symptom_.empty()) {
      inst_.batch_size_hist->observe(static_cast<double>(contexts.size()));
    }
    if (!event_.empty()) {
      inst_.batch_size_hist->observe(static_cast<double>(sequences.size()));
    }

    // Breaker scheduling: open breakers sit out their cooldown, then get
    // one half-open probe round; closed (and probing) predictors score.
    live.clear();
    for (std::size_t p = 0; p < num_predictors; ++p) {
      if (hardened && breakers_[p].open && breakers_[p].open_rounds_left > 0) {
        --breakers_[p].open_rounds_left;
        continue;
      }
      live.push_back(p);
    }

    auto score_live = [&](std::size_t lp) {
      const std::size_t p = live[lp];
      auto& column = columns[p];
      obs::ScopedSpan span(tracer, obs::SpanKind::kScoreBatch,
                           obs::predictor_track(p), eval_time);
      if (p < symptom_.size()) {
        column.resize(contexts.size());
        if (optimized) {
          symptom_[p]->score_batch(contexts, column, batch_scratch_[p]);
        } else {
          symptom_[p]->score_batch(contexts, column);
        }
      } else {
        column.resize(sequences.size());
        const auto& ep = *event_[p - symptom_.size()];
        if (optimized) {
          ep.score_batch(sequences, column, batch_scratch_[p]);
        } else {
          ep.score_batch(sequences, column);
        }
      }
      span.set_arg(static_cast<std::int64_t>(column.size()));
    };
    if (hardened) {
      pool_.parallel_for_captured(live.size(), score_live, errors);
    } else {
      pool_.parallel_for(live.size(), score_live);
    }

    // Per-predictor outcome: a throw or any non-finite score is a faulty
    // round feeding the breaker; a clean round closes/heals it.
    combined.assign(active.size(), 0.0);
    for (std::size_t lp = 0; lp < live.size(); ++lp) {
      const std::size_t p = live[lp];
      const bool threw = hardened && errors[lp] != nullptr;
      bool faulty = threw;
      if (!threw) {
        const auto& column = columns[p];
        const std::size_t n = column.size();
        inst_.scores_total->inc(n);
        if (p < symptom_.size()) {
          for (std::size_t c = 0; c < n; ++c) {
            const double v = column[c];
            if (hardened && !std::isfinite(v)) {
              inst_.scores_sanitized_total->inc();
              faulty = true;
              continue;
            }
            combined[context_owner[c]] =
                std::max(combined[context_owner[c]], v);
          }
        } else {
          for (std::size_t a = 0; a < n; ++a) {
            const double v = column[a];
            if (hardened && !std::isfinite(v)) {
              inst_.scores_sanitized_total->inc();
              faulty = true;
              continue;
            }
            combined[a] = std::max(combined[a], v);
          }
        }
      }
      if (!hardened) continue;
      auto& breaker = breakers_[p];
      if (faulty) {
        inst_.predictor_faults_total->inc();
        if (breaker.open) {
          // Half-open probe failed: back to a full cooldown.
          breaker.open_rounds_left = res.breaker_open_rounds;
          inst_.breaker_trips_total->inc();
          obs::record_instant(tracer, obs::SpanKind::kBreakerTrip,
                              obs::predictor_track(p), eval_time, round);
        } else if (++breaker.failure_streak >= res.breaker_trip_failures) {
          breaker.open = true;
          breaker.open_rounds_left = res.breaker_open_rounds;
          inst_.breaker_trips_total->inc();
          obs::record_instant(tracer, obs::SpanKind::kBreakerTrip,
                              obs::predictor_track(p), eval_time, round);
        }
      } else {
        if (breaker.open) {
          // A successful half-open probe closes the breaker.
          obs::record_instant(tracer, obs::SpanKind::kBreakerClose,
                              obs::predictor_track(p), eval_time, round);
        }
        breaker.open = false;
        breaker.failure_streak = 0;
      }
    }
    }  // evaluate_span
    inst_.evaluate_latency->observe(seconds_since(evaluate_start));
    if (optimized) {
      // Footprint accounting: after warm-up the arenas stop growing, so
      // this settles to zero new events (the stress suite asserts it).
      const std::size_t bytes = scratch_capacity_bytes();
      if (bytes > scratch_bytes_seen_) {
        ++scratch_grow_events_;
        scratch_bytes_seen_ = bytes;
        scratch_bytes_gauge_->set(static_cast<double>(bytes));
      }
    }

    // --- Act: warned nodes run their own countermeasure engines. ------------
    const auto act_start = Clock::now();
    {
      obs::ScopedSpan act_span(tracer, obs::SpanKind::kActStage,
                               obs::kFleetTrack, eval_time, round);
      std::int64_t warned = 0;
      for (std::size_t a = 0; a < active.size(); ++a) {
        if (combined[a] < threshold) continue;
        ++warned;
        inst_.warnings_total->inc();
        obs::record_instant(tracer, obs::SpanKind::kWarning,
                            obs::node_track(active[a]),
                            nodes_[active[a]]->now(), 0,
                            static_cast<std::int64_t>(combined[a] * 1e6));
      }
      act_span.set_arg(warned);
      auto act_node = [&](std::size_t a) {
        if (combined[a] < threshold) return;
        const std::size_t i = active[a];
        ++stats_[i].warnings;
        engines_[i].act(*nodes_[i], combined[a], config_.mea, stats_[i]);
      };
      if (hardened) {
        pool_.parallel_for_captured(active.size(), act_node, errors);
        for (std::size_t a = 0; a < active.size(); ++a) {
          if (!errors[a]) continue;
          inst_.node_faults_total->inc();
          quarantine(active[a], describe(errors[a]));
        }
      } else {
        pool_.parallel_for(active.size(), act_node);
      }
    }
    inst_.act_latency->observe(seconds_since(act_start));
  }

  // Scrape-facing level gauges, refreshed when the loop settles (gauges
  // are controller-thread instruments).
  std::size_t quarantined = 0;
  for (const auto& state : node_state_) {
    if (state.quarantined) ++quarantined;
  }
  quarantined_gauge_->set(static_cast<double>(quarantined));
  std::size_t open = 0;
  for (const auto& breaker : breakers_) {
    if (breaker.open) ++open;
  }
  breakers_open_gauge_->set(static_cast<double>(open));
}

void FleetController::ensure_shards() {
  if (!shards_.empty()) return;
  layout_ = core::ShardLayout(nodes_.size(), config_.num_shards);
  auto& metrics = obs_->metrics();
  const bool multi = config_.num_shards > 1;
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    ShardEnv env;
    env.config = &config_;
    env.nodes = &nodes_;
    env.engines = &engines_;
    env.stats = &stats_;
    env.symptom = &symptom_;
    env.event = &event_;
    env.obs = obs_;
    env.inst = inst_;
    // A single-shard fleet records its stage spans on the fleet track and
    // registers no shard-labelled metrics, keeping its exports identical
    // to the lockstep loop's.
    const std::uint32_t track =
        multi ? obs::shard_track(s) : obs::kFleetTrack;
    auto shard = std::make_unique<ShardController>(
        env, s, layout_.begin(s), layout_.size(s), track);
    if (multi) {
      const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
      shard->set_shard_metrics(
          &metrics.counter("pfm_shard_ticks_total" + label),
          &metrics.counter("pfm_shard_node_steps_total" + label));
      metrics.gauge("pfm_shard_nodes" + label)
          .set(static_cast<double>(layout_.size(s)));
    }
    shards_.push_back(std::move(shard));
  }
}

void FleetController::run_event_driven(double t) {
  ensure_shards();
  const std::size_t num_predictors = symptom_.size() + event_.size();
  for (auto& shard : shards_) {
    shard->resize_predictors(num_predictors);
    shard->activate(t);
  }
  for (;;) {
    bool all_idle = true;
    for (const auto& shard : shards_) {
      if (!shard->idle()) {
        all_idle = false;
        break;
      }
    }
    if (all_idle) break;
    // One cross-shard epoch: every shard drains its calendar up to the
    // shared barrier tick in parallel (one pool thread per shard; all
    // state a shard touches is shard-local, so the pool handshake is the
    // only synchronization). With resilience enabled shards absorb
    // component faults internally and never throw; fail-fast mode
    // propagates the first fault, like the lockstep loop.
    inst_.epochs_total->inc();
    epoch_end_tick_ += config_.epoch_ticks;
    const std::uint64_t end_tick = epoch_end_tick_;
    pool_.parallel_for(shards_.size(),
                       [&](std::size_t s) { shards_[s]->run_epoch(end_tick, t); });
  }

  // Scrape-facing level gauges, refreshed when the loop settles (gauges
  // are controller-thread instruments).
  std::size_t quarantined = 0;
  std::size_t open = 0;
  for (const auto& shard : shards_) {
    quarantined += shard->quarantined_nodes();
    open += shard->open_breakers();
  }
  quarantined_gauge_->set(static_cast<double>(quarantined));
  breakers_open_gauge_->set(static_cast<double>(open));
  if (config_.path == FleetPath::kOptimized) {
    scratch_bytes_gauge_->set(
        static_cast<double>(scratch_capacity_bytes()));
  }
}

bool FleetController::node_quarantined(std::size_t i) const {
  RoleGuard guard(controller_);
  if (!shards_.empty()) {
    const std::size_t s = layout_.shard_of(i);
    return shards_[s]->node_state(i - layout_.begin(s)).quarantined;
  }
  return node_state_.at(i).quarantined;
}

const std::string& FleetController::node_quarantine_reason(
    std::size_t i) const {
  RoleGuard guard(controller_);
  if (!shards_.empty()) {
    const std::size_t s = layout_.shard_of(i);
    return shards_[s]->node_state(i - layout_.begin(s)).reason;
  }
  return node_state_.at(i).reason;
}

bool FleetController::predictor_tripped(std::size_t p) const {
  RoleGuard guard(controller_);
  if (p < breakers_.size() && breakers_[p].open) return true;
  for (const auto& shard : shards_) {
    if (shard->breaker_open(p)) return true;
  }
  return false;
}

std::size_t FleetController::scratch_capacity_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& s : batch_scratch_) total += s.capacity_bytes();
  for (const auto& shard : shards_) total += shard->scratch_capacity_bytes();
  return total;
}

std::size_t FleetController::scratch_grow_events() const noexcept {
  std::size_t total = scratch_grow_events_;
  for (const auto& shard : shards_) total += shard->scratch_grow_events();
  return total;
}

FleetTelemetry FleetController::telemetry() const {
  RoleGuard guard(controller_);
  FleetTelemetry out;
  out.nodes = nodes_.size();
  // Counter-valued fields are views over the metrics registry — the same
  // numbers a Prometheus scrape of the hub reports.
  out.rounds = inst_.rounds_total->value();
  out.epochs = inst_.epochs_total->value();
  out.node_steps = inst_.node_steps_total->value();
  out.scores_computed = inst_.scores_total->value();
  out.warnings_raised = inst_.warnings_total->value();
  out.latency.monitor_seconds = inst_.monitor_latency->sum();
  out.latency.evaluate_seconds = inst_.evaluate_latency->sum();
  out.latency.act_seconds = inst_.act_latency->sum();
  out.resilience.node_faults = inst_.node_faults_total->value();
  out.resilience.stall_detections = inst_.stall_detections_total->value();
  out.resilience.predictor_faults = inst_.predictor_faults_total->value();
  out.resilience.breaker_trips = inst_.breaker_trips_total->value();
  out.resilience.scores_sanitized = inst_.scores_sanitized_total->value();
  // Level counts live wherever the scheduler keeps its state: the
  // lockstep banks, the shard banks, or both (one of them is all-zero).
  for (const auto& state : node_state_) {
    if (state.quarantined) ++out.resilience.nodes_quarantined;
  }
  for (const auto& breaker : breakers_) {
    if (breaker.open) ++out.resilience.breakers_open;
  }
  for (const auto& shard : shards_) {
    out.resilience.nodes_quarantined += shard->quarantined_nodes();
    out.resilience.breakers_open += shard->open_breakers();
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.mea += stats_[i];
    out.system += nodes_[i]->system_stats();
  }
  return out;
}

}  // namespace pfm::runtime
