#include "runtime/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace pfm::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

FleetController::FleetController(
    std::vector<std::unique_ptr<core::ManagedSystem>> nodes,
    FleetConfig config)
    : nodes_(std::move(nodes)),
      config_(std::move(config)),
      engines_(nodes_.size()),
      stats_(nodes_.size()),
      pool_(config_.num_threads) {
  if (nodes_.empty()) {
    throw std::invalid_argument("FleetController: empty fleet");
  }
  for (const auto& n : nodes_) {
    if (!n) throw std::invalid_argument("FleetController: null node");
  }
  config_.mea.windows.validate();
  if (config_.mea.evaluation_interval <= 0.0) {
    throw std::invalid_argument("FleetController: evaluation interval > 0");
  }
  if (config_.mea.warning_threshold < 0.0 ||
      config_.mea.warning_threshold > 1.0) {
    throw std::invalid_argument("FleetController: threshold in [0,1]");
  }
}

void FleetController::add_symptom_predictor(
    std::shared_ptr<const pred::SymptomPredictor> p) {
  if (!p) throw std::invalid_argument("FleetController: null predictor");
  symptom_.push_back(std::move(p));
}

void FleetController::add_event_predictor(
    std::shared_ptr<const pred::EventPredictor> p) {
  if (!p) throw std::invalid_argument("FleetController: null predictor");
  event_.push_back(std::move(p));
}

void FleetController::add_action(
    const std::function<std::unique_ptr<act::Action>()>& factory) {
  if (!factory) throw std::invalid_argument("FleetController: null factory");
  for (auto& engine : engines_) engine.add_action(factory());
}

void FleetController::run() {
  double horizon = 0.0;
  for (const auto& n : nodes_) horizon = std::max(horizon, n->horizon());
  run_until(horizon);
}

void FleetController::run_until(double t) {
  const double interval = config_.mea.evaluation_interval;
  const double threshold = config_.mea.warning_threshold;

  std::vector<std::size_t> active;              // node index per stepped node
  std::vector<pred::SymptomContext> contexts;   // one per scoreable node
  std::vector<std::size_t> context_owner;       // active-list position
  std::vector<mon::ErrorSequence> sequences;    // one per active node
  std::vector<double> combined;                 // max score per active node
  std::vector<std::vector<double>> columns;     // one column per predictor

  for (;;) {
    active.clear();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i]->finished() && nodes_[i]->now() < t) active.push_back(i);
    }
    if (active.empty()) break;
    ++rounds_;

    // --- Monitor: advance every live node one evaluation interval. ----------
    const auto monitor_start = Clock::now();
    pool_.parallel_for(active.size(), [&](std::size_t a) {
      auto& node = *nodes_[active[a]];
      node.step_to(std::min(node.now() + interval, t));
    });
    latency_.monitor_seconds += seconds_since(monitor_start);

    // --- Evaluate: one score_batch call per predictor over the fleet. -------
    const auto evaluate_start = Clock::now();
    contexts.clear();
    context_owner.clear();
    sequences.clear();
    for (std::size_t a = 0; a < active.size(); ++a) {
      auto& node = *nodes_[active[a]];
      ++stats_[active[a]].evaluations;
      if (!symptom_.empty() && !node.trace().samples().empty()) {
        contexts.push_back(node.symptom_context(config_.mea.context_samples));
        context_owner.push_back(a);
      }
      if (!event_.empty()) {
        sequences.push_back(
            node.error_sequence(config_.mea.windows.data_window));
      }
    }

    const std::size_t tasks = symptom_.size() + event_.size();
    columns.resize(tasks);
    pool_.parallel_for(tasks, [&](std::size_t p) {
      auto& column = columns[p];
      if (p < symptom_.size()) {
        column.resize(contexts.size());
        symptom_[p]->score_batch(contexts, column);
      } else {
        column.resize(sequences.size());
        event_[p - symptom_.size()]->score_batch(sequences, column);
      }
    });
    scores_computed_ +=
        symptom_.size() * contexts.size() + event_.size() * sequences.size();

    // Reduce: per node, the max over predictor columns (a warning from
    // any layer is a warning) — same combination rule as MeaController.
    combined.assign(active.size(), 0.0);
    for (std::size_t p = 0; p < symptom_.size(); ++p) {
      for (std::size_t c = 0; c < contexts.size(); ++c) {
        combined[context_owner[c]] =
            std::max(combined[context_owner[c]], columns[p][c]);
      }
    }
    for (std::size_t p = 0; p < event_.size(); ++p) {
      const auto& column = columns[symptom_.size() + p];
      for (std::size_t a = 0; a < sequences.size(); ++a) {
        combined[a] = std::max(combined[a], column[a]);
      }
    }
    latency_.evaluate_seconds += seconds_since(evaluate_start);

    // --- Act: warned nodes run their own countermeasure engines. ------------
    const auto act_start = Clock::now();
    for (std::size_t a = 0; a < active.size(); ++a) {
      if (combined[a] >= threshold) ++warnings_raised_;
    }
    pool_.parallel_for(active.size(), [&](std::size_t a) {
      if (combined[a] < threshold) return;
      const std::size_t i = active[a];
      ++stats_[i].warnings;
      engines_[i].act(*nodes_[i], combined[a], config_.mea, stats_[i]);
    });
    latency_.act_seconds += seconds_since(act_start);
  }
}

FleetTelemetry FleetController::telemetry() const {
  FleetTelemetry out;
  out.nodes = nodes_.size();
  out.rounds = rounds_;
  out.scores_computed = scores_computed_;
  out.warnings_raised = warnings_raised_;
  out.latency = latency_;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.mea += stats_[i];
    out.system += nodes_[i]->system_stats();
  }
  return out;
}

}  // namespace pfm::runtime
