#pragma once

// Event-driven MEA scheduling (DESIGN.md §10). The calendar queue is the
// deterministic event core of the sharded fleet runtime: nodes are keyed
// by integral sim-ticks (one tick = one evaluation interval of calendar
// time), each shard drains its own single-threaded calendar, and the
// adaptive policy decides how many ticks a node may sleep before its
// next Monitor/Evaluate visit — dense near predicted failures and
// symptom deltas, exponentially sparser while quiet. Everything here is
// plain sequential data-structure code: determinism comes from keeping
// all scheduling state shard-local and integral.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace pfm::runtime {

/// Adaptive sampling policy of the event-driven scheduler. With
/// `adaptive` false the calendar degenerates to the dense schedule —
/// every node due every tick — which is the lockstep-equivalent mode the
/// conformance suite pins byte-identical to the flat loop.
struct SchedulePolicy {
  bool adaptive = false;
  /// Largest number of ticks a quiet node may sleep between visits.
  /// Bounds detection latency: a node going bad is revisited after at
  /// most max_gap intervals and is dense again from then on.
  std::size_t max_gap = 16;
  /// A node whose combined score reaches this fraction of the warning
  /// threshold is kept dense.
  double hot_score_fraction = 0.5;
  /// A node whose SchedulingHint urgency reaches this value is kept
  /// dense (1.0 is the ManagedSystem default, so unknown backends never
  /// get backed off).
  double hot_urgency = 0.75;

  void validate() const {
    if (max_gap == 0) {
      throw std::invalid_argument("SchedulePolicy: max_gap must be >= 1");
    }
    if (hot_score_fraction < 0.0 || hot_urgency < 0.0) {
      throw std::invalid_argument(
          "SchedulePolicy: hot thresholds must be >= 0");
    }
  }

  /// Next sampling gap in ticks: hot nodes snap back to dense, quiet
  /// nodes back off exponentially up to max_gap. Pure function — the
  /// whole adaptive schedule is replayable from (seed, plan) because
  /// nothing here depends on threads, shards or wall time.
  std::size_t next_gap(std::size_t prev_gap, bool hot) const noexcept {
    if (!adaptive || hot) return 1;
    const std::size_t doubled = prev_gap < max_gap ? prev_gap * 2 : max_gap;
    return doubled < max_gap ? doubled : max_gap;
  }
};

/// Bucketed calendar queue over integral sim-ticks: a ring of buckets
/// indexed by tick modulo the ring size, the classic O(1)
/// schedule/pop structure of discrete-event simulators. One instance per
/// shard, strictly single-threaded; insertion happens in deterministic
/// node order and pop_due() returns each tick's due set sorted
/// ascending, so the schedule is a pure function of the scheduling
/// decisions regardless of thread count.
///
/// Capacity contract: a tick may only be scheduled within
/// [cursor, cursor + num_slots) — the ring never wraps onto a pending
/// bucket because the shard sizes it to max_gap + 1.
class CalendarQueue {
 public:
  explicit CalendarQueue(std::size_t num_slots);

  std::uint64_t cursor() const noexcept { return cursor_; }
  std::size_t scheduled() const noexcept { return scheduled_; }
  bool empty() const noexcept { return scheduled_ == 0; }
  std::size_t num_slots() const noexcept { return buckets_.size(); }

  /// Schedules `item` at `tick`. Throws std::logic_error when the tick
  /// lies outside the ring's reachable window.
  void schedule(std::uint64_t tick, std::uint32_t item);

  /// Advances the cursor to the next non-empty tick before `end_tick`;
  /// fills `due` with that tick's items sorted ascending and returns
  /// true, leaving the cursor just past the popped tick. Returns false
  /// (with `due` empty and the cursor at `end_tick`) when nothing is due
  /// in the window — empty ticks cost one ring probe each, and a fully
  /// idle calendar skips straight to `end_tick`.
  bool pop_due(std::uint64_t end_tick, std::uint64_t& tick,
               std::vector<std::uint32_t>& due);

  void clear() noexcept;

 private:
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::uint64_t cursor_ = 0;
  std::size_t scheduled_ = 0;
};

}  // namespace pfm::runtime
