#pragma once

// Per-shard hierarchical controller of the event-driven fleet runtime
// (DESIGN.md §10). A ShardController owns one contiguous block of the
// fleet and everything stateful about running it: the block's calendar
// queue and adaptive sampling state, its quarantine records, its own
// bank of predictor circuit breakers, and its own BatchScratch arenas.
// During an epoch a shard is driven by exactly one pool thread and
// touches only shard-local state plus sharded metric instruments (and
// the shared read-only predictors), so shards compose without locks:
// the cross-shard epoch barrier — the pool handshake in
// FleetController::run_event_driven — is the only synchronization.

#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "runtime/fleet.hpp"
#include "runtime/schedule.hpp"

namespace pfm::runtime {

/// What a shard borrows from its owning FleetController: the fleet-wide
/// component vectors (the shard only ever touches indices inside its
/// block) and the shared observability handles. All pointers outlive the
/// shard — the controller owns both sides.
struct ShardEnv {
  const FleetConfig* config = nullptr;
  std::vector<std::unique_ptr<core::ManagedSystem>>* nodes = nullptr;
  std::vector<core::ActEngine>* engines = nullptr;
  std::vector<core::MeaStats>* stats = nullptr;
  const std::vector<std::shared_ptr<const pred::SymptomPredictor>>* symptom =
      nullptr;
  const std::vector<std::shared_ptr<const pred::EventPredictor>>* event =
      nullptr;
  obs::Observability* obs = nullptr;
  FleetInstruments inst;
};

/// Per-node adaptive sampling state. Public (namespace scope) because it
/// is also the warm-handoff payload of elastic membership: when a
/// reshard moves a node between shards, its sampling/backoff state
/// travels with it so the surviving node's schedule — and therefore its
/// results — are bit-identical to an uninterrupted run.
struct NodeSchedule {
  bool scheduled = false;
  std::uint32_t pending_gap = 1;   ///< ticks the due visit will cover
  std::uint32_t prev_gap = 1;      ///< adaptive backoff memory
  std::uint64_t seen_events = 0;   ///< trace sizes at the last visit,
  std::uint64_t seen_failures = 0; ///< for symptom-delta triggers
  std::uint64_t due_tick = 0;      ///< calendar tick of the pending visit
  double last_score = 0.0;         ///< combined score at the last visit
};

/// Warm-handoff payload of one node slot: everything shard-owned that
/// must survive an online reshard (quarantine record + sampling state).
/// Exported at an epoch barrier — when every shard's calendar cursor
/// sits on the same shared tick — and re-imported into the new owner.
struct NodeHandoff {
  FleetNodeState state;
  NodeSchedule sched;
};

/// One shard of the event-driven fleet: a strictly sequential
/// Monitor-Evaluate-Act engine over the due-set of each calendar tick.
/// Dense schedule + one shard + epoch_ticks 1 reproduces the lockstep
/// loop's sim-time exports byte-for-byte (conformance-pinned); adaptive
/// schedules visit each node per its own sampling gap.
class ShardController {
 public:
  /// `base`/`count` delimit the shard's block of global node indices;
  /// `stage_track` is the trace lane of the shard's stage spans
  /// (obs::kFleetTrack for a single-shard fleet, obs::shard_track(i)
  /// otherwise).
  ShardController(ShardEnv env, std::size_t shard_index, std::size_t base,
                  std::size_t count, std::uint32_t stage_track);

  /// Optional per-shard throughput counters (registered by the owning
  /// controller only when the fleet has more than one shard, so the
  /// single-shard metric set stays identical to lockstep's).
  void set_shard_metrics(obs::Counter* ticks, obs::Counter* node_steps);

  /// Sizes the per-predictor state (breakers, score columns, arenas);
  /// called before every run — predictors may have been registered since.
  void resize_predictors(std::size_t num_predictors);

  /// Attaches the fleet's online quality tracker and flight recorder
  /// (either may be null = off). `lane_base` is this shard's first flight
  /// predictor lane (shard_index * num_predictors — per-shard breakers
  /// get per-shard lane banks). Called by the owning controller before
  /// every run, after resize_predictors.
  void set_quality(obs::QualityTracker* quality, obs::FlightRecorder* flight,
                   std::size_t lane_base);

  /// (Re)schedules every runnable, currently unscheduled node of the
  /// block at the calendar cursor with a fresh dense gap. Called at the
  /// start of every run_until.
  void activate(double t);

  /// Nothing scheduled: the shard has no work before its calendar's
  /// cursor reaches the next activation.
  bool idle() const noexcept { return calendar_.empty(); }

  /// Drains every calendar tick before `end_tick` (the epoch barrier),
  /// stepping due nodes toward sim-time `t`. Runs on a pool thread; with
  /// resilience enabled component faults are absorbed shard-locally,
  /// otherwise the first fault propagates (fail-fast).
  void run_epoch(std::uint64_t end_tick, double t);

  std::size_t shard_index() const noexcept { return shard_index_; }
  std::size_t base() const noexcept { return base_; }
  std::size_t size() const noexcept { return count_; }

  const FleetNodeState& node_state(std::size_t local) const {
    return node_state_.at(local);
  }
  /// Mutable slot state, for the owning controller's membership barrier
  /// (restart resets, departed marks). Controller-thread only — shards
  /// are quiescent at barriers.
  FleetNodeState& node_state_mut(std::size_t local) {
    return node_state_.at(local);
  }
  const NodeSchedule& node_sched(std::size_t local) const {
    return sched_.at(local);
  }
  NodeSchedule& node_sched_mut(std::size_t local) { return sched_.at(local); }

  /// Elastic membership (controller-thread, epoch barriers only):
  /// export_node captures one slot's warm-handoff payload; reshape moves
  /// the shard to a new contiguous block (clearing the calendar but
  /// keeping its cursor on the shared epoch grid, plus the per-predictor
  /// breakers/arenas, which stay with the shard); import_node restores a
  /// payload into the new block, re-inserting pending calendar entries
  /// at their original due ticks.
  NodeHandoff export_node(std::size_t local) const;
  void reshape(std::size_t base, std::size_t count);
  void import_node(std::size_t local, const NodeHandoff& handoff);

  /// Summed last combined score over live (non-quarantined, non-departed)
  /// nodes — the shard's contribution to the elasticity policy's
  /// fleet-level failure-probability mass.
  double score_mass() const noexcept;

  bool breaker_open(std::size_t p) const {
    return p < breakers_.size() && breakers_[p].open;
  }
  std::size_t open_breakers() const noexcept;
  std::size_t quarantined_nodes() const noexcept;

  std::size_t scratch_capacity_bytes() const noexcept;
  std::size_t scratch_grow_events() const noexcept {
    return scratch_grow_events_;
  }

 private:
  void process_tick(std::uint64_t tick, double t);
  void quarantine_local(std::size_t local, const std::string& reason);
  /// Adaptive hot test of one surviving node: score near the warning
  /// threshold, an urgent SchedulingHint, or a symptom delta (new error
  /// events / failures since the last visit) snaps the node dense.
  bool node_is_hot(std::size_t local, double combined_score);

  ShardEnv env_;
  std::size_t shard_index_ = 0;
  std::size_t base_ = 0;
  std::size_t count_ = 0;
  std::uint32_t stage_track_ = 0;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::Counter* shard_ticks_total_ = nullptr;       // null when 1 shard
  obs::Counter* shard_node_steps_total_ = nullptr;  // null when 1 shard
  obs::QualityTracker* quality_ = nullptr;          // null = quality off
  obs::FlightRecorder* flight_ = nullptr;           // null = recorder off
  std::size_t flight_lane_base_ = 0;

  CalendarQueue calendar_;
  std::vector<NodeSchedule> sched_;
  std::vector<FleetNodeState> node_state_;
  std::vector<PredictorBreaker> breakers_;
  /// Shard-local round ordinal: the `sub` of this shard's stage spans.
  /// Matches the global rounds counter for a single-shard fleet on a
  /// fresh hub — part of the lockstep byte-identity contract.
  std::uint32_t local_rounds_ = 0;

  // Tick-scratch, reused across ticks so the hot loop stays
  // allocation-free after warm-up (the shard-local mirror of the
  // lockstep controller's round scratch).
  std::vector<std::uint32_t> due_;
  std::vector<std::size_t> active_;           // local index per due node
  std::vector<double> pre_step_time_;
  std::vector<std::exception_ptr> errors_;
  std::vector<pred::SymptomContext> contexts_;
  std::vector<std::size_t> context_owner_;    // active-list position
  std::vector<mon::ErrorSequence> sequences_;
  std::vector<double> combined_;
  std::vector<std::vector<double>> columns_;  // per-predictor columns
  std::vector<std::size_t> live_;             // predictors scored this tick
  std::vector<pred::BatchScratch> batch_scratch_;  // one arena per predictor
  std::vector<double> quality_row_;           // lane scores, combined last
  std::vector<std::ptrdiff_t> ctx_of_active_; // active pos -> context index
  std::vector<std::uint8_t> scored_;          // predictor produced a column
  std::size_t scratch_grow_events_ = 0;
  std::size_t scratch_bytes_seen_ = 0;
};

}  // namespace pfm::runtime
