#include "runtime/thread_pool.hpp"

#include "obs/metrics.hpp"

namespace pfm::runtime {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    // Worker i claims obs shard i+1 for its whole lifetime (the caller
    // keeps shard 0), so sharded instruments are written contention-free
    // by construction.
    workers_.emplace_back([this, i] {
      obs::set_thread_shard(i + 1);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_indices() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      (*errors_)[i] = std::current_exception();  // slot i is this task's own
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) lock.wait(work_cv_);
      if (stop_) return;
      seen_generation = generation_;
    }
    run_indices();
    {
      MutexLock lock(mu_);
      --workers_pending_;
      if (workers_pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_captured(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    std::vector<std::exception_ptr>& errors) {
  errors.assign(n, nullptr);
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    return;
  }
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    errors_ = &errors;
    workers_pending_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  run_indices();  // the caller is a pool thread too
  MutexLock lock(mu_);
  while (workers_pending_ != 0) lock.wait(done_cv_);
  fn_ = nullptr;
  errors_ = nullptr;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_captured(n, fn, scratch_errors_);
  for (const auto& e : scratch_errors_) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace pfm::runtime
