#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace pfm::runtime {

ThreadPool::ThreadPool(std::size_t num_threads, ThreadPoolOptions options)
    : options_(options) {
  const std::size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  const std::size_t hw = std::thread::hardware_concurrency();
  effective_threads_ =
      std::min(extra + 1, hw > 0 ? hw : std::size_t{1});
  if (options_.persistent) {
    shard_next_ = std::make_unique<std::atomic<std::size_t>[]>(extra + 1);
    shard_end_.assign(extra + 1, 0);
  }
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    // Worker i claims obs shard i+1 for its whole lifetime (the caller
    // keeps shard 0), so sharded instruments are written contention-free
    // by construction.
    workers_.emplace_back([this, i] {
      obs::set_thread_shard(i + 1);
      if (options_.persistent) {
        persistent_worker_loop(i + 1);
      } else {
        worker_loop();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

// pfm-hot
void ThreadPool::run_indices() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      (*errors_)[i] = std::current_exception();  // slot i is this task's own
    }
  }
}

// pfm-hot
void ThreadPool::run_shards(std::size_t first_shard) {
  const std::size_t shards = workers_.size() + 1;
  for (std::size_t k = 0; k < shards; ++k) {
    const std::size_t s = (first_shard + k) % shards;
    const std::size_t end = shard_end_[s];
    for (;;) {
      const std::size_t i = shard_next_[s].fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      try {
        (*fn_)(i);
      } catch (...) {
        (*errors_)[i] = std::current_exception();  // slot i is this task's own
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) lock.wait(work_cv_);
      if (stop_) return;
      seen_generation = generation_;
    }
    run_indices();
    {
      MutexLock lock(mu_);
      --workers_pending_;
      if (workers_pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::persistent_worker_loop(std::size_t shard) {
  std::uint64_t seen = 0;
  for (;;) {
    // Between back-to-back batches the generation bump usually lands
    // within the spin budget, so the worker skips the park/unpark
    // syscalls entirely; an idle pool still ends up on the condition
    // variable and costs nothing.
    std::uint64_t gen = batch_gen_.load(std::memory_order_acquire);
    for (std::size_t spin = 0;
         gen == seen && spin < options_.spin_iterations; ++spin) {
      gen = batch_gen_.load(std::memory_order_acquire);
    }
    if (gen == seen) {
      MutexLock lock(mu_);
      while (!stop_ && batch_gen_.load(std::memory_order_acquire) == seen) {
        lock.wait(work_cv_);
      }
      if (stop_) return;
      gen = batch_gen_.load(std::memory_order_acquire);
    }
    seen = gen;
    run_shards(shard);
    if (batch_pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // The empty critical section orders this notify after any
      // concurrent caller-side predicate check, closing the lost-wakeup
      // window (the caller's predicate reads the atomic, not mu_ state).
      { MutexLock lock(mu_); }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::publish_and_run(std::size_t n,
                                 const std::function<void(std::size_t)>& fn,
                                 std::vector<std::exception_ptr>& errors) {
  const std::size_t shards = workers_.size() + 1;
  fn_ = &fn;
  n_ = n;
  errors_ = &errors;
  for (std::size_t s = 0; s < shards; ++s) {
    shard_next_[s].store(n * s / shards, std::memory_order_relaxed);
    shard_end_[s] = n * (s + 1) / shards;
  }
  batch_pending_.store(workers_.size(), std::memory_order_relaxed);
  batch_gen_.fetch_add(1, std::memory_order_release);
  // Empty critical section: a worker that just checked the generation
  // under mu_ and found it stale is guaranteed to be parked before this
  // notify fires — without it the notify could land in the gap between
  // a worker's predicate check and its wait.
  { MutexLock lock(mu_); }
  work_cv_.notify_all();
  run_shards(0);  // the caller drains shard 0, then steals
  for (std::size_t spin = 0;
       batch_pending_.load(std::memory_order_acquire) != 0 &&
       spin < options_.spin_iterations;
       ++spin) {
  }
  if (batch_pending_.load(std::memory_order_acquire) != 0) {
    MutexLock lock(mu_);
    while (batch_pending_.load(std::memory_order_acquire) != 0) {
      lock.wait(done_cv_);
    }
  }
  fn_ = nullptr;
  errors_ = nullptr;
}

void ThreadPool::parallel_for_captured(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    std::vector<std::exception_ptr>& errors) {
  errors.assign(n, nullptr);
  if (n == 0) return;
  // Inline when distribution cannot help: no workers, a single index, or
  // (persistent mode) fewer hardware threads than it takes to overlap
  // anything — waking workers that time-slice with the caller only adds
  // handshake churn. Which thread runs an index never affects results.
  if (workers_.empty() || n == 1 ||
      (options_.persistent && effective_threads_ <= 1)) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    return;
  }
  if (options_.persistent) {
    publish_and_run(n, fn, errors);
    return;
  }
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    errors_ = &errors;
    workers_pending_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  run_indices();  // the caller is a pool thread too
  MutexLock lock(mu_);
  while (workers_pending_ != 0) lock.wait(done_cv_);
  fn_ = nullptr;
  errors_ = nullptr;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_captured(n, fn, scratch_errors_);
  for (const auto& e : scratch_errors_) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace pfm::runtime
