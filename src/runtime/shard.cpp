#include "runtime/shard.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"

namespace pfm::runtime {

namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

// Fault-path helpers: quarantine descriptions are built off the tick
// hot path (pfm-analyze hotpath), so the string work lives here.
// pfm-cold
std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {  // pfm-lint: allow(concurrency) — describing an already
                   // captured exception_ptr; nothing is swallowed here
    return "unknown error";
  }
}

// pfm-cold
std::string stall_reason(std::size_t streak) {
  return "stalled: no monitor progress for " + std::to_string(streak) +
         " rounds";
}

}  // namespace

ShardController::ShardController(ShardEnv env, std::size_t shard_index,
                                 std::size_t base, std::size_t count,
                                 std::uint32_t stage_track)
    : env_(env),
      shard_index_(shard_index),
      base_(base),
      count_(count),
      stage_track_(stage_track),
      tracer_(env.obs->tracer()),
      // The ring must reach every schedulable gap: [1, max_gap] adaptive,
      // exactly 1 dense.
      calendar_(env.config->schedule.adaptive ? env.config->schedule.max_gap + 1
                                              : 2),
      sched_(count),
      node_state_(count) {}

void ShardController::set_shard_metrics(obs::Counter* ticks,
                                        obs::Counter* node_steps) {
  shard_ticks_total_ = ticks;
  shard_node_steps_total_ = node_steps;
}

void ShardController::resize_predictors(std::size_t num_predictors) {
  breakers_.resize(num_predictors);
  columns_.resize(num_predictors);
  batch_scratch_.resize(num_predictors);
  const pred::BatchKernel kernel = env_.config->path == FleetPath::kSimd
                                       ? pred::BatchKernel::kSimd
                                       : pred::BatchKernel::kScalar;
  for (auto& scratch : batch_scratch_) scratch.kernel = kernel;
}

void ShardController::set_quality(obs::QualityTracker* quality,
                                  obs::FlightRecorder* flight,
                                  std::size_t lane_base) {
  quality_ = quality;
  flight_ = flight;
  flight_lane_base_ = lane_base;
  // Sized here (after resize_predictors) so the tick hot loop never
  // grows it.
  quality_row_.assign(breakers_.size() + 1, 0.0);
}

void ShardController::activate(double t) {
  for (std::size_t local = 0; local < count_; ++local) {
    auto& ns = sched_[local];
    if (ns.scheduled || node_state_[local].quarantined ||
        node_state_[local].departed) {
      continue;
    }
    const auto& node = *(*env_.nodes)[base_ + local];
    if (node.finished() || node.now() >= t) continue;
    calendar_.schedule(calendar_.cursor(), static_cast<std::uint32_t>(local));
    ns.scheduled = true;
    ns.pending_gap = 1;
    ns.prev_gap = 1;
    ns.seen_events = node.trace().events().size();
    ns.seen_failures = node.trace().failures().size();
    ns.due_tick = calendar_.cursor();
  }
}

NodeHandoff ShardController::export_node(std::size_t local) const {
  return NodeHandoff{node_state_.at(local), sched_.at(local)};
}

void ShardController::reshape(std::size_t base, std::size_t count) {
  base_ = base;
  count_ = count;
  // The calendar empties but keeps its cursor: every shard's cursor sits
  // on the shared epoch-barrier tick when a reshard runs, so re-imported
  // due ticks (all >= the barrier) stay inside the ring's window.
  calendar_.clear();
  sched_.assign(count, NodeSchedule{});
  node_state_.assign(count, FleetNodeState{});
}

void ShardController::import_node(std::size_t local,
                                  const NodeHandoff& handoff) {
  node_state_.at(local) = handoff.state;
  auto& ns = sched_.at(local);
  ns = handoff.sched;
  if (ns.scheduled) {
    // Anything still pending was scheduled beyond the barrier the export
    // ran at, so due_tick >= cursor(); the max() is defensive.
    const std::uint64_t tick = std::max(ns.due_tick, calendar_.cursor());
    calendar_.schedule(tick, static_cast<std::uint32_t>(local));
    ns.due_tick = tick;
  }
}

double ShardController::score_mass() const noexcept {
  double mass = 0.0;
  for (std::size_t local = 0; local < count_; ++local) {
    if (node_state_[local].quarantined || node_state_[local].departed) {
      continue;
    }
    mass += sched_[local].last_score;
  }
  return mass;
}

// pfm-hot
void ShardController::run_epoch(std::uint64_t end_tick, double t) {
  std::uint64_t tick = 0;
  while (calendar_.pop_due(end_tick, tick, due_)) process_tick(tick, t);
}

// pfm-cold
void ShardController::quarantine_local(std::size_t local,
                                       const std::string& reason) {
  auto& state = node_state_[local];
  if (state.quarantined) return;
  state.quarantined = true;
  state.reason = reason;
  state.quarantine_time = (*env_.nodes)[base_ + local]->now();
  env_.inst.quarantines_total->inc();
  obs::record_instant(tracer_, obs::SpanKind::kQuarantine,
                      obs::node_track(base_ + local), state.quarantine_time);
  if (flight_ != nullptr) {
    flight_->record_node(
        base_ + local,
        obs::FlightEvent{state.quarantine_time,
                         obs::FlightEventKind::kQuarantine, 0, 0, 0.0});
    flight_->dump_node(base_ + local, "quarantine", state.quarantine_time);
  }
}

bool ShardController::node_is_hot(std::size_t local, double combined_score) {
  const FleetConfig& config = *env_.config;
  const auto& node = *(*env_.nodes)[base_ + local];
  auto& ns = sched_[local];
  const std::uint64_t events = node.trace().events().size();
  const std::uint64_t failures = node.trace().failures().size();
  const bool delta = events != ns.seen_events || failures != ns.seen_failures;
  ns.seen_events = events;
  ns.seen_failures = failures;
  if (combined_score >=
      config.schedule.hot_score_fraction * config.mea.warning_threshold) {
    return true;
  }
  if (delta) return true;
  return node.scheduling_hint().urgency >= config.schedule.hot_urgency;
}

// pfm-hot
void ShardController::process_tick(std::uint64_t tick, double t) {
  const FleetConfig& config = *env_.config;
  const double interval = config.mea.evaluation_interval;
  const double threshold = config.mea.warning_threshold;
  const ResilienceConfig& res = config.resilience;
  const bool hardened = res.enabled;
  const bool optimized = config.path != FleetPath::kReference;
  auto& nodes = *env_.nodes;
  const auto& symptom = *env_.symptom;
  const auto& event = *env_.event;
  const std::size_t num_predictors = symptom.size() + event.size();
  const FleetInstruments& inst = env_.inst;

  // Due set -> active list. The reschedule step keeps unrunnable nodes
  // off the calendar, so the filter is defensive only.
  active_.clear();
  for (const std::uint32_t local : due_) {
    sched_[local].scheduled = false;
    const auto& node = *nodes[base_ + local];
    if (node_state_[local].quarantined || node_state_[local].departed ||
        node.finished() || node.now() >= t) {
      continue;
    }
    active_.push_back(local);
  }
  if (active_.empty()) return;
  inst.rounds_total->inc();
  inst.node_steps_total->inc(active_.size());
  if (shard_ticks_total_ != nullptr) {
    shard_ticks_total_->inc();
    shard_node_steps_total_->inc(active_.size());
  }
  // Stage spans of one shard tick share the shard-local round ordinal as
  // their `sub` (== the global rounds counter for a 1-shard fleet on a
  // fresh hub, preserving lockstep byte-identity).
  const std::uint32_t round = ++local_rounds_;

  // --- Monitor: advance every due node by its pending gap. -----------------
  const auto monitor_start = WallClock::now();
  pre_step_time_.resize(active_.size());
  double round_begin = nodes[base_ + active_[0]]->now();
  for (std::size_t a = 0; a < active_.size(); ++a) {
    pre_step_time_[a] = nodes[base_ + active_[a]]->now();
    round_begin = std::min(round_begin, pre_step_time_[a]);
  }
  {
    obs::ScopedSpan monitor_span(tracer_, obs::SpanKind::kMonitorStage,
                                 stage_track_, round_begin, round,
                                 static_cast<std::int64_t>(active_.size()));
    if (hardened) errors_.assign(active_.size(), std::exception_ptr{});
    for (std::size_t a = 0; a < active_.size(); ++a) {
      const std::size_t local = active_[a];
      const std::size_t i = base_ + local;
      auto& node = *nodes[i];
      const double target =
          std::min(node.now() + sched_[local].pending_gap * interval, t);
      obs::ScopedSpan span(tracer_, obs::SpanKind::kNodeStep,
                           obs::node_track(i), pre_step_time_[a]);
      if (hardened) {
        try {
          node.step_to(target);
        } catch (...) {  // pfm-lint: allow(concurrency) — shard-local
                         // capture; processed right below, mirroring the
                         // lockstep loop's parallel_for_captured
          errors_[a] = std::current_exception();
        }
      } else {
        node.step_to(target);
      }
      span.set_sim_end(node.now());
    }
    if (hardened) {
      for (std::size_t a = 0; a < active_.size(); ++a) {
        const std::size_t local = active_[a];
        const std::size_t i = base_ + local;
        if (errors_[a]) {
          inst.node_faults_total->inc();
          quarantine_local(local, describe(errors_[a]));
        } else if (!nodes[i]->finished() &&
                   nodes[i]->now() <= pre_step_time_[a]) {
          // Returned but made no time progress: a hang, not a crash.
          // Thresholded in node-local steps — an adaptively backed-off
          // node accrues its streak at its own visits.
          inst.stall_detections_total->inc();
          if (++node_state_[local].stall_streak >= res.max_stall_rounds) {
            quarantine_local(local,
                             stall_reason(node_state_[local].stall_streak));
          }
        } else {
          node_state_[local].stall_streak = 0;
        }
      }
      const auto& node_state = node_state_;
      active_.erase(std::remove_if(active_.begin(), active_.end(),
                                   [&](std::size_t local) {
                                     return node_state[local].quarantined;
                                   }),
                    active_.end());
    }
    double round_end = round_begin;
    for (const std::size_t local : active_) {
      round_end = std::max(round_end, nodes[base_ + local]->now());
    }
    monitor_span.set_sim_end(round_end);
  }
  inst.monitor_latency->observe(seconds_since(monitor_start));
  if (active_.empty()) return;

  // Quality: each surviving node's clock just advanced, so pending
  // evaluation instants whose prediction window closed are resolved
  // against the node's ground-truth failure log (per-node clocks keep
  // this shard-count invariant).
  if (quality_ != nullptr) {
    for (const std::size_t local : active_) {
      const std::size_t i = base_ + local;
      quality_->resolve(i, nodes[i]->now(), nodes[i]->trace().failures());
    }
  }

  // --- Evaluate: batch-score this tick's due set. ---------------------------
  const auto evaluate_start = WallClock::now();
  double eval_time = nodes[base_ + active_[0]]->now();
  for (const std::size_t local : active_) {
    eval_time = std::max(eval_time, nodes[base_ + local]->now());
  }
  {
    obs::ScopedSpan evaluate_span(tracer_, obs::SpanKind::kEvaluateStage,
                                  stage_track_, eval_time, round,
                                  static_cast<std::int64_t>(active_.size()));
    contexts_.clear();
    context_owner_.clear();
    sequences_.clear();
    for (std::size_t a = 0; a < active_.size(); ++a) {
      const std::size_t i = base_ + active_[a];
      auto& node = *nodes[i];
      auto& st = (*env_.stats)[i];
      ++st.evaluations;
      if (!symptom.empty() && !node.trace().samples().empty()) {
        contexts_.push_back(node.symptom_context(config.mea.context_samples));
        contexts_.back().origin = i;
        contexts_.back().ordinal = st.evaluations;
        context_owner_.push_back(a);
      }
      if (!event.empty()) {
        sequences_.push_back(
            node.error_sequence(config.mea.windows.data_window));
        sequences_.back().origin = i;
        sequences_.back().ordinal = st.evaluations;
      }
    }
    if (!symptom.empty()) {
      inst.batch_size_hist->observe(static_cast<double>(contexts_.size()));
    }
    if (!event.empty()) {
      inst.batch_size_hist->observe(static_cast<double>(sequences_.size()));
    }

    // Breaker scheduling: open breakers sit out their cooldown, then get
    // one half-open probe tick; closed (and probing) predictors score.
    live_.clear();
    for (std::size_t p = 0; p < num_predictors; ++p) {
      if (hardened && breakers_[p].open && breakers_[p].open_rounds_left > 0) {
        --breakers_[p].open_rounds_left;
        continue;
      }
      live_.push_back(p);
    }

    if (hardened) errors_.assign(live_.size(), std::exception_ptr{});
    for (std::size_t lp = 0; lp < live_.size(); ++lp) {
      const std::size_t p = live_[lp];
      auto& column = columns_[p];
      obs::ScopedSpan span(tracer_, obs::SpanKind::kScoreBatch,
                           obs::predictor_track(p), eval_time);
      auto score_one = [&] {
        if (p < symptom.size()) {
          column.resize(contexts_.size());
          if (optimized) {
            symptom[p]->score_batch(contexts_, column, batch_scratch_[p]);
          } else {
            symptom[p]->score_batch(contexts_, column);
          }
        } else {
          column.resize(sequences_.size());
          const auto& ep = *event[p - symptom.size()];
          if (optimized) {
            ep.score_batch(sequences_, column, batch_scratch_[p]);
          } else {
            ep.score_batch(sequences_, column);
          }
        }
        span.set_arg(static_cast<std::int64_t>(column.size()));
      };
      if (hardened) {
        try {
          score_one();
        } catch (...) {  // pfm-lint: allow(concurrency) — shard-local
                         // capture feeding the per-predictor breaker,
                         // mirroring the lockstep loop
          errors_[lp] = std::current_exception();
        }
      } else {
        score_one();
      }
    }

    // Per-predictor outcome: a throw or any non-finite score is a faulty
    // tick feeding this shard's breaker; a clean tick closes/heals it.
    combined_.assign(active_.size(), 0.0);
    for (std::size_t lp = 0; lp < live_.size(); ++lp) {
      const std::size_t p = live_[lp];
      const bool threw = hardened && errors_[lp] != nullptr;
      bool faulty = threw;
      if (!threw) {
        const auto& column = columns_[p];
        const std::size_t n = column.size();
        inst.scores_total->inc(n);
        if (p < symptom.size()) {
          for (std::size_t c = 0; c < n; ++c) {
            const double v = column[c];
            if (hardened && !std::isfinite(v)) {
              inst.scores_sanitized_total->inc();
              faulty = true;
              continue;
            }
            combined_[context_owner_[c]] =
                std::max(combined_[context_owner_[c]], v);
          }
        } else {
          for (std::size_t a = 0; a < n; ++a) {
            const double v = column[a];
            if (hardened && !std::isfinite(v)) {
              inst.scores_sanitized_total->inc();
              faulty = true;
              continue;
            }
            combined_[a] = std::max(combined_[a], v);
          }
        }
      }
      if (!hardened) continue;
      auto& breaker = breakers_[p];
      if (faulty) {
        inst.predictor_faults_total->inc();
        bool tripped = false;
        if (breaker.open) {
          // Half-open probe failed: back to a full cooldown.
          breaker.open_rounds_left = res.breaker_open_rounds;
          inst.breaker_trips_total->inc();
          obs::record_instant(tracer_, obs::SpanKind::kBreakerTrip,
                              obs::predictor_track(p), eval_time, round);
          tripped = true;
        } else if (++breaker.failure_streak >= res.breaker_trip_failures) {
          breaker.open = true;
          breaker.open_rounds_left = res.breaker_open_rounds;
          inst.breaker_trips_total->inc();
          obs::record_instant(tracer_, obs::SpanKind::kBreakerTrip,
                              obs::predictor_track(p), eval_time, round);
          tripped = true;
        }
        if (tripped && flight_ != nullptr) {
          // A trip is an incident: the shard's lane ring (ending in the
          // trip itself) becomes a post-mortem.
          flight_->record_lane(
              flight_lane_base_ + p,
              obs::FlightEvent{eval_time, obs::FlightEventKind::kBreakerTrip,
                               round,
                               static_cast<std::int64_t>(
                                   breaker.failure_streak),
                               0.0});
          flight_->dump_lane(flight_lane_base_ + p, "breaker", eval_time);
        }
      } else {
        if (breaker.open) {
          obs::record_instant(tracer_, obs::SpanKind::kBreakerClose,
                              obs::predictor_track(p), eval_time, round);
          if (flight_ != nullptr) {
            flight_->record_lane(
                flight_lane_base_ + p,
                obs::FlightEvent{eval_time,
                                 obs::FlightEventKind::kBreakerClose, round,
                                 0, 0.0});
          }
        }
        breaker.open = false;
        breaker.failure_streak = 0;
      }
    }
    if (flight_ != nullptr) {
      for (std::size_t a = 0; a < active_.size(); ++a) {
        const std::size_t i = base_ + active_[a];
        flight_->record_node(
            i, obs::FlightEvent{nodes[i]->now(), obs::FlightEventKind::kScore,
                                0, 0, combined_[a]});
      }
    }
    // Quality: record this tick's evaluation instants (per-predictor
    // lanes NaN when the predictor sat out; the combined lane carries
    // the thresholded max-reduce). Mirrors the lockstep loop exactly.
    if (quality_ != nullptr) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      scored_.assign(num_predictors, 0);
      for (std::size_t lp = 0; lp < live_.size(); ++lp) {
        if (!hardened || errors_[lp] == nullptr) scored_[live_[lp]] = 1;
      }
      ctx_of_active_.assign(active_.size(), -1);
      for (std::size_t c = 0; c < context_owner_.size(); ++c) {
        ctx_of_active_[context_owner_[c]] = static_cast<std::ptrdiff_t>(c);
      }
      for (std::size_t a = 0; a < active_.size(); ++a) {
        const std::size_t i = base_ + active_[a];
        for (std::size_t p = 0; p < num_predictors; ++p) {
          double v = nan;
          if (scored_[p] != 0) {
            if (p < symptom.size()) {
              const std::ptrdiff_t c = ctx_of_active_[a];
              if (c >= 0) v = columns_[p][static_cast<std::size_t>(c)];
            } else {
              v = columns_[p][a];
            }
            if (!std::isfinite(v)) v = nan;
          }
          quality_row_[p] = v;
        }
        quality_row_[num_predictors] = combined_[a];
        quality_->observe(i, nodes[i]->now(), quality_row_.data());
      }
    }
  }  // evaluate_span
  inst.evaluate_latency->observe(seconds_since(evaluate_start));
  if (optimized) {
    // Footprint accounting mirrors the lockstep loop; the owning
    // controller reads the per-shard totals after the run (the scratch
    // gauge is a controller-thread instrument).
    const std::size_t bytes = scratch_capacity_bytes();
    if (bytes > scratch_bytes_seen_) {
      ++scratch_grow_events_;
      scratch_bytes_seen_ = bytes;
    }
  }

  // --- Act: warned nodes run their own countermeasure engines. --------------
  const auto act_start = WallClock::now();
  {
    obs::ScopedSpan act_span(tracer_, obs::SpanKind::kActStage, stage_track_,
                             eval_time, round);
    std::int64_t warned = 0;
    for (std::size_t a = 0; a < active_.size(); ++a) {
      if (combined_[a] < threshold) continue;
      ++warned;
      inst.warnings_total->inc();
      obs::record_instant(tracer_, obs::SpanKind::kWarning,
                          obs::node_track(base_ + active_[a]),
                          nodes[base_ + active_[a]]->now(), 0,
                          static_cast<std::int64_t>(combined_[a] * 1e6));
      if (flight_ != nullptr) {
        flight_->record_node(
            base_ + active_[a],
            obs::FlightEvent{nodes[base_ + active_[a]]->now(),
                             obs::FlightEventKind::kWarning, 0,
                             static_cast<std::int64_t>(combined_[a] * 1e6),
                             combined_[a]});
      }
    }
    act_span.set_arg(warned);
    if (hardened) errors_.assign(active_.size(), std::exception_ptr{});
    for (std::size_t a = 0; a < active_.size(); ++a) {
      if (combined_[a] < threshold) continue;
      const std::size_t i = base_ + active_[a];
      ++(*env_.stats)[i].warnings;
      auto& engine = (*env_.engines)[i];
      if (hardened) {
        try {
          engine.act(*nodes[i], combined_[a], config.mea, (*env_.stats)[i]);
        } catch (...) {  // pfm-lint: allow(concurrency) — shard-local
                         // capture; quarantined right below like the
                         // lockstep loop's Act stage
          errors_[a] = std::current_exception();
        }
      } else {
        engine.act(*nodes[i], combined_[a], config.mea, (*env_.stats)[i]);
      }
    }
    if (hardened) {
      for (std::size_t a = 0; a < active_.size(); ++a) {
        if (!errors_[a]) continue;
        inst.node_faults_total->inc();
        quarantine_local(active_[a], describe(errors_[a]));
      }
    }
  }
  inst.act_latency->observe(seconds_since(act_start));

  // --- Reschedule survivors per the adaptive policy. ------------------------
  const SchedulePolicy& policy = config.schedule;
  for (std::size_t a = 0; a < active_.size(); ++a) {
    const std::size_t local = active_[a];
    sched_[local].last_score = combined_[a];
    if (node_state_[local].quarantined) continue;
    const auto& node = *nodes[base_ + local];
    if (node.finished() || node.now() >= t) continue;
    auto& ns = sched_[local];
    const bool hot = !policy.adaptive || node_is_hot(local, combined_[a]);
    const std::size_t gap = policy.next_gap(ns.prev_gap, hot);
    ns.prev_gap = static_cast<std::uint32_t>(gap);
    ns.pending_gap = static_cast<std::uint32_t>(gap);
    calendar_.schedule(tick + gap, static_cast<std::uint32_t>(local));
    ns.scheduled = true;
    ns.due_tick = tick + gap;
  }
}

std::size_t ShardController::open_breakers() const noexcept {
  std::size_t open = 0;
  for (const auto& breaker : breakers_) {
    if (breaker.open) ++open;
  }
  return open;
}

std::size_t ShardController::quarantined_nodes() const noexcept {
  std::size_t quarantined = 0;
  for (const auto& state : node_state_) {
    if (state.quarantined) ++quarantined;
  }
  return quarantined;
}

std::size_t ShardController::scratch_capacity_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& s : batch_scratch_) total += s.capacity_bytes();
  return total;
}

}  // namespace pfm::runtime
