#include "runtime/scp_system.hpp"

namespace pfm::runtime {

std::uint64_t derive_node_seed(std::uint64_t base_seed,
                               std::size_t node_index) noexcept {
  if (node_index == 0) return base_seed;
  // splitmix64 finalizer over the (seed, index) pair.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                    static_cast<std::uint64_t>(node_index);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<std::unique_ptr<core::ManagedSystem>> make_scp_fleet(
    const telecom::SimConfig& base, std::size_t count) {
  std::vector<std::unique_ptr<core::ManagedSystem>> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    telecom::SimConfig cfg = base;
    cfg.seed = derive_node_seed(base.seed, i);
    fleet.push_back(std::make_unique<ScpManagedSystem>(cfg));
  }
  return fleet;
}

}  // namespace pfm::runtime
