#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/annotations.hpp"

namespace pfm::runtime {

/// Scheduling mode of the pool. Scheduling never influences results —
/// outputs land in disjoint slots and per-task randomness lives inside
/// the task — so the mode is purely a wall-time trade-off, and the fleet
/// conformance suite pins both modes to byte-identical exports.
struct ThreadPoolOptions {
  /// Persistent-worker fast path: batches are published through an atomic
  /// generation counter (a release-store the workers acquire-spin on for
  /// a bounded number of iterations before parking on the condition
  /// variable), indices are pre-partitioned into per-shard queues that
  /// each thread drains before stealing from its neighbours, and
  /// dispatch falls back to an inline loop whenever waking workers
  /// cannot help (single-index batches, or fewer hardware threads than
  /// pool threads leaving no real parallelism to exploit). false keeps
  /// the original fork/join monitor handshake — the reference path.
  bool persistent = false;
  /// Busy-wait budget (loop iterations) before a persistent worker goes
  /// to sleep, and before the caller blocks on batch completion.
  std::size_t spin_iterations = 4096;
};

/// Fixed-size thread pool for data-parallel index loops. Deliberately
/// minimal — no task futures, no dynamic sizing: the fleet controller's
/// stages are homogeneous index ranges, so claiming indices off shared
/// cursors balances load well enough and keeps the scheduling
/// deterministic in everything that matters (which thread runs an index
/// never influences results; outputs go to disjoint slots).
///
/// The constructing thread participates in every parallel_for, so
/// ThreadPool(1) spawns no workers at all and runs loops inline.
class ThreadPool {
 public:
  /// `num_threads` counts the caller: the pool spawns num_threads - 1
  /// workers. 0 is treated as 1.
  explicit ThreadPool(std::size_t num_threads, ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads applied to a loop, caller included.
  std::size_t num_threads() const noexcept { return workers_.size() + 1; }

  /// Runs fn(0) ... fn(n-1), distributed over the pool; returns when all
  /// n calls finished. Not reentrant and not thread-safe: only the
  /// owning thread may call it, and fn must not call parallel_for on the
  /// same pool. If any fn throws, every index still runs and the
  /// lowest-index exception is rethrown here after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but failures never propagate: `errors` is resized
  /// to n and errors[i] receives the exception fn(i) threw (null when it
  /// succeeded). Every index runs, so a caller can map each failure back
  /// to the task — the fleet loop uses this to quarantine the one node
  /// that threw instead of aborting the round.
  void parallel_for_captured(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             std::vector<std::exception_ptr>& errors);

 private:
  void worker_loop();
  void persistent_worker_loop(std::size_t shard);
  // Drains indices of the current batch off the shared cursor. Reads the
  // batch descriptor (fn_/n_/errors_) without holding mu_: the descriptor
  // is published under mu_ before generation_ is bumped, workers observe
  // the bump under mu_ before calling this, and the caller only resets
  // the descriptor after workers_pending_ drained back to zero under
  // mu_ — the classic monitor handshake the analysis cannot see through.
  void run_indices() PFM_NO_THREAD_SAFETY_ANALYSIS;
  // Persistent-mode equivalents: the descriptor and the per-shard
  // cursors are published *before* the release-store on batch_gen_, and
  // every worker access happens after the matching acquire-load, so the
  // happens-before edge the mu_ annotation documents is carried by the
  // generation counter instead of the lock.
  void publish_and_run(std::size_t n, const std::function<void(std::size_t)>& fn,
                       std::vector<std::exception_ptr>& errors)
      PFM_NO_THREAD_SAFETY_ANALYSIS;
  // Drains the caller's/worker's own shard queue, then steals from the
  // neighbouring shards until the whole index space is exhausted.
  void run_shards(std::size_t first_shard) PFM_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;
  ThreadPoolOptions options_;
  // Hardware parallelism actually available to this process; dispatching
  // to more runnable threads than cores only adds wake/sleep churn.
  std::size_t effective_threads_ = 1;

  Mutex mu_;
  std::condition_variable work_cv_;  // signals workers: new batch / stop
  std::condition_variable done_cv_;  // signals caller: workers drained
  std::uint64_t generation_ PFM_GUARDED_BY(mu_) = 0;  // batch counter
  std::size_t workers_pending_ PFM_GUARDED_BY(mu_) = 0;
  bool stop_ PFM_GUARDED_BY(mu_) = false;

  // Current batch, written by parallel_for_captured before workers are
  // woken. Exceptions land in (*errors_)[i] — disjoint slots, no lock.
  // Guarded by mu_ for every access except the functions annotated
  // above (see their comments for the replacement happens-before edge).
  const std::function<void(std::size_t)>* fn_ PFM_GUARDED_BY(mu_) = nullptr;
  std::size_t n_ PFM_GUARDED_BY(mu_) = 0;
  std::atomic<std::size_t> next_{0};
  std::vector<std::exception_ptr>* errors_ PFM_GUARDED_BY(mu_) = nullptr;
  std::vector<std::exception_ptr> scratch_errors_;  // parallel_for's buffer

  // Persistent-mode batch barrier: generation counter (release on
  // publish, acquire on consume), outstanding-worker count, and the
  // per-shard index queues ([cursor, end) per shard; stealing walks the
  // other shards' cursors, so every index still runs exactly once).
  std::atomic<std::uint64_t> batch_gen_{0};
  std::atomic<std::size_t> batch_pending_{0};
  std::unique_ptr<std::atomic<std::size_t>[]> shard_next_;
  std::vector<std::size_t> shard_end_ PFM_GUARDED_BY(mu_);
};

}  // namespace pfm::runtime
