#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/annotations.hpp"

namespace pfm::runtime {

/// Fixed-size thread pool for data-parallel index loops. Deliberately
/// minimal — no task queue, no work stealing: the fleet controller's
/// stages are homogeneous index ranges, so a shared atomic cursor
/// balances load well enough and keeps the scheduling deterministic in
/// everything that matters (which thread runs an index never influences
/// results; outputs go to disjoint slots).
///
/// The constructing thread participates in every parallel_for, so
/// ThreadPool(1) spawns no workers at all and runs loops inline.
class ThreadPool {
 public:
  /// `num_threads` counts the caller: the pool spawns num_threads - 1
  /// workers. 0 is treated as 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads applied to a loop, caller included.
  std::size_t num_threads() const noexcept { return workers_.size() + 1; }

  /// Runs fn(0) ... fn(n-1), distributed over the pool; returns when all
  /// n calls finished. Not reentrant and not thread-safe: only the
  /// owning thread may call it, and fn must not call parallel_for on the
  /// same pool. If any fn throws, every index still runs and the
  /// lowest-index exception is rethrown here after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but failures never propagate: `errors` is resized
  /// to n and errors[i] receives the exception fn(i) threw (null when it
  /// succeeded). Every index runs, so a caller can map each failure back
  /// to the task — the fleet loop uses this to quarantine the one node
  /// that threw instead of aborting the round.
  void parallel_for_captured(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             std::vector<std::exception_ptr>& errors);

 private:
  void worker_loop();
  // Drains indices of the current batch. Reads the batch descriptor
  // (fn_/n_/errors_) without holding mu_: the descriptor is published
  // under mu_ before generation_ is bumped, workers observe the bump
  // under mu_ before calling this, and the caller only resets the
  // descriptor after workers_pending_ drained back to zero under mu_ —
  // the classic monitor handshake the analysis cannot see through.
  void run_indices() PFM_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;

  Mutex mu_;
  std::condition_variable work_cv_;  // signals workers: new batch / stop
  std::condition_variable done_cv_;  // signals caller: workers drained
  std::uint64_t generation_ PFM_GUARDED_BY(mu_) = 0;  // batch counter
  std::size_t workers_pending_ PFM_GUARDED_BY(mu_) = 0;
  bool stop_ PFM_GUARDED_BY(mu_) = false;

  // Current batch, written by parallel_for_captured before workers are
  // woken. Exceptions land in (*errors_)[i] — disjoint slots, no lock.
  // Guarded by mu_ for every access except run_indices (see above).
  const std::function<void(std::size_t)>* fn_ PFM_GUARDED_BY(mu_) = nullptr;
  std::size_t n_ PFM_GUARDED_BY(mu_) = 0;
  std::atomic<std::size_t> next_{0};
  std::vector<std::exception_ptr>* errors_ PFM_GUARDED_BY(mu_) = nullptr;
  std::vector<std::exception_ptr> scratch_errors_;  // parallel_for's buffer
};

}  // namespace pfm::runtime
