#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pfm::runtime {

/// Fixed-size thread pool for data-parallel index loops. Deliberately
/// minimal — no task queue, no work stealing: the fleet controller's
/// stages are homogeneous index ranges, so a shared atomic cursor
/// balances load well enough and keeps the scheduling deterministic in
/// everything that matters (which thread runs an index never influences
/// results; outputs go to disjoint slots).
///
/// The constructing thread participates in every parallel_for, so
/// ThreadPool(1) spawns no workers at all and runs loops inline.
class ThreadPool {
 public:
  /// `num_threads` counts the caller: the pool spawns num_threads - 1
  /// workers. 0 is treated as 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads applied to a loop, caller included.
  std::size_t num_threads() const noexcept { return workers_.size() + 1; }

  /// Runs fn(0) ... fn(n-1), distributed over the pool; returns when all
  /// n calls finished. Not reentrant and not thread-safe: only the
  /// owning thread may call it, and fn must not call parallel_for on the
  /// same pool. If any fn throws, every index still runs and the
  /// lowest-index exception is rethrown here after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but failures never propagate: `errors` is resized
  /// to n and errors[i] receives the exception fn(i) threw (null when it
  /// succeeded). Every index runs, so a caller can map each failure back
  /// to the task — the fleet loop uses this to quarantine the one node
  /// that threw instead of aborting the round.
  void parallel_for_captured(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             std::vector<std::exception_ptr>& errors);

 private:
  void worker_loop();
  void run_indices();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: new batch / stop
  std::condition_variable done_cv_;  // signals caller: workers drained
  std::uint64_t generation_ = 0;     // batch counter, guarded by mu_
  std::size_t workers_pending_ = 0;  // workers still in the current batch
  bool stop_ = false;

  // Current batch, written by parallel_for_captured before workers are
  // woken. Exceptions land in (*errors_)[i] — disjoint slots, no lock.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::vector<std::exception_ptr>* errors_ = nullptr;
  std::vector<std::exception_ptr> scratch_errors_;  // parallel_for's buffer
};

}  // namespace pfm::runtime
