#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/managed_system.hpp"
#include "telecom/config.hpp"
#include "telecom/simulator.hpp"

namespace pfm::runtime {

/// Adapts telecom::ScpSimulator to the core::ManagedSystem interface, so
/// the MEA core drives the simulated SCP without seeing any telecom type.
/// Either borrows an externally owned simulator (the caller keeps direct
/// access for assertions and trace extraction) or owns one constructed
/// from a SimConfig (the fleet case).
class ScpManagedSystem final : public core::ManagedSystem {
 public:
  /// Borrows `sim`; the simulator must outlive the adapter.
  explicit ScpManagedSystem(telecom::ScpSimulator& sim) : sim_(&sim) {}

  /// Owns a fresh simulator built from `config`.
  explicit ScpManagedSystem(const telecom::SimConfig& config)
      : owned_(std::make_unique<telecom::ScpSimulator>(config)),
        sim_(owned_.get()) {}

  telecom::ScpSimulator& simulator() noexcept { return *sim_; }
  const telecom::ScpSimulator& simulator() const noexcept { return *sim_; }

  std::string name() const override {
    return "scp-" + std::to_string(sim_->config().seed);
  }

  double now() const override { return sim_->now(); }
  double horizon() const override { return sim_->config().duration; }
  bool finished() const override { return sim_->finished(); }
  void step_to(double t) override { sim_->step_to(t); }

  const mon::MonitoringDataset& trace() const override {
    return sim_->trace();
  }

  std::size_t num_units() const override { return sim_->num_nodes(); }

  core::UnitHealth unit_health(std::size_t unit) const override {
    const auto& node = sim_->node(unit);
    core::UnitHealth h;
    h.available = node.available(sim_->now());
    h.memory_pressure = node.memory_pressure();
    h.cascade_stage = node.cascade_stage();
    h.leak_active = node.leak_active();
    return h;
  }

  double offered_load() const override { return sim_->current_arrival_rate(); }
  double unit_capacity() const override {
    return sim_->config().node_capacity;
  }
  bool service_down() const override { return sim_->service_down(); }

  /// Symptom-delta trigger for the adaptive scheduler: any active fault
  /// (leak, cascade, down unit, service failure) pins the node dense;
  /// otherwise urgency tracks the worst unit's memory pressure, so aging
  /// nodes drift back toward dense sampling as they approach trouble.
  core::SchedulingHint scheduling_hint() const override {
    core::SchedulingHint hint;  // urgency 1.0: the dense-safe default
    if (sim_->service_down()) return hint;
    double urgency = 0.0;
    for (std::size_t u = 0; u < sim_->num_nodes(); ++u) {
      const auto& node = sim_->node(u);
      if (node.leak_active() || node.cascade_stage() > 0 ||
          !node.available(sim_->now())) {
        return hint;
      }
      urgency = std::max(urgency, node.memory_pressure());
    }
    hint.urgency = urgency;
    return hint;
  }

  void restart_unit(std::size_t unit) override {
    sim_->preventive_restart(unit);
  }
  void shed_load(double fraction, double duration) override {
    sim_->shed_load(fraction, duration);
  }
  void checkpoint() override { sim_->checkpoint(); }
  void prepare_for_failure(double window) override {
    sim_->prepare_for_failure(window);
  }

  core::SystemStats system_stats() const override {
    const auto& s = sim_->stats();
    core::SystemStats out;
    out.total_requests = s.total_requests;
    out.violations = s.violations;
    out.failures = s.failures;
    out.downtime = s.downtime;
    out.shed_requests = s.shed_requests;
    out.preventive_restarts = s.preventive_restarts;
    out.prepared_repairs = s.prepared_repairs;
    out.unprepared_repairs = s.unprepared_repairs;
    out.simulated = s.simulated;
    return out;
  }

 private:
  std::unique_ptr<telecom::ScpSimulator> owned_;  // null when borrowing
  telecom::ScpSimulator* sim_;
};

/// Statistically independent per-node RNG stream: splitmix64 finalizer
/// over (base_seed, node_index), so neighboring node indices land far
/// apart in seed space. Node 0 keeps base_seed — a 1-node fleet is
/// bit-identical to a standalone simulator with the same config.
std::uint64_t derive_node_seed(std::uint64_t base_seed,
                               std::size_t node_index) noexcept;

/// Builds `count` owned SCP systems from `base`, one deterministic RNG
/// stream per node (see derive_node_seed).
std::vector<std::unique_ptr<core::ManagedSystem>> make_scp_fleet(
    const telecom::SimConfig& base, std::size_t count);

}  // namespace pfm::runtime
