#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/managed_system.hpp"
#include "core/mea.hpp"
#include "obs/observability.hpp"
#include "prediction/predictor.hpp"
#include "runtime/annotations.hpp"
#include "runtime/thread_pool.hpp"

namespace pfm::runtime {

/// Fault handling of the fleet loop itself. Enabled by default: with
/// healthy components none of it ever engages, so the fault-free path is
/// bit-identical to a resilience-free loop. Disabled, the controller
/// reverts to fail-fast (the first component exception aborts the run) —
/// the fault-injection bench's "no hardening" arm.
struct ResilienceConfig {
  bool enabled = true;
  /// Consecutive Monitor rounds a node may make no time progress before
  /// it is quarantined as hung.
  std::size_t max_stall_rounds = 3;
  /// Consecutive faulty Evaluate rounds (a throw, or any non-finite
  /// score) before a predictor's circuit breaker opens.
  std::size_t breaker_trip_failures = 3;
  /// Rounds a tripped predictor sits out before a half-open probe round.
  std::size_t breaker_open_rounds = 8;
};

/// Execution path of the fleet loop's hot stages. Both paths compute the
/// same function — the conformance suite pins scores, telemetry and every
/// sim-time export byte-identical between them at several thread counts —
/// so the toggle trades only wall time, never results.
enum class FleetPath : std::uint8_t {
  /// Original shape: fork/join pool handshake per parallel section,
  /// per-call scoring buffers inside score_batch.
  kReference = 0,
  /// Hot-path shape: persistent pool workers (generation-counter barrier,
  /// per-shard queues) and arena-backed SoA batched scoring that reuses
  /// one scratch arena per predictor across rounds.
  kOptimized = 1
};

/// FleetController configuration: the per-node MEA parameters plus the
/// degree of parallelism.
struct FleetConfig {
  core::MeaConfig mea;
  /// Threads applied to the fleet loop (caller included). The thread
  /// count never affects results — only wall time.
  std::size_t num_threads = 1;
  /// Hot-path selection (wall-time only; see FleetPath).
  FleetPath path = FleetPath::kOptimized;
  ResilienceConfig resilience;
  /// External observability hub (metrics + tracing + exporters). Must be
  /// sized with shards >= num_threads and not shared between concurrently
  /// running controllers. nullptr = the controller keeps a private
  /// metrics-only hub, so telemetry() always has a registry to read —
  /// the loop's bookkeeping cost is the same either way, and tracing
  /// stays completely off.
  obs::Observability* obs = nullptr;
};

/// Wall time spent in each MEA stage, summed over rounds (seconds).
struct StageLatency {
  double monitor_seconds = 0.0;   ///< advancing the managed systems
  double evaluate_seconds = 0.0;  ///< batched predictor scoring + reduce
  double act_seconds = 0.0;       ///< countermeasure selection/execution
};

/// Observed-fault counters of one fleet run: what the hardening actually
/// absorbed. All zero on a healthy fleet. (The injection subsystem's
/// InjectionStats counts the cause side; these count the effect side.)
struct ResilienceStats {
  std::size_t node_faults = 0;         ///< exceptions caught in Monitor/Act
  std::size_t nodes_quarantined = 0;   ///< currently quarantined nodes
  std::size_t stall_detections = 0;    ///< no-progress Monitor node-rounds
  std::size_t predictor_faults = 0;    ///< faulty predictor-rounds
  std::size_t breaker_trips = 0;       ///< closed/half-open -> open events
  std::size_t breakers_open = 0;       ///< currently open breakers
  std::size_t scores_sanitized = 0;    ///< non-finite scores excluded
};

/// Fleet-level telemetry snapshot: aggregated MEA and downtime statistics
/// plus per-stage latency and fault counters. Since the observability
/// rework this is a *view over the metrics registry* — every counter
/// below is read back from the controller's obs hub, so a Prometheus
/// scrape and a telemetry() call can never disagree.
struct FleetTelemetry {
  std::size_t nodes = 0;
  std::size_t rounds = 0;           ///< lockstep evaluation rounds run
  std::size_t scores_computed = 0;  ///< individual predictor scores
  std::size_t warnings_raised = 0;  ///< across the whole fleet
  StageLatency latency;
  ResilienceStats resilience;
  core::MeaStats mea;         ///< sum of the per-node MeaStats (includes
                              ///< action retry/abandon counters)
  core::SystemStats system;   ///< sum of the per-node SystemStats
};

/// Runs the Monitor-Evaluate-Act loop over a fleet of managed systems on
/// a fixed thread pool — the runtime shape of the Fig. 11 blueprint at
/// production scale: shared, immutable predictors; one Act engine and
/// one deterministic RNG stream per node.
///
/// Rounds are lockstep: every unfinished node advances one evaluation
/// interval (Monitor, parallel over nodes), then each predictor scores
/// the whole fleet in one score_batch call (Evaluate, parallel over
/// predictors), then warned nodes run their countermeasures (Act,
/// parallel over nodes). Nodes never share mutable state, every output
/// lands in its own slot, and per-node randomness lives inside the node,
/// so results are bit-identical for any thread count.
///
/// The loop is itself proactively fault-managed (ResilienceConfig):
///  - a node whose Monitor/Act stage throws, or that stops making time
///    progress, is *quarantined* — recorded with its reason and excluded
///    from further rounds while the rest of the fleet keeps running;
///  - a predictor that throws or emits non-finite scores repeatedly is
///    tripped out of the ensemble by a per-predictor *circuit breaker*
///    and periodically re-probed (half-open); the remaining predictors
///    carry the Evaluate stage in degraded mode;
///  - non-finite scores never reach the warning decision (sanitized and
///    counted);
///  - failing countermeasures follow the core ActionRetryPolicy (bounded
///    retry, exponential backoff).
/// All of it is deterministic: quarantine and breaker transitions depend
/// only on per-round outcomes, which are themselves thread-count
/// invariant.
class FleetController {
 public:
  FleetController(std::vector<std::unique_ptr<core::ManagedSystem>> nodes,
                  FleetConfig config);

  /// Registers a trained symptom predictor, shared (read-only) by all
  /// nodes.
  void add_symptom_predictor(std::shared_ptr<const pred::SymptomPredictor> p);

  /// Registers a trained event predictor, shared (read-only) by all nodes.
  void add_event_predictor(std::shared_ptr<const pred::EventPredictor> p);

  /// Registers a countermeasure with every node's Act engine: the factory
  /// is invoked once per node, so actions never see another node's
  /// system.
  void add_action(
      const std::function<std::unique_ptr<act::Action>()>& factory);

  /// Runs every node to its horizon. With resilience enabled this never
  /// throws on component faults: failing nodes are quarantined and the
  /// run completes with whatever remains of the fleet.
  void run();

  /// Runs every node until time `t` (or its horizon, whichever is first).
  void run_until(double t);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  const core::ManagedSystem& node(std::size_t i) const { return *nodes_.at(i); }
  const core::MeaStats& node_mea_stats(std::size_t i) const {
    return stats_.at(i);
  }

  bool node_quarantined(std::size_t i) const {
    RoleGuard guard(controller_);
    return node_state_.at(i).quarantined;
  }
  /// Human-readable cause ("" while not quarantined).
  const std::string& node_quarantine_reason(std::size_t i) const {
    RoleGuard guard(controller_);
    return node_state_.at(i).reason;
  }

  /// True when predictor `p`'s breaker is currently open (predictors are
  /// numbered symptom first, then event, in registration order).
  bool predictor_tripped(std::size_t p) const {
    RoleGuard guard(controller_);
    return p < breakers_.size() && breakers_[p].open;
  }

  /// Aggregates the current per-node statistics and latency counters.
  /// Counter-valued fields are read back from the metrics registry.
  FleetTelemetry telemetry() const;

  /// Total reserved bytes across the per-predictor scoring arenas (the
  /// optimized path's reusable scratch; 0 on the reference path). Also
  /// exported as the wall-clock gauge `pfm_fleet_scratch_bytes`.
  std::size_t scratch_capacity_bytes() const noexcept;

  /// Number of rounds that grew the arena footprint. Stabilizes after
  /// warm-up — the stress suite asserts no growth once the fleet reached
  /// steady state.
  std::size_t scratch_grow_events() const noexcept {
    return scratch_grow_events_;
  }

  /// The hub the controller records into: the external one from
  /// FleetConfig::obs, else the private metrics-only fallback.
  const obs::Observability& observability() const noexcept { return *obs_; }
  obs::Observability& observability() noexcept { return *obs_; }

 private:
  /// Per-node loop state beyond the MEA counters.
  struct NodeState {
    bool quarantined = false;
    std::string reason;
    double quarantine_time = 0.0;
    std::size_t stall_streak = 0;  ///< consecutive no-progress rounds
  };

  /// Per-predictor circuit breaker (closed -> open -> half-open probe).
  struct Breaker {
    std::size_t failure_streak = 0;   ///< consecutive faulty rounds
    bool open = false;
    std::size_t open_rounds_left = 0; ///< rounds until the half-open probe
  };

  void quarantine(std::size_t node_index, const std::string& reason)
      PFM_REQUIRES(controller_);
  static std::string describe(const std::exception_ptr& error);

  std::vector<std::unique_ptr<core::ManagedSystem>> nodes_;
  FleetConfig config_;
  std::vector<std::shared_ptr<const pred::SymptomPredictor>> symptom_;
  std::vector<std::shared_ptr<const pred::EventPredictor>> event_;
  std::vector<core::ActEngine> engines_;  // one per node
  std::vector<core::MeaStats> stats_;     // one per node
  ThreadPool pool_;

  // Round-scratch arena, reused across rounds (and run_until calls) so
  // the hot loop stays allocation-free after warm-up — on both paths;
  // only the batch_scratch_ arenas are optimized-path-specific. Worker
  // lambdas touch disjoint slots only (like stats_/engines_ above), and
  // sizes change exclusively between parallel sections, so none of this
  // needs the controller capability.
  std::vector<std::size_t> active_;           // node index per stepped node
  std::vector<double> pre_step_time_;         // now() before Monitor
  std::vector<std::exception_ptr> round_errors_;
  std::vector<pred::SymptomContext> contexts_;
  std::vector<std::size_t> context_owner_;    // active-list position
  std::vector<mon::ErrorSequence> sequences_;
  std::vector<double> combined_;              // max score per active node
  std::vector<std::vector<double>> columns_;  // per-predictor score columns
  std::vector<std::size_t> live_;             // predictors scored this round
  std::vector<pred::BatchScratch> batch_scratch_;  // one arena per predictor
  std::size_t scratch_grow_events_ = 0;
  std::size_t scratch_bytes_seen_ = 0;

  // Observability. The handles below are sharded instruments — safe to
  // bump from worker lambdas by construction (each thread owns its
  // shard), so unlike the role-guarded state they need no capability.
  std::unique_ptr<obs::Observability> owned_obs_;  // fallback when none given
  obs::Observability* obs_ = nullptr;              // never null after ctor
  obs::Counter* rounds_total_ = nullptr;
  obs::Counter* scores_total_ = nullptr;
  obs::Counter* warnings_total_ = nullptr;
  obs::Counter* node_faults_total_ = nullptr;
  obs::Counter* stall_detections_total_ = nullptr;
  obs::Counter* quarantines_total_ = nullptr;
  obs::Counter* predictor_faults_total_ = nullptr;
  obs::Counter* breaker_trips_total_ = nullptr;
  obs::Counter* scores_sanitized_total_ = nullptr;
  obs::Histogram* monitor_latency_ = nullptr;
  obs::Histogram* evaluate_latency_ = nullptr;
  obs::Histogram* act_latency_ = nullptr;
  obs::Gauge* nodes_gauge_ = nullptr;
  obs::Gauge* quarantined_gauge_ = nullptr;
  obs::Gauge* breakers_open_gauge_ = nullptr;
  // Hot-path instruments. The batch-size histogram is sim-clock: batch
  // sizes are pure functions of sim state and identical on both paths.
  // The scratch gauge is wall-clock — footprint differs between paths by
  // design, so it must stay out of the include_wall=false exports the
  // conformance suite compares.
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Gauge* scratch_bytes_gauge_ = nullptr;

  // Controller-thread-only state. Worker lambdas operate on disjoint
  // per-node/per-predictor slots of the vectors above; everything below
  // is read and mutated exclusively between parallel sections, which
  // the `controller_` role capability makes machine-checkable under
  // Clang (-Wthread-safety): touching it from a worker lambda — which
  // never holds a RoleGuard — breaks the build.
  ThreadRole controller_;
  std::vector<NodeState> node_state_ PFM_GUARDED_BY(controller_);
  std::vector<Breaker> breakers_ PFM_GUARDED_BY(controller_);
};

}  // namespace pfm::runtime
