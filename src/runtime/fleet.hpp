#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/managed_system.hpp"
#include "core/mea.hpp"
#include "prediction/predictor.hpp"
#include "runtime/thread_pool.hpp"

namespace pfm::runtime {

/// FleetController configuration: the per-node MEA parameters plus the
/// degree of parallelism.
struct FleetConfig {
  core::MeaConfig mea;
  /// Threads applied to the fleet loop (caller included). The thread
  /// count never affects results — only wall time.
  std::size_t num_threads = 1;
};

/// Wall time spent in each MEA stage, summed over rounds (seconds).
struct StageLatency {
  double monitor_seconds = 0.0;   ///< advancing the managed systems
  double evaluate_seconds = 0.0;  ///< batched predictor scoring + reduce
  double act_seconds = 0.0;       ///< countermeasure selection/execution
};

/// Fleet-level telemetry snapshot: aggregated MEA and downtime statistics
/// plus per-stage latency counters.
struct FleetTelemetry {
  std::size_t nodes = 0;
  std::size_t rounds = 0;           ///< lockstep evaluation rounds run
  std::size_t scores_computed = 0;  ///< individual predictor scores
  std::size_t warnings_raised = 0;  ///< across the whole fleet
  StageLatency latency;
  core::MeaStats mea;         ///< sum of the per-node MeaStats
  core::SystemStats system;   ///< sum of the per-node SystemStats
};

/// Runs the Monitor-Evaluate-Act loop over a fleet of managed systems on
/// a fixed thread pool — the runtime shape of the Fig. 11 blueprint at
/// production scale: shared, immutable predictors; one Act engine and
/// one deterministic RNG stream per node.
///
/// Rounds are lockstep: every unfinished node advances one evaluation
/// interval (Monitor, parallel over nodes), then each predictor scores
/// the whole fleet in one score_batch call (Evaluate, parallel over
/// predictors), then warned nodes run their countermeasures (Act,
/// parallel over nodes). Nodes never share mutable state, every output
/// lands in its own slot, and per-node randomness lives inside the node,
/// so results are bit-identical for any thread count.
class FleetController {
 public:
  FleetController(std::vector<std::unique_ptr<core::ManagedSystem>> nodes,
                  FleetConfig config);

  /// Registers a trained symptom predictor, shared (read-only) by all
  /// nodes.
  void add_symptom_predictor(std::shared_ptr<const pred::SymptomPredictor> p);

  /// Registers a trained event predictor, shared (read-only) by all nodes.
  void add_event_predictor(std::shared_ptr<const pred::EventPredictor> p);

  /// Registers a countermeasure with every node's Act engine: the factory
  /// is invoked once per node, so actions never see another node's
  /// system.
  void add_action(
      const std::function<std::unique_ptr<act::Action>()>& factory);

  /// Runs every node to its horizon.
  void run();

  /// Runs every node until time `t` (or its horizon, whichever is first).
  void run_until(double t);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  const core::ManagedSystem& node(std::size_t i) const { return *nodes_.at(i); }
  const core::MeaStats& node_mea_stats(std::size_t i) const {
    return stats_.at(i);
  }

  /// Aggregates the current per-node statistics and latency counters.
  FleetTelemetry telemetry() const;

 private:
  std::vector<std::unique_ptr<core::ManagedSystem>> nodes_;
  FleetConfig config_;
  std::vector<std::shared_ptr<const pred::SymptomPredictor>> symptom_;
  std::vector<std::shared_ptr<const pred::EventPredictor>> event_;
  std::vector<core::ActEngine> engines_;  // one per node
  std::vector<core::MeaStats> stats_;     // one per node
  ThreadPool pool_;

  std::size_t rounds_ = 0;
  std::size_t scores_computed_ = 0;
  std::size_t warnings_raised_ = 0;
  StageLatency latency_;
};

}  // namespace pfm::runtime
