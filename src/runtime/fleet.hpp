#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/managed_system.hpp"
#include "core/mea.hpp"
#include "core/sharding.hpp"
#include "ctmc/pfm_model.hpp"
#include "membership/membership_plan.hpp"
#include "obs/observability.hpp"
#include "obs/quality.hpp"
#include "prediction/predictor.hpp"
#include "runtime/annotations.hpp"
#include "runtime/schedule.hpp"
#include "runtime/thread_pool.hpp"

namespace pfm::runtime {

class ShardController;

/// Fault handling of the fleet loop itself. Enabled by default: with
/// healthy components none of it ever engages, so the fault-free path is
/// bit-identical to a resilience-free loop. Disabled, the controller
/// reverts to fail-fast (the first component exception aborts the run) —
/// the fault-injection bench's "no hardening" arm.
struct ResilienceConfig {
  bool enabled = true;
  /// Consecutive Monitor rounds a node may make no time progress before
  /// it is quarantined as hung.
  std::size_t max_stall_rounds = 3;
  /// Consecutive faulty Evaluate rounds (a throw, or any non-finite
  /// score) before a predictor's circuit breaker opens.
  std::size_t breaker_trip_failures = 3;
  /// Rounds a tripped predictor sits out before a half-open probe round.
  std::size_t breaker_open_rounds = 8;
};

/// Online prediction-quality scoreboard (DESIGN.md §12): a fleet-wide
/// obs::QualityTracker matching live warnings against ground-truth
/// failures (the Sect. 3.3 rule), plus a live Eq. 8 availability
/// estimate driven by the windowed combined-lane quality. Inactive (the
/// default) costs nothing: no quality instruments are registered and
/// every export stays byte-identical to a quality-free build. The
/// window geometry and warning threshold come from the owning
/// FleetConfig's MeaConfig — a single source of truth, so the online
/// counts reproduce the offline evaluation exactly.
struct FleetQualityConfig {
  bool enabled = false;
  /// Count a failure earlier than lead_time ahead as a true positive
  /// (must match EvalOptions::count_early_failures for cross-checks).
  bool count_early_failures = true;
  /// Pending-instant ring per node (see QualityConfig).
  std::size_t pending_capacity = 64;
  /// Sliding outcome window per (node, lane) behind the live gauges.
  std::size_t outcome_window = 128;
  /// Score-distribution bins per lane (streaming PR curve / AUC).
  std::size_t score_bins = 20;
  /// Eq. 8 CTMC parameters; the `quality` field is overwritten at each
  /// refresh with the live windowed (precision, recall, fpr) estimate,
  /// clamped off the degenerate boundaries via ctmc::clamped_quality.
  ctmc::PfmModelParams model;
};

/// Execution path of the fleet loop's hot stages. All paths compute the
/// same function — the conformance suite pins scores, telemetry and every
/// sim-time export byte-identical between them at several thread counts —
/// so the toggle trades only wall time, never results.
enum class FleetPath : std::uint8_t {
  /// Original shape: fork/join pool handshake per parallel section,
  /// per-call scoring buffers inside score_batch.
  kReference = 0,
  /// Hot-path shape: persistent pool workers (generation-counter barrier,
  /// per-shard queues) and arena-backed SoA batched scoring that reuses
  /// one scratch arena per predictor across rounds.
  kOptimized = 1,
  /// kOptimized plus the vectorized Eq. 1 kernel sweep (num::simd vexp
  /// over the SoA columns instead of libm). Scores differ from the other
  /// paths only within the documented ULP bound (DESIGN.md §13); every
  /// threshold decision — and therefore every sim-time export — stays
  /// byte-identical on the conformance corpus.
  kSimd = 2
};

/// Loop structure of the fleet runtime.
enum class FleetScheduler : std::uint8_t {
  /// One global round: every live node steps, the whole fleet is scored,
  /// warned nodes act — all in lockstep. The PR-5 reference shape.
  kLockstep = 0,
  /// Sharded hierarchical controllers driven by a per-shard calendar
  /// queue (runtime/schedule.hpp): each shard drains its own event
  /// calendar between cross-shard epoch barriers, and nodes carry
  /// adaptive next-due times instead of being stepped every round. With
  /// a dense schedule, one shard and epoch_ticks == 1 every sim-time
  /// export is byte-identical to the lockstep path (conformance-pinned).
  kEventDriven = 1
};

/// FleetController configuration: the per-node MEA parameters plus the
/// degree of parallelism.
struct FleetConfig {
  core::MeaConfig mea;
  /// Threads applied to the fleet loop (caller included). The thread
  /// count never affects results — only wall time.
  std::size_t num_threads = 1;
  /// Hot-path selection (wall-time only; see FleetPath).
  FleetPath path = FleetPath::kOptimized;
  /// Loop structure (see FleetScheduler). Defaults to the lockstep
  /// reference shape; the sharded event-driven path is opt-in.
  FleetScheduler scheduler = FleetScheduler::kLockstep;
  /// Shards of the event-driven path (ignored under kLockstep). Nodes
  /// are partitioned into contiguous blocks (core::ShardLayout); shards
  /// run in parallel on the pool, everything inside a shard is
  /// sequential. Results depend on the shard count (per-shard breakers
  /// and batches) but never on the thread count.
  std::size_t num_shards = 1;
  /// Calendar ticks each shard advances between cross-shard epoch
  /// barriers (event-driven only). Larger values amortize the barrier;
  /// 1 keeps shards in per-tick sync (and epochs == rounds, the
  /// lockstep-equivalent accounting).
  std::size_t epoch_ticks = 8;
  /// Adaptive sampling policy of the event-driven scheduler.
  SchedulePolicy schedule;
  /// Elastic membership: a deterministic churn plan (scale-out bursts,
  /// rolling restarts, zone loss, drain) plus the closed-loop elasticity
  /// policy, applied at membership barriers — lockstep round starts, or
  /// event-driven epoch barriers. Inactive (the default) costs nothing:
  /// no membership metrics are registered and every export stays
  /// byte-identical to a membership-free build. Note that an active
  /// config quantizes churn to epoch boundaries, so epoch_ticks becomes
  /// semantic for churn timing (results stay thread-count invariant).
  membership::MembershipConfig membership;
  ResilienceConfig resilience;
  /// Online prediction-quality scoreboard + live Eq. 8 availability
  /// estimation (see FleetQualityConfig). Off by default.
  FleetQualityConfig quality;
  /// External observability hub (metrics + tracing + exporters). Must be
  /// sized with shards >= num_threads and not shared between concurrently
  /// running controllers. nullptr = the controller keeps a private
  /// metrics-only hub, so telemetry() always has a registry to read —
  /// the loop's bookkeeping cost is the same either way, and tracing
  /// stays completely off.
  obs::Observability* obs = nullptr;
};

/// Wall time spent in each MEA stage, summed over rounds (seconds).
struct StageLatency {
  double monitor_seconds = 0.0;   ///< advancing the managed systems
  double evaluate_seconds = 0.0;  ///< batched predictor scoring + reduce
  double act_seconds = 0.0;       ///< countermeasure selection/execution
};

/// Observed-fault counters of one fleet run: what the hardening actually
/// absorbed. All zero on a healthy fleet. (The injection subsystem's
/// InjectionStats counts the cause side; these count the effect side.)
struct ResilienceStats {
  std::size_t node_faults = 0;         ///< exceptions caught in Monitor/Act
  std::size_t nodes_quarantined = 0;   ///< currently quarantined nodes
  std::size_t stall_detections = 0;    ///< no-progress Monitor node-rounds
  std::size_t predictor_faults = 0;    ///< faulty predictor-rounds
  std::size_t breaker_trips = 0;       ///< closed/half-open -> open events
  std::size_t breakers_open = 0;       ///< currently open breakers
  std::size_t scores_sanitized = 0;    ///< non-finite scores excluded
};

/// Fleet-level telemetry snapshot: aggregated MEA and downtime statistics
/// plus per-stage latency and fault counters. Since the observability
/// rework this is a *view over the metrics registry* — every counter
/// below is read back from the controller's obs hub, so a Prometheus
/// scrape and a telemetry() call can never disagree.
struct FleetTelemetry {
  /// Live (non-departed) nodes; equals the fleet size while membership
  /// is inactive.
  std::size_t nodes = 0;
  /// Evaluation rounds: lockstep fleet rounds, or — event-driven —
  /// calendar ticks processed summed over shards. Kept for continuity;
  /// round-based thresholds are defined in the two fields below.
  std::size_t rounds = 0;
  /// Cross-fleet synchronization points: lockstep rounds, or epoch
  /// barriers of the event-driven path. epochs == rounds under lockstep
  /// (and under the event-driven path with epoch_ticks == 1).
  std::size_t epochs = 0;
  /// Individual node Monitor steps. This is the unit quarantine
  /// thresholds (max_stall_rounds) count in: node-local steps, not
  /// global rounds — identical under lockstep, but an adaptively
  /// backed-off node steps far fewer times than the fleet runs rounds.
  std::size_t node_steps = 0;
  std::size_t scores_computed = 0;  ///< individual predictor scores
  std::size_t warnings_raised = 0;  ///< across the whole fleet
  StageLatency latency;
  ResilienceStats resilience;
  /// Membership churn counters (views over pfm_fleet_membership_*; all
  /// zero while membership is inactive).
  membership::MembershipStats membership;
  core::MeaStats mea;         ///< sum of the per-node MeaStats (includes
                              ///< action retry/abandon counters)
  core::SystemStats system;   ///< sum of the per-node SystemStats, plus
                              ///< the retired stats of replaced systems
};

/// Per-node loop state beyond the MEA counters. Owned by the lockstep
/// controller or — event-driven — by the node's shard.
struct FleetNodeState {
  bool quarantined = false;
  std::string reason;
  double quarantine_time = 0.0;
  std::size_t stall_streak = 0;  ///< consecutive no-progress node steps
  /// Node left the fleet (membership leave/drain). The slot stays — so
  /// global indices, seed streams and fault-plan targets remain stable —
  /// but the node is excluded from every stage from depart_time on.
  bool departed = false;
  double depart_time = 0.0;
};

/// Per-predictor circuit breaker (closed -> open -> half-open probe).
/// Event-driven shards each keep their own bank: a predictor that only
/// misbehaves for one shard's batches trips only there. The open/probe
/// cooldown counts the owning controller's evaluation rounds (shard
/// ticks under the event-driven path).
struct PredictorBreaker {
  std::size_t failure_streak = 0;    ///< consecutive faulty rounds
  bool open = false;
  std::size_t open_rounds_left = 0;  ///< rounds until the half-open probe
};

/// Prebuilt metric handles shared by the lockstep loop and the shard
/// controllers. All sharded instruments — safe to bump from worker
/// threads by construction (each thread owns its registry shard).
struct FleetInstruments {
  obs::Counter* rounds_total = nullptr;
  obs::Counter* epochs_total = nullptr;
  obs::Counter* node_steps_total = nullptr;
  obs::Counter* scores_total = nullptr;
  obs::Counter* warnings_total = nullptr;
  obs::Counter* node_faults_total = nullptr;
  obs::Counter* stall_detections_total = nullptr;
  obs::Counter* quarantines_total = nullptr;
  obs::Counter* predictor_faults_total = nullptr;
  obs::Counter* breaker_trips_total = nullptr;
  obs::Counter* scores_sanitized_total = nullptr;
  obs::Histogram* monitor_latency = nullptr;
  obs::Histogram* evaluate_latency = nullptr;
  obs::Histogram* act_latency = nullptr;
  obs::Histogram* batch_size_hist = nullptr;
};

/// Runs the Monitor-Evaluate-Act loop over a fleet of managed systems on
/// a fixed thread pool — the runtime shape of the Fig. 11 blueprint at
/// production scale: shared, immutable predictors; one Act engine and
/// one deterministic RNG stream per node.
///
/// Under the default kLockstep scheduler rounds are lockstep: every
/// unfinished node advances one evaluation interval (Monitor, parallel
/// over nodes), then each predictor scores the whole fleet in one
/// score_batch call (Evaluate, parallel over predictors), then warned
/// nodes run their countermeasures (Act, parallel over nodes). Nodes
/// never share mutable state, every output lands in its own slot, and
/// per-node randomness lives inside the node, so results are
/// bit-identical for any thread count.
///
/// Under kEventDriven the fleet is partitioned into contiguous shards
/// (core::ShardLayout), each owned by a ShardController that drains its
/// own calendar queue of node due-times (runtime/schedule.hpp) —
/// Monitor/Evaluate/Act per calendar tick over just the due set, with
/// adaptive sampling backing quiet nodes off. Shards run in parallel
/// between cross-shard epoch barriers; everything inside a shard is
/// sequential and shard-local, so results are bit-identical for any
/// thread count and each shard replays independently.
///
/// The loop is itself proactively fault-managed (ResilienceConfig):
///  - a node whose Monitor/Act stage throws, or that stops making time
///    progress, is *quarantined* — recorded with its reason and excluded
///    from further rounds while the rest of the fleet keeps running;
///  - a predictor that throws or emits non-finite scores repeatedly is
///    tripped out of the ensemble by a per-predictor *circuit breaker*
///    and periodically re-probed (half-open); the remaining predictors
///    carry the Evaluate stage in degraded mode;
///  - non-finite scores never reach the warning decision (sanitized and
///    counted);
///  - failing countermeasures follow the core ActionRetryPolicy (bounded
///    retry, exponential backoff).
/// All of it is deterministic: quarantine and breaker transitions depend
/// only on per-round outcomes, which are themselves thread-count
/// invariant.
class FleetController {
 public:
  FleetController(std::vector<std::unique_ptr<core::ManagedSystem>> nodes,
                  FleetConfig config);
  ~FleetController();  // out-of-line: ShardController is incomplete here

  /// Registers a trained symptom predictor, shared (read-only) by all
  /// nodes.
  void add_symptom_predictor(std::shared_ptr<const pred::SymptomPredictor> p);

  /// Registers a trained event predictor, shared (read-only) by all nodes.
  void add_event_predictor(std::shared_ptr<const pred::EventPredictor> p);

  /// Registers a countermeasure with every node's Act engine: the factory
  /// is invoked once per node, so actions never see another node's
  /// system.
  void add_action(
      const std::function<std::unique_ptr<act::Action>()>& factory);

  /// Runs every node to its horizon. With resilience enabled this never
  /// throws on component faults: failing nodes are quarantined and the
  /// run completes with whatever remains of the fleet.
  void run();

  /// Runs every node until time `t` (or its horizon, whichever is first).
  void run_until(double t);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  const core::ManagedSystem& node(std::size_t i) const { return *nodes_.at(i); }
  const core::MeaStats& node_mea_stats(std::size_t i) const {
    return stats_.at(i);
  }

  bool node_quarantined(std::size_t i) const;
  /// Human-readable cause ("" while not quarantined).
  const std::string& node_quarantine_reason(std::size_t i) const;
  /// True once membership removed node `i` (leave or drain). The slot —
  /// and the ManagedSystem behind it, frozen at depart time — remains
  /// addressable.
  bool node_departed(std::size_t i) const;
  /// Current incarnation of slot `i`: 0 for the initial population,
  /// +1 per membership restart. Always 0 while membership is inactive.
  std::size_t node_incarnation(std::size_t i) const;

  /// True when predictor `p`'s breaker is currently open (predictors are
  /// numbered symptom first, then event, in registration order). Under
  /// the event-driven path breakers are per-shard; this reports whether
  /// *any* shard currently has predictor `p` tripped.
  bool predictor_tripped(std::size_t p) const;

  /// Aggregates the current per-node statistics and latency counters.
  /// Counter-valued fields are read back from the metrics registry.
  FleetTelemetry telemetry() const;

  /// Total reserved bytes across the per-predictor scoring arenas (the
  /// optimized path's reusable scratch; 0 on the reference path). Also
  /// exported as the wall-clock gauge `pfm_fleet_scratch_bytes`.
  std::size_t scratch_capacity_bytes() const noexcept;

  /// Number of rounds that grew the arena footprint (summed over shards
  /// under the event-driven path). Stabilizes after warm-up — the stress
  /// suite asserts no growth once the fleet reached steady state.
  std::size_t scratch_grow_events() const noexcept;

  /// The hub the controller records into: the external one from
  /// FleetConfig::obs, else the private metrics-only fallback.
  const obs::Observability& observability() const noexcept { return *obs_; }
  obs::Observability& observability() noexcept { return *obs_; }

  /// The online quality tracker, or nullptr while FleetQualityConfig is
  /// disabled (or before the first run built it). Read between runs only.
  const obs::QualityTracker* quality_tracker() const noexcept {
    return quality_.get();
  }

  /// Freezes every registered mixture-kernel symptom predictor (UBF/RBF)
  /// into `dir` as `<dir>/<name>_<index>.pfmfrozen` artifacts and returns
  /// the written paths in registration order; predictors without a freeze
  /// path are skipped. The train -> freeze -> serve round trip: load each
  /// artifact with pred::FrozenPredictor::load and register it on a fresh
  /// controller — the frozen fleet's exports are byte-identical to this
  /// one's (the conformance suite pins it). Throws std::runtime_error
  /// when an artifact cannot be written.
  std::vector<std::string> freeze_symptom_predictors(
      const std::string& dir) const;

 private:
  void quarantine(std::size_t node_index, const std::string& reason)
      PFM_REQUIRES(controller_);
  static std::string describe(const std::exception_ptr& error);

  void run_lockstep(double t);
  void run_event_driven(double t);

  // --- elastic membership (controller thread, barrier-time only) -----------
  /// A membership change with at_time <= `t` is still waiting to apply.
  bool membership_pending(double t) const;
  /// Applies every due planned change at `member_now` (the barrier's
  /// position on the membership clock), evaluates the elasticity policy,
  /// and — when the structure changed — reshards and reactivates.
  void membership_barrier(double member_now, double t)
      PFM_REQUIRES(controller_);
  void apply_member_change(const membership::MemberChange& change,
                           double member_now) PFM_REQUIRES(controller_);
  /// Appends a fresh slot (seeded via derive_member_seed); returns it.
  std::size_t member_join(double at_time, bool policy_driven)
      PFM_REQUIRES(controller_);
  /// `leave_arg` is the kMemberLeave span payload: 0 leave, 1 drain.
  void member_depart(std::size_t i, double at_time, bool drain,
                     std::int64_t leave_arg) PFM_REQUIRES(controller_);
  void member_restart(std::size_t i, double at_time)
      PFM_REQUIRES(controller_);
  void evaluate_policy(double member_now) PFM_REQUIRES(controller_);
  /// Rebuilds the shard partition over the grown fleet with warm
  /// per-node handoff (event-driven only; lockstep state is global).
  void reshard(double member_now) PFM_REQUIRES(controller_);
  /// The authoritative per-node loop state: shard-owned under the
  /// event-driven scheduler, the controller's bank under lockstep.
  FleetNodeState& member_state(std::size_t i) PFM_REQUIRES(controller_);
  /// Last combined score of node `i` (the policy's drain signal).
  double member_score(std::size_t i) const PFM_REQUIRES(controller_);
  /// Builds the shard controllers (first event-driven run only): the
  /// layout, per-shard metric handles, and one ShardController per
  /// block. Idempotent afterwards.
  void ensure_shards();

  /// Arms the quality tracker and flight recorder for a run: builds the
  /// tracker on first use (FleetQualityConfig enabled), re-declares the
  /// predictor lanes (predictors may have been registered since the last
  /// run), sizes per-node scopes and attaches the Act engines to the
  /// flight recorder. Controller thread, before any parallel section.
  void ensure_observers_ready();
  /// Recomputes the scoreboard gauges and the Eq. 8 / Eq. 2 availability
  /// pair (model, measured, drift; per-shard model estimates under a
  /// multi-shard event-driven fleet) when a run settles.
  void refresh_quality_gauges();

  std::vector<std::unique_ptr<core::ManagedSystem>> nodes_;
  FleetConfig config_;
  std::vector<std::shared_ptr<const pred::SymptomPredictor>> symptom_;
  std::vector<std::shared_ptr<const pred::EventPredictor>> event_;
  std::vector<core::ActEngine> engines_;  // one per node
  std::vector<core::MeaStats> stats_;     // one per node
  ThreadPool pool_;

  // Round-scratch arena, reused across rounds (and run_until calls) so
  // the hot loop stays allocation-free after warm-up — on both paths;
  // only the batch_scratch_ arenas are optimized-path-specific. Worker
  // lambdas touch disjoint slots only (like stats_/engines_ above), and
  // sizes change exclusively between parallel sections, so none of this
  // needs the controller capability.
  std::vector<std::size_t> active_;           // node index per stepped node
  std::vector<double> pre_step_time_;         // now() before Monitor
  std::vector<std::exception_ptr> round_errors_;
  std::vector<pred::SymptomContext> contexts_;
  std::vector<std::size_t> context_owner_;    // active-list position
  std::vector<mon::ErrorSequence> sequences_;
  std::vector<double> combined_;              // max score per active node
  std::vector<std::vector<double>> columns_;  // per-predictor score columns
  std::vector<std::size_t> live_;             // predictors scored this round
  std::vector<pred::BatchScratch> batch_scratch_;  // one arena per predictor
  std::size_t scratch_grow_events_ = 0;
  std::size_t scratch_bytes_seen_ = 0;

  // Observability. The handles in inst_ are sharded instruments — safe
  // to bump from worker lambdas by construction (each thread owns its
  // shard), so unlike the role-guarded state they need no capability.
  // The batch-size histogram is sim-clock: batch sizes are pure
  // functions of sim state and identical on both execution paths. The
  // gauges (and the scratch gauge in particular) are controller-thread
  // instruments; the scratch gauge is wall-clock — footprint differs
  // between paths by design, so it must stay out of the
  // include_wall=false exports the conformance suite compares.
  std::unique_ptr<obs::Observability> owned_obs_;  // fallback when none given
  obs::Observability* obs_ = nullptr;              // never null after ctor
  FleetInstruments inst_;
  obs::Gauge* nodes_gauge_ = nullptr;
  obs::Gauge* quarantined_gauge_ = nullptr;
  obs::Gauge* breakers_open_gauge_ = nullptr;
  obs::Gauge* scratch_bytes_gauge_ = nullptr;

  // Online quality scoreboard + flight recorder (both off by default:
  // quality_ stays null unless FleetQualityConfig::enabled, flight_
  // stays null unless the hub was built with flight_capacity > 0 — so a
  // disabled config registers nothing and exports stay byte-identical).
  // The tracker's hot entry points are owning-thread operations like
  // SystemStats; everything else is controller-thread barrier-time.
  std::unique_ptr<obs::QualityTracker> quality_;
  obs::FlightRecorder* flight_ = nullptr;
  obs::Gauge* model_availability_gauge_ = nullptr;
  obs::Gauge* measured_availability_gauge_ = nullptr;
  obs::Gauge* availability_drift_gauge_ = nullptr;
  std::vector<double> quality_row_;           // lanes() scores, combined last
  std::vector<std::ptrdiff_t> ctx_of_active_; // active pos -> context index
  std::vector<std::uint8_t> scored_;          // predictor produced a column

  // Event-driven path: the shard partition and one controller per
  // block, built lazily on the first event-driven run. Shards own their
  // slice's quarantine/breaker/scheduling state; during an epoch each
  // shard is driven by exactly one pool thread and the epoch barrier
  // (the pool handshake) publishes everything back to this thread.
  core::ShardLayout layout_;
  std::vector<std::unique_ptr<ShardController>> shards_;
  std::uint64_t epoch_end_tick_ = 0;

  // Elastic membership. All of it is controller-thread barrier-time
  // state; the hot loops only ever read the departed flag through the
  // same banks that hold quarantine state. member_active_ gates every
  // membership code path — inactive configs register nothing and change
  // nothing, preserving byte-identity with membership-free builds.
  bool member_active_ = false;
  std::vector<membership::MemberChange> member_timeline_;
  std::size_t next_member_change_ = 0;
  /// Membership clock of the lockstep loop: rounds started, including
  /// idle rounds spent waiting for a future join. The event-driven loop
  /// uses epoch_end_tick_ instead; both clocks read k ticks before the
  /// k-th round/epoch, so the two schedulers agree on churn timing when
  /// epoch_ticks == 1.
  std::uint64_t member_ticks_ = 0;
  std::size_t live_nodes_ = 0;
  std::vector<std::size_t> incarnations_;  // per slot, +1 per restart
  std::vector<double> last_combined_;      // lockstep drain/mass signal
  bool layout_dirty_ = false;              // joins/restarts await reshard
  std::size_t policy_cooldown_left_ = 0;
  std::size_t policy_joins_ = 0;
  /// SystemStats of systems replaced by restarts (their successors start
  /// from zero; telemetry keeps the fleet totals monotone).
  core::SystemStats retired_system_stats_;
  /// Action factories replayed onto joiner/restart engines (stored only
  /// while membership is active).
  std::vector<std::function<std::unique_ptr<act::Action>()>>
      action_factories_;
  obs::Counter* member_joined_total_ = nullptr;
  obs::Counter* member_left_total_ = nullptr;
  obs::Counter* member_handoffs_total_ = nullptr;
  obs::Counter* member_scale_ups_total_ = nullptr;
  obs::Counter* member_drains_total_ = nullptr;
  /// Per-shard membership attribution (multi-shard event-driven only),
  /// pinned to sum to the fleet totals like the pfm_shard_* throughput
  /// counters.
  struct ShardMemberCounters {
    obs::Counter* joined = nullptr;
    obs::Counter* left = nullptr;
    obs::Counter* handoffs = nullptr;
  };
  std::vector<ShardMemberCounters> shard_member_counters_;

  // Controller-thread-only state. Worker lambdas operate on disjoint
  // per-node/per-predictor slots of the vectors above; everything below
  // is read and mutated exclusively between parallel sections, which
  // the `controller_` role capability makes machine-checkable under
  // Clang (-Wthread-safety): touching it from a worker lambda — which
  // never holds a RoleGuard — breaks the build.
  ThreadRole controller_;
  std::vector<FleetNodeState> node_state_ PFM_GUARDED_BY(controller_);
  std::vector<PredictorBreaker> breakers_ PFM_GUARDED_BY(controller_);
};

}  // namespace pfm::runtime
