#include "runtime/schedule.hpp"

#include <algorithm>

namespace pfm::runtime {

namespace {

// Out-of-line slow path so the hot schedule() body stays throw-free
// (pfm-analyze hotpath: a throw would otherwise sit on every insert).
// pfm-cold
[[noreturn]] void throw_outside_ring_window() {
  throw std::logic_error("CalendarQueue: tick outside the ring window");
}

}  // namespace

CalendarQueue::CalendarQueue(std::size_t num_slots)
    : buckets_(num_slots > 0 ? num_slots : 1) {}

// pfm-hot
void CalendarQueue::schedule(std::uint64_t tick, std::uint32_t item) {
  if (tick < cursor_ || tick - cursor_ >= buckets_.size()) {
    throw_outside_ring_window();
  }
  buckets_[tick % buckets_.size()].push_back(item);
  ++scheduled_;
}

// pfm-hot
bool CalendarQueue::pop_due(std::uint64_t end_tick, std::uint64_t& tick,
                            std::vector<std::uint32_t>& due) {
  due.clear();
  if (scheduled_ == 0) {
    // Idle calendar: keep the cursor on the shared epoch grid so a later
    // activate() lands on the same tick every shard uses.
    cursor_ = std::max(cursor_, end_tick);
    return false;
  }
  while (cursor_ < end_tick) {
    auto& bucket = buckets_[cursor_ % buckets_.size()];
    if (!bucket.empty()) {
      due.swap(bucket);
      bucket.clear();
      // Buckets collect items from several source ticks in processing
      // order; ascending node order keeps per-tick iteration aligned
      // with the lockstep loop's conventions.
      std::sort(due.begin(), due.end());
      scheduled_ -= due.size();
      tick = cursor_++;
      return true;
    }
    ++cursor_;
  }
  return false;
}

void CalendarQueue::clear() noexcept {
  for (auto& bucket : buckets_) bucket.clear();
  scheduled_ = 0;
}

}  // namespace pfm::runtime
