#include "prediction/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "numerics/logistic.hpp"
#include "numerics/simd.hpp"
#include "numerics/stats.hpp"

namespace pfm::pred {

namespace {

/// Picks the variable with the strongest point-biserial correlation to the
/// failure label; returns (index, sign, mean, stddev).
struct VariablePick {
  std::size_t index = 0;
  double direction = 1.0;
  double mean = 0.0;
  double stddev = 1.0;
};

VariablePick pick_variable(const std::vector<mon::LabeledWindow>& windows,
                           std::size_t num_vars) {
  std::vector<int> labels;
  labels.reserve(windows.size());
  for (const auto& w : windows) labels.push_back(w.failure_follows ? 1 : 0);
  std::vector<double> label_d(labels.begin(), labels.end());

  VariablePick best;
  double best_abs = -1.0;
  std::vector<double> column(windows.size());
  for (std::size_t j = 0; j < num_vars; ++j) {
    for (std::size_t i = 0; i < windows.size(); ++i) {
      column[i] = windows[i].features[j];
    }
    const double corr = num::pearson(column, label_d);
    if (std::abs(corr) > best_abs) {
      best_abs = std::abs(corr);
      best.index = j;
      best.direction = corr >= 0.0 ? 1.0 : -1.0;
      best.mean = num::mean(column);
      best.stddev = std::max(num::stddev(column), 1e-9);
    }
  }
  return best;
}

std::vector<mon::LabeledWindow> require_windows(
    const mon::MonitoringDataset& data, const WindowGeometry& g,
    const char* who) {
  const auto windows = data.labeled_windows(g.lead_time, g.prediction_window);
  std::size_t positives = 0;
  for (const auto& w : windows) positives += w.failure_follows ? 1 : 0;
  if (windows.empty() || positives == 0 || positives == windows.size()) {
    throw std::invalid_argument(std::string(who) +
                                ": need both classes in training data");
  }
  return windows;
}

// Out-of-line slow paths keep the batched scorers' bodies free of throw
// statements (pfm-analyze hotpath); messages match the reference 2-arg
// paths exactly so conformance errors stay byte-identical.
// pfm-cold
[[noreturn]] void throw_contexts_size_mismatch() {
  throw std::invalid_argument("score_batch: contexts/out size mismatch");
}
// pfm-cold
[[noreturn]] void throw_sequences_size_mismatch() {
  throw std::invalid_argument("score_batch: sequences/out size mismatch");
}
// pfm-cold
[[noreturn]] void throw_trend_not_trained() {
  throw std::logic_error("TrendPredictor: not trained");
}
// pfm-cold
[[noreturn]] void throw_trend_empty_context() {
  throw std::invalid_argument("TrendPredictor: empty context");
}
// pfm-cold
[[noreturn]] void throw_eventset_not_trained() {
  throw std::logic_error("EventsetPredictor: not trained");
}

}  // namespace

// --- ThresholdPredictor ------------------------------------------------------

ThresholdPredictor::ThresholdPredictor(WindowGeometry windows)
    : windows_(windows) {
  windows_.validate();
}

void ThresholdPredictor::train(const mon::MonitoringDataset& data) {
  const auto windows = require_windows(data, windows_, "ThresholdPredictor");
  const auto pick = pick_variable(windows, data.schema().size());
  variable_ = pick.index;
  direction_ = pick.direction;
  mean_ = pick.mean;
  stddev_ = pick.stddev;
  trained_ = true;
}

double ThresholdPredictor::score(const SymptomContext& context) const {
  if (!trained_) throw std::logic_error("ThresholdPredictor: not trained");
  if (context.history.empty()) {
    throw std::invalid_argument("ThresholdPredictor: empty context");
  }
  const double v = context.history.back().values.at(variable_);
  return num::sigmoid(direction_ * (v - mean_) / stddev_);
}

void ThresholdPredictor::score_batch(std::span<const SymptomContext> contexts,
                                     std::span<double> out) const {
  if (contexts.size() != out.size()) {
    throw std::invalid_argument("score_batch: contexts/out size mismatch");
  }
  if (!trained_) throw std::logic_error("ThresholdPredictor: not trained");
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    if (contexts[i].history.empty()) {
      throw std::invalid_argument("ThresholdPredictor: empty context");
    }
    const double v = contexts[i].history.back().values.at(variable_);
    out[i] = num::sigmoid(direction_ * (v - mean_) / stddev_);
  }
}

// --- TrendPredictor ----------------------------------------------------------

TrendPredictor::TrendPredictor(WindowGeometry windows) : windows_(windows) {
  windows_.validate();
}

void TrendPredictor::train(const mon::MonitoringDataset& data) {
  const auto windows = require_windows(data, windows_, "TrendPredictor");
  const auto pick = pick_variable(windows, data.schema().size());
  variable_ = pick.index;
  direction_ = pick.direction;
  mean_ = pick.mean;
  stddev_ = pick.stddev;
  // Slope scale: a change of one stddev over the data window is "big".
  slope_scale_ = windows_.data_window / stddev_;
  trained_ = true;
}

double TrendPredictor::score(const SymptomContext& context) const {
  if (!trained_) throw std::logic_error("TrendPredictor: not trained");
  if (context.history.empty()) {
    throw std::invalid_argument("TrendPredictor: empty context");
  }
  const double level = context.history.back().values.at(variable_);
  const double z_level = direction_ * (level - mean_) / stddev_;

  double z_slope = 0.0;
  if (context.history.size() >= 2) {
    std::vector<double> t, v;
    t.reserve(context.history.size());
    v.reserve(context.history.size());
    for (const auto& s : context.history) {
      t.push_back(s.time);
      v.push_back(s.values.at(variable_));
    }
    const auto fit = num::fit_line(t, v);
    z_slope = direction_ * fit.slope * slope_scale_;
  }
  // Level tells where we are, the slope where we are heading (projected
  // resource exhaustion); both oriented so positive means failure-prone.
  return num::sigmoid(0.7 * z_level + 1.1 * z_slope);
}

void TrendPredictor::score_batch(std::span<const SymptomContext> contexts,
                                 std::span<double> out) const {
  if (contexts.size() != out.size()) {
    throw std::invalid_argument("score_batch: contexts/out size mismatch");
  }
  if (!trained_) throw std::logic_error("TrendPredictor: not trained");
  std::vector<double> t, v;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const auto& ctx = contexts[i];
    if (ctx.history.empty()) {
      throw std::invalid_argument("TrendPredictor: empty context");
    }
    const double level = ctx.history.back().values.at(variable_);
    const double z_level = direction_ * (level - mean_) / stddev_;
    double z_slope = 0.0;
    if (ctx.history.size() >= 2) {
      t.clear();
      v.clear();
      for (const auto& s : ctx.history) {
        t.push_back(s.time);
        v.push_back(s.values.at(variable_));
      }
      const auto fit = num::fit_line(t, v);
      z_slope = direction_ * fit.slope * slope_scale_;
    }
    out[i] = num::sigmoid(0.7 * z_level + 1.1 * z_slope);
  }
}

// pfm-hot
void TrendPredictor::score_batch(std::span<const SymptomContext> contexts,
                                 std::span<double> out,
                                 BatchScratch& scratch) const {
  if (contexts.size() != out.size()) {
    throw_contexts_size_mismatch();
  }
  if (!trained_) throw_trend_not_trained();
  const std::size_t batch = contexts.size();
  // Under kSimd the gathered z columns go through num::simd's sigmoid
  // lanes in one pass; the regression stays scalar (variable-length
  // history per context). The gather below is shared by both sweeps.
  const bool simd = scratch.kernel == BatchKernel::kSimd;
  if (simd) BatchScratch::resize(scratch.features, 2 * batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto& ctx = contexts[i];
    if (ctx.history.empty()) {
      throw_trend_empty_context();
    }
    const double level = ctx.history.back().values.at(variable_);
    const double z_level = direction_ * (level - mean_) / stddev_;
    double z_slope = 0.0;
    if (ctx.history.size() >= 2) {
      scratch.t_buf.clear();
      scratch.v_buf.clear();
      for (const auto& s : ctx.history) {
        scratch.t_buf.push_back(s.time);
        scratch.v_buf.push_back(s.values.at(variable_));
      }
      const auto fit = num::fit_line(scratch.t_buf, scratch.v_buf);
      z_slope = direction_ * fit.slope * slope_scale_;
    }
    if (simd) {
      scratch.features[i] = z_level;
      scratch.features[batch + i] = z_slope;
    } else {
      out[i] = num::sigmoid(0.7 * z_level + 1.1 * z_slope);
    }
  }
  if (simd) {
    num::simd::trend_sigmoid(scratch.features.data(),
                             scratch.features.data() + batch, out.data(),
                             batch);
  }
}

// --- FailureTrackingPredictor --------------------------------------------------

FailureTrackingPredictor::FailureTrackingPredictor(WindowGeometry windows)
    : windows_(windows) {
  windows_.validate();
}

void FailureTrackingPredictor::train(const mon::MonitoringDataset& data) {
  const auto failures = data.failures();
  if (failures.size() < 3) {
    throw std::invalid_argument(
        "FailureTrackingPredictor: need >= 3 failures to fit inter-arrivals");
  }
  std::vector<double> gaps;
  gaps.reserve(failures.size() - 1);
  for (std::size_t i = 1; i < failures.size(); ++i) {
    const double g = failures[i] - failures[i - 1];
    if (g > 0.0) gaps.push_back(g);
  }
  if (gaps.size() < 2) {
    throw std::invalid_argument(
        "FailureTrackingPredictor: degenerate failure log");
  }
  exponential_ = num::Exponential::mle(gaps);
  try {
    weibull_ = num::Weibull::mle(gaps);
    // Prefer Weibull when it meaningfully improves the fit.
    std::vector<double> g(gaps.begin(), gaps.end());
    const num::Weibull as_exp{1.0, 1.0 / exponential_.rate};
    use_weibull_ =
        weibull_.log_likelihood(g) > as_exp.log_likelihood(g) + 1.0;
  } catch (const std::exception&) {
    use_weibull_ = false;
  }
  trained_ = true;
}

double FailureTrackingPredictor::score(const SymptomContext& context) const {
  if (!trained_) {
    throw std::logic_error("FailureTrackingPredictor: not trained");
  }
  const double now = context.now();
  double since = now;  // no failure yet: age since trace start
  if (!context.past_failures.empty()) {
    since = now - context.past_failures.back();
  }
  const double horizon_start = since + windows_.lead_time;
  const double horizon_end = horizon_start + windows_.prediction_window;
  // P(failure in [t_l, t_l + t_p] | survived `since`).
  double s0, s1;
  if (use_weibull_) {
    s0 = weibull_.survival(horizon_start);
    s1 = weibull_.survival(horizon_end);
  } else {
    s0 = exponential_.survival(horizon_start);
    s1 = exponential_.survival(horizon_end);
  }
  if (s0 <= 0.0) return 1.0;
  return 1.0 - s1 / s0;
}

void FailureTrackingPredictor::score_batch(
    std::span<const SymptomContext> contexts, std::span<double> out) const {
  if (contexts.size() != out.size()) {
    throw std::invalid_argument("score_batch: contexts/out size mismatch");
  }
  if (!trained_) {
    throw std::logic_error("FailureTrackingPredictor: not trained");
  }
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const auto& ctx = contexts[i];
    const double now = ctx.now();
    double since = now;
    if (!ctx.past_failures.empty()) since = now - ctx.past_failures.back();
    const double horizon_start = since + windows_.lead_time;
    const double horizon_end = horizon_start + windows_.prediction_window;
    double s0, s1;
    if (use_weibull_) {
      s0 = weibull_.survival(horizon_start);
      s1 = weibull_.survival(horizon_end);
    } else {
      s0 = exponential_.survival(horizon_start);
      s1 = exponential_.survival(horizon_end);
    }
    out[i] = s0 <= 0.0 ? 1.0 : 1.0 - s1 / s0;
  }
}

// --- DftPredictor -------------------------------------------------------------

DftPredictor::DftPredictor() = default;

void DftPredictor::train(
    std::span<const mon::ErrorSequence> failure_sequences,
    std::span<const mon::ErrorSequence> nonfailure_sequences) {
  if (failure_sequences.empty() || nonfailure_sequences.empty()) {
    throw std::invalid_argument("DftPredictor::train: need both classes");
  }
  // Calibrate the rate rule on the 95th percentile of non-failure windows.
  std::vector<double> counts;
  counts.reserve(nonfailure_sequences.size());
  for (const auto& s : nonfailure_sequences) {
    counts.push_back(static_cast<double>(s.events.size()));
  }
  rate_threshold_ = std::max(num::quantile(counts, 0.95), 2.0);
  trained_ = true;
}

double DftPredictor::score(const mon::ErrorSequence& seq) const {
  if (!trained_) throw std::logic_error("DftPredictor: not trained");
  const auto& ev = seq.events;
  if (ev.empty()) return 0.0;

  // The original DFT rules operate on dispersion frames: the intervals
  // between successive errors of the same problem source. We apply them to
  // the window's inter-arrival structure.
  int fired = 0;
  // 3.3 rule: two successive inter-arrival frames each at most half of the
  // one before them (errors accelerating).
  if (ev.size() >= 4) {
    const double f1 = ev[ev.size() - 1].time - ev[ev.size() - 2].time;
    const double f2 = ev[ev.size() - 2].time - ev[ev.size() - 3].time;
    const double f3 = ev[ev.size() - 3].time - ev[ev.size() - 4].time;
    if (f3 > 0.0 && f2 <= 0.5 * f3 && f2 > 0.0 && f1 <= 0.5 * f2) ++fired;
  }
  // 2-in-1 rule: two errors within a tenth of the data window.
  if (ev.size() >= 2) {
    const double window = seq.end_time - ev.front().time;
    const double last_gap = ev[ev.size() - 1].time - ev[ev.size() - 2].time;
    if (window > 0.0 && last_gap <= window / 10.0) ++fired;
  }
  // 4-in-1 rule: at least four errors in the most recent half window.
  if (ev.size() >= 4) {
    const double half_start =
        seq.end_time - 0.5 * (seq.end_time - ev.front().time);
    int recent = 0;
    for (const auto& e : ev) recent += e.time >= half_start ? 1 : 0;
    if (recent >= 4) ++fired;
  }
  // Frequency rule: more errors than the calibrated non-failure ceiling.
  if (static_cast<double>(ev.size()) > rate_threshold_) ++fired;
  // Soft score: rules dominate, a small density term breaks ties.
  const double density =
      std::min(static_cast<double>(ev.size()) / (rate_threshold_ * 4.0), 0.19);
  return static_cast<double>(fired) / 4.0 * 0.8 + density;
}

void DftPredictor::score_batch(std::span<const mon::ErrorSequence> sequences,
                               std::span<double> out) const {
  if (sequences.size() != out.size()) {
    throw std::invalid_argument("score_batch: sequences/out size mismatch");
  }
  if (!trained_) throw std::logic_error("DftPredictor: not trained");
  // score() is allocation-free; the batch path only saves the per-item
  // virtual dispatch (DftPredictor is final, so these calls are direct).
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    out[i] = score(sequences[i]);
  }
}

// --- EventsetPredictor ----------------------------------------------------------

EventsetPredictor::EventsetPredictor(Config config) : config_(config) {
  if (config_.min_support <= 0.0 || config_.min_support > 1.0 ||
      config_.min_confidence <= 0.0 || config_.min_confidence > 1.0 ||
      config_.max_set_size == 0) {
    throw std::invalid_argument("EventsetPredictor: bad mining parameters");
  }
}

void EventsetPredictor::train(
    std::span<const mon::ErrorSequence> failure_sequences,
    std::span<const mon::ErrorSequence> nonfailure_sequences) {
  if (failure_sequences.empty() || nonfailure_sequences.empty()) {
    throw std::invalid_argument("EventsetPredictor::train: need both classes");
  }
  // Distinct event-id sets per sequence.
  auto id_set = [](const mon::ErrorSequence& s) {
    std::set<std::int32_t> ids;
    for (const auto& e : s.events) ids.insert(e.event_id);
    return ids;
  };
  std::vector<std::set<std::int32_t>> fail_sets, ok_sets;
  for (const auto& s : failure_sequences) fail_sets.push_back(id_set(s));
  for (const auto& s : nonfailure_sequences) ok_sets.push_back(id_set(s));

  // Candidate generation: frequent singletons in failure windows, then
  // pairs (and larger, up to max_set_size) of frequent singletons.
  std::map<std::int32_t, std::size_t> singleton_count;
  for (const auto& s : fail_sets) {
    for (auto id : s) ++singleton_count[id];
  }
  const auto min_count = static_cast<std::size_t>(
      config_.min_support * static_cast<double>(fail_sets.size()));
  std::vector<std::int32_t> frequent;
  for (const auto& [id, c] : singleton_count) {
    if (c >= std::max<std::size_t>(min_count, 1)) frequent.push_back(id);
  }

  std::vector<std::vector<std::int32_t>> candidates;
  for (auto id : frequent) candidates.push_back({id});
  if (config_.max_set_size >= 2) {
    for (std::size_t i = 0; i < frequent.size(); ++i) {
      for (std::size_t j = i + 1; j < frequent.size(); ++j) {
        candidates.push_back({frequent[i], frequent[j]});
      }
    }
  }
  if (config_.max_set_size >= 3) {
    for (std::size_t i = 0; i < frequent.size(); ++i) {
      for (std::size_t j = i + 1; j < frequent.size(); ++j) {
        for (std::size_t k = j + 1; k < frequent.size(); ++k) {
          candidates.push_back({frequent[i], frequent[j], frequent[k]});
        }
      }
    }
  }

  auto contains_all = [](const std::set<std::int32_t>& have,
                         const std::vector<std::int32_t>& want) {
    for (auto id : want) {
      if (!have.contains(id)) return false;
    }
    return true;
  };

  sets_.clear();
  for (auto& cand : candidates) {
    std::size_t in_fail = 0, in_ok = 0;
    for (const auto& s : fail_sets) in_fail += contains_all(s, cand) ? 1 : 0;
    if (in_fail < std::max<std::size_t>(min_count, 1)) continue;
    for (const auto& s : ok_sets) in_ok += contains_all(s, cand) ? 1 : 0;
    const double confidence = static_cast<double>(in_fail) /
                              static_cast<double>(in_fail + in_ok);
    if (confidence >= config_.min_confidence) {
      sets_.push_back({std::move(cand), confidence});
    }
  }
  base_rate_ =
      static_cast<double>(failure_sequences.size()) /
      static_cast<double>(failure_sequences.size() + nonfailure_sequences.size());
  trained_ = true;
}

double EventsetPredictor::score(const mon::ErrorSequence& sequence) const {
  if (!trained_) throw std::logic_error("EventsetPredictor: not trained");
  std::set<std::int32_t> have;
  for (const auto& e : sequence.events) have.insert(e.event_id);
  double best = base_rate_ * 0.5;  // nothing matched: below base rate
  for (const auto& ms : sets_) {
    bool all = true;
    for (auto id : ms.ids) {
      if (!have.contains(id)) {
        all = false;
        break;
      }
    }
    if (all) best = std::max(best, ms.confidence);
  }
  return best;
}

void EventsetPredictor::score_batch(
    std::span<const mon::ErrorSequence> sequences, std::span<double> out) const {
  if (sequences.size() != out.size()) {
    throw std::invalid_argument("score_batch: sequences/out size mismatch");
  }
  if (!trained_) throw std::logic_error("EventsetPredictor: not trained");
  std::set<std::int32_t> have;  // one scratch set for the whole batch
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    have.clear();
    for (const auto& e : sequences[i].events) have.insert(e.event_id);
    double best = base_rate_ * 0.5;
    for (const auto& ms : sets_) {
      bool all = true;
      for (auto id : ms.ids) {
        if (!have.contains(id)) {
          all = false;
          break;
        }
      }
      if (all) best = std::max(best, ms.confidence);
    }
    out[i] = best;
  }
}

// pfm-hot
void EventsetPredictor::score_batch(std::span<const mon::ErrorSequence> sequences,
                                    std::span<double> out,
                                    BatchScratch& scratch) const {
  if (sequences.size() != out.size()) {
    throw_sequences_size_mismatch();
  }
  if (!trained_) throw_eventset_not_trained();
  // Membership via a sorted scratch vector instead of a node-based
  // std::set: same containment answers, zero allocations after warm-up.
  // There is no transcendental arithmetic here, so BatchKernel::kSimd
  // shares this sweep — bit-identical to kScalar by construction.
  std::vector<std::int32_t>& have = scratch.ids;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    have.clear();
    for (const auto& e : sequences[i].events) have.push_back(e.event_id);
    std::sort(have.begin(), have.end());
    double best = base_rate_ * 0.5;
    for (const auto& ms : sets_) {
      bool all = true;
      for (auto id : ms.ids) {
        if (!std::binary_search(have.begin(), have.end(), id)) {
          all = false;
          break;
        }
      }
      if (all) best = std::max(best, ms.confidence);
    }
    out[i] = best;
  }
}

}  // namespace pfm::pred
