#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "numerics/matrix.hpp"
#include "numerics/rng.hpp"
#include "prediction/predictor.hpp"

namespace pfm::pred {

/// One observation of an error sequence as the HSMM sees it: the error
/// symbol (vocabulary index) and the time gap to the previous event.
struct HsmmObservation {
  std::size_t symbol = 0;
  double gap = 0.0;  ///< seconds since the previous event (0 for the first)
};

using HsmmSequence = std::vector<HsmmObservation>;

/// Hidden semi-Markov model over error-event sequences.
///
/// States are latent "phases" of the error process; each state carries a
/// categorical emission distribution over error symbols and an exponential
/// sojourn (inter-event gap) distribution — the semi-Markov part: the
/// likelihood of a sequence depends on *when* errors occurred, not only on
/// their order (Sect. 3.2 / [64]). Trained with Baum-Welch (EM) using a
/// scaled forward-backward pass; evaluated by per-sequence log-likelihood.
class Hsmm {
 public:
  struct Config {
    std::size_t num_states = 6;
    std::size_t num_symbols = 1;   ///< vocabulary size (set by trainer)
    std::size_t em_iterations = 25;
    double smoothing = 1e-3;       ///< additive smoothing of probabilities
    std::uint64_t seed = 13;
  };

  explicit Hsmm(Config config);

  /// Fits parameters on the given sequences. Empty sequences are ignored.
  /// Throws std::invalid_argument when no non-empty sequence is provided.
  void train(const std::vector<HsmmSequence>& sequences);

  /// Joint log-likelihood log P(sequence | model). Empty sequences return
  /// 0 (the empty product). Throws std::logic_error before training.
  double log_likelihood(const HsmmSequence& sequence) const;

  const Config& config() const noexcept { return config_; }
  bool trained() const noexcept { return trained_; }

  /// Mean sojourn time of a state (1/rate of its gap distribution).
  double mean_gap(std::size_t state) const { return 1.0 / gap_rate_.at(state); }

 private:
  double observation_density(std::size_t state,
                             const HsmmObservation& o) const;

  Config config_;
  std::vector<double> initial_;             // pi
  num::Matrix transition_;                  // A
  num::Matrix emission_;                    // B: state x symbol
  std::vector<double> gap_rate_;            // exponential rate per state
  bool trained_ = false;
};

/// How the class log-likelihood ratio is normalized before thresholding.
enum class LikelihoodNormalization : std::uint8_t {
  kPerEvent = 0,  ///< divide by sequence length
  kSqrt = 1,      ///< divide by sqrt(length): partial length correction
  kNone = 2       ///< raw Bayes factor
};

/// Configuration of the HSMM failure predictor.
struct HsmmPredictorConfig {
  WindowGeometry windows;
  std::size_t num_states = 6;
  std::size_t em_iterations = 20;
  /// true: model inter-event gaps (semi-Markov). false: ablation that
  /// ignores timing and degenerates to a plain HMM.
  bool model_durations = true;
  LikelihoodNormalization normalization = LikelihoodNormalization::kPerEvent;
  std::uint64_t seed = 13;
};

/// Event-based failure prediction with hidden semi-Markov models
/// (Salfner [64], Sect. 3.2): one HSMM trained on failure sequences, one on
/// non-failure sequences; classification by the Bayes-style log-likelihood
/// ratio, normalized per event and squashed to (0,1).
class HsmmPredictor final : public EventPredictor {
 public:
  explicit HsmmPredictor(HsmmPredictorConfig config);

  std::string name() const override;
  void train(std::span<const mon::ErrorSequence> failure_sequences,
             std::span<const mon::ErrorSequence> nonfailure_sequences) override;
  double score(const mon::ErrorSequence& sequence) const override;

  /// Vocabulary size discovered during training.
  std::size_t vocabulary_size() const noexcept { return vocab_.size(); }

 private:
  HsmmSequence encode(const mon::ErrorSequence& sequence) const;

  HsmmPredictorConfig config_;
  std::map<std::int32_t, std::size_t> vocab_;  // event id -> symbol
  std::size_t unknown_symbol_ = 0;
  double prior_log_odds_ = 0.0;
  double empty_fail_ = 0.5;  ///< P(empty data window | failure follows)
  double empty_ok_ = 0.5;    ///< P(empty data window | no failure follows)
  std::vector<Hsmm> models_;  // [0] failure, [1] non-failure
  bool trained_ = false;
};

}  // namespace pfm::pred
