#include "prediction/evaluate.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pfm::pred {

std::vector<ScoredInstant> score_on_grid(const SymptomPredictor& predictor,
                                         const mon::MonitoringDataset& test,
                                         const EvalOptions& options) {
  options.windows.validate();
  const auto samples = test.samples();
  const auto failures = test.failures();
  const double horizon = test.end_time();
  std::vector<ScoredInstant> out;
  out.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double t = samples[i].time;
    const double w_begin =
        options.count_early_failures ? t : t + options.windows.lead_time;
    const double w_end =
        t + options.windows.lead_time + options.windows.prediction_window;
    if (w_end > horizon) break;  // not labelable

    const std::size_t first =
        i + 1 >= options.context_samples ? i + 1 - options.context_samples : 0;
    SymptomContext ctx;
    ctx.history = samples.subspan(first, i - first + 1);
    const auto past_end =
        std::upper_bound(failures.begin(), failures.end(), t);
    ctx.past_failures = failures.first(
        static_cast<std::size_t>(past_end - failures.begin()));

    ScoredInstant si;
    si.time = t;
    si.score = predictor.score(ctx);
    si.label = test.failure_within(w_begin, w_end) ? 1 : 0;
    out.push_back(si);
  }
  return out;
}

std::vector<ScoredInstant> score_on_grid(const EventPredictor& predictor,
                                         const mon::MonitoringDataset& test,
                                         const EvalOptions& options) {
  options.windows.validate();
  if (options.stride <= 0.0) {
    throw std::invalid_argument("score_on_grid: stride must be positive");
  }
  const double horizon = test.end_time();
  std::vector<ScoredInstant> out;
  for (double t = test.start_time() + options.windows.data_window;
       t + options.windows.lead_time + options.windows.prediction_window <=
       horizon;
       t += options.stride) {
    mon::ErrorSequence seq;
    seq.events = test.events_in(t - options.windows.data_window, t);
    seq.end_time = t;

    ScoredInstant si;
    si.time = t;
    si.score = predictor.score(seq);
    const double w_begin =
        options.count_early_failures ? t : t + options.windows.lead_time;
    si.label = test.failure_within(w_begin,
                                   t + options.windows.lead_time +
                                       options.windows.prediction_window)
                   ? 1
                   : 0;
    out.push_back(si);
  }
  return out;
}

PredictorReport make_report(std::string name,
                            const std::vector<ScoredInstant>& instants) {
  if (instants.empty()) {
    throw std::invalid_argument("make_report: no instants");
  }
  std::vector<double> scores;
  std::vector<int> labels;
  scores.reserve(instants.size());
  labels.reserve(instants.size());
  for (const auto& si : instants) {
    scores.push_back(si.score);
    labels.push_back(si.label);
  }
  PredictorReport r;
  r.name = std::move(name);
  r.num_instants = instants.size();
  for (int y : labels) r.num_positive += y != 0 ? 1 : 0;
  r.auc = eval::auc(scores, labels);  // throws on single-class labels
  const auto choice = eval::max_f_measure_threshold(scores, labels);
  r.threshold = choice.threshold;
  r.table = choice.table;
  return r;
}

std::string to_string(const PredictorReport& r) {
  std::ostringstream os;
  os.precision(3);
  os << r.name << ": AUC=" << r.auc << " precision=" << r.precision()
     << " recall=" << r.recall() << " fpr=" << r.false_positive_rate()
     << " F=" << r.f_measure() << " (n=" << r.num_instants
     << ", positives=" << r.num_positive << ")";
  return os.str();
}

}  // namespace pfm::pred
