#include "prediction/meta.hpp"

#include <stdexcept>

namespace pfm::pred {

void StackedGeneralization::fit(std::span<const double> level0_scores,
                                std::size_t num_predictors,
                                std::span<const int> labels) {
  if (num_predictors == 0 ||
      level0_scores.size() != labels.size() * num_predictors) {
    throw std::invalid_argument("StackedGeneralization::fit: bad shape");
  }
  bool has_pos = false, has_neg = false;
  for (int y : labels) (y != 0 ? has_pos : has_neg) = true;
  if (!has_pos || !has_neg) {
    throw std::invalid_argument(
        "StackedGeneralization::fit: labels are single-class");
  }
  num::LogisticRegression::Options opts;
  opts.l2 = 1e-3;
  combiner_.fit(level0_scores, num_predictors, labels, opts);
}

double StackedGeneralization::combine(std::span<const double> scores) const {
  if (!fitted()) {
    throw std::logic_error("StackedGeneralization: not fitted");
  }
  return combiner_.predict_probability(scores);
}

}  // namespace pfm::pred
