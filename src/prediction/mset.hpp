#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "numerics/linalg.hpp"
#include "prediction/predictor.hpp"

namespace pfm::pred {

/// Configuration of the MSET predictor.
struct MsetConfig {
  WindowGeometry windows;
  /// Number of memory-matrix exemplars (representative healthy states).
  std::size_t memory_size = 48;
  /// Kernel bandwidth of the similarity operator, in scaled-feature units.
  double bandwidth = 0.6;
  /// Regularization of the similarity Gram matrix.
  double ridge = 1e-6;
  /// Cap on healthy training samples used for exemplar selection.
  std::size_t max_train_samples = 4000;
  std::uint64_t seed = 29;
};

/// Multivariate State Estimation Technique (Singer/Gross [68]) — the
/// classic symptom-monitoring predictor of the Fig. 3 taxonomy.
///
/// A memory matrix D of representative *healthy* observations is selected
/// from training data (k-means exemplars). At runtime the current
/// observation x is reconstructed from the memory through a nonlinear
/// similarity operator:
///     w = (D (x) D + ridge I)^{-1} (D (x) x),     xhat = D^T w,
/// where (x) is the kernel similarity. States the system has seen healthy
/// reconstruct with small residual ||x - xhat||; out-of-norm states (the
/// paper's symptoms) reconstruct poorly. The score is the standardized
/// residual, calibrated on held-out healthy data.
class MsetPredictor final : public SymptomPredictor {
 public:
  explicit MsetPredictor(MsetConfig config);

  std::string name() const override { return "MSET"; }
  void train(const mon::MonitoringDataset& data) override;
  double score(const SymptomContext& context) const override;

  std::size_t memory_size() const noexcept { return memory_.size(); }

  /// Raw (unsquashed) standardized residual for one observation; exposed
  /// for diagnostics. Throws std::logic_error before training.
  double residual(std::span<const double> observation) const;

 private:
  std::vector<double> scale(std::span<const double> raw) const;
  double kernel(std::span<const double> a, std::span<const double> b) const;

  MsetConfig config_;
  std::vector<std::vector<double>> memory_;  // scaled exemplars
  std::unique_ptr<num::LuDecomposition> gram_;
  std::vector<double> lo_, hi_;  // feature scaling
  double residual_mean_ = 0.0;
  double residual_stddev_ = 1.0;
  bool trained_ = false;
};

}  // namespace pfm::pred
